// archex/lp/basis_lu.hpp
//
// Sparse basis factorization for the revised simplex: an LU decomposition
// of the basis matrix with Markowitz-style pivot selection (fill-in
// control), refreshed by a product-form eta file between refactorizations.
//
// Synthesis LPs (flow/reach encodings, Boolean linearizations) have a
// handful of nonzeros per row, so the basis factors stay extremely sparse;
// keeping B^{-1} as LU factors plus eta vectors makes every FTRAN/BTRAN
// cost O(factor nonzeros) instead of the O(m^2) dense sweeps of the
// explicit-inverse representation (which survives as the differential-
// testing oracle behind SimplexOptions::dense_basis).
//
// Index conventions match the engine's dense path:
//  * FTRAN solves B w = a; the input is row-indexed, the output is indexed
//    by basis position (the column of B holding each basic variable);
//  * BTRAN solves B' y = c; the input is basis-position-indexed, the
//    output is row-indexed (dual values).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace archex::lp {

/// One sparse column of the basis matrix: (row, coefficient) pairs.
using SparseColumn = std::vector<std::pair<int, double>>;

/// LU factors of one basis snapshot plus the eta file accumulated since.
class BasisFactor {
 public:
  /// Factorize the m x m matrix whose k-th column is `columns[k]`.
  /// Clears the eta file. Returns false when the matrix is numerically
  /// singular (no acceptable pivot found for some elimination step).
  [[nodiscard]] bool factorize(int m, const std::vector<SparseColumn>& columns);

  [[nodiscard]] bool valid() const { return valid_; }

  /// Solve B w = b where B is the factored basis updated by the eta file.
  /// `b` is row-indexed on input; the returned vector is basis-position-
  /// indexed. Zero regions of the right-hand side are skipped (the
  /// hyper-sparsity fast path: unit and near-unit columns touch only a few
  /// factor entries).
  [[nodiscard]] std::vector<double> ftran(const std::vector<double>& b) const;

  /// Solve B' y = c. `c` is basis-position-indexed on input; the returned
  /// vector is row-indexed.
  [[nodiscard]] std::vector<double> btran(std::vector<double> c) const;

  /// Record a basis change: the column at basis position `pivot_pos` was
  /// replaced by a column whose FTRAN image is `w` (basis-position-indexed,
  /// exactly what the simplex pivot already computed). Appends one eta
  /// vector; O(nnz(w)).
  void push_eta(int pivot_pos, const std::vector<double>& w);

  // ---- refactorization-policy inputs ---------------------------------------

  /// Number of eta vectors accumulated since the last factorize().
  [[nodiscard]] int eta_count() const { return static_cast<int>(etas_.size()); }
  /// Total nonzeros across the eta file.
  [[nodiscard]] std::size_t eta_nonzeros() const { return eta_nonzeros_; }
  /// Nonzeros in the L and U factors (fill-in included).
  [[nodiscard]] std::size_t lu_nonzeros() const { return lu_nonzeros_; }

 private:
  struct Eta {
    int pivot_pos = -1;
    double pivot_value = 0.0;
    // Off-pivot nonzeros of the replaced column's FTRAN image.
    std::vector<std::pair<int, double>> entries;
  };

  int m_ = 0;
  bool valid_ = false;

  // Factors in elimination order: at step k, row perm_row_[k] and basis
  // position perm_col_[k] were pivotal with diagonal diag_[k].
  std::vector<int> perm_row_, perm_col_;
  std::vector<double> diag_;
  // l_cols_[k]: multipliers (original row, m) of the Gauss elimination at
  // step k; u_rows_[k]: the reduced pivot row's off-diagonal entries
  // (basis position, value), all pivoted at later steps.
  std::vector<std::vector<std::pair<int, double>>> l_cols_;
  std::vector<std::vector<std::pair<int, double>>> u_rows_;
  std::size_t lu_nonzeros_ = 0;

  std::vector<Eta> etas_;
  std::size_t eta_nonzeros_ = 0;
};

}  // namespace archex::lp
