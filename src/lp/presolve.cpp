// Presolve / postsolve for lp::Problem. See presolve.hpp for the reduction
// list and the branch-and-bound safety argument.
#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "support/check.hpp"

namespace archex::lp {

namespace {

/// Violations beyond this prove infeasibility; smaller ones are left for
/// the simplex to resolve (declaring infeasible is irreversible, so the
/// margin is deliberately wider than the engine's 1e-9 pivot tolerance).
constexpr double kInfeasTol = 1e-7;
/// Slack required before a row counts as redundant or a propagated bound
/// counts as an improvement (keeps the fixpoint loop finite).
constexpr double kImproveTol = 1e-7;
/// Integrality recognition margin for rounding propagated bounds inward.
constexpr double kIntTol = 1e-6;

[[nodiscard]] std::size_t uz(int v) { return static_cast<std::size_t>(v); }

}  // namespace

std::vector<double> PresolveResult::postsolve(
    const std::vector<double>& reduced_x) const {
  ARCHEX_REQUIRE(
      static_cast<int>(reduced_x.size()) == reduced.num_variables(),
      "postsolve input size must match the reduced problem");
  std::vector<double> x(var_map.size(), 0.0);
  for (std::size_t j = 0; j < var_map.size(); ++j) {
    x[j] = var_map[j] < 0 ? fixed_value[j] : reduced_x[uz(var_map[j])];
  }
  return x;
}

PresolveResult presolve(const Problem& problem,
                        const std::vector<bool>& integer_cols) {
  const int n = problem.num_variables();
  const int m = problem.num_constraints();
  ARCHEX_REQUIRE(
      integer_cols.empty() || static_cast<int>(integer_cols.size()) == n,
      "integer_cols must be empty or one flag per column");

  PresolveResult out;
  out.var_map.assign(uz(n), -1);
  out.fixed_value.assign(uz(n), 0.0);

  std::vector<double> lo(uz(n)), up(uz(n)), obj(uz(n));
  for (int j = 0; j < n; ++j) {
    lo[uz(j)] = problem.col_lo(j);
    up[uz(j)] = problem.col_up(j);
    obj[uz(j)] = problem.objective_coef(j);
  }
  std::vector<double> rlo(uz(m)), rup(uz(m));
  for (int i = 0; i < m; ++i) {
    rlo[uz(i)] = problem.row_lo(i);
    rup[uz(i)] = problem.row_up(i);
  }
  std::vector<bool> row_removed(uz(m), false);
  std::vector<bool> fixed(uz(n), false);

  // Column-wise view for fixed-variable substitution.
  std::vector<std::vector<std::pair<int, double>>> col_rows(uz(n));
  for (int i = 0; i < m; ++i) {
    for (const Term& t : problem.row(i)) {
      if (t.coef != 0.0) col_rows[uz(t.var)].push_back({i, t.coef});
    }
  }

  const auto is_int = [&](int j) {
    return !integer_cols.empty() && integer_cols[uz(j)];
  };

  bool infeasible = false;
  // Substitute column j at value v: row bounds absorb its contribution and
  // the objective offset its cost term.
  const auto fix_var = [&](int j, double v) {
    if (fixed[uz(j)]) return;
    if (is_int(j) && std::abs(v - std::round(v)) > kIntTol) {
      infeasible = true;
      return;
    }
    fixed[uz(j)] = true;
    out.fixed_value[uz(j)] = v;
    lo[uz(j)] = up[uz(j)] = v;
    out.objective_offset += obj[uz(j)] * v;
    ++out.stats.fixed_variables;
    for (const auto& [i, coef] : col_rows[uz(j)]) {
      if (row_removed[uz(i)]) continue;
      const double shift = coef * v;
      if (rlo[uz(i)] != -kInf) rlo[uz(i)] -= shift;
      if (rup[uz(i)] != kInf) rup[uz(i)] -= shift;
    }
  };

  // Tighten column j to [nlo, nup] (intersected with its current box),
  // rounding inward for integral columns. Returns true on a change.
  const auto tighten = [&](int j, double nlo, double nup) {
    bool changed = false;
    if (is_int(j)) {
      if (nlo != -kInf) nlo = std::ceil(nlo - kIntTol);
      if (nup != kInf) nup = std::floor(nup + kIntTol);
    }
    if (nlo > lo[uz(j)] + kImproveTol) {
      lo[uz(j)] = nlo;
      ++out.stats.bound_tightenings;
      changed = true;
    }
    if (nup < up[uz(j)] - kImproveTol) {
      up[uz(j)] = nup;
      ++out.stats.bound_tightenings;
      changed = true;
    }
    if (lo[uz(j)] > up[uz(j)] + kInfeasTol) {
      infeasible = true;
      return changed;
    }
    if (changed && up[uz(j)] - lo[uz(j)] <= kImproveTol) {
      // Box collapsed: fix at a representative point (the exact integer for
      // integral columns).
      double v = 0.5 * (lo[uz(j)] + up[uz(j)]);
      if (is_int(j)) v = std::round(v);
      fix_var(j, v);
    }
    return changed;
  };

  // Seed: columns the model already fixed.
  for (int j = 0; j < n; ++j) {
    if (up[uz(j)] - lo[uz(j)] <= kImproveTol) {
      double v = 0.5 * (lo[uz(j)] + up[uz(j)]);
      if (is_int(j)) v = std::round(v);
      fix_var(j, v);
    }
  }

  constexpr int kMaxPasses = 16;
  bool changed = true;
  while (changed && !infeasible && out.stats.passes < kMaxPasses) {
    changed = false;
    ++out.stats.passes;
    for (int i = 0; i < m && !infeasible; ++i) {
      if (row_removed[uz(i)]) continue;

      // Activity range over the unfixed terms of row i.
      double min_act = 0.0, max_act = 0.0;
      int live = 0;
      int single_var = -1;
      double single_coef = 0.0;
      for (const Term& t : problem.row(i)) {
        if (t.coef == 0.0 || fixed[uz(t.var)]) continue;
        ++live;
        single_var = t.var;
        single_coef = t.coef;
        const double l = lo[uz(t.var)], u = up[uz(t.var)];
        if (t.coef > 0.0) {
          min_act += (l == -kInf) ? -kInf : t.coef * l;
          max_act += (u == kInf) ? kInf : t.coef * u;
        } else {
          min_act += (u == kInf) ? -kInf : t.coef * u;
          max_act += (l == -kInf) ? kInf : t.coef * l;
        }
      }

      if (live == 0) {
        if (rlo[uz(i)] > kInfeasTol || rup[uz(i)] < -kInfeasTol) {
          infeasible = true;
          break;
        }
        row_removed[uz(i)] = true;
        ++out.stats.empty_rows;
        changed = true;
        continue;
      }
      if (min_act > rup[uz(i)] + kInfeasTol ||
          max_act < rlo[uz(i)] - kInfeasTol) {
        infeasible = true;
        break;
      }
      if (live == 1) {
        // Singleton row: a * x_j in [rlo, rup] is just a column bound.
        const int j = single_var;
        const double a = single_coef;
        const double blo = a > 0.0 ? rlo[uz(i)] / a : rup[uz(i)] / a;
        const double bup = a > 0.0 ? rup[uz(i)] / a : rlo[uz(i)] / a;
        row_removed[uz(i)] = true;
        ++out.stats.singleton_rows;
        changed = true;
        tighten(j, blo, bup);
        continue;
      }
      if (min_act >= rlo[uz(i)] - kImproveTol &&
          max_act <= rup[uz(i)] + kImproveTol &&
          min_act != -kInf && max_act != kInf) {
        // Redundant under the current boxes; stays redundant under any
        // further tightening-only bound change (branch & bound included).
        row_removed[uz(i)] = true;
        ++out.stats.redundant_rows;
        changed = true;
        continue;
      }

      // Bound propagation: the residual activity of the other terms bounds
      // each column through this row.
      if (min_act == -kInf && max_act == kInf) continue;
      for (const Term& t : problem.row(i)) {
        if (t.coef == 0.0 || fixed[uz(t.var)]) continue;
        const int j = t.var;
        const double l = lo[uz(j)], u = up[uz(j)];
        // Own contribution range of a*x_j.
        double own_min, own_max;
        if (t.coef > 0.0) {
          own_min = (l == -kInf) ? -kInf : t.coef * l;
          own_max = (u == kInf) ? kInf : t.coef * u;
        } else {
          own_min = (u == kInf) ? -kInf : t.coef * u;
          own_max = (l == -kInf) ? kInf : t.coef * l;
        }
        const double res_min =
            (min_act == -kInf || own_min == -kInf) ? -kInf : min_act - own_min;
        const double res_max =
            (max_act == kInf || own_max == kInf) ? kInf : max_act - own_max;
        // rlo - res_max <= a*x_j <= rup - res_min.
        double tlo = -kInf, tup = kInf;
        if (rlo[uz(i)] != -kInf && res_max != kInf) tlo = rlo[uz(i)] - res_max;
        if (rup[uz(i)] != kInf && res_min != -kInf) tup = rup[uz(i)] - res_min;
        double nlo = -kInf, nup = kInf;
        if (t.coef > 0.0) {
          if (tlo != -kInf) nlo = tlo / t.coef;
          if (tup != kInf) nup = tup / t.coef;
        } else {
          if (tup != kInf) nlo = tup / t.coef;
          if (tlo != -kInf) nup = tlo / t.coef;
        }
        if (tighten(j, nlo, nup)) changed = true;
        if (infeasible) break;
      }
    }
  }

  if (infeasible) {
    out.infeasible = true;
    return out;
  }

  // Assemble the reduced problem.
  for (int j = 0; j < n; ++j) {
    if (fixed[uz(j)]) continue;
    out.var_map[uz(j)] = out.reduced.add_variable(lo[uz(j)], up[uz(j)],
                                                  obj[uz(j)],
                                                  problem.col_name(j));
  }
  for (int i = 0; i < m; ++i) {
    if (row_removed[uz(i)]) continue;
    std::vector<Term> terms;
    for (const Term& t : problem.row(i)) {
      if (t.coef == 0.0 || fixed[uz(t.var)]) continue;
      terms.push_back({out.var_map[uz(t.var)], t.coef});
    }
    if (terms.empty()) {
      // Became empty after the loop's last fixings; same empty-row check.
      if (rlo[uz(i)] > kInfeasTol || rup[uz(i)] < -kInfeasTol) {
        out.infeasible = true;
        return out;
      }
      ++out.stats.empty_rows;
      continue;
    }
    const double a = std::max(rlo[uz(i)], -kInf);
    const double b = std::max(rup[uz(i)], a);  // guard rounding inversions
    out.reduced.add_constraint(std::move(terms), a, b, problem.row_name(i));
  }
  return out;
}

}  // namespace archex::lp
