// archex/lp/problem.hpp
//
// In-memory representation of a linear program in "range" form:
//
//   minimize    c' x
//   subject to  row_lo <= A x <= row_up
//               col_lo <=  x  <= col_up
//
// Every constraint is stored as a two-sided range; equalities set
// row_lo == row_up and one-sided inequalities leave the other side infinite.
// This uniform shape maps directly onto the bounded-variable simplex in
// simplex.hpp, where each row receives one "logical" variable bounded by
// [row_lo, row_up].
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace archex::lp {

/// Positive infinity used for absent bounds.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// One nonzero coefficient of a constraint row: `coef * x[var]`.
struct Term {
  int var = -1;
  double coef = 0.0;
};

/// A linear program in range form. Rows and columns are identified by the
/// dense indices returned from add_variable()/add_constraint().
class Problem {
 public:
  /// Add a variable with bounds [lo, up] and objective coefficient `obj`.
  /// Returns its index. `lo` may be -kInf and `up` may be +kInf.
  int add_variable(double lo, double up, double obj = 0.0,
                   std::string name = {}) {
    ARCHEX_REQUIRE(lo <= up, "variable bounds must satisfy lo <= up");
    col_lo_.push_back(lo);
    col_up_.push_back(up);
    obj_.push_back(obj);
    col_name_.push_back(std::move(name));
    return static_cast<int>(col_lo_.size()) - 1;
  }

  /// Overwrite the objective coefficient of an existing variable.
  void set_objective(int var, double obj) {
    ARCHEX_REQUIRE(var >= 0 && var < num_variables(), "variable out of range");
    obj_[static_cast<std::size_t>(var)] = obj;
  }

  /// Tighten or relax the box of an existing variable (used by the
  /// branch-and-bound solver to impose branching decisions).
  void set_variable_bounds(int var, double lo, double up) {
    ARCHEX_REQUIRE(var >= 0 && var < num_variables(), "variable out of range");
    ARCHEX_REQUIRE(lo <= up, "variable bounds must satisfy lo <= up");
    col_lo_[static_cast<std::size_t>(var)] = lo;
    col_up_[static_cast<std::size_t>(var)] = up;
  }

  /// Add a constraint `lo <= sum(terms) <= up`. Terms referencing the same
  /// variable more than once are merged. Returns the row index.
  int add_constraint(std::vector<Term> terms, double lo, double up,
                     std::string name = {}) {
    ARCHEX_REQUIRE(lo <= up, "row bounds must satisfy lo <= up");
    for (const Term& t : terms) {
      ARCHEX_REQUIRE(t.var >= 0 && t.var < num_variables(),
                     "constraint references unknown variable");
    }
    rows_.push_back(merge_terms(std::move(terms)));
    row_lo_.push_back(lo);
    row_up_.push_back(up);
    row_name_.push_back(std::move(name));
    return static_cast<int>(rows_.size()) - 1;
  }

  [[nodiscard]] int num_variables() const {
    return static_cast<int>(col_lo_.size());
  }
  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(rows_.size());
  }

  [[nodiscard]] double col_lo(int j) const {
    return col_lo_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] double col_up(int j) const {
    return col_up_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] double objective_coef(int j) const {
    return obj_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] const std::string& col_name(int j) const {
    return col_name_[static_cast<std::size_t>(j)];
  }

  [[nodiscard]] const std::vector<Term>& row(int i) const {
    return rows_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double row_lo(int i) const {
    return row_lo_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double row_up(int i) const {
    return row_up_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::string& row_name(int i) const {
    return row_name_[static_cast<std::size_t>(i)];
  }

  /// Evaluate the objective at a full assignment `x`.
  [[nodiscard]] double eval_objective(const std::vector<double>& x) const {
    ARCHEX_REQUIRE(static_cast<int>(x.size()) == num_variables(),
                   "assignment size mismatch");
    double total = 0.0;
    for (std::size_t j = 0; j < obj_.size(); ++j) total += obj_[j] * x[j];
    return total;
  }

  /// Evaluate the activity of row `i` at assignment `x`.
  [[nodiscard]] double eval_row(int i, const std::vector<double>& x) const {
    double total = 0.0;
    for (const Term& t : row(i)) {
      total += t.coef * x[static_cast<std::size_t>(t.var)];
    }
    return total;
  }

  /// True if `x` satisfies every row and column bound within `tol`.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tol = 1e-6) const {
    if (static_cast<int>(x.size()) != num_variables()) return false;
    for (int j = 0; j < num_variables(); ++j) {
      const auto v = x[static_cast<std::size_t>(j)];
      if (v < col_lo(j) - tol || v > col_up(j) + tol) return false;
    }
    for (int i = 0; i < num_constraints(); ++i) {
      const double a = eval_row(i, x);
      if (a < row_lo(i) - tol || a > row_up(i) + tol) return false;
    }
    return true;
  }

 private:
  static std::vector<Term> merge_terms(std::vector<Term> terms);

  std::vector<double> col_lo_;
  std::vector<double> col_up_;
  std::vector<double> obj_;
  std::vector<std::string> col_name_;

  std::vector<std::vector<Term>> rows_;
  std::vector<double> row_lo_;
  std::vector<double> row_up_;
  std::vector<std::string> row_name_;
};

}  // namespace archex::lp
