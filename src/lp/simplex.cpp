// Thin wrapper: one-shot LP solves construct a SimplexEngine (engine.cpp)
// and run a scratch solve. Callers that re-solve after bound changes (the
// branch-and-bound MILP solver) hold a SimplexEngine directly and use its
// dual-simplex reoptimize() path.
#include "lp/simplex.hpp"

#include "lp/engine.hpp"

namespace archex::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kTimeLimit: return "time-limit";
    case SolveStatus::kNumericFailure: return "numeric-failure";
  }
  return "unknown";
}

Solution solve(const Problem& problem, const SimplexOptions& options) {
  SimplexEngine engine(problem, options);
  return engine.solve_from_scratch();
}

}  // namespace archex::lp
