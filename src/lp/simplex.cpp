// Thin wrapper: one-shot LP solves construct a SimplexEngine (engine.cpp)
// and run a scratch solve. Callers that re-solve after bound changes (the
// branch-and-bound MILP solver) hold a SimplexEngine directly and use its
// dual-simplex reoptimize() path.
#include "lp/simplex.hpp"

#include "lp/engine.hpp"

namespace archex::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kTimeLimit: return "time-limit";
    case SolveStatus::kNumericFailure: return "numeric-failure";
  }
  return "unknown";
}

Solution solve(const Problem& problem, const SimplexOptions& options) {
  SimplexEngine engine(problem, options);
  return engine.solve_from_scratch();
}

double box_support(const std::vector<double>& z, const std::vector<double>& lo,
                   const std::vector<double>& up) {
  double sup = 0.0;
  for (std::size_t j = 0; j < z.size(); ++j) {
    const double zj = z[j];
    if (zj == 0.0) continue;
    const double bnd = zj > 0.0 ? up[j] : lo[j];
    if (bnd == kInf || bnd == -kInf) return kInf;
    sup += zj * bnd;
  }
  return sup;
}

}  // namespace archex::lp
