// archex/lp/simplex.hpp
//
// Bounded-variable revised primal simplex with a two-phase start.
//
// This is the LP engine underneath the branch-and-bound MILP solver in
// archex::ilp. The paper used CPLEX behind YALMIP; both ILP-MR and ILP-AR
// treat the solver as a black box, so any sound LP/ILP engine preserves the
// algorithms (see DESIGN.md, substitution table).
//
// Internals (see engine.cpp for details):
//  * each row `lo <= a'x <= up` becomes `a'x - s = 0` with a logical
//    variable s bounded by [lo, up]; the initial basis is all logicals;
//  * rows whose logical starts outside its bounds receive a phase-1
//    artificial; phase 1 minimizes the artificial sum to zero;
//  * the basis is kept as a sparse LU factorization (Markowitz pivoting,
//    basis_lu.hpp) updated by a product-form eta file, with FTRAN/BTRAN as
//    sparse triangular solves; refactorization is triggered by eta-file
//    growth, numeric drift, or a periodic pivot schedule. The explicit
//    dense inverse survives behind SimplexOptions::dense_basis as the
//    differential-testing oracle;
//  * pricing is Devex over a candidate-list partial scan (full Dantzig
//    sweeps only to prove optimality), with a Bland fallback against
//    cycling.
#pragma once

#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace archex::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// The engine's deadline (SimplexEngine::set_deadline) passed mid-solve.
  kTimeLimit,
  kNumericFailure,
};

[[nodiscard]] std::string to_string(SolveStatus status);

struct SimplexOptions {
  /// Hard cap on simplex pivots across both phases; <=0 picks an automatic
  /// cap that scales with problem size.
  long max_iterations = 0;
  /// Feasibility / optimality tolerance.
  double tol = 1e-9;
  /// Rebuild the basis inverse from scratch every this many pivots. The
  /// product-form update is O(m^2) while a refactorization is O(m^3), so
  /// this is drift control only — keep it rare. Basic values are
  /// recomputed (cheaply) every `recompute_every` pivots in between.
  int refactor_every = 4096;
  /// Recompute basic values from the nonbasic assignment this often, to
  /// bound error accumulation between refactorizations.
  int recompute_every = 256;
  /// Number of consecutive non-improving pivots before switching to
  /// Bland's anti-cycling rule.
  int bland_after = 256;

  /// Keep the basis inverse as an explicit dense matrix (the pre-sparse
  /// engine) instead of the sparse LU + eta-file representation. Every
  /// FTRAN/BTRAN/update is then O(m^2); retained as the slow, simple
  /// differential-testing oracle for the sparse path.
  bool dense_basis = false;
  /// Sparse basis: refactorize once the eta file holds this many updates.
  int max_eta = 64;
  /// Sparse basis: refactorize when the eta-file nonzeros exceed this
  /// multiple of the LU factor nonzeros (growth/fill control).
  double eta_growth = 2.0;
  /// Refactorize when periodically recomputing the basic values moves one
  /// of them by more than this (numeric-drift trigger).
  double drift_tol = 1e-6;
  /// Partial pricing: stop the scan once this many improving candidates
  /// have been collected (a full sweep still proves optimality). <= 0
  /// restores the full-scan Devex pricing on the sparse path too.
  int pricing_candidates = 8;
  /// Columns per partial-pricing section; 0 picks an automatic size that
  /// scales with the column count.
  int pricing_section = 0;
};

struct Solution {
  SolveStatus status = SolveStatus::kNumericFailure;
  /// Objective value (meaningful when status == kOptimal).
  double objective = 0.0;
  /// Values of the structural variables (size == problem.num_variables()).
  std::vector<double> x;
  /// Total simplex pivots performed.
  long iterations = 0;
  /// Pivots spent in phase 1 (feasibility restoration), when applicable.
  long phase1_iterations = 0;

  [[nodiscard]] bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Solve `problem` (minimization) with the bounded-variable simplex.
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

/// Supremum of a weighted sum over a box: sup { z'x : lo <= x <= up }
/// (+infinity as soon as a nonzero weight meets an infinite bound on the
/// side it leans on). This is the validity check for a Farkas certificate
/// (SimplexEngine::farkas_ray): every x satisfying the engine's rows has
/// z'x = 0, so a negative supremum proves the box holds no feasible point.
[[nodiscard]] double box_support(const std::vector<double>& z,
                                 const std::vector<double>& lo,
                                 const std::vector<double>& up);

}  // namespace archex::lp
