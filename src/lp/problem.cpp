#include "lp/problem.hpp"

#include <algorithm>

namespace archex::lp {

std::vector<Term> Problem::merge_terms(std::vector<Term> terms) {
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coef += t.coef;
    } else {
      merged.push_back(t);
    }
  }
  // Drop exact zeros produced by cancellation.
  std::erase_if(merged, [](const Term& t) { return t.coef == 0.0; });
  return merged;
}

}  // namespace archex::lp
