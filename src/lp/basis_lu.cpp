// Sparse LU factorization of the simplex basis with Markowitz pivoting,
// plus the product-form eta file applied on top between refactorizations.
// See basis_lu.hpp for the index conventions.
#include "lp/basis_lu.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "support/check.hpp"

namespace archex::lp {

namespace {

/// Relative pivot threshold: a candidate must reach this fraction of the
/// largest magnitude in its column, or it is rejected for stability even
/// when its Markowitz count is minimal.
constexpr double kPivotThreshold = 0.1;
/// Entries whose magnitude falls below this during elimination are dropped
/// (exact-cancellation cleanup; well under the engine's 1e-9 tolerances).
constexpr double kDropTolerance = 1e-14;
/// A column whose largest magnitude is below this is treated as singular,
/// matching the dense path's refactorization threshold.
constexpr double kSingularTolerance = 1e-11;
/// How many of the sparsest active columns are examined per elimination
/// step. A small window keeps selection near-linear while retaining the
/// fill-in control of full Markowitz search on these matrices.
constexpr int kCandidateColumns = 4;

}  // namespace

bool BasisFactor::factorize(int m, const std::vector<SparseColumn>& columns) {
  ARCHEX_REQUIRE(static_cast<int>(columns.size()) == m,
                 "basis column count must equal m");
  m_ = m;
  valid_ = false;
  perm_row_.assign(static_cast<std::size_t>(m), -1);
  perm_col_.assign(static_cast<std::size_t>(m), -1);
  diag_.assign(static_cast<std::size_t>(m), 0.0);
  l_cols_.assign(static_cast<std::size_t>(m), {});
  u_rows_.assign(static_cast<std::size_t>(m), {});
  etas_.clear();
  eta_nonzeros_ = 0;
  lu_nonzeros_ = static_cast<std::size_t>(m);  // diagonals
  if (m == 0) {
    valid_ = true;
    return true;
  }

  // Active submatrix: rows hold (column, value) entries; col_rows holds
  // candidate row indices per column (lazily maintained — entries may be
  // stale and are validated against the row on use); col_count is exact.
  const auto mm = static_cast<std::size_t>(m);
  std::vector<std::vector<std::pair<int, double>>> rows(mm);
  std::vector<std::vector<int>> col_rows(mm);
  std::vector<int> col_count(mm, 0);
  std::vector<bool> row_active(mm, true), col_active(mm, true);
  for (int c = 0; c < m; ++c) {
    for (const auto& [r, v] : columns[static_cast<std::size_t>(c)]) {
      ARCHEX_REQUIRE(r >= 0 && r < m, "basis column row index out of range");
      if (v == 0.0) continue;
      rows[static_cast<std::size_t>(r)].push_back({c, v});
      col_rows[static_cast<std::size_t>(c)].push_back(r);
      ++col_count[static_cast<std::size_t>(c)];
    }
  }

  const auto find_in_row = [&](int r, int c) -> double* {
    for (auto& e : rows[static_cast<std::size_t>(r)]) {
      if (e.first == c) return &e.second;
    }
    return nullptr;
  };
  const auto remove_from_row = [&](int r, int c) {
    auto& row = rows[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].first == c) {
        row[i] = row.back();
        row.pop_back();
        return;
      }
    }
  };

  for (int step = 0; step < m; ++step) {
    // ---- Markowitz pivot selection over the sparsest few columns --------
    int cand[kCandidateColumns];
    int cand_n = 0;
    for (int c = 0; c < m; ++c) {
      if (!col_active[static_cast<std::size_t>(c)]) continue;
      if (col_count[static_cast<std::size_t>(c)] == 0) return false;  // singular
      // Insertion sort into the candidate window by column count.
      int pos = cand_n < kCandidateColumns ? cand_n : kCandidateColumns - 1;
      if (pos == kCandidateColumns - 1 && cand_n == kCandidateColumns &&
          col_count[static_cast<std::size_t>(c)] >=
              col_count[static_cast<std::size_t>(cand[pos])]) {
        continue;
      }
      while (pos > 0 && col_count[static_cast<std::size_t>(c)] <
                            col_count[static_cast<std::size_t>(cand[pos - 1])]) {
        if (pos < kCandidateColumns) cand[pos] = cand[pos - 1];
        --pos;
      }
      cand[pos] = c;
      if (cand_n < kCandidateColumns) ++cand_n;
    }
    if (cand_n == 0) return false;

    int best_row = -1, best_col = -1;
    double best_val = 0.0;
    long best_score = 0;
    for (int ci = 0; ci < cand_n; ++ci) {
      const int c = cand[ci];
      // Validate the column's row list and find its magnitude ceiling.
      double col_max = 0.0;
      for (const int r : col_rows[static_cast<std::size_t>(c)]) {
        if (!row_active[static_cast<std::size_t>(r)]) continue;
        if (const double* v = find_in_row(r, c)) {
          col_max = std::max(col_max, std::abs(*v));
        }
      }
      if (col_max < kSingularTolerance) continue;
      for (const int r : col_rows[static_cast<std::size_t>(c)]) {
        if (!row_active[static_cast<std::size_t>(r)]) continue;
        const double* v = find_in_row(r, c);
        if (v == nullptr || std::abs(*v) < kPivotThreshold * col_max) continue;
        const long score =
            (static_cast<long>(rows[static_cast<std::size_t>(r)].size()) - 1) *
            (static_cast<long>(col_count[static_cast<std::size_t>(c)]) - 1);
        if (best_row < 0 || score < best_score ||
            (score == best_score && std::abs(*v) > std::abs(best_val))) {
          best_row = r;
          best_col = c;
          best_val = *v;
          best_score = score;
        }
      }
    }
    if (best_row < 0) return false;

    const auto ks = static_cast<std::size_t>(step);
    perm_row_[ks] = best_row;
    perm_col_[ks] = best_col;
    diag_[ks] = best_val;

    // ---- record the reduced pivot row as a U row ------------------------
    auto& pivot_row = rows[static_cast<std::size_t>(best_row)];
    auto& urow = u_rows_[ks];
    urow.reserve(pivot_row.size() - 1);
    for (const auto& [c, v] : pivot_row) {
      if (c == best_col) continue;
      urow.push_back({c, v});
      --col_count[static_cast<std::size_t>(c)];  // row leaves the active set
    }
    --col_count[static_cast<std::size_t>(best_col)];
    lu_nonzeros_ += urow.size();

    // ---- eliminate the pivot column from the remaining rows -------------
    auto& lcol = l_cols_[ks];
    for (const int r : col_rows[static_cast<std::size_t>(best_col)]) {
      if (r == best_row || !row_active[static_cast<std::size_t>(r)]) continue;
      const double* vp = find_in_row(r, best_col);
      if (vp == nullptr) continue;  // stale candidate
      const double mult = *vp / best_val;
      lcol.push_back({r, mult});
      remove_from_row(r, best_col);
      --col_count[static_cast<std::size_t>(best_col)];
      if (mult == 0.0) continue;
      for (const auto& [c, v] : urow) {
        if (double* dst = find_in_row(r, c)) {
          *dst -= mult * v;
          if (std::abs(*dst) < kDropTolerance) {
            remove_from_row(r, c);
            --col_count[static_cast<std::size_t>(c)];
          }
        } else {
          const double fill = -mult * v;
          if (std::abs(fill) < kDropTolerance) continue;
          rows[static_cast<std::size_t>(r)].push_back({c, fill});
          col_rows[static_cast<std::size_t>(c)].push_back(r);
          ++col_count[static_cast<std::size_t>(c)];
        }
      }
    }
    lu_nonzeros_ += lcol.size();

    row_active[static_cast<std::size_t>(best_row)] = false;
    col_active[static_cast<std::size_t>(best_col)] = false;
    pivot_row.clear();
  }

  valid_ = true;
  return true;
}

std::vector<double> BasisFactor::ftran(const std::vector<double>& b) const {
  ARCHEX_ASSERT(valid_, "ftran on an unfactorized basis");
  std::vector<double> work = b;
  // L solve, skipping steps whose pivot entry is zero (hyper-sparse path).
  for (int k = 0; k < m_; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const double bp = work[static_cast<std::size_t>(perm_row_[ks])];
    if (bp == 0.0) continue;
    for (const auto& [r, mult] : l_cols_[ks]) {
      work[static_cast<std::size_t>(r)] -= mult * bp;
    }
  }
  // U back-substitution into basis-position space.
  std::vector<double> x(static_cast<std::size_t>(m_), 0.0);
  for (int k = m_ - 1; k >= 0; --k) {
    const auto ks = static_cast<std::size_t>(k);
    double v = work[static_cast<std::size_t>(perm_row_[ks])];
    for (const auto& [c, u] : u_rows_[ks]) {
      v -= u * x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(perm_col_[ks])] = v / diag_[ks];
  }
  // Eta file, oldest first: x <- E_k^{-1} x.
  for (const Eta& e : etas_) {
    double xp = x[static_cast<std::size_t>(e.pivot_pos)];
    if (xp == 0.0) continue;  // E^{-1} fixes vectors with a zero pivot entry
    xp /= e.pivot_value;
    for (const auto& [r, v] : e.entries) {
      x[static_cast<std::size_t>(r)] -= v * xp;
    }
    x[static_cast<std::size_t>(e.pivot_pos)] = xp;
  }
  return x;
}

std::vector<double> BasisFactor::btran(std::vector<double> c) const {
  ARCHEX_ASSERT(valid_, "btran on an unfactorized basis");
  // Eta transposes, newest first: c <- E_k^{-T} c.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = c[static_cast<std::size_t>(it->pivot_pos)];
    for (const auto& [r, v] : it->entries) {
      s -= v * c[static_cast<std::size_t>(r)];
    }
    c[static_cast<std::size_t>(it->pivot_pos)] = s / it->pivot_value;
  }
  // U' forward solve (scatter), step order.
  std::vector<double> w(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const double wk = c[static_cast<std::size_t>(perm_col_[ks])] / diag_[ks];
    w[ks] = wk;
    if (wk == 0.0) continue;
    for (const auto& [cc, u] : u_rows_[ks]) {
      c[static_cast<std::size_t>(cc)] -= u * wk;
    }
  }
  // L' backward solve into row space.
  std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
  for (int k = m_ - 1; k >= 0; --k) {
    const auto ks = static_cast<std::size_t>(k);
    double v = w[ks];
    for (const auto& [r, mult] : l_cols_[ks]) {
      v -= mult * y[static_cast<std::size_t>(r)];
    }
    y[static_cast<std::size_t>(perm_row_[ks])] = v;
  }
  return y;
}

void BasisFactor::push_eta(int pivot_pos, const std::vector<double>& w) {
  ARCHEX_ASSERT(pivot_pos >= 0 && pivot_pos < m_, "eta pivot out of range");
  Eta eta;
  eta.pivot_pos = pivot_pos;
  eta.pivot_value = w[static_cast<std::size_t>(pivot_pos)];
  ARCHEX_ASSERT(std::abs(eta.pivot_value) > 1e-12, "degenerate eta pivot");
  for (int r = 0; r < m_; ++r) {
    if (r == pivot_pos) continue;
    const double v = w[static_cast<std::size_t>(r)];
    if (v != 0.0) eta.entries.push_back({r, v});
  }
  eta_nonzeros_ += eta.entries.size() + 1;
  etas_.push_back(std::move(eta));
}

}  // namespace archex::lp
