// archex/lp/presolve.hpp
//
// Presolve for the ilp::Model -> lp::Problem lowering: shrinks a Problem
// before it reaches the simplex engine and maps solutions of the reduced
// problem back to the original space (postsolve).
//
// Reductions (iterated to a fixpoint):
//  * fixed-variable substitution: a column with lo == up is folded into the
//    row bounds and the objective offset;
//  * empty-row elimination: a row with no remaining nonzeros is dropped
//    (infeasible when 0 lies outside its bounds);
//  * singleton-row elimination: a row with one remaining nonzero becomes a
//    column bound and is dropped;
//  * redundant-row removal: a row whose activity range (from the column
//    boxes) lies inside its bounds can never be violated;
//  * bound propagation: each row's activity range implies bounds on every
//    column it touches; for columns flagged integral the implied bounds are
//    rounded inward, which is exactly the 0/1 tightening the synthesis
//    encodings profit from.
//
// Every reduction remains valid when column bounds are only ever
// *tightened* afterwards — which is all branch & bound does — so the
// reduced problem can be branched on directly and postsolve() stays exact
// throughout the search tree.
#pragma once

#include <vector>

#include "lp/problem.hpp"

namespace archex::lp {

struct PresolveStats {
  int fixed_variables = 0;    // columns substituted out
  int empty_rows = 0;         // rows removed: no remaining nonzeros
  int singleton_rows = 0;     // rows removed: converted to a column bound
  int redundant_rows = 0;     // rows removed: activity range inside bounds
  int bound_tightenings = 0;  // column-bound improvements from propagation
  int passes = 0;             // fixpoint iterations performed

  [[nodiscard]] int rows_removed() const {
    return empty_rows + singleton_rows + redundant_rows;
  }
};

struct PresolveResult {
  /// Presolve proved the problem infeasible; `reduced` is meaningless.
  bool infeasible = false;
  /// The reduced problem (possibly with zero variables or constraints).
  Problem reduced;
  PresolveStats stats;
  /// Objective contribution of the substituted-out columns:
  /// original objective == reduced objective + objective_offset.
  double objective_offset = 0.0;
  /// Original column index -> reduced column index, or -1 when fixed.
  std::vector<int> var_map;
  /// Value of each fixed original column (meaningful where var_map is -1).
  std::vector<double> fixed_value;

  /// Lift a reduced-space assignment back to the original variable space.
  [[nodiscard]] std::vector<double> postsolve(
      const std::vector<double>& reduced_x) const;
};

/// Presolve `problem`. `integer_cols[j]` marks columns that must take
/// integral values in the surrounding ILP; their propagated bounds are
/// rounded inward (pass an empty vector for a pure LP). Rounding only cuts
/// integer-free regions, so ILP optima are preserved; for the LP relaxation
/// it can only raise the bound, which is safe for pruning.
[[nodiscard]] PresolveResult presolve(
    const Problem& problem, const std::vector<bool>& integer_cols = {});

}  // namespace archex::lp
