// Persistent bounded-variable simplex engine: two-phase primal for scratch
// solves plus a dual-simplex re-optimizer for warm starts after bound
// changes. See engine.hpp for the contract and simplex.cpp for the thin
// lp::solve() wrapper.
//
// The basis lives in one of two representations, selected by
// SimplexOptions::dense_basis:
//  * sparse (default): LU factors with Markowitz pivoting plus a
//    product-form eta file (basis_lu.hpp). FTRAN/BTRAN are sparse
//    triangular solves; a pivot appends one eta vector; refactorization is
//    triggered by eta-file growth, numeric drift, or the periodic pivot
//    schedule. Pricing uses a candidate-list partial scan and the row-wise
//    (CSR) matrix view keeps the dual ratio test and Devex updates
//    proportional to the nonzeros the pivot actually touches.
//  * dense (oracle): the original explicit m x m basis inverse with O(m^2)
//    product-form updates and full-scan pricing, kept bit-for-bit as the
//    slow reference the differential tests compare against.
#include "lp/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "lp/basis_lu.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace archex::lp {

namespace detail {

namespace {
enum class VarState : unsigned char { kBasic, kAtLower, kAtUpper, kFree };
}  // namespace

class EngineImpl {
 public:
  EngineImpl(const Problem& problem, const SimplexOptions& options)
      : opt_(options), use_dense_(options.dense_basis) {
    n_ = problem.num_variables();
    m_ = problem.num_constraints();
    snapshot(problem);
    max_iter_ = opt_.max_iterations > 0
                    ? opt_.max_iterations
                    : 4000 + 60L * (static_cast<long>(n_) + m_);
  }

  void set_variable_bounds(int var, double lo, double up) {
    ARCHEX_REQUIRE(var >= 0 && var < n_, "variable out of range");
    ARCHEX_REQUIRE(lo <= up, "variable bounds must satisfy lo <= up");
    cur_lo_[idx(var)] = lo;
    cur_up_[idx(var)] = up;
  }

  [[nodiscard]] double col_lo(int var) const {
    ARCHEX_REQUIRE(var >= 0 && var < n_, "variable out of range");
    return cur_lo_[idx(var)];
  }

  [[nodiscard]] double col_up(int var) const {
    ARCHEX_REQUIRE(var >= 0 && var < n_, "variable out of range");
    return cur_up_[idx(var)];
  }

  [[nodiscard]] int num_rows() const { return m_; }
  [[nodiscard]] int num_structural() const { return n_; }
  [[nodiscard]] bool has_basis() const { return basis_valid_; }

  [[nodiscard]] int basic_variable(int i) const {
    ARCHEX_REQUIRE(basis_valid_, "no valid basis");
    ARCHEX_REQUIRE(i >= 0 && i < m_, "row out of range");
    return basis_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] SimplexEngine::ColStatus column_status(int j) const {
    ARCHEX_REQUIRE(basis_valid_, "no valid basis");
    ARCHEX_REQUIRE(j >= 0 && j < n_ + m_, "column out of range");
    switch (state_[idx(j)]) {
      case VarState::kBasic: return SimplexEngine::ColStatus::kBasic;
      case VarState::kAtLower: return SimplexEngine::ColStatus::kAtLower;
      case VarState::kAtUpper: return SimplexEngine::ColStatus::kAtUpper;
      case VarState::kFree: break;
    }
    return SimplexEngine::ColStatus::kFree;
  }

  [[nodiscard]] double column_value(int j) const {
    ARCHEX_REQUIRE(basis_valid_, "no valid basis");
    ARCHEX_REQUIRE(j >= 0 && j < n_ + m_, "column out of range");
    return x_[idx(j)];
  }

  [[nodiscard]] double column_lower(int j) const {
    ARCHEX_REQUIRE(basis_valid_, "no valid basis");
    ARCHEX_REQUIRE(j >= 0 && j < n_ + m_, "column out of range");
    return lo_[idx(j)];
  }

  [[nodiscard]] double column_upper(int j) const {
    ARCHEX_REQUIRE(basis_valid_, "no valid basis");
    ARCHEX_REQUIRE(j >= 0 && j < n_ + m_, "column out of range");
    return up_[idx(j)];
  }

  [[nodiscard]] bool tableau_row(int i, std::vector<double>& alpha) {
    if (!basis_valid_) return false;
    ARCHEX_REQUIRE(i >= 0 && i < m_, "row out of range");
    const int nm = n_ + m_;
    alpha.assign(static_cast<std::size_t>(nm), 0.0);
    if (use_dense_) {
      const double* rho = &binv(i, 0);
      for (int j = 0; j < nm; ++j) {
        double a = 0.0;
        for (const auto& [row, coef] : cols_[idx(j)]) {
          a += rho[row] * coef;
        }
        alpha[idx(j)] = a;
      }
      return true;
    }
    const std::vector<double> rho = basis_row(i);
    scatter_alpha(rho);
    for (const int j : touched_) {
      if (j < nm) alpha[idx(j)] = alpha_[idx(j)];
    }
    clear_alpha();
    return true;
  }

  [[nodiscard]] bool reduced_costs(std::vector<double>& d) {
    if (!basis_valid_) return false;
    const int nm = n_ + m_;
    // Duals from the true costs: the basis may have been selected under the
    // anti-degeneracy perturbation, but reduced-cost fixing needs bounds on
    // the *actual* objective, so the perturbation is left out here.
    std::vector<double> y;
    if (use_dense_) {
      y.assign(static_cast<std::size_t>(m_), 0.0);
      for (int i = 0; i < m_; ++i) {
        const int b = basis_[static_cast<std::size_t>(i)];
        const double cb = is_artificial_[idx(b)] ? 0.0 : cost_[idx(b)];
        if (cb == 0.0) continue;
        for (int r = 0; r < m_; ++r) {
          y[static_cast<std::size_t>(r)] += cb * binv(i, r);
        }
      }
    } else {
      std::vector<double> c(static_cast<std::size_t>(m_), 0.0);
      for (int i = 0; i < m_; ++i) {
        const int b = basis_[static_cast<std::size_t>(i)];
        c[static_cast<std::size_t>(i)] =
            is_artificial_[idx(b)] ? 0.0 : cost_[idx(b)];
      }
      y = factor_.btran(std::move(c));
    }
    d.assign(static_cast<std::size_t>(nm), 0.0);
    for (int j = 0; j < nm; ++j) {
      if (state_[idx(j)] == VarState::kBasic) continue;
      double red = cost_[idx(j)];
      for (const auto& [row, coef] : cols_[idx(j)]) {
        red -= y[static_cast<std::size_t>(row)] * coef;
      }
      d[idx(j)] = red;
    }
    return true;
  }

  void add_constraint(const std::vector<Term>& terms, double lo, double up) {
    ARCHEX_REQUIRE(lo <= up, "row bounds must satisfy lo <= up");
    // Merge duplicate variables through a dense scratch so the snapshot
    // columns stay canonical.
    std::vector<double> dense(static_cast<std::size_t>(n_), 0.0);
    for (const Term& t : terms) {
      ARCHEX_REQUIRE(t.var >= 0 && t.var < n_,
                     "cut references unknown variable");
      dense[idx(t.var)] += t.coef;
    }
    const int row = m_;
    for (int j = 0; j < n_; ++j) {
      if (dense[idx(j)] != 0.0) base_cols_[idx(j)].push_back({row, dense[idx(j)]});
    }
    // The new row's logical lands at index n + m, directly after the
    // existing logicals, so all column indices stay stable.
    base_cols_.push_back({{row, -1.0}});
    base_lo_.push_back(lo);
    base_up_.push_back(up);
    cost_.resize(static_cast<std::size_t>(base_total_));  // drop stale artificials
    cost_.push_back(0.0);
    // Deterministic perturbation entry for the new logical, same scale rule
    // as snapshot() (cost 0), keyed off the column index so repeated cut
    // sequences reproduce bit-for-bit.
    double p = 0.0;
    if (lo != -kInf && up != kInf) {
      SplitMix64 mix(0x9e3779b97f4a7c15ULL ^
                     (0xff51afd7ed558ccdULL *
                      static_cast<std::uint64_t>(base_total_ + 1)));
      const double u = 0.5 + static_cast<double>(mix.next() >> 11) * 0x1.0p-54;
      p = 1e-9 * u;
      pert_slack_ += p * std::max(std::abs(lo), std::abs(up));
    }
    pert_.push_back(p);
    ++m_;
    ++base_total_;
    if (opt_.max_iterations <= 0) {
      max_iter_ = 4000 + 60L * (static_cast<long>(n_) + m_);
    }
    basis_valid_ = false;
    farkas_valid_ = false;  // a certificate does not cover the new row
  }

  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    have_deadline_ = true;
  }

  void clear_deadline() { have_deadline_ = false; }

  [[nodiscard]] bool farkas_ray(std::vector<double>& z, double& margin) const {
    if (!farkas_valid_) return false;
    z = farkas_z_;
    margin = farkas_margin_;
    return true;
  }

  Solution solve_from_scratch() {
    ++stats_.scratch_solves;
    basis_valid_ = false;
    farkas_valid_ = false;
    iterations_ = 0;
    Solution out;
    if (m_ == 0) return solve_unconstrained();

    reset_working_state();
    if (!initial_basis()) {
      out.status = SolveStatus::kNumericFailure;
      return out;
    }
    const int num_artificials = install_artificials();

    long phase1_pivots = 0;
    if (num_artificials > 0) {
      const SolveStatus s1 = primal_iterate(/*phase1=*/true);
      phase1_pivots = iterations_;
      if (s1 == SolveStatus::kIterationLimit ||
          s1 == SolveStatus::kTimeLimit ||
          s1 == SolveStatus::kNumericFailure) {
        out.status = s1;
        out.iterations = iterations_;
        return out;
      }
      if (phase1_objective() > 1e-7) {
        // Phase-1 optimality with a positive artificial sum: the phase-1
        // duals y1 = B^{-T} c1_B are the Farkas ray (sup over the boxes of
        // (y1'A)'x equals -phase1_objective < 0; see capture_farkas).
        capture_farkas(btran_cost(/*phase1=*/true), +1.0);
        out.status = SolveStatus::kInfeasible;
        out.iterations = iterations_;
        return out;
      }
      retire_artificials();
    }

    const SolveStatus s2 = primal_iterate(/*phase1=*/false);
    Solution result = finish(s2);
    result.phase1_iterations = phase1_pivots;
    return result;
  }

  Solution reoptimize() {
    if (!basis_valid_) return solve_from_scratch();
    farkas_valid_ = false;
    iterations_ = 0;

    // Publish the current structural bounds into the working arrays.
    std::copy(cur_lo_.begin(), cur_lo_.end(), lo_.begin());
    std::copy(cur_up_.begin(), cur_up_.end(), up_.begin());

    // Snap nonbasic variables onto their (possibly moved) bounds; basic
    // values are then recomputed. Dual feasibility is untouched by bound
    // changes, so the dual loop can restore primal feasibility directly.
    for (int j = 0; j < total_; ++j) {
      switch (state_[idx(j)]) {
        case VarState::kAtLower:
          if (lo_[idx(j)] == -kInf) {
            if (up_[idx(j)] != kInf) {
              state_[idx(j)] = VarState::kAtUpper;
              x_[idx(j)] = up_[idx(j)];
            } else {
              state_[idx(j)] = VarState::kFree;
              x_[idx(j)] = 0.0;
            }
          } else {
            x_[idx(j)] = lo_[idx(j)];
          }
          break;
        case VarState::kAtUpper:
          if (up_[idx(j)] == kInf) {
            if (lo_[idx(j)] != -kInf) {
              state_[idx(j)] = VarState::kAtLower;
              x_[idx(j)] = lo_[idx(j)];
            } else {
              state_[idx(j)] = VarState::kFree;
              x_[idx(j)] = 0.0;
            }
          } else {
            x_[idx(j)] = up_[idx(j)];
          }
          break;
        case VarState::kBasic:
        case VarState::kFree:
          break;
      }
    }
    // Restore dual feasibility. Bound relaxations (branch-and-bound
    // backtracking) can leave a nonbasic variable on a bound whose reduced-
    // cost sign is wrong; for boxed variables a bound flip fixes the sign,
    // otherwise only a scratch solve can.
    {
      const std::vector<double> y = btran_cost(/*phase1=*/false);
      for (int j = 0; j < total_; ++j) {
        const VarState st = state_[idx(j)];
        if (st == VarState::kBasic) continue;
        if (lo_[idx(j)] == up_[idx(j)]) continue;  // fixed: any sign is fine
        double d = effective_cost(j, /*phase1=*/false);
        for (const auto& [row, coef] : cols_[idx(j)]) {
          d -= y[static_cast<std::size_t>(row)] * coef;
        }
        if (st == VarState::kAtLower && d < -opt_.tol) {
          if (up_[idx(j)] == kInf) {
            ++stats_.restore_fallbacks;
            return solve_from_scratch();
          }
          state_[idx(j)] = VarState::kAtUpper;
          x_[idx(j)] = up_[idx(j)];
        } else if (st == VarState::kAtUpper && d > opt_.tol) {
          if (lo_[idx(j)] == -kInf) {
            ++stats_.restore_fallbacks;
            return solve_from_scratch();
          }
          state_[idx(j)] = VarState::kAtLower;
          x_[idx(j)] = lo_[idx(j)];
        } else if (st == VarState::kFree && std::abs(d) > opt_.tol) {
          ++stats_.restore_fallbacks;
          return solve_from_scratch();
        }
      }
    }
    recompute_basics();

    const SolveStatus status = dual_iterate();
    if (status == SolveStatus::kOptimal ||
        status == SolveStatus::kInfeasible) {
      ++stats_.dual_reopts;
      return finish(status);
    }
    // A deadline abort must propagate, not trigger the scratch fallback
    // (which would keep pivoting past the limit).
    if (status == SolveStatus::kTimeLimit) return finish(status);
    // Stall, limit or numeric trouble: fall back to a clean solve.
    ++stats_.dual_fallbacks;
    if (status == SolveStatus::kIterationLimit) ++stats_.dual_limit;
    else ++stats_.dual_numeric;
    return solve_from_scratch();
  }

  [[nodiscard]] const SimplexEngine::Stats& stats() const { return stats_; }

 private:
  // Structural variables use the *current* (possibly overridden) bounds.
  void snapshot(const Problem& problem) {
    base_total_ = n_ + m_;
    base_cols_.assign(static_cast<std::size_t>(base_total_), {});
    base_lo_.assign(static_cast<std::size_t>(base_total_), 0.0);
    base_up_.assign(static_cast<std::size_t>(base_total_), 0.0);
    cost_.assign(static_cast<std::size_t>(base_total_), 0.0);
    for (int j = 0; j < n_; ++j) {
      base_lo_[idx(j)] = problem.col_lo(j);
      base_up_[idx(j)] = problem.col_up(j);
      cost_[idx(j)] = problem.objective_coef(j);
    }
    for (int i = 0; i < m_; ++i) {
      for (const Term& t : problem.row(i)) {
        if (t.coef != 0.0) base_cols_[idx(t.var)].push_back({i, t.coef});
      }
      const int s = n_ + i;
      base_cols_[idx(s)].push_back({i, -1.0});
      base_lo_[idx(s)] = problem.row_lo(i);
      base_up_[idx(s)] = problem.row_up(i);
    }
    cur_lo_.assign(base_lo_.begin(), base_lo_.begin() + n_);
    cur_up_.assign(base_up_.begin(), base_up_.begin() + n_);

    // Deterministic anti-degeneracy cost perturbation, activated lazily
    // when the pivot loop stalls (see iterate()). Scaled well below the
    // data so the perturbed optimum's true cost differs from the true
    // optimum by at most bound_slack().
    pert_.assign(static_cast<std::size_t>(base_total_), 0.0);
    pert_slack_ = 0.0;
    SplitMix64 mix(0x9e3779b97f4a7c15ULL);
    for (int j = 0; j < base_total_; ++j) {
      const double lo = base_lo_[idx(j)];
      const double up = base_up_[idx(j)];
      if (lo == -kInf || up == kInf) continue;  // keep unbounded vars exact
      const double u = 0.5 + static_cast<double>(mix.next() >> 11) * 0x1.0p-54;
      pert_[idx(j)] = 1e-9 * (1.0 + std::abs(cost_[idx(j)])) * u;
      pert_slack_ += pert_[idx(j)] * std::max(std::abs(lo), std::abs(up));
    }
  }

 public:
  /// Worst-case gap between the reported objective and the true LP optimum
  /// introduced by the active perturbation (0 when inactive).
  [[nodiscard]] double bound_slack() const {
    return perturbed_ ? pert_slack_ : 0.0;
  }

 private:

  void reset_working_state() {
    total_ = base_total_;
    cols_ = base_cols_;
    lo_ = base_lo_;
    up_ = base_up_;
    std::copy(cur_lo_.begin(), cur_lo_.end(), lo_.begin());
    std::copy(cur_up_.begin(), cur_up_.end(), up_.begin());
    cost_.resize(static_cast<std::size_t>(base_total_));
    is_artificial_.assign(static_cast<std::size_t>(base_total_), false);
    artificials_.clear();

    // Row-wise (CSR) view over all working columns; the sparse path's dual
    // ratio test and Devex updates walk rows a nonzero dual weight touches
    // instead of dotting every column.
    row_terms_.assign(static_cast<std::size_t>(m_), {});
    for (int j = 0; j < total_; ++j) {
      for (const auto& [row, coef] : cols_[idx(j)]) {
        row_terms_[static_cast<std::size_t>(row)].push_back({j, coef});
      }
    }
    alpha_.assign(static_cast<std::size_t>(total_), 0.0);
    touched_.clear();
  }

  Solution solve_unconstrained() {
    Solution out;
    out.x.assign(static_cast<std::size_t>(n_), 0.0);
    double obj = 0.0;
    for (int j = 0; j < n_; ++j) {
      const double c = cost_[idx(j)];
      const double lo = cur_lo_[idx(j)];
      const double up = cur_up_[idx(j)];
      double v = 0.0;
      if (c > 0.0) {
        if (lo == -kInf) { out.status = SolveStatus::kUnbounded; return out; }
        v = lo;
      } else if (c < 0.0) {
        if (up == kInf) { out.status = SolveStatus::kUnbounded; return out; }
        v = up;
      } else {
        if (lo != -kInf && 0.0 < lo) v = lo;
        else if (up != kInf && 0.0 > up) v = up;
      }
      out.x[idx(j)] = v;
      obj += c * v;
    }
    out.status = SolveStatus::kOptimal;
    out.objective = obj;
    return out;
  }

  [[nodiscard]] bool initial_basis() {
    x_.assign(static_cast<std::size_t>(total_), 0.0);
    state_.assign(static_cast<std::size_t>(total_), VarState::kAtLower);
    for (int j = 0; j < n_; ++j) {
      const double lo = lo_[idx(j)];
      const double up = up_[idx(j)];
      if (lo == -kInf && up == kInf) {
        state_[idx(j)] = VarState::kFree;
      } else if (lo == -kInf) {
        state_[idx(j)] = VarState::kAtUpper;
        x_[idx(j)] = up;
      } else if (up == kInf) {
        x_[idx(j)] = lo;
      } else {
        const bool lower = std::abs(lo) <= std::abs(up);
        state_[idx(j)] = lower ? VarState::kAtLower : VarState::kAtUpper;
        x_[idx(j)] = lower ? lo : up;
      }
    }
    basis_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      const int s = n_ + i;
      basis_[static_cast<std::size_t>(i)] = s;
      state_[idx(s)] = VarState::kBasic;
    }
    if (use_dense_) {
      binv_.assign(
          static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
      for (int i = 0; i < m_; ++i) binv(i, i) = -1.0;  // B = -I (all logicals)
      recompute_basics();
      return true;
    }
    // Sparse path: factorize the (diagonal) all-logical basis.
    return refactorize();
  }

  int install_artificials() {
    int added = 0;
    for (int i = 0; i < m_; ++i) {
      const int s = n_ + i;
      if (state_[idx(s)] != VarState::kBasic) continue;
      const double v = x_[idx(s)];
      const double lo = lo_[idx(s)];
      const double up = up_[idx(s)];
      double target = v;
      if (v < lo - opt_.tol) target = lo;
      else if (v > up + opt_.tol) target = up;
      else continue;

      const double alpha = (target > v) ? 1.0 : -1.0;
      const int t = total_;
      ++total_;
      cols_.push_back({{i, alpha}});
      row_terms_[static_cast<std::size_t>(i)].push_back({t, alpha});
      lo_.push_back(0.0);
      up_.push_back(kInf);
      cost_.push_back(0.0);
      x_.push_back((target - v) / alpha);
      state_.push_back(VarState::kBasic);
      is_artificial_.push_back(true);
      alpha_.push_back(0.0);

      state_[idx(s)] = (target == lo) ? VarState::kAtLower : VarState::kAtUpper;
      x_[idx(s)] = target;
      basis_[static_cast<std::size_t>(i)] = t;
      if (use_dense_) binv(i, i) = 1.0 / alpha;
      ++added;
      artificials_.push_back(t);
    }
    // The sparse factors still describe the all-logical basis; refresh them
    // for the (still diagonal) artificial-patched one.
    if (!use_dense_ && added > 0) {
      if (!refactorize()) {
        // Diagonal basis: factorization cannot fail unless the data is
        // broken; treat like the dense path's impossibility.
        ARCHEX_ASSERT(false, "artificial basis refactorization failed");
      }
    }
    return added;
  }

  double phase1_objective() const {
    double total = 0.0;
    for (int t : artificials_) total += x_[idx(t)];
    return total;
  }

  void retire_artificials() {
    for (int t : artificials_) {
      lo_[idx(t)] = 0.0;
      up_[idx(t)] = 0.0;
      if (state_[idx(t)] != VarState::kBasic) {
        state_[idx(t)] = VarState::kAtLower;
      }
      if (x_[idx(t)] < 1e-9) x_[idx(t)] = 0.0;
    }
  }

  Solution finish(SolveStatus status) {
    Solution out;
    out.status = status;
    out.iterations = iterations_;
    stats_.total_pivots += iterations_;
    if (status == SolveStatus::kOptimal) {
      out.x.assign(x_.begin(), x_.begin() + n_);
      polish(out.x);
      double obj = 0.0;
      for (int j = 0; j < n_; ++j) obj += cost_[idx(j)] * out.x[idx(j)];
      out.objective = obj;
      basis_valid_ = true;
    } else {
      basis_valid_ = false;
    }
    return out;
  }

  /// True once the caller's deadline has passed. The call sites poll every
  /// 64 pivots: a clock read costs a fraction of a pivot, so the abort lands
  /// within a few dozen pivots of the deadline.
  [[nodiscard]] bool past_deadline() const {
    return have_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  // ---- primal simplex (two-phase) ------------------------------------------

  SolveStatus primal_iterate(bool phase1) {
    int since_refactor = 0;
    int stalled = 0;
    double last_obj = current_objective(phase1);
    // Fresh Devex reference framework per phase.
    devex_.assign(static_cast<std::size_t>(total_), 1.0);

    while (true) {
      if ((iterations_ & 63) == 0 && past_deadline()) {
        return SolveStatus::kTimeLimit;
      }
      if (iterations_ >= max_iter_) return SolveStatus::kIterationLimit;

      const bool bland = stalled >= opt_.bland_after;
      int entering = -1;
      int dir = 0;
      if (!price(phase1, bland, entering, dir)) return SolveStatus::kOptimal;

      std::vector<double> w = ftran(entering);

      const double pivot_tol = 1e-8;
      double best_t = kInf;
      double best_pivot = 0.0;
      double leave_t = kInf;  // ratio of the chosen leaving candidate
      int leave = -1;
      bool leave_at_upper = false;
      for (int i = 0; i < m_; ++i) {
        const double v = dir * w[static_cast<std::size_t>(i)];
        const int b = basis_[static_cast<std::size_t>(i)];
        double t = kInf;
        bool hits_upper = false;
        if (v > pivot_tol) {
          if (lo_[idx(b)] == -kInf) continue;
          t = (x_[idx(b)] - lo_[idx(b)]) / v;
        } else if (v < -pivot_tol) {
          if (up_[idx(b)] == kInf) continue;
          t = (x_[idx(b)] - up_[idx(b)]) / v;
          hits_upper = true;
        } else {
          continue;
        }
        if (t < 0.0) t = 0.0;
        // Harris-style window: among candidates whose ratio is within a
        // small absolute band of the minimum, prefer the largest pivot
        // magnitude (numerical stability beats exactness by <= 1e-7 here).
        bool take = false;
        if (leave < 0 || t < best_t - 1e-7) {
          take = true;
        } else if (t <= best_t + 1e-7) {
          take = bland ? b < basis_[static_cast<std::size_t>(leave)]
                       : std::abs(v) > best_pivot;
        }
        if (take) {
          best_t = std::min(t, best_t);
          best_pivot = std::abs(v);
          leave = i;
          leave_at_upper = hits_upper;
          leave_t = t;
        }
      }

      const double range = up_[idx(entering)] - lo_[idx(entering)];
      const bool bound_flip = leave < 0 || range < leave_t;
      const double step = bound_flip ? range : leave_t;
      if (step == kInf) {
        return phase1 ? SolveStatus::kNumericFailure : SolveStatus::kUnbounded;
      }

      x_[idx(entering)] += dir * step;
      for (int i = 0; i < m_; ++i) {
        const int b = basis_[static_cast<std::size_t>(i)];
        x_[idx(b)] -= dir * w[static_cast<std::size_t>(i)] * step;
      }

      if (bound_flip) {
        state_[idx(entering)] =
            (dir > 0) ? VarState::kAtUpper : VarState::kAtLower;
        x_[idx(entering)] = (dir > 0) ? up_[idx(entering)] : lo_[idx(entering)];
      } else {
        ARCHEX_ASSERT(leave >= 0, "ratio test found no leaving variable");
        const int leaving = basis_[static_cast<std::size_t>(leave)];
        state_[idx(leaving)] =
            leave_at_upper ? VarState::kAtUpper : VarState::kAtLower;
        x_[idx(leaving)] =
            leave_at_upper ? up_[idx(leaving)] : lo_[idx(leaving)];
        devex_update(entering, leaving, leave,
                     w[static_cast<std::size_t>(leave)]);
        basis_[static_cast<std::size_t>(leave)] = entering;
        state_[idx(entering)] = VarState::kBasic;
        apply_basis_update(w, leave);
      }

      ++iterations_;
      if (!maintain_basis(since_refactor)) return SolveStatus::kNumericFailure;

      const double obj = current_objective(phase1);
      if (obj < last_obj - 1e-12) {
        stalled = 0;
        last_obj = obj;
      } else {
        ++stalled;
        // Degenerate stalling: switch on the cost perturbation well before
        // the (slow) Bland fallback would engage.
        if (!phase1 && !perturbed_ && stalled >= 64) perturbed_ = true;
      }
    }
  }

  bool price(bool phase1, bool bland, int& entering, int& dir) {
    const std::vector<double> y = btran_cost(phase1);
    entering = -1;
    dir = 0;
    double best_score = 0.0;

    const auto consider = [&](int j) {
      const VarState st = state_[idx(j)];
      if (st == VarState::kBasic) return false;
      if (lo_[idx(j)] == up_[idx(j)]) return false;
      double d = effective_cost(j, phase1);
      for (const auto& [row, coef] : cols_[idx(j)]) {
        d -= y[static_cast<std::size_t>(row)] * coef;
      }
      int cand_dir = 0;
      double violation = 0.0;
      if ((st == VarState::kAtLower || st == VarState::kFree) &&
          d < -opt_.tol) {
        cand_dir = +1;
        violation = -d;
      } else if ((st == VarState::kAtUpper || st == VarState::kFree) &&
                 d > opt_.tol) {
        cand_dir = -1;
        violation = d;
      }
      if (cand_dir == 0) return false;
      // Devex: maximize d^2 / weight rather than the raw violation.
      const double score = violation * violation / devex_[idx(j)];
      if (score > best_score && violation > opt_.tol) {
        best_score = score;
        entering = j;
        dir = cand_dir;
      }
      return true;
    };

    if (bland) {
      // Bland's rule needs the lowest-index improving column: full
      // ascending scan, first hit wins.
      for (int j = 0; j < total_; ++j) {
        if (consider(j)) {
          entering = j;
          const VarState st = state_[idx(j)];
          double d = effective_cost(j, phase1);
          for (const auto& [row, coef] : cols_[idx(j)]) {
            d -= y[static_cast<std::size_t>(row)] * coef;
          }
          dir = (st == VarState::kAtUpper || (st == VarState::kFree && d > 0))
                    ? -1
                    : +1;
          return true;
        }
      }
      return false;
    }

    const bool partial = !use_dense_ && opt_.pricing_candidates > 0;
    if (!partial) {
      for (int j = 0; j < total_; ++j) consider(j);
      return entering >= 0;
    }

    // Candidate-list partial pricing: scan sections round-robin from the
    // last cursor, stopping once enough improving candidates were seen.
    // Only a full unfruitful sweep declares optimality, so the stopping
    // rule affects pivot order, never correctness.
    const int section = opt_.pricing_section > 0
                            ? opt_.pricing_section
                            : std::max(64, total_ / 8);
    int found = 0;
    int scanned = 0;
    int j = price_cursor_ >= total_ ? 0 : price_cursor_;
    while (scanned < total_) {
      for (int s = 0; s < section && scanned < total_; ++s, ++scanned) {
        if (consider(j)) ++found;
        if (++j >= total_) j = 0;
      }
      if (found >= opt_.pricing_candidates) break;
    }
    price_cursor_ = j;
    return entering >= 0;
  }

  /// Forrest–Goldfarb approximate Devex weight update after a basis change.
  /// `pivot` is the pivot element (the leaving row's entry of the FTRANed
  /// entering column). Called BEFORE the basis representation is updated,
  /// so basis_row(pivot_row) is still the pre-pivot rho = e_r B^{-1}.
  void devex_update(int entering, int leaving, int pivot_row, double pivot) {
    const double wq = devex_[idx(entering)];
    const double pivot_sq = pivot * pivot;
    if (wq / pivot_sq > 1e8) {
      // Reference framework exhausted: restart.
      devex_.assign(static_cast<std::size_t>(total_), 1.0);
      return;
    }
    const auto bump = [&](int j, double alpha) {
      if (state_[idx(j)] == VarState::kBasic || j == entering) return;
      if (lo_[idx(j)] == up_[idx(j)]) return;
      if (alpha == 0.0) return;
      const double cand = (alpha * alpha / pivot_sq) * wq;
      if (cand > devex_[idx(j)]) devex_[idx(j)] = cand;
    };
    if (use_dense_) {
      const double* rho = &binv(pivot_row, 0);
      for (int j = 0; j < total_; ++j) {
        if (state_[idx(j)] == VarState::kBasic || j == entering) continue;
        if (lo_[idx(j)] == up_[idx(j)]) continue;
        double alpha = 0.0;
        for (const auto& [row, coef] : cols_[idx(j)]) {
          alpha += rho[row] * coef;
        }
        bump(j, alpha);
      }
    } else {
      const std::vector<double> rho = basis_row(pivot_row);
      scatter_alpha(rho);
      for (const int j : touched_) bump(j, alpha_[idx(j)]);
      clear_alpha();
    }
    devex_[idx(leaving)] = std::max(wq / pivot_sq, 1.0);
  }

  // ---- dual simplex re-optimization -----------------------------------------

  SolveStatus dual_iterate() {
    int since_refactor = 0;
    const long dual_cap = 100 + m_ / 2;
    long local_iters = 0;
    const bool trace = std::getenv("ARCHEX_DUAL_TRACE") != nullptr;

    // Early stall detection: degenerate flip cycles leave the total
    // infeasibility unchanged; bail out to a scratch solve quickly instead
    // of burning the full pivot budget.
    double best_infeasibility = kInf;
    int no_progress = 0;

    while (true) {
      if ((local_iters & 63) == 0 && past_deadline()) {
        return SolveStatus::kTimeLimit;
      }
      if (local_iters++ >= dual_cap) return SolveStatus::kIterationLimit;
      if (iterations_ >= max_iter_) return SolveStatus::kIterationLimit;
      {
        double total_v = 0.0;
        for (int i = 0; i < m_; ++i) {
          const int b = basis_[static_cast<std::size_t>(i)];
          const double v = x_[idx(b)];
          if (v < lo_[idx(b)]) total_v += lo_[idx(b)] - v;
          else if (v > up_[idx(b)]) total_v += v - up_[idx(b)];
        }
        if (total_v < best_infeasibility - 1e-9) {
          best_infeasibility = total_v;
          no_progress = 0;
        } else if (++no_progress >= 40) {
          return SolveStatus::kIterationLimit;
        }
      }
      if (trace && local_iters % 500 == 0) {
        std::fprintf(stderr, "[dual %ld] infeas=%.3e obj=%.6f\n", local_iters,
                     best_infeasibility, current_objective(false));
      }

      // Leaving: the basic variable with the largest bound violation.
      int leave = -1;
      bool below = false;
      double worst = 1e-9;
      for (int i = 0; i < m_; ++i) {
        const int b = basis_[static_cast<std::size_t>(i)];
        const double v = x_[idx(b)];
        if (v < lo_[idx(b)] - 1e-9) {
          const double viol = lo_[idx(b)] - v;
          if (viol > worst) { worst = viol; leave = i; below = true; }
        } else if (v > up_[idx(b)] + 1e-9) {
          const double viol = v - up_[idx(b)];
          if (viol > worst) { worst = viol; leave = i; below = false; }
        }
      }
      if (leave < 0) return SolveStatus::kOptimal;

      // Entering: dual ratio test on row `leave` of Binv * A.
      const std::vector<double> y = btran_cost(/*phase1=*/false);
      int entering = -1;
      double best_ratio = kInf;
      double best_alpha = 0.0;

      const auto consider = [&](int j, double alpha) {
        const VarState st = state_[idx(j)];
        if (st == VarState::kBasic) return;
        if (lo_[idx(j)] == up_[idx(j)]) return;
        if (std::abs(alpha) < 1e-9) return;
        // x_Br responds to Δx_j with slope -alpha. To fix a below-lower
        // violation we must increase x_Br: at-lower j (Δ>0) needs alpha<0,
        // at-upper j (Δ<0) needs alpha>0; mirrored for above-upper.
        const bool can_increase =
            st == VarState::kAtLower || st == VarState::kFree;
        const bool can_decrease =
            st == VarState::kAtUpper || st == VarState::kFree;
        bool eligible = false;
        if (below) {
          eligible =
              (can_increase && alpha < 0.0) || (can_decrease && alpha > 0.0);
        } else {
          eligible =
              (can_increase && alpha > 0.0) || (can_decrease && alpha < 0.0);
        }
        if (!eligible) return;
        double d = effective_cost(j, /*phase1=*/false);
        for (const auto& [row, coef] : cols_[idx(j)]) {
          d -= y[static_cast<std::size_t>(row)] * coef;
        }
        const double ratio = std::abs(d) / std::abs(alpha);
        // Same Harris-style window as the primal ratio test.
        if (ratio < best_ratio - 1e-7 ||
            (ratio < best_ratio + 1e-7 && std::abs(alpha) > best_alpha)) {
          best_ratio = std::min(ratio, best_ratio);
          best_alpha = std::abs(alpha);
          entering = j;
        }
      };

      if (use_dense_) {
        const double* rho = &binv(leave, 0);
        for (int j = 0; j < total_; ++j) {
          if (state_[idx(j)] == VarState::kBasic) continue;
          if (lo_[idx(j)] == up_[idx(j)]) continue;
          double alpha = 0.0;
          for (const auto& [row, coef] : cols_[idx(j)]) {
            alpha += rho[row] * coef;
          }
          consider(j, alpha);
        }
      } else {
        // Sparse: rho touches few rows; only columns intersecting those
        // rows can have alpha != 0, so walk the CSR lists instead of
        // dotting every column against rho.
        const std::vector<double> rho = basis_row(leave);
        scatter_alpha(rho);
        for (const int j : touched_) consider(j, alpha_[idx(j)]);
        clear_alpha();
      }
      if (entering < 0) {
        // Dual unbounded = primal infeasible. Row `leave` of B^{-1} (sign
        // flipped for a below-lower violation) is the Farkas ray: no
        // nonbasic column can move to repair the violated basic bound, so
        // the ray's box supremum stays short of feasibility by at least
        // the violation itself.
        capture_farkas(basis_row(leave), below ? -1.0 : +1.0);
        return SolveStatus::kInfeasible;
      }

      std::vector<double> w = ftran(entering);
      const double pivot = w[static_cast<std::size_t>(leave)];
      if (std::abs(pivot) < 1e-9) {
        if (!refactorize()) return SolveStatus::kNumericFailure;
        continue;  // retry with a fresh factorization
      }
      const int leaving = basis_[static_cast<std::size_t>(leave)];
      const double target = below ? lo_[idx(leaving)] : up_[idx(leaving)];
      const double delta = (x_[idx(leaving)] - target) / pivot;

      // Bounded-variable dual simplex needs bound flips: when fixing the
      // violation would push the entering variable past its *own* opposite
      // bound, flip it there instead (no basis change) and re-select. The
      // violation shrinks by |pivot| * range, so this makes progress.
      const double range = up_[idx(entering)] - lo_[idx(entering)];
      if (std::abs(delta) > range + 1e-12) {
        const double step = (delta > 0.0) ? range : -range;
        x_[idx(entering)] += step;
        for (int i = 0; i < m_; ++i) {
          const int b = basis_[static_cast<std::size_t>(i)];
          x_[idx(b)] -= w[static_cast<std::size_t>(i)] * step;
        }
        state_[idx(entering)] =
            (delta > 0.0) ? VarState::kAtUpper : VarState::kAtLower;
        x_[idx(entering)] =
            (delta > 0.0) ? up_[idx(entering)] : lo_[idx(entering)];
        ++iterations_;
        continue;
      }

      x_[idx(entering)] += delta;
      for (int i = 0; i < m_; ++i) {
        const int b = basis_[static_cast<std::size_t>(i)];
        x_[idx(b)] -= w[static_cast<std::size_t>(i)] * delta;
      }
      x_[idx(leaving)] = target;
      state_[idx(leaving)] = below ? VarState::kAtLower : VarState::kAtUpper;
      basis_[static_cast<std::size_t>(leave)] = entering;
      state_[idx(entering)] = VarState::kBasic;
      apply_basis_update(w, leave);

      ++iterations_;
      if (!maintain_basis(since_refactor)) return SolveStatus::kNumericFailure;
    }
  }

  /// Validate and store a Farkas certificate from a row dual ray `rho`:
  /// z_j = sign * rho'A_j over the real (structural + logical) columns.
  /// The certificate is held only when the box supremum of z'x is negative
  /// by a real margin; otherwise the ray is discarded as numeric noise.
  /// Artificial columns are excluded: a real solution always extends with
  /// every artificial at zero, so they contribute nothing to z'x = 0, and
  /// after retire_artificials() their boxes are pinned to [0, 0] anyway.
  void capture_farkas(const std::vector<double>& rho, double sign) {
    farkas_valid_ = false;
    const int nm = n_ + m_;
    farkas_z_.assign(static_cast<std::size_t>(nm), 0.0);
    double sup = 0.0;
    for (int j = 0; j < nm; ++j) {
      double a = 0.0;
      for (const auto& [row, coef] : cols_[idx(j)]) {
        a += rho[static_cast<std::size_t>(row)] * coef;
      }
      const double zj = sign * a;
      if (zj == 0.0) continue;
      const double bnd = zj > 0.0 ? up_[idx(j)] : lo_[idx(j)];
      if (bnd == kInf || bnd == -kInf) {
        // Basic and free columns carry only numeric noise here (their
        // reduced weight is zero in exact arithmetic); a real weight on an
        // infinite bound means the ray does not certify anything.
        if (std::abs(zj) <= 1e-9) continue;
        return;
      }
      farkas_z_[idx(j)] = zj;
      sup += zj * bnd;
    }
    if (sup >= -1e-9) return;
    farkas_margin_ = -sup;
    farkas_valid_ = true;
  }

  // ---- shared linear algebra -------------------------------------------------

  /// FTRAN: w = B^{-1} a_column (basis-position-indexed).
  [[nodiscard]] std::vector<double> ftran(int column) const {
    if (use_dense_) {
      std::vector<double> w(static_cast<std::size_t>(m_), 0.0);
      for (const auto& [row, coef] : cols_[idx(column)]) {
        for (int i = 0; i < m_; ++i) {
          w[static_cast<std::size_t>(i)] += binv(i, row) * coef;
        }
      }
      return w;
    }
    std::vector<double> b(static_cast<std::size_t>(m_), 0.0);
    for (const auto& [row, coef] : cols_[idx(column)]) {
      b[static_cast<std::size_t>(row)] += coef;
    }
    return factor_.ftran(b);
  }

  /// BTRAN of the basic cost vector: y = B^{-T} c_B (row-indexed duals).
  [[nodiscard]] std::vector<double> btran_cost(bool phase1) const {
    if (use_dense_) {
      std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
      for (int i = 0; i < m_; ++i) {
        const double cb = effective_cost(basis_[static_cast<std::size_t>(i)],
                                         phase1);
        if (cb == 0.0) continue;
        for (int r = 0; r < m_; ++r) {
          y[static_cast<std::size_t>(r)] += cb * binv(i, r);
        }
      }
      return y;
    }
    std::vector<double> c(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      c[static_cast<std::size_t>(i)] =
          effective_cost(basis_[static_cast<std::size_t>(i)], phase1);
    }
    return factor_.btran(std::move(c));
  }

  /// Row `r` of B^{-1} (row-indexed): rho with rho' A_j = alpha_j.
  [[nodiscard]] std::vector<double> basis_row(int r) const {
    if (use_dense_) {
      std::vector<double> rho(static_cast<std::size_t>(m_), 0.0);
      for (int c = 0; c < m_; ++c) {
        rho[static_cast<std::size_t>(c)] = binv(r, c);
      }
      return rho;
    }
    std::vector<double> e(static_cast<std::size_t>(m_), 0.0);
    e[static_cast<std::size_t>(r)] = 1.0;
    return factor_.btran(std::move(e));
  }

  /// Scatter alpha_j = rho' A_j for every column with a nonzero result into
  /// alpha_ / touched_ via the CSR row lists (cost: nonzeros of the rows
  /// rho touches). Pair with clear_alpha().
  void scatter_alpha(const std::vector<double>& rho) {
    for (int r = 0; r < m_; ++r) {
      const double v = rho[static_cast<std::size_t>(r)];
      if (v == 0.0) continue;
      for (const auto& [j, coef] : row_terms_[static_cast<std::size_t>(r)]) {
        if (alpha_[idx(j)] == 0.0) touched_.push_back(j);
        alpha_[idx(j)] += v * coef;
      }
    }
  }

  void clear_alpha() {
    for (const int j : touched_) alpha_[idx(j)] = 0.0;
    touched_.clear();
  }

  [[nodiscard]] double effective_cost(int j, bool phase1) const {
    if (phase1) {
      if (!is_artificial_[idx(j)]) return 0.0;
      return 1.0;  // artificial sum; perturbing it buys nothing
    }
    double c = cost_[idx(j)];
    if (perturbed_) c += pert_[idx(j)];
    return c;
  }

  [[nodiscard]] double current_objective(bool phase1) const {
    if (phase1) return phase1_objective();
    double total = 0.0;
    for (int j = 0; j < total_; ++j) total += cost_[idx(j)] * x_[idx(j)];
    return total;
  }

  /// Fold one pivot into the basis representation: dense product-form
  /// update of the explicit inverse, or one eta vector on the sparse path.
  void apply_basis_update(const std::vector<double>& w, int pivot_row) {
    if (use_dense_) {
      const double pivot = w[static_cast<std::size_t>(pivot_row)];
      ARCHEX_ASSERT(std::abs(pivot) > 1e-12, "degenerate pivot element");
      double* prow = &binv(pivot_row, 0);
      for (int r = 0; r < m_; ++r) prow[r] /= pivot;
      for (int i = 0; i < m_; ++i) {
        if (i == pivot_row) continue;
        const double f = w[static_cast<std::size_t>(i)];
        if (f == 0.0) continue;
        double* irow = &binv(i, 0);
        for (int r = 0; r < m_; ++r) irow[r] -= f * prow[r];
      }
      return;
    }
    factor_.push_eta(pivot_row, w);
    ++stats_.eta_updates;
    stats_.max_eta_len =
        std::max(stats_.max_eta_len, static_cast<long>(factor_.eta_count()));
  }

  /// Post-pivot basis maintenance shared by the primal and dual loops:
  /// periodic refactorization, eta-file growth control, and the
  /// numeric-drift check piggybacked on the periodic basic-value recompute.
  [[nodiscard]] bool maintain_basis(int& since_refactor) {
    ++since_refactor;
    bool refactor = false;
    if (since_refactor >= opt_.refactor_every) {
      refactor = true;
      ++stats_.refactor_periodic;
    } else if (!use_dense_) {
      if ((opt_.max_eta > 0 && factor_.eta_count() >= opt_.max_eta) ||
          factor_.eta_nonzeros() >
              opt_.eta_growth *
                  (factor_.lu_nonzeros() + static_cast<std::size_t>(m_))) {
        refactor = true;
        ++stats_.refactor_eta;
      }
    }
    if (refactor) {
      if (!refactorize()) return false;
      since_refactor = 0;
      return true;
    }
    if (since_refactor % opt_.recompute_every == 0) {
      const double drift = recompute_basics();
      if (!use_dense_ && drift > opt_.drift_tol) {
        ++stats_.refactor_drift;
        if (!refactorize()) return false;
        since_refactor = 0;
      }
    }
    return true;
  }

  bool refactorize() {
    ++stats_.factorizations;
    if (!use_dense_) {
      std::vector<SparseColumn> bc(static_cast<std::size_t>(m_));
      for (int k = 0; k < m_; ++k) {
        bc[static_cast<std::size_t>(k)] =
            cols_[idx(basis_[static_cast<std::size_t>(k)])];
      }
      if (!factor_.factorize(m_, bc)) return false;
      recompute_basics();
      return true;
    }
    const auto mm = static_cast<std::size_t>(m_);
    std::vector<double> a(mm * mm, 0.0);
    for (int k = 0; k < m_; ++k) {
      for (const auto& [row, coef] :
           cols_[idx(basis_[static_cast<std::size_t>(k)])]) {
        a[static_cast<std::size_t>(row) * mm + static_cast<std::size_t>(k)] =
            coef;
      }
    }
    std::vector<double> inv(mm * mm, 0.0);
    for (std::size_t i = 0; i < mm; ++i) inv[i * mm + i] = 1.0;

    for (std::size_t col = 0; col < mm; ++col) {
      std::size_t piv = col;
      double best = std::abs(a[col * mm + col]);
      for (std::size_t r = col + 1; r < mm; ++r) {
        const double v = std::abs(a[r * mm + col]);
        if (v > best) { best = v; piv = r; }
      }
      if (best < 1e-11) return false;
      if (piv != col) {
        for (std::size_t c2 = 0; c2 < mm; ++c2) {
          std::swap(a[piv * mm + c2], a[col * mm + c2]);
          std::swap(inv[piv * mm + c2], inv[col * mm + c2]);
        }
      }
      const double d = a[col * mm + col];
      for (std::size_t c2 = 0; c2 < mm; ++c2) {
        a[col * mm + c2] /= d;
        inv[col * mm + c2] /= d;
      }
      for (std::size_t r = 0; r < mm; ++r) {
        if (r == col) continue;
        const double f = a[r * mm + col];
        if (f == 0.0) continue;
        for (std::size_t c2 = 0; c2 < mm; ++c2) {
          a[r * mm + c2] -= f * a[col * mm + c2];
          inv[r * mm + c2] -= f * inv[col * mm + c2];
        }
      }
    }
    binv_ = std::move(inv);
    recompute_basics();
    return true;
  }

  /// Recompute the basic values from the nonbasic assignment through the
  /// current basis representation. Returns the largest absolute correction
  /// applied — the numeric-drift signal the refactorization policy watches.
  double recompute_basics() {
    std::vector<double> rhs(static_cast<std::size_t>(m_), 0.0);
    for (int j = 0; j < total_; ++j) {
      if (state_[idx(j)] == VarState::kBasic) continue;
      const double v = x_[idx(j)];
      if (v == 0.0) continue;
      for (const auto& [row, coef] : cols_[idx(j)]) {
        rhs[static_cast<std::size_t>(row)] += coef * v;
      }
    }
    double drift = 0.0;
    if (use_dense_) {
      for (int i = 0; i < m_; ++i) {
        double total = 0.0;
        for (int r = 0; r < m_; ++r) {
          total += binv(i, r) * rhs[static_cast<std::size_t>(r)];
        }
        const int b = basis_[static_cast<std::size_t>(i)];
        drift = std::max(drift, std::abs(x_[idx(b)] + total));
        x_[idx(b)] = -total;
      }
      return drift;
    }
    const std::vector<double> xb = factor_.ftran(rhs);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      const double nv = -xb[static_cast<std::size_t>(i)];
      drift = std::max(drift, std::abs(x_[idx(b)] - nv));
      x_[idx(b)] = nv;
    }
    return drift;
  }

  void polish(std::vector<double>& x) const {
    for (int j = 0; j < n_; ++j) {
      auto& v = x[idx(j)];
      const double lo = cur_lo_[idx(j)];
      const double up = cur_up_[idx(j)];
      if (lo != -kInf && std::abs(v - lo) < 1e-8) v = lo;
      if (up != kInf && std::abs(v - up) < 1e-8) v = up;
    }
  }

  [[nodiscard]] static std::size_t idx(int j) {
    return static_cast<std::size_t>(j);
  }
  [[nodiscard]] double& binv(int i, int r) {
    return binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const double& binv(int i, int r) const {
    return binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(r)];
  }

  SimplexOptions opt_;
  bool use_dense_ = false;
  int n_ = 0;
  int m_ = 0;

  // Immutable snapshot of the problem (structural + logical columns).
  int base_total_ = 0;
  std::vector<std::vector<std::pair<int, double>>> base_cols_;
  std::vector<double> base_lo_, base_up_;
  std::vector<double> cur_lo_, cur_up_;  // current structural bounds

  // Working state (includes artificials appended by the last scratch solve).
  int total_ = 0;
  std::vector<std::vector<std::pair<int, double>>> cols_;
  std::vector<std::vector<std::pair<int, double>>> row_terms_;  // CSR view
  std::vector<double> lo_, up_, cost_, x_;
  std::vector<VarState> state_;
  std::vector<bool> is_artificial_;
  std::vector<int> artificials_;
  std::vector<int> basis_;
  std::vector<double> binv_;  // dense oracle only
  BasisFactor factor_;        // sparse LU + eta file
  bool basis_valid_ = false;

  // Farkas certificate of the last infeasible solve (see capture_farkas).
  std::vector<double> farkas_z_;
  double farkas_margin_ = 0.0;
  bool farkas_valid_ = false;

  long iterations_ = 0;
  long max_iter_ = 0;
  SimplexEngine::Stats stats_;

  // Optional wall-clock deadline; polled inside the pivot loops.
  std::chrono::steady_clock::time_point deadline_{};
  bool have_deadline_ = false;

  // Anti-degeneracy perturbation state (see snapshot()/iterate()).
  std::vector<double> pert_;
  double pert_slack_ = 0.0;
  bool perturbed_ = false;

  // Devex pricing weights (reset per phase) and the partial-pricing cursor.
  std::vector<double> devex_;
  int price_cursor_ = 0;

  // Scratch for the CSR alpha scatter (sparse dual ratio test / Devex).
  std::vector<double> alpha_;
  std::vector<int> touched_;
};

}  // namespace detail

SimplexEngine::SimplexEngine(const Problem& problem,
                             const SimplexOptions& options)
    : impl_(std::make_unique<detail::EngineImpl>(problem, options)) {}

SimplexEngine::~SimplexEngine() = default;
SimplexEngine::SimplexEngine(SimplexEngine&&) noexcept = default;
SimplexEngine& SimplexEngine::operator=(SimplexEngine&&) noexcept = default;

void SimplexEngine::set_variable_bounds(int var, double lo, double up) {
  impl_->set_variable_bounds(var, lo, up);
}

void SimplexEngine::set_deadline(
    std::chrono::steady_clock::time_point deadline) {
  impl_->set_deadline(deadline);
}

void SimplexEngine::clear_deadline() { impl_->clear_deadline(); }

double SimplexEngine::col_lo(int var) const { return impl_->col_lo(var); }
double SimplexEngine::col_up(int var) const { return impl_->col_up(var); }

int SimplexEngine::num_rows() const { return impl_->num_rows(); }
int SimplexEngine::num_structural() const { return impl_->num_structural(); }
bool SimplexEngine::has_basis() const { return impl_->has_basis(); }
int SimplexEngine::basic_variable(int i) const {
  return impl_->basic_variable(i);
}
SimplexEngine::ColStatus SimplexEngine::column_status(int j) const {
  return impl_->column_status(j);
}
double SimplexEngine::column_value(int j) const {
  return impl_->column_value(j);
}
double SimplexEngine::column_lower(int j) const {
  return impl_->column_lower(j);
}
double SimplexEngine::column_upper(int j) const {
  return impl_->column_upper(j);
}
bool SimplexEngine::tableau_row(int i, std::vector<double>& alpha) {
  return impl_->tableau_row(i, alpha);
}
bool SimplexEngine::reduced_costs(std::vector<double>& d) {
  return impl_->reduced_costs(d);
}
bool SimplexEngine::farkas_ray(std::vector<double>& z, double& margin) const {
  return impl_->farkas_ray(z, margin);
}
void SimplexEngine::add_constraint(const std::vector<Term>& terms, double lo,
                                   double up) {
  impl_->add_constraint(terms, lo, up);
}

Solution SimplexEngine::solve_from_scratch() {
  return impl_->solve_from_scratch();
}

Solution SimplexEngine::reoptimize() { return impl_->reoptimize(); }

const SimplexEngine::Stats& SimplexEngine::stats() const {
  return impl_->stats();
}

double SimplexEngine::bound_slack() const { return impl_->bound_slack(); }

}  // namespace archex::lp
