// archex/lp/engine.hpp
//
// Persistent simplex engine: the stateful core behind lp::solve(), exposed
// so that branch & bound can warm-start. The key property it exploits: a
// basis that is optimal for some bounds stays *dual feasible* after any
// variable-bound change (reduced costs do not depend on bounds), so a few
// dual-simplex pivots re-optimize a child node instead of a full two-phase
// primal solve from scratch.
//
// Usage pattern (branch & bound):
//   SimplexEngine engine(problem, options);
//   Solution root = engine.solve_from_scratch();
//   engine.set_variable_bounds(j, 1.0, 1.0);   // branch x_j = 1
//   Solution child = engine.reoptimize();      // dual simplex, few pivots
//   engine.set_variable_bounds(j, 0.0, 1.0);   // undo on backtrack
//
// reoptimize() falls back to solve_from_scratch() automatically when no
// basis exists yet or the dual loop hits a limit or numeric trouble.
#pragma once

#include <chrono>
#include <memory>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace archex::lp {

namespace detail {
class EngineImpl;
}

class SimplexEngine {
 public:
  /// The engine snapshots the problem's structure; later bound changes go
  /// through set_variable_bounds (the Problem object is not referenced
  /// after construction).
  explicit SimplexEngine(const Problem& problem,
                         const SimplexOptions& options = {});
  ~SimplexEngine();
  SimplexEngine(SimplexEngine&&) noexcept;
  SimplexEngine& operator=(SimplexEngine&&) noexcept;

  /// Override the box of a structural variable.
  void set_variable_bounds(int var, double lo, double up);

  /// Abort any solve promptly (status kTimeLimit) once `deadline` passes.
  /// The pivot loops poll the clock every few dozen iterations, so the
  /// overshoot is a handful of pivots — not a whole node relaxation. A
  /// time-limited solve invalidates the warm-start basis.
  void set_deadline(std::chrono::steady_clock::time_point deadline);
  void clear_deadline();

  /// Current (possibly overridden) bounds of a structural variable.
  [[nodiscard]] double col_lo(int var) const;
  [[nodiscard]] double col_up(int var) const;

  // ---- cut interface ---------------------------------------------------------
  //
  // Enough tableau introspection for a cut separator to read Gomory
  // mixed-integer cuts off the optimal basis, plus a way to append the
  // resulting rows to a live engine. Columns are indexed structural-first:
  // 0..n-1 are the problem's variables, n..n+m-1 the row logicals (the
  // logical of row i holds the activity of row i).

  /// Nonbasic position of a column at the last optimal basis.
  enum class ColStatus : unsigned char { kBasic, kAtLower, kAtUpper, kFree };

  /// Row count, including rows appended by add_constraint().
  [[nodiscard]] int num_rows() const;
  /// Structural column count (fixed at construction).
  [[nodiscard]] int num_structural() const;
  /// True while the engine holds an optimal basis the tableau accessors can
  /// read (cleared by add_constraint and by any non-optimal solve).
  [[nodiscard]] bool has_basis() const;
  /// Column basic in row position `i` of the current basis. May exceed
  /// n + m - 1 when a retired phase-1 artificial is still (degenerately)
  /// basic; callers must skip such rows.
  [[nodiscard]] int basic_variable(int i) const;
  [[nodiscard]] ColStatus column_status(int j) const;
  /// Value / working bounds of column `j` at the last solve (for logicals:
  /// the row activity and the row bounds).
  [[nodiscard]] double column_value(int j) const;
  [[nodiscard]] double column_lower(int j) const;
  [[nodiscard]] double column_upper(int j) const;
  /// Row `i` of B^{-1} A over the n + m structural + logical columns.
  /// Returns false when no valid basis is available.
  [[nodiscard]] bool tableau_row(int i, std::vector<double>& alpha);
  /// Reduced costs of the n + m structural + logical columns with respect
  /// to the *true* (unperturbed) objective at the current basis — the safe
  /// input for reduced-cost fixing. Returns false without a valid basis.
  [[nodiscard]] bool reduced_costs(std::vector<double>& d);
  /// Append a row `lo <= terms <= up` (a cutting plane) to the engine.
  /// Terms referencing the same variable are summed. Invalidates the
  /// warm-start basis: the next solve runs from scratch.
  void add_constraint(const std::vector<Term>& terms, double lo, double up);

  // ---- infeasibility certificates -------------------------------------------
  //
  // When a solve proves infeasibility, the engine keeps the Farkas dual ray
  // it detected it with, aggregated into per-column weights z_j = y'A_j
  // over the n + m structural + logical columns. Because the engine's rows
  // read a'x - s = 0, every x satisfying the rows has z'x = 0 exactly —
  // while sup { z'x : current boxes } < 0, so the current bound box admits
  // no feasible point. The only bounds the proof leans on are the upper
  // bounds of columns with z_j > 0 and the lower bounds of columns with
  // z_j < 0; branch & bound reduces the ray against its branching
  // decisions to a minimal 0/1 nogood this way (DESIGN.md §4g).

  /// Farkas certificate of the last solve. Fills `z` (size
  /// num_structural() + num_rows()) and `margin` = -sup{z'x : boxes} > 0,
  /// and returns true, when the last solve returned kInfeasible and the
  /// captured ray passed its numeric sanity margin; returns false
  /// otherwise (no proof of infeasibility is held, or the ray was too
  /// noisy to certify — callers must treat that as "no certificate", not
  /// as feasibility).
  [[nodiscard]] bool farkas_ray(std::vector<double>& z, double& margin) const;

  /// Full two-phase primal solve, discarding any existing basis.
  [[nodiscard]] Solution solve_from_scratch();

  /// Re-optimize from the last optimal basis with dual simplex; falls back
  /// to a scratch solve when that is impossible or fails.
  [[nodiscard]] Solution reoptimize();

  /// Worst-case amount by which a reported "optimal" objective can exceed
  /// the true LP optimum, due to the anti-degeneracy cost perturbation
  /// (0 while the perturbation has not been activated). Branch & bound
  /// subtracts this before pruning against the incumbent.
  [[nodiscard]] double bound_slack() const;

  /// Cumulative engine statistics (diagnosing warm-start effectiveness and
  /// the health of the sparse basis machinery).
  struct Stats {
    long scratch_solves = 0;   // full two-phase primal runs
    long dual_reopts = 0;      // successful dual-simplex re-optimizations
    long dual_fallbacks = 0;   // reoptimize() calls that fell back to scratch
    long dual_limit = 0;       // ... of which: dual pivot cap hit
    long dual_numeric = 0;     // ... of which: numeric trouble
    long restore_fallbacks = 0;  // ... of which: dual feasibility unrestorable
    long total_pivots = 0;

    // Basis-representation maintenance (sparse LU + eta file; the dense
    // oracle only counts factorizations and periodic triggers).
    long factorizations = 0;     // basis (re)factorizations performed
    long eta_updates = 0;        // product-form updates appended
    long refactor_periodic = 0;  // refactorizations: pivot-count schedule
    long refactor_eta = 0;       // refactorizations: eta-file growth
    long refactor_drift = 0;     // refactorizations: numeric drift
    long max_eta_len = 0;        // longest eta file reached between refactors
  };
  [[nodiscard]] const Stats& stats() const;

 private:
  std::unique_ptr<detail::EngineImpl> impl_;
};

}  // namespace archex::lp
