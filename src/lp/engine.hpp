// archex/lp/engine.hpp
//
// Persistent simplex engine: the stateful core behind lp::solve(), exposed
// so that branch & bound can warm-start. The key property it exploits: a
// basis that is optimal for some bounds stays *dual feasible* after any
// variable-bound change (reduced costs do not depend on bounds), so a few
// dual-simplex pivots re-optimize a child node instead of a full two-phase
// primal solve from scratch.
//
// Usage pattern (branch & bound):
//   SimplexEngine engine(problem, options);
//   Solution root = engine.solve_from_scratch();
//   engine.set_variable_bounds(j, 1.0, 1.0);   // branch x_j = 1
//   Solution child = engine.reoptimize();      // dual simplex, few pivots
//   engine.set_variable_bounds(j, 0.0, 1.0);   // undo on backtrack
//
// reoptimize() falls back to solve_from_scratch() automatically when no
// basis exists yet or the dual loop hits a limit or numeric trouble.
#pragma once

#include <chrono>
#include <memory>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace archex::lp {

namespace detail {
class EngineImpl;
}

class SimplexEngine {
 public:
  /// The engine snapshots the problem's structure; later bound changes go
  /// through set_variable_bounds (the Problem object is not referenced
  /// after construction).
  explicit SimplexEngine(const Problem& problem,
                         const SimplexOptions& options = {});
  ~SimplexEngine();
  SimplexEngine(SimplexEngine&&) noexcept;
  SimplexEngine& operator=(SimplexEngine&&) noexcept;

  /// Override the box of a structural variable.
  void set_variable_bounds(int var, double lo, double up);

  /// Abort any solve promptly (status kTimeLimit) once `deadline` passes.
  /// The pivot loops poll the clock every few dozen iterations, so the
  /// overshoot is a handful of pivots — not a whole node relaxation. A
  /// time-limited solve invalidates the warm-start basis.
  void set_deadline(std::chrono::steady_clock::time_point deadline);
  void clear_deadline();

  /// Current (possibly overridden) bounds of a structural variable.
  [[nodiscard]] double col_lo(int var) const;
  [[nodiscard]] double col_up(int var) const;

  /// Full two-phase primal solve, discarding any existing basis.
  [[nodiscard]] Solution solve_from_scratch();

  /// Re-optimize from the last optimal basis with dual simplex; falls back
  /// to a scratch solve when that is impossible or fails.
  [[nodiscard]] Solution reoptimize();

  /// Worst-case amount by which a reported "optimal" objective can exceed
  /// the true LP optimum, due to the anti-degeneracy cost perturbation
  /// (0 while the perturbation has not been activated). Branch & bound
  /// subtracts this before pruning against the incumbent.
  [[nodiscard]] double bound_slack() const;

  /// Cumulative engine statistics (diagnosing warm-start effectiveness and
  /// the health of the sparse basis machinery).
  struct Stats {
    long scratch_solves = 0;   // full two-phase primal runs
    long dual_reopts = 0;      // successful dual-simplex re-optimizations
    long dual_fallbacks = 0;   // reoptimize() calls that fell back to scratch
    long dual_limit = 0;       // ... of which: dual pivot cap hit
    long dual_numeric = 0;     // ... of which: numeric trouble
    long restore_fallbacks = 0;  // ... of which: dual feasibility unrestorable
    long total_pivots = 0;

    // Basis-representation maintenance (sparse LU + eta file; the dense
    // oracle only counts factorizations and periodic triggers).
    long factorizations = 0;     // basis (re)factorizations performed
    long eta_updates = 0;        // product-form updates appended
    long refactor_periodic = 0;  // refactorizations: pivot-count schedule
    long refactor_eta = 0;       // refactorizations: eta-file growth
    long refactor_drift = 0;     // refactorizations: numeric drift
    long max_eta_len = 0;        // longest eta file reached between refactors
  };
  [[nodiscard]] const Stats& stats() const;

 private:
  std::unique_ptr<detail::EngineImpl> impl_;
};

}  // namespace archex::lp
