// archex/server/solve_service.hpp
//
// Request execution for the archex_server (DESIGN.md §5): one SolveService
// owns the process-lifetime cross-request state — the sharded reliability
// EvalCache and the per-problem-family NogoodStoreRegistry — and turns one
// validated SolveRequest into one SolveResponse. The service is
// transport-free (no sockets) so tests and benches can drive it directly;
// SolveServer layers the wire protocol, worker pool and admission control
// on top.
//
// Thread safety: handle() may be called concurrently from any number of
// workers. The shared cache is internally striped (rel/eval_cache.hpp), the
// registry and every store are mutex-guarded, and everything else is
// per-call state.
#pragma once

#include <cstdint>

#include "core/serialize.hpp"
#include "ilp/nogood.hpp"
#include "rel/eval_cache.hpp"

namespace archex::server {

struct SolveServiceOptions {
  /// Request budget when the envelope carries none (deadline_seconds <= 0).
  double default_deadline_seconds = 60.0;
  /// Hard ceiling on any request's budget (envelope values are clamped).
  double max_deadline_seconds = 600.0;
  /// Ceiling on the per-request solver thread budget (envelope `threads` is
  /// clamped into [0, this]; 0 = serial search).
  int max_solver_threads = 0;
  /// Persist oracle nogoods across requests of the same problem family
  /// (and keep solver-level conflict learning on). Off = every request
  /// solves cold with learning disabled (--no-learning).
  bool learning = true;
  /// Shared reliability-cache geometry (rel/eval_cache.hpp).
  std::size_t cache_entries = 1u << 20;
  int cache_shards = rel::EvalCache::kDefaultShards;
};

/// Registry key of a request's problem family: the template signature mixed
/// with the solve mode and the reliability target. Oracle nogoods are a
/// pure function of (template, target) over the template's edge variables,
/// and the mode pins the base encoding the variable numbering comes from —
/// so equal keys guarantee the persisted entries apply verbatim.
[[nodiscard]] std::uint64_t problem_family_key(const core::SolveRequest& req,
                                               const core::Template& tmpl);

class SolveService {
 public:
  explicit SolveService(SolveServiceOptions options = {});

  /// Execute one request to completion (synchronously; the caller supplies
  /// the concurrency). Never throws: every failure mode maps to a response
  /// status ("time_limit", "unfeasible", "error", ...).
  [[nodiscard]] core::SolveResponse handle(const core::SolveRequest& request);

  [[nodiscard]] rel::EvalCache& cache() { return cache_; }
  [[nodiscard]] const SolveServiceOptions& options() const {
    return options_;
  }
  /// Distinct problem families with a persisted nogood store.
  [[nodiscard]] std::size_t nogood_families() const {
    return registry_.families();
  }

 private:
  SolveServiceOptions options_;
  rel::EvalCache cache_;
  ilp::NogoodStoreRegistry registry_;
};

}  // namespace archex::server
