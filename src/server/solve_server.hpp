// archex/server/solve_server.hpp
//
// Wire front-end of the archex_server (DESIGN.md §5): a TCP listener
// speaking one JSON document per line ("archex-request" in,
// "archex-response" out; core/serialize.hpp), a fixed worker pool running
// the solves, and admission control that sheds load with an explicit
// `rejected` response instead of queueing without bound.
//
// Threading model:
//  * one acceptor thread polls the listener with a timeout so it can
//    observe the stop flag between waits;
//  * one lightweight thread per connection reads request lines and blocks
//    on its request's future (clients pipeline by opening connections, so
//    per-connection requests stay ordered);
//  * `workers` pool threads execute SolveService::handle — the only
//    CPU-heavy work. The B&B allocates its own search workers per solve,
//    so `workers * (1 + max solver threads)` bounds total solve threads.
//
// Graceful drain (SIGTERM → stop()): stop accepting, shut down every
// connection's read side (in-flight solves finish and their responses are
// still written), join everything. A request that was queued but not yet
// started also runs to completion — admission control bounds how many such
// requests can exist.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "server/solve_service.hpp"
#include "support/socket.hpp"
#include "support/thread_pool.hpp"

namespace archex::server {

struct SolveServerOptions {
  /// Port to listen on; 0 picks a free port (see SolveServer::port()).
  std::uint16_t port = 0;
  /// Worker threads executing solves concurrently.
  int workers = 2;
  /// Admission bound: requests accepted but not yet started. A request
  /// arriving with the queue full is answered `rejected` immediately.
  /// Clamped to >= 1 (a bound of 0 would reject every request, even with
  /// all workers idle).
  int max_queue = 16;
  /// Acceptor poll period (stop-flag observation latency).
  int accept_poll_ms = 100;
  SolveServiceOptions service;
};

class SolveServer {
 public:
  explicit SolveServer(SolveServerOptions options = {});
  ~SolveServer();

  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// Bind the listener and start the acceptor and worker pool.
  void start();

  /// Graceful drain; idempotent. Safe to call while requests are in
  /// flight — their responses are written before the connections close.
  void stop();

  /// The bound port (after start(); resolves port-0 binds).
  [[nodiscard]] std::uint16_t port() const;

  [[nodiscard]] SolveService& service() { return service_; }

  struct Stats {
    long connections = 0;  // accepted sockets
    long requests = 0;     // request lines answered (any status)
    long shed = 0;         // ... of which: rejected by admission control
    long malformed = 0;    // ... of which: SpecError before dispatch
  };
  [[nodiscard]] Stats stats() const;

  /// Connections currently tracked: open ones plus any finished since the
  /// last accept (the acceptor reaps finished connections before each
  /// accept, so this converges to the number of open sockets).
  [[nodiscard]] std::size_t live_connections() const;

 private:
  struct Connection {
    std::thread thread;
    int fd = -1;  // -1 once the stream is closed (guarded by conn_mu_)
  };

  void accept_loop();
  void serve_connection(Connection* conn, support::TcpStream stream);
  void reap_finished_locked();
  [[nodiscard]] core::SolveResponse dispatch(const std::string& line);

  SolveServerOptions options_;
  SolveService service_;

  std::optional<support::TcpListener> listener_;
  std::unique_ptr<support::ThreadPool> pool_;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  mutable std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<int> queued_{0};
  std::atomic<long> stat_connections_{0};
  std::atomic<long> stat_requests_{0};
  std::atomic<long> stat_shed_{0};
  std::atomic<long> stat_malformed_{0};
};

}  // namespace archex::server
