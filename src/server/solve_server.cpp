#include "server/solve_server.hpp"

#include <sys/socket.h>

#include <future>
#include <string>
#include <utility>

#include "support/stopwatch.hpp"

namespace archex::server {

SolveServer::SolveServer(SolveServerOptions options)
    : options_(options), service_(options.service) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;
}

SolveServer::~SolveServer() { stop(); }

void SolveServer::start() {
  listener_.emplace(options_.port);
  // ThreadPool(n) spawns n - 1 workers; the caller slot is never used here
  // (connection threads block on futures instead of draining the queue), so
  // workers + 1 yields exactly `workers` concurrent solves.
  pool_ = std::make_unique<support::ThreadPool>(options_.workers + 1);
  stop_.store(false);
  acceptor_ = std::thread(&SolveServer::accept_loop, this);
  started_ = true;
}

void SolveServer::stop() {
  if (!started_) return;
  stop_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.reset();
  {
    // Unblock every connection reader; SHUT_RD only, so responses of
    // in-flight requests still reach their clients.
    const std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
    }
  }
  for (const auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  pool_.reset();  // drains any still-queued work
  started_ = false;
}

std::uint16_t SolveServer::port() const {
  return listener_ ? listener_->port() : 0;
}

std::size_t SolveServer::live_connections() const {
  const std::lock_guard<std::mutex> lock(conn_mu_);
  return connections_.size();
}

SolveServer::Stats SolveServer::stats() const {
  Stats out;
  out.connections = stat_connections_.load();
  out.requests = stat_requests_.load();
  out.shed = stat_shed_.load();
  out.malformed = stat_malformed_.load();
  return out;
}

void SolveServer::accept_loop() {
  while (!stop_.load()) {
    std::optional<support::TcpStream> stream;
    try {
      stream = listener_->accept_for(options_.accept_poll_ms);
    } catch (const support::SocketError&) {
      break;  // listener died; stop() will clean up
    }
    if (!stream) continue;
    stat_connections_.fetch_add(1);
    const std::lock_guard<std::mutex> lock(conn_mu_);
    if (stop_.load()) break;  // raced with stop(): drop the connection
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd = stream->fd();
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    raw->thread = std::thread(&SolveServer::serve_connection, this, raw,
                              std::move(*stream));
  }
}

// Join-and-erase connections whose stream has closed. fd == -1 is set under
// conn_mu_ as the serving thread's last critical section, so observing it
// here (also under conn_mu_) means the thread is past any lock use and the
// join returns almost immediately. Without this sweep every connection ever
// accepted would keep a joinable thread (and its stack) alive until stop().
void SolveServer::reap_finished_locked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->fd == -1) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SolveServer::serve_connection(Connection* conn,
                                   support::TcpStream stream) {
  try {
    std::string line;
    while (!stop_.load() && stream.read_line(line)) {
      if (line.empty()) continue;
      const core::SolveResponse response = dispatch(line);
      stat_requests_.fetch_add(1);
      stream.write_line(core::to_json(response));
    }
  } catch (const support::SocketError&) {
    // Peer hung up mid-exchange; nothing to clean beyond the stream itself.
  }
  // Close under the connection lock so stop()'s shutdown sweep can never
  // touch a recycled descriptor.
  const std::lock_guard<std::mutex> lock(conn_mu_);
  stream = support::TcpStream(-1);
  conn->fd = -1;
}

core::SolveResponse SolveServer::dispatch(const std::string& line) {
  core::SolveRequest request;
  try {
    request = core::request_from_json(line, "request");
  } catch (const core::SpecError& e) {
    stat_malformed_.fetch_add(1);
    core::SolveResponse response;
    response.status = "error";
    response.error = e.what();
    return response;
  }

  // Admission control: with `max_queue` requests already waiting for a
  // worker, shed the new one with an explicit rejection rather than growing
  // the queue (the client can back off or retry elsewhere).
  int queued = queued_.load();
  while (true) {
    if (queued >= options_.max_queue) {
      stat_shed_.fetch_add(1);
      core::SolveResponse response;
      response.id = request.id;
      response.status = "rejected";
      response.error = "queue full (" + std::to_string(queued) +
                       " requests queued)";
      return response;
    }
    if (queued_.compare_exchange_weak(queued, queued + 1)) break;
  }

  Stopwatch queue_watch;
  queue_watch.start();
  std::future<core::SolveResponse> future =
      pool_->submit([this, request = std::move(request), &queue_watch] {
        queued_.fetch_sub(1);
        const double queue_seconds = queue_watch.elapsed_seconds();
        core::SolveResponse response = service_.handle(request);
        response.queue_seconds = queue_seconds;
        return response;
      });
  return future.get();
}

}  // namespace archex::server
