#include "server/solve_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <optional>
#include <utility>

#include "core/ilp_ar.hpp"
#include "core/ilp_mr.hpp"
#include "core/pareto.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"
#include "rel/exact.hpp"
#include "support/stopwatch.hpp"

namespace archex::server {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Selected-edge indices of a configuration, for the response.
std::vector<int> selected_edges(const core::Configuration& config) {
  std::vector<int> out;
  const auto& selection = config.selection();
  for (std::size_t k = 0; k < selection.size(); ++k) {
    if (selection[k]) out.push_back(static_cast<int>(k));
  }
  return out;
}

/// Instance pinned down by the request: the template plus a builder for the
/// base ILP (EPS requirement pack for procedural instances, the generic
/// sink-fed rule for inline templates — mirroring archex_cli).
struct Instance {
  core::Template tmpl;
  std::optional<eps::EpsTemplate> eps;  // grouping, when procedural

  [[nodiscard]] core::ArchitectureIlp make_base_ilp() const {
    if (eps) {
      core::ArchitectureIlp ilp(tmpl);
      eps::apply_eps_requirements(ilp, *eps);
      return ilp;
    }
    core::ArchitectureIlp ilp(tmpl);
    ilp.require_all_sinks_fed();
    return ilp;
  }
};

Instance make_instance(const core::SolveRequest& request) {
  Instance instance;
  if (request.eps_generators) {
    eps::EpsSpec spec;
    spec.num_generators = *request.eps_generators;
    instance.eps = eps::make_eps_template(spec);
    instance.tmpl = instance.eps->tmpl;
  } else {
    instance.tmpl = *request.tmpl;
  }
  return instance;
}

/// True when `deadline` has passed — used to refine a solver-failure status
/// into "time_limit" (the B&B reports kTimeLimit through kSolverFailure at
/// the synthesis layer).
bool expired(Clock::time_point deadline) { return Clock::now() >= deadline; }

std::string synthesis_status_string(core::SynthesisStatus status,
                                    Clock::time_point deadline) {
  switch (status) {
    case core::SynthesisStatus::kSuccess: return "optimal";
    case core::SynthesisStatus::kUnfeasible: return "unfeasible";
    case core::SynthesisStatus::kIterationLimit: return "iteration_limit";
    case core::SynthesisStatus::kSolverFailure:
      return expired(deadline) ? "time_limit" : "solver_failure";
  }
  return "error";
}

}  // namespace

std::uint64_t problem_family_key(const core::SolveRequest& req,
                                 const core::Template& tmpl) {
  std::uint64_t h = core::template_signature(tmpl);
  h = mix64(h, static_cast<std::uint64_t>(req.mode));
  std::uint64_t target_bits = 0;
  static_assert(sizeof target_bits == sizeof req.target_failure);
  std::memcpy(&target_bits, &req.target_failure, sizeof target_bits);
  h = mix64(h, target_bits);
  // The instance source pins the base encoding (EPS requirement pack vs
  // generic sink-fed), hence the variable numbering.
  h = mix64(h, req.eps_generators.has_value() ? 1u : 2u);
  return h;
}

SolveService::SolveService(SolveServiceOptions options)
    : options_(options),
      cache_(options.cache_entries, options.cache_shards) {}

core::SolveResponse SolveService::handle(const core::SolveRequest& request) {
  core::SolveResponse response;
  response.id = request.id;

  Stopwatch watch;
  watch.start();

  // Request budget: envelope value clamped by the service ceiling, falling
  // back to the default when absent. Both the solver's tree search and the
  // exact reliability analyses poll this absolute deadline.
  double budget_seconds = request.deadline_seconds > 0.0
                              ? std::min(request.deadline_seconds,
                                         options_.max_deadline_seconds)
                              : options_.default_deadline_seconds;
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(budget_seconds));

  try {
    const Instance instance = make_instance(request);

    rel::ExactMethod method = rel::ExactMethod::kFactoring;
    if (!request.method.empty()) {
      const auto parsed = rel::parse_exact_method(request.method);
      if (!parsed) {
        response.status = "error";
        response.error = request.id + ": $.method: unknown exact method \"" +
                         request.method + "\"";
        return response;
      }
      method = *parsed;
    }

    ilp::BranchAndBoundOptions bopt;
    bopt.time_limit_seconds = budget_seconds;
    bopt.deadline = deadline;
    bopt.threads =
        std::clamp(request.threads, 0, options_.max_solver_threads);
    bopt.learning = options_.learning;
    ilp::BranchAndBoundSolver solver(bopt);

    if (request.mode == core::SolveMode::kMr) {
      core::ArchitectureIlp ilp = instance.make_base_ilp();
      core::IlpMrOptions opt;
      opt.target_failure = request.target_failure;
      opt.lazy_strategy = request.lazy;
      opt.method = method;
      opt.cache = &cache_;
      opt.deadline = deadline;
      if (options_.learning) {
        opt.store =
            registry_.acquire(problem_family_key(request, instance.tmpl));
      }
      const core::IlpMrReport report = core::run_ilp_mr(ilp, solver, opt);
      response.status = synthesis_status_string(report.status, deadline);
      response.iterations = report.num_iterations();
      response.solver_nodes = report.solver_nodes;
      response.nogood_store_size = report.solver_nogood_store_size;
      response.nogood_prunings = report.solver_nogood_prunings;
      if (report.configuration) {
        response.cost = report.configuration->total_cost();
        response.failure = report.failure;
        response.selected_edges = selected_edges(*report.configuration);
      }
    } else if (request.mode == core::SolveMode::kAr) {
      core::ArchitectureIlp ilp = instance.make_base_ilp();
      core::IlpArOptions opt;
      opt.target_failure = request.target_failure;
      opt.cache = &cache_;
      opt.method = method;
      opt.deadline = deadline;
      const core::IlpArReport report = core::run_ilp_ar(ilp, solver, opt);
      response.status = synthesis_status_string(report.status, deadline);
      response.iterations = 1;
      response.solver_nodes = report.solver_nodes;
      response.nogood_store_size = report.solver_nogood_store_size;
      response.nogood_prunings = report.solver_nogood_prunings;
      if (report.configuration) {
        response.cost = report.configuration->total_cost();
        response.failure = report.exact_failure;
        response.selected_edges = selected_edges(*report.configuration);
      }
    } else {
      core::ParetoOptions opt;
      opt.initial_target = request.initial_target;
      opt.tighten_factor = request.tighten_factor;
      opt.max_points = request.max_points;
      opt.cache = &cache_;
      opt.method = method;
      opt.deadline = deadline;
      const core::ParetoFrontier frontier = core::sweep_pareto_frontier(
          [&instance] { return instance.make_base_ilp(); }, solver, opt);
      response.iterations = static_cast<int>(frontier.points.size());
      response.solver_nodes = frontier.solver_nodes;
      response.nogood_prunings = frontier.solver_nogood_prunings;
      for (const core::ParetoPoint& point : frontier.points) {
        core::SolveResponse::Point p;
        p.target = point.target;
        p.cost = point.configuration.total_cost();
        p.approx_failure = point.approx_failure;
        p.exact_failure = point.exact_failure;
        p.selected_edges = selected_edges(point.configuration);
        response.points.push_back(std::move(p));
      }
      if (!frontier.points.empty()) {
        // Best point: the most reliable architecture the sweep reached.
        const core::ParetoPoint& best = frontier.points.back();
        // A complete sweep ends with kSuccess (max_points cap or a
        // tightening stall) or kUnfeasible (template exhausted). Anything
        // else means the frontier was cut short — by the deadline or a
        // solver failure — and the partial point list must not claim
        // "optimal".
        const bool complete =
            frontier.terminal_status == core::SynthesisStatus::kSuccess ||
            frontier.terminal_status == core::SynthesisStatus::kUnfeasible;
        response.status =
            complete ? "optimal"
                     : synthesis_status_string(frontier.terminal_status,
                                               deadline);
        response.cost = best.configuration.total_cost();
        response.failure = best.exact_failure;
        response.selected_edges = selected_edges(best.configuration);
      } else {
        response.status =
            synthesis_status_string(frontier.terminal_status, deadline);
        // An empty sweep that "succeeded" cannot happen; map it defensively.
        if (response.status == "optimal") response.status = "solver_failure";
      }
    }
  } catch (const rel::TimeoutError&) {
    response.status = "time_limit";
    response.error = "reliability analysis exceeded the request deadline";
  } catch (const core::SpecError& e) {
    response.status = "error";
    response.error = e.what();
  } catch (const std::exception& e) {
    response.status = "error";
    response.error = e.what();
  }

  watch.stop();
  response.solve_seconds = watch.elapsed_seconds();
  const rel::EvalCache::Stats stats = cache_.stats();
  response.cache_hits = stats.hits;
  response.cache_misses = stats.misses;
  response.cache_hit_rate = stats.hit_rate();
  return response;
}

}  // namespace archex::server
