// archex/bdd/bdd.hpp
//
// A from-scratch ROBDD (reduced ordered binary decision diagram) package:
// the substrate behind rel::ExactMethod::kBdd. Following the microkernel
// argument (a self-contained engine with a narrow interface that clients
// merely dispatch into), this library knows nothing about graphs or
// reliability — it manipulates Boolean functions over a fixed variable
// order and evaluates P[f = 1] under independent variable probabilities.
//
// Design:
//
//  * Arena node store. Nodes live in one contiguous vector and are named by
//    32-bit indices (`Ref`); children are always created before parents, so
//    index order is a topological order of the DAG — the probability pass
//    exploits this with a single forward sweep instead of a recursive
//    memoization.
//  * Hash-consing unique table. make_node() returns the existing node for a
//    (var, low, high) triple when one exists (open hashing, chained through
//    an intrusive `next` field, rehashed at load factor 1). Equal functions
//    therefore have equal Refs, making equality tests O(1) and the diagram
//    canonical (reduced + ordered) by construction.
//  * Bounded computed table. The ite() cache is a fixed-size, direct-mapped
//    lossy array: a collision overwrites the previous entry. Memory stays
//    bounded for any workload; stats() reports lookups/hits so callers can
//    size it from measurements.
//  * No complement edges and no garbage collection: a manager is intended
//    to live for one compilation (the reliability path constructs one per
//    evaluated graph), so peak node count equals nodes allocated and the
//    whole arena is dropped at once.
//
// Standard references: Bryant 1986 (ROBDDs), Brace/Rudell/Bryant 1990 (the
// ite/unique-table/computed-table architecture this follows).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "support/check.hpp"

namespace archex::bdd {

/// Node handle: an index into the manager's arena. Refs are only meaningful
/// to the manager that produced them. 0 and 1 are the terminal constants.
using Ref = std::uint32_t;

/// The BDD engine's deadline tripped (see BddManager::set_deadline).
class BddTimeoutError : public Error {
 public:
  explicit BddTimeoutError(const std::string& what) : Error(what) {}
};

/// Occupancy / traffic counters for benchmarking and capacity planning.
struct BddStats {
  /// Live nodes in the arena, terminals included. No GC: this is also the
  /// peak node count of the manager's lifetime.
  std::size_t nodes_allocated = 0;
  /// Resident unique-table entries (== decision nodes, i.e. nodes_allocated
  /// minus the two terminals).
  std::size_t unique_entries = 0;
  /// Current unique-table bucket count (capacity the load factor is
  /// measured against).
  std::size_t unique_buckets = 0;
  /// make_node() calls answered by an existing node (hash-consing hits).
  std::uint64_t unique_hits = 0;
  /// Computed-table (ite cache) traffic.
  std::uint64_t computed_lookups = 0;
  std::uint64_t computed_hits = 0;

  [[nodiscard]] double unique_occupancy() const {
    return unique_buckets == 0
               ? 0.0
               : static_cast<double>(unique_entries) /
                     static_cast<double>(unique_buckets);
  }
  [[nodiscard]] double computed_hit_rate() const {
    return computed_lookups == 0
               ? 0.0
               : static_cast<double>(computed_hits) /
                     static_cast<double>(computed_lookups);
  }
};

class BddManager {
 public:
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  /// A manager over variables 0..num_vars-1 (branch order == index order).
  /// `computed_table_bits` sizes the ite cache at 2^bits entries.
  explicit BddManager(int num_vars, int computed_table_bits = 16);

  [[nodiscard]] int num_vars() const { return num_vars_; }

  /// The function of a single variable (true iff x_index).
  [[nodiscard]] Ref var(int index);

  /// If-then-else: f ? g : h. The universal connective — and/or/not below
  /// are one-liners over it, sharing the same computed table.
  [[nodiscard]] Ref ite(Ref f, Ref g, Ref h);

  [[nodiscard]] Ref bdd_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  [[nodiscard]] Ref bdd_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  [[nodiscard]] Ref bdd_not(Ref f) { return ite(f, kFalse, kTrue); }

  /// Cofactor: f with variable `index` fixed to `value`.
  [[nodiscard]] Ref restrict(Ref f, int index, bool value);

  /// P[f = 1] when variable i is independently true with probability
  /// `p_true[i]`. One memoized forward sweep over the arena (children
  /// precede parents by construction), O(nodes_allocated) time and one
  /// double per node of scratch.
  [[nodiscard]] double prob_true(Ref f, const std::vector<double>& p_true) const;

  /// Structure accessors (terminals have var() == num_vars()).
  [[nodiscard]] bool is_terminal(Ref f) const { return f <= kTrue; }
  [[nodiscard]] int var_of(Ref f) const { return nodes_[f].var; }
  [[nodiscard]] Ref low(Ref f) const { return nodes_[f].low; }
  [[nodiscard]] Ref high(Ref f) const { return nodes_[f].high; }

  /// Decision nodes reachable from `f` (terminals excluded) — the size of
  /// one function, as opposed to stats().nodes_allocated for the arena.
  [[nodiscard]] std::size_t num_nodes(Ref f) const;

  [[nodiscard]] const BddStats& stats() const { return stats_; }

  /// Abort any in-flight ite()/restrict() with BddTimeoutError once the
  /// deadline passes (polled every few thousand recursive steps, so the
  /// overhead is unmeasurable). nullopt clears the deadline.
  void set_deadline(
      std::optional<std::chrono::steady_clock::time_point> deadline) {
    deadline_ = deadline;
  }

 private:
  struct Node {
    int var = 0;      // branch variable; num_vars_ for terminals
    Ref low = 0;      // cofactor at var = 0
    Ref high = 0;     // cofactor at var = 1
    Ref next = 0;     // unique-table chain (0 terminates: node 0 is never
                      // chained — terminals bypass the table)
  };

  struct ComputedEntry {
    Ref f = 0, g = 0, h = 0;
    Ref result = 0;
    bool valid = false;
  };

  [[nodiscard]] Ref make_node(int var, Ref low, Ref high);
  [[nodiscard]] Ref ite_step(Ref f, Ref g, Ref h);
  [[nodiscard]] Ref restrict_step(Ref f, int index, bool value,
                                  std::vector<Ref>& memo);
  void grow_unique_table();
  void poll_deadline();

  int num_vars_ = 0;
  std::vector<Node> nodes_;
  std::vector<Ref> buckets_;       // unique-table heads; size is a power of 2
  std::vector<ComputedEntry> computed_;
  std::size_t computed_mask_ = 0;
  std::vector<Ref> var_refs_;      // memoized single-variable functions
  BddStats stats_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::uint64_t steps_since_poll_ = 0;
};

}  // namespace archex::bdd
