#include "bdd/bdd.hpp"

#include <algorithm>

namespace archex::bdd {

namespace {

constexpr Ref kInvalid = 0xFFFFFFFFu;

/// Mix of a (var, low, high) triple — also the computed-table index hash.
/// SplitMix64 finalizer over the packed fields: cheap and well distributed.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
                    c * 0x94d049bb133111ebULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

BddManager::BddManager(int num_vars, int computed_table_bits)
    : num_vars_(num_vars) {
  ARCHEX_REQUIRE(num_vars >= 0, "variable count must be non-negative");
  ARCHEX_REQUIRE(computed_table_bits >= 4 && computed_table_bits <= 28,
                 "computed table must hold 2^4..2^28 entries");
  // Terminals occupy arena slots 0 (false) and 1 (true); var == num_vars_
  // sentinels them below every real variable in the ordering comparisons.
  nodes_.push_back(Node{num_vars_, kFalse, kFalse, 0});
  nodes_.push_back(Node{num_vars_, kTrue, kTrue, 0});
  buckets_.assign(std::size_t{1} << 10, 0);
  computed_.assign(std::size_t{1} << computed_table_bits, ComputedEntry{});
  computed_mask_ = computed_.size() - 1;
  var_refs_.assign(static_cast<std::size_t>(num_vars), kInvalid);
  stats_.nodes_allocated = nodes_.size();
  stats_.unique_buckets = buckets_.size();
}

Ref BddManager::var(int index) {
  ARCHEX_REQUIRE(index >= 0 && index < num_vars_, "variable out of range");
  Ref& memo = var_refs_[static_cast<std::size_t>(index)];
  if (memo == kInvalid) memo = make_node(index, kFalse, kTrue);
  return memo;
}

Ref BddManager::make_node(int var, Ref low, Ref high) {
  if (low == high) return low;  // reduction rule: redundant test
  const std::uint64_t h =
      mix(static_cast<std::uint64_t>(var), low, high);
  std::size_t bucket = static_cast<std::size_t>(h) & (buckets_.size() - 1);
  for (Ref it = buckets_[bucket]; it != 0; it = nodes_[it].next) {
    const Node& node = nodes_[it];
    if (node.var == var && node.low == low && node.high == high) {
      ++stats_.unique_hits;
      return it;
    }
  }
  ARCHEX_REQUIRE(nodes_.size() < kInvalid,
                 "BDD arena exhausted (2^32 - 1 nodes)");
  const Ref ref = static_cast<Ref>(nodes_.size());
  nodes_.push_back(Node{var, low, high, buckets_[bucket]});
  buckets_[bucket] = ref;
  stats_.nodes_allocated = nodes_.size();
  stats_.unique_entries = nodes_.size() - 2;
  if (stats_.unique_entries > buckets_.size()) {
    grow_unique_table();
  }
  return ref;
}

void BddManager::grow_unique_table() {
  buckets_.assign(buckets_.size() * 2, 0);
  stats_.unique_buckets = buckets_.size();
  for (Ref ref = 2; ref < static_cast<Ref>(nodes_.size()); ++ref) {
    Node& node = nodes_[ref];
    const std::uint64_t h =
        mix(static_cast<std::uint64_t>(node.var), node.low, node.high);
    const std::size_t bucket =
        static_cast<std::size_t>(h) & (buckets_.size() - 1);
    node.next = buckets_[bucket];
    buckets_[bucket] = ref;
  }
}

void BddManager::poll_deadline() {
  if (!deadline_.has_value()) return;
  if (++steps_since_poll_ < 4096) return;
  steps_since_poll_ = 0;
  if (std::chrono::steady_clock::now() >= *deadline_) {
    throw BddTimeoutError("BDD operation exceeded its deadline");
  }
}

Ref BddManager::ite(Ref f, Ref g, Ref h) {
  ARCHEX_REQUIRE(f < nodes_.size() && g < nodes_.size() && h < nodes_.size(),
                 "foreign Ref passed to ite()");
  return ite_step(f, g, h);
}

Ref BddManager::ite_step(Ref f, Ref g, Ref h) {
  // Terminal rules resolve most recursion leaves without touching tables.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  poll_deadline();
  ++stats_.computed_lookups;
  const std::size_t slot =
      static_cast<std::size_t>(mix(f, g, h)) & computed_mask_;
  {
    const ComputedEntry& entry = computed_[slot];
    if (entry.valid && entry.f == f && entry.g == g && entry.h == h) {
      ++stats_.computed_hits;
      return entry.result;
    }
  }

  const int top = std::min({nodes_[f].var, nodes_[g].var, nodes_[h].var});
  const auto cofactor = [&](Ref r, bool positive) {
    const Node& node = nodes_[r];
    if (node.var != top) return r;
    return positive ? node.high : node.low;
  };
  const Ref r0 = ite_step(cofactor(f, false), cofactor(g, false),
                          cofactor(h, false));
  const Ref r1 = ite_step(cofactor(f, true), cofactor(g, true),
                          cofactor(h, true));
  const Ref result = make_node(top, r0, r1);

  // Lossy direct-mapped store: a collision overwrites. Bounded memory by
  // construction; correctness is unaffected (the table is a pure cache).
  computed_[slot] = ComputedEntry{f, g, h, result, true};
  return result;
}

Ref BddManager::restrict(Ref f, int index, bool value) {
  ARCHEX_REQUIRE(f < nodes_.size(), "foreign Ref passed to restrict()");
  ARCHEX_REQUIRE(index >= 0 && index < num_vars_, "variable out of range");
  // Memo over the pre-call arena: the recursion only visits nodes of f,
  // which all predate any node the rebuild creates.
  std::vector<Ref> memo(nodes_.size(), kInvalid);
  return restrict_step(f, index, value, memo);
}

Ref BddManager::restrict_step(Ref f, int index, bool value,
                              std::vector<Ref>& memo) {
  const Node& node = nodes_[f];
  if (node.var > index) return f;  // f does not depend on the variable
  if (node.var == index) return value ? node.high : node.low;
  if (memo[f] != kInvalid) return memo[f];
  poll_deadline();
  const Ref r0 = restrict_step(node.low, index, value, memo);
  const Ref r1 = restrict_step(node.high, index, value, memo);
  const Ref result = make_node(node.var, r0, r1);
  memo[f] = result;
  return result;
}

double BddManager::prob_true(Ref f, const std::vector<double>& p_true) const {
  ARCHEX_REQUIRE(f < nodes_.size(), "foreign Ref passed to prob_true()");
  ARCHEX_REQUIRE(p_true.size() == static_cast<std::size_t>(num_vars_),
                 "probability vector must cover every variable");
  for (double p : p_true) {
    ARCHEX_REQUIRE(p >= 0.0 && p <= 1.0,
                   "variable probabilities must lie in [0, 1]");
  }
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  // Children always precede parents in the arena, so one forward sweep is a
  // complete memoization of P[node = 1] over the shared DAG.
  std::vector<double> value(nodes_.size());
  value[kFalse] = 0.0;
  value[kTrue] = 1.0;
  for (Ref ref = 2; ref <= f; ++ref) {
    const Node& node = nodes_[ref];
    const double pv = p_true[static_cast<std::size_t>(node.var)];
    value[ref] = pv * value[node.high] + (1.0 - pv) * value[node.low];
  }
  return value[f];
}

std::size_t BddManager::num_nodes(Ref f) const {
  ARCHEX_REQUIRE(f < nodes_.size(), "foreign Ref passed to num_nodes()");
  if (is_terminal(f)) return 0;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<Ref> stack{f};
  seen[f] = true;
  std::size_t count = 0;
  while (!stack.empty()) {
    const Ref ref = stack.back();
    stack.pop_back();
    ++count;
    for (const Ref child : {nodes_[ref].low, nodes_[ref].high}) {
      if (!is_terminal(child) && !seen[child]) {
        seen[child] = true;
        stack.push_back(child);
      }
    }
  }
  return count;
}

}  // namespace archex::bdd
