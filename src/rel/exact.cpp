#include "rel/exact.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>

#include "graph/paths.hpp"
#include "rel/series_parallel.hpp"
#include "support/check.hpp"

namespace archex::rel {

namespace {

using graph::Digraph;
using graph::NodeId;

enum class NodeState : unsigned char { kUndecided, kUp, kDown };

/// Factoring (pivot decomposition) engine.
class Factoring {
 public:
  Factoring(const Digraph& g, std::vector<NodeId> sources, NodeId sink,
            const std::vector<double>& p)
      : g_(g), sources_(std::move(sources)), sink_(sink), p_(p) {
    state_.assign(static_cast<std::size_t>(g.num_nodes()),
                  NodeState::kUndecided);
    // Perfectly reliable nodes never branch: force them up once.
    for (std::size_t v = 0; v < p_.size(); ++v) {
      if (p_[v] == 0.0) state_[v] = NodeState::kUp;
    }
  }

  double run() { return recurse(); }

 private:
  /// BFS over nodes that are not Down; returns per-node flags reachable from
  /// any source. Fills `via_up_only[v]` when v is reachable using only Up
  /// nodes (certain-success test).
  struct Reach {
    std::vector<bool> possible;  // reachable via Up || Undecided
    std::vector<bool> certain;   // reachable via Up only
  };

  Reach reachability() const {
    const auto n = static_cast<std::size_t>(g_.num_nodes());
    Reach r{std::vector<bool>(n, false), std::vector<bool>(n, false)};
    std::deque<NodeId> queue;
    for (NodeId s : sources_) {
      const auto si = static_cast<std::size_t>(s);
      if (state_[si] == NodeState::kDown) continue;
      if (!r.possible[si]) {
        r.possible[si] = true;
        queue.push_back(s);
      }
    }
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g_.successors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (state_[vi] == NodeState::kDown || r.possible[vi]) continue;
        r.possible[vi] = true;
        queue.push_back(v);
      }
    }
    // Second pass restricted to Up nodes.
    queue.clear();
    for (NodeId s : sources_) {
      const auto si = static_cast<std::size_t>(s);
      if (state_[si] != NodeState::kUp || r.certain[si]) continue;
      r.certain[si] = true;
      queue.push_back(s);
    }
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g_.successors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (state_[vi] != NodeState::kUp || r.certain[vi]) continue;
        r.certain[vi] = true;
        queue.push_back(v);
      }
    }
    return r;
  }

  /// Pick the pivot: an undecided node on some surviving source->sink path.
  /// Preference goes to nodes close to the sink on a BFS tree, which makes
  /// the certain-failure prune fire early on layered templates.
  NodeId pick_pivot(const Reach& r) const {
    // Nodes that can still reach the sink through non-Down nodes.
    const auto n = static_cast<std::size_t>(g_.num_nodes());
    std::vector<bool> to_sink(n, false);
    std::deque<NodeId> queue;
    if (state_[static_cast<std::size_t>(sink_)] != NodeState::kDown) {
      to_sink[static_cast<std::size_t>(sink_)] = true;
      queue.push_back(sink_);
    }
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g_.predecessors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (state_[vi] == NodeState::kDown || to_sink[vi]) continue;
        to_sink[vi] = true;
        queue.push_back(v);
      }
      // Visit in BFS order from the sink: the first undecided node on a
      // surviving path is the pivot.
      const auto ui = static_cast<std::size_t>(u);
      if (state_[ui] == NodeState::kUndecided && r.possible[ui]) return u;
    }
    return -1;
  }

  double recurse() {
    const Reach r = reachability();
    const auto sink_i = static_cast<std::size_t>(sink_);
    // Certain failure: no surviving path can exist any more.
    if (state_[sink_i] == NodeState::kDown || !r.possible[sink_i]) return 1.0;
    // Certain success: a fully-working path already exists.
    if (r.certain[sink_i]) return 0.0;

    const NodeId pivot = pick_pivot(r);
    ARCHEX_ASSERT(pivot >= 0,
                  "no pivot despite undecided connectivity state");
    const auto pi = static_cast<std::size_t>(pivot);
    const double pv = p_[pi];

    state_[pi] = NodeState::kDown;
    const double fail_branch = recurse();
    state_[pi] = NodeState::kUp;
    const double work_branch = recurse();
    state_[pi] = NodeState::kUndecided;

    return pv * fail_branch + (1.0 - pv) * work_branch;
  }

  const Digraph& g_;
  std::vector<NodeId> sources_;
  NodeId sink_;
  const std::vector<double>& p_;
  std::vector<NodeState> state_;
};

/// Inclusion–exclusion over minimal path sets. For a functional link with
/// paths mu_1..mu_f:
///   P(working) = sum_{S != empty} (-1)^{|S|+1} prod_{v in union(S)} (1-p_v)
/// computed by recursion over paths carrying the running node-set union.
class InclusionExclusion {
 public:
  InclusionExclusion(const Digraph& g, const std::vector<NodeId>& sources,
                     NodeId sink, const std::vector<double>& p,
                     std::size_t max_paths)
      : p_(p) {
    ARCHEX_REQUIRE(g.num_nodes() <= 64,
                   "inclusion–exclusion supports up to 64 nodes; "
                   "use the factoring method for larger graphs");
    const auto paths = graph::enumerate_simple_paths(g, sources, sink,
                                                     max_paths);
    ARCHEX_REQUIRE(paths.size() <= 24,
                   "inclusion–exclusion over >24 paths is intractable; "
                   "use the factoring method");
    for (const auto& path : paths) {
      std::uint64_t mask = 0;
      for (NodeId v : path) mask |= (1ULL << v);
      masks_.push_back(mask);
    }
  }

  double run() const {
    // Starting the recursion at sign = -1 makes a subset of k paths carry
    // (-1)^{k+1}, matching P(∪ A_i) = Σ_{S≠∅} (-1)^{|S|+1} P(∩_{i∈S} A_i).
    const double works = subset_sum(0, 0, -1);
    return 1.0 - works;
  }

 private:
  double subset_sum(std::size_t index, std::uint64_t mask, int sign) const {
    if (index == masks_.size()) {
      if (mask == 0) return 0.0;  // skip the empty subset
      double prob_all_up = 1.0;
      std::uint64_t bits = mask;
      while (bits) {
        const int v = std::countr_zero(bits);
        bits &= bits - 1;
        prob_all_up *= 1.0 - p_[static_cast<std::size_t>(v)];
      }
      return sign * prob_all_up;
    }
    // Exclude, then include path `index` (flipping the sign).
    return subset_sum(index + 1, mask, sign) +
           subset_sum(index + 1, mask | masks_[index], -sign);
  }

  const std::vector<double>& p_;
  std::vector<std::uint64_t> masks_;
};

void validate(const Digraph& g, const std::vector<NodeId>& sources,
              NodeId sink, const std::vector<double>& p) {
  ARCHEX_REQUIRE(sink >= 0 && sink < g.num_nodes(), "sink out of range");
  ARCHEX_REQUIRE(static_cast<int>(p.size()) == g.num_nodes(),
                 "failure-probability vector must cover every node");
  for (double v : p) {
    ARCHEX_REQUIRE(v >= 0.0 && v <= 1.0,
                   "failure probabilities must lie in [0, 1]");
  }
  for (NodeId s : sources) {
    ARCHEX_REQUIRE(s >= 0 && s < g.num_nodes(), "source out of range");
  }
}

}  // namespace

double failure_probability(const Digraph& g,
                           const std::vector<NodeId>& sources,
                           graph::NodeId sink, const std::vector<double>& p,
                           ExactMethod method, std::size_t max_paths) {
  validate(g, sources, sink, p);
  if (sources.empty()) return 1.0;
  switch (method) {
    case ExactMethod::kFactoring:
      return Factoring(g, sources, sink, p).run();
    case ExactMethod::kInclusionExclusion:
      return InclusionExclusion(g, sources, sink, p, max_paths).run();
    case ExactMethod::kSeriesParallelAuto: {
      if (const auto reduced = series_parallel_failure(g, sources, sink, p)) {
        return *reduced;
      }
      return Factoring(g, sources, sink, p).run();
    }
  }
  throw InternalError("unknown exact method");
}

double failure_probability(const Digraph& g, const graph::Partition& partition,
                           graph::NodeId sink, const std::vector<double>& p,
                           ExactMethod method, std::size_t max_paths) {
  return failure_probability(g, partition.members(0), sink, p, method,
                             max_paths);
}

double worst_failure_probability(const Digraph& g,
                                 const graph::Partition& partition,
                                 const std::vector<graph::NodeId>& sinks,
                                 const std::vector<double>& p,
                                 ExactMethod method) {
  double worst = 0.0;
  for (graph::NodeId sink : sinks) {
    worst = std::max(worst,
                     failure_probability(g, partition, sink, p, method));
  }
  return worst;
}

}  // namespace archex::rel
