#include "rel/exact.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <utility>

#include "graph/paths.hpp"
#include "rel/bdd_method.hpp"
#include "rel/series_parallel.hpp"
#include "support/check.hpp"

namespace archex::rel {

namespace {

using graph::Digraph;
using graph::NodeId;

using Deadline = std::optional<std::chrono::steady_clock::time_point>;

enum class NodeState : unsigned char { kUndecided, kUp, kDown };

/// Counted deadline poll shared by the analyzers: checks the clock every
/// `kPollInterval` ticks so the hot paths pay one increment per step.
class DeadlinePoller {
 public:
  explicit DeadlinePoller(const Deadline& deadline) : deadline_(deadline) {}

  void poll() {
    if (!deadline_.has_value()) return;
    if (++ticks_ < kPollInterval) return;
    ticks_ = 0;
    if (std::chrono::steady_clock::now() >= *deadline_) {
      throw TimeoutError("exact analysis exceeded the EvalContext deadline");
    }
  }

 private:
  static constexpr std::uint64_t kPollInterval = 1024;
  Deadline deadline_;
  std::uint64_t ticks_ = 0;
};

/// Copy of `g` with every adjacency list sorted ascending. The factoring
/// engine evaluates on this normalized form so that a subproblem's value is
/// a pure function of its canonical key (EvalKey): order-preserving node
/// compaction maps sorted adjacency to sorted adjacency, hence BFS orders,
/// pivot choices and the floating-point combination order all coincide with
/// an evaluation of the canonicalized subgraph. That invariant is what makes
/// the cache bit-exact and thread-schedule independent.
Digraph sorted_adjacency_copy(const Digraph& g) {
  Digraph out(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> succ = g.successors(u);
    std::sort(succ.begin(), succ.end());
    for (NodeId v : succ) out.add_edge(u, v);
  }
  return out;
}

/// Factoring (pivot decomposition) engine. Operates on a normalized
/// (adjacency-sorted) graph with ascending, duplicate-free sources.
class Factoring {
 public:
  Factoring(const Digraph& g, const std::vector<NodeId>& sources, NodeId sink,
            const std::vector<double>& p, EvalCache* cache,
            const Deadline& deadline)
      : g_(g),
        sources_(sources),
        sink_(sink),
        p_(p),
        cache_(cache),
        deadline_(deadline),
        poller_(deadline) {
    state_.assign(static_cast<std::size_t>(g.num_nodes()),
                  NodeState::kUndecided);
    // Perfectly reliable nodes never branch: force them up once.
    for (std::size_t v = 0; v < p_.size(); ++v) {
      if (p_[v] == 0.0) state_[v] = NodeState::kUp;
    }
  }

  /// Continue from a mid-recursion conditioning state (parallel subtrees).
  Factoring(const Digraph& g, const std::vector<NodeId>& sources, NodeId sink,
            const std::vector<double>& p, EvalCache* cache,
            const Deadline& deadline, std::vector<NodeState> state)
      : g_(g),
        sources_(sources),
        sink_(sink),
        p_(p),
        cache_(cache),
        deadline_(deadline),
        poller_(deadline),
        state_(std::move(state)) {}

  double run() { return recurse(); }

  /// Expand the top of the recursion tree breadth-first into independent
  /// subproblems, evaluate them on `pool`, and recombine in the exact
  /// association order the serial recursion would have used — the result is
  /// bit-identical to run() for any thread count.
  double run_parallel(support::ThreadPool& pool) {
    struct TreeNode {
      std::vector<NodeState> state;  // leaves only (moved out on expansion)
      double pv = 0.0;               // pivot probability (inner nodes)
      int down = -1;
      int up = -1;
      double value = 0.0;
      bool resolved = false;
      bool has_key = false;
      EvalKey key;  // kept to publish inner-node values to the cache
    };

    std::vector<TreeNode> tree;
    std::deque<std::size_t> open;  // unexpanded leaves, FIFO -> balanced
    tree.emplace_back();
    tree.front().state = state_;
    open.push_back(0);

    const auto target_leaves =
        static_cast<std::size_t>(4 * pool.num_threads());
    while (!open.empty() && open.size() < target_leaves &&
           tree.size() < 8 * target_leaves) {
      poller_.poll();
      const std::size_t id = open.front();
      open.pop_front();
      state_ = tree[id].state;

      if (cache_ != nullptr &&
          state_[static_cast<std::size_t>(sink_)] != NodeState::kDown) {
        tree[id].key = make_key();
        tree[id].has_key = true;
        if (const auto hit = cache_->lookup(tree[id].key)) {
          tree[id].value = *hit;
          tree[id].resolved = true;
          continue;
        }
      }

      const Reach r = reachability();
      const auto sink_i = static_cast<std::size_t>(sink_);
      if (state_[sink_i] == NodeState::kDown || !r.possible[sink_i] ||
          r.certain[sink_i]) {
        tree[id].value = r.certain[sink_i] ? 0.0 : 1.0;
        tree[id].resolved = true;
        if (tree[id].has_key) cache_->store(tree[id].key, tree[id].value);
        continue;
      }

      const NodeId pivot = pick_pivot(r);
      ARCHEX_ASSERT(pivot >= 0,
                    "no pivot despite undecided connectivity state");
      const auto pi = static_cast<std::size_t>(pivot);
      tree[id].pv = p_[pi];
      tree[id].down = static_cast<int>(tree.size());
      tree[id].up = static_cast<int>(tree.size()) + 1;
      tree.emplace_back();
      tree.emplace_back();
      tree[static_cast<std::size_t>(tree[id].down)].state = tree[id].state;
      tree[static_cast<std::size_t>(tree[id].down)].state[pi] =
          NodeState::kDown;
      tree[static_cast<std::size_t>(tree[id].up)].state =
          std::move(tree[id].state);
      tree[static_cast<std::size_t>(tree[id].up)].state[pi] = NodeState::kUp;
      open.push_back(static_cast<std::size_t>(tree[id].down));
      open.push_back(static_cast<std::size_t>(tree[id].up));
    }

    // Evaluate the pending leaves concurrently; the shared cache is safe
    // because every stored value is a pure function of its key.
    const std::vector<std::size_t> pending(open.begin(), open.end());
    pool.parallel_for(0, pending.size(), [&](std::size_t i) {
      TreeNode& leaf = tree[pending[i]];
      Factoring sub(g_, sources_, sink_, p_, cache_, deadline_,
                    std::move(leaf.state));
      leaf.value = sub.run();
      leaf.resolved = true;
    });

    // Children always follow their parent in `tree`, so one reverse sweep
    // resolves every inner node with the serial combination order.
    for (std::size_t i = tree.size(); i-- > 0;) {
      TreeNode& node = tree[i];
      if (node.resolved) continue;
      node.value =
          node.pv * tree[static_cast<std::size_t>(node.down)].value +
          (1.0 - node.pv) * tree[static_cast<std::size_t>(node.up)].value;
      node.resolved = true;
      if (node.has_key) cache_->store(node.key, node.value);
    }
    return tree.front().value;
  }

 private:
  /// BFS over nodes that are not Down; returns per-node flags reachable from
  /// any source. Fills `via_up_only[v]` when v is reachable using only Up
  /// nodes (certain-success test).
  struct Reach {
    std::vector<bool> possible;  // reachable via Up || Undecided
    std::vector<bool> certain;   // reachable via Up only
  };

  Reach reachability() const {
    const auto n = static_cast<std::size_t>(g_.num_nodes());
    Reach r{std::vector<bool>(n, false), std::vector<bool>(n, false)};
    std::deque<NodeId> queue;
    for (NodeId s : sources_) {
      const auto si = static_cast<std::size_t>(s);
      if (state_[si] == NodeState::kDown) continue;
      if (!r.possible[si]) {
        r.possible[si] = true;
        queue.push_back(s);
      }
    }
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g_.successors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (state_[vi] == NodeState::kDown || r.possible[vi]) continue;
        r.possible[vi] = true;
        queue.push_back(v);
      }
    }
    // Second pass restricted to Up nodes.
    queue.clear();
    for (NodeId s : sources_) {
      const auto si = static_cast<std::size_t>(s);
      if (state_[si] != NodeState::kUp || r.certain[si]) continue;
      r.certain[si] = true;
      queue.push_back(s);
    }
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g_.successors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (state_[vi] != NodeState::kUp || r.certain[vi]) continue;
        r.certain[vi] = true;
        queue.push_back(v);
      }
    }
    return r;
  }

  /// Pick the pivot: an undecided node on some surviving source->sink path.
  /// Preference goes to nodes close to the sink on a BFS tree, which makes
  /// the certain-failure prune fire early on layered templates.
  NodeId pick_pivot(const Reach& r) const {
    // Nodes that can still reach the sink through non-Down nodes.
    const auto n = static_cast<std::size_t>(g_.num_nodes());
    std::vector<bool> to_sink(n, false);
    std::deque<NodeId> queue;
    if (state_[static_cast<std::size_t>(sink_)] != NodeState::kDown) {
      to_sink[static_cast<std::size_t>(sink_)] = true;
      queue.push_back(sink_);
    }
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g_.predecessors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (state_[vi] == NodeState::kDown || to_sink[vi]) continue;
        to_sink[vi] = true;
        queue.push_back(v);
      }
      // Visit in BFS order from the sink: the first undecided node on a
      // surviving path is the pivot.
      const auto ui = static_cast<std::size_t>(u);
      if (state_[ui] == NodeState::kUndecided && r.possible[ui]) return u;
    }
    return -1;
  }

  /// Canonical form of the current conditioning state: live (non-Down)
  /// nodes compacted in ascending order, Up nodes carrying probability 0.
  [[nodiscard]] EvalKey make_key() const {
    const auto n = static_cast<std::size_t>(g_.num_nodes());
    EvalKey key;
    std::vector<int> canon(n, -1);
    int next = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (state_[v] != NodeState::kDown) canon[v] = next++;
    }
    key.probs.resize(static_cast<std::size_t>(next));
    for (std::size_t v = 0; v < n; ++v) {
      if (canon[v] < 0) continue;
      key.probs[static_cast<std::size_t>(canon[v])] =
          state_[v] == NodeState::kUp ? 0.0 : p_[v];
    }
    for (NodeId u = 0; u < g_.num_nodes(); ++u) {
      const auto ui = static_cast<std::size_t>(u);
      if (canon[ui] < 0) continue;
      for (NodeId v : g_.successors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (canon[vi] >= 0) key.edges.push_back({canon[ui], canon[vi]});
      }
    }
    for (NodeId s : sources_) {
      const auto si = static_cast<std::size_t>(s);
      if (canon[si] >= 0) key.sources.push_back(canon[si]);
    }
    key.sink = canon[static_cast<std::size_t>(sink_)];
    return key;
  }

  double recurse() {
    // Memoize every pivot subproblem (not just the top level). The canonical
    // key fully determines the value, so a hit is bit-exact.
    if (cache_ != nullptr &&
        state_[static_cast<std::size_t>(sink_)] != NodeState::kDown) {
      const EvalKey key = make_key();
      if (const auto hit = cache_->lookup(key)) return *hit;
      const double value = evaluate();
      cache_->store(key, value);
      return value;
    }
    return evaluate();
  }

  double evaluate() {
    poller_.poll();
    const Reach r = reachability();
    const auto sink_i = static_cast<std::size_t>(sink_);
    // Certain failure: no surviving path can exist any more.
    if (state_[sink_i] == NodeState::kDown || !r.possible[sink_i]) return 1.0;
    // Certain success: a fully-working path already exists.
    if (r.certain[sink_i]) return 0.0;

    const NodeId pivot = pick_pivot(r);
    ARCHEX_ASSERT(pivot >= 0,
                  "no pivot despite undecided connectivity state");
    const auto pi = static_cast<std::size_t>(pivot);
    const double pv = p_[pi];

    state_[pi] = NodeState::kDown;
    const double fail_branch = recurse();
    state_[pi] = NodeState::kUp;
    const double work_branch = recurse();
    state_[pi] = NodeState::kUndecided;

    return pv * fail_branch + (1.0 - pv) * work_branch;
  }

  const Digraph& g_;
  const std::vector<NodeId>& sources_;
  NodeId sink_;
  const std::vector<double>& p_;
  EvalCache* cache_ = nullptr;
  Deadline deadline_;
  DeadlinePoller poller_;
  std::vector<NodeState> state_;
};

/// Inclusion–exclusion over minimal path sets. For a functional link with
/// paths mu_1..mu_f:
///   P(working) = sum_{S != empty} (-1)^{|S|+1} prod_{v in union(S)} (1-p_v)
/// computed by recursion over paths carrying the running node-set union.
class InclusionExclusion {
 public:
  InclusionExclusion(const Digraph& g, const std::vector<NodeId>& sources,
                     NodeId sink, const std::vector<double>& p,
                     std::size_t max_paths, const Deadline& deadline)
      : p_(p), poller_(deadline) {
    ARCHEX_REQUIRE(g.num_nodes() <= 64,
                   "inclusion–exclusion supports up to 64 nodes; "
                   "use the factoring method for larger graphs");
    const auto paths = graph::enumerate_simple_paths(g, sources, sink,
                                                     max_paths);
    ARCHEX_REQUIRE(paths.size() <= 24,
                   "inclusion–exclusion over >24 paths is intractable; "
                   "use the factoring method");
    for (const auto& path : paths) {
      std::uint64_t mask = 0;
      for (NodeId v : path) mask |= (1ULL << v);
      masks_.push_back(mask);
    }
  }

  double run() const {
    // Starting the recursion at sign = -1 makes a subset of k paths carry
    // (-1)^{k+1}, matching P(∪ A_i) = Σ_{S≠∅} (-1)^{|S|+1} P(∩_{i∈S} A_i).
    const double works = subset_sum(0, 0, -1);
    return 1.0 - works;
  }

 private:
  double subset_sum(std::size_t index, std::uint64_t mask, int sign) const {
    poller_.poll();
    if (index == masks_.size()) {
      if (mask == 0) return 0.0;  // skip the empty subset
      double prob_all_up = 1.0;
      std::uint64_t bits = mask;
      while (bits) {
        const int v = std::countr_zero(bits);
        bits &= bits - 1;
        prob_all_up *= 1.0 - p_[static_cast<std::size_t>(v)];
      }
      return sign * prob_all_up;
    }
    // Exclude, then include path `index` (flipping the sign).
    return subset_sum(index + 1, mask, sign) +
           subset_sum(index + 1, mask | masks_[index], -sign);
  }

  const std::vector<double>& p_;
  mutable DeadlinePoller poller_;
  std::vector<std::uint64_t> masks_;
};

void validate(const Digraph& g, const std::vector<NodeId>& sources,
              NodeId sink, const std::vector<double>& p) {
  ARCHEX_REQUIRE(sink >= 0 && sink < g.num_nodes(), "sink out of range");
  ARCHEX_REQUIRE(static_cast<int>(p.size()) == g.num_nodes(),
                 "failure-probability vector must cover every node");
  for (double v : p) {
    ARCHEX_REQUIRE(v >= 0.0 && v <= 1.0,
                   "failure probabilities must lie in [0, 1]");
  }
  for (NodeId s : sources) {
    ARCHEX_REQUIRE(s >= 0 && s < g.num_nodes(), "source out of range");
  }
}

/// Normalize and factor: the normalized graph plus sorted duplicate-free
/// sources pin down the evaluation order, making the result a pure function
/// of the canonical problem (the cache/parallel determinism contract).
double run_factoring(const Digraph& g, const std::vector<NodeId>& sources,
                     NodeId sink, const std::vector<double>& p,
                     const EvalContext& ctx) {
  const Digraph normalized = sorted_adjacency_copy(g);
  std::vector<NodeId> ordered = sources;
  std::sort(ordered.begin(), ordered.end());
  ordered.erase(std::unique(ordered.begin(), ordered.end()), ordered.end());
  Factoring factoring(normalized, ordered, sink, p, ctx.cache, ctx.deadline);
  if (ctx.pool != nullptr && ctx.pool->num_threads() > 1) {
    return factoring.run_parallel(*ctx.pool);
  }
  return factoring.run();
}

/// Canonical whole-problem key for kBdd's graph-level memoization: all
/// nodes live, perfectly reliable nodes carrying 0.0, edges in the sorted
/// adjacency order. This coincides with the factoring engine's *top-level*
/// key (p == 0 nodes are forced Up there and also carry 0.0), so a cache
/// shared across methods serves whole-graph hits to either — both values
/// are exact; which bit pattern is resident is first-writer-wins
/// (see the determinism contract in DESIGN.md).
EvalKey make_whole_graph_key(const Digraph& g,
                             const std::vector<NodeId>& sources, NodeId sink,
                             const std::vector<double>& p) {
  EvalKey key;
  key.probs = p;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> succ = g.successors(u);
    std::sort(succ.begin(), succ.end());
    for (NodeId v : succ) key.edges.push_back({u, v});
  }
  std::vector<NodeId> ordered = sources;
  std::sort(ordered.begin(), ordered.end());
  ordered.erase(std::unique(ordered.begin(), ordered.end()), ordered.end());
  key.sources.assign(ordered.begin(), ordered.end());
  key.sink = sink;
  return key;
}

/// kBdd dispatch: the EvalCache memoizes whole-graph results (synthesis
/// loops re-analyze near-identical iterates) while the manager's computed
/// table handles intra-call sharing.
double run_bdd(const Digraph& g, const std::vector<NodeId>& sources,
               NodeId sink, const std::vector<double>& p,
               const EvalContext& ctx) {
  if (ctx.cache == nullptr) {
    return bdd_failure_probability(g, sources, sink, p, BddOrdering::kAuto,
                                   nullptr, ctx.deadline);
  }
  const EvalKey key = make_whole_graph_key(g, sources, sink, p);
  if (const auto hit = ctx.cache->lookup(key)) return *hit;
  const double value = bdd_failure_probability(
      g, sources, sink, p, BddOrdering::kAuto, nullptr, ctx.deadline);
  ctx.cache->store(key, value);
  return value;
}

}  // namespace

double failure_probability(const Digraph& g,
                           const std::vector<NodeId>& sources,
                           graph::NodeId sink, const std::vector<double>& p,
                           const EvalContext& ctx, ExactMethod method,
                           std::size_t max_paths) {
  validate(g, sources, sink, p);
  if (sources.empty()) return 1.0;
  switch (method) {
    case ExactMethod::kFactoring:
      return run_factoring(g, sources, sink, p, ctx);
    case ExactMethod::kInclusionExclusion:
      return InclusionExclusion(g, sources, sink, p, max_paths, ctx.deadline)
          .run();
    case ExactMethod::kSeriesParallelAuto: {
      if (const auto reduced = series_parallel_failure(g, sources, sink, p)) {
        return *reduced;
      }
      return run_factoring(g, sources, sink, p, ctx);
    }
    case ExactMethod::kBdd:
      return run_bdd(g, sources, sink, p, ctx);
  }
  throw InternalError("unknown exact method");
}

EvalResult try_failure_probability(const Digraph& g,
                                   const std::vector<NodeId>& sources,
                                   graph::NodeId sink,
                                   const std::vector<double>& p,
                                   const EvalContext& ctx, ExactMethod method,
                                   std::size_t max_paths) {
  try {
    return {failure_probability(g, sources, sink, p, ctx, method, max_paths),
            EvalStatus::kOk};
  } catch (const TimeoutError&) {
    return {1.0, EvalStatus::kTimeLimit};
  }
}

double failure_probability(const Digraph& g,
                           const std::vector<NodeId>& sources,
                           graph::NodeId sink, const std::vector<double>& p,
                           ExactMethod method, std::size_t max_paths) {
  return failure_probability(g, sources, sink, p, EvalContext{}, method,
                             max_paths);
}

std::string to_string(ExactMethod method) {
  switch (method) {
    case ExactMethod::kFactoring: return "factoring";
    case ExactMethod::kInclusionExclusion: return "inclusion-exclusion";
    case ExactMethod::kSeriesParallelAuto: return "series-parallel";
    case ExactMethod::kBdd: return "bdd";
  }
  return "unknown";
}

std::optional<ExactMethod> parse_exact_method(const std::string& name) {
  if (name == "factoring") return ExactMethod::kFactoring;
  if (name == "inclusion-exclusion") return ExactMethod::kInclusionExclusion;
  if (name == "series-parallel") return ExactMethod::kSeriesParallelAuto;
  if (name == "bdd") return ExactMethod::kBdd;
  return std::nullopt;
}

double failure_probability(const Digraph& g, const graph::Partition& partition,
                           graph::NodeId sink, const std::vector<double>& p,
                           ExactMethod method, std::size_t max_paths) {
  return failure_probability(g, partition.members(0), sink, p, method,
                             max_paths);
}

double worst_failure_probability(const Digraph& g,
                                 const graph::Partition& partition,
                                 const std::vector<graph::NodeId>& sinks,
                                 const std::vector<double>& p,
                                 ExactMethod method, const EvalContext& ctx) {
  double worst = 0.0;
  for (graph::NodeId sink : sinks) {
    worst = std::max(worst, failure_probability(g, partition.members(0), sink,
                                                p, ctx, method));
  }
  return worst;
}

}  // namespace archex::rel
