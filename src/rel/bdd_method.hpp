// archex/rel/bdd_method.hpp
//
// BDD-based exact K-terminal reliability (ExactMethod::kBdd): compile the
// source->sink connectivity function of a digraph — node-failure semantics,
// the sink's own failure included — into an ROBDD (src/bdd), then read
// P[connected] off the diagram in one memoized sweep. This is the
// Lucet & Manouvrier-style evaluation referenced in exact.hpp: its cost
// scales with the BDD width induced by the variable ordering rather than
// with the pathset count, making it the method of choice for dense
// redundant architectures whose path counts explode.
//
// Compilation: restrict to the relevant nodes (forward-reachable from a
// source AND backward-reachable from the sink), pick a variable order, then
// solve the monotone reachability fixed point
//
//   R_v = x_v ∧ (v ∈ sources  ∨  ∨_{u ∈ pred(v)} R_u)
//
// by Gauss–Seidel iteration over the order until no BDD changes (paths
// lengthen by at least one edge per round, so at most |relevant| rounds; a
// DAG in topological order converges in one). R_sink is the connectivity
// function; failure = 1 − P[R_sink = 1] with P[x_v = 1] = 1 − p_v.
// Perfectly reliable nodes (p_v = 0) never allocate a variable — their
// literal is the constant true, mirroring the factoring engine's
// "perfectly reliable nodes never branch" rule.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace archex::rel {

/// Variable-ordering heuristic for the connectivity BDD. The ordering is
/// the dominant cost factor of any BDD method; bench_rel_methods --order
/// ablates these on the EPS templates.
enum class BddOrdering {
  /// Topological order of the relevant subgraph when it is acyclic,
  /// BFS-level order otherwise (the default).
  kAuto,
  /// Kahn topological order; falls back to BFS levels on cyclic graphs.
  kTopological,
  /// Breadth-first levels from the sources (ties broken by node id) —
  /// works uniformly for cyclic graphs.
  kBfsLevel,
  /// Descending total degree within the relevant subgraph, ties by node
  /// id. A structure-free baseline the structural orders must beat.
  kDegree,
};

/// Engine counters of one kBdd evaluation, surfaced for the benches.
struct BddEvalStats {
  int num_vars = 0;               // variables (relevant nodes with p > 0)
  int fixpoint_rounds = 0;        // Gauss–Seidel rounds until convergence
  std::size_t final_nodes = 0;    // decision nodes of the connectivity BDD
  std::size_t peak_nodes = 0;     // arena size == peak (no GC)
  std::size_t unique_entries = 0;
  double unique_occupancy = 0.0;  // entries / buckets of the unique table
  std::uint64_t computed_lookups = 0;
  std::uint64_t computed_hits = 0;
  double computed_hit_rate = 0.0;
};

/// The variable order the compiler would use: relevant nodes of `g` in
/// branch order (position 0 is tested first). Exposed for the ordering
/// ablation; nodes outside the returned list never influence the result.
[[nodiscard]] std::vector<graph::NodeId> bdd_variable_order(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, BddOrdering ordering = BddOrdering::kAuto);

/// Exact P(sink cut off from every source) via ROBDD compilation. Inputs
/// follow the failure_probability contract (exact.hpp). `stats` (optional)
/// receives the engine counters; `deadline` aborts compilation with
/// rel::TimeoutError once passed.
[[nodiscard]] double bdd_failure_probability(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p,
    BddOrdering ordering = BddOrdering::kAuto, BddEvalStats* stats = nullptr,
    std::optional<std::chrono::steady_clock::time_point> deadline =
        std::nullopt);

}  // namespace archex::rel
