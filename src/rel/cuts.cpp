#include "rel/cuts.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "support/check.hpp"

namespace archex::rel {

namespace {

using graph::NodeId;

/// Berge's algorithm: minimal transversals of a family of sets, with sets
/// represented as 64-bit masks.
std::vector<std::uint64_t> minimal_transversals(
    const std::vector<std::uint64_t>& family, std::size_t max_out) {
  std::vector<std::uint64_t> transversals{0};  // of the empty family
  for (const std::uint64_t set : family) {
    std::vector<std::uint64_t> next;
    for (const std::uint64_t t : transversals) {
      if (t & set) {
        next.push_back(t);  // already hits the new set
        continue;
      }
      std::uint64_t bits = set;
      while (bits) {
        const int v = std::countr_zero(bits);
        bits &= bits - 1;
        next.push_back(t | (1ULL << v));
      }
    }
    // Keep only minimal masks.
    std::sort(next.begin(), next.end(),
              [](std::uint64_t a, std::uint64_t b) {
                const int pa = std::popcount(a);
                const int pb = std::popcount(b);
                return pa != pb ? pa < pb : a < b;
              });
    next.erase(std::unique(next.begin(), next.end()), next.end());
    std::vector<std::uint64_t> minimal;
    for (const std::uint64_t cand : next) {
      bool dominated = false;
      for (const std::uint64_t kept : minimal) {
        if ((kept & cand) == kept) {
          dominated = true;
          break;
        }
      }
      if (!dominated) minimal.push_back(cand);
    }
    if (minimal.size() > max_out) {
      throw Error("minimal-cut-set enumeration exceeded the cap");
    }
    transversals = std::move(minimal);
  }
  return transversals;
}

}  // namespace

std::vector<std::vector<NodeId>> minimal_cut_sets(
    const graph::Digraph& g, const std::vector<NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, std::size_t max_cuts,
    std::size_t max_paths) {
  ARCHEX_REQUIRE(g.num_nodes() <= 64,
                 "cut-set enumeration supports up to 64 nodes");
  ARCHEX_REQUIRE(static_cast<int>(p.size()) == g.num_nodes(),
                 "failure-probability vector must cover every node");

  const auto paths = graph::enumerate_simple_paths(g, sources, sink,
                                                   max_paths);
  std::vector<std::uint64_t> family;
  family.reserve(paths.size());
  for (const auto& path : paths) {
    std::uint64_t mask = 0;
    for (const NodeId v : path) {
      if (p[static_cast<std::size_t>(v)] > 0.0) mask |= 1ULL << v;
    }
    if (mask == 0) return {};  // an unbreakable path exists: no cuts
    family.push_back(mask);
  }
  if (family.empty()) return {};  // no path at all: "cut" is the empty set?
                                  // The link is already broken; callers
                                  // should treat F = 1 separately.

  const auto transversals = minimal_transversals(family, max_cuts);
  std::vector<std::vector<NodeId>> cuts;
  cuts.reserve(transversals.size());
  for (const std::uint64_t mask : transversals) {
    std::vector<NodeId> cut;
    std::uint64_t bits = mask;
    while (bits) {
      cut.push_back(std::countr_zero(bits));
      bits &= bits - 1;
    }
    cuts.push_back(std::move(cut));
  }
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

FailureBounds esary_proschan_bounds(
    const std::vector<graph::Path>& paths,
    const std::vector<std::vector<NodeId>>& cuts,
    const std::vector<double>& p) {
  FailureBounds out;
  if (paths.empty()) {
    // The link is structurally broken: failure is certain.
    out.lower = 1.0;
    out.upper = 1.0;
    return out;
  }
  // Lower bound on failure: every path must fail "independently".
  double all_paths_fail = 1.0;
  for (const auto& path : paths) {
    double path_works = 1.0;
    for (const NodeId v : path) {
      path_works *= 1.0 - p[static_cast<std::size_t>(v)];
    }
    all_paths_fail *= 1.0 - path_works;
  }
  out.lower = paths.empty() ? 1.0 : all_paths_fail;

  // Upper bound: every cut must survive "independently".
  double all_cuts_survive = 1.0;
  for (const auto& cut : cuts) {
    double cut_fails = 1.0;
    for (const NodeId v : cut) cut_fails *= p[static_cast<std::size_t>(v)];
    all_cuts_survive *= 1.0 - cut_fails;
  }
  out.upper = 1.0 - all_cuts_survive;
  return out;
}

FailureBounds esary_proschan_bounds(const graph::Digraph& g,
                                    const std::vector<NodeId>& sources,
                                    graph::NodeId sink,
                                    const std::vector<double>& p) {
  const auto paths = graph::enumerate_simple_paths(g, sources, sink);
  const auto cuts = minimal_cut_sets(g, sources, sink, p);
  return esary_proschan_bounds(paths, cuts, p);
}

}  // namespace archex::rel
