// archex/rel/approx.hpp
//
// The approximate reliability algebra of Section IV-A. For a functional
// link F_i (all source->sink paths), each component type j that *jointly
// implements* F_i (every path crosses the type) contributes according to its
// degree of redundancy h_ij — the number of distinct type-j components used
// across the reduced paths:
//
//     r̃_i = Σ_{j ∈ I_i}  h_ij * p_j^{h_ij}                      (eq. 7)
//
// Intuition: if h redundant components of type j back each other up, the
// link only loses that type when all h fail (p_j^h), and there are h
// "first failure" orderings. Types with the highest failure probability and
// least redundancy dominate, which keeps the estimate within the correct
// order of magnitude; Theorem 2 bounds the optimism:  r̃/r >= m·f / M_f.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"
#include "graph/paths.hpp"

namespace archex::rel {

struct ApproxResult {
  /// Approximate failure probability r̃ of the functional link (eq. 7).
  double r_tilde = 0.0;
  /// Degree of redundancy h_j per type (0 when the type is unused).
  std::vector<int> degree;
  /// Whether each type jointly implements the link (j ∈ I).
  std::vector<bool> jointly_implements;
  /// Number of reduced paths f = |F|.
  int num_paths = 0;
  /// Theorem-2 lower bound on r̃/r (m·f / M_f); 0 when f == 0.
  double optimism_bound = 0.0;

  /// m = |I|: number of jointly-implementing types.
  [[nodiscard]] int num_joint_types() const {
    int m = 0;
    for (bool b : jointly_implements) m += b;
    return m;
  }
};

/// Evaluate the approximate algebra for the functional link of `sink`.
///
/// `g` must already have the same-type shorthand expanded (see
/// graph::expand_same_type_shorthand); redundant components then appear as
/// parallel path alternatives exactly as the algebra expects. `p_type[j]`
/// is the failure probability shared by the components of type j.
[[nodiscard]] ApproxResult approximate_failure(
    const graph::Digraph& g, const graph::Partition& partition,
    graph::NodeId sink, const std::vector<double>& p_type,
    std::size_t max_paths = 1u << 20);

/// The Theorem-2 bound m·f / M_f for an explicit path set, where
/// M_f = prod_j |mu_j| over the f paths and m = |I|.
[[nodiscard]] double theorem2_bound(const std::vector<graph::Path>& paths,
                                    const graph::Partition& partition);

}  // namespace archex::rel
