// archex/rel/monte_carlo.hpp
//
// Monte-Carlo estimator of the source-to-sink failure probability. Never
// used inside the synthesis algorithms (they rely on the exact analyzers);
// it exists to cross-validate the exact methods in the test suite and to
// sanity-check large instances where exact analysis is expensive.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace archex::rel {

struct MonteCarloResult {
  double estimate = 0.0;
  /// One standard error of the estimate (binomial).
  double std_error = 0.0;
  long samples = 0;
};

/// Configuration of the sharded (optionally parallel) estimator.
///
/// Determinism contract: the estimate is a pure function of (samples, seed,
/// num_shards, bias) — the thread count only changes who evaluates which
/// shard. Each shard owns an independent RNG stream derived from `seed` via
/// SplitMix64, and shard results are merged in ascending shard order, so a
/// `pool` of any size reproduces the serial (`pool == nullptr`) result
/// bit for bit.
struct MonteCarloOptions {
  long samples = 100000;
  std::uint64_t seed = 0x5eed5eed5eed5eedULL;
  /// Fixed work decomposition; shards beyond `samples` draw nothing.
  int num_shards = 64;
  /// Null runs the shards sequentially on the calling thread.
  support::ThreadPool* pool = nullptr;
  /// 0 disables failure biasing; a value in (0, 1) switches every shard to
  /// the importance-sampled estimator (see monte_carlo_failure_biased).
  double bias = 0.0;
};

/// Sharded estimator of P(sink disconnected from all sources); see
/// MonteCarloOptions for the determinism contract.
[[nodiscard]] MonteCarloResult monte_carlo_failure_sharded(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p,
    const MonteCarloOptions& options);

/// Estimate P(sink disconnected from all sources) by sampling node states.
[[nodiscard]] MonteCarloResult monte_carlo_failure(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, long samples, Rng& rng);

/// Importance-sampled estimator for *rare* failures. Plain Monte Carlo is
/// blind below ~1/samples (an EPS architecture at r = 1e-10 produces zero
/// failing samples); failure biasing samples each component down with an
/// inflated probability q_v = max(p_v, bias) and reweights each sample by
/// the likelihood ratio prod_v (p_v/q_v or (1-p_v)/(1-q_v)). Unbiased for
/// any bias in (0, 1); a bias near the per-sample failure scale (e.g. 0.05
/// to 0.3) gives useful variance for the EPS magnitudes.
[[nodiscard]] MonteCarloResult monte_carlo_failure_biased(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, long samples, Rng& rng,
    double bias = 0.1);

}  // namespace archex::rel
