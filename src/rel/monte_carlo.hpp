// archex/rel/monte_carlo.hpp
//
// Monte-Carlo estimator of the source-to-sink failure probability. Never
// used inside the synthesis algorithms (they rely on the exact analyzers);
// it exists to cross-validate the exact methods in the test suite and to
// sanity-check large instances where exact analysis is expensive.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace archex::rel {

struct MonteCarloResult {
  double estimate = 0.0;
  /// One standard error of the estimate (binomial).
  double std_error = 0.0;
  long samples = 0;
};

/// Estimate P(sink disconnected from all sources) by sampling node states.
[[nodiscard]] MonteCarloResult monte_carlo_failure(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, long samples, Rng& rng);

/// Importance-sampled estimator for *rare* failures. Plain Monte Carlo is
/// blind below ~1/samples (an EPS architecture at r = 1e-10 produces zero
/// failing samples); failure biasing samples each component down with an
/// inflated probability q_v = max(p_v, bias) and reweights each sample by
/// the likelihood ratio prod_v (p_v/q_v or (1-p_v)/(1-q_v)). Unbiased for
/// any bias in (0, 1); a bias near the per-sample failure scale (e.g. 0.05
/// to 0.3) gives useful variance for the EPS magnitudes.
[[nodiscard]] MonteCarloResult monte_carlo_failure_biased(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, long samples, Rng& rng,
    double bias = 0.1);

}  // namespace archex::rel
