// archex/rel/importance.hpp
//
// Component importance measures for a functional link — which component
// should be hardened (or doubled) first? Computed exactly from the
// factoring analyzer by conditioning each component up/down:
//
//   Birnbaum  I_B(v) = F(v failed) - F(v working)   (= dF / dp_v)
//   RAW(v)    = F(v failed)  / F     ("risk achievement worth")
//   RRW(v)    = F / F(v working)     ("risk reduction worth")
//
// These are the standard FTA/PRA measures the paper's Section I contrasts
// with its structure-level synthesis view; having them here lets a designer
// audit a synthesized architecture component by component.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace archex::rel {

struct ComponentImportance {
  graph::NodeId node = -1;
  double birnbaum = 0.0;
  double risk_achievement = 1.0;  // RAW; 1 when the component is irrelevant
  double risk_reduction = 1.0;    // RRW
  double failure_if_down = 0.0;   // F(v failed)
  double failure_if_up = 0.0;     // F(v working)
};

struct ImportanceReport {
  /// Exact failure probability of the unconditioned link.
  double failure = 0.0;
  /// One entry per failable node (p > 0), sorted by Birnbaum descending.
  std::vector<ComponentImportance> components;
};

/// Exact importance analysis of the link from `sources` to `sink`.
[[nodiscard]] ImportanceReport importance_analysis(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p);

}  // namespace archex::rel
