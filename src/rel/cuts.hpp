// archex/rel/cuts.hpp
//
// Minimal cut sets of a functional link and the Esary–Proschan two-sided
// bounds built from path/cut sets. Classical reliability-engineering
// companions to the exact analyzers: cut sets answer "which combinations of
// component failures break the link", and the EP bounds bracket the exact
// failure probability using only the (often small) path and cut families —
// useful as a fast screen before running the exponential exact analysis.
//
// Definitions (node failures, as everywhere in ARCHEX):
//  * a path set is the node set of a simple source->sink path;
//  * a cut set is a set of *failable* nodes whose joint failure disconnects
//    every source from the sink; it is minimal when no proper subset is.
//    Cut sets are exactly the minimal transversals (hitting sets) of the
//    family of path sets, restricted to nodes with p > 0.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/paths.hpp"

namespace archex::rel {

/// All minimal cut sets of the link (sorted node lists, lexicographic).
/// `p[v] == 0` marks nodes that never fail; they are excluded from cuts
/// (a cut relying on them can never occur). Throws archex::Error when the
/// enumeration exceeds `max_cuts` or path enumeration exceeds `max_paths`.
[[nodiscard]] std::vector<std::vector<graph::NodeId>> minimal_cut_sets(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p,
    std::size_t max_cuts = 4096, std::size_t max_paths = 1u << 16);

/// Two-sided Esary–Proschan bounds on the failure probability.
struct FailureBounds {
  double lower = 0.0;  // prod over paths (1 - prod reliabilities)
  double upper = 1.0;  // 1 - prod over cuts (1 - prod failure probs)
};

/// Bounds from explicit path and cut families (node-id sets) and per-node
/// failure probabilities.
[[nodiscard]] FailureBounds esary_proschan_bounds(
    const std::vector<graph::Path>& paths,
    const std::vector<std::vector<graph::NodeId>>& cuts,
    const std::vector<double>& p);

/// Convenience: enumerate paths and cuts internally.
[[nodiscard]] FailureBounds esary_proschan_bounds(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p);

}  // namespace archex::rel
