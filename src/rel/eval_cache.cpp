#include "rel/eval_cache.hpp"

#include <bit>
#include <cstring>

namespace archex::rel {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline void mix(std::uint64_t& h, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t EvalKey::hash() const {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(sink));
  mix(h, probs.size());
  for (double p : probs) mix(h, std::bit_cast<std::uint64_t>(p));
  mix(h, edges.size());
  for (const auto& [u, v] : edges) {
    mix(h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
               static_cast<std::uint32_t>(v));
  }
  mix(h, sources.size());
  for (int s : sources) mix(h, static_cast<std::uint64_t>(s));
  return h;
}

std::optional<double> EvalCache::lookup(const EvalKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void EvalCache::store(const EvalKey& key, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= max_entries_ && !entries_.contains(key)) {
    ++rejected_;
    return;
  }
  entries_.try_emplace(key, value);
}

void EvalCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

EvalCache::Stats EvalCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.rejected = rejected_;
  out.size = entries_.size();
  return out;
}

}  // namespace archex::rel
