#include "rel/eval_cache.hpp"

#include <bit>
#include <cstring>
#include <memory>

namespace archex::rel {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline void mix(std::uint64_t& h, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t EvalKey::hash() const {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(sink));
  mix(h, probs.size());
  for (double p : probs) mix(h, std::bit_cast<std::uint64_t>(p));
  mix(h, edges.size());
  for (const auto& [u, v] : edges) {
    mix(h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
               static_cast<std::uint32_t>(v));
  }
  mix(h, sources.size());
  for (int s : sources) mix(h, static_cast<std::uint64_t>(s));
  return h;
}

EvalCache::EvalCache(std::size_t max_entries, int num_shards)
    : max_entries_(max_entries) {
  int count = 1;
  while (count < num_shards && count < 256) count <<= 1;
  shards_.reserve(static_cast<std::size_t>(count));
  for (int s = 0; s < count; ++s) shards_.push_back(std::make_unique<Shard>());
  shard_mask_ = static_cast<std::uint64_t>(count - 1);
  const int bits = std::countr_zero(static_cast<unsigned>(count));
  shard_shift_ = bits == 0 ? 0 : 64 - bits;  // a 64-bit shift would be UB
}

std::optional<double> EvalCache::lookup(const EvalKey& key) {
  Shard& shard = shard_for(key.hash());
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  return it->second;
}

void EvalCache::store(const EvalKey& key, double value) {
  Shard& shard = shard_for(key.hash());
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (total_entries_.load(std::memory_order_relaxed) >= max_entries_ &&
      !shard.entries.contains(key)) {
    ++shard.rejected;
    return;
  }
  if (shard.entries.try_emplace(key, value).second) {
    total_entries_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EvalCache::clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total_entries_.fetch_sub(shard->entries.size(),
                             std::memory_order_relaxed);
    shard->entries.clear();
  }
}

EvalCache::Stats EvalCache::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.rejected += shard->rejected;
    out.size += shard->entries.size();
  }
  return out;
}

}  // namespace archex::rel
