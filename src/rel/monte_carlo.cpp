#include "rel/monte_carlo.hpp"

#include <cmath>
#include <deque>

#include "support/check.hpp"

namespace archex::rel {

MonteCarloResult monte_carlo_failure(const graph::Digraph& g,
                                     const std::vector<graph::NodeId>& sources,
                                     graph::NodeId sink,
                                     const std::vector<double>& p,
                                     long samples, Rng& rng) {
  ARCHEX_REQUIRE(samples > 0, "sample count must be positive");
  ARCHEX_REQUIRE(static_cast<int>(p.size()) == g.num_nodes(),
                 "failure-probability vector must cover every node");
  const auto n = static_cast<std::size_t>(g.num_nodes());

  std::vector<bool> up(n);
  std::vector<bool> seen(n);
  long failures = 0;
  for (long s = 0; s < samples; ++s) {
    for (std::size_t v = 0; v < n; ++v) up[v] = !rng.next_bernoulli(p[v]);
    // BFS from the sources over working nodes.
    std::fill(seen.begin(), seen.end(), false);
    std::deque<graph::NodeId> queue;
    for (graph::NodeId src : sources) {
      const auto si = static_cast<std::size_t>(src);
      if (up[si] && !seen[si]) {
        seen[si] = true;
        queue.push_back(src);
      }
    }
    bool connected = false;
    while (!queue.empty() && !connected) {
      const graph::NodeId u = queue.front();
      queue.pop_front();
      if (u == sink) {
        connected = true;
        break;
      }
      for (graph::NodeId v : g.successors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (up[vi] && !seen[vi]) {
          seen[vi] = true;
          queue.push_back(v);
        }
      }
    }
    if (seen[static_cast<std::size_t>(sink)]) connected = true;
    failures += connected ? 0 : 1;
  }

  MonteCarloResult out;
  out.samples = samples;
  out.estimate = static_cast<double>(failures) / static_cast<double>(samples);
  out.std_error = std::sqrt(out.estimate * (1.0 - out.estimate) /
                            static_cast<double>(samples));
  return out;
}

MonteCarloResult monte_carlo_failure_biased(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, long samples, Rng& rng,
    double bias) {
  ARCHEX_REQUIRE(samples > 0, "sample count must be positive");
  ARCHEX_REQUIRE(bias > 0.0 && bias < 1.0, "bias must lie in (0, 1)");
  ARCHEX_REQUIRE(static_cast<int>(p.size()) == g.num_nodes(),
                 "failure-probability vector must cover every node");
  const auto n = static_cast<std::size_t>(g.num_nodes());

  // Biased sampling distribution: q_v = max(p_v, bias) for failable nodes;
  // perfect nodes stay perfect (no weight contribution).
  std::vector<double> q(n);
  for (std::size_t v = 0; v < n; ++v) {
    q[v] = p[v] > 0.0 ? std::max(p[v], bias) : 0.0;
  }

  std::vector<bool> up(n);
  std::vector<bool> seen(n);
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  for (long s = 0; s < samples; ++s) {
    double weight = 1.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (q[v] <= 0.0) {
        up[v] = true;
        continue;
      }
      const bool fail = rng.next_bernoulli(q[v]);
      up[v] = !fail;
      weight *= fail ? p[v] / q[v] : (1.0 - p[v]) / (1.0 - q[v]);
    }
    // BFS over working nodes.
    std::fill(seen.begin(), seen.end(), false);
    std::deque<graph::NodeId> queue;
    for (graph::NodeId src : sources) {
      const auto si = static_cast<std::size_t>(src);
      if (up[si] && !seen[si]) {
        seen[si] = true;
        queue.push_back(src);
      }
    }
    while (!queue.empty()) {
      const graph::NodeId u = queue.front();
      queue.pop_front();
      for (graph::NodeId v : g.successors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (up[vi] && !seen[vi]) {
          seen[vi] = true;
          queue.push_back(v);
        }
      }
    }
    if (!seen[static_cast<std::size_t>(sink)]) {
      sum_w += weight;
      sum_w2 += weight * weight;
    }
  }

  MonteCarloResult out;
  out.samples = samples;
  const auto ns = static_cast<double>(samples);
  out.estimate = sum_w / ns;
  const double variance =
      std::max(0.0, sum_w2 / ns - out.estimate * out.estimate);
  out.std_error = std::sqrt(variance / ns);
  return out;
}

}  // namespace archex::rel
