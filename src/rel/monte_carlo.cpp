#include "rel/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "support/check.hpp"

namespace archex::rel {

namespace {

/// Raw tallies of one batch of trials; merged across shards in shard order
/// so parallel runs reproduce serial runs bit for bit.
struct Tally {
  long failures = 0;
  double sum_w = 0.0;   // likelihood-ratio weights of failing samples
  double sum_w2 = 0.0;  // their squares (variance of the biased estimator)
};

/// Shared trial loop of the plain and importance-sampled estimators. When
/// `biased` is set, `q` holds the inflated sampling probabilities and the
/// weights are accumulated; otherwise every node draws with its true p.
Tally run_trials(const graph::Digraph& g,
                 const std::vector<graph::NodeId>& sources,
                 graph::NodeId sink, const std::vector<double>& p,
                 const std::vector<double>& q, bool biased, long samples,
                 Rng& rng) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<bool> up(n);
  std::vector<bool> seen(n);
  Tally tally;
  for (long s = 0; s < samples; ++s) {
    double weight = 1.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (!biased) {
        up[v] = !rng.next_bernoulli(p[v]);
        continue;
      }
      if (q[v] <= 0.0) {
        up[v] = true;
        continue;
      }
      const bool fail = rng.next_bernoulli(q[v]);
      up[v] = !fail;
      weight *= fail ? p[v] / q[v] : (1.0 - p[v]) / (1.0 - q[v]);
    }
    // BFS from the sources over working nodes.
    std::fill(seen.begin(), seen.end(), false);
    std::deque<graph::NodeId> queue;
    for (graph::NodeId src : sources) {
      const auto si = static_cast<std::size_t>(src);
      if (up[si] && !seen[si]) {
        seen[si] = true;
        queue.push_back(src);
      }
    }
    while (!queue.empty()) {
      const graph::NodeId u = queue.front();
      queue.pop_front();
      for (graph::NodeId v : g.successors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (up[vi] && !seen[vi]) {
          seen[vi] = true;
          queue.push_back(v);
        }
      }
    }
    if (!seen[static_cast<std::size_t>(sink)]) {
      ++tally.failures;
      tally.sum_w += weight;
      tally.sum_w2 += weight * weight;
    }
  }
  return tally;
}

/// Inflated sampling distribution q_v = max(p_v, bias) for failable nodes;
/// perfect nodes stay perfect (no weight contribution).
std::vector<double> biased_distribution(const std::vector<double>& p,
                                        double bias) {
  std::vector<double> q(p.size());
  for (std::size_t v = 0; v < p.size(); ++v) {
    q[v] = p[v] > 0.0 ? std::max(p[v], bias) : 0.0;
  }
  return q;
}

MonteCarloResult finish_plain(long failures, long samples) {
  MonteCarloResult out;
  out.samples = samples;
  out.estimate = static_cast<double>(failures) / static_cast<double>(samples);
  out.std_error = std::sqrt(out.estimate * (1.0 - out.estimate) /
                            static_cast<double>(samples));
  return out;
}

MonteCarloResult finish_biased(double sum_w, double sum_w2, long samples) {
  MonteCarloResult out;
  out.samples = samples;
  const auto ns = static_cast<double>(samples);
  out.estimate = sum_w / ns;
  const double variance =
      std::max(0.0, sum_w2 / ns - out.estimate * out.estimate);
  out.std_error = std::sqrt(variance / ns);
  return out;
}

void validate_inputs(const graph::Digraph& g, const std::vector<double>& p,
                     long samples) {
  ARCHEX_REQUIRE(samples > 0, "sample count must be positive");
  ARCHEX_REQUIRE(static_cast<int>(p.size()) == g.num_nodes(),
                 "failure-probability vector must cover every node");
}

}  // namespace

MonteCarloResult monte_carlo_failure(const graph::Digraph& g,
                                     const std::vector<graph::NodeId>& sources,
                                     graph::NodeId sink,
                                     const std::vector<double>& p,
                                     long samples, Rng& rng) {
  validate_inputs(g, p, samples);
  const Tally tally =
      run_trials(g, sources, sink, p, {}, /*biased=*/false, samples, rng);
  return finish_plain(tally.failures, samples);
}

MonteCarloResult monte_carlo_failure_biased(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, long samples, Rng& rng,
    double bias) {
  validate_inputs(g, p, samples);
  ARCHEX_REQUIRE(bias > 0.0 && bias < 1.0, "bias must lie in (0, 1)");
  const std::vector<double> q = biased_distribution(p, bias);
  const Tally tally =
      run_trials(g, sources, sink, p, q, /*biased=*/true, samples, rng);
  return finish_biased(tally.sum_w, tally.sum_w2, samples);
}

MonteCarloResult monte_carlo_failure_sharded(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p,
    const MonteCarloOptions& options) {
  validate_inputs(g, p, options.samples);
  ARCHEX_REQUIRE(options.num_shards >= 1, "need at least one shard");
  const bool biased = options.bias > 0.0;
  if (biased) {
    ARCHEX_REQUIRE(options.bias < 1.0, "bias must lie in (0, 1)");
  }

  const auto shards = static_cast<std::size_t>(options.num_shards);
  // Per-shard sample counts and RNG seeds are fixed up front: the
  // decomposition — and therefore the estimate — is independent of who
  // executes which shard.
  std::vector<long> shard_samples(shards);
  const long base = options.samples / options.num_shards;
  const long extra = options.samples % options.num_shards;
  for (std::size_t i = 0; i < shards; ++i) {
    shard_samples[i] = base + (static_cast<long>(i) < extra ? 1 : 0);
  }
  std::vector<std::uint64_t> shard_seeds(shards);
  SplitMix64 mix(options.seed);
  for (std::size_t i = 0; i < shards; ++i) shard_seeds[i] = mix.next();

  const std::vector<double> q =
      biased ? biased_distribution(p, options.bias) : std::vector<double>{};

  std::vector<Tally> tallies(shards);
  const auto run_shard = [&](std::size_t i) {
    if (shard_samples[i] == 0) return;
    Rng rng(shard_seeds[i]);
    tallies[i] = run_trials(g, sources, sink, p, q, biased, shard_samples[i],
                            rng);
  };
  if (options.pool != nullptr) {
    options.pool->parallel_for(0, shards, run_shard);
  } else {
    for (std::size_t i = 0; i < shards; ++i) run_shard(i);
  }

  // Merge in ascending shard order (bit-reproducible for any thread count).
  long failures = 0;
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  for (const Tally& tally : tallies) {
    failures += tally.failures;
    sum_w += tally.sum_w;
    sum_w2 += tally.sum_w2;
  }
  return biased ? finish_biased(sum_w, sum_w2, options.samples)
                : finish_plain(failures, options.samples);
}

}  // namespace archex::rel
