// archex/rel/eval_cache.hpp
//
// Memoization cache for exact K-terminal reliability subproblems. The
// synthesis loops (ILP-MR iterates, Pareto sweep points) evaluate many
// configurations whose induced subgraphs overlap heavily, and the factoring
// analyzer itself re-derives identical pivot subproblems along different
// branches of its recursion tree. Both levels hit this cache.
//
// A subproblem is identified by its *canonical form*: live nodes relabeled
// densely in ascending original order, the sorted induced edge list, the
// per-node failure probabilities (already-conditioned "up" nodes carry 0.0),
// the live source set, and the sink. The canonical form fully determines the
// factoring result — the analyzer evaluates on an adjacency-sorted graph, so
// the stored value is bit-identical to what any later evaluation of the same
// canonical form would compute (see DESIGN.md, determinism contract).
//
// Thread safety and sharding: the table is split into a fixed power-of-two
// number of independently locked shards selected by the top bits of the
// structural key hash (the bottom bits index buckets inside the shard's
// map, so shard choice and bucket choice stay uncorrelated). Concurrent
// lookups/stores only contend when they land on the same shard, so one
// process-lifetime cache can back many parallel solves (the archex_server
// serving path) without the former single mutex becoming the concurrency
// ceiling. Values are pure functions of their keys; racing writers store
// identical bits, making the first-writer-wins policy harmless — and making
// results independent of the shard count (pinned by the sharded-vs-single-
// lock differential in tests/eval_cache_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace archex::rel {

/// Canonical subproblem identity. Equality is structural (hash collisions
/// can never alias two distinct subproblems).
struct EvalKey {
  std::vector<std::pair<int, int>> edges;  // canonical ids, lexicographic
  std::vector<double> probs;               // per canonical node
  std::vector<int> sources;                // canonical ids, ascending
  int sink = 0;                            // canonical id

  bool operator==(const EvalKey&) const = default;

  /// 64-bit structural hash (FNV-1a over the packed representation).
  [[nodiscard]] std::uint64_t hash() const;
};

class EvalCache {
 public:
  /// Default shard count: enough stripes that a handful of solver workers
  /// rarely collide, small enough that stats aggregation stays cheap.
  static constexpr int kDefaultShards = 16;

  /// `max_entries` bounds memory: stores beyond it are dropped (counted in
  /// stats().rejected) rather than evicting, because synthesis workloads
  /// revisit early iterates far more often than late ones. The cap is
  /// global across shards (tracked by a shared atomic), so shard count
  /// never changes capacity semantics. `num_shards` is rounded up to a
  /// power of two and clamped to [1, 256]; 1 reproduces the historical
  /// single-lock table exactly (the differential-testing baseline).
  explicit EvalCache(std::size_t max_entries = 1u << 20,
                     int num_shards = kDefaultShards);

  /// The cached value for `key`, or nullopt. Updates hit/miss counters.
  [[nodiscard]] std::optional<double> lookup(const EvalKey& key);

  /// Insert key -> value. Duplicate stores keep the existing entry.
  void store(const EvalKey& key, double value);

  /// Drop every entry (invalidation). Counters survive so observability
  /// spans invalidation boundaries; size() resets to 0.
  void clear();

  /// Number of lock stripes the table actually runs with.
  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rejected = 0;  // stores dropped by the max_entries cap
    std::size_t size = 0;        // resident entries

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };
  /// Aggregated over all shards. Counters from different shards are read
  /// under their own locks, so concurrent updates can make the totals
  /// momentarily inconsistent with each other — fine for observability.
  [[nodiscard]] Stats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const EvalKey& key) const {
      return static_cast<std::size_t>(key.hash());
    }
  };

  /// One lock stripe: a map plus its observability counters.
  struct Shard {
    std::mutex mutex;
    std::unordered_map<EvalKey, double, KeyHash> entries;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rejected = 0;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) {
    // Top bits: the map consumes the low bits for bucket placement.
    return *shards_[(hash >> shard_shift_) & shard_mask_];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_mask_ = 0;
  int shard_shift_ = 0;
  std::size_t max_entries_;
  /// Resident entries across shards; maintained under the owning shard's
  /// lock, read lock-free by the capacity check.
  std::atomic<std::size_t> total_entries_{0};
};

}  // namespace archex::rel
