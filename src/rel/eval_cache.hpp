// archex/rel/eval_cache.hpp
//
// Memoization cache for exact K-terminal reliability subproblems. The
// synthesis loops (ILP-MR iterates, Pareto sweep points) evaluate many
// configurations whose induced subgraphs overlap heavily, and the factoring
// analyzer itself re-derives identical pivot subproblems along different
// branches of its recursion tree. Both levels hit this cache.
//
// A subproblem is identified by its *canonical form*: live nodes relabeled
// densely in ascending original order, the sorted induced edge list, the
// per-node failure probabilities (already-conditioned "up" nodes carry 0.0),
// the live source set, and the sink. The canonical form fully determines the
// factoring result — the analyzer evaluates on an adjacency-sorted graph, so
// the stored value is bit-identical to what any later evaluation of the same
// canonical form would compute (see DESIGN.md, determinism contract).
//
// Thread safety: lookups and stores take a mutex, so one cache can back a
// parallel factoring run or be shared across pool tasks. Values are pure
// functions of their keys; racing writers store identical bits, making the
// first-writer-wins policy harmless.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace archex::rel {

/// Canonical subproblem identity. Equality is structural (hash collisions
/// can never alias two distinct subproblems).
struct EvalKey {
  std::vector<std::pair<int, int>> edges;  // canonical ids, lexicographic
  std::vector<double> probs;               // per canonical node
  std::vector<int> sources;                // canonical ids, ascending
  int sink = 0;                            // canonical id

  bool operator==(const EvalKey&) const = default;

  /// 64-bit structural hash (FNV-1a over the packed representation).
  [[nodiscard]] std::uint64_t hash() const;
};

class EvalCache {
 public:
  /// `max_entries` bounds memory: stores beyond it are dropped (counted in
  /// stats().rejected) rather than evicting, because synthesis workloads
  /// revisit early iterates far more often than late ones.
  explicit EvalCache(std::size_t max_entries = 1u << 20)
      : max_entries_(max_entries) {}

  /// The cached value for `key`, or nullopt. Updates hit/miss counters.
  [[nodiscard]] std::optional<double> lookup(const EvalKey& key);

  /// Insert key -> value. Duplicate stores keep the existing entry.
  void store(const EvalKey& key, double value);

  /// Drop every entry (invalidation). Counters survive so observability
  /// spans invalidation boundaries; size() resets to 0.
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rejected = 0;  // stores dropped by the max_entries cap
    std::size_t size = 0;        // resident entries

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const EvalKey& key) const {
      return static_cast<std::size_t>(key.hash());
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<EvalKey, double, KeyHash> entries_;
  std::size_t max_entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace archex::rel
