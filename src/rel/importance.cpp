#include "rel/importance.hpp"

#include <algorithm>
#include <limits>

#include "rel/exact.hpp"
#include "support/check.hpp"

namespace archex::rel {

ImportanceReport importance_analysis(const graph::Digraph& g,
                                     const std::vector<graph::NodeId>& sources,
                                     graph::NodeId sink,
                                     const std::vector<double>& p) {
  ARCHEX_REQUIRE(static_cast<int>(p.size()) == g.num_nodes(),
                 "failure-probability vector must cover every node");

  ImportanceReport report;
  report.failure = failure_probability(g, sources, sink, p);

  std::vector<double> conditioned = p;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (p[vi] <= 0.0) continue;  // perfect components are never ranked

    ComponentImportance entry;
    entry.node = v;
    conditioned[vi] = 1.0;  // v failed
    entry.failure_if_down = failure_probability(g, sources, sink, conditioned);
    conditioned[vi] = 0.0;  // v working
    entry.failure_if_up = failure_probability(g, sources, sink, conditioned);
    conditioned[vi] = p[vi];

    entry.birnbaum = entry.failure_if_down - entry.failure_if_up;
    if (report.failure > 0.0) {
      entry.risk_achievement = entry.failure_if_down / report.failure;
    }
    if (entry.failure_if_up > 0.0) {
      entry.risk_reduction = report.failure / entry.failure_if_up;
    } else if (report.failure > 0.0) {
      // Removing this component's failures eliminates all system failures.
      entry.risk_reduction = std::numeric_limits<double>::infinity();
    }
    report.components.push_back(entry);
  }

  std::sort(report.components.begin(), report.components.end(),
            [](const ComponentImportance& a, const ComponentImportance& b) {
              if (a.birnbaum != b.birnbaum) return a.birnbaum > b.birnbaum;
              return a.node < b.node;
            });
  return report;
}

}  // namespace archex::rel
