#include "rel/series_parallel.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "support/check.hpp"

namespace archex::rel {

namespace {

struct Edge {
  int from;
  int to;
  double rel;   // probability the edge "works"
  bool alive = true;
};

/// Working multigraph under reduction.
class SpGraph {
 public:
  SpGraph(int num_nodes, int source, int sink)
      : n_(num_nodes), source_(source), sink_(sink) {}

  void add_edge(int from, int to, double rel) {
    edges_.push_back({from, to, rel, true});
  }

  /// Run reductions to a fixed point; returns the sink failure probability
  /// when fully reduced, nullopt otherwise.
  std::optional<double> reduce() {
    bool changed = true;
    while (changed) {
      changed = false;
      changed |= drop_unreachable();
      changed |= merge_parallel();
      changed |= contract_series();
    }
    // Count surviving edges.
    double rel = -1.0;
    int alive = 0;
    for (const Edge& e : edges_) {
      if (!e.alive) continue;
      ++alive;
      if (e.from == source_ && e.to == sink_) rel = e.rel;
    }
    if (alive == 0) return 1.0;  // sink unreachable: certain failure
    if (alive == 1 && rel >= 0.0) return 1.0 - rel;
    return std::nullopt;  // irreducible (non-series-parallel) remainder
  }

 private:
  /// Remove edges not on any source->sink route (dead ends, unreachable
  /// islands). Returns true when something was removed.
  bool drop_unreachable() {
    std::vector<bool> from_src(static_cast<std::size_t>(n_), false);
    std::vector<bool> to_sink(static_cast<std::size_t>(n_), false);
    bfs(source_, /*forward=*/true, from_src);
    bfs(sink_, /*forward=*/false, to_sink);
    bool changed = false;
    for (Edge& e : edges_) {
      if (!e.alive) continue;
      if (!from_src[static_cast<std::size_t>(e.from)] ||
          !to_sink[static_cast<std::size_t>(e.to)]) {
        e.alive = false;
        changed = true;
      }
    }
    return changed;
  }

  void bfs(int start, bool forward, std::vector<bool>& seen) const {
    seen[static_cast<std::size_t>(start)] = true;
    std::deque<int> queue{start};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (const Edge& e : edges_) {
        if (!e.alive) continue;
        const int tail = forward ? e.from : e.to;
        const int head = forward ? e.to : e.from;
        if (tail == u && !seen[static_cast<std::size_t>(head)]) {
          seen[static_cast<std::size_t>(head)] = true;
          queue.push_back(head);
        }
      }
    }
  }

  bool merge_parallel() {
    std::map<std::pair<int, int>, std::size_t> first;
    bool changed = false;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      Edge& e = edges_[i];
      if (!e.alive) continue;
      if (e.from == e.to) {  // self loop: never useful
        e.alive = false;
        changed = true;
        continue;
      }
      const auto [it, inserted] = first.try_emplace({e.from, e.to}, i);
      if (!inserted) {
        Edge& keep = edges_[it->second];
        keep.rel = 1.0 - (1.0 - keep.rel) * (1.0 - e.rel);
        e.alive = false;
        changed = true;
      }
    }
    return changed;
  }

  bool contract_series() {
    // Degree census over alive edges.
    std::vector<int> in_deg(static_cast<std::size_t>(n_), 0);
    std::vector<int> out_deg(static_cast<std::size_t>(n_), 0);
    std::vector<std::size_t> in_edge(static_cast<std::size_t>(n_), 0);
    std::vector<std::size_t> out_edge(static_cast<std::size_t>(n_), 0);
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      const Edge& e = edges_[i];
      if (!e.alive) continue;
      ++in_deg[static_cast<std::size_t>(e.to)];
      in_edge[static_cast<std::size_t>(e.to)] = i;
      ++out_deg[static_cast<std::size_t>(e.from)];
      out_edge[static_cast<std::size_t>(e.from)] = i;
    }
    bool changed = false;
    for (int x = 0; x < n_; ++x) {
      if (x == source_ || x == sink_) continue;
      const auto xi = static_cast<std::size_t>(x);
      if (in_deg[xi] != 1 || out_deg[xi] != 1) continue;
      Edge& a = edges_[in_edge[xi]];
      Edge& b = edges_[out_edge[xi]];
      if (!a.alive || !b.alive || &a == &b) continue;
      a.to = b.to;
      a.rel *= b.rel;
      b.alive = false;
      changed = true;
      // Degrees are stale now; restart the pass.
      return true;
    }
    return changed;
  }

  int n_;
  int source_;
  int sink_;
  std::vector<Edge> edges_;
};

}  // namespace

std::optional<double> series_parallel_failure(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p) {
  ARCHEX_REQUIRE(sink >= 0 && sink < g.num_nodes(), "sink out of range");
  ARCHEX_REQUIRE(static_cast<int>(p.size()) == g.num_nodes(),
                 "failure-probability vector must cover every node");
  if (sources.empty()) return 1.0;

  // Node splitting: v -> (2v, 2v+1) with the node's reliability on the
  // internal edge; plus a perfect super-source at index 2n.
  const int n = g.num_nodes();
  const int super = 2 * n;
  SpGraph sp(2 * n + 1, super, 2 * sink + 1);
  for (graph::NodeId v = 0; v < n; ++v) {
    sp.add_edge(2 * v, 2 * v + 1, 1.0 - p[static_cast<std::size_t>(v)]);
  }
  for (const auto& [u, v] : g.edges()) {
    sp.add_edge(2 * u + 1, 2 * v, 1.0);
  }
  for (const graph::NodeId s : sources) {
    ARCHEX_REQUIRE(s >= 0 && s < n, "source out of range");
    sp.add_edge(super, 2 * s, 1.0);
  }
  return sp.reduce();
}

}  // namespace archex::rel
