// archex/rel/series_parallel.hpp
//
// Series-parallel reduction: the polynomial-time exact method for the class
// of graphs where it applies (Lucet & Manouvrier [1] survey it among the
// exact techniques). Node failures are turned into edge failures by node
// splitting (v becomes v_in -> v_out carrying v's reliability), multiple
// sources merge into a perfect super-source, and then the standard rules
// contract the graph:
//
//   series:    -- a --> x -- b -->   =>   -- a*b -->        (x relay-only)
//   parallel:  two u -> v edges      =>   1 - (1-a)(1-b)
//
// If the reduction reaches a single source->sink edge, its reliability is
// exact. Graphs with bridge-like structure (e.g. a Wheatstone cell) do not
// reduce; the analyzer reports that instead of guessing, and callers fall
// back to factoring. EPS architectures — parallel chains with expanded
// ties — typically reduce completely, making this the fastest exact path.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace archex::rel {

/// Exact failure probability via series-parallel reduction, or nullopt when
/// the (split, merged) graph is not series-parallel reducible.
[[nodiscard]] std::optional<double> series_parallel_failure(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p);

}  // namespace archex::rel
