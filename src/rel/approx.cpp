#include "rel/approx.hpp"

#include <cmath>
#include <set>

#include "support/check.hpp"

namespace archex::rel {

namespace {

using graph::Partition;
using graph::Path;

/// Types present on every path of the link (the set I = {j | Π_j ⊢ F}).
std::vector<bool> joint_types(const std::vector<Path>& paths,
                              const Partition& partition) {
  const auto n_types = static_cast<std::size_t>(partition.num_types());
  std::vector<bool> joint(n_types, !paths.empty());
  for (const Path& path : paths) {
    std::vector<bool> present(n_types, false);
    for (graph::NodeId v : path) {
      present[static_cast<std::size_t>(partition.type_of(v))] = true;
    }
    for (std::size_t t = 0; t < n_types; ++t) {
      if (!present[t]) joint[t] = false;
    }
  }
  return joint;
}

}  // namespace

double theorem2_bound(const std::vector<Path>& paths,
                      const Partition& partition) {
  if (paths.empty()) return 0.0;
  const std::vector<bool> joint = joint_types(paths, partition);
  int m = 0;
  for (bool b : joint) m += b;
  double big_m = 1.0;
  for (const Path& path : paths) big_m *= static_cast<double>(path.size());
  return static_cast<double>(m) * static_cast<double>(paths.size()) / big_m;
}

ApproxResult approximate_failure(const graph::Digraph& g,
                                 const Partition& partition,
                                 graph::NodeId sink,
                                 const std::vector<double>& p_type,
                                 std::size_t max_paths) {
  ARCHEX_REQUIRE(partition.num_nodes() == g.num_nodes(),
                 "partition does not cover the graph");
  ARCHEX_REQUIRE(static_cast<int>(p_type.size()) == partition.num_types(),
                 "per-type failure probabilities must cover every type");
  for (double v : p_type) {
    ARCHEX_REQUIRE(v >= 0.0 && v <= 1.0,
                   "failure probabilities must lie in [0, 1]");
  }

  const auto raw = graph::functional_link(g, partition, sink, max_paths);
  const auto paths = graph::reduced_paths(raw, partition);

  ApproxResult out;
  out.num_paths = static_cast<int>(paths.size());
  out.degree.assign(static_cast<std::size_t>(partition.num_types()), 0);
  out.jointly_implements = joint_types(paths, partition);
  if (paths.empty()) {
    // No path at all: the link is certainly broken.
    out.r_tilde = 1.0;
    return out;
  }

  // h_j = |(union of reduced paths) ∩ Π_j|.
  std::vector<std::set<graph::NodeId>> used(
      static_cast<std::size_t>(partition.num_types()));
  for (const Path& path : paths) {
    for (graph::NodeId v : path) {
      used[static_cast<std::size_t>(partition.type_of(v))].insert(v);
    }
  }
  for (std::size_t t = 0; t < used.size(); ++t) {
    out.degree[t] = static_cast<int>(used[t].size());
  }

  double r = 0.0;
  for (int t = 0; t < partition.num_types(); ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (!out.jointly_implements[ti]) continue;
    const int h = out.degree[ti];
    ARCHEX_ASSERT(h >= 1, "jointly-implementing type must be used");
    r += static_cast<double>(h) * std::pow(p_type[ti], h);
  }
  out.r_tilde = r;
  out.optimism_bound = theorem2_bound(paths, partition);
  return out;
}

}  // namespace archex::rel
