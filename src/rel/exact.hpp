// archex/rel/exact.hpp
//
// Exact source-to-sink failure probability under independent node failures —
// the RELANALYSIS routine of ILP-MR (Algorithm 1) and the reference value r
// reported in Figs. 2/3. This is the (NP-hard) K-terminal reliability
// problem [Lucet & Manouvrier 1997]; the paper notes "any other exact
// reliability analysis method for directed graphs can also be used", so two
// independent exact methods are provided and cross-checked in the tests:
//
//  * factoring (pivot decomposition): condition on one relevant component at
//    a time, with two strong pruning rules — certain failure as soon as the
//    surviving nodes disconnect every source from the sink, and certain
//    success as soon as a fully-working path exists;
//  * inclusion–exclusion over the minimal path sets of the functional link.
//
// Semantics (Section II of the paper): a component failure removes the node
// and its incident links; the sink's failure event R_i also includes the
// sink's own failure P_i — equivalently, the system fails iff NO path from
// any source to the sink consists entirely of working nodes (the sink lies
// on every such path). Failures are independent across components and
// unrecoverable; the external controller is assumed to activate any
// alternative path that exists, so reliability depends on topology only.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"
#include "rel/eval_cache.hpp"
#include "support/thread_pool.hpp"

namespace archex::rel {

enum class ExactMethod {
  kFactoring,
  kInclusionExclusion,
  /// Try polynomial series-parallel reduction first (EPS-shaped
  /// architectures usually reduce completely); fall back to factoring on
  /// irreducible graphs. Always exact.
  kSeriesParallelAuto,
};

/// Optional acceleration context threaded through the exact analyzers.
/// Both members may be null (plain serial evaluation). Only the factoring
/// method uses them; the determinism contract (DESIGN.md) guarantees that
/// any combination of cache state and thread count produces bit-identical
/// results for the same inputs.
struct EvalContext {
  /// Memoizes every pivot subproblem of the factoring recursion, keyed by
  /// canonical form. Shareable across calls, iterates, and threads.
  EvalCache* cache = nullptr;
  /// Evaluates independent factoring subtrees concurrently.
  support::ThreadPool* pool = nullptr;
};

/// Exact probability that `sink` is cut off from every node in `sources`
/// (including by its own failure). `p[v]` is the self-failure probability of
/// node v; entries must lie in [0, 1].
///
/// `max_paths` bounds the path enumeration of the inclusion–exclusion
/// method (ignored by factoring); it throws archex::Error when exceeded.
[[nodiscard]] double failure_probability(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p,
    ExactMethod method = ExactMethod::kFactoring,
    std::size_t max_paths = 1u << 20);

/// Accelerated variant: consults/extends `ctx.cache` at every factoring
/// pivot subproblem and evaluates independent subtrees on `ctx.pool`.
[[nodiscard]] double failure_probability(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, const EvalContext& ctx,
    ExactMethod method = ExactMethod::kFactoring,
    std::size_t max_paths = 1u << 20);

/// Convenience overload: sources are the members of type 0 (Π_1).
[[nodiscard]] double failure_probability(
    const graph::Digraph& g, const graph::Partition& partition,
    graph::NodeId sink, const std::vector<double>& p,
    ExactMethod method = ExactMethod::kFactoring,
    std::size_t max_paths = 1u << 20);

/// Worst-case failure probability over several sinks (the requirement "r is
/// the worst case failure probability over a set of nodes of interest").
[[nodiscard]] double worst_failure_probability(
    const graph::Digraph& g, const graph::Partition& partition,
    const std::vector<graph::NodeId>& sinks, const std::vector<double>& p,
    ExactMethod method = ExactMethod::kFactoring,
    const EvalContext& ctx = {});

}  // namespace archex::rel
