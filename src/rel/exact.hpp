// archex/rel/exact.hpp
//
// Exact source-to-sink failure probability under independent node failures —
// the RELANALYSIS routine of ILP-MR (Algorithm 1) and the reference value r
// reported in Figs. 2/3. This is the (NP-hard) K-terminal reliability
// problem [Lucet & Manouvrier 1997]; the paper notes "any other exact
// reliability analysis method for directed graphs can also be used", so two
// independent exact methods are provided and cross-checked in the tests:
//
//  * factoring (pivot decomposition): condition on one relevant component at
//    a time, with two strong pruning rules — certain failure as soon as the
//    surviving nodes disconnect every source from the sink, and certain
//    success as soon as a fully-working path exists;
//  * inclusion–exclusion over the minimal path sets of the functional link.
//
// Semantics (Section II of the paper): a component failure removes the node
// and its incident links; the sink's failure event R_i also includes the
// sink's own failure P_i — equivalently, the system fails iff NO path from
// any source to the sink consists entirely of working nodes (the sink lies
// on every such path). Failures are independent across components and
// unrecoverable; the external controller is assumed to activate any
// alternative path that exists, so reliability depends on topology only.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"
#include "rel/eval_cache.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace archex::rel {

enum class ExactMethod {
  kFactoring,
  kInclusionExclusion,
  /// Try polynomial series-parallel reduction first (EPS-shaped
  /// architectures usually reduce completely); fall back to factoring on
  /// irreducible graphs. Always exact.
  kSeriesParallelAuto,
  /// Compile the source->sink connectivity function into an ROBDD (src/bdd)
  /// under a structural variable ordering and evaluate P[f = 1] in one
  /// sweep. Exact; cost scales with BDD width rather than pathset count.
  kBdd,
};

/// An exact analyzer exceeded the EvalContext deadline. Thrown by the
/// `failure_probability` overloads; `try_failure_probability` converts it
/// into EvalStatus::kTimeLimit instead.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Outcome of a deadline-aware evaluation (mirrors lp::SolveStatus).
enum class EvalStatus {
  kOk,
  /// The EvalContext deadline passed mid-analysis; the value is unusable.
  kTimeLimit,
};

struct EvalResult {
  double failure = 1.0;
  EvalStatus status = EvalStatus::kOk;
};

/// Optional acceleration context threaded through the exact analyzers.
/// All members may be defaulted (plain serial evaluation). Only the
/// factoring and BDD methods use cache/pool; the determinism contract
/// (DESIGN.md) guarantees that any combination of cache state and thread
/// count produces bit-identical results for the same inputs and method.
struct EvalContext {
  /// Memoizes every pivot subproblem of the factoring recursion (and
  /// whole-graph results of the BDD method), keyed by canonical form.
  /// Shareable across calls, iterates, and threads.
  EvalCache* cache = nullptr;
  /// Evaluates independent factoring subtrees concurrently.
  support::ThreadPool* pool = nullptr;
  /// Wall-clock deadline polled inside the factoring recursion, the
  /// inclusion–exclusion subset loop, and the BDD compilation, so
  /// adversarial graphs abort promptly instead of hanging. nullopt (the
  /// default) never times out.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Exact probability that `sink` is cut off from every node in `sources`
/// (including by its own failure). `p[v]` is the self-failure probability of
/// node v; entries must lie in [0, 1].
///
/// `max_paths` bounds the path enumeration of the inclusion–exclusion
/// method (ignored by factoring); it throws archex::Error when exceeded.
[[nodiscard]] double failure_probability(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p,
    ExactMethod method = ExactMethod::kFactoring,
    std::size_t max_paths = 1u << 20);

/// Accelerated variant: consults/extends `ctx.cache` at every factoring
/// pivot subproblem (whole-graph granularity for kBdd) and evaluates
/// independent subtrees on `ctx.pool`. Throws TimeoutError when
/// `ctx.deadline` trips.
[[nodiscard]] double failure_probability(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, const EvalContext& ctx,
    ExactMethod method = ExactMethod::kFactoring,
    std::size_t max_paths = 1u << 20);

/// Deadline-tolerant variant: identical to the EvalContext overload but a
/// tripped `ctx.deadline` is reported as EvalStatus::kTimeLimit instead of
/// a thrown TimeoutError (mirrors lp's SolveStatus::kTimeLimit contract).
[[nodiscard]] EvalResult try_failure_probability(
    const graph::Digraph& g, const std::vector<graph::NodeId>& sources,
    graph::NodeId sink, const std::vector<double>& p, const EvalContext& ctx,
    ExactMethod method = ExactMethod::kFactoring,
    std::size_t max_paths = 1u << 20);

/// Convenience overload: sources are the members of type 0 (Π_1).
[[nodiscard]] double failure_probability(
    const graph::Digraph& g, const graph::Partition& partition,
    graph::NodeId sink, const std::vector<double>& p,
    ExactMethod method = ExactMethod::kFactoring,
    std::size_t max_paths = 1u << 20);

/// Short lowercase name of the method ("factoring", "bdd", ...).
[[nodiscard]] std::string to_string(ExactMethod method);

/// Inverse of to_string; nullopt for an unknown name. Used by the bench
/// and CLI `--method` flags.
[[nodiscard]] std::optional<ExactMethod> parse_exact_method(
    const std::string& name);

/// Worst-case failure probability over several sinks (the requirement "r is
/// the worst case failure probability over a set of nodes of interest").
[[nodiscard]] double worst_failure_probability(
    const graph::Digraph& g, const graph::Partition& partition,
    const std::vector<graph::NodeId>& sinks, const std::vector<double>& p,
    ExactMethod method = ExactMethod::kFactoring,
    const EvalContext& ctx = {});

}  // namespace archex::rel
