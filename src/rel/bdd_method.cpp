#include "rel/bdd_method.hpp"

#include <algorithm>
#include <deque>

#include "bdd/bdd.hpp"
#include "rel/exact.hpp"
#include "support/check.hpp"

namespace archex::rel {

namespace {

using graph::Digraph;
using graph::NodeId;

/// Nodes on some source->sink walk: forward-reachable from a source and
/// backward-reachable from the sink. Everything else can never influence
/// connectivity and is excluded before any BDD work.
std::vector<bool> relevant_nodes(const Digraph& g,
                                 const std::vector<NodeId>& sources,
                                 NodeId sink) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<bool> forward(n, false);
  std::deque<NodeId> queue;
  for (NodeId s : sources) {
    const auto si = static_cast<std::size_t>(s);
    if (!forward[si]) {
      forward[si] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.successors(u)) {
      const auto vi = static_cast<std::size_t>(v);
      if (!forward[vi]) {
        forward[vi] = true;
        queue.push_back(v);
      }
    }
  }
  const std::vector<bool> backward = g.reaching(sink);
  std::vector<bool> relevant(n, false);
  for (std::size_t v = 0; v < n; ++v) relevant[v] = forward[v] && backward[v];
  return relevant;
}

/// Kahn topological order of the relevant subgraph; empty when cyclic.
std::vector<NodeId> topological_order(const Digraph& g,
                                      const std::vector<bool>& relevant) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<int> indegree(n, 0);
  std::size_t live = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!relevant[static_cast<std::size_t>(u)]) continue;
    ++live;
    for (NodeId v : g.successors(u)) {
      if (relevant[static_cast<std::size_t>(v)]) {
        ++indegree[static_cast<std::size_t>(v)];
      }
    }
  }
  // A min-id frontier keeps the order deterministic regardless of edge
  // insertion order.
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (relevant[static_cast<std::size_t>(v)] &&
        indegree[static_cast<std::size_t>(v)] == 0) {
      frontier.push_back(v);
    }
  }
  std::vector<NodeId> order;
  order.reserve(live);
  while (!frontier.empty()) {
    const auto it = std::min_element(frontier.begin(), frontier.end());
    const NodeId u = *it;
    frontier.erase(it);
    order.push_back(u);
    for (NodeId v : g.successors(u)) {
      const auto vi = static_cast<std::size_t>(v);
      if (relevant[vi] && --indegree[vi] == 0) frontier.push_back(v);
    }
  }
  if (order.size() != live) order.clear();  // cycle detected
  return order;
}

/// BFS levels from the sources over the relevant subgraph, level by level
/// with ascending ids inside a level.
std::vector<NodeId> bfs_level_order(const Digraph& g,
                                    const std::vector<NodeId>& sources,
                                    const std::vector<bool>& relevant) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<bool> seen(n, false);
  std::vector<NodeId> order;
  std::vector<NodeId> level;
  for (NodeId s : sources) {
    const auto si = static_cast<std::size_t>(s);
    if (relevant[si] && !seen[si]) {
      seen[si] = true;
      level.push_back(s);
    }
  }
  while (!level.empty()) {
    std::sort(level.begin(), level.end());
    order.insert(order.end(), level.begin(), level.end());
    std::vector<NodeId> next;
    for (NodeId u : level) {
      for (NodeId v : g.successors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (relevant[vi] && !seen[vi]) {
          seen[vi] = true;
          next.push_back(v);
        }
      }
    }
    level = std::move(next);
  }
  return order;
}

std::vector<NodeId> degree_order(const Digraph& g,
                                 const std::vector<bool>& relevant) {
  std::vector<std::pair<int, NodeId>> keyed;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (!relevant[vi]) continue;
    int degree = 0;
    for (NodeId u : g.successors(v)) {
      if (relevant[static_cast<std::size_t>(u)]) ++degree;
    }
    for (NodeId u : g.predecessors(v)) {
      if (relevant[static_cast<std::size_t>(u)]) ++degree;
    }
    keyed.push_back({-degree, v});  // descending degree, ascending id
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<NodeId> order;
  order.reserve(keyed.size());
  for (const auto& kv : keyed) order.push_back(kv.second);
  return order;
}

std::vector<NodeId> make_order(const Digraph& g,
                               const std::vector<NodeId>& sources,
                               const std::vector<bool>& relevant,
                               BddOrdering ordering) {
  switch (ordering) {
    case BddOrdering::kAuto:
    case BddOrdering::kTopological: {
      std::vector<NodeId> order = topological_order(g, relevant);
      if (order.empty()) order = bfs_level_order(g, sources, relevant);
      return order;
    }
    case BddOrdering::kBfsLevel:
      return bfs_level_order(g, sources, relevant);
    case BddOrdering::kDegree:
      return degree_order(g, relevant);
  }
  throw InternalError("unknown BDD ordering");
}

}  // namespace

std::vector<NodeId> bdd_variable_order(const Digraph& g,
                                       const std::vector<NodeId>& sources,
                                       NodeId sink, BddOrdering ordering) {
  return make_order(g, sources, relevant_nodes(g, sources, sink), ordering);
}

double bdd_failure_probability(
    const Digraph& g, const std::vector<NodeId>& sources, NodeId sink,
    const std::vector<double>& p, BddOrdering ordering, BddEvalStats* stats,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  ARCHEX_REQUIRE(sink >= 0 && sink < g.num_nodes(), "sink out of range");
  ARCHEX_REQUIRE(static_cast<int>(p.size()) == g.num_nodes(),
                 "failure-probability vector must cover every node");
  if (stats != nullptr) *stats = BddEvalStats{};
  if (sources.empty()) return 1.0;

  const std::vector<bool> relevant = relevant_nodes(g, sources, sink);
  if (!relevant[static_cast<std::size_t>(sink)]) return 1.0;
  const std::vector<NodeId> order = make_order(g, sources, relevant, ordering);

  // Branch position per node; only fallible nodes consume a variable.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<int> var_of(n, -1);
  std::vector<double> p_true;
  for (NodeId v : order) {
    if (p[static_cast<std::size_t>(v)] > 0.0) {
      var_of[static_cast<std::size_t>(v)] = static_cast<int>(p_true.size());
      p_true.push_back(1.0 - p[static_cast<std::size_t>(v)]);
    }
  }

  // Computed-table capacity scales with the variable count (BDD sizes grow
  // with width, not node count): tiny graphs avoid a megabyte-sized cache
  // allocation per evaluation, large ones get the full table.
  int table_bits = 4;
  while ((1 << table_bits) < 64 * static_cast<int>(p_true.size()) &&
         table_bits < 18) {
    ++table_bits;
  }
  bdd::BddManager mgr(static_cast<int>(p_true.size()), table_bits);
  mgr.set_deadline(deadline);

  std::vector<bool> is_source(n, false);
  for (NodeId s : sources) is_source[static_cast<std::size_t>(s)] = true;

  // Position of each relevant node in `order`, for indexing R.
  std::vector<int> pos(n, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }

  const auto literal = [&](NodeId v) {
    const int index = var_of[static_cast<std::size_t>(v)];
    return index < 0 ? bdd::BddManager::kTrue : mgr.var(index);
  };

  // Gauss–Seidel fixed point of R_v = x_v & (source | OR_pred R_u). Refs
  // are canonical, so Ref equality is function equality and convergence
  // detection is exact.
  std::vector<bdd::Ref> reach(order.size(), bdd::BddManager::kFalse);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (is_source[static_cast<std::size_t>(order[i])]) {
      reach[i] = literal(order[i]);
    }
  }
  int rounds = 0;
  try {
    bool changed = true;
    while (changed) {
      changed = false;
      ++rounds;
      ARCHEX_ASSERT(rounds <= g.num_nodes() + 1,
                    "reachability fixed point failed to converge");
      for (std::size_t i = 0; i < order.size(); ++i) {
        const NodeId v = order[i];
        if (is_source[static_cast<std::size_t>(v)]) continue;
        // Predecessor disjunction in ascending id order: the compilation is
        // a pure function of the canonical problem, independent of edge
        // insertion order (determinism contract).
        std::vector<NodeId> preds = g.predecessors(v);
        std::sort(preds.begin(), preds.end());
        bdd::Ref any_pred = bdd::BddManager::kFalse;
        for (NodeId u : preds) {
          const int up = pos[static_cast<std::size_t>(u)];
          if (up >= 0) any_pred = mgr.bdd_or(any_pred, reach[static_cast<std::size_t>(up)]);
        }
        const bdd::Ref next = mgr.bdd_and(literal(v), any_pred);
        if (next != reach[i]) {
          reach[i] = next;
          changed = true;
        }
      }
    }
  } catch (const bdd::BddTimeoutError&) {
    throw TimeoutError("BDD compilation exceeded the EvalContext deadline");
  }

  const bdd::Ref f = reach[static_cast<std::size_t>(
      pos[static_cast<std::size_t>(sink)])];
  const double works = mgr.prob_true(f, p_true);

  if (stats != nullptr) {
    const bdd::BddStats& ms = mgr.stats();
    stats->num_vars = mgr.num_vars();
    stats->fixpoint_rounds = rounds;
    stats->final_nodes = mgr.num_nodes(f);
    stats->peak_nodes = ms.nodes_allocated;
    stats->unique_entries = ms.unique_entries;
    stats->unique_occupancy = ms.unique_occupancy();
    stats->computed_lookups = ms.computed_lookups;
    stats->computed_hits = ms.computed_hits;
    stats->computed_hit_rate = ms.computed_hit_rate();
  }
  return 1.0 - works;
}

}  // namespace archex::rel
