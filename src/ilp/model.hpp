// archex/ilp/model.hpp
//
// Mixed 0/1 integer-linear-program model builder. Plays the role YALMIP
// played in the paper's ARCHEX prototype: symbolic constraints (including
// Boolean conjunction/disjunction/implication) are linearized into rows by
// the standard transformations of Winston [6] and handed to a solver.
#pragma once

#include <string>
#include <vector>

#include "ilp/expr.hpp"
#include "lp/problem.hpp"

namespace archex::ilp {

enum class VarKind : unsigned char { kContinuous, kBinary, kInteger };

/// A mixed-integer linear model under construction.
class Model {
 public:
  // ---- variables ----------------------------------------------------------

  /// Add a 0/1 decision variable.
  Var add_binary(std::string name = {});

  /// Add a bounded general-integer variable.
  Var add_integer(double lo, double up, std::string name = {});

  /// Add a bounded continuous variable.
  Var add_continuous(double lo, double up, std::string name = {});

  /// Pin a variable to a constant (used to fix decisions externally).
  void fix(Var v, double value);

  /// Branching priority (default 0). Branch-and-bound prefers fractional
  /// variables of the highest priority class; set structural decision
  /// variables above derived indicator variables — the indicators are
  /// functionally determined once the structure is integral, which shrinks
  /// the search tree dramatically on the synthesis models.
  void set_branch_priority(Var v, int priority);
  [[nodiscard]] int branch_priority(Var v) const;

  // ---- rows ----------------------------------------------------------------

  /// Add `spec.lo <= spec.expr <= spec.up`; the expression's constant is
  /// folded into the bounds. Returns the row index.
  int add_row(RowSpec spec, std::string name = {});

  // ---- Boolean linearizations (Winston [6]) --------------------------------

  /// Create y with y = OR(xs): y >= x_i for each i and y <= sum(xs).
  /// All xs must be binary.
  Var add_or(const std::vector<Var>& xs, std::string name = {});

  /// Create y with y = AND(xs): y <= x_i for each i and
  /// y >= sum(xs) - (|xs| - 1).
  Var add_and(const std::vector<Var>& xs, std::string name = {});

  /// Enforce x = 1  =>  lo <= expr <= up using automatically derived big-M
  /// values (requires every variable in expr to have finite bounds).
  void add_implication(Var x, const RowSpec& spec, std::string name = {});

  /// Enforce a <= b for binaries (i.e., a = 1 implies b = 1), eq. (3) shape.
  void add_leq(Var a, Var b, std::string name = {});

  // ---- objective ------------------------------------------------------------

  /// Set the (minimization) objective. The expression's constant is kept and
  /// reported in solution objectives.
  void set_objective(const LinExpr& objective);

  [[nodiscard]] const LinExpr& objective() const { return objective_; }
  [[nodiscard]] double objective_constant() const {
    return objective_.constant();
  }

  // ---- introspection --------------------------------------------------------

  [[nodiscard]] int num_variables() const {
    return static_cast<int>(kind_.size());
  }
  [[nodiscard]] int num_rows() const { return static_cast<int>(rows_.size()); }
  [[nodiscard]] VarKind kind(Var v) const;
  [[nodiscard]] bool is_integral(Var v) const {
    return kind(v) != VarKind::kContinuous;
  }
  [[nodiscard]] double lower_bound(Var v) const;
  [[nodiscard]] double upper_bound(Var v) const;
  [[nodiscard]] const std::string& name(Var v) const;

  /// True when every variable is binary (required by the Balas solver).
  [[nodiscard]] bool pure_binary() const;

  /// Worst-case [min, max] value of `expr` over the variable boxes.
  /// Used to derive big-M constants; throws if a needed bound is infinite.
  [[nodiscard]] std::pair<double, double> activity_range(
      const LinExpr& expr) const;

  /// Lower the model to a continuous LP relaxation (integrality dropped).
  [[nodiscard]] lp::Problem to_lp() const;

  /// Check an assignment against all rows, bounds and integrality.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tol = 1e-6) const;

  /// Evaluate the objective (including its constant) at an assignment.
  [[nodiscard]] double eval_objective(const std::vector<double>& x) const;

  // Row accessors used by solvers that do not go through the LP relaxation.
  struct StoredRow {
    LinExpr expr;  // constant already folded into lo/up
    double lo;
    double up;
    std::string name;
  };
  [[nodiscard]] const StoredRow& row(int i) const {
    return rows_[static_cast<std::size_t>(i)];
  }

 private:
  Var add_var(VarKind kind, double lo, double up, std::string name);

  std::vector<VarKind> kind_;
  std::vector<double> lo_, up_;
  std::vector<int> priority_;
  std::vector<std::string> name_;
  std::vector<StoredRow> rows_;
  LinExpr objective_;
};

}  // namespace archex::ilp
