// archex/ilp/mps.hpp
//
// Export of an archex::ilp::Model to the (free-form) MPS interchange
// format, so the synthesis ILPs can be inspected or solved with external
// engines (CPLEX, Gurobi, CBC, SCIP, HiGHS...). This is the practical
// escape hatch the substitution table in DESIGN.md promises: the bundled
// branch & bound replaces CPLEX by default, but every model ARCHEX builds
// can be handed to the real thing.
//
// Emitted sections: NAME, ROWS (N/L/G/E), COLUMNS (with INTORG/INTEND
// marker pairs around integral variables), RHS, RANGES (for two-sided
// rows), BOUNDS (UP/LO/FX/MI/PL/BV). Minimization objective named COST.
#pragma once

#include <string>

#include "ilp/model.hpp"

namespace archex::ilp {

/// Render `model` as free-form MPS text. `name` becomes the NAME record.
[[nodiscard]] std::string to_mps(const Model& model,
                                 const std::string& name = "ARCHEX");

/// Parse free-form MPS text back into a Model. Understands exactly the
/// dialect to_mps() emits (and the common multi-pair COLUMNS/RHS layout):
/// NAME, ROWS (first N row is the objective), COLUMNS with INTORG/INTEND
/// markers, RHS, RANGES, BOUNDS (BV/FX/MI/LO/UP/PL), ENDATA. Unbounded
/// columns default to [0, +inf) regardless of integrality. Note that MPS
/// carries no objective constant, so a write/read round-trip reproduces the
/// model up to that constant (and re-generated row/column names). Throws
/// support::PreconditionError on malformed input.
[[nodiscard]] Model from_mps(const std::string& text);

}  // namespace archex::ilp
