// archex/ilp/expr.hpp
//
// A small linear-expression DSL over model variables, so constraint builders
// read close to the paper's notation, e.g.
//
//   LinExpr degree;
//   for (Var e : incident_edges) degree += e;
//   model.add_row(degree >= 1);           // eq. (2): at least one connection
//
// Expressions are affine: sum of (coefficient * variable) terms plus a
// constant. Comparisons produce RowSpec objects consumed by Model::add_row.
#pragma once

#include <vector>

#include "lp/problem.hpp"

namespace archex::ilp {

/// Strongly-typed handle to a model variable.
struct Var {
  int id = -1;
  [[nodiscard]] bool valid() const { return id >= 0; }
  friend bool operator==(Var a, Var b) { return a.id == b.id; }
};

/// Affine expression: sum_i coef_i * var_i + constant.
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinExpr(Var v) { terms_.push_back({v.id, 1.0}); }

  LinExpr& operator+=(const LinExpr& other) {
    terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
    constant_ += other.constant_;
    return *this;
  }
  LinExpr& operator-=(const LinExpr& other) {
    for (const auto& t : other.terms_) terms_.push_back({t.var, -t.coef});
    constant_ -= other.constant_;
    return *this;
  }
  LinExpr& operator*=(double scale) {
    for (auto& t : terms_) t.coef *= scale;
    constant_ *= scale;
    return *this;
  }

  void add_term(Var v, double coef) {
    if (coef != 0.0) terms_.push_back({v.id, coef});
  }

  [[nodiscard]] const std::vector<lp::Term>& terms() const { return terms_; }
  [[nodiscard]] double constant() const { return constant_; }
  [[nodiscard]] bool empty() const { return terms_.empty(); }

 private:
  std::vector<lp::Term> terms_;
  double constant_ = 0.0;
};

inline LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
inline LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
inline LinExpr operator*(double scale, LinExpr e) { return e *= scale; }
inline LinExpr operator*(LinExpr e, double scale) { return e *= scale; }
inline LinExpr operator*(double scale, Var v) {
  LinExpr e;
  e.add_term(v, scale);
  return e;
}
inline LinExpr operator-(LinExpr e) { return e *= -1.0; }

/// A constraint specification `lo <= expr <= up` awaiting insertion.
struct RowSpec {
  LinExpr expr;
  double lo = -lp::kInf;
  double up = lp::kInf;
};

inline RowSpec operator<=(LinExpr expr, double rhs) {
  return {std::move(expr), -lp::kInf, rhs};
}
inline RowSpec operator>=(LinExpr expr, double rhs) {
  return {std::move(expr), rhs, lp::kInf};
}
inline RowSpec operator==(LinExpr expr, double rhs) {
  return {std::move(expr), rhs, rhs};
}
inline RowSpec operator<=(LinExpr lhs, const LinExpr& rhs) {
  return {std::move(lhs -= rhs), -lp::kInf, 0.0};
}
inline RowSpec operator>=(LinExpr lhs, const LinExpr& rhs) {
  return {std::move(lhs -= rhs), 0.0, lp::kInf};
}
inline RowSpec operator==(LinExpr lhs, const LinExpr& rhs) {
  return {std::move(lhs -= rhs), 0.0, 0.0};
}

}  // namespace archex::ilp
