// LP-relaxation branch & bound for 0/1 mixed-integer programs.
//
// Serial mode (BranchAndBoundOptions::threads <= 1, the default) is a
// depth-first search with best-incumbent pruning: at each node the LP
// relaxation (bounded-variable simplex, archex::lp) is solved with the
// branching decisions imposed as variable-bound changes; fractional integral
// variables trigger a two-way branch ordered toward the LP value's rounding
// direction, which tends to find feasible architectures early on the
// synthesis models produced by ILP-MR / ILP-AR.
//
// Parallel mode (threads >= 2) is a best-first/DFS hybrid with work
// stealing (DESIGN.md §4e): a lock-guarded global NodePool ordered by
// relaxation bound feeds workers that dive depth-first with their *own*
// SimplexEngine (private LU basis and warm-start state). While diving, a
// worker donates the non-preferred branch child to the pool whenever the
// pool runs low, so idle workers steal near-root, high-potential subtrees.
// The incumbent is shared through an atomic objective bound
// (compare-exchange acceptance, relaxed-order reads while pruning) plus a
// mutex-published assignment; a node stolen from the pool is re-checked
// against the freshest bound *under the pool lock* before it is expanded.
// Any worker tripping a limit (time, nodes, numerics) records the abort
// status with a first-writer-wins compare-exchange, so a kTimeLimit from
// one worker is never masked by another worker draining its subtree to
// completion afterwards.
//
// options.deterministic turns the pool into a serialized LIFO: nodes are
// expanded one at a time through a single shared engine in exactly the
// serial DFS preorder, which reproduces the serial run bit-for-bit (node
// ordering, incumbent sequence, statistics, solution) for debugging
// parallel-search discrepancies.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "ilp/solver.hpp"
#include "lp/engine.hpp"
#include "lp/presolve.hpp"
#include "lp/simplex.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace archex::ilp {

std::string to_string(IlpStatus status) {
  switch (status) {
    case IlpStatus::kOptimal: return "optimal";
    case IlpStatus::kInfeasible: return "infeasible";
    case IlpStatus::kNodeLimit: return "node-limit";
    case IlpStatus::kTimeLimit: return "time-limit";
    case IlpStatus::kNumericFailure: return "numeric-failure";
  }
  return "unknown";
}

namespace {

constexpr double kInfObj = std::numeric_limits<double>::infinity();

// One acceptance rule for every incumbent candidate — the integral-leaf
// path and the root rounding heuristic used to apply different feasibility
// and improvement tolerances, so which of two equal-cost incumbents
// survived depended on where it was found.
constexpr double kFeasTol = 1e-5;
constexpr double kImproveTol = 1e-9;

/// Lower the model to an LP and presolve it (or wrap it in an identity
/// reduction when presolve is off). Branching and incumbent checks all
/// happen in the model's variable space via pre.postsolve()/var_map.
lp::PresolveResult make_presolve(const Model& model,
                                 const BranchAndBoundOptions& opt) {
  lp::Problem full = model.to_lp();
  if (!opt.presolve) {
    lp::PresolveResult identity;
    identity.var_map.resize(static_cast<std::size_t>(model.num_variables()));
    for (int j = 0; j < model.num_variables(); ++j) {
      identity.var_map[static_cast<std::size_t>(j)] = j;
    }
    identity.fixed_value.assign(
        static_cast<std::size_t>(model.num_variables()), 0.0);
    identity.reduced = std::move(full);
    return identity;
  }
  std::vector<bool> integer_cols(
      static_cast<std::size_t>(full.num_variables()), false);
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.is_integral(Var{j})) {
      integer_cols[static_cast<std::size_t>(j)] = true;
    }
  }
  return lp::presolve(full, integer_cols);
}

/// Fractional integral variable of the highest branching priority (most
/// fractional within the class), or -1 when integral within tolerance.
int pick_branch_variable(const Model& model, const std::vector<int>& integral,
                         double int_tol, const std::vector<double>& x) {
  int best = -1;
  int best_priority = std::numeric_limits<int>::min();
  double best_score = 0.0;
  for (int j : integral) {
    const double v = x[static_cast<std::size_t>(j)];
    const double score = std::min(v - std::floor(v), std::ceil(v) - v);
    if (score <= int_tol) continue;
    const int priority = model.branch_priority(Var{j});
    if (priority > best_priority ||
        (priority == best_priority && score > best_score)) {
      best_priority = priority;
      best_score = score;
      best = j;
    }
  }
  return best;
}

bool detect_integral_objective(const Model& model) {
  for (const lp::Term& t : model.objective().terms()) {
    if (!model.is_integral(Var{t.var})) return false;
    if (std::abs(t.coef - std::round(t.coef)) > 1e-12) return false;
  }
  return true;
}

/// Strict lexicographic order on assignments: the canonical tie-break that
/// keeps which of two equal-cost incumbents survives independent of the
/// (possibly parallel, nondeterministic) order in which they were found.
bool lex_less(const std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t j = 0; j < a.size() && j < b.size(); ++j) {
    if (a[j] != b[j]) return a[j] < b[j];
  }
  return false;
}

/// Search state shared by every worker (and used single-threaded by the
/// serial path — the atomics are uncontended there).
struct SearchShared {
  const Model& model;
  const BranchAndBoundOptions& opt;
  lp::PresolveResult pre;
  std::vector<int> integral;
  bool objective_integral = false;
  /// Column boxes of the reduced problem before any branching — the state a
  /// worker restores to when it abandons one subtree for a stolen node.
  std::vector<std::pair<double, double>> root_bounds;
  Stopwatch watch;
  std::chrono::steady_clock::time_point deadline{};

  std::atomic<long> nodes{0};
  /// First limit/failure wins: -1 while running, else the IlpStatus that
  /// aborted the search. A worker hitting kTimeLimit mid-dive publishes it
  /// here with compare-exchange, so another worker later finishing its own
  /// subtree cleanly cannot overwrite the status back to "optimal".
  std::atomic<int> abort_status{-1};

  std::atomic<bool> have_incumbent{false};
  /// Published incumbent objective for pruning; reads on the hot path are
  /// memory_order_relaxed (a stale value only delays pruning, never breaks
  /// correctness).
  std::atomic<double> best_obj{kInfObj};
  std::mutex incumbent_mutex;
  std::vector<double> incumbent;  // guarded by incumbent_mutex
  double incumbent_obj = 0.0;     // guarded by incumbent_mutex

  SearchShared(const Model& m, const BranchAndBoundOptions& o)
      : model(m), opt(o), pre(make_presolve(m, o)) {
    for (int j = 0; j < m.num_variables(); ++j) {
      if (m.is_integral(Var{j})) integral.push_back(j);
    }
    objective_integral = detect_integral_objective(m);
    root_bounds.reserve(static_cast<std::size_t>(pre.reduced.num_variables()));
    for (int j = 0; j < pre.reduced.num_variables(); ++j) {
      root_bounds.emplace_back(pre.reduced.col_lo(j), pre.reduced.col_up(j));
    }
  }

  [[nodiscard]] bool aborted() const {
    return abort_status.load(std::memory_order_relaxed) >= 0;
  }

  void abort_with(IlpStatus status) {
    int expected = -1;
    abort_status.compare_exchange_strong(expected, static_cast<int>(status),
                                         std::memory_order_relaxed);
  }

  /// Prune nodes whose LP bound cannot beat the incumbent. With an
  /// all-integer objective the next-better value is at least 1 lower.
  [[nodiscard]] double prune_threshold() const {
    if (!have_incumbent.load(std::memory_order_relaxed)) return kInfObj;
    const double best = best_obj.load(std::memory_order_relaxed);
    if (objective_integral) return best - 1.0 + 1e-6;
    return best - 1e-9;
  }

  /// Round the integral variables of a relaxation point and accept it as
  /// the incumbent iff it satisfies the model and either strictly improves
  /// or ties the objective with a lexicographically smaller assignment.
  bool try_accept_incumbent(std::vector<double> x) {
    for (int j : integral) {
      x[static_cast<std::size_t>(j)] =
          std::round(x[static_cast<std::size_t>(j)]);
    }
    const double obj =
        model.eval_objective(x) - model.objective_constant();
    double published = best_obj.load(std::memory_order_acquire);
    if (obj > published + kImproveTol) return false;  // strictly worse
    if (!model.is_feasible(x, kFeasTol)) return false;
    // Claim a strict improvement on the atomic bound before taking the
    // mutex, so concurrent workers prune against the new value immediately.
    while (obj < published - kImproveTol &&
           !best_obj.compare_exchange_weak(published, obj,
                                           std::memory_order_acq_rel)) {
    }
    const std::lock_guard<std::mutex> lock(incumbent_mutex);
    const bool have = have_incumbent.load(std::memory_order_relaxed);
    const bool improves = !have || obj < incumbent_obj - kImproveTol;
    const bool ties_smaller = have && obj <= incumbent_obj + kImproveTol &&
                              lex_less(x, incumbent);
    if (!improves && !ties_smaller) return false;
    incumbent = std::move(x);
    incumbent_obj = obj;
    have_incumbent.store(true, std::memory_order_release);
    // Keep the published pruning bound at the minimum accepted objective
    // (a tie acceptance does not move it).
    double bound = best_obj.load(std::memory_order_relaxed);
    while (obj < bound && !best_obj.compare_exchange_weak(
                              bound, obj, std::memory_order_acq_rel)) {
    }
    return true;
  }
};

/// One branching decision: column `col` of the reduced problem narrowed to
/// [lo, up]. A node is identified by the list of changes from the root.
struct BoundChange {
  int col;
  double lo;
  double up;
};

/// A donated (stealable) subtree root.
struct PoolNode {
  /// Safe objective lower bound inherited from the parent relaxation
  /// (already offset-corrected and perturbation-slack-adjusted).
  double bound = -kInfObj;
  long seq = 0;   // push order: heap tie-break / LIFO key
  int owner = -1; // donating worker, -1 for the root node
  int depth = 0;
  std::vector<BoundChange> path;  // bound changes from the root, in order
};

/// The shared lock-guarded global node pool. Best-first (lowest inherited
/// bound pops first) in normal operation; a serialized LIFO in
/// deterministic mode, which — together with children being donated in
/// reverse preference order — reproduces the serial DFS preorder exactly.
class NodePool {
 public:
  NodePool(bool deterministic, int hunger)
      : lifo_(deterministic), hunger_(hunger) {}

  void push(PoolNode node) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      node.seq = next_seq_++;
      nodes_.push_back(std::move(node));
      if (!lifo_) std::push_heap(nodes_.begin(), nodes_.end(), WorseBound{});
      ++outstanding_;
      approx_size_.store(static_cast<int>(nodes_.size()),
                         std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  /// Pop the next node, blocking until one is available, the whole tree has
  /// been drained, or the search aborted (the latter two return nullopt).
  /// Best-first mode re-checks the node's inherited bound against the
  /// freshest incumbent *under the lock* and discards prunable nodes here
  /// (counted in `pruned`); deterministic mode expands every node so its
  /// statistics stay bit-identical to the serial search, and additionally
  /// admits only one expansion at a time.
  std::optional<PoolNode> pop(const SearchShared& shared, long& pruned) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [&] {
        return shared.aborted() || outstanding_ == 0 ||
               (!nodes_.empty() && (!lifo_ || active_ == 0));
      });
      if (shared.aborted() || outstanding_ == 0) return std::nullopt;
      if (nodes_.empty() || (lifo_ && active_ > 0)) continue;
      PoolNode node = take();
      if (!lifo_ && node.bound >= shared.prune_threshold()) {
        ++pruned;
        if (--outstanding_ == 0) cv_.notify_all();
        continue;
      }
      ++active_;
      return node;
    }
  }

  /// The dive rooted at the last popped node has fully finished.
  void finish() {
    bool wake;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      --outstanding_;
      wake = outstanding_ == 0 || (lifo_ && !nodes_.empty());
    }
    if (wake) cv_.notify_all();
  }

  /// Wake every blocked worker (used after an abort).
  void kick() {
    { const std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }

  /// Cheap relaxed signal for the donation policy: true while the pool has
  /// fewer ready nodes than the hunger watermark.
  [[nodiscard]] bool hungry() const {
    return approx_size_.load(std::memory_order_relaxed) < hunger_;
  }

 private:
  /// Max-heap comparator under which the "largest" element is the node
  /// with the smallest inherited bound (oldest first on ties).
  struct WorseBound {
    bool operator()(const PoolNode& a, const PoolNode& b) const {
      if (a.bound != b.bound) return a.bound > b.bound;
      return a.seq > b.seq;
    }
  };

  PoolNode take() {
    if (!lifo_) std::pop_heap(nodes_.begin(), nodes_.end(), WorseBound{});
    PoolNode node = std::move(nodes_.back());
    nodes_.pop_back();
    approx_size_.store(static_cast<int>(nodes_.size()),
                       std::memory_order_relaxed);
    return node;
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<PoolNode> nodes_;  // heap (best-first) or stack (LIFO)
  long outstanding_ = 0;         // queued nodes + dives in flight
  int active_ = 0;               // dives in flight (gates LIFO mode)
  long next_seq_ = 0;
  const bool lifo_;
  const int hunger_;
  std::atomic<int> approx_size_{0};
};

/// A simplex engine plus the branching path currently imposed on it. Owned
/// by one worker — except in deterministic mode, where all workers take
/// turns on a single slot (handoff is ordered by the pool mutex, and the
/// pool admits only one expansion at a time).
struct EngineSlot {
  lp::SimplexEngine engine;
  std::vector<BoundChange> applied;
  bool used = false;  // first solve goes from scratch, as in the serial path

  EngineSlot(const lp::Problem& problem, const lp::SimplexOptions& options)
      : engine(problem, options) {}
};

class Worker {
 public:
  Worker(SearchShared& shared, NodePool* pool, EngineSlot& slot, int id)
      : sh_(shared), pool_(pool), slot_(slot), id_(id) {}

  /// Parallel worker loop: steal nodes from the pool until the tree is
  /// drained or the search aborts.
  void run_pool() {
    for (;;) {
      std::optional<PoolNode> node = pool_->pop(sh_, pruned_);
      if (!node) return;
      if (node->owner >= 0 && node->owner != id_) ++steals_;
      dive_from(*node);
      pool_->finish();
      if (sh_.aborted()) pool_->kick();
    }
  }

  /// Serial entry point: dive straight from the root, no pool.
  void run_root() {
    PoolNode root;
    dive_from(root);
  }

  [[nodiscard]] long nodes() const { return nodes_; }
  [[nodiscard]] long pruned() const { return pruned_; }
  [[nodiscard]] long steals() const { return steals_; }
  [[nodiscard]] long lp_pivots() const { return lp_pivots_; }

 private:
  /// Move the engine from the previous dive's box to `node`'s: restore
  /// every column the old path touched to its root bounds, then impose the
  /// new path in order.
  void dive_from(PoolNode& node) {
    for (const BoundChange& c : slot_.applied) {
      const auto& [lo, up] = sh_.root_bounds[static_cast<std::size_t>(c.col)];
      slot_.engine.set_variable_bounds(c.col, lo, up);
    }
    slot_.applied = std::move(node.path);
    for (const BoundChange& c : slot_.applied) {
      slot_.engine.set_variable_bounds(c.col, c.lo, c.up);
    }
    recurse(node.depth);
  }

  /// One node: solve the relaxation, prune or branch. Bound changes are
  /// applied/undone around the local recursion; the non-preferred child is
  /// donated to the pool instead whenever the pool runs hungry.
  void recurse(int depth) {
    if (sh_.aborted()) return;
    if (sh_.nodes.fetch_add(1, std::memory_order_relaxed) >=
        sh_.opt.max_nodes) {
      sh_.nodes.fetch_sub(1, std::memory_order_relaxed);
      sh_.abort_with(IlpStatus::kNodeLimit);
      return;
    }
    if (sh_.watch.elapsed_seconds() > sh_.opt.time_limit_seconds) {
      sh_.abort_with(IlpStatus::kTimeLimit);
      return;
    }
    ++nodes_;

    // Warm start: the previous optimal basis stays dual feasible after any
    // variable-bound change, so this is a short dual-simplex run (with an
    // automatic scratch-solve fallback inside the engine). The first solve
    // on an engine has no basis and goes from scratch.
    lp::SimplexEngine& engine = slot_.engine;
    const lp::Solution rel =
        slot_.used ? engine.reoptimize() : engine.solve_from_scratch();
    slot_.used = true;
    lp_pivots_ += rel.iterations;

    if (rel.status == lp::SolveStatus::kInfeasible) return;
    if (rel.status == lp::SolveStatus::kTimeLimit) {
      sh_.abort_with(IlpStatus::kTimeLimit);
      return;
    }
    if (rel.status != lp::SolveStatus::kOptimal) {
      // Unbounded relaxations cannot occur on our bounded models; iteration
      // limits and numeric failures abort the search conservatively.
      sh_.abort_with(IlpStatus::kNumericFailure);
      return;
    }

    // The engine's anti-degeneracy perturbation can inflate the reported
    // bound by at most bound_slack(); subtract it so pruning stays safe.
    // rel.objective lives in reduced space: add the presolve offset to
    // compare against the incumbent.
    const double bound =
        rel.objective + sh_.pre.objective_offset - engine.bound_slack();
    if (bound >= sh_.prune_threshold()) {
      ++pruned_;
      return;
    }

    // Branching and incumbent tests use the model's variable space.
    const std::vector<double> full_x = sh_.pre.postsolve(rel.x);
    const int frac = pick_branch_variable(sh_.model, sh_.integral,
                                          sh_.opt.int_tol, full_x);
    if (frac < 0) {
      // Integral solution: snap and record.
      sh_.try_accept_incumbent(full_x);
      return;
    }

    if (depth == 0 && sh_.opt.root_rounding_heuristic) {
      sh_.try_accept_incumbent(full_x);
    }

    // Presolve never fixes a column at a fractional value (it would have
    // declared infeasibility), so a fractional variable maps to a live
    // reduced column.
    const int rj = sh_.pre.var_map[static_cast<std::size_t>(frac)];
    ARCHEX_ASSERT(rj >= 0, "fractional variable was presolved away");
    const double value = full_x[static_cast<std::size_t>(frac)];
    const double saved_lo = engine.col_lo(rj);
    const double saved_up = engine.col_up(rj);
    const double floor_v = std::floor(value);
    const double ceil_v = floor_v + 1.0;

    // Explore the rounding direction first.
    const bool down_first = (value - floor_v) <= 0.5;

    if (pool_ != nullptr && sh_.opt.deterministic) {
      // Donate both children, non-preferred first: the LIFO pool pops the
      // preferred child next, reproducing the serial DFS preorder.
      for (int side = 1; side >= 0; --side) {
        const bool down = (side == 0) == down_first;
        if (down && floor_v < saved_lo) continue;
        if (!down && ceil_v > saved_up) continue;
        donate(bound, depth,
               down ? BoundChange{rj, saved_lo, floor_v}
                    : BoundChange{rj, ceil_v, saved_up});
      }
      return;
    }

    for (int side = 0; side < 2; ++side) {
      const bool down = (side == 0) == down_first;
      if (down && floor_v < saved_lo) continue;
      if (!down && ceil_v > saved_up) continue;
      const BoundChange change = down ? BoundChange{rj, saved_lo, floor_v}
                                      : BoundChange{rj, ceil_v, saved_up};
      if (side == 1 && pool_ != nullptr && pool_->hungry()) {
        // Donate the non-preferred child for stealing; keep diving locally
        // on the preferred side so warm starts stay intact.
        donate(bound, depth, change);
        continue;
      }
      engine.set_variable_bounds(change.col, change.lo, change.up);
      slot_.applied.push_back(change);
      recurse(depth + 1);
      slot_.applied.pop_back();
      engine.set_variable_bounds(rj, saved_lo, saved_up);
      if (sh_.aborted()) return;
    }
  }

  void donate(double bound, int depth, const BoundChange& change) {
    PoolNode child;
    child.bound = bound;
    child.owner = id_;
    child.depth = depth + 1;
    child.path = slot_.applied;
    child.path.push_back(change);
    pool_->push(std::move(child));
  }

  SearchShared& sh_;
  NodePool* pool_;  // null for the serial path (never donate)
  EngineSlot& slot_;
  const int id_;

  long nodes_ = 0;
  long pruned_ = 0;
  long steals_ = 0;
  long lp_pivots_ = 0;
};

IlpResult run_search(const Model& model, const BranchAndBoundOptions& opt) {
  SearchShared shared(model, opt);
  shared.watch.start();
  // The LP engines honour the same wall-clock budget as the tree search,
  // so a node relaxation that overruns the limit aborts within a few dozen
  // pivots instead of running to completion first.
  shared.deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opt.time_limit_seconds));

  const int threads = std::max(opt.threads, 1);
  const bool parallel = threads >= 2;

  std::vector<std::unique_ptr<EngineSlot>> slots;
  std::vector<std::unique_ptr<Worker>> workers;

  // Presolve can prove infeasibility outright (conflicting bounds, an
  // integral column fixed at a fractional value, an unsatisfiable row).
  if (!shared.pre.infeasible) {
    if (!parallel) {
      slots.push_back(
          std::make_unique<EngineSlot>(shared.pre.reduced, opt.lp));
      slots[0]->engine.set_deadline(shared.deadline);
      workers.push_back(std::make_unique<Worker>(shared, nullptr, *slots[0],
                                                 /*id=*/0));
      workers[0]->run_root();
    } else {
      NodePool pool(opt.deterministic, /*hunger=*/2 * threads);
      const int num_slots = opt.deterministic ? 1 : threads;
      for (int s = 0; s < num_slots; ++s) {
        slots.push_back(
            std::make_unique<EngineSlot>(shared.pre.reduced, opt.lp));
        slots.back()->engine.set_deadline(shared.deadline);
      }
      for (int w = 0; w < threads; ++w) {
        workers.push_back(std::make_unique<Worker>(
            shared, &pool, *slots[opt.deterministic ? 0 : static_cast<std::size_t>(w)],
            w));
      }
      pool.push(PoolNode{});  // the root: empty path, unbounded inherited bound
      support::ThreadPool tp(threads);
      tp.run_workers(threads, [&](int w) {
        workers[static_cast<std::size_t>(w)]->run_pool();
      });
    }
  }

  IlpResult out;
  out.threads_used = parallel ? threads : 1;
  out.nodes_explored = shared.nodes.load(std::memory_order_relaxed);
  for (const auto& worker : workers) {
    out.nodes_pruned += worker->pruned();
    out.steal_count += worker->steals();
    out.lp_pivots += worker->lp_pivots();
    out.worker_nodes.push_back(worker->nodes());
    out.worker_lp_iterations.push_back(worker->lp_pivots());
  }
  for (const auto& slot : slots) {
    const lp::SimplexEngine::Stats& stats = slot->engine.stats();
    out.lp_scratch_solves += stats.scratch_solves;
    out.lp_dual_reopts += stats.dual_reopts;
    out.lp_dual_fallbacks += stats.dual_fallbacks;
    out.lp_dual_limit += stats.dual_limit;
    out.lp_dual_numeric += stats.dual_numeric;
    out.lp_restore_fallbacks += stats.restore_fallbacks;
    out.lp_factorizations += stats.factorizations;
    out.lp_eta_updates += stats.eta_updates;
    out.lp_refactor_eta += stats.refactor_eta;
    out.lp_refactor_drift += stats.refactor_drift;
    out.lp_max_eta_len = std::max(out.lp_max_eta_len, stats.max_eta_len);
  }
  out.presolve_fixed_variables = shared.pre.stats.fixed_variables;
  out.presolve_rows_removed = shared.pre.stats.rows_removed();
  out.presolve_bound_tightenings = shared.pre.stats.bound_tightenings;
  out.solve_seconds = shared.watch.elapsed_seconds();

  const int abort_status =
      shared.abort_status.load(std::memory_order_relaxed);
  const bool aborted = abort_status >= 0;
  if (shared.have_incumbent.load(std::memory_order_acquire)) {
    // A limit may have stopped the proof of optimality, but an incumbent
    // still exists; report it together with the limit status.
    const std::lock_guard<std::mutex> lock(shared.incumbent_mutex);
    out.status =
        aborted ? static_cast<IlpStatus>(abort_status) : IlpStatus::kOptimal;
    out.objective = shared.incumbent_obj + model.objective_constant();
    out.x = shared.incumbent;
  } else {
    out.status = aborted ? static_cast<IlpStatus>(abort_status)
                         : IlpStatus::kInfeasible;
  }
  return out;
}

}  // namespace

IlpResult BranchAndBoundSolver::solve(const Model& model) {
  return run_search(model, options_);
}

}  // namespace archex::ilp
