// LP-relaxation branch & bound for 0/1 mixed-integer programs.
//
// Serial mode (BranchAndBoundOptions::threads <= 1, the default) is a
// depth-first search with best-incumbent pruning: at each node the LP
// relaxation (bounded-variable simplex, archex::lp) is solved with the
// branching decisions imposed as variable-bound changes; fractional integral
// variables trigger a two-way branch ordered toward the LP value's rounding
// direction, which tends to find feasible architectures early on the
// synthesis models produced by ILP-MR / ILP-AR.
//
// Parallel mode (threads >= 2) is a best-first/DFS hybrid with work
// stealing (DESIGN.md §4e): a lock-guarded global NodePool ordered by
// relaxation bound feeds workers that dive depth-first with their *own*
// SimplexEngine (private LU basis and warm-start state). While diving, a
// worker donates the non-preferred branch child to the pool whenever the
// pool runs low, so idle workers steal near-root, high-potential subtrees.
// The incumbent is shared through an atomic objective bound
// (compare-exchange acceptance, relaxed-order reads while pruning) plus a
// mutex-published assignment; a node stolen from the pool is re-checked
// against the freshest bound *under the pool lock* before it is expanded.
// Any worker tripping a limit (time, nodes, numerics) records the abort
// status with a first-writer-wins compare-exchange, so a kTimeLimit from
// one worker is never masked by another worker draining its subtree to
// completion afterwards.
//
// options.deterministic turns the pool into a serialized LIFO: nodes are
// expanded one at a time through a single shared engine in exactly the
// serial DFS preorder, which reproduces the serial run bit-for-bit (node
// ordering, incumbent sequence, statistics, solution) for debugging
// parallel-search discrepancies.
//
// The cut-and-branch layer (DESIGN.md §4f) sits on top of both modes:
// a root separation loop (cover/clique/Gomory cuts, ilp/cutgen.hpp) tightens
// the relaxation before the tree search; shallow tree nodes separate the
// globally valid cover/clique families into a shared cut pool that workers
// sync into their private engines at dive boundaries; branching is ranked by
// shared pseudocost statistics (ilp/branching.hpp) with a most-fractional
// fallback; and every incumbent improvement re-derives reduced-cost fixings
// from the root duals, published as a lock-free prune filter all workers
// consult. In deterministic mode all of this shared state evolves in the
// serial preorder, so bit-for-bit reproduction is preserved.
//
// The conflict-driven learning layer (DESIGN.md §4g) turns pruned subtrees
// into reusable knowledge: an infeasible node LP yields a Farkas certificate
// (lp::SimplexEngine::farkas_ray) and a bound-dominated node a Lagrangian
// bound from its true reduced costs; either is reduced against the node's
// branching path — free drops while the certificate's margin covers them,
// then a few bounded LP probes — to a minimal 0/1 nogood over the *model's*
// variables. Nogoods live in a shared ilp/nogood.hpp store (and optionally
// persist across solves, see BranchAndBoundSolver::set_nogood_store);
// workers keep a reduced-column compilation of the store, synced at dive
// boundaries like the cut pool, and prune any node whose box implies all of
// a nogood's literals before solving its LP.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ilp/branching.hpp"
#include "ilp/cutgen.hpp"
#include "ilp/nogood.hpp"
#include "ilp/solver.hpp"
#include "lp/engine.hpp"
#include "lp/presolve.hpp"
#include "lp/simplex.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace archex::ilp {

std::string to_string(IlpStatus status) {
  switch (status) {
    case IlpStatus::kOptimal: return "optimal";
    case IlpStatus::kInfeasible: return "infeasible";
    case IlpStatus::kNodeLimit: return "node-limit";
    case IlpStatus::kTimeLimit: return "time-limit";
    case IlpStatus::kNumericFailure: return "numeric-failure";
  }
  return "unknown";
}

namespace {

constexpr double kInfObj = std::numeric_limits<double>::infinity();

// One acceptance rule for every incumbent candidate — the integral-leaf
// path and the root rounding heuristic used to apply different feasibility
// and improvement tolerances, so which of two equal-cost incumbents
// survived depended on where it was found.
constexpr double kFeasTol = 1e-5;
constexpr double kImproveTol = 1e-9;

/// Lower the model to an LP and presolve it (or wrap it in an identity
/// reduction when presolve is off). Branching and incumbent checks all
/// happen in the model's variable space via pre.postsolve()/var_map.
lp::PresolveResult make_presolve(const Model& model,
                                 const BranchAndBoundOptions& opt) {
  lp::Problem full = model.to_lp();
  if (!opt.presolve) {
    lp::PresolveResult identity;
    identity.var_map.resize(static_cast<std::size_t>(model.num_variables()));
    for (int j = 0; j < model.num_variables(); ++j) {
      identity.var_map[static_cast<std::size_t>(j)] = j;
    }
    identity.fixed_value.assign(
        static_cast<std::size_t>(model.num_variables()), 0.0);
    identity.reduced = std::move(full);
    return identity;
  }
  std::vector<bool> integer_cols(
      static_cast<std::size_t>(full.num_variables()), false);
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.is_integral(Var{j})) {
      integer_cols[static_cast<std::size_t>(j)] = true;
    }
  }
  return lp::presolve(full, integer_cols);
}

bool detect_integral_objective(const Model& model) {
  for (const lp::Term& t : model.objective().terms()) {
    if (!model.is_integral(Var{t.var})) return false;
    if (std::abs(t.coef - std::round(t.coef)) > 1e-12) return false;
  }
  return true;
}

/// Strict lexicographic order on assignments: the canonical tie-break that
/// keeps which of two equal-cost incumbents survives independent of the
/// (possibly parallel, nondeterministic) order in which they were found.
bool lex_less(const std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t j = 0; j < a.size() && j < b.size(); ++j) {
    if (a[j] != b[j]) return a[j] < b[j];
  }
  return false;
}

/// One branching decision: column `col` of the reduced problem narrowed to
/// [lo, up]. A node is identified by the list of changes from the root.
struct BoundChange {
  int col;
  double lo;
  double up;
};

/// Search state shared by every worker (and used single-threaded by the
/// serial path — the atomics are uncontended there).
struct SearchShared {
  const Model& model;
  const BranchAndBoundOptions& opt;
  lp::PresolveResult pre;
  std::vector<int> integral;
  bool objective_integral = false;
  /// Column boxes of the reduced problem before any branching — the state a
  /// worker restores to when it abandons one subtree for a stolen node.
  std::vector<std::pair<double, double>> root_bounds;
  Stopwatch watch;
  std::chrono::steady_clock::time_point deadline{};

  std::atomic<long> nodes{0};
  /// First limit/failure wins: -1 while running, else the IlpStatus that
  /// aborted the search. A worker hitting kTimeLimit mid-dive publishes it
  /// here with compare-exchange, so another worker later finishing its own
  /// subtree cleanly cannot overwrite the status back to "optimal".
  std::atomic<int> abort_status{-1};

  std::atomic<bool> have_incumbent{false};
  /// Published incumbent objective for pruning; reads on the hot path are
  /// memory_order_relaxed (a stale value only delays pruning, never breaks
  /// correctness).
  std::atomic<double> best_obj{kInfObj};
  std::mutex incumbent_mutex;
  std::vector<double> incumbent;  // guarded by incumbent_mutex
  double incumbent_obj = 0.0;     // guarded by incumbent_mutex

  // Integrality flags over the *reduced* problem's columns (for the cut
  // separator): binary = integral with root box exactly [0, 1].
  std::vector<bool> reduced_binary;
  std::vector<bool> reduced_integer;

  std::unique_ptr<CutGenerator> cutgen;  // null when cuts are off
  /// Guards cut_pool + cut_signatures. Root cuts live in pre.reduced (every
  /// engine gets them at construction); the pool holds only cuts separated
  /// at tree nodes, which workers sync into their engines at dive
  /// boundaries (EngineSlot::cuts_synced).
  std::mutex cut_mutex;
  std::vector<Cut> cut_pool;
  std::unordered_set<std::uint64_t> cut_signatures;
  std::atomic<long> cuts_added{0};
  std::atomic<long> cut_rounds{0};

  std::unique_ptr<PseudocostTable> pseudo;  // null when pseudocost is off
  std::mutex pseudo_mutex;
  std::atomic<long> pseudocost_branches{0};

  // Conflict-driven nogood learning (DESIGN.md §4g). The store speaks the
  // model's variable space (so entries survive per-solve presolve
  // differences); `compiled` is this solve's translation into reduced
  // columns, append-only under nogood_mutex. Workers keep private copies
  // (EngineSlot::nogoods) synced at dive boundaries so the per-node match
  // check is lock-free.
  NogoodStore* nogoods = nullptr;  // null when learning is off
  /// A store nogood lowered to this solve's reduced columns. Literals whose
  /// model variable presolve fixed *at* the literal's value are dropped
  /// (they hold at every node); a nogood with a literal fixed at the
  /// opposite value can never match this solve and is skipped entirely.
  struct CompiledNogood {
    std::vector<int> ones;   // reduced columns the nogood pins at 1
    std::vector<int> zeros;  // reduced columns the nogood pins at 0
    int store_index = -1;    // stable NogoodStore index (activity bumps)
  };
  std::mutex nogood_mutex;
  std::vector<CompiledNogood> compiled;  // append-only during the search
  std::vector<int> model_of_reduced;     // reduced column -> model variable
  std::atomic<long> nogoods_learned{0};
  std::atomic<long> nogood_prunings{0};
  std::atomic<long> nogood_probes{0};

  // Reduced-cost fixing state. After the root LP solves, capture_root_info
  // stores the exact duality bound L = sum_j min(d_j lo_j, d_j up_j) over
  // the engine's columns (valid because the engine's row form a'x - s = 0
  // makes c'x = sum_j d_j x_j for *any* feasible x) plus the structural
  // reduced costs. rc_fix publishes the fixings: -1 unfixed, else the
  // forced 0/1 value. Hot-path reads are relaxed — a stale miss only
  // delays pruning.
  bool have_root_info = false;        // written before workers start
  double root_dual_bound = -kInfObj;  // L, offset-corrected
  std::vector<double> root_red_cost;  // per reduced structural column
  std::unique_ptr<std::atomic<signed char>[]> rc_fix;
  std::mutex rc_mutex;
  std::atomic<long> rc_fixed{0};

  SearchShared(const Model& m, const BranchAndBoundOptions& o,
               NogoodStore* store)
      : model(m), opt(o), pre(make_presolve(m, o)) {
    for (int j = 0; j < m.num_variables(); ++j) {
      if (m.is_integral(Var{j})) integral.push_back(j);
    }
    objective_integral = detect_integral_objective(m);
    root_bounds.reserve(static_cast<std::size_t>(pre.reduced.num_variables()));
    for (int j = 0; j < pre.reduced.num_variables(); ++j) {
      root_bounds.emplace_back(pre.reduced.col_lo(j), pre.reduced.col_up(j));
    }
    const std::size_t n = static_cast<std::size_t>(pre.reduced.num_variables());
    reduced_binary.assign(n, false);
    reduced_integer.assign(n, false);
    model_of_reduced.assign(n, -1);
    for (int j = 0; j < m.num_variables(); ++j) {
      const int rj = pre.var_map[static_cast<std::size_t>(j)];
      if (rj >= 0) model_of_reduced[static_cast<std::size_t>(rj)] = j;
      if (!m.is_integral(Var{j})) continue;
      if (rj < 0) continue;
      reduced_integer[static_cast<std::size_t>(rj)] = true;
      if (pre.reduced.col_lo(rj) == 0.0 && pre.reduced.col_up(rj) == 1.0) {
        reduced_binary[static_cast<std::size_t>(rj)] = true;
      }
    }
    if (opt.cuts && !integral.empty() && !pre.infeasible) {
      cutgen = std::make_unique<CutGenerator>(pre.reduced, reduced_binary,
                                              reduced_integer);
    }
    if (opt.pseudocost) {
      pseudo = std::make_unique<PseudocostTable>(m.num_variables());
    }
    if (store != nullptr && !integral.empty() && !pre.infeasible) {
      nogoods = store;
      // Incumbent-relative (dominance) nogoods from a previous solve were
      // valid only against that solve's tightening cutoff trajectory.
      nogoods->purge_transient();
      compile_store();
    }
  }

  /// Lower every live store entry into this solve's reduced columns (see
  /// CompiledNogood for the presolve-fixed literal rules).
  void compile_store() {
    std::vector<std::pair<int, Nogood>> live;
    nogoods->snapshot(live);
    for (const auto& [index, ng] : live) {
      CompiledNogood cng;
      cng.store_index = index;
      bool applicable = true;
      for (const int v : ng.ones) {
        const int rj = pre.var_map[static_cast<std::size_t>(v)];
        if (rj >= 0) {
          cng.ones.push_back(rj);
        } else if (pre.fixed_value[static_cast<std::size_t>(v)] < 0.5) {
          applicable = false;  // literal contradicted at every node
          break;
        }
      }
      if (applicable) {
        for (const int v : ng.zeros) {
          const int rj = pre.var_map[static_cast<std::size_t>(v)];
          if (rj >= 0) {
            cng.zeros.push_back(rj);
          } else if (pre.fixed_value[static_cast<std::size_t>(v)] > 0.5) {
            applicable = false;
            break;
          }
        }
      }
      if (applicable) compiled.push_back(std::move(cng));
    }
  }

  [[nodiscard]] bool aborted() const {
    return abort_status.load(std::memory_order_relaxed) >= 0;
  }

  void abort_with(IlpStatus status) {
    int expected = -1;
    abort_status.compare_exchange_strong(expected, static_cast<int>(status),
                                         std::memory_order_relaxed);
  }

  /// Prune nodes whose LP bound cannot beat the incumbent. With an
  /// all-integer objective the next-better value is at least 1 lower.
  [[nodiscard]] double prune_threshold() const {
    if (!have_incumbent.load(std::memory_order_relaxed)) return kInfObj;
    const double best = best_obj.load(std::memory_order_relaxed);
    if (objective_integral) return best - 1.0 + 1e-6;
    return best - 1e-9;
  }

  /// True when a published reduced-cost fixing contradicts the branching
  /// decision `c`: a subtree forcing a fixed 0/1 column to the opposite
  /// value can only contain solutions the bound rule would prune anyway.
  [[nodiscard]] bool fixing_conflict(const BoundChange& c) const {
    if (rc_fix == nullptr) return false;
    const signed char v =
        rc_fix[static_cast<std::size_t>(c.col)].load(std::memory_order_relaxed);
    if (v < 0) return false;
    const double fixed = static_cast<double>(v);
    return fixed < c.lo - 0.5 || fixed > c.up + 0.5;
  }

  [[nodiscard]] bool fixing_conflict(const std::vector<BoundChange>& path)
      const {
    if (rc_fix == nullptr) return false;
    for (const BoundChange& c : path) {
      if (fixing_conflict(c)) return true;
    }
    return false;
  }

  /// Re-derive reduced-cost fixings against the freshest prune threshold.
  /// Root LP duality: for any feasible x, c'x = sum_j d_j x_j (true reduced
  /// costs at the root basis; the engine's rows are a'x - s = 0, so the
  /// dual term y'b vanishes), hence flipping a 0/1 column away from the
  /// bound its reduced cost points at costs at least |d_j| on top of the
  /// box minimum L. Once L + |d_j| reaches the prune threshold no solution
  /// the search still cares about can flip column j — identical in strength
  /// to the node bound rule, so pruning on it preserves the reported
  /// optimum (including the tie-break semantics the bound rule implies).
  void try_rc_fixings() {
    if (!have_root_info || rc_fix == nullptr) return;
    const double cutoff = prune_threshold();
    if (cutoff == kInfObj) return;
    for (std::size_t rj = 0; rj < root_red_cost.size(); ++rj) {
      if (!reduced_binary[rj]) continue;
      if (rc_fix[rj].load(std::memory_order_relaxed) >= 0) continue;
      const double d = root_red_cost[rj];
      if (std::abs(d) <= 1e-9) continue;
      if (root_dual_bound + std::abs(d) < cutoff + 1e-7) continue;
      const std::lock_guard<std::mutex> lock(rc_mutex);
      if (rc_fix[rj].load(std::memory_order_relaxed) >= 0) continue;
      rc_fix[rj].store(d > 0.0 ? 0 : 1, std::memory_order_relaxed);
      rc_fixed.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Round the integral variables of a relaxation point and accept it as
  /// the incumbent iff it satisfies the model and either strictly improves
  /// or ties the objective with a lexicographically smaller assignment.
  bool try_accept_incumbent(std::vector<double> x) {
    for (int j : integral) {
      x[static_cast<std::size_t>(j)] =
          std::round(x[static_cast<std::size_t>(j)]);
    }
    const double obj =
        model.eval_objective(x) - model.objective_constant();
    double published = best_obj.load(std::memory_order_acquire);
    if (obj > published + kImproveTol) return false;  // strictly worse
    if (!model.is_feasible(x, kFeasTol)) return false;
    // Claim a strict improvement on the atomic bound before taking the
    // mutex, so concurrent workers prune against the new value immediately.
    while (obj < published - kImproveTol &&
           !best_obj.compare_exchange_weak(published, obj,
                                           std::memory_order_acq_rel)) {
    }
    {
      const std::lock_guard<std::mutex> lock(incumbent_mutex);
      const bool have = have_incumbent.load(std::memory_order_relaxed);
      const bool improves = !have || obj < incumbent_obj - kImproveTol;
      const bool ties_smaller = have && obj <= incumbent_obj + kImproveTol &&
                                lex_less(x, incumbent);
      if (!improves && !ties_smaller) return false;
      incumbent = std::move(x);
      incumbent_obj = obj;
      have_incumbent.store(true, std::memory_order_release);
      // Keep the published pruning bound at the minimum accepted objective
      // (a tie acceptance does not move it).
      double bound = best_obj.load(std::memory_order_relaxed);
      while (obj < bound && !best_obj.compare_exchange_weak(
                                bound, obj, std::memory_order_acq_rel)) {
      }
    }
    // Republish reduced-cost fixings outside the incumbent mutex: fixings
    // read only the atomic bound, and a fixing derived from a stale
    // (higher) cutoff satisfied a *harder* condition than the fresh one —
    // L + |d_j| >= cutoff is monotone in the incumbent, so a better
    // incumbent landing concurrently (possibly republishing first) can
    // never invalidate a fixing already derived, only add to it.
    try_rc_fixings();
    return true;
  }
};

/// A donated (stealable) subtree root.
struct PoolNode {
  /// Safe objective lower bound inherited from the parent relaxation
  /// (already offset-corrected and perturbation-slack-adjusted).
  double bound = -kInfObj;
  long seq = 0;   // push order: heap tie-break / LIFO key
  int owner = -1; // donating worker, -1 for the root node
  int depth = 0;
  std::vector<BoundChange> path;  // bound changes from the root, in order
  // Pseudocost bookkeeping: the branching that created this node (model
  // variable, direction, fractional distance moved) and the parent's LP
  // bound, so the stealing worker can record the observation.
  int pc_var = -1;
  bool pc_up = false;
  double pc_dist = 0.0;
  double parent_bound = -kInfObj;
};

/// The shared lock-guarded global node pool. Best-first (lowest inherited
/// bound pops first) in normal operation; a serialized LIFO in
/// deterministic mode, which — together with children being donated in
/// reverse preference order — reproduces the serial DFS preorder exactly.
class NodePool {
 public:
  NodePool(bool deterministic, int hunger)
      : lifo_(deterministic), hunger_(hunger) {}

  void push(PoolNode node) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      node.seq = next_seq_++;
      nodes_.push_back(std::move(node));
      if (!lifo_) std::push_heap(nodes_.begin(), nodes_.end(), WorseBound{});
      ++outstanding_;
      approx_size_.store(static_cast<int>(nodes_.size()),
                         std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  /// Pop the next node, blocking until one is available, the whole tree has
  /// been drained, or the search aborted (the latter two return nullopt).
  /// Best-first mode re-checks the node's inherited bound against the
  /// freshest incumbent *under the lock* and discards prunable nodes here
  /// (counted in `pruned`); deterministic mode expands every node so its
  /// statistics stay bit-identical to the serial search, and additionally
  /// admits only one expansion at a time.
  std::optional<PoolNode> pop(const SearchShared& shared, long& pruned) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [&] {
        return shared.aborted() || outstanding_ == 0 ||
               (!nodes_.empty() && (!lifo_ || active_ == 0));
      });
      if (shared.aborted() || outstanding_ == 0) return std::nullopt;
      if (nodes_.empty() || (lifo_ && active_ > 0)) continue;
      PoolNode node = take();
      if (!lifo_ && node.bound >= shared.prune_threshold()) {
        ++pruned;
        if (--outstanding_ == 0) cv_.notify_all();
        continue;
      }
      ++active_;
      return node;
    }
  }

  /// The dive rooted at the last popped node has fully finished.
  void finish() {
    bool wake;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      --outstanding_;
      wake = outstanding_ == 0 || (lifo_ && !nodes_.empty());
    }
    if (wake) cv_.notify_all();
  }

  /// Wake every blocked worker (used after an abort).
  void kick() {
    { const std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }

  /// Cheap relaxed signal for the donation policy: true while the pool has
  /// fewer ready nodes than the hunger watermark.
  [[nodiscard]] bool hungry() const {
    return approx_size_.load(std::memory_order_relaxed) < hunger_;
  }

 private:
  /// Max-heap comparator under which the "largest" element is the node
  /// with the smallest inherited bound (oldest first on ties).
  struct WorseBound {
    bool operator()(const PoolNode& a, const PoolNode& b) const {
      if (a.bound != b.bound) return a.bound > b.bound;
      return a.seq > b.seq;
    }
  };

  PoolNode take() {
    if (!lifo_) std::pop_heap(nodes_.begin(), nodes_.end(), WorseBound{});
    PoolNode node = std::move(nodes_.back());
    nodes_.pop_back();
    approx_size_.store(static_cast<int>(nodes_.size()),
                       std::memory_order_relaxed);
    return node;
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<PoolNode> nodes_;  // heap (best-first) or stack (LIFO)
  long outstanding_ = 0;         // queued nodes + dives in flight
  int active_ = 0;               // dives in flight (gates LIFO mode)
  long next_seq_ = 0;
  const bool lifo_;
  const int hunger_;
  std::atomic<int> approx_size_{0};
};

/// A simplex engine plus the branching path currently imposed on it. Owned
/// by one worker — except in deterministic mode, where all workers take
/// turns on a single slot (handoff is ordered by the pool mutex, and the
/// pool admits only one expansion at a time).
struct EngineSlot {
  lp::SimplexEngine engine;
  std::vector<BoundChange> applied;
  bool used = false;  // first solve goes from scratch, as in the serial path
  /// Number of shared-pool cuts already attached to this engine (the pool
  /// is append-only, so a single cursor suffices).
  std::size_t cuts_synced = 0;
  /// Private copy of SearchShared::compiled for lock-free per-node checks,
  /// plus the append-only cursor it is synced up to (dive boundaries, and
  /// immediately after this worker's own learns).
  std::vector<SearchShared::CompiledNogood> nogoods;
  std::size_t nogoods_synced = 0;

  EngineSlot(const lp::Problem& problem, const lp::SimplexOptions& options)
      : engine(problem, options) {}
};

class Worker {
 public:
  Worker(SearchShared& shared, NodePool* pool, EngineSlot& slot, int id)
      : sh_(shared), pool_(pool), slot_(slot), id_(id) {}

  /// Parallel worker loop: steal nodes from the pool until the tree is
  /// drained or the search aborts.
  void run_pool() {
    for (;;) {
      std::optional<PoolNode> node = pool_->pop(sh_, pruned_);
      if (!node) return;
      if (node->owner >= 0 && node->owner != id_) ++steals_;
      dive_from(*node);
      pool_->finish();
      if (sh_.aborted()) pool_->kick();
    }
  }

  /// Serial entry point: dive straight from the root, no pool.
  void run_root() {
    PoolNode root;
    dive_from(root);
  }

  [[nodiscard]] long nodes() const { return nodes_; }
  [[nodiscard]] long pruned() const { return pruned_; }
  [[nodiscard]] long steals() const { return steals_; }
  [[nodiscard]] long lp_pivots() const { return lp_pivots_; }

 private:
  /// The branching that produced the node being expanded, for pseudocost
  /// observation (var < 0 at the root / when pseudocost is off).
  struct BranchOrigin {
    int var = -1;
    bool up = false;
    double dist = 0.0;
    double parent_bound = -kInfObj;
  };

  /// Move the engine from the previous dive's box to `node`'s: restore
  /// every column the old path touched to its root bounds, then impose the
  /// new path in order.
  void dive_from(PoolNode& node) {
    for (const BoundChange& c : slot_.applied) {
      const auto& [lo, up] = sh_.root_bounds[static_cast<std::size_t>(c.col)];
      slot_.engine.set_variable_bounds(c.col, lo, up);
    }
    slot_.applied = std::move(node.path);
    for (const BoundChange& c : slot_.applied) {
      slot_.engine.set_variable_bounds(c.col, c.lo, c.up);
    }
    sync_cuts();
    sync_nogoods();
    const BranchOrigin origin{node.pc_var, node.pc_up, node.pc_dist,
                              node.parent_bound};
    recurse(node.depth, origin);
  }

  /// Attach any shared-pool cuts this engine is missing. In deterministic
  /// mode the single shared slot is always current, so this is a no-op.
  void sync_cuts() {
    if (sh_.cutgen == nullptr) return;
    const std::lock_guard<std::mutex> lock(sh_.cut_mutex);
    attach_pool_cuts_locked();
  }

  int attach_pool_cuts_locked() {
    int attached = 0;
    while (slot_.cuts_synced < sh_.cut_pool.size()) {
      const Cut& cut = sh_.cut_pool[slot_.cuts_synced++];
      slot_.engine.add_constraint(cut.terms, cut.lo, cut.up);
      ++attached;
    }
    return attached;
  }

  /// Copy any compiled nogoods this slot is missing. In deterministic mode
  /// the single shared slot is always current, so this is a no-op.
  void sync_nogoods() {
    if (sh_.nogoods == nullptr) return;
    const std::lock_guard<std::mutex> lock(sh_.nogood_mutex);
    sync_nogoods_locked();
  }

  void sync_nogoods_locked() {
    while (slot_.nogoods_synced < sh_.compiled.size()) {
      slot_.nogoods.push_back(sh_.compiled[slot_.nogoods_synced++]);
    }
  }

  /// True when the engine's current box implies every literal of a known
  /// nogood — the subtree holds no improving feasible point. Bumps the
  /// firing entry's activity so eviction keeps what actually prunes.
  [[nodiscard]] bool nogood_pruned() {
    if (slot_.nogoods.empty()) return false;
    for (const SearchShared::CompiledNogood& ng : slot_.nogoods) {
      bool match = true;
      for (const int col : ng.ones) {
        if (slot_.engine.col_lo(col) < 0.5) { match = false; break; }
      }
      if (match) {
        for (const int col : ng.zeros) {
          if (slot_.engine.col_up(col) > 0.5) { match = false; break; }
        }
      }
      if (match) {
        sh_.nogoods->bump(ng.store_index);
        sh_.nogood_prunings.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  // ---- conflict-driven learning (DESIGN.md §4g) ----------------------------

  /// One candidate literal: reduced binary column `col` pinned at 1 (`one`)
  /// or 0 by the branching path, and the certificate damage `weight` that
  /// relaxing it back to its root box would cost.
  struct ConflictLit {
    int col = 0;
    bool one = false;
    double weight = 0.0;
  };

  /// Columns the branching path touched, deduped: nested narrowings leave
  /// the innermost box in the engine, which is all the learners read.
  [[nodiscard]] std::vector<int> path_columns() const {
    std::vector<int> cols;
    cols.reserve(slot_.applied.size());
    for (const BoundChange& c : slot_.applied) cols.push_back(c.col);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    return cols;
  }

  /// Weight-ascending order with a column tie-break, so the greedy drop
  /// sequence is identical in every search mode.
  static void sort_lits(std::vector<ConflictLit>& lits) {
    std::sort(lits.begin(), lits.end(),
              [](const ConflictLit& a, const ConflictLit& b) {
                if (a.weight != b.weight) return a.weight < b.weight;
                return a.col < b.col;
              });
  }

  /// Translate reduced-column literals to the model's variable space and
  /// install them into the shared store (plus this solve's compiled list,
  /// which also refreshes this worker's private copy immediately).
  void install_nogood(const std::vector<ConflictLit>& lits,
                      NogoodSource source) {
    Nogood ng;
    ng.source = source;
    SearchShared::CompiledNogood cng;
    for (const ConflictLit& lit : lits) {
      const int mv = sh_.model_of_reduced[static_cast<std::size_t>(lit.col)];
      if (mv < 0) return;  // branch column without a model variable
      (lit.one ? ng.ones : ng.zeros).push_back(mv);
      (lit.one ? cng.ones : cng.zeros).push_back(lit.col);
    }
    const int index = sh_.nogoods->insert(std::move(ng));
    if (index < 0) return;  // live duplicate: the store bumped its activity
    cng.store_index = index;
    {
      const std::lock_guard<std::mutex> lock(sh_.nogood_mutex);
      sh_.compiled.push_back(std::move(cng));
      sync_nogoods_locked();  // the learner sees its own nogood at once
    }
    sh_.nogoods_learned.fetch_add(1, std::memory_order_relaxed);
  }

  /// Infeasible node LP -> permanent 0/1 nogood. The Farkas weights z
  /// satisfy z'x = 0 for every point of the row system while
  /// sup{z'x : node boxes} = -margin < 0. Relaxing a path column back to
  /// its root box raises that supremum by z_j * (root_up - up) when
  /// z_j > 0 (the proof leans on the upper bound) or |z_j| * (lo - root_lo)
  /// when z_j < 0; a branch the certificate ignores is dropped outright,
  /// and further literals are dropped greedily while the margin covers
  /// their damage. Conflicts still wider than max_nogood_literals spend up
  /// to max_nogood_probes LP re-solves testing certificate-supported
  /// literals for redundancy. The result persists across solves: the rows
  /// the proof uses (model rows, presolve tightenings, cuts, learncons
  /// rows) are all valid for every integral feasible point of the model,
  /// and later solves only add to them.
  void learn_infeasible() {
    if (sh_.nogoods == nullptr || slot_.applied.empty()) return;
    lp::SimplexEngine& engine = slot_.engine;
    std::vector<double> z;
    double margin = 0.0;
    if (!engine.farkas_ray(z, margin)) return;

    std::vector<ConflictLit> cand;
    for (const int col : path_columns()) {
      const auto& [root_lo, root_up] =
          sh_.root_bounds[static_cast<std::size_t>(col)];
      const double lo = engine.col_lo(col);
      const double up = engine.col_up(col);
      const double zj = z[static_cast<std::size_t>(col)];
      double weight = 0.0;
      if (zj > 0.0 && up < root_up - 1e-12) {
        weight = zj * (root_up - up);
      } else if (zj < 0.0 && lo > root_lo + 1e-12) {
        weight = -zj * (lo - root_lo);
      }
      if (weight <= 0.0) continue;  // certificate ignores this branch
      // Only clean 0/1 fixings of binary columns become literals; a
      // participating general-integer branch has no 0/1 encoding -- bail.
      if (root_lo != 0.0 || root_up != 1.0 || lo != up) return;
      cand.push_back({col, lo > 0.5, weight});
    }
    sort_lits(cand);
    std::vector<ConflictLit> keep;
    double budget = margin - 1e-7;
    for (const ConflictLit& lit : cand) {
      if (lit.weight <= budget) {
        budget -= lit.weight;  // margin still certifies the relaxation
      } else {
        keep.push_back(lit);
      }
    }

    if (static_cast<int>(keep.size()) >
        sh_.opt.max_nogood_literals + sh_.opt.max_nogood_probes) {
      return;  // cannot reach the cap even if every probe succeeds
    }
    if (static_cast<int>(keep.size()) > sh_.opt.max_nogood_literals) {
      if (!probe_drops(keep)) return;
    }
    install_nogood(keep, NogoodSource::kInfeasible);
  }

  /// LP re-check minimization: relax everything already dropped, then test
  /// kept literals lightest-first — a re-solve that stays infeasible
  /// LP-certifies the smaller set directly. Returns false when the
  /// conflict stays over the literal cap (no install). The engine is
  /// restored to the node's exact box either way: the parent's backtracking
  /// undoes only its own branch column.
  bool probe_drops(std::vector<ConflictLit>& keep) {
    lp::SimplexEngine& engine = slot_.engine;
    std::vector<std::pair<int, std::pair<double, double>>> touched;
    const auto relax = [&](int col) {
      touched.emplace_back(
          col, std::make_pair(engine.col_lo(col), engine.col_up(col)));
      const auto& [rl, ru] = sh_.root_bounds[static_cast<std::size_t>(col)];
      engine.set_variable_bounds(col, rl, ru);
    };
    std::vector<bool> kept_col(sh_.root_bounds.size(), false);
    for (const ConflictLit& lit : keep) {
      kept_col[static_cast<std::size_t>(lit.col)] = true;
    }
    for (const int col : path_columns()) {
      if (!kept_col[static_cast<std::size_t>(col)]) relax(col);
    }
    int probes = 0;
    std::size_t next = 0;
    while (next < keep.size() && probes < sh_.opt.max_nogood_probes &&
           static_cast<int>(keep.size()) > sh_.opt.max_nogood_literals) {
      const ConflictLit lit = keep[next];
      const std::pair<double, double> saved = {engine.col_lo(lit.col),
                                               engine.col_up(lit.col)};
      relax(lit.col);
      const lp::Solution probe = engine.reoptimize();
      lp_pivots_ += probe.iterations;
      ++probes;
      sh_.nogood_probes.fetch_add(1, std::memory_order_relaxed);
      if (probe.status == lp::SolveStatus::kInfeasible) {
        keep.erase(keep.begin() + static_cast<std::ptrdiff_t>(next));
        continue;  // literal redundant; leave the column relaxed
      }
      engine.set_variable_bounds(lit.col, saved.first, saved.second);
      if (probe.status == lp::SolveStatus::kTimeLimit) {
        sh_.abort_with(IlpStatus::kTimeLimit);
        break;
      }
      if (probe.status != lp::SolveStatus::kOptimal) break;  // numerics
      ++next;
    }
    for (const auto& [col, box] : touched) {
      engine.set_variable_bounds(col, box.first, box.second);
    }
    return static_cast<int>(keep.size()) <= sh_.opt.max_nogood_literals &&
           !sh_.aborted();
  }

  /// Bound-dominated node -> transient 0/1 nogood. With true reduced costs
  /// d = c - y'A at the node's optimal basis (the engine's rows read
  /// a'x - s = 0, so y'b vanishes and c'x = sum_j d_j x_j for every
  /// row-feasible point), B = sum_j min(d_j lo_j, d_j up_j) bounds every
  /// feasible point of the node's box from below. When B clears the
  /// incumbent cutoff, the slack is a budget: a path literal whose
  /// relaxation to the root box lowers B by less than the remaining budget
  /// is dropped for free (no LP probes here — dominance conflicts are
  /// plentiful and each probe would cost a scratch solve). Valid only while
  /// the cutoff it beat keeps tightening, i.e. for the rest of *this*
  /// solve -> kDominance, purged at the next solve's start.
  void learn_dominance() {
    if (sh_.nogoods == nullptr || slot_.applied.empty()) return;
    lp::SimplexEngine& engine = slot_.engine;
    std::vector<double> d;
    if (!engine.reduced_costs(d)) return;
    double box_min = 0.0;
    for (std::size_t j = 0; j < d.size(); ++j) {
      const double dj = d[j];
      if (dj == 0.0) continue;
      const double bnd = dj > 0.0 ? engine.column_lower(static_cast<int>(j))
                                  : engine.column_upper(static_cast<int>(j));
      if (bnd == -lp::kInf || bnd == lp::kInf) return;
      box_min += dj * bnd;
    }
    double budget =
        box_min + sh_.pre.objective_offset - sh_.prune_threshold() - 1e-7;
    if (budget < 0.0) return;  // perturbation slack ate the margin
    std::vector<ConflictLit> cand;
    for (const int col : path_columns()) {
      const auto& [root_lo, root_up] =
          sh_.root_bounds[static_cast<std::size_t>(col)];
      const double lo = engine.col_lo(col);
      const double up = engine.col_up(col);
      const double dj = d[static_cast<std::size_t>(col)];
      const double weight = std::min(dj * lo, dj * up) -
                            std::min(dj * root_lo, dj * root_up);
      if (weight <= 1e-12) continue;  // relaxing costs the bound nothing
      if (root_lo != 0.0 || root_up != 1.0 || lo != up) return;
      cand.push_back({col, lo > 0.5, weight});
    }
    sort_lits(cand);
    std::vector<ConflictLit> keep;
    for (const ConflictLit& lit : cand) {
      if (lit.weight <= budget) {
        budget -= lit.weight;
      } else {
        keep.push_back(lit);
      }
    }
    if (static_cast<int>(keep.size()) > sh_.opt.max_nogood_literals) return;
    install_nogood(keep, NogoodSource::kDominance);
  }

  /// Separate cover/clique cuts at this node's reduced-space LP point,
  /// publish fresh ones to the shared pool and attach them — plus any pool
  /// cuts this engine is missing — to the local engine. Returns the number
  /// of rows newly attached (pool rows included: they invalidate the basis
  /// and may cut off the current point, so the caller re-solves on > 0).
  int separate_node_cuts(const std::vector<double>& xr) {
    std::vector<Cut> cand = sh_.cutgen->separate_rowwise(xr);
    const std::lock_guard<std::mutex> lock(sh_.cut_mutex);
    int attached = attach_pool_cuts_locked();
    int fresh = 0;
    for (Cut& cut : cand) {
      if (fresh >= sh_.opt.max_cuts_per_round) break;
      if (!sh_.cut_signatures.insert(cut_signature(cut)).second) continue;
      slot_.engine.add_constraint(cut.terms, cut.lo, cut.up);
      sh_.cut_pool.push_back(std::move(cut));
      ++slot_.cuts_synced;  // our own cut is the pool's new tail
      ++fresh;
      ++attached;
    }
    if (fresh > 0) {
      sh_.cuts_added.fetch_add(fresh, std::memory_order_relaxed);
      sh_.cut_rounds.fetch_add(1, std::memory_order_relaxed);
    }
    return attached;
  }

  /// Branch-variable selection at a model-space point (pseudocost table
  /// under its mutex when enabled, historical most-fractional otherwise).
  [[nodiscard]] BranchChoice pick(const std::vector<double>& full_x) {
    if (sh_.pseudo != nullptr) {
      const std::lock_guard<std::mutex> lock(sh_.pseudo_mutex);
      return select_branch_variable(sh_.model, sh_.integral, sh_.opt.int_tol,
                                    full_x, sh_.pseudo.get(),
                                    sh_.opt.pseudocost_reliability);
    }
    return select_branch_variable(sh_.model, sh_.integral, sh_.opt.int_tol,
                                  full_x, nullptr, 0);
  }

  /// One node: solve the relaxation, prune or branch. Bound changes are
  /// applied/undone around the local recursion; the non-preferred child is
  /// donated to the pool instead whenever the pool runs hungry.
  void recurse(int depth, const BranchOrigin& origin) {
    if (sh_.aborted()) return;
    // Reduced-cost fixings published after this node was generated: the
    // serial path skips such children at generation time, the pool path at
    // expansion time. Either way the child is counted as pruned and never
    // solved, so serial and deterministic statistics agree.
    if (sh_.fixing_conflict(slot_.applied)) {
      ++pruned_;
      return;
    }
    // A stored nogood matching the node's box proves the subtree holds no
    // improving feasible point; like a fixing conflict, the node counts as
    // pruned and its LP is never solved.
    if (sh_.nogoods != nullptr && nogood_pruned()) {
      ++pruned_;
      return;
    }
    if (sh_.nodes.fetch_add(1, std::memory_order_relaxed) >=
        sh_.opt.max_nodes) {
      sh_.nodes.fetch_sub(1, std::memory_order_relaxed);
      sh_.abort_with(IlpStatus::kNodeLimit);
      return;
    }
    if (std::chrono::steady_clock::now() >= sh_.deadline) {
      sh_.abort_with(IlpStatus::kTimeLimit);
      return;
    }
    ++nodes_;

    // Warm start: the previous optimal basis stays dual feasible after any
    // variable-bound change, so this is a short dual-simplex run (with an
    // automatic scratch-solve fallback inside the engine). The first solve
    // on an engine has no basis and goes from scratch.
    lp::SimplexEngine& engine = slot_.engine;
    lp::Solution rel =
        slot_.used ? engine.reoptimize() : engine.solve_from_scratch();
    slot_.used = true;
    lp_pivots_ += rel.iterations;

    if (rel.status == lp::SolveStatus::kInfeasible) {
      learn_infeasible();
      return;
    }
    if (rel.status == lp::SolveStatus::kTimeLimit) {
      sh_.abort_with(IlpStatus::kTimeLimit);
      return;
    }
    if (rel.status != lp::SolveStatus::kOptimal) {
      // Unbounded relaxations cannot occur on our bounded models; iteration
      // limits and numeric failures abort the search conservatively.
      sh_.abort_with(IlpStatus::kNumericFailure);
      return;
    }

    // The engine's anti-degeneracy perturbation can inflate the reported
    // bound by at most bound_slack(); subtract it so pruning stays safe.
    // rel.objective lives in reduced space: add the presolve offset to
    // compare against the incumbent.
    double bound =
        rel.objective + sh_.pre.objective_offset - engine.bound_slack();

    // Pseudocost observation: bound degradation relative to the parent per
    // unit of fractional distance branched away. Recorded off the node's
    // first LP (before any node cuts), so the statistic is comparable
    // across nodes and identical in every search mode.
    if (sh_.pseudo != nullptr && origin.var >= 0 && origin.dist > 1e-12 &&
        origin.parent_bound > -kInfObj) {
      const double per_unit =
          std::max(0.0, bound - origin.parent_bound) / origin.dist;
      const std::lock_guard<std::mutex> lock(sh_.pseudo_mutex);
      sh_.pseudo->observe(origin.var, origin.up, per_unit);
    }

    if (bound >= sh_.prune_threshold()) {
      learn_dominance();
      ++pruned_;
      return;
    }

    // Branching and incumbent tests use the model's variable space.
    std::vector<double> full_x = sh_.pre.postsolve(rel.x);
    BranchChoice choice = pick(full_x);

    // Node separation: cover/clique cuts are globally valid, so shallow
    // fractional nodes may tighten their relaxation (and everyone else's,
    // through the shared pool) before branching.
    int rounds = 0;
    while (choice.var >= 0 && sh_.cutgen != nullptr &&
           depth <= sh_.opt.node_cut_depth && rounds < 2 && !sh_.aborted()) {
      if (separate_node_cuts(rel.x) == 0) break;
      ++rounds;
      // add_constraint invalidates the basis; re-solve from scratch.
      rel = engine.solve_from_scratch();
      lp_pivots_ += rel.iterations;
      if (rel.status == lp::SolveStatus::kInfeasible) return;
      if (rel.status == lp::SolveStatus::kTimeLimit) {
        sh_.abort_with(IlpStatus::kTimeLimit);
        return;
      }
      if (rel.status != lp::SolveStatus::kOptimal) {
        sh_.abort_with(IlpStatus::kNumericFailure);
        return;
      }
      bound = rel.objective + sh_.pre.objective_offset - engine.bound_slack();
      if (bound >= sh_.prune_threshold()) {
        ++pruned_;
        return;
      }
      full_x = sh_.pre.postsolve(rel.x);
      choice = pick(full_x);
    }

    const int frac = choice.var;
    if (frac < 0) {
      // Integral solution: snap and record.
      sh_.try_accept_incumbent(full_x);
      return;
    }
    if (choice.used_pseudocost) {
      sh_.pseudocost_branches.fetch_add(1, std::memory_order_relaxed);
    }

    if (depth == 0 && sh_.opt.root_rounding_heuristic) {
      sh_.try_accept_incumbent(full_x);
    }

    // Presolve never fixes a column at a fractional value (it would have
    // declared infeasibility), so a fractional variable maps to a live
    // reduced column.
    const int rj = sh_.pre.var_map[static_cast<std::size_t>(frac)];
    ARCHEX_ASSERT(rj >= 0, "fractional variable was presolved away");
    const double value = full_x[static_cast<std::size_t>(frac)];
    const double saved_lo = engine.col_lo(rj);
    const double saved_up = engine.col_up(rj);
    const double floor_v = std::floor(value);
    const double ceil_v = floor_v + 1.0;

    // Explore the rounding direction first.
    const bool down_first = (value - floor_v) <= 0.5;

    if (pool_ != nullptr && sh_.opt.deterministic) {
      // Donate both children, non-preferred first: the LIFO pool pops the
      // preferred child next, reproducing the serial DFS preorder.
      for (int side = 1; side >= 0; --side) {
        const bool down = (side == 0) == down_first;
        if (down && floor_v < saved_lo) continue;
        if (!down && ceil_v > saved_up) continue;
        const BoundChange change = down ? BoundChange{rj, saved_lo, floor_v}
                                        : BoundChange{rj, ceil_v, saved_up};
        donate(bound, depth, change, frac, !down,
               down ? value - floor_v : ceil_v - value);
      }
      return;
    }

    for (int side = 0; side < 2; ++side) {
      const bool down = (side == 0) == down_first;
      if (down && floor_v < saved_lo) continue;
      if (!down && ceil_v > saved_up) continue;
      const BoundChange change = down ? BoundChange{rj, saved_lo, floor_v}
                                      : BoundChange{rj, ceil_v, saved_up};
      if (sh_.fixing_conflict(change)) {
        ++pruned_;
        continue;
      }
      if (side == 1 && pool_ != nullptr && pool_->hungry()) {
        // Donate the non-preferred child for stealing; keep diving locally
        // on the preferred side so warm starts stay intact.
        donate(bound, depth, change, frac, !down,
               down ? value - floor_v : ceil_v - value);
        continue;
      }
      engine.set_variable_bounds(change.col, change.lo, change.up);
      slot_.applied.push_back(change);
      const BranchOrigin child_origin{frac, !down,
                                      down ? value - floor_v : ceil_v - value,
                                      bound};
      recurse(depth + 1, child_origin);
      slot_.applied.pop_back();
      engine.set_variable_bounds(rj, saved_lo, saved_up);
      if (sh_.aborted()) return;
    }
  }

  void donate(double bound, int depth, const BoundChange& change, int pc_var,
              bool pc_up, double pc_dist) {
    PoolNode child;
    child.bound = bound;
    child.owner = id_;
    child.depth = depth + 1;
    child.path = slot_.applied;
    child.path.push_back(change);
    child.pc_var = pc_var;
    child.pc_up = pc_up;
    child.pc_dist = pc_dist;
    child.parent_bound = bound;
    pool_->push(std::move(child));
  }

  SearchShared& sh_;
  NodePool* pool_;  // null for the serial path (never donate)
  EngineSlot& slot_;
  const int id_;

  long nodes_ = 0;
  long pruned_ = 0;
  long steals_ = 0;
  long lp_pivots_ = 0;
};

/// Snapshot the root LP's reduced costs for reduced-cost fixing. The box
/// minimum L = sum_j min(d_j lo_j, d_j up_j) runs over *all* engine columns
/// (structural and logical) at their root bounds; a nonzero reduced cost on
/// a column with the relevant bound infinite makes L useless, so fixing is
/// disabled then (rc_fix stays null).
void capture_root_info(SearchShared& sh, lp::SimplexEngine& engine) {
  if (!sh.opt.rc_fixing || sh.integral.empty()) return;
  std::vector<double> d;
  if (!engine.reduced_costs(d)) return;
  double L = 0.0;
  for (std::size_t j = 0; j < d.size(); ++j) {
    const double dj = d[j];
    if (dj == 0.0) continue;
    const double bnd = dj > 0.0 ? engine.column_lower(static_cast<int>(j))
                                : engine.column_upper(static_cast<int>(j));
    if (bnd == -lp::kInf || bnd == lp::kInf) return;
    L += dj * bnd;
  }
  const int n = sh.pre.reduced.num_variables();
  sh.root_dual_bound = L + sh.pre.objective_offset;
  sh.root_red_cost.assign(d.begin(), d.begin() + n);
  sh.rc_fix =
      std::make_unique<std::atomic<signed char>[]>(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    sh.rc_fix[static_cast<std::size_t>(j)].store(-1, std::memory_order_relaxed);
  }
  sh.have_root_info = true;
}

/// Root cut phase, run single-threaded before any engine the search will
/// keep is built. Separation rounds run against a throwaway probe engine;
/// when the loop settles, only the cuts *binding* at the final root optimum
/// are installed into pre.reduced (every kept row raises the root bound the
/// probe proved — a row slack at the optimum contributes nothing to it and
/// would only bloat every LU factorization the tree performs). Dropped
/// cover/clique cuts leave the signature set, so node separation may
/// rediscover them where they actually bind.
void run_cut_phase(SearchShared& sh, long& lp_pivots) {
  lp::SimplexEngine probe(sh.pre.reduced, sh.opt.lp);
  probe.set_deadline(sh.deadline);
  lp::Solution rel = probe.solve_from_scratch();
  lp_pivots += rel.iterations;
  // Non-optimal roots (infeasible, time limit, numerics) bail with nothing
  // installed: the tree search re-solves and reports through its usual
  // status handling.
  if (rel.status != lp::SolveStatus::kOptimal) return;
  std::vector<Cut> accepted;
  std::unordered_set<std::uint64_t> seen;  // round-local dedup
  long rounds = 0;
  for (int round = 0; round < sh.opt.max_cut_rounds; ++round) {
    if (std::chrono::steady_clock::now() >= sh.deadline) break;
    const std::vector<double> full_x = sh.pre.postsolve(rel.x);
    if (select_branch_variable(sh.model, sh.integral, sh.opt.int_tol, full_x,
                               nullptr, 0)
            .var < 0) {
      break;  // relaxation already integral: the search will just accept it
    }
    std::vector<Cut> cand = sh.cutgen->separate_rowwise(rel.x);
    std::vector<Cut> gomory =
        sh.cutgen->separate_gomory(probe, sh.opt.max_cuts_per_round);
    for (Cut& cut : gomory) cand.push_back(std::move(cut));
    int fresh = 0;
    for (Cut& cut : cand) {
      if (fresh >= sh.opt.max_cuts_per_round) break;
      if (!seen.insert(cut_signature(cut)).second) continue;
      probe.add_constraint(cut.terms, cut.lo, cut.up);
      accepted.push_back(std::move(cut));
      ++fresh;
    }
    if (fresh == 0) break;
    ++rounds;
    const double before = rel.objective;
    rel = probe.solve_from_scratch();
    lp_pivots += rel.iterations;
    if (rel.status != lp::SolveStatus::kOptimal) return;
    // Tailing off: when a whole round of cuts barely moves the bound, more
    // rounds only pile up rows the tree pays for at every factorization.
    if (rel.objective - before <
        1e-4 * std::max(1.0, std::abs(before))) {
      break;
    }
  }
  // Install the binding subset. rel is the optimum of the fully cut system,
  // so every accepted cut is satisfied at rel.x; binding means activity at
  // the finite side within tolerance.
  long kept = 0;
  for (Cut& cut : accepted) {
    double activity = 0.0;
    for (const lp::Term& t : cut.terms) {
      activity += t.coef * rel.x[static_cast<std::size_t>(t.var)];
    }
    const bool binding = (cut.up < lp::kInf && activity >= cut.up - 1e-6) ||
                         (cut.lo > -lp::kInf && activity <= cut.lo + 1e-6);
    if (!binding) continue;
    sh.pre.reduced.add_constraint(cut.terms, cut.lo, cut.up);
    sh.cut_signatures.insert(cut_signature(cut));
    ++kept;
  }
  sh.cuts_added.fetch_add(kept, std::memory_order_relaxed);
  sh.cut_rounds.fetch_add(rounds, std::memory_order_relaxed);
}

IlpResult run_search(const Model& model, const BranchAndBoundOptions& opt,
                     NogoodStore* store) {
  SearchShared shared(model, opt, store);
  shared.watch.start();
  // The LP engines honour the same wall-clock budget as the tree search,
  // so a node relaxation that overruns the limit aborts within a few dozen
  // pivots instead of running to completion first.
  shared.deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opt.time_limit_seconds));
  // A caller-supplied absolute deadline tightens (never extends) the
  // relative budget: whichever expires first governs the whole search.
  if (opt.deadline && *opt.deadline < shared.deadline) {
    shared.deadline = *opt.deadline;
  }

  const int threads = std::max(opt.threads, 1);
  const bool parallel = threads >= 2;

  std::vector<std::unique_ptr<EngineSlot>> slots;
  std::vector<std::unique_ptr<Worker>> workers;

  // Presolve can prove infeasibility outright (conflicting bounds, an
  // integral column fixed at a fractional value, an unsatisfiable row).
  long root_lp_pivots = 0;
  if (!shared.pre.infeasible) {
    // The cut phase mutates pre.reduced (kept root cuts become ordinary
    // rows), so it runs before any engine the search keeps is constructed;
    // every slot then picks the cuts up for free.
    if (shared.cutgen != nullptr) {
      run_cut_phase(shared, root_lp_pivots);
    }
    slots.push_back(std::make_unique<EngineSlot>(shared.pre.reduced, opt.lp));
    slots[0]->engine.set_deadline(shared.deadline);
    if (opt.rc_fixing && !shared.integral.empty()) {
      // Solve the (possibly cut-strengthened) root once on slot 0 and
      // snapshot its reduced costs; the first tree node then warm-starts
      // off the same basis at zero extra cost.
      const lp::Solution rel = slots[0]->engine.solve_from_scratch();
      root_lp_pivots += rel.iterations;
      slots[0]->used = true;
      if (rel.status == lp::SolveStatus::kOptimal) {
        capture_root_info(shared, slots[0]->engine);
      }
    }
    if (!parallel) {
      workers.push_back(std::make_unique<Worker>(shared, nullptr, *slots[0],
                                                 /*id=*/0));
      workers[0]->run_root();
    } else {
      NodePool pool(opt.deterministic, /*hunger=*/2 * threads);
      const int num_slots = opt.deterministic ? 1 : threads;
      for (int s = 1; s < num_slots; ++s) {
        slots.push_back(
            std::make_unique<EngineSlot>(shared.pre.reduced, opt.lp));
        slots.back()->engine.set_deadline(shared.deadline);
      }
      for (int w = 0; w < threads; ++w) {
        workers.push_back(std::make_unique<Worker>(
            shared, &pool, *slots[opt.deterministic ? 0 : static_cast<std::size_t>(w)],
            w));
      }
      pool.push(PoolNode{});  // the root: empty path, unbounded inherited bound
      support::ThreadPool tp(threads);
      tp.run_workers(threads, [&](int w) {
        workers[static_cast<std::size_t>(w)]->run_pool();
      });
    }
  }

  IlpResult out;
  out.threads_used = parallel ? threads : 1;
  out.nodes_explored = shared.nodes.load(std::memory_order_relaxed);
  for (const auto& worker : workers) {
    out.nodes_pruned += worker->pruned();
    out.steal_count += worker->steals();
    out.lp_pivots += worker->lp_pivots();
    out.worker_nodes.push_back(worker->nodes());
    out.worker_lp_iterations.push_back(worker->lp_pivots());
  }
  for (const auto& slot : slots) {
    const lp::SimplexEngine::Stats& stats = slot->engine.stats();
    out.lp_scratch_solves += stats.scratch_solves;
    out.lp_dual_reopts += stats.dual_reopts;
    out.lp_dual_fallbacks += stats.dual_fallbacks;
    out.lp_dual_limit += stats.dual_limit;
    out.lp_dual_numeric += stats.dual_numeric;
    out.lp_restore_fallbacks += stats.restore_fallbacks;
    out.lp_factorizations += stats.factorizations;
    out.lp_eta_updates += stats.eta_updates;
    out.lp_refactor_eta += stats.refactor_eta;
    out.lp_refactor_drift += stats.refactor_drift;
    out.lp_max_eta_len = std::max(out.lp_max_eta_len, stats.max_eta_len);
  }
  out.presolve_fixed_variables = shared.pre.stats.fixed_variables;
  out.presolve_rows_removed = shared.pre.stats.rows_removed();
  out.presolve_bound_tightenings = shared.pre.stats.bound_tightenings;
  out.lp_pivots += root_lp_pivots;
  out.cuts_added = shared.cuts_added.load(std::memory_order_relaxed);
  out.cut_rounds = shared.cut_rounds.load(std::memory_order_relaxed);
  out.rc_fixings = shared.rc_fixed.load(std::memory_order_relaxed);
  out.pseudocost_branches =
      shared.pseudocost_branches.load(std::memory_order_relaxed);
  out.nogoods_learned = shared.nogoods_learned.load(std::memory_order_relaxed);
  out.nogood_prunings = shared.nogood_prunings.load(std::memory_order_relaxed);
  out.nogood_probes = shared.nogood_probes.load(std::memory_order_relaxed);
  if (shared.nogoods != nullptr) {
    // Solve boundary: age activities so the entries that pruned *recently*
    // outrank long-quiet ones at the next eviction sweep.
    shared.nogoods->decay();
    out.nogood_store_size = shared.nogoods->size();
  }
  out.solve_seconds = shared.watch.elapsed_seconds();

  const int abort_status =
      shared.abort_status.load(std::memory_order_relaxed);
  const bool aborted = abort_status >= 0;
  if (shared.have_incumbent.load(std::memory_order_acquire)) {
    // A limit may have stopped the proof of optimality, but an incumbent
    // still exists; report it together with the limit status.
    const std::lock_guard<std::mutex> lock(shared.incumbent_mutex);
    out.status =
        aborted ? static_cast<IlpStatus>(abort_status) : IlpStatus::kOptimal;
    out.objective = shared.incumbent_obj + model.objective_constant();
    out.x = shared.incumbent;
  } else {
    out.status = aborted ? static_cast<IlpStatus>(abort_status)
                         : IlpStatus::kInfeasible;
  }
  return out;
}

}  // namespace

IlpResult BranchAndBoundSolver::solve(const Model& model) {
  if (!options_.learning) return run_search(model, options_, nullptr);
  if (store_ != nullptr) return run_search(model, options_, store_.get());
  // No external store installed: learn within this solve only.
  NogoodStoreOptions store_opt;
  store_opt.max_nogoods = options_.max_nogoods;
  NogoodStore local(store_opt);
  return run_search(model, options_, &local);
}

}  // namespace archex::ilp
