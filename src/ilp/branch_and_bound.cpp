// LP-relaxation branch & bound for 0/1 mixed-integer programs.
//
// Depth-first search with best-incumbent pruning. At each node the LP
// relaxation (bounded-variable simplex, archex::lp) is solved with the
// branching decisions imposed as variable-bound changes; fractional integral
// variables trigger a two-way branch ordered toward the LP value's rounding
// direction, which tends to find feasible architectures early on the
// synthesis models produced by ILP-MR / ILP-AR.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "ilp/solver.hpp"
#include "lp/engine.hpp"
#include "lp/presolve.hpp"
#include "lp/simplex.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace archex::ilp {

std::string to_string(IlpStatus status) {
  switch (status) {
    case IlpStatus::kOptimal: return "optimal";
    case IlpStatus::kInfeasible: return "infeasible";
    case IlpStatus::kNodeLimit: return "node-limit";
    case IlpStatus::kTimeLimit: return "time-limit";
    case IlpStatus::kNumericFailure: return "numeric-failure";
  }
  return "unknown";
}

namespace {

class Search {
 public:
  Search(const Model& model, const BranchAndBoundOptions& options)
      : model_(model),
        opt_(options),
        pre_(make_presolve(model, options)),
        engine_(pre_.reduced, options.lp) {
    for (int j = 0; j < model.num_variables(); ++j) {
      if (model.is_integral(Var{j})) integral_.push_back(j);
    }
    objective_integral_ = detect_integral_objective();
  }

  IlpResult run() {
    watch_.start();
    // The LP engine honours the same wall-clock budget as the tree search,
    // so a node relaxation that overruns the limit aborts within a few dozen
    // pivots instead of running to completion first.
    engine_.set_deadline(std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 opt_.time_limit_seconds)));
    IlpResult out;

    // Presolve can prove infeasibility outright (conflicting bounds, an
    // integral column fixed at a fractional value, an unsatisfiable row).
    if (!pre_.infeasible) dive();

    out.nodes_explored = nodes_;
    out.lp_pivots = lp_pivots_;
    out.lp_scratch_solves = engine_.stats().scratch_solves;
    out.lp_dual_reopts = engine_.stats().dual_reopts;
    out.lp_dual_fallbacks = engine_.stats().dual_fallbacks;
    out.lp_dual_limit = engine_.stats().dual_limit;
    out.lp_dual_numeric = engine_.stats().dual_numeric;
    out.lp_restore_fallbacks = engine_.stats().restore_fallbacks;
    out.lp_factorizations = engine_.stats().factorizations;
    out.lp_eta_updates = engine_.stats().eta_updates;
    out.lp_refactor_eta = engine_.stats().refactor_eta;
    out.lp_refactor_drift = engine_.stats().refactor_drift;
    out.lp_max_eta_len = engine_.stats().max_eta_len;
    out.presolve_fixed_variables = pre_.stats.fixed_variables;
    out.presolve_rows_removed = pre_.stats.rows_removed();
    out.presolve_bound_tightenings = pre_.stats.bound_tightenings;
    out.solve_seconds = watch_.elapsed_seconds();
    if (have_incumbent_) {
      // A limit may have stopped the proof of optimality, but an incumbent
      // still exists; report it together with the limit status.
      out.status = aborted_ ? abort_status_ : IlpStatus::kOptimal;
      out.objective = incumbent_obj_ + model_.objective_constant();
      out.x = incumbent_;
    } else {
      out.status = aborted_ ? abort_status_ : IlpStatus::kInfeasible;
    }
    return out;
  }

 private:
  /// Lower the model to an LP and presolve it (or wrap it in an identity
  /// reduction when presolve is off). Branching and incumbent checks all
  /// happen in the model's variable space via pre_.postsolve()/var_map.
  static lp::PresolveResult make_presolve(const Model& model,
                                          const BranchAndBoundOptions& opt) {
    lp::Problem full = model.to_lp();
    if (!opt.presolve) {
      lp::PresolveResult identity;
      identity.var_map.resize(
          static_cast<std::size_t>(model.num_variables()));
      for (int j = 0; j < model.num_variables(); ++j) {
        identity.var_map[static_cast<std::size_t>(j)] = j;
      }
      identity.fixed_value.assign(
          static_cast<std::size_t>(model.num_variables()), 0.0);
      identity.reduced = std::move(full);
      return identity;
    }
    std::vector<bool> integer_cols(
        static_cast<std::size_t>(full.num_variables()), false);
    for (int j = 0; j < model.num_variables(); ++j) {
      if (model.is_integral(Var{j})) {
        integer_cols[static_cast<std::size_t>(j)] = true;
      }
    }
    return lp::presolve(full, integer_cols);
  }

  void abort_with(IlpStatus status) {
    aborted_ = true;
    abort_status_ = status;
  }

  /// Recursive DFS node. Bound changes are applied/undone around recursion.
  void dive() {
    if (aborted_) return;
    if (nodes_ >= opt_.max_nodes) {
      abort_with(IlpStatus::kNodeLimit);
      return;
    }
    if (watch_.elapsed_seconds() > opt_.time_limit_seconds) {
      abort_with(IlpStatus::kTimeLimit);
      return;
    }
    ++nodes_;

    // Warm start: the parent's optimal basis stays dual feasible after the
    // branching bound change, so this is a short dual-simplex run (with an
    // automatic scratch-solve fallback inside the engine).
    const lp::Solution rel =
        nodes_ == 1 ? engine_.solve_from_scratch() : engine_.reoptimize();
    lp_pivots_ += rel.iterations;

    if (rel.status == lp::SolveStatus::kInfeasible) return;
    if (rel.status == lp::SolveStatus::kTimeLimit) {
      abort_with(IlpStatus::kTimeLimit);
      return;
    }
    if (rel.status != lp::SolveStatus::kOptimal) {
      // Unbounded relaxations cannot occur on our bounded models; iteration
      // limits and numeric failures abort the search conservatively.
      abort_with(IlpStatus::kNumericFailure);
      return;
    }

    // The engine's anti-degeneracy perturbation can inflate the reported
    // bound by at most bound_slack(); subtract it so pruning stays safe.
    // rel.objective lives in reduced space: add the presolve offset to
    // compare against the incumbent.
    if (have_incumbent_ &&
        rel.objective + pre_.objective_offset - engine_.bound_slack() >=
            prune_threshold()) {
      return;
    }

    // Branching and incumbent tests use the model's variable space.
    const std::vector<double> full_x = pre_.postsolve(rel.x);
    const int frac = pick_branch_variable(full_x);
    if (frac < 0) {
      // Integral solution: snap and record.
      try_accept_incumbent(full_x);
      return;
    }

    if (nodes_ == 1 && opt_.root_rounding_heuristic) {
      try_accept_incumbent(full_x);
    }

    // Presolve never fixes a column at a fractional value (it would have
    // declared infeasibility), so a fractional variable maps to a live
    // reduced column.
    const int rj = pre_.var_map[static_cast<std::size_t>(frac)];
    ARCHEX_ASSERT(rj >= 0, "fractional variable was presolved away");
    const double value = full_x[static_cast<std::size_t>(frac)];
    const double saved_lo = engine_.col_lo(rj);
    const double saved_up = engine_.col_up(rj);
    const double floor_v = std::floor(value);
    const double ceil_v = floor_v + 1.0;

    // Explore the rounding direction first.
    const bool down_first = (value - floor_v) <= 0.5;
    for (int side = 0; side < 2; ++side) {
      const bool down = (side == 0) == down_first;
      if (down) {
        if (floor_v < saved_lo) continue;
        engine_.set_variable_bounds(rj, saved_lo, floor_v);
      } else {
        if (ceil_v > saved_up) continue;
        engine_.set_variable_bounds(rj, ceil_v, saved_up);
      }
      dive();
      engine_.set_variable_bounds(rj, saved_lo, saved_up);
      if (aborted_) return;
    }
  }

  /// Fractional integral variable of the highest branching priority (most
  /// fractional within the class), or -1 when integral within tolerance.
  int pick_branch_variable(const std::vector<double>& x) const {
    int best = -1;
    int best_priority = std::numeric_limits<int>::min();
    double best_score = 0.0;
    for (int j : integral_) {
      const double v = x[static_cast<std::size_t>(j)];
      const double score = std::min(v - std::floor(v), std::ceil(v) - v);
      if (score <= opt_.int_tol) continue;
      const int priority = model_.branch_priority(Var{j});
      if (priority > best_priority ||
          (priority == best_priority && score > best_score)) {
        best_priority = priority;
        best_score = score;
        best = j;
      }
    }
    return best;
  }

  // One acceptance rule for every incumbent candidate — the integral-leaf
  // path and the root rounding heuristic used to apply different feasibility
  // and improvement tolerances, so which of two equal-cost incumbents
  // survived depended on where it was found.
  static constexpr double kFeasTol = 1e-5;
  static constexpr double kImproveTol = 1e-9;

  /// Round the integral variables of a relaxation point and accept it as the
  /// incumbent iff it strictly improves and satisfies the model.
  bool try_accept_incumbent(std::vector<double> x) {
    for (int j : integral_) {
      x[static_cast<std::size_t>(j)] =
          std::round(x[static_cast<std::size_t>(j)]);
    }
    const double obj = model_.eval_objective(x) - model_.objective_constant();
    if (have_incumbent_ && obj >= incumbent_obj_ - kImproveTol) return false;
    if (!model_.is_feasible(x, kFeasTol)) return false;
    incumbent_ = std::move(x);
    incumbent_obj_ = obj;
    have_incumbent_ = true;
    return true;
  }

  /// Prune nodes whose LP bound cannot beat the incumbent. With an
  /// all-integer objective the next-better value is at least 1 lower.
  double prune_threshold() const {
    if (objective_integral_) return incumbent_obj_ - 1.0 + 1e-6;
    return incumbent_obj_ - 1e-9;
  }

  bool detect_integral_objective() const {
    for (const lp::Term& t : model_.objective().terms()) {
      if (!model_.is_integral(Var{t.var})) return false;
      if (std::abs(t.coef - std::round(t.coef)) > 1e-12) return false;
    }
    return true;
  }

  const Model& model_;
  BranchAndBoundOptions opt_;
  lp::PresolveResult pre_;
  lp::SimplexEngine engine_;
  std::vector<int> integral_;
  bool objective_integral_ = false;

  std::vector<double> incumbent_;
  double incumbent_obj_ = 0.0;
  bool have_incumbent_ = false;

  bool aborted_ = false;
  IlpStatus abort_status_ = IlpStatus::kNumericFailure;
  long nodes_ = 0;
  long lp_pivots_ = 0;
  Stopwatch watch_;
};

}  // namespace

IlpResult BranchAndBoundSolver::solve(const Model& model) {
  Search search(model, options_);
  return search.run();
}

}  // namespace archex::ilp
