// archex/ilp/cutgen.hpp
//
// Cutting-plane separation for the branch & bound core (DESIGN.md §4f).
// Three families:
//
//  * knapsack cover cuts — every row side is relaxed to a 0/1 knapsack
//    `sum a_j y_j <= b` (negative binary coefficients complemented, bounded
//    non-binary terms folded into the right-hand side); a greedy minimal
//    cover violated by the LP point yields `sum_{j in C} y_j <= |C| - 1`,
//    extended by every item at least as heavy as the heaviest cover member;
//  * clique cuts — pairwise conflicts between binary literals (a row side
//    that two set literals already overrun) form a conflict graph; a greedy
//    clique grown from the most fractional literals yields
//    `sum literals <= 1`, which subsumes the pairwise implication rows the
//    Boolean linearizations (add_or / add_and / add_leq) produce;
//  * Gomory mixed-integer cuts — read off the optimal simplex tableau
//    through SimplexEngine::tableau_row (see separate_gomory).
//
// Cover and clique cuts depend only on the problem's rows and the *root*
// binary boxes, so they are valid at every node of the search tree and can
// be shared across parallel workers. Gomory cuts additionally depend on the
// column bounds active in the engine at separation time, so the search only
// generates them at the root, where the bounds are the root bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/engine.hpp"
#include "lp/problem.hpp"

namespace archex::ilp {

/// One cutting plane over the (reduced) LP's structural columns:
/// `lo <= sum(terms) <= up` (one side is typically infinite).
struct Cut {
  enum class Kind : unsigned char { kCover, kClique, kGomory };
  std::vector<lp::Term> terms;
  double lo = -lp::kInf;
  double up = lp::kInf;
  Kind kind = Kind::kCover;
};

struct CutGenOptions {
  /// Required violation of the separation point before a cut is emitted.
  double min_violation = 1e-4;
  /// Fractionality window for Gomory source rows: generate only when the
  /// basic value's fractional part lies in [f, 1 - f].
  double min_gomory_frac = 0.05;
  /// Reject cuts whose |coefficient| ratio exceeds this (numeric hygiene).
  double max_dynamism = 1e7;
  /// Reject Gomory cuts denser than this fraction of the columns (with a
  /// floor of 16 nonzeros): dense rows slow every later LU factorization.
  double max_gomory_density = 0.25;
  /// Skip the O(items^2) conflict scan on knapsack rows wider than this.
  int max_clique_row = 64;
};

/// Stateless separator over a fixed problem. Construction preprocesses the
/// rows (knapsack relaxations, literal conflict graph); the separate_*
/// methods are const and safe to call from concurrent workers. Deduping
/// across rounds/workers is the caller's job (see cut_signature).
class CutGenerator {
 public:
  /// `is_binary[j]` marks columns with root box exactly [0, 1] that must be
  /// integral; `is_integer[j]` marks all integral columns (for Gomory).
  CutGenerator(const lp::Problem& problem, std::vector<bool> is_binary,
               std::vector<bool> is_integer, CutGenOptions opt = {});

  /// Cover + clique cuts violated at `x` (a point over problem's columns).
  [[nodiscard]] std::vector<Cut> separate_rowwise(
      const std::vector<double>& x) const;

  /// Gomory mixed-integer cuts from the engine's optimal tableau. The
  /// engine must be solving this generator's problem (plus, possibly,
  /// previously added cut rows). Not const on the engine: the tableau
  /// extraction uses its internal scratch.
  [[nodiscard]] std::vector<Cut> separate_gomory(lp::SimplexEngine& engine,
                                                 int max_cuts) const;

 private:
  /// One knapsack relaxation `sum coef * lit <= rhs` with positive
  /// coefficients over binary literals (literal 2j = x_j, 2j+1 = 1 - x_j).
  struct KnapRow {
    std::vector<std::pair<int, double>> items;  // (literal, coef > 0)
    double rhs = 0.0;
  };

  void build_knapsacks();
  void build_conflicts();
  [[nodiscard]] bool cover_from_row(const KnapRow& row,
                                    const std::vector<double>& x,
                                    Cut& out) const;

  const lp::Problem* prob_;
  std::vector<bool> binary_;
  std::vector<bool> integer_;
  CutGenOptions opt_;
  std::vector<KnapRow> knaps_;
  /// Conflict adjacency per literal (sorted, deduped literal ids).
  std::vector<std::vector<int>> conflicts_;
};

/// Order-independent signature for cut dedup across rounds and workers.
[[nodiscard]] std::uint64_t cut_signature(const Cut& cut);

/// True when `x` satisfies the cut within `tol` (tests and debug checks).
[[nodiscard]] bool cut_satisfied(const Cut& cut, const std::vector<double>& x,
                                 double tol = 1e-6);

}  // namespace archex::ilp
