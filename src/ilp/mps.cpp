#include "ilp/mps.hpp"

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lp/problem.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace archex::ilp {

namespace {

/// MPS-safe, unique variable/row names: sanitized original name (when one
/// exists) suffixed with the index to guarantee uniqueness.
std::string col_name(const Model& model, int j) {
  const std::string& given = model.name(Var{j});
  if (given.empty()) return "x" + std::to_string(j);
  return sanitize_identifier(given) + "_" + std::to_string(j);
}

std::string row_name(const Model& model, int i) {
  const std::string& given = model.row(i).name;
  if (given.empty()) return "r" + std::to_string(i);
  return sanitize_identifier(given) + "_" + std::to_string(i);
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

}  // namespace

std::string to_mps(const Model& model, const std::string& name) {
  std::ostringstream os;
  os << "NAME " << sanitize_identifier(name) << "\n";

  // ROWS: objective plus one record per constraint. Two-sided rows are
  // written with their upper sense and completed in RANGES.
  os << "ROWS\n N COST\n";
  std::vector<char> sense(static_cast<std::size_t>(model.num_rows()), 'E');
  for (int i = 0; i < model.num_rows(); ++i) {
    const auto& row = model.row(i);
    char s = 'E';
    if (row.lo == row.up) s = 'E';
    else if (row.lo == -lp::kInf) s = 'L';
    else if (row.up == lp::kInf) s = 'G';
    else s = 'L';  // range row: L with a RANGES record
    sense[static_cast<std::size_t>(i)] = s;
    os << ' ' << s << ' ' << row_name(model, i) << "\n";
  }

  // COLUMNS: objective coefficients, then per-row coefficients, grouped by
  // column with integer markers.
  std::vector<double> obj(static_cast<std::size_t>(model.num_variables()),
                          0.0);
  for (const lp::Term& t : model.objective().terms()) {
    obj[static_cast<std::size_t>(t.var)] += t.coef;
  }
  // Column-wise view of the rows.
  std::vector<std::vector<std::pair<int, double>>> cols(
      static_cast<std::size_t>(model.num_variables()));
  for (int i = 0; i < model.num_rows(); ++i) {
    for (const lp::Term& t : model.row(i).expr.terms()) {
      cols[static_cast<std::size_t>(t.var)].push_back({i, t.coef});
    }
  }

  os << "COLUMNS\n";
  bool in_int_block = false;
  int marker = 0;
  for (int j = 0; j < model.num_variables(); ++j) {
    const bool integral = model.is_integral(Var{j});
    if (integral != in_int_block) {
      os << "    MARKER" << marker++ << " 'MARKER' "
         << (integral ? "'INTORG'" : "'INTEND'") << "\n";
      in_int_block = integral;
    }
    const std::string cn = col_name(model, j);
    if (obj[static_cast<std::size_t>(j)] != 0.0) {
      os << "    " << cn << " COST " << num(obj[static_cast<std::size_t>(j)])
         << "\n";
    }
    for (const auto& [row, coef] : cols[static_cast<std::size_t>(j)]) {
      os << "    " << cn << ' ' << row_name(model, row) << ' ' << num(coef)
         << "\n";
    }
  }
  if (in_int_block) {
    os << "    MARKER" << marker++ << " 'MARKER' 'INTEND'\n";
  }

  os << "RHS\n";
  for (int i = 0; i < model.num_rows(); ++i) {
    const auto& row = model.row(i);
    double rhs = 0.0;
    switch (sense[static_cast<std::size_t>(i)]) {
      case 'E': rhs = row.lo; break;
      case 'L': rhs = row.up; break;
      case 'G': rhs = row.lo; break;
      default: break;
    }
    if (rhs != 0.0) {
      os << "    RHS " << row_name(model, i) << ' ' << num(rhs) << "\n";
    }
  }

  // RANGES for two-sided inequality rows (written as L rows above):
  // range = up - lo.
  bool ranges_header = false;
  for (int i = 0; i < model.num_rows(); ++i) {
    const auto& row = model.row(i);
    if (row.lo == row.up || row.lo == -lp::kInf || row.up == lp::kInf) {
      continue;
    }
    if (!ranges_header) {
      os << "RANGES\n";
      ranges_header = true;
    }
    os << "    RNG " << row_name(model, i) << ' ' << num(row.up - row.lo)
       << "\n";
  }

  os << "BOUNDS\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const std::string cn = col_name(model, j);
    const double lo = model.lower_bound(Var{j});
    const double up = model.upper_bound(Var{j});
    if (model.kind(Var{j}) == VarKind::kBinary && lo == 0.0 && up == 1.0) {
      os << " BV BND " << cn << "\n";
      continue;
    }
    if (lo == up) {
      os << " FX BND " << cn << ' ' << num(lo) << "\n";
      continue;
    }
    if (lo == -lp::kInf) os << " MI BND " << cn << "\n";
    else if (lo != 0.0) os << " LO BND " << cn << ' ' << num(lo) << "\n";
    if (up == lp::kInf) {
      if (lo == -lp::kInf) os << " PL BND " << cn << "\n";
    } else {
      os << " UP BND " << cn << ' ' << num(up) << "\n";
    }
  }

  os << "ENDATA\n";
  return os.str();
}

namespace {

// Intermediate column record: the Model API wants kind and bounds at
// add-variable time, but MPS reveals them only after BOUNDS, so parsing
// stages everything and builds the Model at ENDATA.
struct MpsColumn {
  std::string name;
  bool integral = false;
  double obj = 0.0;
  std::vector<std::pair<int, double>> terms;  // (row index, coefficient)
  double lo = 0.0;
  double up = lp::kInf;
  bool binary = false;
};

double parse_num(const std::string& tok) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &used);
  } catch (...) {
    used = 0;
  }
  ARCHEX_REQUIRE(used == tok.size(), "MPS: malformed number '" + tok + "'");
  return v;
}

}  // namespace

Model from_mps(const std::string& text) {
  enum class Section { kNone, kRows, kColumns, kRhs, kRanges, kBounds, kDone };
  Section section = Section::kNone;

  std::vector<char> sense;            // per constraint row: E/L/G
  std::vector<std::string> row_names;
  std::unordered_map<std::string, int> row_index;  // constraint rows only
  std::string objective_row;

  std::vector<MpsColumn> cols;
  std::unordered_map<std::string, std::size_t> col_index;
  std::vector<double> rhs;
  std::vector<double> range;
  std::vector<bool> has_range;
  bool in_int_block = false;

  const auto col_at = [&](const std::string& name) -> MpsColumn& {
    auto it = col_index.find(name);
    if (it == col_index.end()) {
      it = col_index.emplace(name, cols.size()).first;
      cols.push_back({});
      cols.back().name = name;
      cols.back().integral = in_int_block;
    }
    return cols[it->second];
  };

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '*') continue;
    std::istringstream ls(line);
    std::vector<std::string> tok;
    for (std::string t; ls >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;

    // Section headers start in column 0; data records are indented.
    if (line[0] != ' ' && line[0] != '\t') {
      const std::string& head = tok[0];
      if (head == "NAME") continue;  // model name: ignored
      if (head == "ROWS") { section = Section::kRows; continue; }
      if (head == "COLUMNS") { section = Section::kColumns; continue; }
      if (head == "RHS") { section = Section::kRhs; continue; }
      if (head == "RANGES") { section = Section::kRanges; continue; }
      if (head == "BOUNDS") { section = Section::kBounds; continue; }
      if (head == "ENDATA") { section = Section::kDone; break; }
      ARCHEX_REQUIRE(false, "MPS: unknown section '" + head + "'");
    }

    switch (section) {
      case Section::kRows: {
        ARCHEX_REQUIRE(tok.size() == 2, "MPS: ROWS record needs sense + name");
        const char s = static_cast<char>(tok[0][0]);
        if (s == 'N' || s == 'n') {
          if (objective_row.empty()) objective_row = tok[1];
          // Additional free rows are legal MPS; they carry no constraint.
          continue;
        }
        ARCHEX_REQUIRE(s == 'E' || s == 'L' || s == 'G',
                       "MPS: unknown row sense '" + tok[0] + "'");
        ARCHEX_REQUIRE(row_index.emplace(tok[1],
                                         static_cast<int>(sense.size()))
                           .second,
                       "MPS: duplicate row name '" + tok[1] + "'");
        sense.push_back(s);
        row_names.push_back(tok[1]);
        rhs.push_back(0.0);
        range.push_back(0.0);
        has_range.push_back(false);
        break;
      }
      case Section::kColumns: {
        if (tok.size() >= 3 && tok[1] == "'MARKER'") {
          if (tok[2] == "'INTORG'") in_int_block = true;
          else if (tok[2] == "'INTEND'") in_int_block = false;
          else ARCHEX_REQUIRE(false, "MPS: unknown marker '" + tok[2] + "'");
          continue;
        }
        ARCHEX_REQUIRE(tok.size() == 3 || tok.size() == 5,
                       "MPS: COLUMNS record needs 1 or 2 (row, value) pairs");
        MpsColumn& col = col_at(tok[0]);
        for (std::size_t p = 1; p + 1 < tok.size(); p += 2) {
          const double v = parse_num(tok[p + 1]);
          if (tok[p] == objective_row) {
            col.obj += v;
            continue;
          }
          const auto it = row_index.find(tok[p]);
          ARCHEX_REQUIRE(it != row_index.end(),
                         "MPS: COLUMNS references unknown row '" + tok[p] +
                             "'");
          col.terms.push_back({it->second, v});
        }
        break;
      }
      case Section::kRhs: {
        ARCHEX_REQUIRE(tok.size() == 3 || tok.size() == 5,
                       "MPS: RHS record needs 1 or 2 (row, value) pairs");
        for (std::size_t p = 1; p + 1 < tok.size(); p += 2) {
          if (tok[p] == objective_row) continue;  // -objective constant: lost
          const auto it = row_index.find(tok[p]);
          ARCHEX_REQUIRE(it != row_index.end(),
                         "MPS: RHS references unknown row '" + tok[p] + "'");
          rhs[static_cast<std::size_t>(it->second)] = parse_num(tok[p + 1]);
        }
        break;
      }
      case Section::kRanges: {
        ARCHEX_REQUIRE(tok.size() == 3 || tok.size() == 5,
                       "MPS: RANGES record needs 1 or 2 (row, value) pairs");
        for (std::size_t p = 1; p + 1 < tok.size(); p += 2) {
          const auto it = row_index.find(tok[p]);
          ARCHEX_REQUIRE(it != row_index.end(),
                         "MPS: RANGES references unknown row '" + tok[p] +
                             "'");
          range[static_cast<std::size_t>(it->second)] = parse_num(tok[p + 1]);
          has_range[static_cast<std::size_t>(it->second)] = true;
        }
        break;
      }
      case Section::kBounds: {
        ARCHEX_REQUIRE(tok.size() >= 3, "MPS: BOUNDS record too short");
        const std::string& type = tok[0];
        MpsColumn& col = col_at(tok[2]);
        const bool needs_value =
            type == "UP" || type == "LO" || type == "FX" || type == "UI";
        ARCHEX_REQUIRE(!needs_value || tok.size() >= 4,
                       "MPS: bound type " + type + " needs a value");
        if (type == "BV") {
          col.binary = true;
          col.integral = true;
          col.lo = 0.0;
          col.up = 1.0;
        } else if (type == "FX") {
          col.lo = col.up = parse_num(tok[3]);
        } else if (type == "MI") {
          col.lo = -lp::kInf;
        } else if (type == "PL") {
          col.up = lp::kInf;
        } else if (type == "LO") {
          col.lo = parse_num(tok[3]);
        } else if (type == "UP" || type == "UI") {
          col.up = parse_num(tok[3]);
        } else {
          ARCHEX_REQUIRE(false, "MPS: unknown bound type '" + type + "'");
        }
        break;
      }
      case Section::kNone:
      case Section::kDone:
        ARCHEX_REQUIRE(false, "MPS: data record outside any section");
    }
  }
  ARCHEX_REQUIRE(section == Section::kDone, "MPS: missing ENDATA");
  ARCHEX_REQUIRE(!objective_row.empty(), "MPS: no objective (N) row");

  // Build the model: columns first, then rows from the column-wise terms.
  Model model;
  std::vector<Var> vars;
  vars.reserve(cols.size());
  for (const MpsColumn& col : cols) {
    ARCHEX_REQUIRE(col.lo <= col.up,
                   "MPS: contradictory bounds on column '" + col.name + "'");
    if (col.binary || (col.integral && col.lo == 0.0 && col.up == 1.0)) {
      vars.push_back(model.add_binary(col.name));
      if (col.lo == col.up) model.fix(vars.back(), col.lo);
    } else if (col.integral) {
      vars.push_back(model.add_integer(col.lo, col.up, col.name));
    } else {
      vars.push_back(model.add_continuous(col.lo, col.up, col.name));
    }
  }

  LinExpr objective;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].obj != 0.0) objective.add_term(vars[c], cols[c].obj);
  }
  model.set_objective(objective);

  std::vector<LinExpr> row_expr(sense.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    for (const auto& [row, coef] : cols[c].terms) {
      row_expr[static_cast<std::size_t>(row)].add_term(vars[c], coef);
    }
  }
  for (std::size_t i = 0; i < sense.size(); ++i) {
    double lo = -lp::kInf, up = lp::kInf;
    switch (sense[i]) {
      case 'E': lo = up = rhs[i]; break;
      case 'L': up = rhs[i]; break;
      case 'G': lo = rhs[i]; break;
      default: break;
    }
    if (has_range[i]) {
      const double r = range[i];
      switch (sense[i]) {
        case 'L': lo = up - std::abs(r); break;
        case 'G': up = lo + std::abs(r); break;
        case 'E':
          if (r >= 0.0) up = lo + r;
          else lo = up + r;
          break;
        default: break;
      }
    }
    RowSpec spec;
    spec.expr = std::move(row_expr[i]);
    spec.lo = lo;
    spec.up = up;
    model.add_row(std::move(spec), row_names[i]);
  }
  return model;
}

}  // namespace archex::ilp
