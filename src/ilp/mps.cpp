#include "ilp/mps.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "lp/problem.hpp"
#include "support/strings.hpp"

namespace archex::ilp {

namespace {

/// MPS-safe, unique variable/row names: sanitized original name (when one
/// exists) suffixed with the index to guarantee uniqueness.
std::string col_name(const Model& model, int j) {
  const std::string& given = model.name(Var{j});
  if (given.empty()) return "x" + std::to_string(j);
  return sanitize_identifier(given) + "_" + std::to_string(j);
}

std::string row_name(const Model& model, int i) {
  const std::string& given = model.row(i).name;
  if (given.empty()) return "r" + std::to_string(i);
  return sanitize_identifier(given) + "_" + std::to_string(i);
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

}  // namespace

std::string to_mps(const Model& model, const std::string& name) {
  std::ostringstream os;
  os << "NAME " << sanitize_identifier(name) << "\n";

  // ROWS: objective plus one record per constraint. Two-sided rows are
  // written with their upper sense and completed in RANGES.
  os << "ROWS\n N COST\n";
  std::vector<char> sense(static_cast<std::size_t>(model.num_rows()), 'E');
  for (int i = 0; i < model.num_rows(); ++i) {
    const auto& row = model.row(i);
    char s = 'E';
    if (row.lo == row.up) s = 'E';
    else if (row.lo == -lp::kInf) s = 'L';
    else if (row.up == lp::kInf) s = 'G';
    else s = 'L';  // range row: L with a RANGES record
    sense[static_cast<std::size_t>(i)] = s;
    os << ' ' << s << ' ' << row_name(model, i) << "\n";
  }

  // COLUMNS: objective coefficients, then per-row coefficients, grouped by
  // column with integer markers.
  std::vector<double> obj(static_cast<std::size_t>(model.num_variables()),
                          0.0);
  for (const lp::Term& t : model.objective().terms()) {
    obj[static_cast<std::size_t>(t.var)] += t.coef;
  }
  // Column-wise view of the rows.
  std::vector<std::vector<std::pair<int, double>>> cols(
      static_cast<std::size_t>(model.num_variables()));
  for (int i = 0; i < model.num_rows(); ++i) {
    for (const lp::Term& t : model.row(i).expr.terms()) {
      cols[static_cast<std::size_t>(t.var)].push_back({i, t.coef});
    }
  }

  os << "COLUMNS\n";
  bool in_int_block = false;
  int marker = 0;
  for (int j = 0; j < model.num_variables(); ++j) {
    const bool integral = model.is_integral(Var{j});
    if (integral != in_int_block) {
      os << "    MARKER" << marker++ << " 'MARKER' "
         << (integral ? "'INTORG'" : "'INTEND'") << "\n";
      in_int_block = integral;
    }
    const std::string cn = col_name(model, j);
    if (obj[static_cast<std::size_t>(j)] != 0.0) {
      os << "    " << cn << " COST " << num(obj[static_cast<std::size_t>(j)])
         << "\n";
    }
    for (const auto& [row, coef] : cols[static_cast<std::size_t>(j)]) {
      os << "    " << cn << ' ' << row_name(model, row) << ' ' << num(coef)
         << "\n";
    }
  }
  if (in_int_block) {
    os << "    MARKER" << marker++ << " 'MARKER' 'INTEND'\n";
  }

  os << "RHS\n";
  for (int i = 0; i < model.num_rows(); ++i) {
    const auto& row = model.row(i);
    double rhs = 0.0;
    switch (sense[static_cast<std::size_t>(i)]) {
      case 'E': rhs = row.lo; break;
      case 'L': rhs = row.up; break;
      case 'G': rhs = row.lo; break;
      default: break;
    }
    if (rhs != 0.0) {
      os << "    RHS " << row_name(model, i) << ' ' << num(rhs) << "\n";
    }
  }

  // RANGES for two-sided inequality rows (written as L rows above):
  // range = up - lo.
  bool ranges_header = false;
  for (int i = 0; i < model.num_rows(); ++i) {
    const auto& row = model.row(i);
    if (row.lo == row.up || row.lo == -lp::kInf || row.up == lp::kInf) {
      continue;
    }
    if (!ranges_header) {
      os << "RANGES\n";
      ranges_header = true;
    }
    os << "    RNG " << row_name(model, i) << ' ' << num(row.up - row.lo)
       << "\n";
  }

  os << "BOUNDS\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const std::string cn = col_name(model, j);
    const double lo = model.lower_bound(Var{j});
    const double up = model.upper_bound(Var{j});
    if (model.kind(Var{j}) == VarKind::kBinary && lo == 0.0 && up == 1.0) {
      os << " BV BND " << cn << "\n";
      continue;
    }
    if (lo == up) {
      os << " FX BND " << cn << ' ' << num(lo) << "\n";
      continue;
    }
    if (lo == -lp::kInf) os << " MI BND " << cn << "\n";
    else if (lo != 0.0) os << " LO BND " << cn << ' ' << num(lo) << "\n";
    if (up == lp::kInf) {
      if (lo == -lp::kInf) os << " PL BND " << cn << "\n";
    } else {
      os << " UP BND " << cn << ' ' << num(up) << "\n";
    }
  }

  os << "ENDATA\n";
  return os.str();
}

}  // namespace archex::ilp
