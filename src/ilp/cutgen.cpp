// Cutting-plane separation: knapsack covers, literal cliques, Gomory mixed
// integer cuts. See cutgen.hpp for the validity contract of each family.
#include "ilp/cutgen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <unordered_set>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace archex::ilp {

namespace {

constexpr double kCoefTol = 1e-9;
/// Strictness margin for "the items overrun the right-hand side": a cover /
/// conflict is only trusted when it exceeds the capacity by more than the
/// accumulated float error possibly could.
constexpr double kStrictTol = 1e-7;

[[nodiscard]] double literal_value(int lit, const std::vector<double>& x) {
  const double v = x[static_cast<std::size_t>(lit >> 1)];
  return (lit & 1) != 0 ? 1.0 - v : v;
}

[[nodiscard]] bool sorted_contains(const std::vector<int>& v, int key) {
  return std::binary_search(v.begin(), v.end(), key);
}

[[nodiscard]] std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

[[nodiscard]] std::uint64_t quantize(double v) {
  if (v == lp::kInf) return 0x7ff0000000000001ULL;
  if (v == -lp::kInf) return 0xfff0000000000001ULL;
  return static_cast<std::uint64_t>(std::llround(v * 1e9));
}

/// Emit the x-space inequality for `sum of literals <= cap`.
[[nodiscard]] Cut literal_cut(const std::vector<int>& lits, int cap,
                              Cut::Kind kind) {
  Cut cut;
  cut.kind = kind;
  double up = cap;
  for (const int lit : lits) {
    const int j = lit >> 1;
    if ((lit & 1) != 0) {
      cut.terms.push_back({j, -1.0});
      up -= 1.0;  // (1 - x_j) contributes its constant to the bound
    } else {
      cut.terms.push_back({j, 1.0});
    }
  }
  cut.up = up;
  return cut;
}

}  // namespace

std::uint64_t cut_signature(const Cut& cut) {
  std::vector<std::pair<int, double>> terms;
  terms.reserve(cut.terms.size());
  for (const lp::Term& t : cut.terms) terms.emplace_back(t.var, t.coef);
  std::sort(terms.begin(), terms.end());
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& [var, coef] : terms) {
    h = mix64(h, static_cast<std::uint64_t>(var));
    h = mix64(h, quantize(coef));
  }
  h = mix64(h, quantize(cut.lo));
  h = mix64(h, quantize(cut.up));
  return h;
}

bool cut_satisfied(const Cut& cut, const std::vector<double>& x, double tol) {
  double total = 0.0;
  for (const lp::Term& t : cut.terms) {
    total += t.coef * x[static_cast<std::size_t>(t.var)];
  }
  return total >= cut.lo - tol && total <= cut.up + tol;
}

CutGenerator::CutGenerator(const lp::Problem& problem,
                           std::vector<bool> is_binary,
                           std::vector<bool> is_integer, CutGenOptions opt)
    : prob_(&problem),
      binary_(std::move(is_binary)),
      integer_(std::move(is_integer)),
      opt_(opt) {
  ARCHEX_REQUIRE(
      static_cast<int>(binary_.size()) == problem.num_variables() &&
          static_cast<int>(integer_.size()) == problem.num_variables(),
      "cut generator flag vectors must cover every column");
  build_knapsacks();
  build_conflicts();
}

/// Relax every finite row side to a 0/1 knapsack over binary literals:
/// negate the row for the lower side, fold bounded non-binary terms into the
/// right-hand side at their minimum contribution, and complement negative
/// binary coefficients. Dropping a (tiny-coefficient) literal only weakens
/// the knapsack, so every derived cover / conflict stays valid.
void CutGenerator::build_knapsacks() {
  const lp::Problem& p = *prob_;
  for (int i = 0; i < p.num_constraints(); ++i) {
    for (int side = 0; side < 2; ++side) {
      const double bound = side == 0 ? p.row_up(i) : p.row_lo(i);
      if (bound == lp::kInf || bound == -lp::kInf) continue;
      const double sign = side == 0 ? 1.0 : -1.0;
      KnapRow knap;
      knap.rhs = sign * bound;
      bool usable = true;
      double coef_sum = 0.0;
      for (const lp::Term& t : p.row(i)) {
        const double a = sign * t.coef;
        const auto j = static_cast<std::size_t>(t.var);
        if (binary_[j] && a > kCoefTol) {
          knap.items.emplace_back(2 * t.var, a);
          coef_sum += a;
        } else if (binary_[j] && a < -kCoefTol) {
          // a * x == a - (-a) * (1 - x): complement and move the constant.
          knap.items.emplace_back(2 * t.var + 1, -a);
          knap.rhs -= a;
          coef_sum += -a;
        } else {
          // Non-binary (or negligible) term: charge its minimum possible
          // contribution to the capacity.
          const double lo = a >= 0.0 ? p.col_lo(t.var) : p.col_up(t.var);
          if (lo == -lp::kInf || lo == lp::kInf) {
            usable = false;
            break;
          }
          knap.rhs -= a * lo;
        }
      }
      if (!usable || knap.items.size() < 2) continue;
      if (knap.rhs < -kStrictTol) continue;  // no 0/1 point fits: presolve's job
      if (coef_sum <= knap.rhs + kStrictTol) continue;  // no cover possible
      knaps_.push_back(std::move(knap));
    }
  }
}

/// Pairwise literal conflicts: two literals whose coefficients alone overrun
/// a knapsack's capacity cannot both be 1. Items are scanned largest-first
/// so the quadratic pair loop stops at the first non-conflicting partner.
void CutGenerator::build_conflicts() {
  conflicts_.assign(2 * static_cast<std::size_t>(prob_->num_variables()), {});
  for (const KnapRow& knap : knaps_) {
    if (static_cast<int>(knap.items.size()) > opt_.max_clique_row) continue;
    std::vector<std::pair<int, double>> items = knap.items;
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (std::size_t p = 0; p < items.size(); ++p) {
      for (std::size_t q = p + 1; q < items.size(); ++q) {
        if (items[p].second + items[q].second <= knap.rhs + kStrictTol) break;
        const int lp_ = items[p].first;
        const int lq = items[q].first;
        if ((lp_ >> 1) == (lq >> 1)) continue;  // x and 1-x: vacuous
        conflicts_[static_cast<std::size_t>(lp_)].push_back(lq);
        conflicts_[static_cast<std::size_t>(lq)].push_back(lp_);
      }
    }
  }
  for (auto& adj : conflicts_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
}

/// Greedy separation of a minimal cover violated at `x`, extended by every
/// item at least as heavy as the heaviest cover member (valid for any cover:
/// replacing k cover members by k extension items never lowers the weight).
bool CutGenerator::cover_from_row(const KnapRow& row,
                                  const std::vector<double>& x,
                                  Cut& out) const {
  const std::size_t k = row.items.size();
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Cheapest violation mass per unit of knapsack weight first.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ca = (1.0 - literal_value(row.items[a].first, x)) /
                      row.items[a].second;
    const double cb = (1.0 - literal_value(row.items[b].first, x)) /
                      row.items[b].second;
    if (ca != cb) return ca < cb;
    return a < b;
  });
  std::vector<std::size_t> cover;
  double weight = 0.0;
  for (const std::size_t idx : order) {
    cover.push_back(idx);
    weight += row.items[idx].second;
    if (weight > row.rhs + kStrictTol) break;
  }
  if (weight <= row.rhs + kStrictTol) return false;
  // Minimalize: drop members the cover survives without (lightest first).
  std::sort(cover.begin(), cover.end(), [&](std::size_t a, std::size_t b) {
    return row.items[a].second < row.items[b].second;
  });
  for (std::size_t p = 0; p < cover.size();) {
    if (weight - row.items[cover[p]].second > row.rhs + kStrictTol) {
      weight -= row.items[cover[p]].second;
      cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(p));
    } else {
      ++p;
    }
  }
  double slack = 0.0;
  double heaviest = 0.0;
  for (const std::size_t idx : cover) {
    slack += 1.0 - literal_value(row.items[idx].first, x);
    heaviest = std::max(heaviest, row.items[idx].second);
  }
  if (slack >= 1.0 - opt_.min_violation) return false;
  std::vector<int> lits;
  lits.reserve(cover.size());
  for (const std::size_t idx : cover) lits.push_back(row.items[idx].first);
  for (std::size_t idx = 0; idx < k; ++idx) {
    if (std::find(cover.begin(), cover.end(), idx) != cover.end()) continue;
    if (row.items[idx].second >= heaviest - 1e-12) {
      lits.push_back(row.items[idx].first);
    }
  }
  out = literal_cut(lits, static_cast<int>(cover.size()) - 1,
                    Cut::Kind::kCover);
  return true;
}

std::vector<Cut> CutGenerator::separate_rowwise(
    const std::vector<double>& x) const {
  std::vector<Cut> cuts;
  std::unordered_set<std::uint64_t> seen;
  for (const KnapRow& knap : knaps_) {
    Cut cut;
    if (!cover_from_row(knap, x, cut)) continue;
    if (seen.insert(cut_signature(cut)).second) cuts.push_back(std::move(cut));
  }

  // Clique separation: grow a conflict clique greedily from each fractional
  // literal, most fractional neighbours first.
  std::vector<int> seeds;
  for (std::size_t lit = 0; lit < conflicts_.size(); ++lit) {
    if (conflicts_[lit].empty()) continue;
    if (literal_value(static_cast<int>(lit), x) > opt_.min_violation) {
      seeds.push_back(static_cast<int>(lit));
    }
  }
  std::sort(seeds.begin(), seeds.end(), [&](int a, int b) {
    const double va = literal_value(a, x);
    const double vb = literal_value(b, x);
    if (va != vb) return va > vb;
    return a < b;
  });
  std::vector<bool> used(conflicts_.size(), false);
  for (const int seed : seeds) {
    if (used[static_cast<std::size_t>(seed)]) continue;
    std::vector<int> clique{seed};
    double total = literal_value(seed, x);
    std::vector<int> cand = conflicts_[static_cast<std::size_t>(seed)];
    std::sort(cand.begin(), cand.end(), [&](int a, int b) {
      const double va = literal_value(a, x);
      const double vb = literal_value(b, x);
      if (va != vb) return va > vb;
      return a < b;
    });
    for (const int lit : cand) {
      bool compatible = true;
      for (const int member : clique) {
        if (member != seed &&
            !sorted_contains(conflicts_[static_cast<std::size_t>(lit)],
                             member)) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      clique.push_back(lit);
      total += literal_value(lit, x);
    }
    if (clique.size() < 2 || total <= 1.0 + opt_.min_violation) continue;
    Cut cut = literal_cut(clique, 1, Cut::Kind::kClique);
    if (seen.insert(cut_signature(cut)).second) {
      for (const int lit : clique) used[static_cast<std::size_t>(lit)] = true;
      cuts.push_back(std::move(cut));
    }
  }
  return cuts;
}

std::vector<Cut> CutGenerator::separate_gomory(lp::SimplexEngine& engine,
                                               int max_cuts) const {
  std::vector<Cut> cuts;
  if (max_cuts <= 0 || !engine.has_basis()) return cuts;
  const int n = prob_->num_variables();
  const int m = engine.num_rows();
  const int nm = n + m;

  // Source rows: integral structural basic variables, most fractional first.
  std::vector<std::pair<double, int>> sources;
  for (int i = 0; i < m; ++i) {
    const int b = engine.basic_variable(i);
    if (b >= n || !integer_[static_cast<std::size_t>(b)]) continue;
    const double v = engine.column_value(b);
    const double f0 = v - std::floor(v);
    if (f0 < opt_.min_gomory_frac || f0 > 1.0 - opt_.min_gomory_frac) continue;
    sources.emplace_back(std::abs(f0 - 0.5), i);
  }
  std::sort(sources.begin(), sources.end());

  std::vector<double> alpha;
  std::vector<double> coef(static_cast<std::size_t>(n));
  for (const auto& [dist, i] : sources) {
    if (static_cast<int>(cuts.size()) >= max_cuts) break;
    if (!engine.tableau_row(i, alpha)) break;
    const int b = engine.basic_variable(i);
    const double beta0 = engine.column_value(b);
    const double f0 = beta0 - std::floor(beta0);

    // The source row reads x_b + sum_j a_j t_j = beta0 over the nonbasic
    // shifted variables t_j >= 0 (t = x - lo at lower, up - x at upper).
    // The Gomory mixed-integer cut is sum_j g(a_j) t_j >= f0; substituting
    // the shifts back yields an inequality over the structural columns
    // (logical contributions are expanded through their row).
    std::fill(coef.begin(), coef.end(), 0.0);
    double rhs = f0;
    bool ok = true;
    for (int j = 0; j < nm && ok; ++j) {
      if (j == b) continue;
      const double aj = alpha[static_cast<std::size_t>(j)];
      const auto status = engine.column_status(j);
      if (status == lp::SimplexEngine::ColStatus::kBasic) {
        // Other basic columns must have a (numerically) zero tableau entry.
        if (std::abs(aj) > 1e-7) ok = false;
        continue;
      }
      const double lo = engine.column_lower(j);
      const double up = engine.column_upper(j);
      if (lo == up) continue;  // fixed: t is identically zero
      if (status == lp::SimplexEngine::ColStatus::kFree) {
        if (std::abs(aj) > 1e-11) ok = false;  // no bound to shift from
        continue;
      }
      const bool at_lower = status == lp::SimplexEngine::ColStatus::kAtLower;
      const double shift = at_lower ? lo : up;
      const double a = at_lower ? aj : -aj;
      if (std::abs(a) < 1e-11 && !(j < n && integer_[static_cast<std::size_t>(j)])) {
        continue;
      }
      double g;
      const bool t_integer = j < n && integer_[static_cast<std::size_t>(j)] &&
                             std::abs(shift - std::round(shift)) < 1e-9;
      if (t_integer) {
        const double fj = a - std::floor(a);
        g = fj <= f0 + 1e-12 ? fj : f0 * (1.0 - fj) / (1.0 - f0);
      } else {
        g = a >= 0.0 ? a : f0 / (1.0 - f0) * (-a);
      }
      if (g < 1e-11) continue;
      const double signed_g = at_lower ? g : -g;
      // rhs collects f0 + sum_lower g*lo - sum_upper g*up.
      rhs += signed_g * shift;
      if (j < n) {
        coef[static_cast<std::size_t>(j)] += signed_g;
      } else if (j - n < prob_->num_constraints()) {
        for (const lp::Term& t : prob_->row(j - n)) {
          coef[static_cast<std::size_t>(t.var)] += signed_g * t.coef;
        }
      } else {
        // Logical of a cut row added to the engine after this generator's
        // problem snapshot: its structure is unknown here, so the row
        // cannot be expanded — discard the source.
        ok = false;
      }
    }
    if (!ok) continue;

    // Numeric hygiene: drop negligible coefficients by charging their
    // worst-case contribution to the right-hand side, then bound the
    // coefficient dynamism.
    double max_c = 0.0;
    double min_c = lp::kInf;
    Cut cut;
    cut.kind = Cut::Kind::kGomory;
    for (int j = 0; j < n && ok; ++j) {
      const double c = coef[static_cast<std::size_t>(j)];
      if (c == 0.0) continue;
      if (std::abs(c) < 1e-10) {
        const double far = c > 0.0 ? prob_->col_up(j) : prob_->col_lo(j);
        if (far == lp::kInf || far == -lp::kInf) {
          ok = false;
          break;
        }
        rhs -= c * far;
        continue;
      }
      max_c = std::max(max_c, std::abs(c));
      min_c = std::min(min_c, std::abs(c));
      cut.terms.push_back({j, c});
    }
    if (!ok || cut.terms.empty() || max_c / min_c > opt_.max_dynamism) {
      continue;
    }
    // Dense rows poison the LU factorization of every LP the tree solves
    // afterwards; the bound they buy is almost never worth it.
    const std::size_t max_nnz = static_cast<std::size_t>(
        std::max(16.0, opt_.max_gomory_density * static_cast<double>(n)));
    if (cut.terms.size() > max_nnz) continue;
    cut.lo = rhs;
    double activity = 0.0;
    for (const lp::Term& t : cut.terms) {
      activity += t.coef * engine.column_value(t.var);
    }
    if (rhs - activity < opt_.min_violation) continue;
    cuts.push_back(std::move(cut));
  }
  return cuts;
}

}  // namespace archex::ilp
