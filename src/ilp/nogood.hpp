// archex/ilp/nogood.hpp
//
// Conflict-driven nogood store for the branch & bound core (DESIGN.md §4g).
//
// A nogood is a partial 0/1 assignment over the *model's* variables that
// provably cannot be extended to an improving feasible solution: "x_j = 1
// for every j in `ones` and x_j = 0 for every j in `zeros` together are
// dead". The search prunes any node whose bound box already implies all of
// a nogood's literals. Nogoods arrive from three sources:
//
//  * kInfeasible — a node LP proved infeasible; the Farkas certificate
//    (SimplexEngine::farkas_ray) was reduced against the node's branching
//    decisions to a minimal literal set. The model's constraint set only
//    grows (cuts, learncons rows), so these stay valid forever: across
//    restarts, across ILP-MR synthesis iterations, across workers.
//  * kDominance — a node LP was feasible but its bound could not beat the
//    incumbent. Valid only while the pruning threshold keeps tightening,
//    i.e. within one solve: purged at the next solve's start.
//  * kOracle — the reliability oracle rejected a full architecture; the
//    selected-edge assignment is dead in every later synthesis iteration
//    (reliability depends only on the selection, and learncons only adds
//    rows). Never evicted: the ILP-MR progress argument needs each rejected
//    configuration to stay excluded.
//
// The store is shared mutable state across work-stealing workers; every
// public method is thread-safe. Entries are evicted by marking them dead
// (indices stay stable, so concurrent activity bumps against an evicted
// index are harmless), lowest activity first, oracle entries exempt.
// Deduplication is by order-independent signature; an evicted signature is
// released so the search may re-learn the nogood if it proves useful again.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace archex::ilp {

enum class NogoodSource : unsigned char { kInfeasible, kDominance, kOracle };

/// One nogood: the conjunction (all of `ones` at 1, all of `zeros` at 0)
/// admits no improving feasible completion. Variable indices refer to the
/// *model* columns (pre-presolve), so an entry is meaningful across solves
/// that presolve differently. An empty literal set is the root nogood —
/// nothing is feasible — and matches every node.
struct Nogood {
  std::vector<int> ones;
  std::vector<int> zeros;
  NogoodSource source = NogoodSource::kInfeasible;

  [[nodiscard]] std::size_t num_literals() const {
    return ones.size() + zeros.size();
  }
};

/// Order-independent signature for dedup across workers and solves.
/// Normalizes (sorts) literal order; `source` does not participate, so the
/// same assignment learned from two sources dedupes to one entry.
[[nodiscard]] std::uint64_t nogood_signature(const Nogood& nogood);

/// True when the box [lo, up] over the model columns implies every literal
/// of the nogood: lo[j] >= 1 - tol for each `ones` literal and
/// up[j] <= tol for each `zeros` literal. Such a box holds no improving
/// feasible point and the node may be pruned.
[[nodiscard]] bool nogood_matches(const Nogood& nogood,
                                  const std::vector<double>& lo,
                                  const std::vector<double>& up,
                                  double tol = 1e-9);

struct NogoodStoreOptions {
  /// Live-entry cap; exceeding it evicts the lowest-activity non-oracle
  /// entries down to ~3/4 of the cap.
  int max_nogoods = 20000;
  /// Multiplier applied to every activity by decay(); the solver calls it
  /// once per solve so recently useful entries outrank stale ones.
  double activity_decay = 0.5;
};

/// Thread-safe, activity-scored nogood store shared by the B&B workers and,
/// through BranchAndBoundSolver::set_nogood_store, by consecutive ILP-MR /
/// ILP-AR solves (warm restarts: conflicts learned in iteration k prune
/// iteration k+1's tree).
class NogoodStore {
 public:
  explicit NogoodStore(NogoodStoreOptions options = {});

  /// Insert with signature dedup. Returns the entry's stable index when the
  /// nogood is new, or -1 when an identical live entry exists (the existing
  /// entry's activity is bumped instead). May trigger eviction.
  int insert(Nogood nogood);

  /// Record a pruning hit against entry `index` (from any worker; stale
  /// indices of evicted entries are accepted and ignored).
  void bump(int index);

  /// Age all activities by options.activity_decay (solve boundary).
  void decay();

  /// Drop every kDominance entry: incumbent-relative nogoods do not survive
  /// into a solve with a fresh (or reset) incumbent. Call at solve start.
  void purge_transient();

  /// Drop everything except kOracle entries. Oracle nogoods record "the
  /// reliability analysis rejected this exact selection against this
  /// requirement" — a pure function of template and target, valid for any
  /// future request over the same pair. kInfeasible entries are NOT: they
  /// were minimized against iteration-k models whose learncons rows a fresh
  /// request's base model lacks. Call before reusing a persisted store for
  /// a new request (NogoodStoreRegistry does this).
  void purge_non_oracle();

  /// Copy the live entries with their stable indices (solve-start compile).
  void snapshot(std::vector<std::pair<int, Nogood>>& out) const;

  /// Live-entry count.
  [[nodiscard]] int size() const;

  struct Stats {
    long inserted = 0;   // entries accepted (post-dedup)
    long deduped = 0;    // inserts dropped against a live duplicate
    long evicted = 0;    // entries marked dead by the activity sweep
    long purged = 0;     // kDominance entries dropped by purge_transient
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    Nogood nogood;
    std::uint64_t signature = 0;
    double activity = 0.0;
    bool dead = false;
  };

  // Callers hold mu_.
  void kill_entry(std::size_t index);
  void evict_locked();

  NogoodStoreOptions opt_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  /// signature -> entry index, live entries only.
  std::unordered_map<std::uint64_t, int> index_;
  int live_ = 0;
  Stats stats_;
};

/// Process-lifetime map from an opaque problem-family key to its persistent
/// NogoodStore, so a long-lived service reuses oracle-learned conflicts
/// across requests over the same synthesis problem. The caller owns the key
/// semantics (the archex_server keys by template signature mixed with the
/// solve mode and reliability target, which together pin the variable
/// numbering and the oracle predicate). acquire() purges every non-oracle
/// entry before handing the store out — see NogoodStore::purge_non_oracle()
/// for why only oracle entries survive a model reset. Thread-safe.
class NogoodStoreRegistry {
 public:
  explicit NogoodStoreRegistry(NogoodStoreOptions options = {})
      : opt_(options) {}

  /// Fetch (creating on first use) the store for `key`, purged down to its
  /// oracle entries and ready for a fresh request's base model.
  [[nodiscard]] std::shared_ptr<NogoodStore> acquire(std::uint64_t key);

  /// Number of distinct problem families seen.
  [[nodiscard]] std::size_t families() const;

 private:
  NogoodStoreOptions opt_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<NogoodStore>> stores_;
};

}  // namespace archex::ilp
