#include "ilp/model.hpp"

#include <cmath>
#include <utility>

#include "support/check.hpp"

namespace archex::ilp {

Var Model::add_var(VarKind kind, double lo, double up, std::string name) {
  ARCHEX_REQUIRE(lo <= up, "variable bounds must satisfy lo <= up");
  kind_.push_back(kind);
  lo_.push_back(lo);
  up_.push_back(up);
  priority_.push_back(0);
  name_.push_back(std::move(name));
  return Var{static_cast<int>(kind_.size()) - 1};
}

Var Model::add_binary(std::string name) {
  return add_var(VarKind::kBinary, 0.0, 1.0, std::move(name));
}

Var Model::add_integer(double lo, double up, std::string name) {
  ARCHEX_REQUIRE(std::floor(lo) == lo && std::floor(up) == up,
                 "integer variable bounds must be integral");
  return add_var(VarKind::kInteger, lo, up, std::move(name));
}

Var Model::add_continuous(double lo, double up, std::string name) {
  return add_var(VarKind::kContinuous, lo, up, std::move(name));
}

void Model::fix(Var v, double value) {
  ARCHEX_REQUIRE(v.id >= 0 && v.id < num_variables(), "unknown variable");
  const auto j = static_cast<std::size_t>(v.id);
  ARCHEX_REQUIRE(kind_[j] == VarKind::kContinuous ||
                     std::floor(value) == value,
                 "cannot fix an integral variable to a fractional value");
  lo_[j] = value;
  up_[j] = value;
}

void Model::set_branch_priority(Var v, int priority) {
  ARCHEX_REQUIRE(v.id >= 0 && v.id < num_variables(), "unknown variable");
  priority_[static_cast<std::size_t>(v.id)] = priority;
}

int Model::branch_priority(Var v) const {
  ARCHEX_REQUIRE(v.id >= 0 && v.id < num_variables(), "unknown variable");
  return priority_[static_cast<std::size_t>(v.id)];
}

int Model::add_row(RowSpec spec, std::string name) {
  for (const lp::Term& t : spec.expr.terms()) {
    ARCHEX_REQUIRE(t.var >= 0 && t.var < num_variables(),
                   "row references unknown variable");
  }
  const double c = spec.expr.constant();
  StoredRow row{std::move(spec.expr),
                spec.lo == -lp::kInf ? -lp::kInf : spec.lo - c,
                spec.up == lp::kInf ? lp::kInf : spec.up - c,
                std::move(name)};
  ARCHEX_REQUIRE(row.lo <= row.up, "row bounds must satisfy lo <= up");
  rows_.push_back(std::move(row));
  return num_rows() - 1;
}

Var Model::add_or(const std::vector<Var>& xs, std::string name) {
  ARCHEX_REQUIRE(!xs.empty(), "add_or needs at least one operand");
  const Var y = add_binary(name.empty() ? std::string{} : name);
  LinExpr sum;
  for (Var x : xs) {
    ARCHEX_REQUIRE(kind(x) == VarKind::kBinary, "add_or operands must be binary");
    // y >= x  <=>  y - x >= 0
    add_row(LinExpr(y) - LinExpr(x) >= 0.0, name + "/ge");
    sum += x;
  }
  // y <= sum(xs)
  add_row(LinExpr(y) - sum <= 0.0, name + "/le");
  return y;
}

Var Model::add_and(const std::vector<Var>& xs, std::string name) {
  ARCHEX_REQUIRE(!xs.empty(), "add_and needs at least one operand");
  const Var y = add_binary(name.empty() ? std::string{} : name);
  LinExpr sum;
  for (Var x : xs) {
    ARCHEX_REQUIRE(kind(x) == VarKind::kBinary,
                   "add_and operands must be binary");
    add_row(LinExpr(y) - LinExpr(x) <= 0.0, name + "/le");
    sum += x;
  }
  // y >= sum(xs) - (|xs| - 1)
  add_row(LinExpr(y) - sum >= 1.0 - static_cast<double>(xs.size()),
          name + "/ge");
  return y;
}

void Model::add_implication(Var x, const RowSpec& spec, std::string name) {
  ARCHEX_REQUIRE(kind(x) == VarKind::kBinary,
                 "implication guard must be binary");
  const auto [amin, amax] = activity_range(spec.expr);
  if (spec.up != lp::kInf) {
    // expr <= up + (amax - up) * (1 - x)
    const double big_m = amax - spec.up;
    if (big_m > 0.0) {
      LinExpr e = spec.expr;
      e.add_term(x, big_m);
      add_row(std::move(e) <= spec.up + big_m, name + "/ub");
    }
  }
  if (spec.lo != -lp::kInf) {
    // expr >= lo - (lo - amin) * (1 - x)
    const double big_m = spec.lo - amin;
    if (big_m > 0.0) {
      LinExpr e = spec.expr;
      e.add_term(x, -big_m);
      add_row(std::move(e) >= spec.lo - big_m, name + "/lb");
    }
  }
}

void Model::add_leq(Var a, Var b, std::string name) {
  add_row(LinExpr(a) - LinExpr(b) <= 0.0, std::move(name));
}

void Model::set_objective(const LinExpr& objective) {
  for (const lp::Term& t : objective.terms()) {
    ARCHEX_REQUIRE(t.var >= 0 && t.var < num_variables(),
                   "objective references unknown variable");
  }
  objective_ = objective;
}

VarKind Model::kind(Var v) const {
  ARCHEX_REQUIRE(v.id >= 0 && v.id < num_variables(), "unknown variable");
  return kind_[static_cast<std::size_t>(v.id)];
}

double Model::lower_bound(Var v) const {
  ARCHEX_REQUIRE(v.id >= 0 && v.id < num_variables(), "unknown variable");
  return lo_[static_cast<std::size_t>(v.id)];
}

double Model::upper_bound(Var v) const {
  ARCHEX_REQUIRE(v.id >= 0 && v.id < num_variables(), "unknown variable");
  return up_[static_cast<std::size_t>(v.id)];
}

const std::string& Model::name(Var v) const {
  ARCHEX_REQUIRE(v.id >= 0 && v.id < num_variables(), "unknown variable");
  return name_[static_cast<std::size_t>(v.id)];
}

bool Model::pure_binary() const {
  for (VarKind k : kind_) {
    if (k != VarKind::kBinary) return false;
  }
  return true;
}

std::pair<double, double> Model::activity_range(const LinExpr& expr) const {
  double amin = expr.constant();
  double amax = expr.constant();
  for (const lp::Term& t : expr.terms()) {
    const auto j = static_cast<std::size_t>(t.var);
    const double a = t.coef * lo_[j];
    const double b = t.coef * up_[j];
    amin += std::min(a, b);
    amax += std::max(a, b);
  }
  ARCHEX_REQUIRE(std::isfinite(amin) && std::isfinite(amax),
                 "activity_range requires finite variable bounds");
  return {amin, amax};
}

lp::Problem Model::to_lp() const {
  lp::Problem lp;
  for (int j = 0; j < num_variables(); ++j) {
    const auto js = static_cast<std::size_t>(j);
    lp.add_variable(lo_[js], up_[js], 0.0, name_[js]);
  }
  for (const lp::Term& t : objective_.terms()) {
    lp.set_objective(t.var, lp.objective_coef(t.var) + t.coef);
  }
  for (const StoredRow& row : rows_) {
    lp.add_constraint(row.expr.terms(), row.lo, row.up, row.name);
  }
  return lp;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_variables()) return false;
  for (int j = 0; j < num_variables(); ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (x[js] < lo_[js] - tol || x[js] > up_[js] + tol) return false;
    if (kind_[js] != VarKind::kContinuous &&
        std::abs(x[js] - std::round(x[js])) > tol) {
      return false;
    }
  }
  for (const StoredRow& row : rows_) {
    double activity = 0.0;
    for (const lp::Term& t : row.expr.terms()) {
      activity += t.coef * x[static_cast<std::size_t>(t.var)];
    }
    if (activity < row.lo - tol || activity > row.up + tol) return false;
  }
  return true;
}

double Model::eval_objective(const std::vector<double>& x) const {
  double total = objective_.constant();
  for (const lp::Term& t : objective_.terms()) {
    total += t.coef * x[static_cast<std::size_t>(t.var)];
  }
  return total;
}

}  // namespace archex::ilp
