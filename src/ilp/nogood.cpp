// Conflict-driven nogood store. See nogood.hpp for the validity contract of
// each source and the eviction policy.
#include "ilp/nogood.hpp"

#include <algorithm>
#include <utility>

namespace archex::ilp {

namespace {

[[nodiscard]] std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::uint64_t nogood_signature(const Nogood& nogood) {
  std::vector<int> ones = nogood.ones;
  std::vector<int> zeros = nogood.zeros;
  std::sort(ones.begin(), ones.end());
  std::sort(zeros.begin(), zeros.end());
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const int v : ones) {
    h = mix64(h, (static_cast<std::uint64_t>(v) << 1) | 1ULL);
  }
  h = mix64(h, 0xfeedULL);  // separator: {ones:{a}, zeros:{b}} != swapped
  for (const int v : zeros) {
    h = mix64(h, static_cast<std::uint64_t>(v) << 1);
  }
  return h;
}

bool nogood_matches(const Nogood& nogood, const std::vector<double>& lo,
                    const std::vector<double>& up, double tol) {
  for (const int v : nogood.ones) {
    if (lo[static_cast<std::size_t>(v)] < 1.0 - tol) return false;
  }
  for (const int v : nogood.zeros) {
    if (up[static_cast<std::size_t>(v)] > tol) return false;
  }
  return true;
}

NogoodStore::NogoodStore(NogoodStoreOptions options) : opt_(options) {
  if (opt_.max_nogoods < 1) opt_.max_nogoods = 1;
}

int NogoodStore::insert(Nogood nogood) {
  const std::uint64_t sig = nogood_signature(nogood);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(sig); it != index_.end()) {
    Entry& existing = entries_[static_cast<std::size_t>(it->second)];
    existing.activity += 1.0;
    // A permanent re-derivation upgrades a transient duplicate: the same
    // literal set proved dead without leaning on the incumbent must not be
    // purged at the next solve boundary.
    if (existing.nogood.source == NogoodSource::kDominance &&
        nogood.source != NogoodSource::kDominance) {
      existing.nogood.source = nogood.source;
    }
    ++stats_.deduped;
    return -1;
  }
  const int index = static_cast<int>(entries_.size());
  entries_.push_back(Entry{std::move(nogood), sig, 1.0, false});
  index_.emplace(sig, index);
  ++live_;
  ++stats_.inserted;
  if (live_ > opt_.max_nogoods) evict_locked();
  return index;
}

void NogoodStore::bump(int index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || index >= static_cast<int>(entries_.size())) return;
  Entry& entry = entries_[static_cast<std::size_t>(index)];
  if (!entry.dead) entry.activity += 1.0;
}

void NogoodStore::decay() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) entry.activity *= opt_.activity_decay;
}

void NogoodStore::purge_transient() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.dead || entry.nogood.source != NogoodSource::kDominance) {
      continue;
    }
    kill_entry(i);
    ++stats_.purged;
  }
}

void NogoodStore::purge_non_oracle() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.dead || entry.nogood.source == NogoodSource::kOracle) continue;
    kill_entry(i);
    ++stats_.purged;
  }
}

void NogoodStore::snapshot(std::vector<std::pair<int, Nogood>>& out) const {
  out.clear();
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(static_cast<std::size_t>(live_));
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].dead) continue;
    out.emplace_back(static_cast<int>(i), entries_[i].nogood);
  }
}

int NogoodStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

NogoodStore::Stats NogoodStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void NogoodStore::kill_entry(std::size_t index) {
  Entry& entry = entries_[index];
  entry.dead = true;
  entry.nogood.ones.clear();
  entry.nogood.ones.shrink_to_fit();
  entry.nogood.zeros.clear();
  entry.nogood.zeros.shrink_to_fit();
  index_.erase(entry.signature);
  --live_;
}

void NogoodStore::evict_locked() {
  // Activity sweep: keep the top ~3/4 of the cap, oracle entries exempt.
  const int target = std::max(1, opt_.max_nogoods * 3 / 4);
  std::vector<std::pair<double, std::size_t>> victims;
  victims.reserve(static_cast<std::size_t>(live_));
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.dead || entry.nogood.source == NogoodSource::kOracle) continue;
    victims.emplace_back(entry.activity, i);
  }
  const int excess = live_ - target;
  if (excess <= 0 || victims.empty()) return;
  const std::size_t cut =
      std::min(victims.size(), static_cast<std::size_t>(excess));
  std::nth_element(victims.begin(),
                   victims.begin() + static_cast<std::ptrdiff_t>(cut - 1),
                   victims.end());
  for (std::size_t k = 0; k < cut; ++k) {
    kill_entry(victims[k].second);
    ++stats_.evicted;
  }
}

std::shared_ptr<NogoodStore> NogoodStoreRegistry::acquire(std::uint64_t key) {
  std::shared_ptr<NogoodStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = stores_[key];
    if (!slot) slot = std::make_shared<NogoodStore>(opt_);
    store = slot;
  }
  // Outside the registry lock: the purge takes the store's own mutex and
  // may do per-entry work proportional to the store size.
  store->purge_non_oracle();
  return store;
}

std::size_t NogoodStoreRegistry::families() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_.size();
}

}  // namespace archex::ilp
