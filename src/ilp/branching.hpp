// archex/ilp/branching.hpp
//
// Branch-variable selection for the B&B core (DESIGN.md §4f): pseudocost
// branching with a most-fractional fallback, replacing the static
// most-fractional rule. A variable's pseudocost is the average objective
// degradation per unit of fractional distance observed over its past
// branchings, kept separately per direction (the "impact" shape of
// impact-based CP search). Until a variable has reliable observations in
// *both* directions, it competes by fractionality only — so the first
// branchings reproduce the historical most-fractional-in-priority-class
// order, and the pseudocost scores take over as evidence accumulates.
//
// All ties — between fractionality scores and between pseudocost scores —
// resolve to the lowest variable index, which keeps deterministic runs
// reproducible across platforms (no dependence on map iteration order).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "ilp/model.hpp"

namespace archex::ilp {

/// Per-variable, per-direction pseudocost record.
struct PseudocostEntry {
  double down_sum = 0.0;
  long down_count = 0;
  double up_sum = 0.0;
  long up_count = 0;
};

/// Pseudocost statistics indexed by model variable. Shared mutable state in
/// the parallel search: the caller guards observe()/score() with a mutex.
class PseudocostTable {
 public:
  explicit PseudocostTable(int num_vars)
      : entries_(static_cast<std::size_t>(num_vars)) {}

  /// Record `per_unit` objective degradation per unit of fractional
  /// distance for one branching of `var` in the given direction.
  void observe(int var, bool up, double per_unit) {
    PseudocostEntry& e = entries_[static_cast<std::size_t>(var)];
    if (up) {
      e.up_sum += per_unit;
      ++e.up_count;
    } else {
      e.down_sum += per_unit;
      ++e.down_count;
    }
  }

  /// True once both directions have at least `threshold` observations.
  [[nodiscard]] bool reliable(int var, long threshold) const {
    const PseudocostEntry& e = entries_[static_cast<std::size_t>(var)];
    return e.down_count >= threshold && e.up_count >= threshold;
  }

  /// Product score: estimated down-degradation times estimated
  /// up-degradation at the given fractional distances. The product favours
  /// variables that move the bound in both children, which is what shrinks
  /// the tree (a one-sided mover leaves one child as hard as the parent).
  [[nodiscard]] double score(int var, double frac_down, double frac_up) const {
    const PseudocostEntry& e = entries_[static_cast<std::size_t>(var)];
    const double down =
        e.down_count > 0 ? e.down_sum / static_cast<double>(e.down_count) : 0.0;
    const double up =
        e.up_count > 0 ? e.up_sum / static_cast<double>(e.up_count) : 0.0;
    constexpr double kEps = 1e-6;
    return std::max(down * frac_down, kEps) * std::max(up * frac_up, kEps);
  }

 private:
  std::vector<PseudocostEntry> entries_;
};

struct BranchChoice {
  int var = -1;  // model variable index, -1 when x is integral within tol
  bool used_pseudocost = false;
};

/// Pick the branching variable at an LP point `x` (model variable space).
/// Candidates are the fractional integral variables of the highest branching
/// priority present. Within that class, the best pseudocost product score
/// among reliable variables wins; when no candidate is reliable, the most
/// fractional wins. Pass `pseudo == nullptr` to force the historical
/// most-fractional rule.
[[nodiscard]] inline BranchChoice select_branch_variable(
    const Model& model, const std::vector<int>& integral, double int_tol,
    const std::vector<double>& x, const PseudocostTable* pseudo,
    long reliability) {
  // Pass 1: highest priority class containing a fractional variable.
  int top_priority = std::numeric_limits<int>::min();
  bool any = false;
  for (const int j : integral) {
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = std::min(v - std::floor(v), std::ceil(v) - v);
    if (frac <= int_tol) continue;
    any = true;
    top_priority = std::max(top_priority, model.branch_priority(Var{j}));
  }
  BranchChoice choice;
  if (!any) return choice;

  // Pass 2: best candidate within the class. Strict `>` comparisons keep
  // every tie at the lowest variable index (`integral` is ascending).
  int best_frac_var = -1;
  double best_frac = 0.0;
  int best_pc_var = -1;
  double best_pc = 0.0;
  for (const int j : integral) {
    const double v = x[static_cast<std::size_t>(j)];
    const double down = v - std::floor(v);
    const double frac = std::min(down, 1.0 - down);
    if (frac <= int_tol) continue;
    if (model.branch_priority(Var{j}) != top_priority) continue;
    if (frac > best_frac) {
      best_frac = frac;
      best_frac_var = j;
    }
    if (pseudo != nullptr && pseudo->reliable(j, reliability)) {
      const double s = pseudo->score(j, down, 1.0 - down);
      if (s > best_pc) {
        best_pc = s;
        best_pc_var = j;
      }
    }
  }
  if (best_pc_var >= 0) {
    choice.var = best_pc_var;
    choice.used_pseudocost = true;
  } else {
    choice.var = best_frac_var;
  }
  return choice;
}

}  // namespace archex::ilp
