// archex/ilp/solver.hpp
//
// Solver-agnostic interface for 0/1 mixed-integer programs. Both synthesis
// algorithms in the paper (ILP-MR, Algorithm 1; ILP-AR, Algorithm 3) call
// `SolveILP(Cost, Cons)` as a black box; this interface is that box.
// Two implementations ship with the library:
//  * BranchAndBoundSolver — LP-relaxation-based branch & bound (default);
//  * BalasSolver          — LP-free implicit enumeration for pure-binary
//                           models (ablation baseline, bench_solver_ablation).
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ilp/model.hpp"
#include "lp/simplex.hpp"

namespace archex::ilp {

enum class IlpStatus {
  kOptimal,
  kInfeasible,
  kNodeLimit,
  kTimeLimit,
  kNumericFailure,
};

[[nodiscard]] std::string to_string(IlpStatus status);

/// Outcome of one ILP solve.
struct IlpResult {
  IlpStatus status = IlpStatus::kNumericFailure;
  /// Objective value of the incumbent, including the model's constant term.
  double objective = 0.0;
  /// Incumbent assignment (size == model.num_variables()); integral entries
  /// are exact integers.
  std::vector<double> x;

  // Search statistics.
  long nodes_explored = 0;
  /// Nodes discarded by bound-based pruning (LP bound could not beat the
  /// incumbent), including pool nodes pruned at steal time.
  long nodes_pruned = 0;
  /// Parallel search only: pool nodes expanded by a worker other than the
  /// one that donated them (0 for serial solves).
  long steal_count = 0;
  /// Worker count the search actually ran with (1 for serial solves).
  int threads_used = 1;
  long lp_pivots = 0;
  long lp_scratch_solves = 0;   // LPs solved from scratch (cold)
  long lp_dual_reopts = 0;      // LPs warm-started via dual simplex
  long lp_dual_fallbacks = 0;   // warm starts that fell back to scratch
  long lp_dual_limit = 0;       // ... of which: dual pivot cap
  long lp_dual_numeric = 0;     // ... of which: numeric trouble
  long lp_restore_fallbacks = 0;  // ... of which: dual feasibility lost

  // Sparse-basis machinery (see lp::SimplexEngine::Stats).
  long lp_factorizations = 0;  // basis (re)factorizations
  long lp_eta_updates = 0;     // product-form eta updates appended
  long lp_refactor_eta = 0;    // refactorizations forced by eta-file growth
  long lp_refactor_drift = 0;  // refactorizations forced by numeric drift
  long lp_max_eta_len = 0;     // longest eta file between refactorizations

  // Presolve reductions applied to the root relaxation (zeros when
  // presolve is disabled).
  long presolve_fixed_variables = 0;
  long presolve_rows_removed = 0;
  long presolve_bound_tightenings = 0;

  // Cut-and-branch layer (DESIGN.md §4f; zeros when the corresponding
  // option is off).
  long cuts_added = 0;           // cutting planes appended (root + tree)
  long cut_rounds = 0;           // separation rounds that produced cuts
  long rc_fixings = 0;           // 0/1 columns fixed by reduced cost
  long pseudocost_branches = 0;  // branchings decided by pseudocost scores

  // Conflict-driven nogood learning (DESIGN.md §4g; zeros when learning is
  // off).
  long nogoods_learned = 0;    // nogoods installed into the store this solve
  long nogood_prunings = 0;    // nodes pruned by a matching stored nogood
  long nogood_probes = 0;      // minimization LP probes spent
  long nogood_store_size = 0;  // live store entries when the solve finished

  double solve_seconds = 0.0;

  // Per-worker breakdown (size == threads_used; single entry for serial
  // solves). Used by the benches to report parallel efficiency: a skewed
  // lp-iteration histogram means the node pool starved some workers.
  std::vector<long> worker_nodes;
  std::vector<long> worker_lp_iterations;

  [[nodiscard]] bool optimal() const { return status == IlpStatus::kOptimal; }
  [[nodiscard]] bool value_bool(Var v) const {
    return x[static_cast<std::size_t>(v.id)] > 0.5;
  }
  [[nodiscard]] double value(Var v) const {
    return x[static_cast<std::size_t>(v.id)];
  }
};

/// Abstract 0/1 MILP solver.
class IlpSolver {
 public:
  virtual ~IlpSolver() = default;

  /// Solve `model` to proven optimality (or report why not).
  [[nodiscard]] virtual IlpResult solve(const Model& model) = 0;

  /// Human-readable engine name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

struct BranchAndBoundOptions {
  long max_nodes = 2'000'000;
  double time_limit_seconds = 600.0;
  /// Absolute wall-clock deadline, clamped against time_limit_seconds (the
  /// effective budget is whichever expires first). Lets a caller that runs
  /// many solves under one request-level deadline (the archex_server) hand
  /// the remaining budget to every solve without re-deriving per-solve
  /// relative limits. Unset = time_limit_seconds alone governs.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Worker threads exploring the tree. 0 (and 1) selects the serial
  /// depth-first search, preserving the historical node order and
  /// determinism exactly. With >= 2 the search runs a best-first/DFS
  /// hybrid: a lock-guarded global pool ordered by relaxation bound feeds
  /// workers that dive depth-first with their own simplex engines, donating
  /// the non-preferred branch child whenever the pool runs low (see
  /// DESIGN.md §4e).
  int threads = 0;
  /// Debugging aid for the parallel search: expand nodes strictly in the
  /// serial DFS preorder through one shared engine (workers take turns), so
  /// a threads >= 2 run reproduces the serial node ordering, incumbent
  /// sequence, statistics and solution bit-for-bit — at the price of no
  /// parallel speedup. Ignored when threads <= 1.
  bool deterministic = false;
  /// Integrality tolerance on the LP relaxation values.
  double int_tol = 1e-6;
  /// Attempt a rounding heuristic at the root to seed the incumbent.
  bool root_rounding_heuristic = true;
  /// Shrink the LP with lp::presolve() before the search (fixed-variable
  /// substitution, row elimination, 0/1 bound propagation); solutions are
  /// postsolved back to the model's variable space transparently.
  bool presolve = true;

  // ---- cut-and-branch layer (DESIGN.md §4f) --------------------------------

  /// Separate cutting planes: knapsack cover and clique cuts at the root
  /// and at shallow tree nodes (shared across parallel workers through a
  /// global cut pool), Gomory mixed-integer cuts at the root only (they
  /// depend on the root bounds). Off by default: on the synthesis
  /// encodings this repo ships, the added rows cost more in per-node LP
  /// work and disturbed warm starts than the tightened root bound buys
  /// (see the `cuts` section of BENCH_solver.json) — enable per run when
  /// a model has exploitable knapsack/conflict structure.
  bool cuts = false;
  /// Maximum root separation rounds (each round re-solves the root LP).
  int max_cut_rounds = 10;
  /// Cap on cuts accepted per separation round.
  int max_cuts_per_round = 50;
  /// Separate cover/clique cuts at tree nodes of depth <= this (they are
  /// globally valid, so tree separation is sound); < 0 restricts cut
  /// generation to the root rounds.
  int node_cut_depth = 4;
  /// Pseudocost branching: rank fractional variables of the top priority
  /// class by observed objective degradation per unit of fractionality,
  /// falling back to most-fractional until a variable has observations in
  /// both directions. Statistics are shared across parallel workers.
  bool pseudocost = true;
  /// Observations per direction before a variable's pseudocosts are trusted.
  int pseudocost_reliability = 1;
  /// Fix 0/1 columns whose root reduced cost proves the opposite bound
  /// cannot beat the incumbent, re-checked at every incumbent improvement;
  /// fixings propagate to all workers as a shared prune filter.
  bool rc_fixing = true;

  // ---- conflict-driven nogood learning (DESIGN.md §4g) ---------------------

  /// Learn 0/1 nogoods from infeasible and bound-dominated nodes: the
  /// engine's Farkas certificate (or a Lagrangian bound from the node's
  /// true reduced costs) is reduced against the branching path to a minimal
  /// partial assignment that can never be extended to an improving feasible
  /// solution, stored signature-deduped in a shared, activity-scored pool
  /// (ilp/nogood.hpp) and checked before every node LP. Deterministic mode
  /// is preserved bit-for-bit.
  bool learning = true;
  /// Discard conflicts that stay wider than this after minimization (long
  /// nogoods almost never fire again and slow every node check).
  int max_nogood_literals = 16;
  /// LP re-solves spent per infeasibility conflict probing whether a
  /// certificate-supported literal is nonetheless redundant.
  int max_nogood_probes = 4;
  /// Live-entry cap of the nogood store (lowest-activity eviction).
  int max_nogoods = 20000;

  /// Options forwarded to the underlying simplex engine (e.g. dense_basis
  /// to run the dense differential-testing oracle).
  lp::SimplexOptions lp;
};

class NogoodStore;

/// LP-based branch & bound (depth-first with best-bound pruning).
class BranchAndBoundSolver final : public IlpSolver {
 public:
  explicit BranchAndBoundSolver(BranchAndBoundOptions options = {})
      : options_(options) {}

  [[nodiscard]] IlpResult solve(const Model& model) override;
  [[nodiscard]] std::string name() const override { return "branch-and-bound"; }

  /// Share an external nogood store across solve() calls (and across solver
  /// instances). Without one, each solve uses a private store that dies with
  /// it. Persistence contract: the store may only be reused across models
  /// that *add* constraints to (never relax) an earlier one over the same
  /// variable numbering — the ILP-MR / ILP-AR synthesis loops satisfy this
  /// (learncons and counterexample rows only accumulate), so conflicts
  /// learned in iteration k keep pruning iteration k+1's tree.
  void set_nogood_store(std::shared_ptr<NogoodStore> store) {
    store_ = std::move(store);
  }

  [[nodiscard]] const BranchAndBoundOptions& options() const {
    return options_;
  }

 private:
  BranchAndBoundOptions options_;
  std::shared_ptr<NogoodStore> store_;
};

struct BalasOptions {
  long max_nodes = 50'000'000;
  double time_limit_seconds = 600.0;
};

/// Balas-style implicit enumeration for pure-binary models. No LP relaxation
/// is solved; pruning uses per-row achievable-activity intervals and the
/// additive cost bound. Exponential in the worst case — included as the
/// ablation baseline contrasted with LP-based branch & bound.
class BalasSolver final : public IlpSolver {
 public:
  explicit BalasSolver(BalasOptions options = {}) : options_(options) {}

  [[nodiscard]] IlpResult solve(const Model& model) override;
  [[nodiscard]] std::string name() const override {
    return "balas-implicit-enumeration";
  }

 private:
  BalasOptions options_;
};

}  // namespace archex::ilp
