// archex/ilp/solver.hpp
//
// Solver-agnostic interface for 0/1 mixed-integer programs. Both synthesis
// algorithms in the paper (ILP-MR, Algorithm 1; ILP-AR, Algorithm 3) call
// `SolveILP(Cost, Cons)` as a black box; this interface is that box.
// Two implementations ship with the library:
//  * BranchAndBoundSolver — LP-relaxation-based branch & bound (default);
//  * BalasSolver          — LP-free implicit enumeration for pure-binary
//                           models (ablation baseline, bench_solver_ablation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ilp/model.hpp"
#include "lp/simplex.hpp"

namespace archex::ilp {

enum class IlpStatus {
  kOptimal,
  kInfeasible,
  kNodeLimit,
  kTimeLimit,
  kNumericFailure,
};

[[nodiscard]] std::string to_string(IlpStatus status);

/// Outcome of one ILP solve.
struct IlpResult {
  IlpStatus status = IlpStatus::kNumericFailure;
  /// Objective value of the incumbent, including the model's constant term.
  double objective = 0.0;
  /// Incumbent assignment (size == model.num_variables()); integral entries
  /// are exact integers.
  std::vector<double> x;

  // Search statistics.
  long nodes_explored = 0;
  long lp_pivots = 0;
  long lp_scratch_solves = 0;   // LPs solved from scratch (cold)
  long lp_dual_reopts = 0;      // LPs warm-started via dual simplex
  long lp_dual_fallbacks = 0;   // warm starts that fell back to scratch
  long lp_dual_limit = 0;       // ... of which: dual pivot cap
  long lp_dual_numeric = 0;     // ... of which: numeric trouble
  long lp_restore_fallbacks = 0;  // ... of which: dual feasibility lost

  // Sparse-basis machinery (see lp::SimplexEngine::Stats).
  long lp_factorizations = 0;  // basis (re)factorizations
  long lp_eta_updates = 0;     // product-form eta updates appended
  long lp_refactor_eta = 0;    // refactorizations forced by eta-file growth
  long lp_refactor_drift = 0;  // refactorizations forced by numeric drift
  long lp_max_eta_len = 0;     // longest eta file between refactorizations

  // Presolve reductions applied to the root relaxation (zeros when
  // presolve is disabled).
  long presolve_fixed_variables = 0;
  long presolve_rows_removed = 0;
  long presolve_bound_tightenings = 0;

  double solve_seconds = 0.0;

  [[nodiscard]] bool optimal() const { return status == IlpStatus::kOptimal; }
  [[nodiscard]] bool value_bool(Var v) const {
    return x[static_cast<std::size_t>(v.id)] > 0.5;
  }
  [[nodiscard]] double value(Var v) const {
    return x[static_cast<std::size_t>(v.id)];
  }
};

/// Abstract 0/1 MILP solver.
class IlpSolver {
 public:
  virtual ~IlpSolver() = default;

  /// Solve `model` to proven optimality (or report why not).
  [[nodiscard]] virtual IlpResult solve(const Model& model) = 0;

  /// Human-readable engine name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

struct BranchAndBoundOptions {
  long max_nodes = 2'000'000;
  double time_limit_seconds = 600.0;
  /// Integrality tolerance on the LP relaxation values.
  double int_tol = 1e-6;
  /// Attempt a rounding heuristic at the root to seed the incumbent.
  bool root_rounding_heuristic = true;
  /// Shrink the LP with lp::presolve() before the search (fixed-variable
  /// substitution, row elimination, 0/1 bound propagation); solutions are
  /// postsolved back to the model's variable space transparently.
  bool presolve = true;
  /// Options forwarded to the underlying simplex engine (e.g. dense_basis
  /// to run the dense differential-testing oracle).
  lp::SimplexOptions lp;
};

/// LP-based branch & bound (depth-first with best-bound pruning).
class BranchAndBoundSolver final : public IlpSolver {
 public:
  explicit BranchAndBoundSolver(BranchAndBoundOptions options = {})
      : options_(options) {}

  [[nodiscard]] IlpResult solve(const Model& model) override;
  [[nodiscard]] std::string name() const override { return "branch-and-bound"; }

 private:
  BranchAndBoundOptions options_;
};

struct BalasOptions {
  long max_nodes = 50'000'000;
  double time_limit_seconds = 600.0;
};

/// Balas-style implicit enumeration for pure-binary models. No LP relaxation
/// is solved; pruning uses per-row achievable-activity intervals and the
/// additive cost bound. Exponential in the worst case — included as the
/// ablation baseline contrasted with LP-based branch & bound.
class BalasSolver final : public IlpSolver {
 public:
  explicit BalasSolver(BalasOptions options = {}) : options_(options) {}

  [[nodiscard]] IlpResult solve(const Model& model) override;
  [[nodiscard]] std::string name() const override {
    return "balas-implicit-enumeration";
  }

 private:
  BalasOptions options_;
};

}  // namespace archex::ilp
