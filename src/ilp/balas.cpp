// Balas-style implicit enumeration for pure-binary models.
//
// No LP relaxation is solved. The search fixes variables 0/1 depth-first and
// prunes with two classic tests:
//  * cost bound — fixed cost plus the sum of negative free costs cannot
//    already reach the incumbent;
//  * row intervals — for every row, the best-case achievable activity given
//    the fixed variables must intersect [lo, up].
// Serves as the LP-free ablation baseline (bench_solver_ablation): on the
// loosely-constrained architecture-synthesis models its bound is much weaker
// than the LP relaxation, which is exactly the point of the comparison.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <vector>

#include "ilp/solver.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace archex::ilp {

namespace {

class BalasSearch {
 public:
  BalasSearch(const Model& model, const BalasOptions& options)
      : model_(model), opt_(options) {
    ARCHEX_REQUIRE(model.pure_binary(),
                   "BalasSolver handles pure-binary models only");
    n_ = model.num_variables();
    build_tables();
  }

  IlpResult run() {
    watch_.start();
    // Same wall-clock discipline as branch & bound: a precomputed deadline
    // polled inside the enumeration loop, so the abort lands within a few
    // hundred nodes of the limit instead of whenever a coarse check next
    // fires.
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(opt_.time_limit_seconds));
    value_.assign(static_cast<std::size_t>(n_), 0);
    fixed_.assign(static_cast<std::size_t>(n_), false);
    dive(0, 0.0);

    IlpResult out;
    out.nodes_explored = nodes_;
    out.solve_seconds = watch_.elapsed_seconds();
    if (have_incumbent_) {
      out.status = aborted_ ? abort_status_ : IlpStatus::kOptimal;
      out.objective = incumbent_obj_ + model_.objective_constant();
      out.x.assign(incumbent_.begin(), incumbent_.end());
    } else {
      out.status = aborted_ ? abort_status_ : IlpStatus::kInfeasible;
    }
    return out;
  }

 private:
  void build_tables() {
    cost_.assign(static_cast<std::size_t>(n_), 0.0);
    for (const lp::Term& t : model_.objective().terms()) {
      cost_[static_cast<std::size_t>(t.var)] += t.coef;
    }

    // Static variable order: largest absolute cost first, so that the cost
    // bound bites early; ties by index for determinism.
    order_.resize(static_cast<std::size_t>(n_));
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
      return std::abs(cost_[static_cast<std::size_t>(a)]) >
             std::abs(cost_[static_cast<std::size_t>(b)]);
    });

    // Domains: a binary narrowed by Model::fix (or any bound change) must
    // not be enumerated on both sides — bounds are constraints just like
    // rows, and is_feasible() checks them.
    allowed0_.resize(static_cast<std::size_t>(n_));
    allowed1_.resize(static_cast<std::size_t>(n_));
    for (int j = 0; j < n_; ++j) {
      allowed0_[static_cast<std::size_t>(j)] =
          model_.lower_bound(Var{j}) <= 0.5;
      allowed1_[static_cast<std::size_t>(j)] =
          model_.upper_bound(Var{j}) >= 0.5;
    }

    // Row tables: per-row term list and the running achievable interval.
    const int m = model_.num_rows();
    row_lo_.resize(static_cast<std::size_t>(m));
    row_up_.resize(static_cast<std::size_t>(m));
    row_min_.assign(static_cast<std::size_t>(m), 0.0);
    row_max_.assign(static_cast<std::size_t>(m), 0.0);
    var_rows_.assign(static_cast<std::size_t>(n_), {});
    for (int i = 0; i < m; ++i) {
      const auto& row = model_.row(i);
      row_lo_[static_cast<std::size_t>(i)] = row.lo;
      row_up_[static_cast<std::size_t>(i)] = row.up;
      for (const lp::Term& t : row.expr.terms()) {
        var_rows_[static_cast<std::size_t>(t.var)].push_back({i, t.coef});
        if (t.coef > 0.0) row_max_[static_cast<std::size_t>(i)] += t.coef;
        else row_min_[static_cast<std::size_t>(i)] += t.coef;
      }
    }

    // Suffix sums of negative costs in search order: the best possible
    // objective improvement obtainable from the still-free variables.
    neg_suffix_.assign(static_cast<std::size_t>(n_) + 1, 0.0);
    for (int pos = n_ - 1; pos >= 0; --pos) {
      const double c = cost_[static_cast<std::size_t>(order_[static_cast<std::size_t>(pos)])];
      neg_suffix_[static_cast<std::size_t>(pos)] =
          neg_suffix_[static_cast<std::size_t>(pos) + 1] + std::min(0.0, c);
    }
  }

  void dive(int pos, double fixed_cost) {
    if (aborted_) return;
    if (nodes_ >= opt_.max_nodes) {
      aborted_ = true;
      abort_status_ = IlpStatus::kNodeLimit;
      return;
    }
    if ((nodes_ & 0xff) == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      aborted_ = true;
      abort_status_ = IlpStatus::kTimeLimit;
      return;
    }
    ++nodes_;

    // Cost bound.
    const double bound = fixed_cost + neg_suffix_[static_cast<std::size_t>(pos)];
    if (have_incumbent_ && bound >= incumbent_obj_ - 1e-9) return;

    // Row interval test.
    for (std::size_t i = 0; i < row_min_.size(); ++i) {
      if (row_max_[i] < row_lo_[i] - 1e-9 || row_min_[i] > row_up_[i] + 1e-9) {
        return;
      }
    }

    if (pos == n_) {
      // Every variable fixed: row intervals are tight, so feasibility holds.
      incumbent_.assign(value_.begin(), value_.end());
      incumbent_obj_ = fixed_cost;
      have_incumbent_ = true;
      return;
    }

    const int j = order_[static_cast<std::size_t>(pos)];
    const double c = cost_[static_cast<std::size_t>(j)];
    // Try the cheaper value first.
    const int first = (c >= 0.0) ? 0 : 1;
    for (int side = 0; side < 2; ++side) {
      const int v = (side == 0) ? first : 1 - first;
      if (v == 0 ? !allowed0_[static_cast<std::size_t>(j)]
                 : !allowed1_[static_cast<std::size_t>(j)]) {
        continue;  // outside the variable's (possibly fixed) domain
      }
      assign(j, v);
      dive(pos + 1, fixed_cost + (v ? c : 0.0));
      unassign(j, v);
      if (aborted_) return;
    }
  }

  /// Fix variable j to v: collapse its contribution in every row interval.
  void assign(int j, int v) {
    value_[static_cast<std::size_t>(j)] = static_cast<signed char>(v);
    for (const auto& [row, coef] : var_rows_[static_cast<std::size_t>(j)]) {
      const auto r = static_cast<std::size_t>(row);
      if (coef > 0.0) {
        if (v == 1) row_min_[r] += coef;   // contribution now mandatory
        else row_max_[r] -= coef;          // contribution now impossible
      } else {
        if (v == 1) row_max_[r] += coef;
        else row_min_[r] -= coef;
      }
    }
  }

  void unassign(int j, int v) {
    for (const auto& [row, coef] : var_rows_[static_cast<std::size_t>(j)]) {
      const auto r = static_cast<std::size_t>(row);
      if (coef > 0.0) {
        if (v == 1) row_min_[r] -= coef;
        else row_max_[r] += coef;
      } else {
        if (v == 1) row_max_[r] -= coef;
        else row_min_[r] += coef;
      }
    }
  }

  const Model& model_;
  BalasOptions opt_;
  int n_ = 0;

  std::vector<double> cost_;
  std::vector<int> order_;
  std::vector<double> neg_suffix_;
  // Per-variable domain after bound changes (std::vector<bool> avoided on
  // the hot path).
  std::vector<char> allowed0_, allowed1_;

  std::vector<double> row_lo_, row_up_, row_min_, row_max_;
  std::vector<std::vector<std::pair<int, double>>> var_rows_;

  std::vector<signed char> value_;
  std::vector<bool> fixed_;
  std::vector<signed char> incumbent_;
  double incumbent_obj_ = 0.0;
  bool have_incumbent_ = false;

  bool aborted_ = false;
  IlpStatus abort_status_ = IlpStatus::kNumericFailure;
  long nodes_ = 0;
  Stopwatch watch_;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace

IlpResult BalasSolver::solve(const Model& model) {
  BalasSearch search(model, options_);
  return search.run();
}

}  // namespace archex::ilp
