#include "core/arch_ilp.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace archex::core {

using ilp::LinExpr;
using ilp::Var;

ArchitectureIlp::ArchitectureIlp(const Template& tmpl) : tmpl_(&tmpl) {
  ARCHEX_REQUIRE(tmpl.num_components() > 0, "template has no components");

  // Edge decision variables. They get the top branching priority: every
  // auxiliary variable (δ, switches, reach indicators, x_ijk) is functionally
  // determined once the edge set is integral.
  edge_vars_.reserve(static_cast<std::size_t>(tmpl.num_candidate_edges()));
  for (int k = 0; k < tmpl.num_candidate_edges(); ++k) {
    const CandidateEdge& e = tmpl.candidate_edge(k);
    const ilp::Var var = model_.add_binary(
        "e_" + tmpl.component(e.from).name + "_" + tmpl.component(e.to).name);
    model_.set_branch_priority(var, 10);
    edge_vars_.push_back(var);
  }

  // Incident-edge lists per node.
  std::vector<std::vector<Var>> incident(
      static_cast<std::size_t>(tmpl.num_components()));
  for (int k = 0; k < tmpl.num_candidate_edges(); ++k) {
    const CandidateEdge& e = tmpl.candidate_edge(k);
    incident[static_cast<std::size_t>(e.from)].push_back(edge_var(k));
    incident[static_cast<std::size_t>(e.to)].push_back(edge_var(k));
  }

  // δ_v = OR(incident edges), linearized exactly in both directions so that
  // power-adequacy rules cannot count unconnected components.
  delta_.reserve(static_cast<std::size_t>(tmpl.num_components()));
  for (graph::NodeId v = 0; v < tmpl.num_components(); ++v) {
    const Var d = model_.add_binary("delta_" + tmpl.component(v).name);
    delta_.push_back(d);
    LinExpr sum;
    for (Var e : incident[static_cast<std::size_t>(v)]) {
      model_.add_row(LinExpr(d) - LinExpr(e) >= 0.0);  // δ >= e
      sum += e;
    }
    if (incident[static_cast<std::size_t>(v)].empty()) {
      model_.fix(d, 0.0);  // isolated template node can never be used
    } else {
      model_.add_row(LinExpr(d) - sum <= 0.0);  // δ <= Σ e
    }
  }

  // Switch (contactor) variables: one per unordered candidate pair.
  for (int k = 0; k < tmpl.num_candidate_edges(); ++k) {
    const CandidateEdge& e = tmpl.candidate_edge(k);
    const auto pair = std::minmax(e.from, e.to);
    auto [it, inserted] = switch_vars_.try_emplace(
        {pair.first, pair.second}, Var{});
    if (inserted) {
      it->second = model_.add_binary("s_" + std::to_string(pair.first) + "_" +
                                     std::to_string(pair.second));
    }
    model_.add_row(LinExpr(it->second) - LinExpr(edge_var(k)) >= 0.0);
  }

  // Objective (1): Σ δ_i c_i + Σ (e_ij ∨ e_ji) c̃_ij.
  LinExpr objective;
  for (graph::NodeId v = 0; v < tmpl.num_components(); ++v) {
    objective.add_term(delta_[static_cast<std::size_t>(v)],
                       tmpl.component(v).cost);
  }
  for (const auto& [pair, svar] : switch_vars_) {
    // Symmetry of c̃ is validated at template construction; either direction
    // gives the same cost.
    double switch_cost = 0.0;
    if (const auto k = tmpl.edge_index(pair.first, pair.second)) {
      switch_cost = tmpl.candidate_edge(*k).switch_cost;
    } else if (const auto r = tmpl.edge_index(pair.second, pair.first)) {
      switch_cost = tmpl.candidate_edge(*r).switch_cost;
    }
    objective.add_term(svar, switch_cost);
  }
  model_.set_objective(objective);
}

Var ArchitectureIlp::edge_var(int index) const {
  ARCHEX_REQUIRE(index >= 0 && index < tmpl_->num_candidate_edges(),
                 "edge index out of range");
  return edge_vars_[static_cast<std::size_t>(index)];
}

std::optional<Var> ArchitectureIlp::edge_var(graph::NodeId from,
                                             graph::NodeId to) const {
  if (const auto k = tmpl_->edge_index(from, to)) return edge_var(*k);
  return std::nullopt;
}

Var ArchitectureIlp::node_active(graph::NodeId v) const {
  ARCHEX_REQUIRE(v >= 0 && v < tmpl_->num_components(),
                 "component out of range");
  return delta_[static_cast<std::size_t>(v)];
}

Var ArchitectureIlp::constant(bool value) {
  auto& slot = value ? const_one_ : const_zero_;
  if (!slot) {
    const Var v = model_.add_binary(value ? "const_one" : "const_zero");
    model_.fix(v, value ? 1.0 : 0.0);
    slot = v;
  }
  return *slot;
}

void ArchitectureIlp::add_out_degree_rule(
    graph::NodeId from, const std::vector<graph::NodeId>& to_set, int lo,
    int hi) {
  ARCHEX_REQUIRE(lo <= hi, "degree bounds must satisfy lo <= hi");
  LinExpr count;
  for (graph::NodeId to : to_set) {
    if (const auto e = edge_var(from, to)) count += *e;
  }
  model_.add_row({count, static_cast<double>(lo), static_cast<double>(hi)},
                 "outdeg_" + tmpl_->component(from).name);
}

void ArchitectureIlp::add_in_degree_rule(
    graph::NodeId to, const std::vector<graph::NodeId>& from_set, int lo,
    int hi) {
  ARCHEX_REQUIRE(lo <= hi, "degree bounds must satisfy lo <= hi");
  LinExpr count;
  for (graph::NodeId from : from_set) {
    if (const auto e = edge_var(from, to)) count += *e;
  }
  model_.add_row({count, static_cast<double>(lo), static_cast<double>(hi)},
                 "indeg_" + tmpl_->component(to).name);
}

void ArchitectureIlp::add_conditional_successor_rule(
    const std::vector<graph::NodeId>& triggers, graph::NodeId d,
    const std::vector<graph::NodeId>& required) {
  LinExpr feeders;
  int num_feeders = 0;
  for (graph::NodeId b : required) {
    if (const auto e = edge_var(d, b)) {
      feeders += *e;
      ++num_feeders;
    }
  }
  for (graph::NodeId l : triggers) {
    const auto trigger = edge_var(l, d);
    if (!trigger) continue;
    // e_ld <= Σ_b e_db: selecting the trigger forces at least one feeder
    // (exactly the linearization of OR(triggers) <= OR(required), eq. 3).
    LinExpr row = feeders;
    row -= LinExpr(*trigger);
    model_.add_row(std::move(row) >= 0.0,
                   "cond_" + tmpl_->component(d).name);
    if (num_feeders == 0) {
      // No candidate feeder exists: the trigger is simply forbidden.
      model_.fix(*trigger, 0.0);
    }
  }
}

void ArchitectureIlp::add_conditional_predecessor_rule(
    const std::vector<graph::NodeId>& targets, graph::NodeId d,
    const std::vector<graph::NodeId>& required_preds) {
  LinExpr feeders;
  int num_feeders = 0;
  for (graph::NodeId b : required_preds) {
    if (const auto e = edge_var(b, d)) {
      feeders += *e;
      ++num_feeders;
    }
  }
  for (graph::NodeId t : targets) {
    const auto trigger = edge_var(d, t);
    if (!trigger) continue;
    LinExpr row = feeders;
    row -= LinExpr(*trigger);
    model_.add_row(std::move(row) >= 0.0,
                   "condp_" + tmpl_->component(d).name);
    if (num_feeders == 0) model_.fix(*trigger, 0.0);
  }
}

void ArchitectureIlp::add_balance_rule(graph::NodeId d) {
  LinExpr balance;
  bool has_demand = false;
  for (int k = 0; k < tmpl_->num_candidate_edges(); ++k) {
    const CandidateEdge& e = tmpl_->candidate_edge(k);
    if (e.to == d) {
      balance.add_term(edge_var(k), tmpl_->component(e.from).power_supply);
    } else if (e.from == d) {
      const double demand = tmpl_->component(e.to).power_demand;
      if (demand > 0.0) has_demand = true;
      balance.add_term(edge_var(k), -demand);
    }
  }
  if (!has_demand) return;  // nothing to balance
  model_.add_row(std::move(balance) >= 0.0,
                 "balance_" + tmpl_->component(d).name);
}

void ArchitectureIlp::add_global_power_adequacy() {
  LinExpr supply;
  for (graph::NodeId s : tmpl_->sources()) {
    supply.add_term(node_active(s), tmpl_->component(s).power_supply);
  }
  double total_demand = 0.0;
  for (graph::NodeId sink : tmpl_->sinks()) {
    total_demand += tmpl_->component(sink).power_demand;
  }
  model_.add_row(std::move(supply) >= total_demand, "global_adequacy");
}

void ArchitectureIlp::require_all_sinks_fed() {
  std::vector<graph::NodeId> all_nodes(
      static_cast<std::size_t>(tmpl_->num_components()));
  for (graph::NodeId v = 0; v < tmpl_->num_components(); ++v) {
    all_nodes[static_cast<std::size_t>(v)] = v;
  }
  for (graph::NodeId sink : tmpl_->sinks()) {
    add_in_degree_rule(sink, all_nodes, 1, tmpl_->num_components());
  }
}

Configuration ArchitectureIlp::extract(const ilp::IlpResult& result) const {
  ARCHEX_REQUIRE(!result.x.empty(),
                 "cannot extract from a result without an assignment");
  std::vector<bool> selected(
      static_cast<std::size_t>(tmpl_->num_candidate_edges()));
  for (int k = 0; k < tmpl_->num_candidate_edges(); ++k) {
    selected[static_cast<std::size_t>(k)] = result.value_bool(edge_var(k));
  }
  return Configuration(*tmpl_, std::move(selected));
}

}  // namespace archex::core
