#include "core/flow_encoder.hpp"

#include <string>

#include "support/check.hpp"

namespace archex::core {

using graph::NodeId;
using graph::TypeId;
using ilp::LinExpr;
using ilp::Var;

FlowEncoder::FlowEncoder(ArchitectureIlp& ilp)
    : ilp_(ilp), tmpl_(ilp.arch_template()), part_(tmpl_.partition()) {}

FlowEncoder::Commodity& FlowEncoder::commodity(NodeId sink, TypeId type) {
  const auto key = std::make_pair(sink, type);
  if (const auto it = commodities_.find(key); it != commodities_.end()) {
    return it->second;
  }

  Commodity com;
  const auto cap = static_cast<double>(part_.members(type).size());
  const std::string tag =
      "f_s" + std::to_string(sink) + "_t" + std::to_string(type);

  // Only edges that can lie on a member -> sink walk carry this commodity:
  // the head must reach the sink and the tail must be reachable from some
  // member (computed on the candidate graph). On a layered template this
  // drops most rows — e.g. edges into *other* sinks can never matter.
  const graph::Digraph candidates = tmpl_.candidate_graph();
  const std::vector<bool> reaches_sink = candidates.reaching(sink);
  std::vector<bool> from_member(
      static_cast<std::size_t>(tmpl_.num_components()), false);
  for (NodeId w : part_.members(type)) {
    const auto reach = candidates.reachable_from(w);
    for (std::size_t v = 0; v < reach.size(); ++v) {
      if (reach[v]) from_member[v] = true;
    }
  }
  auto relevant = [&](const CandidateEdge& e) {
    return from_member[static_cast<std::size_t>(e.from)] &&
           reaches_sink[static_cast<std::size_t>(e.to)];
  };

  // Flow variables with the selection coupling f <= cap * e.
  com.edge_flow.assign(
      static_cast<std::size_t>(tmpl_.num_candidate_edges()), Var{});
  for (int k = 0; k < tmpl_.num_candidate_edges(); ++k) {
    if (!relevant(tmpl_.candidate_edge(k))) continue;
    const Var f = ilp_.model().add_continuous(0.0, cap, tag);
    com.edge_flow[static_cast<std::size_t>(k)] = f;
    LinExpr coupling(f);
    coupling.add_term(ilp_.edge_var(k), -cap);
    ilp_.model().add_row(std::move(coupling) <= 0.0, tag + "/cap");
    ++flow_vars_;
  }

  // Per-node balance: members inject their supply (a continuous [0,1]
  // variable), relays conserve, the sink absorbs.
  std::vector<LinExpr> balance(
      static_cast<std::size_t>(tmpl_.num_components()));
  for (int k = 0; k < tmpl_.num_candidate_edges(); ++k) {
    const Var f = com.edge_flow[static_cast<std::size_t>(k)];
    if (!f.valid()) continue;
    const CandidateEdge& e = tmpl_.candidate_edge(k);
    balance[static_cast<std::size_t>(e.from)] += f;  // outflow
    balance[static_cast<std::size_t>(e.to)] -= f;    // inflow
  }
  com.sink_inflow = -balance[static_cast<std::size_t>(sink)];

  for (NodeId v = 0; v < tmpl_.num_components(); ++v) {
    if (v == sink) continue;
    LinExpr row = balance[static_cast<std::size_t>(v)];
    if (part_.type_of(v) == type) {
      if (row.empty()) continue;  // member with no usable edges
      // outflow - inflow = supply in [0, 1].
      const Var supply = ilp_.model().add_continuous(0.0, 1.0, tag + "/sup");
      row.add_term(supply, -1.0);
      ilp_.model().add_row(std::move(row) == 0.0, tag + "/bal");
    } else {
      if (row.empty()) continue;  // node not on any member->sink walk
      ilp_.model().add_row(std::move(row) == 0.0, tag + "/bal");
    }
  }

  return commodities_.emplace(key, std::move(com)).first->second;
}

void FlowEncoder::require_connected_members(NodeId sink, TypeId type,
                                            int target) {
  ARCHEX_REQUIRE(sink >= 0 && sink < tmpl_.num_components(),
                 "sink out of range");
  ARCHEX_REQUIRE(type >= 0 && type < part_.num_types(), "type out of range");
  ARCHEX_REQUIRE(target >= 1, "target must be at least 1");
  ARCHEX_REQUIRE(
      target <= static_cast<int>(part_.members(type).size()),
      "target exceeds the number of members of the type");
  Commodity& com = commodity(sink, type);
  LinExpr inflow = com.sink_inflow;
  ilp_.model().add_row(std::move(inflow) >= static_cast<double>(target),
                       "connmembers_s" + std::to_string(sink) + "_t" +
                           std::to_string(type) + "_k" +
                           std::to_string(target));
}

}  // namespace archex::core
