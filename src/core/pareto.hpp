// archex/core/pareto.hpp
//
// Cost/reliability trade-off exploration: enumerate the Pareto frontier of
// (cost, failure probability) attainable from a template, by sweeping the
// reliability requirement with repeated ILP-AR syntheses. Each step
// tightens r* just below the previously *achieved* estimate r̃, so every
// iteration yields a strictly more reliable (and at-least-as-expensive)
// architecture, until the template is exhausted (UNFEASIBLE).
//
// This materializes the trade-off that Fig. 3 of the paper samples at three
// points, as a reusable library feature.
#pragma once

#include <functional>
#include <vector>

#include "core/arch_template.hpp"
#include "core/configuration.hpp"
#include "core/ilp_ar.hpp"
#include "core/synthesis_status.hpp"
#include "ilp/solver.hpp"

namespace archex::core {

struct ParetoPoint {
  double target = 0.0;          // the r* used for this step
  double cost = 0.0;            // eq.-(1) cost of the optimal architecture
  double approx_failure = 0.0;  // r̃ achieved (algebra)
  double exact_failure = 0.0;   // exact r of the architecture
  Configuration configuration;
};

struct ParetoOptions {
  /// Starting requirement (loose); the sweep tightens from here.
  double initial_target = 1e-2;
  /// Multiplicative step applied to the achieved r̃ to form the next,
  /// strictly tighter requirement (must be in (0, 1)).
  double tighten_factor = 0.5;
  /// Hard cap on sweep steps.
  int max_points = 16;
  /// Forwarded to each ILP-AR run.
  bool accept_incumbent = false;
  /// Reliability-evaluation cache shared by every sweep point. Null still
  /// shares one cache *across* the sweep's own steps (adjacent points differ
  /// by a few edges, so their factoring subproblems overlap heavily); pass a
  /// cache to also retain it across sweeps.
  rel::EvalCache* cache = nullptr;
  /// Optional worker pool forwarded to each ILP-AR run.
  support::ThreadPool* pool = nullptr;
  /// Exact analyzer used to score each sweep point (forwarded to ILP-AR).
  rel::ExactMethod method = rel::ExactMethod::kFactoring;
  /// Absolute deadline forwarded to each ILP-AR run's exact evaluation.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

struct ParetoFrontier {
  std::vector<ParetoPoint> points;  // ordered from least to most reliable
  /// Status of the step that ended the sweep (kUnfeasible when the template
  /// was exhausted — the expected terminal state).
  SynthesisStatus terminal_status = SynthesisStatus::kUnfeasible;
  /// True when the sweep ended because tightening stalled: a step achieved
  /// an r̃ no better than the previous point's. The stalled architecture is
  /// dominated (no cheaper, no more reliable), so it is *not* added to
  /// `points`; its requirement and estimate are recorded here instead.
  bool tightening_stalled = false;
  double stalled_target = 0.0;          // the r* of the stalled step
  double stalled_approx_failure = 0.0;  // the r̃ it achieved

  // Solver effort aggregated over every sweep step (including the terminal
  // one), for the benches' parallel-efficiency reporting.
  long solver_nodes = 0;
  long solver_steals = 0;
  long solver_cuts_added = 0;
  long solver_rc_fixings = 0;
  long solver_pseudocost_branches = 0;
  long solver_nogoods_learned = 0;
  long solver_nogood_prunings = 0;
};

/// Sweep the frontier. `make_base_ilp` must produce a fresh base ILP
/// (interconnection + power rules) over the same template on every call.
/// Lifetime: the returned configurations reference that template — it must
/// outlive the frontier object.
[[nodiscard]] ParetoFrontier sweep_pareto_frontier(
    const std::function<ArchitectureIlp()>& make_base_ilp,
    ilp::IlpSolver& solver, const ParetoOptions& options = {});

}  // namespace archex::core
