// archex/core/arch_template.hpp
//
// The architecture template T of Section II: a fixed set of components
// (nodes) drawn from a library, plus the *candidate* interconnections the
// synthesis may select. An assignment over the candidate-edge Booleans is a
// configuration; the optimization picks the assignment minimizing eq. (1)
// under interconnection and reliability requirements.
//
// Conventions (following the paper):
//  * components carry a type; type 0 (Π_1) holds the sources and the last
//    type (Π_n) holds the sinks of every functional link;
//  * every candidate edge may carry a switch (contactor) cost c̃_ij, charged
//    once per unordered pair via (e_ij ∨ e_ji) in the objective;
//  * an edge between two components of the same type is the Section-V
//    shorthand for redundant (parallel) components.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"

namespace archex::core {

/// One component instance in the template, with its library attributes.
struct Component {
  std::string name;
  graph::TypeId type = 0;
  /// Instantiation cost c_i (eq. 1); must be non-negative.
  double cost = 0.0;
  /// Self-failure probability p_i in [0, 1].
  double failure_prob = 0.0;
  /// Terminal variable w as a *predecessor* in eq. (4): deliverable power.
  double power_supply = 0.0;
  /// Terminal variable w as a *successor* in eq. (4): drawn power.
  double power_demand = 0.0;
};

/// One selectable interconnection with its switch (contactor) cost.
struct CandidateEdge {
  graph::NodeId from = -1;
  graph::NodeId to = -1;
  double switch_cost = 0.0;
};

class Template {
 public:
  /// Add a component; returns its node id. Components must be added so that
  /// every used type in [0, max-type] ends up non-empty (partition rule).
  graph::NodeId add_component(Component component);

  /// Declare a candidate edge from -> to. A reverse candidate between the
  /// same pair must carry the same switch cost (c̃ is symmetric in eq. 1).
  int add_candidate_edge(graph::NodeId from, graph::NodeId to,
                         double switch_cost);

  [[nodiscard]] int num_components() const {
    return static_cast<int>(components_.size());
  }
  [[nodiscard]] int num_candidate_edges() const {
    return static_cast<int>(edges_.size());
  }

  [[nodiscard]] const Component& component(graph::NodeId v) const;
  [[nodiscard]] const std::vector<Component>& components() const {
    return components_;
  }
  [[nodiscard]] const CandidateEdge& candidate_edge(int index) const;
  [[nodiscard]] const std::vector<CandidateEdge>& candidate_edges() const {
    return edges_;
  }

  /// Index of the candidate edge from -> to, if declared.
  [[nodiscard]] std::optional<int> edge_index(graph::NodeId from,
                                              graph::NodeId to) const;

  /// Node partition by component type (validates non-empty subsets).
  [[nodiscard]] graph::Partition partition() const;

  /// Sources: members of type 0 (Π_1).
  [[nodiscard]] std::vector<graph::NodeId> sources() const;
  /// Sinks: members of the last type (Π_n).
  [[nodiscard]] std::vector<graph::NodeId> sinks() const;
  [[nodiscard]] graph::TypeId num_types() const;

  /// Digraph with every candidate edge present (the template's superset
  /// structure, used for static pruning of walk-indicator encodings).
  [[nodiscard]] graph::Digraph candidate_graph() const;

  /// Per-node failure probabilities, index-aligned with components.
  [[nodiscard]] std::vector<double> node_failure_probs() const;

  /// Per-type failure probability (types must be homogeneous; validated).
  [[nodiscard]] std::vector<double> type_failure_probs() const;

  /// Labels for DOT export.
  [[nodiscard]] std::vector<std::string> node_labels() const;

 private:
  std::vector<Component> components_;
  std::vector<CandidateEdge> edges_;
};

}  // namespace archex::core
