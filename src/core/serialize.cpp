#include "core/serialize.hpp"

#include "support/check.hpp"
#include "support/json.hpp"

namespace archex::core {

namespace {

constexpr int kVersion = 1;

void check_header(const json::Value& doc, const std::string& format) {
  ARCHEX_REQUIRE(doc.at("format").as_string() == format,
                 "unexpected document format");
  ARCHEX_REQUIRE(doc.at("version").as_int() == kVersion,
                 "unsupported document version");
}

}  // namespace

std::string to_json(const Template& tmpl) {
  json::Array components;
  for (const Component& c : tmpl.components()) {
    components.push_back(json::Object{
        {"name", c.name},
        {"type", c.type},
        {"cost", c.cost},
        {"failure_prob", c.failure_prob},
        {"power_supply", c.power_supply},
        {"power_demand", c.power_demand},
    });
  }
  json::Array edges;
  for (const CandidateEdge& e : tmpl.candidate_edges()) {
    edges.push_back(json::Object{
        {"from", e.from},
        {"to", e.to},
        {"switch_cost", e.switch_cost},
    });
  }
  const json::Value doc = json::Object{
      {"format", "archex-template"},
      {"version", kVersion},
      {"components", std::move(components)},
      {"candidate_edges", std::move(edges)},
  };
  return json::dump(doc, 2);
}

Template template_from_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  check_header(doc, "archex-template");

  Template tmpl;
  for (const json::Value& entry : doc.at("components").as_array()) {
    Component c;
    c.name = entry.at("name").as_string();
    c.type = entry.at("type").as_int();
    c.cost = entry.at("cost").as_number();
    c.failure_prob = entry.at("failure_prob").as_number();
    c.power_supply = entry.get("power_supply", json::Value(0.0)).as_number();
    c.power_demand = entry.get("power_demand", json::Value(0.0)).as_number();
    tmpl.add_component(std::move(c));
  }
  for (const json::Value& entry : doc.at("candidate_edges").as_array()) {
    tmpl.add_candidate_edge(entry.at("from").as_int(),
                            entry.at("to").as_int(),
                            entry.at("switch_cost").as_number());
  }
  // Surface structural problems (empty types etc.) at load time.
  (void)tmpl.partition();
  return tmpl;
}

std::string to_json(const Configuration& config) {
  json::Array selected;
  const Template& tmpl = config.architecture_template();
  for (int k = 0; k < tmpl.num_candidate_edges(); ++k) {
    if (config.edge_selected(k)) selected.push_back(k);
  }
  const json::Value doc = json::Object{
      {"format", "archex-configuration"},
      {"version", kVersion},
      {"template_components", tmpl.num_components()},
      {"template_candidate_edges", tmpl.num_candidate_edges()},
      {"selected_edges", std::move(selected)},
  };
  return json::dump(doc, 2);
}

Configuration configuration_from_json(const Template& tmpl,
                                      const std::string& text) {
  const json::Value doc = json::parse(text);
  check_header(doc, "archex-configuration");
  ARCHEX_REQUIRE(
      doc.at("template_components").as_int() == tmpl.num_components(),
      "configuration was saved against a different template (component "
      "count mismatch)");
  ARCHEX_REQUIRE(doc.at("template_candidate_edges").as_int() ==
                     tmpl.num_candidate_edges(),
                 "configuration was saved against a different template "
                 "(candidate-edge count mismatch)");
  std::vector<bool> selected(
      static_cast<std::size_t>(tmpl.num_candidate_edges()), false);
  for (const json::Value& entry : doc.at("selected_edges").as_array()) {
    const int k = entry.as_int();
    ARCHEX_REQUIRE(k >= 0 && k < tmpl.num_candidate_edges(),
                   "selected edge index out of range");
    selected[static_cast<std::size_t>(k)] = true;
  }
  return Configuration(tmpl, std::move(selected));
}

}  // namespace archex::core
