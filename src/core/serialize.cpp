#include "core/serialize.hpp"

#include <cstring>
#include <utility>

#include "support/check.hpp"
#include "support/json.hpp"

namespace archex::core {

namespace {

constexpr int kVersion = 1;

// ---- path-tracking decoder --------------------------------------------------

/// Cursor over a parsed JSON value that remembers its path from the
/// document root, so every validation failure can point at the offending
/// member ("$.components[3].cost"). All access errors surface as SpecError
/// with (source, path, reason) — the uniform diagnostic shared by CLI spec
/// loading and server request validation.
class Doc {
 public:
  Doc(const json::Value* value, std::string path, const std::string* source)
      : value_(value), path_(std::move(path)), source_(source) {}

  [[noreturn]] void fail(const std::string& reason) const {
    throw SpecError(*source_, path_, reason);
  }

  [[nodiscard]] const json::Value& raw() const { return *value_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  [[nodiscard]] bool has(const std::string& key) const {
    return value_->is_object() && value_->contains(key);
  }

  [[nodiscard]] Doc at(const std::string& key) const {
    if (!value_->is_object()) fail("expected an object");
    if (!value_->contains(key)) fail("missing member \"" + key + "\"");
    return Doc(&value_->at(key), path_ + "." + key, source_);
  }

  [[nodiscard]] std::optional<Doc> find(const std::string& key) const {
    if (!value_->is_object()) fail("expected an object");
    if (!value_->contains(key)) return std::nullopt;
    return Doc(&value_->at(key), path_ + "." + key, source_);
  }

  [[nodiscard]] std::size_t array_size() const {
    if (!value_->is_array()) fail("expected an array");
    return value_->as_array().size();
  }

  [[nodiscard]] Doc at(std::size_t index) const {
    const json::Array& a = value_->as_array();
    return Doc(&a[index], path_ + "[" + std::to_string(index) + "]",
               source_);
  }

  [[nodiscard]] double number() const {
    if (!value_->is_number()) fail("expected a number");
    return value_->as_number();
  }

  [[nodiscard]] int integer() const {
    const double n = number();
    const auto i = static_cast<int>(n);
    if (static_cast<double>(i) != n) fail("expected an integer");
    return i;
  }

  /// 64-bit variant for counters the server serializes as long long
  /// (solver nodes, nogood-store sizes): values past 2^31 are valid wire
  /// data and must not be narrowed through int.
  [[nodiscard]] long long integer64() const {
    const double n = number();
    const auto i = static_cast<long long>(n);
    if (static_cast<double>(i) != n) fail("expected an integer");
    return i;
  }

  [[nodiscard]] bool boolean() const {
    if (!value_->is_bool()) fail("expected a boolean");
    return value_->as_bool();
  }

  [[nodiscard]] std::string str() const {
    if (!value_->is_string()) fail("expected a string");
    return value_->as_string();
  }

  // Optional-member conveniences: the fallback is returned when the member
  // is absent; a present member of the wrong type still fails loudly.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const {
    const auto member = find(key);
    return member ? member->number() : fallback;
  }
  [[nodiscard]] int integer_or(const std::string& key, int fallback) const {
    const auto member = find(key);
    return member ? member->integer() : fallback;
  }
  [[nodiscard]] long long integer64_or(const std::string& key,
                                       long long fallback) const {
    const auto member = find(key);
    return member ? member->integer64() : fallback;
  }
  [[nodiscard]] bool boolean_or(const std::string& key, bool fallback) const {
    const auto member = find(key);
    return member ? member->boolean() : fallback;
  }
  [[nodiscard]] std::string str_or(const std::string& key,
                                   const std::string& fallback) const {
    const auto member = find(key);
    return member ? member->str() : fallback;
  }

 private:
  const json::Value* value_;
  std::string path_;
  const std::string* source_;
};

/// Parse a document string, converting parser failures (with their
/// line/column/byte position) into the uniform SpecError form.
json::Value parse_document(const std::string& text,
                           const std::string& source) {
  try {
    return json::parse(text);
  } catch (const json::JsonError& e) {
    throw SpecError(source, "$", e.what());
  }
}

void check_header(const Doc& doc, const std::string& format) {
  const std::string got = doc.at("format").str();
  if (got != format) {
    doc.at("format").fail("unexpected document format \"" + got +
                          "\" (want \"" + format + "\")");
  }
  const int version = doc.at("version").integer();
  if (version != kVersion) {
    doc.at("version").fail("unsupported document version " +
                           std::to_string(version) + " (want " +
                           std::to_string(kVersion) + ")");
  }
}

json::Value template_to_value(const Template& tmpl) {
  json::Array components;
  for (const Component& c : tmpl.components()) {
    components.push_back(json::Object{
        {"name", c.name},
        {"type", c.type},
        {"cost", c.cost},
        {"failure_prob", c.failure_prob},
        {"power_supply", c.power_supply},
        {"power_demand", c.power_demand},
    });
  }
  json::Array edges;
  for (const CandidateEdge& e : tmpl.candidate_edges()) {
    edges.push_back(json::Object{
        {"from", e.from},
        {"to", e.to},
        {"switch_cost", e.switch_cost},
    });
  }
  return json::Object{
      {"format", "archex-template"},
      {"version", kVersion},
      {"components", std::move(components)},
      {"candidate_edges", std::move(edges)},
  };
}

Template template_from_doc(const Doc& doc) {
  check_header(doc, "archex-template");

  Template tmpl;
  const Doc components = doc.at("components");
  for (std::size_t i = 0; i < components.array_size(); ++i) {
    const Doc entry = components.at(i);
    Component c;
    c.name = entry.at("name").str();
    c.type = entry.at("type").integer();
    c.cost = entry.at("cost").number();
    c.failure_prob = entry.at("failure_prob").number();
    c.power_supply = entry.number_or("power_supply", 0.0);
    c.power_demand = entry.number_or("power_demand", 0.0);
    try {
      tmpl.add_component(std::move(c));
    } catch (const Error& e) {
      entry.fail(e.what());
    }
  }
  const Doc edges = doc.at("candidate_edges");
  for (std::size_t i = 0; i < edges.array_size(); ++i) {
    const Doc entry = edges.at(i);
    try {
      tmpl.add_candidate_edge(entry.at("from").integer(),
                              entry.at("to").integer(),
                              entry.at("switch_cost").number());
    } catch (const Error& e) {
      entry.fail(e.what());
    }
  }
  // Surface structural problems (empty types etc.) at load time.
  try {
    (void)tmpl.partition();
  } catch (const Error& e) {
    doc.fail(e.what());
  }
  return tmpl;
}

}  // namespace

std::string to_json(const Template& tmpl) {
  return json::dump(template_to_value(tmpl), 2);
}

Template template_from_json(const std::string& text,
                            const std::string& source) {
  const json::Value doc = parse_document(text, source);
  return template_from_doc(Doc(&doc, "$", &source));
}

std::string to_json(const Configuration& config) {
  json::Array selected;
  const Template& tmpl = config.architecture_template();
  for (int k = 0; k < tmpl.num_candidate_edges(); ++k) {
    if (config.edge_selected(k)) selected.push_back(k);
  }
  const json::Value doc = json::Object{
      {"format", "archex-configuration"},
      {"version", kVersion},
      {"template_components", tmpl.num_components()},
      {"template_candidate_edges", tmpl.num_candidate_edges()},
      {"selected_edges", std::move(selected)},
  };
  return json::dump(doc, 2);
}

Configuration configuration_from_json(const Template& tmpl,
                                      const std::string& text,
                                      const std::string& source) {
  const json::Value parsed = parse_document(text, source);
  const Doc doc(&parsed, "$", &source);
  check_header(doc, "archex-configuration");
  if (doc.at("template_components").integer() != tmpl.num_components()) {
    doc.at("template_components")
        .fail("configuration was saved against a different template "
              "(component count mismatch)");
  }
  if (doc.at("template_candidate_edges").integer() !=
      tmpl.num_candidate_edges()) {
    doc.at("template_candidate_edges")
        .fail("configuration was saved against a different template "
              "(candidate-edge count mismatch)");
  }
  std::vector<bool> selected(
      static_cast<std::size_t>(tmpl.num_candidate_edges()), false);
  const Doc entries = doc.at("selected_edges");
  for (std::size_t i = 0; i < entries.array_size(); ++i) {
    const Doc entry = entries.at(i);
    const int k = entry.integer();
    if (k < 0 || k >= tmpl.num_candidate_edges()) {
      entry.fail("selected edge index out of range");
    }
    selected[static_cast<std::size_t>(k)] = true;
  }
  return Configuration(tmpl, std::move(selected));
}

// ---- template signature -----------------------------------------------------

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline void mix_byte(std::uint64_t& h, unsigned char byte) {
  h ^= byte;
  h *= kFnvPrime;
}

inline void mix_u64(std::uint64_t& h, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    mix_byte(h, static_cast<unsigned char>((word >> (8 * byte)) & 0xffULL));
  }
}

inline void mix_double(std::uint64_t& h, double value) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  mix_u64(h, bits);
}

inline void mix_string(std::uint64_t& h, const std::string& s) {
  mix_u64(h, s.size());
  for (const char c : s) mix_byte(h, static_cast<unsigned char>(c));
}

}  // namespace

std::uint64_t template_signature(const Template& tmpl) {
  std::uint64_t h = kFnvOffset;
  mix_u64(h, static_cast<std::uint64_t>(tmpl.num_components()));
  for (const Component& c : tmpl.components()) {
    mix_string(h, c.name);
    mix_u64(h, static_cast<std::uint64_t>(c.type));
    mix_double(h, c.cost);
    mix_double(h, c.failure_prob);
    mix_double(h, c.power_supply);
    mix_double(h, c.power_demand);
  }
  mix_u64(h, static_cast<std::uint64_t>(tmpl.num_candidate_edges()));
  for (const CandidateEdge& e : tmpl.candidate_edges()) {
    mix_u64(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.from)));
    mix_u64(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.to)));
    mix_double(h, e.switch_cost);
  }
  return h;
}

// ---- wire envelope ----------------------------------------------------------

std::string to_string(SolveMode mode) {
  switch (mode) {
    case SolveMode::kMr: return "mr";
    case SolveMode::kAr: return "ar";
    case SolveMode::kPareto: return "pareto";
  }
  return "unknown";
}

std::optional<SolveMode> parse_solve_mode(const std::string& name) {
  if (name == "mr") return SolveMode::kMr;
  if (name == "ar") return SolveMode::kAr;
  if (name == "pareto") return SolveMode::kPareto;
  return std::nullopt;
}

std::string to_json(const SolveRequest& request) {
  json::Object doc{
      {"format", "archex-request"},
      {"version", kVersion},
      {"id", request.id},
      {"mode", to_string(request.mode)},
      {"target_failure", request.target_failure},
  };
  if (request.deadline_seconds > 0.0) {
    doc["deadline_seconds"] = request.deadline_seconds;
  }
  if (request.threads != 0) doc["threads"] = request.threads;
  if (request.lazy) doc["lazy"] = true;
  if (!request.method.empty()) doc["method"] = request.method;
  if (request.eps_generators) doc["eps_generators"] = *request.eps_generators;
  if (request.tmpl) doc["template"] = template_to_value(*request.tmpl);
  if (request.mode == SolveMode::kPareto) {
    doc["pareto"] = json::Object{
        {"initial_target", request.initial_target},
        {"tighten_factor", request.tighten_factor},
        {"max_points", request.max_points},
    };
  }
  return json::dump(json::Value(std::move(doc)));
}

SolveRequest request_from_json(const std::string& text,
                               const std::string& source) {
  const json::Value parsed = parse_document(text, source);
  const Doc doc(&parsed, "$", &source);
  check_header(doc, "archex-request");

  SolveRequest request;
  request.id = doc.at("id").str();
  if (request.id.empty()) doc.at("id").fail("request id must be non-empty");

  const Doc mode = doc.at("mode");
  const auto parsed_mode = parse_solve_mode(mode.str());
  if (!parsed_mode) {
    mode.fail("unknown mode \"" + mode.str() + "\" (want mr|ar|pareto)");
  }
  request.mode = *parsed_mode;

  request.deadline_seconds = doc.number_or("deadline_seconds", 0.0);
  request.threads = doc.integer_or("threads", 0);
  if (request.threads < 0) doc.at("threads").fail("threads must be >= 0");
  request.target_failure = doc.number_or("target_failure", 1e-6);
  if (request.mode != SolveMode::kPareto &&
      (request.target_failure <= 0.0 || request.target_failure >= 1.0)) {
    doc.at("target_failure").fail("target_failure must lie in (0, 1)");
  }
  request.lazy = doc.boolean_or("lazy", false);
  request.method = doc.str_or("method", "");

  if (const auto eps = doc.find("eps_generators")) {
    request.eps_generators = eps->integer();
    if (*request.eps_generators < 1) {
      eps->fail("eps_generators must be >= 1");
    }
  }
  if (const auto tmpl = doc.find("template")) {
    request.tmpl = template_from_doc(*tmpl);
  }
  if (request.eps_generators.has_value() == request.tmpl.has_value()) {
    doc.fail("provide exactly one of \"eps_generators\" or \"template\"");
  }

  if (const auto pareto = doc.find("pareto")) {
    request.initial_target = pareto->number_or("initial_target", 1e-2);
    request.tighten_factor = pareto->number_or("tighten_factor", 0.5);
    request.max_points = pareto->integer_or("max_points", 8);
    if (request.initial_target <= 0.0 || request.initial_target >= 1.0) {
      pareto->at("initial_target").fail("initial_target must lie in (0, 1)");
    }
    if (request.tighten_factor <= 0.0 || request.tighten_factor >= 1.0) {
      pareto->at("tighten_factor").fail("tighten_factor must lie in (0, 1)");
    }
    if (request.max_points < 1) {
      pareto->at("max_points").fail("max_points must be >= 1");
    }
  }
  return request;
}

std::string to_json(const SolveResponse& response) {
  json::Object doc{
      {"format", "archex-response"},
      {"version", kVersion},
      {"id", response.id},
      {"status", response.status},
  };
  if (!response.error.empty()) doc["error"] = response.error;

  json::Array selected;
  for (const int k : response.selected_edges) selected.push_back(k);
  doc["cost"] = response.cost;
  doc["failure"] = response.failure;
  doc["selected_edges"] = std::move(selected);
  doc["iterations"] = response.iterations;

  if (!response.points.empty()) {
    json::Array points;
    for (const SolveResponse::Point& p : response.points) {
      json::Array edges;
      for (const int k : p.selected_edges) edges.push_back(k);
      points.push_back(json::Object{
          {"target", p.target},
          {"cost", p.cost},
          {"approx_failure", p.approx_failure},
          {"exact_failure", p.exact_failure},
          {"selected_edges", std::move(edges)},
      });
    }
    doc["points"] = std::move(points);
  }

  doc["solver_nodes"] = static_cast<long long>(response.solver_nodes);
  doc["solve_seconds"] = response.solve_seconds;
  doc["queue_seconds"] = response.queue_seconds;
  doc["cache"] = json::Object{
      {"hits", static_cast<long long>(response.cache_hits)},
      {"misses", static_cast<long long>(response.cache_misses)},
      {"hit_rate", response.cache_hit_rate},
  };
  doc["learning"] = json::Object{
      {"store_size", static_cast<long long>(response.nogood_store_size)},
      {"prunings", static_cast<long long>(response.nogood_prunings)},
  };
  return json::dump(json::Value(std::move(doc)));
}

SolveResponse response_from_json(const std::string& text,
                                 const std::string& source) {
  const json::Value parsed = parse_document(text, source);
  const Doc doc(&parsed, "$", &source);
  check_header(doc, "archex-response");

  SolveResponse response;
  response.id = doc.at("id").str();
  response.status = doc.at("status").str();
  response.error = doc.str_or("error", "");
  response.cost = doc.number_or("cost", 0.0);
  response.failure = doc.number_or("failure", 1.0);
  if (const auto edges = doc.find("selected_edges")) {
    for (std::size_t i = 0; i < edges->array_size(); ++i) {
      response.selected_edges.push_back(edges->at(i).integer());
    }
  }
  response.iterations = doc.integer_or("iterations", 0);
  if (const auto points = doc.find("points")) {
    for (std::size_t i = 0; i < points->array_size(); ++i) {
      const Doc entry = points->at(i);
      SolveResponse::Point p;
      p.target = entry.at("target").number();
      p.cost = entry.at("cost").number();
      p.approx_failure = entry.at("approx_failure").number();
      p.exact_failure = entry.at("exact_failure").number();
      if (const auto edges = entry.find("selected_edges")) {
        for (std::size_t j = 0; j < edges->array_size(); ++j) {
          p.selected_edges.push_back(edges->at(j).integer());
        }
      }
      response.points.push_back(std::move(p));
    }
  }
  response.solver_nodes =
      static_cast<long>(doc.integer64_or("solver_nodes", 0));
  response.solve_seconds = doc.number_or("solve_seconds", 0.0);
  response.queue_seconds = doc.number_or("queue_seconds", 0.0);
  if (const auto cache = doc.find("cache")) {
    response.cache_hits =
        static_cast<std::uint64_t>(cache->number_or("hits", 0.0));
    response.cache_misses =
        static_cast<std::uint64_t>(cache->number_or("misses", 0.0));
    response.cache_hit_rate = cache->number_or("hit_rate", 0.0);
  }
  if (const auto learning = doc.find("learning")) {
    response.nogood_store_size =
        static_cast<long>(learning->integer64_or("store_size", 0));
    response.nogood_prunings =
        static_cast<long>(learning->integer64_or("prunings", 0));
  }
  return response;
}

}  // namespace archex::core
