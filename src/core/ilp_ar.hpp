// archex/core/ilp_ar.hpp
//
// ILP with Approximate Reliability (Algorithm 3). GENILP-AR compiles the
// reliability requirement into the monolithic ILP using the approximate
// algebra of Section IV-A, in time polynomial in the template size:
//
//   per sink v and type j:
//     count_vj      = Σ_{w ∈ Π_j} [w linked to a source and to v]  (eq. 11,
//                     via the decision-edge walk indicators of Lemma 1)
//     x_vjk (k=0..k_max):  Σ_k x_vjk = 1,  Σ_k k·x_vjk = count_vj  (eq. 10/11)
//   reliability row (9):  Σ_j Σ_{k>=1} k · p_j^k · x_vjk  <=  r*_v
//
// and a single SolveILP call returns the optimal architecture. Within the
// Theorem-2 error bound the result is sound and complete (Theorem 3).
//
// Numerical note: the row (9) mixes coefficients spanning many decades
// (p^1 .. p^{k_max}); the encoder rescales the row by 1/r* and pre-fixes to
// zero any x_vjk whose single term already exceeds r*, keeping the remaining
// coefficients in [0, 1] — well inside simplex tolerances.
#pragma once

#include <optional>

#include "core/arch_ilp.hpp"
#include "core/configuration.hpp"
#include "core/synthesis_status.hpp"
#include "ilp/solver.hpp"

namespace archex::core {

struct IlpArOptions {
  /// Reliability requirement r* applied to every sink's functional link.
  double target_failure = 1e-9;
  /// Walk-length bound for the connectivity indicators; 0 selects the
  /// paper's η_n with n = number of types.
  int walk_length = 0;
  /// Accept a solver incumbent when limits trip before the optimality
  /// proof (cost may be suboptimal; r~ of the result is still verified).
  bool accept_incumbent = false;
  /// Optional acceleration of the final exact evaluation (and of future
  /// runs sharing the same cache, e.g. across a Pareto sweep).
  rel::EvalCache* cache = nullptr;
  support::ThreadPool* pool = nullptr;
  /// Exact analyzer used to verify the synthesized architecture.
  rel::ExactMethod method = rel::ExactMethod::kFactoring;
  /// Absolute deadline for the final exact evaluation; overruns abort with
  /// rel::TimeoutError (the solver's budget is its own options' concern).
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

struct IlpArReport {
  SynthesisStatus status = SynthesisStatus::kSolverFailure;
  std::optional<Configuration> configuration;

  /// Worst-sink approximate failure r̃ of the final architecture (eq. 7).
  double approx_failure = 1.0;
  /// Worst-sink exact failure r of the final architecture.
  double exact_failure = 1.0;

  // Problem size and phase timings, as reported in Table III.
  int num_constraints = 0;
  int num_variables = 0;
  double setup_seconds = 0.0;
  double solver_seconds = 0.0;
  long solver_nodes = 0;
  /// Parallel-search statistics of the solve (zero for serial solvers):
  /// bound-pruned nodes and pool nodes expanded by a non-donating worker.
  long solver_nodes_pruned = 0;
  long solver_steals = 0;
  /// Cut-and-branch statistics of the solve (zero when the solver's
  /// cut/pseudocost/rc-fixing options are off).
  long solver_cuts_added = 0;
  long solver_cut_rounds = 0;
  long solver_rc_fixings = 0;
  long solver_pseudocost_branches = 0;
  /// Conflict-learning statistics of the solve (zero when the solver's
  /// learning option is off).
  long solver_nogoods_learned = 0;
  long solver_nogood_prunings = 0;
  long solver_nogood_store_size = 0;
};

/// Size of a GENILP-AR encoding without solving (Table III's constraint
/// column for instances too large to solve with the bundled engine).
struct IlpArSize {
  int num_constraints = 0;
  int num_variables = 0;
  double setup_seconds = 0.0;
};

/// Append the approximate-reliability encoding (9)-(11) to `ilp`.
/// Exposed separately so benchmarks can measure setup alone.
IlpArSize encode_ilp_ar(ArchitectureIlp& ilp, const IlpArOptions& options);

/// Full Algorithm 3: encode, solve once, extract and evaluate.
[[nodiscard]] IlpArReport run_ilp_ar(ArchitectureIlp& ilp,
                                     ilp::IlpSolver& solver,
                                     const IlpArOptions& options);

}  // namespace archex::core
