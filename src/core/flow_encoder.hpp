// archex/core/flow_encoder.hpp
//
// Flow-based encoding of ILP-MR's ADDPATH requirement (eq. 6): "at least k
// members of type t are connected to sink v by selected walks". For each
// (sink, type) pair a single-commodity flow is laid over the candidate
// edges:
//
//   * every member w of the type owns a continuous supply s_w in [0, 1];
//   * flow conservation holds at every node except the sink (members add
//     their supply, all other nodes are pure relays);
//   * an edge carries flow only when selected:  f_uv <= |Π_t| * e_uv;
//   * the requirement becomes  inflow(sink) >= k.
//
// By flow decomposition, an integral edge set admits such a flow iff at
// least k distinct members reach the sink by directed walks — exactly the
// eq.-(6) redundancy count, except that no walk-length cap is imposed (a
// longer chain of same-type ties is still genuine redundancy under the
// Section-V expansion semantics, so this is a faithful relaxation).
//
// Compared to the Lemma-1 walk-indicator unrolling (reach_encoder.hpp) this
// adds *no* auxiliary binaries and yields a far tighter LP relaxation;
// bench_encoder_ablation quantifies the difference. Commodities persist
// across ILP-MR iterations — re-requiring a higher k only appends one row.
#pragma once

#include <map>
#include <vector>

#include "core/arch_ilp.hpp"

namespace archex::core {

class FlowEncoder {
 public:
  explicit FlowEncoder(ArchitectureIlp& ilp);

  /// Require at least `target` members of `type` to be connected to `sink`
  /// through selected edges. Idempotent per (sink, type, target): raising
  /// the target appends a single stronger row.
  void require_connected_members(graph::NodeId sink, graph::TypeId type,
                                 int target);

  /// Number of flow variables created so far (for size reporting).
  [[nodiscard]] int num_flow_vars() const { return flow_vars_; }

 private:
  struct Commodity {
    std::vector<ilp::Var> edge_flow;  // parallel to candidate edges
    ilp::LinExpr sink_inflow;
  };

  Commodity& commodity(graph::NodeId sink, graph::TypeId type);

  ArchitectureIlp& ilp_;
  const Template& tmpl_;
  graph::Partition part_;
  std::map<std::pair<graph::NodeId, graph::TypeId>, Commodity> commodities_;
  int flow_vars_ = 0;
};

}  // namespace archex::core
