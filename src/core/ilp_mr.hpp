// archex/core/ilp_mr.hpp
//
// ILP Modulo Reliability (Algorithm 1) with the LEARNCONS constraint-learning
// routine (Algorithm 2). The ILP solver and an *exact* reliability analysis
// run in a lazy loop:
//
//   loop:
//     e*  <- SolveILP(Cost, Cons)          (minimum-cost architecture)
//     r   <- RelAnalysis(e*, p)            (exact, worst sink)
//     if r <= r*: return e*
//     Cons <- LearnCons(Cons, r, r*, e*)   (enforce more redundant paths)
//
// LEARNCONS estimates the number of additional redundant paths
//   k = floor( log(r*/r) / log(rho) )                  (ESTPATH)
// from the failure probability rho of a single path, then enforces — for
// every sink and every component type — k additional type-members with a
// selected walk to the sink, via eq. (6) over the walk-indicator encoding
// (ADDPATH). When k == 0 it instead adds one path to the type with minimum
// redundancy (FINDMINREDTYPE). The "lazy" strategy of Table II (bottom)
// always takes the k == 0 branch.
#pragma once

#include <optional>
#include <vector>

#include "core/arch_ilp.hpp"
#include "core/configuration.hpp"
#include "core/synthesis_status.hpp"
#include "ilp/solver.hpp"
#include "rel/exact.hpp"

namespace archex::core {

/// How ADDPATH's eq.-(6) rows are lowered to the ILP.
enum class PathEncoding {
  /// Continuous single-commodity flows per (sink, type): no auxiliary
  /// binaries, tight LP relaxation (default; see flow_encoder.hpp).
  kFlow,
  /// Literal Lemma-1 walk-indicator unrolling over decision edges with
  /// length bound n - i + 1 (paper-faithful; weaker LP relaxation —
  /// bench_encoder_ablation measures the gap).
  kWalkIndicator,
};

struct IlpMrOptions {
  /// Reliability requirement r*: worst-case sink failure probability.
  double target_failure = 1e-9;
  /// Abort after this many solve/analyze/learn iterations.
  int max_iterations = 50;
  /// Table II bottom: ignore ESTPATH and add a single path per iteration to
  /// the minimum-redundancy type.
  bool lazy_strategy = false;
  /// Exact analyzer used by RELANALYSIS.
  rel::ExactMethod method = rel::ExactMethod::kFactoring;
  /// Lowering used for the learned eq.-(6) constraints.
  PathEncoding encoding = PathEncoding::kFlow;
  /// Accept a solver incumbent when the node/time limit trips before the
  /// optimality proof completes. Reliability soundness is unaffected (the
  /// exact RELANALYSIS still gates acceptance); only cost optimality may
  /// degrade. Benchmarks enable this to bound their runtime.
  bool accept_incumbent = false;
  /// Unified conflict store (DESIGN.md §4g): when the solver is a
  /// BranchAndBoundSolver with learning enabled, install one shared nogood
  /// store that persists across the solve/analyze/learn iterations — LP
  /// infeasibility conflicts learned in iteration k keep pruning iteration
  /// k+1's tree (LEARNCONS only ever adds rows, so they stay valid), and
  /// every reliability rejection is recorded as an oracle nogood over the
  /// rejected edge selection.
  bool unified_learning = true;
  /// Memoization cache shared by every RELANALYSIS call. Null still
  /// memoizes *within* the run (successive iterates share most pivot
  /// subproblems); pass a cache to also share across runs.
  rel::EvalCache* cache = nullptr;
  /// Optional worker pool for the factoring analyzer.
  support::ThreadPool* pool = nullptr;
  /// External nogood store to install instead of the run-private one
  /// unified_learning would otherwise create (requires a learning
  /// BranchAndBoundSolver, like unified_learning itself). Lets a long-lived
  /// caller persist oracle nogoods across runs over the same problem family
  /// — see NogoodStoreRegistry; the caller is responsible for purging
  /// non-oracle entries before reuse.
  std::shared_ptr<ilp::NogoodStore> store;
  /// Absolute deadline for the RELANALYSIS calls; an analysis that overruns
  /// it aborts with rel::TimeoutError. The ILP side enforces its own budget
  /// via BranchAndBoundOptions::deadline. Unset = no analysis deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// One row of the per-iteration trace (Fig. 2 of the paper).
struct MrIteration {
  double cost = 0.0;
  double failure = 1.0;     // exact worst-sink failure of this iteration
  int estimated_k = 0;      // ESTPATH output used to learn constraints
  int new_constraints = 0;  // rows added by LEARNCONS after this iteration
  int num_edges = 0;
  int num_components = 0;
};

struct IlpMrReport {
  SynthesisStatus status = SynthesisStatus::kSolverFailure;
  std::optional<Configuration> configuration;
  /// Exact worst-sink failure probability of the final architecture.
  double failure = 1.0;
  std::vector<MrIteration> iterations;

  // Phase timings, as reported in Table II.
  double analysis_seconds = 0.0;
  double solver_seconds = 0.0;
  long solver_nodes = 0;
  /// Parallel-search statistics summed over all SolveILP iterations (zero
  /// for serial solvers): bound-pruned nodes and work-stealing pool steals.
  long solver_nodes_pruned = 0;
  long solver_steals = 0;
  /// Cut-and-branch statistics summed over all SolveILP iterations (zero
  /// when the solver's cut/pseudocost/rc-fixing options are off).
  long solver_cuts_added = 0;
  long solver_cut_rounds = 0;
  long solver_rc_fixings = 0;
  long solver_pseudocost_branches = 0;
  /// Conflict-learning statistics (zero when learning is off): nogoods
  /// installed and nodes pruned by them, summed over all SolveILP
  /// iterations; store size is the shared store's final live count.
  long solver_nogoods_learned = 0;
  long solver_nogood_prunings = 0;
  long solver_nogood_store_size = 0;
  /// Reliability rejections recorded as oracle nogoods (unified_learning).
  long oracle_nogoods = 0;
  /// SolveILP calls that tripped a node/time limit instead of proving
  /// optimality or infeasibility. Nonzero means the solver-effort counters
  /// above measure throughput within a budget, not proven-tree size —
  /// benches report this as `budget_capped`.
  long solver_limit_hits = 0;

  // Final model size.
  int num_rows = 0;
  int num_variables = 0;

  [[nodiscard]] int num_iterations() const {
    return static_cast<int>(iterations.size());
  }
};

/// Run ILP-MR on a prepared base ILP (interconnection + balance rules built
/// by the caller). Learned reliability constraints are appended to `ilp`.
[[nodiscard]] IlpMrReport run_ilp_mr(ArchitectureIlp& ilp,
                                     ilp::IlpSolver& solver,
                                     const IlpMrOptions& options);

}  // namespace archex::core
