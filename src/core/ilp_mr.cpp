#include "core/ilp_mr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "core/flow_encoder.hpp"
#include "core/reach_encoder.hpp"
#include "graph/bool_matrix.hpp"
#include "graph/paths.hpp"
#include "ilp/nogood.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace archex::core {

namespace {

using graph::NodeId;
using graph::TypeId;

/// LEARNCONS working state kept across iterations: the reach encoder reuses
/// auxiliary variables, and per-(sink, type) targets guarantee progress (a
/// new row is only added when it strictly raises the enforced path count,
/// which is bounded by the type size — so the loop terminates).
class ConstraintLearner {
 public:
  ConstraintLearner(ArchitectureIlp& ilp, PathEncoding encoding)
      : ilp_(ilp),
        tmpl_(ilp.arch_template()),
        part_(tmpl_.partition()),
        encoding_(encoding),
        walk_encoder_(ilp),
        flow_encoder_(ilp) {}

  /// ESTPATH: k = floor(log(r*/r) / log(rho)) with rho the failure
  /// probability of one existing path of the worst sink (conservative when
  /// paths are not independent, as the paper notes).
  [[nodiscard]] int estimate_paths(double failure, double target,
                                   const Configuration& config,
                                   NodeId worst_sink) const {
    if (failure <= 0.0 || failure <= target) return 0;
    const double rho = single_path_failure(config, worst_sink);
    if (rho <= 0.0 || rho >= 1.0) return 0;
    const double ratio = target / failure;  // < 1 here
    if (ratio <= 0.0) return 0;
    const double k = std::log(ratio) / std::log(rho);
    if (!std::isfinite(k) || k <= 0.0) return 0;
    // Cap at the largest type size: more redundancy cannot be enforced.
    int cap = 0;
    for (TypeId t = 0; t < part_.num_types(); ++t) {
      cap = std::max(cap, static_cast<int>(part_.members(t).size()));
    }
    return std::min(static_cast<int>(k), cap);
  }

  /// LEARNCONS body: returns the number of rows added (0 -> UNFEASIBLE).
  int learn(const Configuration& config, int k) {
    const graph::Digraph selected = config.selected_graph();
    int added = 0;
    for (NodeId sink : tmpl_.sinks()) {
      if (k >= 1) {
        // All non-sink types, from the layer next to the sinks backwards
        // (T_{n-1}, ..., T_1 in the paper's 1-based notation).
        for (TypeId t = part_.num_types() - 2; t >= 0; --t) {
          added += add_path(sink, t, k, selected);
        }
      } else {
        const TypeId t = find_min_red_type(sink, selected);
        if (t >= 0) added += add_path(sink, t, 1, selected);
      }
    }
    return added;
  }

 private:
  /// Walk length for connecting type t to a sink. The walk-indicator
  /// encoding uses the paper's n - i + 1 (layer distance plus one same-type
  /// hop); the flow encoding imposes no length cap, so redundancy is counted
  /// with unbounded walks to match.
  [[nodiscard]] int walk_length(TypeId t) const {
    if (encoding_ == PathEncoding::kFlow) {
      return std::max(1, tmpl_.num_components() - 1);
    }
    return part_.num_types() - t;
  }

  /// Number of type-t members with a walk (length <= len) to `sink` in the
  /// given architecture: Σ_w η*_{len}(w, sink).
  [[nodiscard]] int redundancy_count(const graph::Digraph& g, TypeId t,
                                     NodeId sink, int len) const {
    const graph::BoolMatrix eta = graph::walk_indicator(g, len);
    int count = 0;
    for (NodeId w : part_.members(t)) {
      if (w != sink && eta.get(w, sink)) ++count;
    }
    return count;
  }

  /// Upper bound on the achievable count: members with a candidate walk.
  [[nodiscard]] int available_count(TypeId t, NodeId sink, int len) const {
    const graph::BoolMatrix eta =
        graph::walk_indicator(tmpl_.candidate_graph(), len);
    int count = 0;
    for (NodeId w : part_.members(t)) {
      if (w != sink && eta.get(w, sink)) ++count;
    }
    return count;
  }

  /// ADDPATH: enforce eq. (6), Σ_w η_{len}(w, sink) >= current + k (capped
  /// at the template's maximum), over the decision-edge walk indicators.
  int add_path(NodeId sink, TypeId t, int k, const graph::Digraph& selected) {
    const int len = walk_length(t);
    const int current = redundancy_count(selected, t, sink, len);
    const int available = available_count(t, sink, len);
    const int target = std::min(current + k, available);

    auto& enforced = enforced_[{sink, t}];
    if (target <= current || target <= enforced) return 0;

    if (encoding_ == PathEncoding::kFlow) {
      flow_encoder_.require_connected_members(sink, t, target);
    } else {
      ilp::LinExpr count;
      for (NodeId w : part_.members(t)) {
        if (w == sink) continue;
        if (const auto var = walk_encoder_.walk_to(sink, w, len)) {
          count += *var;
        }
      }
      ilp_.model().add_row(std::move(count) >= static_cast<double>(target),
                           "addpath_s" + std::to_string(sink) + "_t" +
                               std::to_string(t) + "_k" +
                               std::to_string(target));
    }
    enforced = target;
    return 1;
  }

  /// FINDMINREDTYPE: the non-sink type with the fewest members connected to
  /// the sink, among types that can still be improved; -1 if none.
  [[nodiscard]] TypeId find_min_red_type(NodeId sink,
                                         const graph::Digraph& selected) const {
    TypeId best = -1;
    int best_count = std::numeric_limits<int>::max();
    for (TypeId t = 0; t + 1 < part_.num_types(); ++t) {
      const int len = walk_length(t);
      const int current = redundancy_count(selected, t, sink, len);
      if (current >= available_count(t, sink, len)) continue;
      const auto it = enforced_.find({sink, t});
      if (it != enforced_.end() && it->second > current) continue;
      if (current < best_count) {
        best_count = current;
        best = t;
      }
    }
    return best;
  }

  /// Failure probability of one existing source->sink path of the current
  /// architecture: rho = 1 - prod (1 - p_v) over the path's nodes.
  [[nodiscard]] double single_path_failure(const Configuration& config,
                                           NodeId sink) const {
    const graph::Digraph g = config.analysis_graph();
    const auto paths =
        graph::enumerate_simple_paths(g, tmpl_.sources(), sink, 1u << 12);
    if (paths.empty()) return 1.0;
    const auto& p = tmpl_.node_failure_probs();
    double survive = 1.0;
    for (NodeId v : paths.front()) {
      survive *= 1.0 - p[static_cast<std::size_t>(v)];
    }
    return 1.0 - survive;
  }

  ArchitectureIlp& ilp_;
  const Template& tmpl_;
  graph::Partition part_;
  PathEncoding encoding_;
  ReachEncoder walk_encoder_;
  FlowEncoder flow_encoder_;
  std::map<std::pair<NodeId, TypeId>, int> enforced_;
};

/// RELANALYSIS: exact worst-sink failure, also reporting which sink is worst.
std::pair<double, NodeId> worst_sink_failure(const Configuration& config,
                                             rel::ExactMethod method,
                                             const rel::EvalContext& ctx) {
  const Template& tmpl = config.architecture_template();
  const graph::Digraph g = config.analysis_graph();
  const auto p = tmpl.node_failure_probs();
  const auto part = tmpl.partition();
  double worst = -1.0;
  NodeId worst_sink = -1;
  for (NodeId sink : tmpl.sinks()) {
    const double r =
        rel::failure_probability(g, part.members(0), sink, p, ctx, method);
    if (r > worst) {
      worst = r;
      worst_sink = sink;
    }
  }
  return {worst, worst_sink};
}

}  // namespace

IlpMrReport run_ilp_mr(ArchitectureIlp& ilp, ilp::IlpSolver& solver,
                       const IlpMrOptions& options) {
  ARCHEX_REQUIRE(options.target_failure > 0.0 && options.target_failure < 1.0,
                 "target failure probability must lie in (0, 1)");
  ARCHEX_REQUIRE(options.max_iterations >= 1,
                 "need at least one ILP-MR iteration");

  IlpMrReport report;
  Stopwatch solver_watch;
  Stopwatch analysis_watch;
  ConstraintLearner learner(ilp, options.encoding);

  // Unified conflict store (DESIGN.md §4g): one nogood store shared by every
  // SolveILP iteration. Sound because the loop only ever *adds* rows to the
  // model (the set_nogood_store persistence contract), so an infeasibility
  // conflict from iteration k still holds in iteration k+1. Reliability
  // rejections are fed back as oracle nogoods below.
  std::shared_ptr<ilp::NogoodStore> store;
  if (options.unified_learning) {
    if (auto* bnb = dynamic_cast<ilp::BranchAndBoundSolver*>(&solver);
        bnb != nullptr && bnb->options().learning) {
      if (options.store != nullptr) {
        // Caller-persisted store (e.g. the archex_server's per-family
        // registry): oracle nogoods from earlier runs prune this one.
        store = options.store;
      } else {
        ilp::NogoodStoreOptions store_opt;
        store_opt.max_nogoods = bnb->options().max_nogoods;
        store = std::make_shared<ilp::NogoodStore>(store_opt);
      }
      bnb->set_nogood_store(store);
    }
  }

  // Successive iterates differ by a few components, so their factoring
  // recursions share most pivot subproblems: always analyze through a cache,
  // preferring the caller's (which may already be warm).
  rel::EvalCache local_cache;
  rel::EvalContext ctx;
  ctx.cache = options.cache != nullptr ? options.cache : &local_cache;
  ctx.pool = options.pool;
  ctx.deadline = options.deadline;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    solver_watch.start();
    const ilp::IlpResult result = solver.solve(ilp.model());
    solver_watch.stop();
    report.solver_nodes += result.nodes_explored;
    report.solver_nodes_pruned += result.nodes_pruned;
    report.solver_steals += result.steal_count;
    report.solver_cuts_added += result.cuts_added;
    report.solver_cut_rounds += result.cut_rounds;
    report.solver_rc_fixings += result.rc_fixings;
    report.solver_pseudocost_branches += result.pseudocost_branches;
    report.solver_nogoods_learned += result.nogoods_learned;
    report.solver_nogood_prunings += result.nogood_prunings;
    report.solver_nogood_store_size = result.nogood_store_size;
    if (result.status == ilp::IlpStatus::kTimeLimit ||
        result.status == ilp::IlpStatus::kNodeLimit) {
      ++report.solver_limit_hits;
    }

    if (result.status == ilp::IlpStatus::kInfeasible) {
      report.status = SynthesisStatus::kUnfeasible;
      break;
    }
    const bool usable =
        result.optimal() || (options.accept_incumbent && !result.x.empty());
    if (!usable) {
      report.status = SynthesisStatus::kSolverFailure;
      break;
    }

    Configuration config = ilp.extract(result);

    analysis_watch.start();
    const auto [failure, worst_sink] =
        worst_sink_failure(config, options.method, ctx);
    analysis_watch.stop();

    MrIteration log;
    log.cost = config.total_cost();
    log.failure = failure;
    log.num_edges = config.num_selected_edges();
    log.num_components = config.num_used_nodes();

    if (failure <= options.target_failure) {
      report.iterations.push_back(log);
      report.status = SynthesisStatus::kSuccess;
      report.configuration = std::move(config);
      report.failure = failure;
      break;
    }

    if (store != nullptr) {
      // The exact oracle rejected this edge selection, and reliability
      // depends on nothing but the selection — any later solution choosing
      // the same edges extracts the same architecture and fails the same
      // way. Record the full selection as a permanent oracle nogood; nodes
      // whose boxes pin all candidate edges to it are pruned without an LP.
      ilp::Nogood rejected;
      rejected.source = ilp::NogoodSource::kOracle;
      const int num_edges = ilp.arch_template().num_candidate_edges();
      for (int e = 0; e < num_edges; ++e) {
        const ilp::Var v = ilp.edge_var(e);
        (result.value_bool(v) ? rejected.ones : rejected.zeros)
            .push_back(v.id);
      }
      if (store->insert(std::move(rejected)) >= 0) ++report.oracle_nogoods;
    }

    analysis_watch.start();
    const int k = options.lazy_strategy
                      ? 0
                      : learner.estimate_paths(failure,
                                               options.target_failure, config,
                                               worst_sink);
    const int added = learner.learn(config, k);
    analysis_watch.stop();

    log.estimated_k = k;
    log.new_constraints = added;
    report.iterations.push_back(log);

    if (added == 0) {
      // The learnable constraint space is exhausted. With a proven-optimal
      // solve this is the paper's UNFEASIBLE; a time-limited incumbent
      // (accept_incumbent) can be denser than the optimum and exhaust the
      // counts prematurely, so report the weaker verdict in that case.
      report.status = result.optimal() ? SynthesisStatus::kUnfeasible
                                       : SynthesisStatus::kSolverFailure;
      break;
    }
    if (iter + 1 == options.max_iterations) {
      report.status = SynthesisStatus::kIterationLimit;
    }
  }

  report.analysis_seconds = analysis_watch.elapsed_seconds();
  report.solver_seconds = solver_watch.elapsed_seconds();
  report.num_rows = ilp.model().num_rows();
  report.num_variables = ilp.model().num_variables();
  return report;
}

}  // namespace archex::core
