// archex/core/serialize.hpp
//
// JSON serialization of templates and configurations, so architecture
// libraries and synthesis results can be stored, versioned and exchanged
// (the paper's ARCHEX prototype kept these in MATLAB structs).
//
// Template document shape:
// {
//   "format": "archex-template", "version": 1,
//   "components": [ {"name": "...", "type": 0, "cost": 7000,
//                    "failure_prob": 2e-4, "power_supply": 70,
//                    "power_demand": 0}, ... ],
//   "candidate_edges": [ {"from": 0, "to": 5, "switch_cost": 1000}, ... ]
// }
//
// Configuration document shape:
// {
//   "format": "archex-configuration", "version": 1,
//   "template_components": <count, consistency check>,
//   "selected_edges": [indices of selected candidate edges]
// }
#pragma once

#include <string>

#include "core/arch_template.hpp"
#include "core/configuration.hpp"

namespace archex::core {

/// Serialize a template (pretty-printed JSON).
[[nodiscard]] std::string to_json(const Template& tmpl);

/// Parse a template document; throws json::JsonError / PreconditionError on
/// malformed or semantically invalid input.
[[nodiscard]] Template template_from_json(const std::string& text);

/// Serialize a configuration (selected edge indices only; pair it with its
/// template document).
[[nodiscard]] std::string to_json(const Configuration& config);

/// Parse a configuration document against its template.
[[nodiscard]] Configuration configuration_from_json(const Template& tmpl,
                                                    const std::string& text);

}  // namespace archex::core
