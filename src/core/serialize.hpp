// archex/core/serialize.hpp
//
// JSON serialization of templates, configurations, and the archex_server
// wire envelope, so architecture libraries and synthesis results can be
// stored, versioned and exchanged (the paper's ARCHEX prototype kept these
// in MATLAB structs) and solve requests can travel over a socket.
//
// Template document shape:
// {
//   "format": "archex-template", "version": 1,
//   "components": [ {"name": "...", "type": 0, "cost": 7000,
//                    "failure_prob": 2e-4, "power_supply": 70,
//                    "power_demand": 0}, ... ],
//   "candidate_edges": [ {"from": 0, "to": 5, "switch_cost": 1000}, ... ]
// }
//
// Configuration document shape:
// {
//   "format": "archex-configuration", "version": 1,
//   "template_components": <count, consistency check>,
//   "selected_edges": [indices of selected candidate edges]
// }
//
// Request envelope (one line of the archex_server wire protocol):
// {
//   "format": "archex-request", "version": 1,
//   "id": "r-42", "mode": "mr" | "ar" | "pareto",
//   "deadline_seconds": 10.0,      // optional; <= 0 = server default
//   "threads": 2,                  // optional solver thread budget
//   "target_failure": 1e-4,        // mr | ar
//   "lazy": false,                 // optional, mr only
//   "method": "factoring",         // optional exact analyzer name
//   "template": { ...template doc... },  // or "eps_generators": N
//   "pareto": {"initial_target": 1e-2, "tighten_factor": 0.5,
//              "max_points": 8}    // optional, pareto only
// }
// Unknown members are ignored everywhere (forward compatibility: newer
// clients may decorate requests without breaking older servers).
//
// All *_from_json loaders throw SpecError on malformed or semantically
// invalid documents, carrying (source, JSON path, reason) so a CLI spec
// file and a server wire request produce the same one-line diagnostic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/arch_template.hpp"
#include "core/configuration.hpp"
#include "support/check.hpp"

namespace archex::core {

/// A spec document (template/configuration file, server request) failed to
/// parse or validate. `source` names the document (file name, request id),
/// `json_path` points at the offending member ("$.components[3].cost"),
/// `reason` says what was wrong. what() is the one-line rendering
/// "source: json_path: reason" used verbatim by archex_cli's stderr
/// diagnostic and archex_server's error responses.
class SpecError : public Error {
 public:
  SpecError(std::string source, std::string json_path, std::string reason)
      : Error(source + ": " + json_path + ": " + reason),
        source_(std::move(source)),
        json_path_(std::move(json_path)),
        reason_(std::move(reason)) {}

  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const std::string& json_path() const { return json_path_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::string source_;
  std::string json_path_;
  std::string reason_;
};

/// Serialize a template (pretty-printed JSON).
[[nodiscard]] std::string to_json(const Template& tmpl);

/// Parse a template document; throws SpecError on malformed or semantically
/// invalid input. `source` names the document in diagnostics.
[[nodiscard]] Template template_from_json(const std::string& text,
                                          const std::string& source =
                                              "<template>");

/// Serialize a configuration (selected edge indices only; pair it with its
/// template document).
[[nodiscard]] std::string to_json(const Configuration& config);

/// Parse a configuration document against its template; throws SpecError.
[[nodiscard]] Configuration configuration_from_json(
    const Template& tmpl, const std::string& text,
    const std::string& source = "<configuration>");

/// Structural 64-bit signature of a template: FNV-1a over every component
/// attribute and candidate edge, order-sensitive. Two templates with equal
/// signatures describe the same synthesis problem family, which is the key
/// the archex_server uses to reuse learned-nogood stores across requests.
[[nodiscard]] std::uint64_t template_signature(const Template& tmpl);

// ---- archex_server wire envelope -------------------------------------------

enum class SolveMode { kMr, kAr, kPareto };

[[nodiscard]] std::string to_string(SolveMode mode);
[[nodiscard]] std::optional<SolveMode> parse_solve_mode(
    const std::string& name);

/// One solve request. Exactly one of `eps_generators` (procedural EPS
/// family, Section-V requirement pack) or `tmpl` (inline template document,
/// generic sink-fed requirement) describes the instance.
struct SolveRequest {
  std::string id;
  SolveMode mode = SolveMode::kMr;
  /// Wall-clock budget for the whole request; <= 0 uses the server default.
  double deadline_seconds = 0.0;
  /// Solver worker-thread budget; clamped by the server, 0 = serial search.
  int threads = 0;
  /// Reliability requirement r* (mr | ar modes).
  double target_failure = 1e-6;
  /// ILP-MR only: the Table-II "lazy" single-path learning strategy.
  bool lazy = false;
  /// Exact analyzer name ("factoring", "bdd", ...); empty = server default.
  std::string method;
  std::optional<int> eps_generators;
  std::optional<Template> tmpl;
  // Pareto sweep knobs (mode == kPareto).
  double initial_target = 1e-2;
  double tighten_factor = 0.5;
  int max_points = 8;
};

/// One solve response line. `status` vocabulary:
///   "optimal"          proven-optimal architecture (or completed sweep)
///   "unfeasible"       the template cannot meet the requirement
///   "iteration_limit"  ILP-MR ran out of iterations
///   "time_limit"       the request deadline expired mid-solve
///   "solver_failure"   the ILP engine failed (numeric trouble, node limit)
///   "rejected"         admission control shed the request (queue full)
///   "error"            the request was malformed (`error` has the SpecError
///                      one-liner) or the solve threw
struct SolveResponse {
  std::string id;
  std::string status = "error";
  std::string error;  // diagnostic for "error"/"rejected"

  // Synthesis result (mr | ar; best point for a non-empty pareto sweep).
  double cost = 0.0;
  double failure = 1.0;
  std::vector<int> selected_edges;
  int iterations = 0;

  // Pareto sweep points, least to most reliable (mode == pareto only).
  struct Point {
    double target = 0.0;
    double cost = 0.0;
    double approx_failure = 0.0;
    double exact_failure = 0.0;
    std::vector<int> selected_edges;
  };
  std::vector<Point> points;

  // Solve effort and server-side observability.
  long solver_nodes = 0;
  double solve_seconds = 0.0;
  /// Time the request spent queued before a worker picked it up.
  double queue_seconds = 0.0;
  /// Process-lifetime shared EvalCache counters at response time; a
  /// hit_rate > 0 on a cold template family proves cross-request reuse.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  /// Persistent learned-nogood store for this request's template family.
  long nogood_store_size = 0;
  long nogood_prunings = 0;
};

/// Serialize a request envelope (compact single line, newline-free — the
/// wire protocol is one JSON document per line).
[[nodiscard]] std::string to_json(const SolveRequest& request);

/// Parse and validate a request envelope; throws SpecError.
[[nodiscard]] SolveRequest request_from_json(const std::string& text,
                                             const std::string& source =
                                                 "<request>");

/// Serialize a response envelope (compact single line).
[[nodiscard]] std::string to_json(const SolveResponse& response);

/// Parse a response envelope (client side: tests, bench); throws SpecError.
[[nodiscard]] SolveResponse response_from_json(const std::string& text,
                                               const std::string& source =
                                                   "<response>");

}  // namespace archex::core
