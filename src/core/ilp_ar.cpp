#include "core/ilp_ar.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "core/reach_encoder.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace archex::core {

namespace {

using graph::NodeId;
using graph::TypeId;
using ilp::LinExpr;
using ilp::Var;

}  // namespace

IlpArSize encode_ilp_ar(ArchitectureIlp& ilp, const IlpArOptions& options) {
  const Template& tmpl = ilp.arch_template();
  const graph::Partition part = tmpl.partition();
  const std::vector<double> p_type = tmpl.type_failure_probs();
  const double target = options.target_failure;

  ARCHEX_REQUIRE(target > 0.0 && target < 1.0,
                 "target failure probability must lie in (0, 1)");

  Stopwatch setup;
  setup.start();

  const int rows_before = ilp.model().num_rows();
  const int vars_before = ilp.model().num_variables();

  const int walk_len =
      options.walk_length > 0 ? options.walk_length : part.num_types();
  // Exact indicators: eq. (11) counts true connectivity, so one-sided
  // variables would let the solver under-claim redundancy (see header).
  ReachEncoder encoder(ilp, ReachHonesty::kExact);

  for (NodeId sink : tmpl.sinks()) {
    // Every sink must genuinely be linked to a source; eq. (9) alone cannot
    // force this (a fully disconnected type contributes zero).
    const auto fed = encoder.from_sources(sink, walk_len);
    ARCHEX_REQUIRE(fed.has_value(),
                   "template offers no source-to-sink walk for sink " +
                       tmpl.component(sink).name);
    ilp.model().add_row(LinExpr(*fed) >= 1.0,
                        "connected_s" + std::to_string(sink));

    LinExpr reliability;  // LHS of eq. (9), scaled by 1/r*
    for (TypeId t = 0; t < part.num_types(); ++t) {
      const auto ti = static_cast<std::size_t>(t);

      // Connectivity indicators (eq. 11) for every member that could
      // possibly be linked; unreachable members contribute a constant 0.
      LinExpr count;
      int k_max = 0;
      for (NodeId w : part.members(t)) {
        if (const auto c = encoder.connected_between(w, sink, walk_len)) {
          count += *c;
          ++k_max;
        }
      }
      if (k_max == 0) continue;  // the type can never serve this sink

      // Redundancy-degree selectors x_vjk (eq. 10 + the counting link).
      std::vector<Var> x;
      LinExpr one_hot;
      LinExpr weighted;
      for (int k = 0; k <= k_max; ++k) {
        const Var xk = ilp.model().add_binary(
            "x_s" + std::to_string(sink) + "_t" + std::to_string(t) + "_k" +
            std::to_string(k));
        x.push_back(xk);
        one_hot += xk;
        weighted.add_term(xk, static_cast<double>(k));
      }
      ilp.model().add_row(std::move(one_hot) == 1.0);
      weighted -= count;
      ilp.model().add_row(std::move(weighted) == 0.0);

      // Contribution k * p_j^k to eq. (9). Terms that alone exceed r* make
      // their selector infeasible outright; fixing it keeps the scaled row's
      // coefficients within [0, 1].
      const double p = p_type[ti];
      for (int k = 1; k <= k_max; ++k) {
        const double term = static_cast<double>(k) * std::pow(p, k);
        if (term > target) {
          ilp.model().fix(x[static_cast<std::size_t>(k)], 0.0);
        } else if (term > 0.0) {
          reliability.add_term(x[static_cast<std::size_t>(k)], term / target);
        }
      }
    }
    ilp.model().add_row(std::move(reliability) <= 1.0,
                        "reliability_s" + std::to_string(sink));
  }

  setup.stop();
  IlpArSize size;
  size.num_constraints = ilp.model().num_rows() - rows_before;
  size.num_variables = ilp.model().num_variables() - vars_before;
  size.setup_seconds = setup.elapsed_seconds();
  return size;
}

IlpArReport run_ilp_ar(ArchitectureIlp& ilp, ilp::IlpSolver& solver,
                       const IlpArOptions& options) {
  IlpArReport report;

  const IlpArSize size = encode_ilp_ar(ilp, options);
  report.setup_seconds = size.setup_seconds;
  report.num_constraints = ilp.model().num_rows();
  report.num_variables = ilp.model().num_variables();

  Stopwatch solve;
  solve.start();
  const ilp::IlpResult result = solver.solve(ilp.model());
  solve.stop();
  report.solver_seconds = solve.elapsed_seconds();
  report.solver_nodes = result.nodes_explored;
  report.solver_nodes_pruned = result.nodes_pruned;
  report.solver_steals = result.steal_count;
  report.solver_cuts_added = result.cuts_added;
  report.solver_cut_rounds = result.cut_rounds;
  report.solver_rc_fixings = result.rc_fixings;
  report.solver_pseudocost_branches = result.pseudocost_branches;
  report.solver_nogoods_learned = result.nogoods_learned;
  report.solver_nogood_prunings = result.nogood_prunings;
  report.solver_nogood_store_size = result.nogood_store_size;

  if (result.status == ilp::IlpStatus::kInfeasible) {
    report.status = SynthesisStatus::kUnfeasible;
    return report;
  }
  const bool usable =
      result.optimal() || (options.accept_incumbent && !result.x.empty());
  if (!usable) {
    report.status = SynthesisStatus::kSolverFailure;
    return report;
  }

  Configuration config = ilp.extract(result);
  report.approx_failure = config.worst_approximate_failure();
  const rel::EvalContext ctx{options.cache, options.pool, options.deadline};
  report.exact_failure = config.worst_failure_probability(ctx, options.method);
  report.status = SynthesisStatus::kSuccess;
  report.configuration = std::move(config);
  return report;
}

}  // namespace archex::core
