// archex/core/reach_encoder.hpp
//
// Walk-indicator variables over the *decision* edges: the ILP counterpart of
// Lemma 1. For the fixed candidate graph, η is a constant matrix; over the
// reconfigurable template it becomes a family of auxiliary binaries
//
//   walk_to(t, u, len)   == 1 only if a selected walk u -> t of length <= len
//   from_sources(w, len) == 1 only if a selected walk source -> w of
//                           length <= len exists (any source in Π_1)
//
// built by unrolling the recurrence η_l(u,t) = e_ut ∨ ∨_m (e_um ∧ η_{l-1}(m,t))
// with AND/OR linearizations. Two structural optimizations keep the encoding
// small (the paper notes the same effect from EPS sparsity in Section V):
//
//  * candidate-graph pruning — a variable is only created when the walk is
//    possible at all in the template (static η on the candidate graph);
//  * a choice of linearization strength per use site:
//      - kUpperOnly emits just the rows preventing *over*-claiming
//        (y_OR <= Σ operands, z_AND <= each operand). Sound wherever the
//        constraint only lower-bounds connectivity — ILP-MR's eq. (6) rows —
//        because under-claiming can only strengthen the requirement;
//      - kExact adds the opposite direction too (y_OR >= each operand,
//        z_AND >= a + b - 1), pinning every indicator to the true value.
//        Required by ILP-AR's counting equality (eq. 11): with one-sided
//        variables the solver could under-claim a type's redundancy to 0 and
//        erase its k·p^k term from eq. (9) entirely.
//
// The length index strictly decreases through the recurrence, so no circular
// support is possible even on templates with same-type tie cycles.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/arch_ilp.hpp"
#include "graph/bool_matrix.hpp"

namespace archex::core {

enum class ReachHonesty {
  kUpperOnly,  // indicators may be forced up only when truly supported
  kExact,      // indicators equal true connectivity in integer solutions
};

class ReachEncoder {
 public:
  explicit ReachEncoder(ArchitectureIlp& ilp,
                        ReachHonesty honesty = ReachHonesty::kUpperOnly);

  /// Variable that is 1 only if a selected walk u -> target with length in
  /// [1, len] exists. Returns nullopt when even the candidate graph has no
  /// such walk (the constraint contribution is then a constant 0).
  [[nodiscard]] std::optional<ilp::Var> walk_to(graph::NodeId target,
                                                graph::NodeId u, int len);

  /// Variable that is 1 only if some source reaches w by a selected walk of
  /// length <= len; for a source w itself this is the constant 1.
  [[nodiscard]] std::optional<ilp::Var> from_sources(graph::NodeId w, int len);

  /// Connectivity indicator of eq. (11): w is linked to a source and to the
  /// sink. For w == sink it degenerates to from_sources, for w a source to
  /// walk_to.
  [[nodiscard]] std::optional<ilp::Var> connected_between(graph::NodeId w,
                                                          graph::NodeId sink,
                                                          int len);

  /// Number of auxiliary variables created so far (for size reporting).
  [[nodiscard]] int num_aux_vars() const { return aux_vars_; }

 private:
  /// Static walk indicator η_len of the candidate graph, built lazily.
  const graph::BoolMatrix& candidate_eta(int len);

  [[nodiscard]] bool candidate_walk(graph::NodeId u, graph::NodeId v, int len);
  [[nodiscard]] bool source_candidate_walk(graph::NodeId w, int len);

  ilp::Var and_var(ilp::Var a, ilp::Var b);
  ilp::Var or_var(const std::vector<ilp::Var>& operands);

  ArchitectureIlp& ilp_;
  const Template& tmpl_;
  ReachHonesty honesty_;
  graph::Digraph candidates_;
  std::vector<bool> is_source_;
  std::vector<graph::BoolMatrix> eta_;  // eta_[l-1] = η_l of candidate graph

  std::map<std::tuple<graph::NodeId, graph::NodeId, int>, ilp::Var> walk_memo_;
  std::map<std::pair<graph::NodeId, int>, ilp::Var> source_memo_;
  std::map<std::pair<int, int>, ilp::Var> and_memo_;
  int aux_vars_ = 0;
};

}  // namespace archex::core
