#include "core/configuration.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "graph/dot.hpp"
#include "graph/paths.hpp"
#include "support/check.hpp"

namespace archex::core {

Configuration::Configuration(const Template& tmpl,
                             std::vector<bool> edge_selected)
    : tmpl_(&tmpl), selected_(std::move(edge_selected)) {
  ARCHEX_REQUIRE(
      static_cast<int>(selected_.size()) == tmpl.num_candidate_edges(),
      "selection vector must cover every candidate edge");
}

bool Configuration::edge_selected(int index) const {
  ARCHEX_REQUIRE(index >= 0 && index < tmpl_->num_candidate_edges(),
                 "edge index out of range");
  return selected_[static_cast<std::size_t>(index)];
}

int Configuration::num_selected_edges() const {
  return static_cast<int>(
      std::count(selected_.begin(), selected_.end(), true));
}

std::vector<bool> Configuration::used_nodes() const {
  std::vector<bool> used(static_cast<std::size_t>(tmpl_->num_components()),
                         false);
  for (int k = 0; k < tmpl_->num_candidate_edges(); ++k) {
    if (!selected_[static_cast<std::size_t>(k)]) continue;
    const CandidateEdge& e = tmpl_->candidate_edge(k);
    used[static_cast<std::size_t>(e.from)] = true;
    used[static_cast<std::size_t>(e.to)] = true;
  }
  return used;
}

int Configuration::num_used_nodes() const {
  const auto used = used_nodes();
  return static_cast<int>(std::count(used.begin(), used.end(), true));
}

graph::Digraph Configuration::selected_graph() const {
  graph::Digraph g(tmpl_->num_components());
  for (int k = 0; k < tmpl_->num_candidate_edges(); ++k) {
    if (!selected_[static_cast<std::size_t>(k)]) continue;
    const CandidateEdge& e = tmpl_->candidate_edge(k);
    if (!g.has_edge(e.from, e.to)) g.add_edge(e.from, e.to);
  }
  return g;
}

graph::Digraph Configuration::analysis_graph() const {
  return graph::expand_same_type_shorthand(selected_graph(),
                                           tmpl_->partition());
}

double Configuration::total_cost() const {
  double cost = 0.0;
  const auto used = used_nodes();
  for (graph::NodeId v = 0; v < tmpl_->num_components(); ++v) {
    if (used[static_cast<std::size_t>(v)]) cost += tmpl_->component(v).cost;
  }
  // Switch cost once per unordered pair with any selected direction.
  std::set<std::pair<graph::NodeId, graph::NodeId>> charged;
  for (int k = 0; k < tmpl_->num_candidate_edges(); ++k) {
    if (!selected_[static_cast<std::size_t>(k)]) continue;
    const CandidateEdge& e = tmpl_->candidate_edge(k);
    const auto pair = std::minmax(e.from, e.to);
    if (charged.insert({pair.first, pair.second}).second) {
      cost += e.switch_cost;
    }
  }
  return cost;
}

double Configuration::failure_probability(graph::NodeId sink,
                                          rel::ExactMethod method) const {
  return rel::failure_probability(analysis_graph(), tmpl_->partition(), sink,
                                  tmpl_->node_failure_probs(), method);
}

double Configuration::failure_probability(graph::NodeId sink,
                                          const rel::EvalContext& ctx,
                                          rel::ExactMethod method) const {
  return rel::failure_probability(analysis_graph(),
                                  tmpl_->partition().members(0), sink,
                                  tmpl_->node_failure_probs(), ctx, method);
}

double Configuration::worst_failure_probability(
    rel::ExactMethod method) const {
  return rel::worst_failure_probability(analysis_graph(), tmpl_->partition(),
                                        tmpl_->sinks(),
                                        tmpl_->node_failure_probs(), method);
}

double Configuration::worst_failure_probability(
    const rel::EvalContext& ctx, rel::ExactMethod method) const {
  return rel::worst_failure_probability(analysis_graph(), tmpl_->partition(),
                                        tmpl_->sinks(),
                                        tmpl_->node_failure_probs(), method,
                                        ctx);
}

rel::ApproxResult Configuration::approximate_failure(
    graph::NodeId sink) const {
  return rel::approximate_failure(analysis_graph(), tmpl_->partition(), sink,
                                  tmpl_->type_failure_probs());
}

double Configuration::worst_approximate_failure() const {
  double worst = 0.0;
  for (graph::NodeId sink : tmpl_->sinks()) {
    worst = std::max(worst, approximate_failure(sink).r_tilde);
  }
  return worst;
}

std::string Configuration::to_dot(const std::string& title) const {
  graph::DotStyle style;
  style.node_labels = tmpl_->node_labels();
  style.title = title;
  return graph::to_dot(selected_graph(), tmpl_->partition(), style);
}

std::string Configuration::summary() const {
  std::ostringstream os;
  os << "components " << num_used_nodes() << '/' << tmpl_->num_components()
     << ", edges " << num_selected_edges() << '/'
     << tmpl_->num_candidate_edges() << ", cost " << total_cost();
  return os.str();
}

}  // namespace archex::core
