// archex/core/configuration.hpp
//
// A configuration: one assignment over the template's candidate-edge
// Booleans (Section II). Provides the architecture graph, the eq.-(1) cost,
// and exact/approximate reliability evaluation on the selected structure
// (with the Section-V same-type shorthand expanded for analysis).
#pragma once

#include <string>
#include <vector>

#include "core/arch_template.hpp"
#include "graph/digraph.hpp"
#include "rel/approx.hpp"
#include "rel/exact.hpp"

namespace archex::core {

class Configuration {
 public:
  /// `edge_selected[k]` decides candidate edge k of `tmpl`. The template
  /// must outlive the configuration.
  Configuration(const Template& tmpl, std::vector<bool> edge_selected);

  [[nodiscard]] const Template& architecture_template() const {
    return *tmpl_;
  }

  [[nodiscard]] bool edge_selected(int index) const;
  [[nodiscard]] int num_selected_edges() const;
  [[nodiscard]] const std::vector<bool>& selection() const {
    return selected_;
  }

  /// δ_i: a node is instantiated iff it has at least one selected incident
  /// edge (in either direction), as in eq. (1).
  [[nodiscard]] std::vector<bool> used_nodes() const;
  [[nodiscard]] int num_used_nodes() const;

  /// Architecture graph G* over the template's nodes and selected edges.
  [[nodiscard]] graph::Digraph selected_graph() const;

  /// G* with same-type shorthand edges expanded into shared-neighbor
  /// redundancy groups (the graph reliability analysis runs on).
  [[nodiscard]] graph::Digraph analysis_graph() const;

  /// Total cost per eq. (1): Σ δ_i c_i + Σ_{i<j} (e_ij ∨ e_ji) c̃_ij.
  [[nodiscard]] double total_cost() const;

  /// Exact failure probability of one sink's functional link.
  [[nodiscard]] double failure_probability(
      graph::NodeId sink,
      rel::ExactMethod method = rel::ExactMethod::kFactoring) const;

  /// Accelerated variant: factoring consults `ctx.cache` at every pivot and
  /// runs subtrees on `ctx.pool` (bit-identical to the plain overload).
  [[nodiscard]] double failure_probability(
      graph::NodeId sink, const rel::EvalContext& ctx,
      rel::ExactMethod method = rel::ExactMethod::kFactoring) const;

  /// Worst exact failure probability over all sinks (the requirement the
  /// synthesis algorithms check).
  [[nodiscard]] double worst_failure_probability(
      rel::ExactMethod method = rel::ExactMethod::kFactoring) const;

  /// Accelerated variant of the worst-sink evaluation.
  [[nodiscard]] double worst_failure_probability(
      const rel::EvalContext& ctx,
      rel::ExactMethod method = rel::ExactMethod::kFactoring) const;

  /// Approximate algebra (eq. 7) for one sink's functional link.
  [[nodiscard]] rel::ApproxResult approximate_failure(
      graph::NodeId sink) const;

  /// Worst r̃ over all sinks.
  [[nodiscard]] double worst_approximate_failure() const;

  /// DOT rendering with component names (single-line-diagram flavor).
  [[nodiscard]] std::string to_dot(const std::string& title = {}) const;

  /// Short textual summary: used nodes, edges, cost.
  [[nodiscard]] std::string summary() const;

 private:
  const Template* tmpl_;
  std::vector<bool> selected_;
};

}  // namespace archex::core
