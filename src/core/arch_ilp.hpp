// archex/core/arch_ilp.hpp
//
// The base ILP over a template's candidate edges — the GENILP step shared by
// ILP-MR (Algorithm 1) and ILP-AR (Algorithm 3). It owns:
//
//  * one binary decision variable per candidate edge (the set E);
//  * node-activation binaries δ_i = OR of incident edges, linearized both
//    ways so δ is exact (needed by power-adequacy rules);
//  * per-unordered-pair switch binaries s_ij >= e_ij, s_ij >= e_ji charging
//    each contactor once, per eq. (1);
//  * the eq.-(1) objective  Σ δ_i c_i + Σ s_ij c̃_ij;
//  * builders for the interconnection constraints (2), (3) and the balance
//    equation (4).
//
// Reliability constraints are layered on top by LearnCons (ilp_mr.cpp) and
// by the approximate-algebra encoder (ilp_ar.cpp).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/arch_template.hpp"
#include "core/configuration.hpp"
#include "ilp/model.hpp"
#include "ilp/solver.hpp"

namespace archex::core {

class ArchitectureIlp {
 public:
  explicit ArchitectureIlp(const Template& tmpl);

  [[nodiscard]] const Template& arch_template() const { return *tmpl_; }
  [[nodiscard]] ilp::Model& model() { return model_; }
  [[nodiscard]] const ilp::Model& model() const { return model_; }

  /// Decision variable of candidate edge k.
  [[nodiscard]] ilp::Var edge_var(int index) const;
  /// Decision variable of the candidate edge from -> to, if declared.
  [[nodiscard]] std::optional<ilp::Var> edge_var(graph::NodeId from,
                                                 graph::NodeId to) const;
  /// Activation variable δ_v.
  [[nodiscard]] ilp::Var node_active(graph::NodeId v) const;

  /// A binary variable fixed to 0/1 (shared; created on first use).
  [[nodiscard]] ilp::Var constant(bool value);

  // ---- interconnection requirement builders --------------------------------

  /// eq. (2): bound the number of selected edges from `from` into `to_set`.
  void add_out_degree_rule(graph::NodeId from,
                           const std::vector<graph::NodeId>& to_set, int lo,
                           int hi);

  /// eq. (2) mirrored: bound the number of selected edges from `from_set`
  /// into `to`.
  void add_in_degree_rule(graph::NodeId to,
                          const std::vector<graph::NodeId>& from_set, int lo,
                          int hi);

  /// eq. (3): if any edge from a node of `triggers` into `d` is selected,
  /// then `d` must have at least one selected edge into `required`.
  void add_conditional_successor_rule(
      const std::vector<graph::NodeId>& triggers, graph::NodeId d,
      const std::vector<graph::NodeId>& required);

  /// eq. (3) mirrored: if any edge from `d` into a node of `targets` is
  /// selected, then `d` must have at least one selected edge from
  /// `required_preds` (d must itself be fed before it can feed others).
  void add_conditional_predecessor_rule(
      const std::vector<graph::NodeId>& targets, graph::NodeId d,
      const std::vector<graph::NodeId>& required_preds);

  /// eq. (4) at node d: Σ_{b ∈ cand preds} supply_b e_bd >=
  ///                    Σ_{l ∈ cand succs} demand_l e_dl.
  void add_balance_rule(graph::NodeId d);

  /// Global adequacy: Σ_{sources} supply_s δ_s >= Σ_{sinks} demand (with all
  /// sinks mandatory).
  void add_global_power_adequacy();

  /// Every sink must be fed: in-degree >= 1 over all candidate preds.
  void require_all_sinks_fed();

  /// Build the configuration selected by a solver result.
  [[nodiscard]] Configuration extract(const ilp::IlpResult& result) const;

 private:
  const Template* tmpl_;
  ilp::Model model_;
  std::vector<ilp::Var> edge_vars_;
  std::vector<ilp::Var> delta_;
  std::map<std::pair<graph::NodeId, graph::NodeId>, ilp::Var> switch_vars_;
  std::optional<ilp::Var> const_zero_;
  std::optional<ilp::Var> const_one_;
};

}  // namespace archex::core
