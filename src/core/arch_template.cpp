#include "core/arch_template.hpp"

#include <cmath>

#include "support/check.hpp"

namespace archex::core {

graph::NodeId Template::add_component(Component component) {
  ARCHEX_REQUIRE(component.type >= 0, "component type must be non-negative");
  ARCHEX_REQUIRE(component.cost >= 0.0, "component cost must be non-negative");
  ARCHEX_REQUIRE(
      component.failure_prob >= 0.0 && component.failure_prob <= 1.0,
      "failure probability must lie in [0, 1]");
  ARCHEX_REQUIRE(component.power_supply >= 0.0 &&
                     component.power_demand >= 0.0,
                 "power attributes must be non-negative");
  components_.push_back(std::move(component));
  return static_cast<graph::NodeId>(components_.size()) - 1;
}

int Template::add_candidate_edge(graph::NodeId from, graph::NodeId to,
                                 double switch_cost) {
  ARCHEX_REQUIRE(from >= 0 && from < num_components(), "from out of range");
  ARCHEX_REQUIRE(to >= 0 && to < num_components(), "to out of range");
  ARCHEX_REQUIRE(from != to, "self-loop candidates are not allowed");
  ARCHEX_REQUIRE(switch_cost >= 0.0, "switch cost must be non-negative");
  ARCHEX_REQUIRE(!edge_index(from, to).has_value(),
                 "duplicate candidate edge");
  if (const auto reverse = edge_index(to, from)) {
    ARCHEX_REQUIRE(edges_[static_cast<std::size_t>(*reverse)].switch_cost ==
                       switch_cost,
                   "switch cost must be symmetric across a pair (c̃_ij)");
  }
  edges_.push_back({from, to, switch_cost});
  return num_candidate_edges() - 1;
}

const Component& Template::component(graph::NodeId v) const {
  ARCHEX_REQUIRE(v >= 0 && v < num_components(), "component out of range");
  return components_[static_cast<std::size_t>(v)];
}

const CandidateEdge& Template::candidate_edge(int index) const {
  ARCHEX_REQUIRE(index >= 0 && index < num_candidate_edges(),
                 "edge index out of range");
  return edges_[static_cast<std::size_t>(index)];
}

std::optional<int> Template::edge_index(graph::NodeId from,
                                        graph::NodeId to) const {
  for (std::size_t k = 0; k < edges_.size(); ++k) {
    if (edges_[k].from == from && edges_[k].to == to) {
      return static_cast<int>(k);
    }
  }
  return std::nullopt;
}

graph::Partition Template::partition() const {
  ARCHEX_REQUIRE(!components_.empty(), "template has no components");
  std::vector<graph::TypeId> types;
  types.reserve(components_.size());
  for (const Component& c : components_) types.push_back(c.type);
  return graph::Partition(types);
}

std::vector<graph::NodeId> Template::sources() const {
  return partition().members(0);
}

std::vector<graph::NodeId> Template::sinks() const {
  const graph::Partition part = partition();
  return part.members(part.num_types() - 1);
}

graph::TypeId Template::num_types() const { return partition().num_types(); }

graph::Digraph Template::candidate_graph() const {
  graph::Digraph g(num_components());
  for (const CandidateEdge& e : edges_) g.add_edge(e.from, e.to);
  return g;
}

std::vector<double> Template::node_failure_probs() const {
  std::vector<double> p;
  p.reserve(components_.size());
  for (const Component& c : components_) p.push_back(c.failure_prob);
  return p;
}

std::vector<double> Template::type_failure_probs() const {
  const graph::Partition part = partition();
  std::vector<double> p(static_cast<std::size_t>(part.num_types()), 0.0);
  for (graph::TypeId t = 0; t < part.num_types(); ++t) {
    const auto& members = part.members(t);
    const double first =
        components_[static_cast<std::size_t>(members.front())].failure_prob;
    for (graph::NodeId v : members) {
      ARCHEX_REQUIRE(
          components_[static_cast<std::size_t>(v)].failure_prob == first,
          "approximate algebra requires a homogeneous failure probability "
          "per type (p_j)");
    }
    p[static_cast<std::size_t>(t)] = first;
  }
  return p;
}

std::vector<std::string> Template::node_labels() const {
  std::vector<std::string> labels;
  labels.reserve(components_.size());
  for (const Component& c : components_) labels.push_back(c.name);
  return labels;
}

}  // namespace archex::core
