// archex/core/synthesis_status.hpp
//
// Shared outcome vocabulary of the two synthesis algorithms.
#pragma once

#include <string>

namespace archex::core {

enum class SynthesisStatus {
  kSuccess,         // an optimal, requirement-satisfying architecture found
  kUnfeasible,      // the template cannot satisfy the requirements
  kIterationLimit,  // ILP-MR ran out of iterations
  kSolverFailure,   // the ILP engine hit a node/time limit or numeric issue
};

[[nodiscard]] inline std::string to_string(SynthesisStatus status) {
  switch (status) {
    case SynthesisStatus::kSuccess: return "success";
    case SynthesisStatus::kUnfeasible: return "UNFEASIBLE";
    case SynthesisStatus::kIterationLimit: return "iteration-limit";
    case SynthesisStatus::kSolverFailure: return "solver-failure";
  }
  return "unknown";
}

}  // namespace archex::core
