#include "core/reach_encoder.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace archex::core {

using ilp::LinExpr;
using ilp::Var;

ReachEncoder::ReachEncoder(ArchitectureIlp& ilp, ReachHonesty honesty)
    : ilp_(ilp),
      tmpl_(ilp.arch_template()),
      honesty_(honesty),
      candidates_(tmpl_.candidate_graph()) {
  is_source_.assign(static_cast<std::size_t>(tmpl_.num_components()), false);
  for (graph::NodeId s : tmpl_.sources()) {
    is_source_[static_cast<std::size_t>(s)] = true;
  }
}

const graph::BoolMatrix& ReachEncoder::candidate_eta(int len) {
  ARCHEX_REQUIRE(len >= 1, "walk length must be at least 1");
  if (eta_.empty()) {
    eta_.push_back(graph::BoolMatrix::adjacency(candidates_));
  }
  while (static_cast<int>(eta_.size()) < len) {
    // η_{l+1} = η_l ∨ (η_l ⊙ e); reuse η_1 as e.
    eta_.push_back(
        logical_or(eta_.back(), logical_product(eta_.back(), eta_.front())));
  }
  return eta_[static_cast<std::size_t>(len - 1)];
}

bool ReachEncoder::candidate_walk(graph::NodeId u, graph::NodeId v, int len) {
  if (len < 1) return false;
  return candidate_eta(len).get(u, v);
}

bool ReachEncoder::source_candidate_walk(graph::NodeId w, int len) {
  if (is_source_[static_cast<std::size_t>(w)]) return true;
  if (len < 1) return false;
  for (graph::NodeId s : tmpl_.sources()) {
    if (candidate_eta(len).get(s, w)) return true;
  }
  return false;
}

Var ReachEncoder::and_var(Var a, Var b) {
  const auto key = std::minmax(a.id, b.id);
  if (const auto it = and_memo_.find({key.first, key.second});
      it != and_memo_.end()) {
    return it->second;
  }
  const Var z = ilp_.model().add_binary();
  // z can be 1 only when both operands are.
  ilp_.model().add_row(LinExpr(z) - LinExpr(a) <= 0.0);
  ilp_.model().add_row(LinExpr(z) - LinExpr(b) <= 0.0);
  if (honesty_ == ReachHonesty::kExact) {
    // ... and must be 1 when both are: z >= a + b - 1.
    ilp_.model().add_row(LinExpr(z) - LinExpr(a) - LinExpr(b) >= -1.0);
  }
  and_memo_.emplace(std::pair<int, int>{key.first, key.second}, z);
  ++aux_vars_;
  return z;
}

Var ReachEncoder::or_var(const std::vector<Var>& operands) {
  ARCHEX_ASSERT(!operands.empty(), "OR over an empty operand list");
  if (operands.size() == 1) return operands.front();
  const Var y = ilp_.model().add_binary();
  // y can be 1 only when some operand is.
  LinExpr sum;
  for (Var x : operands) sum += x;
  ilp_.model().add_row(LinExpr(y) - sum <= 0.0);
  if (honesty_ == ReachHonesty::kExact) {
    // ... and must be 1 when any operand is: y >= x for each x.
    for (Var x : operands) {
      ilp_.model().add_row(LinExpr(y) - LinExpr(x) >= 0.0);
    }
  }
  ++aux_vars_;
  return y;
}

std::optional<Var> ReachEncoder::walk_to(graph::NodeId target, graph::NodeId u,
                                         int len) {
  ARCHEX_REQUIRE(u != target, "walk_to expects distinct endpoints");
  ARCHEX_REQUIRE(len >= 1, "walk length must be at least 1");
  if (!candidate_walk(u, target, len)) return std::nullopt;

  const auto key = std::make_tuple(target, u, len);
  if (const auto it = walk_memo_.find(key); it != walk_memo_.end()) {
    return it->second;
  }

  std::vector<Var> operands;
  if (const auto direct = ilp_.edge_var(u, target)) {
    operands.push_back(*direct);
  }
  if (len >= 2) {
    for (graph::NodeId m : candidates_.successors(u)) {
      if (m == target || m == u) continue;
      if (!candidate_walk(m, target, len - 1)) continue;
      const auto step = ilp_.edge_var(u, m);
      ARCHEX_ASSERT(step.has_value(), "candidate successor without edge var");
      const auto rest = walk_to(target, m, len - 1);
      ARCHEX_ASSERT(rest.has_value(),
                    "candidate walk exists but recursion found none");
      operands.push_back(and_var(*step, *rest));
    }
  }
  ARCHEX_ASSERT(!operands.empty(),
                "candidate η is set but no operand was derivable");
  const Var y = or_var(operands);
  walk_memo_.emplace(key, y);
  return y;
}

std::optional<Var> ReachEncoder::from_sources(graph::NodeId w, int len) {
  ARCHEX_REQUIRE(len >= 0, "walk length must be non-negative");
  if (is_source_[static_cast<std::size_t>(w)]) return ilp_.constant(true);
  if (len < 1 || !source_candidate_walk(w, len)) return std::nullopt;

  const auto key = std::make_pair(w, len);
  if (const auto it = source_memo_.find(key); it != source_memo_.end()) {
    return it->second;
  }

  std::vector<Var> operands;
  for (graph::NodeId p : candidates_.predecessors(w)) {
    const auto step = ilp_.edge_var(p, w);
    ARCHEX_ASSERT(step.has_value(), "candidate predecessor without edge var");
    if (is_source_[static_cast<std::size_t>(p)]) {
      operands.push_back(*step);
      continue;
    }
    if (len >= 2 && source_candidate_walk(p, len - 1)) {
      const auto rest = from_sources(p, len - 1);
      ARCHEX_ASSERT(rest.has_value(),
                    "candidate source walk exists but recursion found none");
      operands.push_back(and_var(*step, *rest));
    }
  }
  if (operands.empty()) return std::nullopt;
  const Var y = or_var(operands);
  source_memo_.emplace(key, y);
  return y;
}

std::optional<Var> ReachEncoder::connected_between(graph::NodeId w,
                                                   graph::NodeId sink,
                                                   int len) {
  if (w == sink) return from_sources(w, len);
  const auto down = walk_to(sink, w, len);
  if (!down) return std::nullopt;
  const auto up = from_sources(w, len);
  if (!up) return std::nullopt;
  if (up->id == ilp_.constant(true).id) return down;
  return and_var(*down, *up);
}

}  // namespace archex::core
