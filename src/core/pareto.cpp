#include "core/pareto.hpp"

#include "support/check.hpp"

namespace archex::core {

ParetoFrontier sweep_pareto_frontier(
    const std::function<ArchitectureIlp()>& make_base_ilp,
    ilp::IlpSolver& solver, const ParetoOptions& options) {
  ARCHEX_REQUIRE(options.initial_target > 0.0 && options.initial_target < 1.0,
                 "initial target must lie in (0, 1)");
  ARCHEX_REQUIRE(
      options.tighten_factor > 0.0 && options.tighten_factor < 1.0,
      "tighten factor must lie in (0, 1)");
  ARCHEX_REQUIRE(options.max_points >= 1, "need at least one sweep point");

  ParetoFrontier frontier;
  // Adjacent sweep points share most factoring subproblems; evaluate every
  // step through one cache (the caller's, if provided, which may be warm).
  rel::EvalCache local_cache;
  double target = options.initial_target;
  for (int step = 0; step < options.max_points; ++step) {
    ArchitectureIlp ilp = make_base_ilp();
    IlpArOptions ar;
    ar.target_failure = target;
    ar.accept_incumbent = options.accept_incumbent;
    ar.cache = options.cache != nullptr ? options.cache : &local_cache;
    ar.pool = options.pool;
    ar.method = options.method;
    ar.deadline = options.deadline;
    IlpArReport report = run_ilp_ar(ilp, solver, ar);
    frontier.solver_nodes += report.solver_nodes;
    frontier.solver_steals += report.solver_steals;
    frontier.solver_cuts_added += report.solver_cuts_added;
    frontier.solver_rc_fixings += report.solver_rc_fixings;
    frontier.solver_pseudocost_branches += report.solver_pseudocost_branches;
    frontier.solver_nogoods_learned += report.solver_nogoods_learned;
    frontier.solver_nogood_prunings += report.solver_nogood_prunings;

    frontier.terminal_status = report.status;
    if (report.status != SynthesisStatus::kSuccess) break;

    ParetoPoint point{target, report.configuration->total_cost(),
                      report.approx_failure, report.exact_failure,
                      std::move(*report.configuration)};
    // Guard against a degenerate step: if the achieved estimate did not move
    // below the previous point's, tightening has stalled. The new
    // architecture is dominated by the previous point, so drop it (keeping
    // the frontier strictly decreasing in r̃) and record the stall.
    if (!frontier.points.empty() &&
        point.approx_failure >= frontier.points.back().approx_failure) {
      frontier.tightening_stalled = true;
      frontier.stalled_target = point.target;
      frontier.stalled_approx_failure = point.approx_failure;
      break;
    }
    frontier.points.push_back(std::move(point));

    const double achieved = frontier.points.back().approx_failure;
    if (achieved <= 0.0) break;  // perfectly reliable: nothing tighter
    target = achieved * options.tighten_factor;
  }
  return frontier;
}

}  // namespace archex::core
