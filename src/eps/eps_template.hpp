// archex/eps/eps_template.hpp
//
// Procedural generator for the aircraft EPS architecture templates of
// Section V. The base template ("two of each type per side, one APU") has
// 21 nodes; the scalability study of Tables II/III grows it to
// |V| ≈ 20, 30, 40, 50 with 4, 6, 8, 10 generators.
//
// Candidate interconnections (the composition rules of the EPS library):
//   generator -> any AC bus        (switched by contactors)
//   APU       -> any AC bus
//   AC bus    -- next AC bus       (same-type tie: redundancy shorthand)
//   AC bus    -> any rectifier
//   rectifier -> any DC bus
//   DC bus    -- next DC bus       (same-type tie)
//   DC bus    -> any load
#pragma once

#include <vector>

#include "core/arch_ilp.hpp"
#include "core/arch_template.hpp"
#include "eps/eps_library.hpp"

namespace archex::eps {

struct EpsSpec {
  /// Main generators, split half-and-half between left and right; ratings
  /// cycle through Table I's {70, 50, 80, 30} kW.
  int num_generators = 4;
  /// One 100-kW auxiliary power unit connectable to every AC bus.
  bool include_apu = true;
  /// AC buses / rectifiers / DC buses / loads each scale with the
  /// generator count; load demands cycle Table I's {30, 10, 10, 20} kW.
  /// (|V| = 5 * num_generators + 1 with the APU.)
  EpsLibrary library;
};

/// A generated template plus the node groups benchmarks and requirement
/// builders address by role.
struct EpsTemplate {
  core::Template tmpl;
  std::vector<graph::NodeId> generators;  // main generators (no APU)
  graph::NodeId apu = -1;                 // -1 when absent
  std::vector<graph::NodeId> ac_buses;
  std::vector<graph::NodeId> rectifiers;
  std::vector<graph::NodeId> dc_buses;
  std::vector<graph::NodeId> loads;

  /// All power sources: generators plus APU.
  [[nodiscard]] std::vector<graph::NodeId> sources() const {
    std::vector<graph::NodeId> out = generators;
    if (apu >= 0) out.push_back(apu);
    return out;
  }
};

/// Build the template for `spec`.
[[nodiscard]] EpsTemplate make_eps_template(const EpsSpec& spec);

/// Install the Section-V interconnection and power-flow requirements on a
/// fresh base ILP over the template:
///  * every load is fed by exactly one DC bus;
///  * a rectifier feeding a DC bus is fed by exactly one AC bus (eq. 2);
///  * a DC bus feeding a load or a tied DC bus has >= 1 rectifier (eq. 3);
///  * an AC bus feeding a rectifier or a tied AC bus has >= 1 source (eq. 3);
///  * generators feed at most one AC bus, the APU at most two;
///  * eq.-(4) balance at every AC bus (generation vs rectifier draw) and
///    DC bus (rectifier capacity vs load demand);
///  * global power adequacy over instantiated sources.
void apply_eps_requirements(core::ArchitectureIlp& ilp,
                            const EpsTemplate& eps);

/// Convenience: template + base ILP with all EPS requirements installed.
[[nodiscard]] core::ArchitectureIlp make_eps_ilp(const EpsTemplate& eps);

}  // namespace archex::eps
