// archex/eps/eps_library.hpp
//
// The aircraft electric-power-system component library of Table I:
//
//   | Generators g(kW): LG1 70, LG2 50, RG1 80, RG2 30, APU 100 |
//   | Loads     l(kW): LL1 30, LL2 10, RL1 10, RL2 20           |
//   | Costs: generator g/10 (g in W, i.e. 100/kW), bus 2000,     |
//   |        rectifier 2000, contactor 1000                      |
//
// Generators, buses and rectifiers fail with probability 2e-4; loads and
// contactors are assumed perfectly reliable (as in the paper's examples).
//
// Two attributes are not in Table I and are our documented modeling
// additions for the eq.-(4) balance rules (see DESIGN.md): a rectifier
// draws `rectifier_draw_kw` from its AC bus and can deliver
// `rectifier_capacity_kw` to its DC bus.
#pragma once

#include <string>

#include "core/arch_template.hpp"

namespace archex::eps {

/// Component types of the EPS template, ordered source -> sink as the
/// paper's partition requires (Π_1 = generators, Π_n = loads).
enum EpsType : graph::TypeId {
  kGenerator = 0,
  kAcBus = 1,
  kRectifier = 2,
  kDcBus = 3,
  kLoad = 4,
};
inline constexpr int kNumEpsTypes = 5;

struct EpsLibrary {
  /// c = g/10 with g in watts == 100 per kW (Table I).
  double generator_cost_per_kw = 100.0;
  double bus_cost = 2000.0;
  double rectifier_cost = 2000.0;
  double contactor_cost = 1000.0;

  /// Failure probability of generators, buses and rectifiers.
  double component_failure = 2e-4;

  /// Power a rectifier can deliver to DC buses (modeling addition).
  double rectifier_capacity_kw = 100.0;
  /// Power a rectifier draws from its AC bus (modeling addition).
  double rectifier_draw_kw = 40.0;

  [[nodiscard]] core::Component generator(std::string name,
                                          double rating_kw) const {
    return {std::move(name), kGenerator, generator_cost_per_kw * rating_kw,
            component_failure,
            /*power_supply=*/rating_kw, /*power_demand=*/0.0};
  }

  [[nodiscard]] core::Component ac_bus(std::string name) const {
    // Buses relay power; they neither add supply in eq. (4) nor draw any.
    return {std::move(name), kAcBus, bus_cost, component_failure, 0.0, 0.0};
  }

  [[nodiscard]] core::Component rectifier(std::string name) const {
    return {std::move(name), kRectifier, rectifier_cost, component_failure,
            rectifier_capacity_kw, rectifier_draw_kw};
  }

  [[nodiscard]] core::Component dc_bus(std::string name) const {
    return {std::move(name), kDcBus, bus_cost, component_failure, 0.0, 0.0};
  }

  [[nodiscard]] core::Component load(std::string name,
                                     double demand_kw) const {
    return {std::move(name), kLoad, 0.0, 0.0, 0.0, demand_kw};
  }
};

}  // namespace archex::eps
