#include "eps/operating_modes.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace archex::eps {

void apply_operating_modes(core::ArchitectureIlp& ilp,
                           const EpsTemplate& eps,
                           const std::vector<OperatingMode>& modes) {
  const std::vector<graph::NodeId> sources = eps.sources();
  for (const OperatingMode& mode : modes) {
    ARCHEX_REQUIRE(mode.load_demand_kw.size() == eps.loads.size(),
                   "mode demand profile must cover every load");
    ARCHEX_REQUIRE(mode.source_available.size() == sources.size(),
                   "mode availability mask must cover every source");
    double demand = 0.0;
    for (double d : mode.load_demand_kw) {
      ARCHEX_REQUIRE(d >= 0.0, "load demand must be non-negative");
      demand += d;
    }
    ilp::LinExpr supply;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (!mode.source_available[i]) continue;
      supply.add_term(
          ilp.node_active(sources[i]),
          eps.tmpl.component(sources[i]).power_supply);
    }
    ilp.model().add_row(std::move(supply) >= demand,
                        "adequacy_" + mode.name);
  }
}

std::vector<OperatingMode> standard_flight_modes(const EpsTemplate& eps) {
  const std::vector<graph::NodeId> sources = eps.sources();

  std::vector<double> nominal;
  nominal.reserve(eps.loads.size());
  for (const graph::NodeId l : eps.loads) {
    nominal.push_back(eps.tmpl.component(l).power_demand);
  }

  OperatingMode cruise{"cruise", nominal,
                       std::vector<bool>(sources.size(), true)};

  OperatingMode takeoff{"takeoff", nominal,
                        std::vector<bool>(sources.size(), true)};
  for (double& d : takeoff.load_demand_kw) d *= 1.3;

  OperatingMode engine_out{"engine_out", nominal,
                           std::vector<bool>(sources.size(), true)};
  // Lose the largest *main* generator; the APU (last source when present)
  // remains available as the backup it exists for.
  std::size_t worst = 0;
  double worst_supply = -1.0;
  for (std::size_t i = 0; i < eps.generators.size(); ++i) {
    const double s = eps.tmpl.component(eps.generators[i]).power_supply;
    if (s > worst_supply) {
      worst_supply = s;
      worst = i;
    }
  }
  engine_out.source_available[worst] = false;

  return {std::move(cruise), std::move(takeoff), std::move(engine_out)};
}

}  // namespace archex::eps
