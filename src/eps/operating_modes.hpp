// archex/eps/operating_modes.hpp
//
// Operating-condition power requirements. Section V of the paper requires
// that "the total power provided by the generators in each operating
// condition is greater than or equal to the total power required by the
// connected loads" — this module makes the operating conditions explicit:
// per mode, a demand profile over the loads and an availability mask over
// the sources (e.g. an engine-out mode loses a main generator). The
// synthesized architecture is static; a mode only changes which sources
// can produce and how much the loads draw, so each mode contributes its
// own adequacy row over the instantiation variables δ.
#pragma once

#include <string>
#include <vector>

#include "core/arch_ilp.hpp"
#include "eps/eps_template.hpp"

namespace archex::eps {

struct OperatingMode {
  std::string name;
  /// Demand (kW) per load, index-aligned with EpsTemplate::loads.
  std::vector<double> load_demand_kw;
  /// Availability per source, index-aligned with EpsTemplate::sources()
  /// (main generators first, APU last when present).
  std::vector<bool> source_available;
};

/// Add one global power-adequacy row per mode:
///   Σ_{available sources s} supply_s * δ_s  >=  Σ_l demand_l(mode).
void apply_operating_modes(core::ArchitectureIlp& ilp,
                           const EpsTemplate& eps,
                           const std::vector<OperatingMode>& modes);

/// A standard civil-aircraft mode set for the given template:
///  * "cruise"     — nominal demands (Table I values), all sources online;
///  * "takeoff"    — 130% demands, all sources online;
///  * "engine-out" — nominal demands with the largest main generator lost
///                   (the APU, when present, stays available).
[[nodiscard]] std::vector<OperatingMode> standard_flight_modes(
    const EpsTemplate& eps);

}  // namespace archex::eps
