#include "eps/eps_template.hpp"

#include <array>
#include <string>

#include "support/check.hpp"

namespace archex::eps {

namespace {

using graph::NodeId;

constexpr std::array<double, 4> kGeneratorRatingsKw = {70.0, 50.0, 80.0, 30.0};
constexpr std::array<double, 4> kLoadDemandsKw = {30.0, 10.0, 10.0, 20.0};

std::string side_name(const char* prefix, int index, int total) {
  // First half is the left side, second half the right, as in Fig. 1c.
  const bool left = index < (total + 1) / 2;
  const int ordinal = left ? index + 1 : index - (total + 1) / 2 + 1;
  return std::string(left ? "L" : "R") + prefix + std::to_string(ordinal);
}

}  // namespace

EpsTemplate make_eps_template(const EpsSpec& spec) {
  ARCHEX_REQUIRE(spec.num_generators >= 1, "need at least one generator");
  const EpsLibrary& lib = spec.library;
  EpsTemplate eps;
  core::Template& t = eps.tmpl;
  const int n = spec.num_generators;

  for (int i = 0; i < n; ++i) {
    eps.generators.push_back(t.add_component(lib.generator(
        side_name("G", i, n),
        kGeneratorRatingsKw[static_cast<std::size_t>(i) %
                            kGeneratorRatingsKw.size()])));
  }
  if (spec.include_apu) {
    eps.apu = t.add_component(lib.generator("APU", 100.0));
  }
  for (int i = 0; i < n; ++i) {
    eps.ac_buses.push_back(
        t.add_component(lib.ac_bus(side_name("B", i, n))));
  }
  for (int i = 0; i < n; ++i) {
    eps.rectifiers.push_back(
        t.add_component(lib.rectifier(side_name("R", i, n))));
  }
  for (int i = 0; i < n; ++i) {
    eps.dc_buses.push_back(
        t.add_component(lib.dc_bus(side_name("D", i, n))));
  }
  for (int i = 0; i < n; ++i) {
    eps.loads.push_back(t.add_component(lib.load(
        side_name("L", i, n), kLoadDemandsKw[static_cast<std::size_t>(i) %
                                             kLoadDemandsKw.size()])));
  }

  // Candidate edges (contactor-switched interconnections).
  const double c = lib.contactor_cost;
  for (NodeId g : eps.sources()) {
    for (NodeId b : eps.ac_buses) t.add_candidate_edge(g, b, c);
  }
  for (std::size_t i = 0; i + 1 < eps.ac_buses.size(); ++i) {
    // Same-type tie, declared in both directions so walk-based redundancy
    // counting is symmetric; the pair shares one contactor cost in eq. (1).
    t.add_candidate_edge(eps.ac_buses[i], eps.ac_buses[i + 1], c);
    t.add_candidate_edge(eps.ac_buses[i + 1], eps.ac_buses[i], c);
  }
  for (NodeId b : eps.ac_buses) {
    for (NodeId r : eps.rectifiers) t.add_candidate_edge(b, r, c);
  }
  for (NodeId r : eps.rectifiers) {
    for (NodeId d : eps.dc_buses) t.add_candidate_edge(r, d, c);
  }
  for (std::size_t i = 0; i + 1 < eps.dc_buses.size(); ++i) {
    t.add_candidate_edge(eps.dc_buses[i], eps.dc_buses[i + 1], c);  // tie
    t.add_candidate_edge(eps.dc_buses[i + 1], eps.dc_buses[i], c);
  }
  for (NodeId d : eps.dc_buses) {
    for (NodeId l : eps.loads) t.add_candidate_edge(d, l, c);
  }
  return eps;
}

void apply_eps_requirements(core::ArchitectureIlp& ilp,
                            const EpsTemplate& eps) {
  const std::vector<NodeId> sources = eps.sources();

  // Every load is fed by exactly one DC bus (loads mount on one bus; DC-tie
  // redundancy provides the alternative feed).
  for (NodeId l : eps.loads) {
    ilp.add_in_degree_rule(l, eps.dc_buses, 1, 1);
  }

  // A rectifier is fed by at most one AC bus (Section V); if it feeds any
  // DC bus it needs that feed (eq. 3 mirrored through the same rows).
  for (NodeId r : eps.rectifiers) {
    ilp.add_in_degree_rule(r, eps.ac_buses, 0, 1);
    ilp.add_conditional_predecessor_rule(eps.dc_buses, r, eps.ac_buses);
  }

  // A DC bus feeding a load or a tied DC bus is fed by >= 1 rectifier.
  for (NodeId d : eps.dc_buses) {
    std::vector<NodeId> triggers = eps.loads;
    triggers.insert(triggers.end(), eps.dc_buses.begin(), eps.dc_buses.end());
    ilp.add_conditional_predecessor_rule(triggers, d, eps.rectifiers);
  }

  // An AC bus feeding a rectifier or a tied AC bus is fed by >= 1 source
  // directly (ties only add redundancy; they are never the sole supply).
  for (NodeId b : eps.ac_buses) {
    std::vector<NodeId> triggers = eps.rectifiers;
    triggers.insert(triggers.end(), eps.ac_buses.begin(), eps.ac_buses.end());
    ilp.add_conditional_predecessor_rule(triggers, b, sources);
  }

  // Generators feed at most one AC bus; the APU may back up two.
  for (NodeId g : eps.generators) {
    ilp.add_out_degree_rule(g, eps.ac_buses, 0, 1);
  }
  if (eps.apu >= 0) {
    ilp.add_out_degree_rule(eps.apu, eps.ac_buses, 0, 2);
  }

  // eq. (4) balance: generation vs rectifier draw at AC buses, rectifier
  // capacity vs load demand at DC buses.
  for (NodeId b : eps.ac_buses) ilp.add_balance_rule(b);
  for (NodeId d : eps.dc_buses) ilp.add_balance_rule(d);

  // Instantiated sources must jointly cover the total load demand.
  ilp.add_global_power_adequacy();
}

core::ArchitectureIlp make_eps_ilp(const EpsTemplate& eps) {
  core::ArchitectureIlp ilp(eps.tmpl);
  apply_eps_requirements(ilp, eps);
  return ilp;
}

}  // namespace archex::eps
