// archex/graph/bool_matrix.hpp
//
// Dense square Boolean matrices with the logical product of Lemma 1:
//   (a ⊙ b)_ij = OR_k (a_ik AND b_kj)
// and the derived walk-indicator matrix
//   η_n = OR_{k=1..n} e^k,
// whose (i, j) entry is 1 iff a directed walk of length <= n leads from
// v_i to v_j. ILP-MR's AddPath (eq. 6) and ILP-AR's connectivity counting
// (eq. 11) both evaluate η on *fixed* architectures through this type; the
// decision-variable counterpart lives in core/reach_encoder.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "support/check.hpp"

namespace archex::graph {

class BoolMatrix {
 public:
  /// n x n matrix of zeros.
  explicit BoolMatrix(int n) : n_(n) {
    ARCHEX_REQUIRE(n >= 0, "matrix dimension must be non-negative");
    bits_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                 false);
  }

  /// Adjacency matrix of a digraph.
  static BoolMatrix adjacency(const Digraph& g) {
    BoolMatrix m(g.num_nodes());
    for (const auto& [u, v] : g.edges()) m.set(u, v, true);
    return m;
  }

  [[nodiscard]] int dim() const { return n_; }

  [[nodiscard]] bool get(int i, int j) const {
    check(i);
    check(j);
    return bits_[cell(i, j)];
  }

  void set(int i, int j, bool value) {
    check(i);
    check(j);
    bits_[cell(i, j)] = value;
  }

  /// Logical (Boolean) matrix product a ⊙ b.
  friend BoolMatrix logical_product(const BoolMatrix& a, const BoolMatrix& b) {
    ARCHEX_REQUIRE(a.n_ == b.n_, "dimension mismatch in logical product");
    BoolMatrix out(a.n_);
    for (int i = 0; i < a.n_; ++i) {
      for (int k = 0; k < a.n_; ++k) {
        if (!a.get(i, k)) continue;
        for (int j = 0; j < a.n_; ++j) {
          if (b.get(k, j)) out.set(i, j, true);
        }
      }
    }
    return out;
  }

  /// Elementwise OR.
  friend BoolMatrix logical_or(const BoolMatrix& a, const BoolMatrix& b) {
    ARCHEX_REQUIRE(a.n_ == b.n_, "dimension mismatch in logical OR");
    BoolMatrix out(a.n_);
    for (std::size_t c = 0; c < a.bits_.size(); ++c) {
      out.bits_[c] = a.bits_[c] || b.bits_[c];
    }
    return out;
  }

  friend bool operator==(const BoolMatrix& a, const BoolMatrix& b) {
    return a.n_ == b.n_ && a.bits_ == b.bits_;
  }

 private:
  void check(int i) const {
    ARCHEX_REQUIRE(i >= 0 && i < n_, "matrix index out of range");
  }
  [[nodiscard]] std::size_t cell(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }

  int n_ = 0;
  std::vector<bool> bits_;
};

/// Walk-indicator matrix η_n = OR_{k=1..n} e^k (Lemma 1). η_n(i, j) == 1 iff
/// a directed walk of length in [1, n] exists from v_i to v_j.
[[nodiscard]] inline BoolMatrix walk_indicator(const BoolMatrix& e, int n) {
  ARCHEX_REQUIRE(n >= 1, "walk length bound must be at least 1");
  BoolMatrix eta = e;        // η_1 = e
  BoolMatrix power = e;      // e^k
  for (int k = 2; k <= n; ++k) {
    power = logical_product(power, e);
    eta = logical_or(eta, power);
  }
  return eta;
}

/// Convenience overload building the adjacency matrix internally.
[[nodiscard]] inline BoolMatrix walk_indicator(const Digraph& g, int n) {
  return walk_indicator(BoolMatrix::adjacency(g), n);
}

}  // namespace archex::graph
