// archex/graph/dot.hpp
//
// Graphviz DOT export for architectures: nodes grouped and colored by type,
// so synthesized EPS single-line diagrams can be inspected visually (the
// counterpart of Figs. 2 and 3 in the paper).
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"

namespace archex::graph {

struct DotStyle {
  /// Label per node; defaults to "v<i>" when empty.
  std::vector<std::string> node_labels;
  /// Label per type (cluster caption); defaults to "type <t>" when empty.
  std::vector<std::string> type_labels;
  /// Graph title.
  std::string title;
  /// Rank types left-to-right (sources first), matching single-line diagrams.
  bool rank_by_type = true;
};

/// Render `g` with its `partition` to DOT text.
[[nodiscard]] std::string to_dot(const Digraph& g, const Partition& partition,
                                 const DotStyle& style = {});

}  // namespace archex::graph
