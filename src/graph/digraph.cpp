#include "graph/digraph.hpp"

#include <deque>

namespace archex::graph {

namespace {

std::vector<bool> bfs(const Digraph& g, NodeId start, bool forward) {
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::deque<NodeId> queue{start};
  seen[static_cast<std::size_t>(start)] = true;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const auto& next = forward ? g.successors(u) : g.predecessors(u);
    for (NodeId v : next) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<bool> Digraph::reachable_from(NodeId start) const {
  check_node(start);
  return bfs(*this, start, /*forward=*/true);
}

std::vector<bool> Digraph::reaching(NodeId target) const {
  check_node(target);
  return bfs(*this, target, /*forward=*/false);
}

bool Digraph::connects(const std::vector<NodeId>& sources,
                       NodeId target) const {
  const std::vector<bool> up = reaching(target);
  for (NodeId s : sources) {
    check_node(s);
    if (up[static_cast<std::size_t>(s)]) return true;
  }
  return false;
}

}  // namespace archex::graph
