// archex/graph/digraph.hpp
//
// Directed graph over a fixed node set, the structural backbone of an
// architecture (Definition II.1 of the paper: nodes are components, edges
// are interconnections). Stored as forward/backward adjacency lists plus a
// constant-time edge-presence matrix.
#pragma once

#include <vector>

#include "support/check.hpp"

namespace archex::graph {

/// Node index within a graph; dense in [0, num_nodes).
using NodeId = int;

class Digraph {
 public:
  /// Create a graph with `num_nodes` nodes and no edges.
  explicit Digraph(int num_nodes) : n_(num_nodes) {
    ARCHEX_REQUIRE(num_nodes >= 0, "node count must be non-negative");
    succ_.resize(static_cast<std::size_t>(num_nodes));
    pred_.resize(static_cast<std::size_t>(num_nodes));
    has_.assign(static_cast<std::size_t>(num_nodes) *
                    static_cast<std::size_t>(num_nodes),
                false);
  }

  [[nodiscard]] int num_nodes() const { return n_; }
  [[nodiscard]] int num_edges() const { return edges_; }

  /// Add edge u -> v. Self-loops and duplicates are rejected (the paper
  /// assumes e_ii = 0 and Boolean edge variables).
  void add_edge(NodeId u, NodeId v) {
    check_node(u);
    check_node(v);
    ARCHEX_REQUIRE(u != v, "self-loops are not allowed (e_ii = 0)");
    ARCHEX_REQUIRE(!has_edge(u, v), "duplicate edge");
    succ_[static_cast<std::size_t>(u)].push_back(v);
    pred_[static_cast<std::size_t>(v)].push_back(u);
    has_[cell(u, v)] = true;
    ++edges_;
  }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    check_node(u);
    check_node(v);
    return has_[cell(u, v)];
  }

  [[nodiscard]] const std::vector<NodeId>& successors(NodeId u) const {
    check_node(u);
    return succ_[static_cast<std::size_t>(u)];
  }

  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId v) const {
    check_node(v);
    return pred_[static_cast<std::size_t>(v)];
  }

  /// All edges as (u, v) pairs, in insertion order per source node.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const {
    std::vector<std::pair<NodeId, NodeId>> out;
    out.reserve(static_cast<std::size_t>(edges_));
    for (NodeId u = 0; u < n_; ++u) {
      for (NodeId v : succ_[static_cast<std::size_t>(u)]) out.push_back({u, v});
    }
    return out;
  }

  /// Nodes reachable from `start` (including `start`) by directed walks.
  [[nodiscard]] std::vector<bool> reachable_from(NodeId start) const;

  /// Nodes that can reach `target` (including `target`).
  [[nodiscard]] std::vector<bool> reaching(NodeId target) const;

  /// True if any node of `sources` reaches `target` through the graph.
  [[nodiscard]] bool connects(const std::vector<NodeId>& sources,
                              NodeId target) const;

 private:
  void check_node(NodeId v) const {
    ARCHEX_REQUIRE(v >= 0 && v < n_, "node index out of range");
  }
  [[nodiscard]] std::size_t cell(NodeId u, NodeId v) const {
    return static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(v);
  }

  int n_ = 0;
  int edges_ = 0;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::vector<bool> has_;
};

}  // namespace archex::graph
