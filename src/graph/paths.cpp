#include "graph/paths.hpp"

#include <algorithm>
#include <set>

#include "support/check.hpp"

namespace archex::graph {

namespace {

void dfs_paths(const Digraph& g, NodeId node, NodeId sink,
               std::vector<bool>& on_path, Path& stack,
               std::vector<Path>& out, std::size_t max_paths) {
  if (node == sink) {
    if (out.size() >= max_paths) {
      throw Error("simple-path enumeration exceeded the path cap");
    }
    out.push_back(stack);
    return;
  }
  for (NodeId next : g.successors(node)) {
    if (on_path[static_cast<std::size_t>(next)]) continue;
    on_path[static_cast<std::size_t>(next)] = true;
    stack.push_back(next);
    dfs_paths(g, next, sink, on_path, stack, out, max_paths);
    stack.pop_back();
    on_path[static_cast<std::size_t>(next)] = false;
  }
}

}  // namespace

std::vector<Path> enumerate_simple_paths(const Digraph& g,
                                         const std::vector<NodeId>& sources,
                                         NodeId sink, std::size_t max_paths) {
  ARCHEX_REQUIRE(sink >= 0 && sink < g.num_nodes(), "sink out of range");
  std::vector<Path> out;
  std::vector<bool> on_path(static_cast<std::size_t>(g.num_nodes()), false);
  for (NodeId s : sources) {
    ARCHEX_REQUIRE(s >= 0 && s < g.num_nodes(), "source out of range");
    if (s == sink) {
      out.push_back({s});
      continue;
    }
    Path stack{s};
    on_path[static_cast<std::size_t>(s)] = true;
    dfs_paths(g, s, sink, on_path, stack, out, max_paths);
    on_path[static_cast<std::size_t>(s)] = false;
  }
  return out;
}

std::vector<Path> functional_link(const Digraph& g, const Partition& partition,
                                  NodeId sink, std::size_t max_paths) {
  ARCHEX_REQUIRE(partition.num_nodes() == g.num_nodes(),
                 "partition does not cover the graph");
  return enumerate_simple_paths(g, partition.members(0), sink, max_paths);
}

Path reduce_path(const Path& path, const Partition& partition) {
  Path out;
  for (NodeId v : path) {
    if (!out.empty() && partition.same_type(out.back(), v)) continue;
    out.push_back(v);
  }
  return out;
}

std::vector<Path> reduced_paths(const std::vector<Path>& paths,
                                const Partition& partition) {
  std::set<Path> unique;
  for (const Path& p : paths) unique.insert(reduce_path(p, partition));
  return {unique.begin(), unique.end()};
}

Digraph expand_same_type_shorthand(const Digraph& g,
                                   const Partition& partition) {
  ARCHEX_REQUIRE(partition.num_nodes() == g.num_nodes(),
                 "partition does not cover the graph");
  const int n = g.num_nodes();

  // Union same-type-linked nodes into redundancy groups (undirected
  // connected components over the same-type edges).
  std::vector<int> group(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) group[static_cast<std::size_t>(v)] = v;
  // Simple union-find with path halving.
  auto find = [&](int v) {
    while (group[static_cast<std::size_t>(v)] != v) {
      group[static_cast<std::size_t>(v)] =
          group[static_cast<std::size_t>(group[static_cast<std::size_t>(v)])];
      v = group[static_cast<std::size_t>(v)];
    }
    return v;
  };
  for (const auto& [u, v] : g.edges()) {
    if (partition.same_type(u, v)) {
      group[static_cast<std::size_t>(find(u))] = find(v);
    }
  }

  // Collect the union of external predecessors/successors per group.
  std::vector<std::set<NodeId>> gpred(static_cast<std::size_t>(n));
  std::vector<std::set<NodeId>> gsucc(static_cast<std::size_t>(n));
  for (const auto& [u, v] : g.edges()) {
    if (partition.same_type(u, v) && find(u) == find(v)) continue;
    gpred[static_cast<std::size_t>(find(v))].insert(u);
    gsucc[static_cast<std::size_t>(find(u))].insert(v);
  }

  Digraph out(n);
  std::set<std::pair<NodeId, NodeId>> added;
  for (int v = 0; v < n; ++v) {
    const int gv = find(v);
    for (NodeId p : gpred[static_cast<std::size_t>(gv)]) {
      if (p == v) continue;
      if (added.insert({p, v}).second) out.add_edge(p, v);
    }
    for (NodeId s : gsucc[static_cast<std::size_t>(gv)]) {
      if (s == v) continue;
      if (added.insert({v, s}).second) out.add_edge(v, s);
    }
  }
  return out;
}

}  // namespace archex::graph
