// archex/graph/paths.hpp
//
// Path machinery for functional links (Section II): enumeration of simple
// paths from the source set to a sink, path reduction (collapsing adjacent
// same-type nodes), and expansion of the same-type-edge shorthand the EPS
// templates use for redundant components (Section V).
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"

namespace archex::graph {

/// A path as its node sequence (front = source, back = sink).
using Path = std::vector<NodeId>;

/// Enumerate all simple (node-distinct) paths from any node in `sources` to
/// `sink`, by depth-first search. `max_paths` guards against the exponential
/// worst case; exceeding it throws archex::Error so callers cannot silently
/// compute reliability on a truncated path set.
[[nodiscard]] std::vector<Path> enumerate_simple_paths(
    const Digraph& g, const std::vector<NodeId>& sources, NodeId sink,
    std::size_t max_paths = 1u << 20);

/// The functional link F_sink: every simple path from the source type's
/// members (Π_1, type id 0) to `sink`.
[[nodiscard]] std::vector<Path> functional_link(const Digraph& g,
                                                const Partition& partition,
                                                NodeId sink,
                                                std::size_t max_paths = 1u
                                                                        << 20);

/// Reduced path μ̂: adjacent nodes of the same type collapse onto the first
/// of the run (Section IV-A). Non-adjacent repeats of a type remain.
[[nodiscard]] Path reduce_path(const Path& path, const Partition& partition);

/// Deduplicated reduced paths of a functional link.
[[nodiscard]] std::vector<Path> reduced_paths(const std::vector<Path>& paths,
                                              const Partition& partition);

/// Expand the same-type-edge shorthand of Section V: an edge between nodes
/// of the same type declares them redundant — the group shares all external
/// predecessors and successors, and the intra-group edges disappear.
/// Returns a new graph over the same node set.
[[nodiscard]] Digraph expand_same_type_shorthand(const Digraph& g,
                                                 const Partition& partition);

}  // namespace archex::graph
