// archex/graph/partition.hpp
//
// Node partition Π = {Π_1, ..., Π_n} assigning each component a *type*
// (Definition II.2). Types capture interchangeable roles — two nodes of the
// same type introduce redundancy. By the paper's convention, Π_1 holds the
// sources and Π_n the sinks of every functional link.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "support/check.hpp"

namespace archex::graph {

/// Type index within a partition; dense in [0, num_types).
using TypeId = int;

class Partition {
 public:
  /// Build from a per-node type assignment; every type in
  /// [0, max assignment] must be non-empty (a partition has no empty sets).
  explicit Partition(std::vector<TypeId> type_of_node)
      : type_of_(std::move(type_of_node)) {
    int max_type = -1;
    for (TypeId t : type_of_) {
      ARCHEX_REQUIRE(t >= 0, "type ids must be non-negative");
      max_type = std::max(max_type, t);
    }
    groups_.resize(static_cast<std::size_t>(max_type + 1));
    for (std::size_t v = 0; v < type_of_.size(); ++v) {
      groups_[static_cast<std::size_t>(type_of_[v])].push_back(
          static_cast<NodeId>(v));
    }
    for (std::size_t t = 0; t < groups_.size(); ++t) {
      ARCHEX_REQUIRE(!groups_[t].empty(),
                     "partition subsets must be non-empty");
    }
  }

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(type_of_.size());
  }
  [[nodiscard]] int num_types() const { return static_cast<int>(groups_.size()); }

  [[nodiscard]] TypeId type_of(NodeId v) const {
    ARCHEX_REQUIRE(v >= 0 && v < num_nodes(), "node index out of range");
    return type_of_[static_cast<std::size_t>(v)];
  }

  /// Nodes of type t (the set Π_{t+1} in the paper's 1-based notation).
  [[nodiscard]] const std::vector<NodeId>& members(TypeId t) const {
    ARCHEX_REQUIRE(t >= 0 && t < num_types(), "type index out of range");
    return groups_[static_cast<std::size_t>(t)];
  }

  /// a ~ b: same type.
  [[nodiscard]] bool same_type(NodeId a, NodeId b) const {
    return type_of(a) == type_of(b);
  }

 private:
  std::vector<TypeId> type_of_;
  std::vector<std::vector<NodeId>> groups_;
};

}  // namespace archex::graph
