#include "graph/dot.hpp"

#include <array>
#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace archex::graph {

namespace {

constexpr std::array<const char*, 8> kPalette = {
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759",
    "#b07aa1", "#76b7b2", "#edc948", "#9c755f",
};

}  // namespace

std::string to_dot(const Digraph& g, const Partition& partition,
                   const DotStyle& style) {
  ARCHEX_REQUIRE(partition.num_nodes() == g.num_nodes(),
                 "partition does not cover the graph");
  std::ostringstream os;
  os << "digraph architecture {\n";
  if (!style.title.empty()) {
    os << "  label=\"" << style.title << "\";\n  labelloc=t;\n";
  }
  os << "  rankdir=LR;\n  node [shape=box, style=filled, fontname=\"Helvetica\"];\n";

  auto node_label = [&](NodeId v) -> std::string {
    const auto idx = static_cast<std::size_t>(v);
    if (idx < style.node_labels.size() && !style.node_labels[idx].empty()) {
      return style.node_labels[idx];
    }
    return "v" + std::to_string(v);
  };
  auto type_label = [&](TypeId t) -> std::string {
    const auto idx = static_cast<std::size_t>(t);
    if (idx < style.type_labels.size() && !style.type_labels[idx].empty()) {
      return style.type_labels[idx];
    }
    return "type " + std::to_string(t);
  };

  for (TypeId t = 0; t < partition.num_types(); ++t) {
    if (style.rank_by_type) {
      os << "  subgraph cluster_t" << t << " {\n"
         << "    label=\"" << type_label(t) << "\";\n"
         << "    style=dashed;\n";
    }
    for (NodeId v : partition.members(t)) {
      os << (style.rank_by_type ? "    " : "  ") << 'n' << v << " [label=\""
         << node_label(v) << "\", fillcolor=\""
         << kPalette[static_cast<std::size_t>(t) % kPalette.size()]
         << "\"];\n";
    }
    if (style.rank_by_type) os << "  }\n";
  }

  for (const auto& [u, v] : g.edges()) {
    os << "  n" << u << " -> n" << v;
    if (partition.same_type(u, v)) os << " [style=dashed, dir=both]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace archex::graph
