// archex/support/thread_pool.hpp
//
// Fixed-size thread pool: the concurrency substrate for the parallel
// reliability analyzers (rel/) and the sharded benchmark harnesses. Design
// goals, in order:
//
//  * determinism first — the pool only *schedules*; callers own the
//    decomposition (fixed shard counts, fixed per-shard RNG streams) so that
//    results are bit-identical for any thread count, including 1;
//  * no surprises at num_threads() == 1 — everything runs inline on the
//    calling thread, giving a true serial baseline for speedup measurements;
//  * nest-safe waiting — a thread blocked in parallel_for() or
//    Future::get()-style joins keeps draining the shared queue, so a task
//    that itself fans out cannot deadlock the pool.
//
// There is deliberately no work stealing and no per-thread deque *in the
// pool itself*: the hot paths submit a handful of coarse tasks (factoring
// subtrees, Monte-Carlo shards, branch-and-bound worker loops), for which a
// single mutex-protected queue is both simpler and cheaper than a stealing
// scheduler. Schedulers that do steal — the parallel branch & bound's
// global node pool (src/ilp/branch_and_bound.cpp) — are built one layer
// above, on run_workers(), where the stealing policy can be domain-aware
// (bound-ordered nodes, incumbent-based pruning at steal time).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace archex::support {

class ThreadPool {
 public:
  /// A pool that runs work on `num_threads` threads *including* the caller
  /// (parallel_for participates): n - 1 workers are spawned. Values < 1 are
  /// clamped to 1; 1 means fully inline execution (no threads created).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency, including the calling thread.
  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Number of hardware threads, at least 1.
  [[nodiscard]] static int hardware_threads();

  /// Schedule `fn` on a worker and return its future. With no workers the
  /// call runs inline and the returned future is already ready.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return future;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Run `body(i)` for every i in [begin, end), distributed over the pool
  /// with the caller participating; returns when all iterations finished.
  /// Iterations must be independent — the execution order is unspecified.
  /// The first exception thrown by any iteration is rethrown to the caller.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Run `body(w)` once for each worker id w in [0, count), all eligible to
  /// execute concurrently, with the caller running body(0) inline. Unlike
  /// parallel_for's dynamic iteration claiming, this is a *static* launch of
  /// long-running collaborators (e.g. branch-and-bound workers that share a
  /// node pool): every body gets a stable id for per-worker scratch state.
  /// All bodies are joined before returning, even on error; the first
  /// exception thrown by any body is rethrown afterwards. Bodies may
  /// cooperate through shared state but must not *require* more than one of
  /// them to be running at once (count may exceed num_threads(), in which
  /// case excess bodies start as earlier ones finish).
  void run_workers(int count, const std::function<void(int)>& body);

  /// Block until `future` is ready, helping with queued pool work while
  /// waiting (nest-safe join).
  template <typename T>
  T wait(std::future<T>& future) {
    using namespace std::chrono_literals;
    while (future.wait_for(0s) != std::future_status::ready) {
      if (!run_one()) future.wait_for(50us);
    }
    return future.get();
  }

 private:
  /// Pop and run one queued task; false when the queue was empty.
  bool run_one();
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace archex::support
