// archex/support/strings.hpp
//
// Small string helpers shared across modules (name generation for template
// nodes, DOT identifier sanitization, joining diagnostic lists).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace archex {

/// Join `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Split `text` on `delim`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delim);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Replace characters not in [A-Za-z0-9_] by '_' (DOT-safe identifier).
[[nodiscard]] std::string sanitize_identifier(std::string_view text);

}  // namespace archex
