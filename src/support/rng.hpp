// archex/support/rng.hpp
//
// Deterministic pseudo-random number generation for tests and benchmarks.
// ARCHEX's algorithms are deterministic; randomness appears only in
// (a) Monte-Carlo cross-validation of the exact reliability analyzers and
// (b) randomized property tests. A small, seedable, reproducible generator
// keeps those runs stable across platforms (std::mt19937 distributions are
// not guaranteed to be portable; we implement our own mapping).
#pragma once

#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace archex {

/// SplitMix64: tiny, high-quality 64-bit generator (public-domain algorithm
/// by Sebastiano Vigna). Used directly and to seed larger state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ generator: fast, 256-bit state, excellent statistical
/// quality; the workhorse for Monte-Carlo sampling.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 random mantissa bits.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    ARCHEX_REQUIRE(bound > 0, "next_below requires a positive bound");
    // Rejection-free fast path is fine for our test workloads; use simple
    // modulo-free multiply-high technique with one retry loop.
    while (true) {
      const std::uint64_t x = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool next_bernoulli(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace archex
