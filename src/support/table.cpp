#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace archex {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ARCHEX_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  ARCHEX_REQUIRE(cells.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(width[c] - row[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string format_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, value);
  return buf;
}

std::string format_count(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  return buf;
}

}  // namespace archex
