// archex/support/socket.hpp
//
// Minimal blocking TCP wrappers for the archex_server wire protocol (one
// JSON document per line over a loopback or LAN socket). POSIX sockets
// only — the repo targets Linux; no external networking dependency.
//
// TcpListener binds/listens on a port (port 0 picks a free one, reported by
// port() — the tests rely on this), and accept_for() waits with a poll
// timeout so an accept loop can observe a stop flag between waits.
// TcpStream is a connected socket with a buffered read_line() and a
// write_all() that survives short writes. Both own their file descriptor
// (move-only, closed on destruction).
//
// Errors surface as SocketError. A peer that disconnects mid-line is not an
// error: read_line() returns false at clean EOF.
#pragma once

#include <csignal>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "support/check.hpp"

namespace archex::support {

class SocketError : public Error {
 public:
  explicit SocketError(const std::string& what) : Error(what) {}
};

/// A connected TCP socket (server-accepted or client-connected).
class TcpStream {
 public:
  /// Wrap an already-connected file descriptor (takes ownership).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to a host:port (numeric IPv4 host, e.g. "127.0.0.1").
  [[nodiscard]] static TcpStream connect(const std::string& host,
                                         std::uint16_t port);

  /// Read up to the next '\n' (consumed, not included in `out`). Returns
  /// false on clean EOF with no buffered partial line; a partial final line
  /// (EOF before the newline) is returned as a line. Throws SocketError on
  /// transport errors.
  [[nodiscard]] bool read_line(std::string& out);

  /// Write the whole buffer, looping over short writes. Throws SocketError.
  void write_all(const std::string& data);

  /// Write `line` plus the terminating '\n' (one wire-protocol document).
  void write_line(const std::string& line) { write_all(line + "\n"); }

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

/// A listening TCP socket (IPv4 loopback-or-any, SO_REUSEADDR).
class TcpListener {
 public:
  /// Bind and listen on `port`; 0 lets the kernel pick (see port()).
  explicit TcpListener(std::uint16_t port, int backlog = 64);
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  TcpListener& operator=(TcpListener&&) = delete;

  /// The bound port (resolved after a port-0 bind).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Wait up to `timeout_ms` for a connection. Returns the accepted stream,
  /// or nullopt on timeout (so the caller's loop can poll a stop flag).
  /// Throws SocketError on listener failure.
  [[nodiscard]] std::optional<TcpStream> accept_for(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Install a process-wide handler that sets an atomic flag on SIGTERM /
/// SIGINT (graceful-drain trigger for archex_server). Returns a pointer to
/// the flag; repeated calls reuse the same flag. Also ignores SIGPIPE so a
/// client that hangs up mid-response surfaces as a write error, not a
/// process kill.
const volatile std::sig_atomic_t* install_shutdown_signal_flag();

/// Reset the flag (tests re-trigger shutdown several times per process).
void clear_shutdown_signal_flag();

}  // namespace archex::support
