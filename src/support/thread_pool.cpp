#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace archex::support {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(1, num_threads) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

bool ThreadPool::run_one() {
  std::function<void()> job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  job();
  return true;
}

void ThreadPool::run_workers(int count, const std::function<void(int)>& body) {
  if (count <= 0) return;
  if (count == 1 || workers_.empty()) {
    for (int w = 0; w < count; ++w) body(w);
    return;
  }

  std::vector<std::future<void>> joins;
  joins.reserve(static_cast<std::size_t>(count - 1));
  for (int w = 1; w < count; ++w) {
    joins.push_back(submit([&body, w] { body(w); }));
  }
  // Join everything before rethrowing: a body may reference caller locals,
  // so no body can be left running once run_workers returns.
  std::exception_ptr first_error;
  try {
    body(0);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& join : joins) {
    try {
      wait(join);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  const auto threads = static_cast<std::size_t>(num_threads());
  if (threads == 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Shared-counter dynamic scheduling: each participant claims the next
  // iteration. The first exception wins; remaining iterations still drain
  // (claimed-but-skipped) so the join below terminates.
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();
  auto work = [next, first_error, error, error_mutex, end, &body] {
    while (true) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      if (first_error->load(std::memory_order_relaxed)) continue;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(*error_mutex);
        if (!first_error->exchange(true)) *error = std::current_exception();
      }
    }
  };

  std::vector<std::future<void>> joins;
  const std::size_t helpers = std::min(threads - 1, count - 1);
  joins.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) joins.push_back(submit(work));
  work();  // the caller participates
  for (auto& join : joins) wait(join);
  if (first_error->load()) std::rethrow_exception(*error);
}

}  // namespace archex::support
