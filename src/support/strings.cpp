#include "support/strings.hpp"

#include <cctype>

namespace archex {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = text.find(delim, begin);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(begin));
      return out;
    }
    out.emplace_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string sanitize_identifier(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    const bool ok = (ch >= 'A' && ch <= 'Z') || (ch >= 'a' && ch <= 'z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out += ok ? ch : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, 'n');
  return out;
}

}  // namespace archex
