#include "support/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace archex::support {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

}  // namespace

TcpStream::~TcpStream() {
  if (fd_ >= 0) ::close(fd_);
}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw SocketError("bad IPv4 address \"" + host + "\"");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return TcpStream(fd);
}

bool TcpStream::read_line(std::string& out) {
  while (true) {
    if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // Clean EOF: flush a trailing unterminated line, if any.
      if (buffer_.empty()) return false;
      out = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    if (errno == EINTR) continue;
    fail_errno("recv()");
  }
}

void TcpStream::write_all(const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a hung-up peer yields EPIPE instead of killing the
    // process, independent of the signal disposition.
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send()");
    }
    off += static_cast<std::size_t>(n);
  }
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail_errno("socket()");
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_errno("bind(port " + std::to_string(port) + ")");
  }
  if (::listen(fd_, backlog) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_errno("listen()");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_errno("getsockname()");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<TcpStream> TcpListener::accept_for(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;  // let the caller check flags
    fail_errno("poll()");
  }
  if (ready == 0) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    fail_errno("accept()");
  }
  return TcpStream(fd);
}

namespace {

volatile std::sig_atomic_t g_shutdown_flag = 0;

extern "C" void shutdown_signal_handler(int) { g_shutdown_flag = 1; }

}  // namespace

const volatile std::sig_atomic_t* install_shutdown_signal_flag() {
  struct sigaction sa{};
  sa.sa_handler = shutdown_signal_handler;
  sigemptyset(&sa.sa_mask);
  (void)sigaction(SIGTERM, &sa, nullptr);
  (void)sigaction(SIGINT, &sa, nullptr);
  (void)std::signal(SIGPIPE, SIG_IGN);
  return &g_shutdown_flag;
}

void clear_shutdown_signal_flag() { g_shutdown_flag = 0; }

}  // namespace archex::support
