// archex/support/stopwatch.hpp
//
// Monotonic wall-clock stopwatch used by the synthesis algorithms to report
// per-phase timings (reliability-analysis time vs. ILP-solver time, as in
// Tables II and III of the paper).
#pragma once

#include <chrono>

namespace archex {

/// Accumulating stopwatch over the steady clock.
///
/// A Stopwatch can be started and stopped repeatedly; `elapsed_seconds()`
/// reports the total accumulated running time. This matches how the paper
/// attributes time to phases that interleave (ILP-MR alternates solver and
/// reliability-analysis work within one run).
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  /// Begin (or resume) timing. Calling start() while running restarts the
  /// current lap without losing previously accumulated time.
  void start() {
    start_ = Clock::now();
    running_ = true;
  }

  /// Stop timing and fold the current lap into the accumulated total.
  void stop() {
    if (running_) {
      accumulated_ += Clock::now() - start_;
      running_ = false;
    }
  }

  /// Discard all accumulated time and stop.
  void reset() {
    accumulated_ = Clock::duration::zero();
    running_ = false;
  }

  /// Total accumulated seconds, including the in-flight lap if running.
  [[nodiscard]] double elapsed_seconds() const {
    auto total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

  [[nodiscard]] bool running() const { return running_; }

 private:
  Clock::time_point start_{};
  Clock::duration accumulated_{Clock::duration::zero()};
  bool running_ = false;
};

/// RAII lap guard: starts `watch` on construction, stops it on destruction.
class ScopedLap {
 public:
  explicit ScopedLap(Stopwatch& watch) : watch_(watch) { watch_.start(); }
  ~ScopedLap() { watch_.stop(); }
  ScopedLap(const ScopedLap&) = delete;
  ScopedLap& operator=(const ScopedLap&) = delete;

 private:
  Stopwatch& watch_;
};

}  // namespace archex
