#include "support/json.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace archex::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    // Recover the human position from the byte offset: wire requests and
    // spec files arrive as one opaque string, so "line 3, column 14" is
    // what makes a bad document debuggable.
    const std::size_t at = std::min(pos_, text_.size());
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < at; ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonParseError("JSON parse error at line " + std::to_string(line) +
                             ", column " + std::to_string(column) +
                             " (byte " + std::to_string(at) + "): " + what,
                         line, column, at);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + '\'');
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case '"': return Value(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // Encode the BMP code point as UTF-8 (surrogate pairs are not
            // needed for ARCHEX identifiers; reject them explicitly).
            if (code >= 0xD800 && code <= 0xDFFF) {
              fail("surrogate pairs are not supported");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
        continue;
      }
      out += c;
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                      text_[pos_] == '.' || text_[pos_] == 'e' ||
                      text_[pos_] == 'E' || text_[pos_] == '-' ||
                      text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double number = 0.0;
    const auto* begin = text_.data() + start;
    const auto* end = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, number);
    if (ec != std::errc{} || ptr != end) fail("malformed number");
    return Value(number);
  }

  Value parse_array() {
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      out.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return Value(std::move(out));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value parse_object() {
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      out.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return Value(std::move(out));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double n) {
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    os << static_cast<long long>(n);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", n);
  os << buf;
}

void write_value(std::ostream& os, const Value& v, int indent, int depth) {
  const auto pad = [&](int d) {
    if (indent > 0) {
      os << '\n' << std::string(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (v.kind()) {
    case Kind::kNull: os << "null"; return;
    case Kind::kBool: os << (v.as_bool() ? "true" : "false"); return;
    case Kind::kNumber: write_number(os, v.as_number()); return;
    case Kind::kString: write_escaped(os, v.as_string()); return;
    case Kind::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) os << ',';
        pad(depth + 1);
        write_value(os, a[i], indent, depth + 1);
      }
      pad(depth);
      os << ']';
      return;
    }
    case Kind::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      bool first = true;
      for (const auto& [key, member] : o) {
        if (!first) os << ',';
        first = false;
        pad(depth + 1);
        write_escaped(os, key);
        os << ':';
        if (indent > 0) os << ' ';
        write_value(os, member, indent, depth + 1);
      }
      pad(depth);
      os << '}';
      return;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string dump(const Value& value, int indent) {
  std::ostringstream os;
  write_value(os, value, indent, 0);
  return os.str();
}

}  // namespace archex::json
