// archex/support/table.hpp
//
// Minimal fixed-column ASCII table and CSV writer. The benchmark harnesses
// use this to print rows in the same layout as the paper's Tables II/III,
// and to dump machine-readable CSV next to the human-readable output.
#pragma once

#include <string>
#include <vector>

namespace archex {

/// A simple in-memory table: a header row plus data rows of strings.
///
/// Cells are stored as preformatted strings; numeric formatting helpers are
/// provided for the common cases (fixed decimals, scientific reliability
/// values, integer counts).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header_.size(); }

  /// Render with aligned columns, `|` separators and a rule under the header.
  [[nodiscard]] std::string to_string() const;

  /// Render as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` places after the decimal point.
[[nodiscard]] std::string format_fixed(double value, int digits);

/// Format a probability in scientific notation, e.g. "2.8e-10".
[[nodiscard]] std::string format_sci(double value, int digits = 2);

/// Format an integer count with no decoration.
[[nodiscard]] std::string format_count(long long value);

}  // namespace archex
