// archex/support/json.hpp
//
// Minimal self-contained JSON value type, parser and writer — just enough
// for ARCHEX's template/configuration serialization (core/serialize.hpp)
// without an external dependency. Full JSON data model (null, bool, number,
// string, array, object), UTF-8 pass-through, standard escapes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.hpp"

namespace archex::json {

/// Raised on malformed input or type-mismatched access.
class JsonError : public Error {
 public:
  explicit JsonError(const std::string& what) : Error(what) {}
};

/// Raised by parse() on malformed documents, carrying the error position so
/// callers handling wire input (archex_server request lines, CLI spec
/// files) can point at the offending byte. `line`/`column` are 1-based and
/// count raw bytes (no UTF-8 column normalization); `byte` is the 0-based
/// offset into the document.
class JsonParseError : public JsonError {
 public:
  JsonParseError(const std::string& what, std::size_t line,
                 std::size_t column, std::size_t byte)
      : JsonError(what), line_(line), column_(column), byte_(byte) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }
  [[nodiscard]] std::size_t byte() const { return byte_; }

 private:
  std::size_t line_;
  std::size_t column_;
  std::size_t byte_;
};

class Value;
using Array = std::vector<Value>;
/// std::map keeps object keys deterministically ordered in output.
using Object = std::map<std::string, Value>;

enum class Kind : unsigned char {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  /*implicit*/ Value(std::nullptr_t) : kind_(Kind::kNull) {}
  /*implicit*/ Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  /*implicit*/ Value(double n) : kind_(Kind::kNumber), number_(n) {}
  /*implicit*/ Value(int n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  /*implicit*/ Value(long long n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  /*implicit*/ Value(const char* s) : kind_(Kind::kString), string_(s) {}
  /*implicit*/ Value(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  /*implicit*/ Value(Array a)
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  /*implicit*/ Value(Object o)
      : kind_(Kind::kObject),
        object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const {
    require(Kind::kBool);
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    require(Kind::kNumber);
    return number_;
  }
  [[nodiscard]] int as_int() const {
    const double n = as_number();
    const auto i = static_cast<int>(n);
    if (static_cast<double>(i) != n) throw JsonError("expected an integer");
    return i;
  }
  [[nodiscard]] const std::string& as_string() const {
    require(Kind::kString);
    return string_;
  }
  [[nodiscard]] const Array& as_array() const {
    require(Kind::kArray);
    return *array_;
  }
  [[nodiscard]] const Object& as_object() const {
    require(Kind::kObject);
    return *object_;
  }

  /// Object member access; throws JsonError when missing.
  [[nodiscard]] const Value& at(const std::string& key) const {
    const Object& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end()) throw JsonError("missing member \"" + key + "\"");
    return it->second;
  }

  /// Object member access with a fallback for optional fields.
  [[nodiscard]] const Value& get(const std::string& key,
                                 const Value& fallback) const {
    const Object& obj = as_object();
    const auto it = obj.find(key);
    return it == obj.end() ? fallback : it->second;
  }

  [[nodiscard]] bool contains(const std::string& key) const {
    const Object& obj = as_object();
    return obj.find(key) != obj.end();
  }

 private:
  void require(Kind kind) const {
    if (kind_ != kind) throw JsonError("JSON value has the wrong type");
  }

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parse a complete JSON document; trailing garbage is an error.
[[nodiscard]] Value parse(std::string_view text);

/// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
[[nodiscard]] std::string dump(const Value& value, int indent = 0);

}  // namespace archex::json
