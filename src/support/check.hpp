// archex/support/check.hpp
//
// Lightweight diagnostics for ARCHEX: a library-level exception hierarchy and
// precondition/invariant macros. Following the C++ Core Guidelines (I.5,
// E.2), violated preconditions throw rather than abort, so that callers
// embedding the library (tests, long-running exploration loops) can recover.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace archex {

/// Base class for all errors raised by the ARCHEX library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed; indicates a bug inside the library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// A numeric routine failed to converge or detected ill-conditioning.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* kind,
                                             const char* expr,
                                             const std::string& msg,
                                             const std::source_location& loc) {
  std::ostringstream os;
  os << kind << " failure: (" << expr << ") at " << loc.file_name() << ':'
     << loc.line() << " in " << loc.function_name();
  if (!msg.empty()) os << " — " << msg;
  if (kind == std::string("precondition")) throw PreconditionError(os.str());
  throw InternalError(os.str());
}

}  // namespace detail

}  // namespace archex

/// Validate a documented precondition of a public entry point.
#define ARCHEX_REQUIRE(cond, msg)                                   \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::archex::detail::raise_check_failure(                        \
          "precondition", #cond, (msg), std::source_location::current()); \
    }                                                               \
  } while (false)

/// Validate an internal invariant; failure indicates a library bug.
#define ARCHEX_ASSERT(cond, msg)                                    \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::archex::detail::raise_check_failure(                        \
          "invariant", #cond, (msg), std::source_location::current()); \
    }                                                               \
  } while (false)
