// Pareto frontier exploration: enumerate the whole cost/reliability
// trade-off of an EPS template, not just the three samples of Fig. 3.
//
//   build/examples/pareto_frontier [num_generators]
//
// Produces the frontier table and a CSV (pareto_frontier.csv) ready for
// plotting, plus a DOT per frontier point.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/pareto.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace archex;

  eps::EpsSpec spec;
  spec.num_generators = argc > 1 ? std::atoi(argv[1]) : 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  std::printf("EPS template: |V| = %d, %d candidate interconnections\n\n",
              eps.tmpl.num_components(), eps.tmpl.num_candidate_edges());

  ilp::BranchAndBoundOptions bopt;
  bopt.time_limit_seconds = 180.0;
  ilp::BranchAndBoundSolver solver(bopt);

  core::ParetoOptions options;
  options.initial_target = 2e-3;
  options.tighten_factor = 0.3;
  options.max_points = 10;
  options.accept_incumbent = true;

  const core::ParetoFrontier frontier = core::sweep_pareto_frontier(
      [&] { return eps::make_eps_ilp(eps); }, solver, options);

  TextTable table({"#", "r* used", "cost", "components", "contactors",
                   "r~ (algebra)", "r (exact)"});
  for (std::size_t i = 0; i < frontier.points.size(); ++i) {
    const core::ParetoPoint& pt = frontier.points[i];
    table.add_row({format_count(static_cast<long long>(i + 1)),
                   format_sci(pt.target, 1), format_fixed(pt.cost, 0),
                   format_count(pt.configuration.num_used_nodes()),
                   format_count(pt.configuration.num_selected_edges()),
                   format_sci(pt.approx_failure, 2),
                   format_sci(pt.exact_failure, 2)});
    std::ofstream("pareto_point_" + std::to_string(i + 1) + ".dot")
        << pt.configuration.to_dot("Pareto point " + std::to_string(i + 1));
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nsweep ended with: %s (UNFEASIBLE = template exhausted, the "
              "expected terminal state)\n",
              to_string(frontier.terminal_status).c_str());

  std::ofstream csv("pareto_frontier.csv");
  csv << table.to_csv();
  std::puts("wrote pareto_frontier.csv and one DOT per point");
  return 0;
}
