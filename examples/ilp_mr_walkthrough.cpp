// ILP-MR walkthrough — the Fig. 2 scenario of the paper.
//
//   build/examples/ilp_mr_walkthrough [num_generators] [target]
//
// Runs ILP Modulo Reliability on an aircraft EPS template and narrates every
// iteration: the candidate architecture the solver proposed, its exact
// worst-load failure probability from RELANALYSIS, the ESTPATH estimate k,
// and the constraints LEARNCONS appends. DOT renderings of each iteration's
// architecture are written to ilp_mr_iter<i>.dot so the evolution of Fig. 2
// (a) -> (b) -> (c) can be inspected with Graphviz.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/ilp_mr.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"

int main(int argc, char** argv) {
  using namespace archex;

  eps::EpsSpec spec;
  spec.num_generators = argc > 1 ? std::atoi(argv[1]) : 4;
  const double target = argc > 2 ? std::atof(argv[2]) : 2e-10;

  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  std::printf("EPS template: |V| = %d, %d candidate interconnections\n",
              eps.tmpl.num_components(), eps.tmpl.num_candidate_edges());
  std::printf("requirement: every load failure probability <= %.1e\n\n",
              target);

  core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
  ilp::BranchAndBoundSolver solver;
  core::IlpMrOptions options;
  options.target_failure = target;

  const core::IlpMrReport report = core::run_ilp_mr(ilp, solver, options);

  for (std::size_t i = 0; i < report.iterations.size(); ++i) {
    const core::MrIteration& it = report.iterations[i];
    std::printf("--- iteration %zu ---\n", i + 1);
    std::printf("  minimum-cost architecture: cost %.0f, %d components, %d "
                "interconnections\n",
                it.cost, it.num_components, it.num_edges);
    std::printf("  RELANALYSIS: worst load failure r = %.3e %s\n", it.failure,
                it.failure <= target ? "(requirement met)" : "(> r*)");
    if (it.failure > target) {
      if (it.estimated_k >= 1) {
        std::printf("  ESTPATH: k = %d additional redundant paths; "
                    "LEARNCONS added %d constraints\n",
                    it.estimated_k, it.new_constraints);
      } else {
        std::printf("  ESTPATH: k = 0 -> one extra path to the minimum-"
                    "redundancy type; %d constraints added\n",
                    it.new_constraints);
      }
    }
  }

  std::printf("\nresult: %s\n", to_string(report.status).c_str());
  if (report.configuration) {
    std::printf("final architecture: %s\n",
                report.configuration->summary().c_str());
    std::printf("exact failure probability: %.3e (target %.1e)\n",
                report.failure, target);
    const std::string path = "ilp_mr_final.dot";
    std::ofstream(path) << report.configuration->to_dot("ILP-MR final");
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("timings: solver %.2fs (%ld B&B nodes), reliability analysis "
              "%.2fs, %d iterations\n",
              report.solver_seconds, report.solver_nodes,
              report.analysis_seconds, report.num_iterations());
  return report.status == core::SynthesisStatus::kSuccess ? 0 : 1;
}
