// Quickstart: synthesize a small aircraft electric-power-system architecture
// with both algorithms from the paper.
//
//   build/examples/quickstart
//
// Builds the 11-node EPS template (2 generators + APU, one AC bus,
// rectifier, DC bus and load per side), then:
//   1. runs ILP-MR (lazy exact-reliability loop) for r* = 1e-7;
//   2. runs ILP-AR (monolithic approximate-reliability ILP) for the same r*;
//   3. prints costs, exact/approximate failure probabilities and the
//      selected interconnections of both results.
#include <cstdio>
#include <iostream>

#include "core/ilp_ar.hpp"
#include "core/ilp_mr.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"

int main() {
  using namespace archex;

  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  std::cout << "EPS template: " << eps.tmpl.num_components()
            << " components, " << eps.tmpl.num_candidate_edges()
            << " candidate interconnections\n\n";

  const double target = 1e-6;
  ilp::BranchAndBoundSolver solver;

  // ---- ILP Modulo Reliability (Algorithm 1) -------------------------------
  {
    core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
    core::IlpMrOptions options;
    options.target_failure = target;
    const core::IlpMrReport report = core::run_ilp_mr(ilp, solver, options);

    std::cout << "=== ILP-MR (r* = " << target << ") ===\n";
    std::cout << "status: " << to_string(report.status) << '\n';
    for (std::size_t i = 0; i < report.iterations.size(); ++i) {
      const auto& it = report.iterations[i];
      std::printf(
          "  iter %zu: cost %.0f, failure %.3e, k=%d, new constraints %d\n",
          i + 1, it.cost, it.failure, it.estimated_k, it.new_constraints);
    }
    if (report.configuration) {
      std::cout << "final architecture: " << report.configuration->summary()
                << "\n  exact failure " << report.failure << '\n';
    }
    std::printf("solver %.2fs (%ld nodes), reliability analysis %.2fs\n\n",
                report.solver_seconds, report.solver_nodes,
                report.analysis_seconds);
  }

  // ---- ILP with Approximate Reliability (Algorithm 3) ---------------------
  {
    core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
    core::IlpArOptions options;
    options.target_failure = target;
    const core::IlpArReport report = core::run_ilp_ar(ilp, solver, options);

    std::cout << "=== ILP-AR (r* = " << target << ") ===\n";
    std::cout << "status: " << to_string(report.status) << '\n';
    std::printf("model: %d constraints, %d variables (setup %.2fs)\n",
                report.num_constraints, report.num_variables,
                report.setup_seconds);
    if (report.configuration) {
      std::cout << "final architecture: " << report.configuration->summary()
                << '\n';
      std::printf("  approximate failure r~ = %.3e, exact failure r = %.3e\n",
                  report.approx_failure, report.exact_failure);
    }
    std::printf("solver %.2fs (%ld nodes)\n", report.solver_seconds,
                report.solver_nodes);
  }
  return 0;
}
