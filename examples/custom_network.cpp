// Generality demo: a redundant sensor/data-acquisition network built
// directly on the public core API — no EPS code involved. This exercises
// the "broader category of systems (e.g. power grids, communication
// networks)" direction the paper's conclusion points to.
//
//   build/examples/custom_network
//
// Topology template (types ordered source -> sink, as the partition
// convention requires):
//   sensors (type 0)  ->  concentrators (type 1)  ->  gateways (type 2)
//   -> control station (type 3, the sink)
// Concentrators and gateways each have same-type tie candidates (the
// Section-V shorthand for redundant components). The requirement: the
// control station must receive data with failure probability below r*.
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/arch_ilp.hpp"
#include "core/ilp_ar.hpp"
#include "core/ilp_mr.hpp"
#include "eps/eps_library.hpp"  // only for comparison printing, not used
#include "ilp/solver.hpp"

int main() {
  using namespace archex;
  using graph::NodeId;

  core::Template tmpl;
  // name, type, cost, failure prob, power supply, power demand.
  std::vector<NodeId> sensors;
  for (int i = 0; i < 4; ++i) {
    sensors.push_back(tmpl.add_component(
        {"SEN" + std::to_string(i + 1), 0, 150.0, 1e-3, 1.0, 0.0}));
  }
  std::vector<NodeId> hubs;
  for (int i = 0; i < 3; ++i) {
    hubs.push_back(tmpl.add_component(
        {"HUB" + std::to_string(i + 1), 1, 400.0, 5e-4, 4.0, 0.0}));
  }
  std::vector<NodeId> gateways;
  for (int i = 0; i < 2; ++i) {
    gateways.push_back(tmpl.add_component(
        {"GW" + std::to_string(i + 1), 2, 900.0, 5e-4, 4.0, 0.0}));
  }
  const NodeId station =
      tmpl.add_component({"CTRL", 3, 0.0, 0.0, 0.0, 1.0});

  // Candidate links (every link costs 50 to provision).
  const double link = 50.0;
  for (NodeId s : sensors) {
    for (NodeId h : hubs) tmpl.add_candidate_edge(s, h, link);
  }
  for (std::size_t i = 0; i + 1 < hubs.size(); ++i) {  // hub ring ties
    tmpl.add_candidate_edge(hubs[i], hubs[i + 1], link);
    tmpl.add_candidate_edge(hubs[i + 1], hubs[i], link);
  }
  for (NodeId h : hubs) {
    for (NodeId g : gateways) tmpl.add_candidate_edge(h, g, link);
  }
  tmpl.add_candidate_edge(gateways[0], gateways[1], link);
  tmpl.add_candidate_edge(gateways[1], gateways[0], link);
  for (NodeId g : gateways) tmpl.add_candidate_edge(g, station, link);

  // Interconnection requirements, straight from the generic builders.
  core::ArchitectureIlp ilp(tmpl);
  ilp.require_all_sinks_fed();
  for (NodeId h : hubs) {
    // A hub that forwards anywhere must listen to at least one sensor.
    std::vector<NodeId> targets = gateways;
    targets.insert(targets.end(), hubs.begin(), hubs.end());
    ilp.add_conditional_predecessor_rule(targets, h, sensors);
  }
  for (NodeId g : gateways) {
    std::vector<NodeId> targets{station};
    targets.insert(targets.end(), gateways.begin(), gateways.end());
    ilp.add_conditional_predecessor_rule(targets, g, hubs);
  }

  std::printf("sensor network template: %d nodes, %d candidate links\n\n",
              tmpl.num_components(), tmpl.num_candidate_edges());

  ilp::BranchAndBoundSolver solver;

  // ILP-MR for a demanding requirement.
  core::IlpMrOptions mr;
  mr.target_failure = 1e-6;
  const core::IlpMrReport rep = core::run_ilp_mr(ilp, solver, mr);
  std::printf("ILP-MR @ r* = %.0e: %s\n", mr.target_failure,
              to_string(rep.status).c_str());
  if (rep.configuration) {
    std::printf("  %s\n", rep.configuration->summary().c_str());
    std::printf("  exact failure %.3e after %d iterations\n", rep.failure,
                rep.num_iterations());
    std::ofstream("custom_network.dot")
        << rep.configuration->to_dot("sensor network, r* = 1e-6");
    std::printf("  wrote custom_network.dot\n");
  }

  // ILP-AR on a fresh base model for the same target, for comparison.
  core::ArchitectureIlp ilp2(tmpl);
  ilp2.require_all_sinks_fed();
  for (NodeId h : hubs) {
    std::vector<NodeId> targets = gateways;
    targets.insert(targets.end(), hubs.begin(), hubs.end());
    ilp2.add_conditional_predecessor_rule(targets, h, sensors);
  }
  for (NodeId g : gateways) {
    std::vector<NodeId> targets{station};
    targets.insert(targets.end(), gateways.begin(), gateways.end());
    ilp2.add_conditional_predecessor_rule(targets, g, hubs);
  }
  core::IlpArOptions ar;
  ar.target_failure = mr.target_failure;
  const core::IlpArReport arep = core::run_ilp_ar(ilp2, solver, ar);
  std::printf("\nILP-AR @ r* = %.0e: %s\n", ar.target_failure,
              to_string(arep.status).c_str());
  if (arep.configuration) {
    std::printf("  %s\n", arep.configuration->summary().c_str());
    std::printf("  algebra r~ = %.3e, exact r = %.3e\n", arep.approx_failure,
                arep.exact_failure);
  }
  return 0;
}
