// archex_cli — command-line front end for the ARCHEX library.
//
// Usage:
//   archex_cli synth   (--eps <generators> | --template <file.json>)
//                      --target <r*> [--algorithm mr|ar] [--lazy]
//                      [--time-limit <s>] [--accept-incumbent]
//                      [--threads <n>] [--plain-bnb] [--no-learning]
//                      [--dot <out.dot>] [--save <out.json>] [--mps <out.mps>]
//   archex_cli analyze (--eps <generators> | --template <file.json>)
//                      --config <file.json> [--importance] [--cuts]
//   archex_cli export  (--eps <generators> | --template <file.json>)
//                      --out <file.json>
//
// `synth` selects a minimum-cost architecture meeting the reliability
// requirement; `analyze` evaluates a stored configuration (exact and
// approximate failure, optional importance ranking and minimal cut sets);
// `export` writes a template document (e.g. a generated EPS instance) for
// later editing.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/ilp_ar.hpp"
#include "core/ilp_mr.hpp"
#include "core/serialize.hpp"
#include "eps/eps_template.hpp"
#include "ilp/mps.hpp"
#include "ilp/solver.hpp"
#include "rel/cuts.hpp"
#include "rel/importance.hpp"
#include "support/table.hpp"

namespace {

using namespace archex;

struct Args {
  std::string command;
  std::optional<int> eps_generators;
  std::string template_file;
  std::string config_file;
  std::string out_file;
  std::string dot_file;
  std::string save_file;
  std::string mps_file;
  double target = 1e-6;
  std::string algorithm = "mr";
  bool lazy = false;
  bool accept_incumbent = false;
  bool importance = false;
  bool cuts = false;
  double time_limit = 300.0;
  int threads = 0;  // 0 = serial branch & bound
  /// Disable the solver's cut-and-branch layer (cutting planes, pseudocost
  /// branching, reduced-cost fixing) for A/B comparisons.
  bool plain_bnb = false;
  /// Conflict-driven nogood learning (DESIGN.md §4g); on by default,
  /// --no-learning turns it off for A/B comparisons.
  bool learning = true;
};

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "error: %s\n\n", why);
  std::fputs(
      "usage:\n"
      "  archex_cli synth   (--eps N | --template F) --target R\n"
      "                     [--algorithm mr|ar] [--lazy] [--time-limit S]\n"
      "                     [--threads N] [--plain-bnb] [--no-learning]\n"
      "                     [--accept-incumbent] [--dot F] [--save F] "
      "[--mps F]\n"
      "  archex_cli analyze (--eps N | --template F) --config F\n"
      "                     [--importance] [--cuts]\n"
      "  archex_cli export  (--eps N | --template F) --out F\n",
      stderr);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage("missing command");
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--eps") a.eps_generators = std::stoi(value());
    else if (flag == "--template") a.template_file = value();
    else if (flag == "--config") a.config_file = value();
    else if (flag == "--out") a.out_file = value();
    else if (flag == "--dot") a.dot_file = value();
    else if (flag == "--save") a.save_file = value();
    else if (flag == "--mps") a.mps_file = value();
    else if (flag == "--target") a.target = std::stod(value());
    else if (flag == "--algorithm") a.algorithm = value();
    else if (flag == "--time-limit") a.time_limit = std::stod(value());
    else if (flag == "--threads") a.threads = std::stoi(value());
    else if (flag == "--lazy") a.lazy = true;
    else if (flag == "--accept-incumbent") a.accept_incumbent = true;
    else if (flag == "--importance") a.importance = true;
    else if (flag == "--cuts") a.cuts = true;
    else if (flag == "--plain-bnb") a.plain_bnb = true;
    else if (flag == "--learning") a.learning = true;
    else if (flag == "--no-learning") a.learning = false;
    else usage(("unknown flag " + flag).c_str());
  }
  return a;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write " + path);
  out << text;
}

core::Template load_template(const Args& a) {
  if (a.eps_generators) {
    eps::EpsSpec spec;
    spec.num_generators = *a.eps_generators;
    return std::move(eps::make_eps_template(spec).tmpl);
  }
  if (!a.template_file.empty()) {
    return core::template_from_json(read_file(a.template_file),
                                    a.template_file);
  }
  usage("provide --eps N or --template F");
}

/// Base ILP: EPS templates get the Section-V requirement pack; custom
/// templates get the generic sink-fed rule (edit the JSON to add more).
core::ArchitectureIlp make_ilp(const Args& a, const core::Template& tmpl) {
  core::ArchitectureIlp ilp(tmpl);
  if (a.eps_generators) {
    // make_eps_template is deterministic, so the regenerated node groups
    // line up 1:1 with `tmpl` (which load_template built the same way).
    eps::EpsSpec spec;
    spec.num_generators = *a.eps_generators;
    const eps::EpsTemplate grouping = eps::make_eps_template(spec);
    eps::apply_eps_requirements(ilp, grouping);
  } else {
    ilp.require_all_sinks_fed();
  }
  return ilp;
}

int cmd_synth(const Args& a) {
  const core::Template tmpl = load_template(a);
  core::ArchitectureIlp ilp = make_ilp(a, tmpl);

  if (!a.mps_file.empty()) {
    // Export the *base* model before the reliability layer for inspection.
    write_file(a.mps_file, ilp::to_mps(ilp.model(), "archex_base"));
    std::printf("wrote base model MPS to %s\n", a.mps_file.c_str());
  }

  ilp::BranchAndBoundOptions bopt;
  bopt.time_limit_seconds = a.time_limit;
  bopt.threads = a.threads;  // >= 2 enables the work-stealing tree search
  bopt.learning = a.learning;
  if (a.plain_bnb) {
    bopt.cuts = false;
    bopt.pseudocost = false;
    bopt.rc_fixing = false;
    bopt.learning = false;
  }
  ilp::BranchAndBoundSolver solver(bopt);

  std::optional<core::Configuration> config;
  if (a.algorithm == "mr") {
    core::IlpMrOptions opt;
    opt.target_failure = a.target;
    opt.lazy_strategy = a.lazy;
    opt.accept_incumbent = a.accept_incumbent;
    const core::IlpMrReport rep = core::run_ilp_mr(ilp, solver, opt);
    std::printf("ILP-MR: %s in %d iterations (analysis %.2fs, solver "
                "%.2fs)\n",
                to_string(rep.status).c_str(), rep.num_iterations(),
                rep.analysis_seconds, rep.solver_seconds);
    std::printf("solver: %ld nodes, %ld cuts, %ld rc-fixings, %ld pseudocost "
                "branchings\n",
                rep.solver_nodes, rep.solver_cuts_added, rep.solver_rc_fixings,
                rep.solver_pseudocost_branches);
    if (bopt.learning) {
      std::printf("learning: %ld nogoods (%ld oracle), %ld prunings, "
                  "store %ld\n",
                  rep.solver_nogoods_learned, rep.oracle_nogoods,
                  rep.solver_nogood_prunings, rep.solver_nogood_store_size);
    }
    if (rep.configuration) {
      std::printf("exact worst-sink failure: %.3e (target %.1e)\n",
                  rep.failure, a.target);
      config = rep.configuration;
    }
  } else if (a.algorithm == "ar") {
    core::IlpArOptions opt;
    opt.target_failure = a.target;
    opt.accept_incumbent = a.accept_incumbent;
    const core::IlpArReport rep = core::run_ilp_ar(ilp, solver, opt);
    std::printf("ILP-AR: %s (%d constraints, setup %.2fs, solver %.2fs)\n",
                to_string(rep.status).c_str(), rep.num_constraints,
                rep.setup_seconds, rep.solver_seconds);
    std::printf("solver: %ld nodes, %ld cuts, %ld rc-fixings, %ld pseudocost "
                "branchings\n",
                rep.solver_nodes, rep.solver_cuts_added, rep.solver_rc_fixings,
                rep.solver_pseudocost_branches);
    if (bopt.learning) {
      std::printf("learning: %ld nogoods, %ld prunings, store %ld\n",
                  rep.solver_nogoods_learned, rep.solver_nogood_prunings,
                  rep.solver_nogood_store_size);
    }
    if (rep.configuration) {
      std::printf("algebra r~ = %.3e, exact r = %.3e (target %.1e)\n",
                  rep.approx_failure, rep.exact_failure, a.target);
      config = rep.configuration;
    }
  } else {
    usage("--algorithm must be mr or ar");
  }

  if (!config) return 1;
  std::printf("architecture: %s\n", config->summary().c_str());
  if (!a.dot_file.empty()) {
    write_file(a.dot_file, config->to_dot("archex synthesis"));
    std::printf("wrote DOT to %s\n", a.dot_file.c_str());
  }
  if (!a.save_file.empty()) {
    write_file(a.save_file, core::to_json(*config));
    std::printf("wrote configuration to %s\n", a.save_file.c_str());
  }
  return 0;
}

int cmd_analyze(const Args& a) {
  const core::Template tmpl = load_template(a);
  if (a.config_file.empty()) usage("analyze needs --config");
  const core::Configuration config =
      core::configuration_from_json(tmpl, read_file(a.config_file),
                                    a.config_file);

  std::printf("architecture: %s\n", config.summary().c_str());
  const graph::Digraph g = config.analysis_graph();
  const auto part = tmpl.partition();
  const auto p = tmpl.node_failure_probs();

  TextTable table({"sink", "exact r", "algebra r~", "EP lower", "EP upper"});
  for (const graph::NodeId sink : tmpl.sinks()) {
    const double exact = config.failure_probability(sink);
    const double approx = config.approximate_failure(sink).r_tilde;
    rel::FailureBounds bounds;
    try {
      bounds = rel::esary_proschan_bounds(g, part.members(0), sink, p);
    } catch (const Error&) {
      bounds = {0.0, 1.0};  // enumeration cap: report the trivial bounds
    }
    table.add_row({tmpl.component(sink).name, format_sci(exact, 3),
                   format_sci(approx, 3), format_sci(bounds.lower, 3),
                   format_sci(bounds.upper, 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  if (a.importance) {
    const graph::NodeId sink = tmpl.sinks().front();
    const rel::ImportanceReport rep =
        rel::importance_analysis(g, part.members(0), sink, p);
    std::printf("\ncomponent importance for sink %s (F = %.3e):\n",
                tmpl.component(sink).name.c_str(), rep.failure);
    TextTable imp({"component", "Birnbaum", "RAW", "RRW"});
    for (const auto& c : rep.components) {
      imp.add_row({tmpl.component(c.node).name, format_sci(c.birnbaum, 3),
                   format_fixed(c.risk_achievement, 2),
                   format_fixed(c.risk_reduction, 2)});
    }
    std::fputs(imp.to_string().c_str(), stdout);
  }

  if (a.cuts) {
    const graph::NodeId sink = tmpl.sinks().front();
    const auto cuts =
        rel::minimal_cut_sets(g, part.members(0), sink, p);
    std::printf("\nminimal cut sets for sink %s (%zu):\n",
                tmpl.component(sink).name.c_str(), cuts.size());
    for (const auto& cut : cuts) {
      std::string line = "  {";
      for (std::size_t i = 0; i < cut.size(); ++i) {
        if (i) line += ", ";
        line += tmpl.component(cut[i]).name;
      }
      std::printf("%s}\n", line.c_str());
    }
  }
  return 0;
}

int cmd_export(const Args& a) {
  const core::Template tmpl = load_template(a);
  if (a.out_file.empty()) usage("export needs --out");
  write_file(a.out_file, core::to_json(tmpl));
  std::printf("wrote template (%d components, %d candidate edges) to %s\n",
              tmpl.num_components(), tmpl.num_candidate_edges(),
              a.out_file.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse_args(argc, argv);
    if (a.command == "synth") return cmd_synth(a);
    if (a.command == "analyze") return cmd_analyze(a);
    if (a.command == "export") return cmd_export(a);
    usage(("unknown command " + a.command).c_str());
  } catch (const core::SpecError& e) {
    // One line: file (or request source), JSON path, reason — the same
    // diagnostic shape the archex_server returns for bad wire requests.
    std::fprintf(stderr, "spec error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
