// Cost/reliability trade-off sweep — the Fig. 3 scenario of the paper.
//
//   build/examples/eps_tradeoff [num_generators]
//
// Synthesizes EPS architectures with ILP-AR for a ladder of reliability
// requirements and prints, per requirement: the optimal cost, the number of
// instantiated components/contactors, the algebra's estimate r~ and the
// exact failure probability r. The tighter the requirement, the more
// redundant paths appear and the higher the cost — Fig. 3 (a)-(c).
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/ilp_ar.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace archex;

  eps::EpsSpec spec;
  spec.num_generators = argc > 1 ? std::atoi(argv[1]) : 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  std::printf("EPS template: |V| = %d, %d candidate interconnections\n\n",
              eps.tmpl.num_components(), eps.tmpl.num_candidate_edges());

  TextTable table({"r* (required)", "status", "cost", "components",
                   "contactors", "r~ (algebra)", "r (exact)"});

  ilp::BranchAndBoundSolver solver;
  for (const double target : {2e-3, 2e-6, 2e-7}) {
    core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
    core::IlpArOptions options;
    options.target_failure = target;
    const core::IlpArReport rep = core::run_ilp_ar(ilp, solver, options);

    if (rep.configuration) {
      const auto& cfg = *rep.configuration;
      table.add_row({format_sci(target, 1), to_string(rep.status),
                     format_fixed(cfg.total_cost(), 0),
                     format_count(cfg.num_used_nodes()),
                     format_count(cfg.num_selected_edges()),
                     format_sci(rep.approx_failure, 2),
                     format_sci(rep.exact_failure, 2)});
      std::ofstream("eps_tradeoff_" + format_sci(target, 0) + ".dot")
          << cfg.to_dot("ILP-AR, r* = " + format_sci(target, 1));
    } else {
      table.add_row({format_sci(target, 1), to_string(rep.status), "-", "-",
                     "-", "-", "-"});
    }
  }

  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nDOT files written for each synthesized architecture "
              "(render with: dot -Tpng <file> -o arch.png)\n");
  return 0;
}
