// archex_server — long-lived multi-tenant solve service.
//
// Listens on a TCP port for line-delimited JSON solve requests
// ("archex-request" documents, core/serialize.hpp) and answers each with
// one "archex-response" line. Requests from all clients share one
// process-lifetime reliability cache and per-problem-family learned-nogood
// stores, so repeated requests over the same template family get faster.
//
//   archex_server [--port P] [--threads N] [--max-queue Q] [--no-learning]
//                 [--deadline S] [--solver-threads N]
//
// SIGTERM / SIGINT drain gracefully: in-flight requests finish and their
// responses are written before the process exits.
//
// Smoke test:
//   archex_server --port 7750 &
//   printf '%s\n' '{"format":"archex-request","version":1,"id":"r1",
//     "mode":"mr","eps_generators":1,"target_failure":1e-4}' | nc 127.0.0.1 7750
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "server/solve_server.hpp"
#include "support/socket.hpp"

namespace {

using namespace archex;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n", error);
  std::fprintf(stderr, R"(usage: archex_server [options]

  --port P            TCP port to listen on (default 7750; 0 picks a free one)
  --threads N         concurrent solve workers (default 2)
  --max-queue Q       queued-request bound before load shedding
                      (default 16, min 1)
  --deadline S        default per-request budget in seconds (default 60)
  --solver-threads N  per-request solver thread cap (default 0 = serial)
  --no-learning       disable cross-request nogood persistence and solver
                      conflict learning
)");
  std::exit(error != nullptr ? 2 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  server::SolveServerOptions options;
  options.port = 7750;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--port") {
      options.port = static_cast<std::uint16_t>(std::stoi(value()));
    } else if (flag == "--threads") {
      options.workers = std::stoi(value());
    } else if (flag == "--max-queue") {
      options.max_queue = std::stoi(value());
    } else if (flag == "--deadline") {
      options.service.default_deadline_seconds = std::stod(value());
    } else if (flag == "--solver-threads") {
      options.service.max_solver_threads = std::stoi(value());
    } else if (flag == "--no-learning") {
      options.service.learning = false;
    } else if (flag == "--help" || flag == "-h") {
      usage();
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }

  const volatile std::sig_atomic_t* shutdown =
      support::install_shutdown_signal_flag();

  server::SolveServer server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "archex_server: %s\n", e.what());
    return 1;
  }
  std::printf("archex_server listening on port %u (%d workers, queue %d, "
              "learning %s)\n",
              server.port(), options.workers, options.max_queue,
              options.service.learning ? "on" : "off");
  std::fflush(stdout);

  while (*shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("archex_server: draining...\n");
  std::fflush(stdout);
  server.stop();

  const server::SolveServer::Stats stats = server.stats();
  const rel::EvalCache::Stats cache = server.service().cache().stats();
  std::printf("archex_server: served %ld requests over %ld connections "
              "(%ld shed, %ld malformed); cache %.1f%% hits, %zu entries; "
              "%zu nogood families\n",
              stats.requests, stats.connections, stats.shed, stats.malformed,
              100.0 * cache.hit_rate(), cache.size,
              server.service().nogood_families());
  return 0;
}
