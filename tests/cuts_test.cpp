// Tests for minimal cut sets, Esary–Proschan bounds and component
// importance analysis (archex::rel extensions).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/digraph.hpp"
#include "rel/cuts.hpp"
#include "rel/exact.hpp"
#include "rel/importance.hpp"
#include "support/rng.hpp"

namespace archex::rel {
namespace {

using graph::Digraph;
using graph::NodeId;

// Two disjoint chains G1->B1->L and G2->B2->L (L perfect).
struct TwoChains {
  Digraph g{5};
  std::vector<double> p{0.1, 0.1, 0.2, 0.2, 0.0};
  TwoChains() {
    g.add_edge(0, 2);
    g.add_edge(2, 4);
    g.add_edge(1, 3);
    g.add_edge(3, 4);
  }
};

TEST(Cuts, SeriesChainCutsAreSingletons) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<double> p{0.1, 0.1, 0.1};
  const auto cuts = minimal_cut_sets(g, {0}, 2, p);
  // Every node alone cuts the single path.
  ASSERT_EQ(cuts.size(), 3u);
  for (const auto& cut : cuts) EXPECT_EQ(cut.size(), 1u);
}

TEST(Cuts, ParallelChainsNeedPairCuts) {
  const TwoChains tc;
  const auto cuts = minimal_cut_sets(tc.g, {0, 1}, 4, tc.p);
  // The sink is perfect (excluded); cuts are one node per chain: 2x2 pairs.
  ASSERT_EQ(cuts.size(), 4u);
  for (const auto& cut : cuts) {
    ASSERT_EQ(cut.size(), 2u);
    // One node from chain {0,2}, one from {1,3}.
    const bool left = cut[0] == 0 || cut[0] == 2 || cut[1] == 0 || cut[1] == 2;
    const bool right = cut[0] == 1 || cut[0] == 3 || cut[1] == 1 || cut[1] == 3;
    EXPECT_TRUE(left && right);
  }
}

TEST(Cuts, PerfectNodesExcluded) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // Middle node perfect: cuts are {source} and {sink-side node}... sink has
  // p > 0 here.
  const auto cuts = minimal_cut_sets(g, {0}, 2, {0.1, 0.0, 0.1});
  ASSERT_EQ(cuts.size(), 2u);
  for (const auto& cut : cuts) {
    ASSERT_EQ(cut.size(), 1u);
    EXPECT_NE(cut[0], 1);
  }
}

TEST(Cuts, UnbreakablePathMeansNoCuts) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto cuts = minimal_cut_sets(g, {0}, 2, {0.0, 0.0, 0.0});
  EXPECT_TRUE(cuts.empty());
}

TEST(Cuts, CutFailureDisconnects) {
  // Property on the fixture: failing all nodes of any minimal cut must
  // disconnect the link; restoring any single node reconnects (minimality).
  const TwoChains tc;
  const auto cuts = minimal_cut_sets(tc.g, {0, 1}, 4, tc.p);
  for (const auto& cut : cuts) {
    std::vector<double> forced = tc.p;
    for (const NodeId v : cut) forced[static_cast<std::size_t>(v)] = 1.0;
    EXPECT_DOUBLE_EQ(failure_probability(tc.g, {0, 1}, 4, forced), 1.0);
    for (const NodeId spare : cut) {
      std::vector<double> partial = forced;
      partial[static_cast<std::size_t>(spare)] = 0.0;
      EXPECT_LT(failure_probability(tc.g, {0, 1}, 4, partial), 1.0)
          << "cut is not minimal at node " << spare;
    }
  }
}

TEST(Bounds, BracketExactOnFixture) {
  const TwoChains tc;
  const FailureBounds b = esary_proschan_bounds(tc.g, {0, 1}, 4, tc.p);
  const double exact = failure_probability(tc.g, {0, 1}, 4, tc.p);
  EXPECT_LE(b.lower, exact + 1e-12);
  EXPECT_GE(b.upper, exact - 1e-12);
  EXPECT_GT(b.lower, 0.0);
  EXPECT_LT(b.upper, 1.0);
}

// Property: EP bounds bracket the exact failure probability on random DAGs.
class BoundsProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundsProperty, BracketExact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 13);
  const int n = 5 + static_cast<int>(rng.next_below(4));
  Digraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_bernoulli(0.45)) g.add_edge(u, v);
    }
  }
  std::vector<double> p(static_cast<std::size_t>(n));
  for (auto& q : p) q = rng.next_double() * 0.4;
  const std::vector<NodeId> sources{0, 1};
  const NodeId sink = n - 1;
  const double exact = failure_probability(g, sources, sink, p);
  try {
    const FailureBounds b = esary_proschan_bounds(g, sources, sink, p);
    EXPECT_LE(b.lower, exact + 1e-9);
    EXPECT_GE(b.upper, exact - 1e-9);
  } catch (const Error&) {
    // Enumeration cap exceeded on a dense instance: acceptable.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsProperty, ::testing::Range(0, 25));

// ---- importance ----------------------------------------------------------------

TEST(Importance, SeriesChainRanksByFailureContribution) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<double> p{0.01, 0.3, 0.0};
  const ImportanceReport rep = importance_analysis(g, {0}, 2, p);
  ASSERT_EQ(rep.components.size(), 2u);  // the perfect sink is excluded
  // In a series system, Birnbaum of v is prod of others' reliabilities:
  // I_B(0) = 0.7, I_B(1) = 0.99 -> node 1 first.
  EXPECT_EQ(rep.components[0].node, 1);
  EXPECT_NEAR(rep.components[0].birnbaum, 0.99, 1e-12);
  EXPECT_NEAR(rep.components[1].birnbaum, 0.70, 1e-12);
  // Down/up conditioning is consistent with the law of total probability:
  // F = p*F_down + (1-p)*F_up.
  for (const auto& c : rep.components) {
    const double pv = p[static_cast<std::size_t>(c.node)];
    EXPECT_NEAR(rep.failure,
                pv * c.failure_if_down + (1 - pv) * c.failure_if_up, 1e-12);
  }
}

TEST(Importance, RedundantBranchMattersLess) {
  const TwoChains tc;
  const ImportanceReport rep = importance_analysis(tc.g, {0, 1}, 4, tc.p);
  // All four failable components are in parallel chains; each one's RAW is
  // finite and its failure_if_down equals the other chain's failure.
  for (const auto& c : rep.components) {
    EXPECT_GT(c.birnbaum, 0.0);
    EXPECT_LT(c.failure_if_down, 1.0);
    EXPECT_GT(c.risk_achievement, 1.0);
    EXPECT_GT(c.risk_reduction, 1.0);
  }
}

TEST(Importance, IrrelevantComponentScoresZero) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  // Node 2 is isolated from the link.
  g.add_edge(2, 3);
  const std::vector<double> p{0.1, 0.1, 0.5, 0.0};
  const ImportanceReport rep = importance_analysis(g, {0}, 3, p);
  const auto it = std::find_if(rep.components.begin(), rep.components.end(),
                               [](const auto& c) { return c.node == 2; });
  ASSERT_NE(it, rep.components.end());
  EXPECT_DOUBLE_EQ(it->birnbaum, 0.0);
  EXPECT_DOUBLE_EQ(it->risk_achievement, 1.0);
  EXPECT_DOUBLE_EQ(it->risk_reduction, 1.0);
}

}  // namespace
}  // namespace archex::rel
