// Tests for archex::support::ThreadPool: inline single-thread mode, futures,
// parallel_for coverage and exception propagation, and nest-safety (a task
// that itself fans out must not deadlock the pool).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace archex::support {
namespace {

TEST(ThreadPool, ClampsThreadCount) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, SubmitReturnsValue) {
  for (int n : {1, 3}) {
    ThreadPool pool(n);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(pool.wait(future), 42);
  }
}

TEST(ThreadPool, SubmitPropagatesException) {
  for (int n : {1, 3}) {
    ThreadPool pool(n);
    auto future =
        pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW((void)pool.wait(future), std::runtime_error);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (int n : {1, 2, 5}) {
    ThreadPool pool(n);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> touched(kCount);
    pool.parallel_for(0, kCount, [&](std::size_t i) { ++touched[i]; });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  for (int n : {1, 4}) {
    ThreadPool pool(n);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [&](std::size_t i) {
                                     if (i == 13) {
                                       throw std::runtime_error("unlucky");
                                     }
                                     ++completed;
                                   }),
                 std::runtime_error);
    EXPECT_LE(completed.load(), 99);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Every outer iteration fans out again on the same pool; with blocking
  // joins this would deadlock as soon as all workers wait on inner tasks.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t j) {
      total += static_cast<long>(j);
    });
  });
  EXPECT_EQ(total.load(), 8 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(ThreadPool, RunWorkersGivesEveryBodyAStableId) {
  for (int pool_size : {1, 4}) {
    for (int count : {1, 3, 6}) {
      ThreadPool pool(pool_size);
      std::vector<std::atomic<int>> started(
          static_cast<std::size_t>(count));
      pool.run_workers(count, [&](int w) {
        ASSERT_GE(w, 0);
        ASSERT_LT(w, count);
        ++started[static_cast<std::size_t>(w)];
      });
      for (int w = 0; w < count; ++w) {
        EXPECT_EQ(started[static_cast<std::size_t>(w)].load(), 1)
            << "worker " << w << " pool=" << pool_size;
      }
    }
  }
}

TEST(ThreadPool, RunWorkersJoinsAllBodiesBeforeRethrowing) {
  // Bodies reference this local; a body left running past the rethrow
  // would race its destruction (tsan would flag it).
  ThreadPool pool(4);
  std::atomic<int> finished{0};
  EXPECT_THROW(pool.run_workers(4,
                                [&](int w) {
                                  if (w == 0) {
                                    throw std::runtime_error("boom");
                                  }
                                  ++finished;
                                }),
               std::runtime_error);
  EXPECT_EQ(finished.load(), 3);
}

TEST(ThreadPool, ManySmallTasksViaSubmit) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long total = 0;
  for (auto& f : futures) total += pool.wait(f);
  EXPECT_EQ(total, 199L * 200 / 2);
}

}  // namespace
}  // namespace archex::support
