// Tests for the reliability-evaluation acceleration substrate: the EvalCache
// unit behaviour (hits, capacity, invalidation) and the determinism contract
// of the accelerated factoring analyzer and sharded Monte Carlo — cached,
// parallel, and cached+parallel runs must be bit-identical to the plain
// serial evaluation for the same inputs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "rel/eval_cache.hpp"
#include "rel/exact.hpp"
#include "rel/monte_carlo.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace archex::rel {
namespace {

using graph::Digraph;
using graph::NodeId;
using support::ThreadPool;

EvalKey sample_key(int salt = 0) {
  EvalKey key;
  key.edges = {{0, 1}, {1, 2 + salt}};
  key.probs = {0.1, 0.2, 0.3};
  key.sources = {0};
  key.sink = 2;
  return key;
}

// Random DAG with sources {0, 1} and sink n-1, mirroring the rel_test
// agreement fixture; dense enough that factoring recurses several levels.
Digraph random_dag(std::uint64_t seed, int n, std::vector<double>& p) {
  Rng rng(seed);
  Digraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_bernoulli(0.5)) g.add_edge(u, v);
    }
  }
  p.assign(static_cast<std::size_t>(n), 0.0);
  for (auto& v : p) v = rng.next_double() * 0.5;
  return g;
}

// ---- cache unit behaviour ---------------------------------------------------

TEST(EvalCache, MissThenHit) {
  EvalCache cache;
  const EvalKey key = sample_key();
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.store(key, 0.25);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.25);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(EvalCache, DistinctKeysDoNotAlias) {
  EvalCache cache;
  cache.store(sample_key(0), 1.0);
  EXPECT_FALSE(cache.lookup(sample_key(1)).has_value());

  // Same structure but different probabilities is a different subproblem.
  EvalKey tweaked = sample_key(0);
  tweaked.probs[1] = 0.75;
  EXPECT_FALSE(cache.lookup(tweaked).has_value());
  EXPECT_NE(sample_key(0).hash(), tweaked.hash());
}

TEST(EvalCache, DuplicateStoreKeepsFirstValue) {
  EvalCache cache;
  const EvalKey key = sample_key();
  cache.store(key, 0.5);
  cache.store(key, 0.9);
  EXPECT_EQ(*cache.lookup(key), 0.5);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(EvalCache, CapacityRejectsNewKeysButNotExisting) {
  EvalCache cache(/*max_entries=*/2);
  cache.store(sample_key(0), 0.0);
  cache.store(sample_key(1), 1.0);
  cache.store(sample_key(2), 2.0);  // over capacity: dropped
  EXPECT_FALSE(cache.lookup(sample_key(2)).has_value());
  EXPECT_TRUE(cache.lookup(sample_key(0)).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.rejected, 1u);

  // Re-storing a resident key at capacity is not a rejection.
  cache.store(sample_key(0), 0.0);
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(EvalCache, ClearInvalidatesEntriesButKeepsCounters) {
  EvalCache cache;
  cache.store(sample_key(), 0.5);
  (void)cache.lookup(sample_key());
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Entries are gone: the same key misses and can be restored with a new
  // value (this is the invalidation path for changed inputs).
  EXPECT_FALSE(cache.lookup(sample_key()).has_value());
  cache.store(sample_key(), 0.75);
  EXPECT_EQ(*cache.lookup(sample_key()), 0.75);
}

// ---- sharded table vs single-lock table -------------------------------------

TEST(EvalCacheSharding, ShardCountIsClampedPowerOfTwo) {
  EXPECT_EQ(EvalCache(16, 1).num_shards(), 1);
  EXPECT_EQ(EvalCache(16, 3).num_shards(), 4);
  EXPECT_EQ(EvalCache(16, 16).num_shards(), 16);
  EXPECT_EQ(EvalCache(16, 100000).num_shards(), 256);
  EXPECT_EQ(EvalCache().num_shards(), EvalCache::kDefaultShards);
}

TEST(EvalCacheSharding, UnitBehaviourIdenticalAcrossShardCounts) {
  for (const int shards : {1, 2, 16}) {
    EvalCache cache(/*max_entries=*/2, shards);
    cache.store(sample_key(0), 0.0);
    cache.store(sample_key(1), 1.0);
    cache.store(sample_key(2), 2.0);  // over the *global* cap: dropped
    EXPECT_FALSE(cache.lookup(sample_key(2)).has_value()) << shards;
    EXPECT_EQ(*cache.lookup(sample_key(0)), 0.0) << shards;
    EXPECT_EQ(*cache.lookup(sample_key(1)), 1.0) << shards;
    const auto stats = cache.stats();
    EXPECT_EQ(stats.size, 2u) << shards;
    EXPECT_EQ(stats.rejected, 1u) << shards;
    EXPECT_EQ(stats.hits, 2u) << shards;
    EXPECT_EQ(stats.misses, 1u) << shards;
  }
}

// The regression guard for the archex_server refactor: on the randomized
// DAG corpus of the PR 3 differential harness, factoring through a sharded
// table must return bit-identical values to the historical single-lock
// table (shards == 1), serial and parallel, cold and warm — results must be
// a pure function of the key set, never of the lock layout.
TEST(EvalCacheSharding, DifferentialShardedVsSingleLockOnRandomDags) {
  ThreadPool pool(4);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<double> p;
    const Digraph g = random_dag(seed * 7919, 10, p);
    const std::vector<NodeId> sources{0, 1};
    const NodeId sink = g.num_nodes() - 1;

    EvalCache single(1u << 20, /*num_shards=*/1);
    EvalContext single_ctx;
    single_ctx.cache = &single;
    const double reference = failure_probability(g, sources, sink, p,
                                                 single_ctx);

    for (const int shards : {2, 16}) {
      EvalCache sharded(1u << 20, shards);
      EvalContext ctx;
      ctx.cache = &sharded;
      EXPECT_EQ(reference, failure_probability(g, sources, sink, p, ctx))
          << "seed " << seed << " shards " << shards;  // cold serial
      EXPECT_EQ(reference, failure_probability(g, sources, sink, p, ctx))
          << "seed " << seed << " shards " << shards;  // warm serial
      ctx.pool = &pool;
      EXPECT_EQ(reference, failure_probability(g, sources, sink, p, ctx))
          << "seed " << seed << " shards " << shards;  // warm parallel

      // Same key set -> same resident subproblems, however they stripe.
      EXPECT_EQ(sharded.stats().size, single.stats().size)
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(EvalCacheSharding, ConcurrentMixedWorkloadStaysConsistent) {
  // Many threads hammer one sharded cache with overlapping evaluations;
  // every value read back must equal the serial reference (first-writer-
  // wins stores identical bits). Exercised under TSan via the `parallel`
  // and `server` labels.
  std::vector<double> p;
  const Digraph g = random_dag(4242, 10, p);
  const std::vector<NodeId> sources{0, 1};
  const NodeId sink = g.num_nodes() - 1;
  const double reference = failure_probability(g, sources, sink, p);

  EvalCache cache(1u << 20, 8);
  ThreadPool pool(4);
  pool.parallel_for(0, 16, [&](std::size_t) {
    EvalContext ctx;
    ctx.cache = &cache;
    EXPECT_EQ(reference, failure_probability(g, sources, sink, p, ctx));
  });
  EXPECT_GT(cache.stats().hits, 0u);
}

// ---- determinism contract: factoring ----------------------------------------

TEST(EvalCacheDeterminism, CachedFactoringBitIdenticalToPlain) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    std::vector<double> p;
    const Digraph g = random_dag(seed * 7919, 9, p);
    const std::vector<NodeId> sources{0, 1};
    const NodeId sink = g.num_nodes() - 1;

    const double plain = failure_probability(g, sources, sink, p);

    EvalCache cache;
    EvalContext ctx;
    ctx.cache = &cache;
    const double cold = failure_probability(g, sources, sink, p, ctx);
    const double warm = failure_probability(g, sources, sink, p, ctx);

    EXPECT_EQ(plain, cold) << "seed " << seed;   // bit-identical, not NEAR
    EXPECT_EQ(plain, warm) << "seed " << seed;
    // The second evaluation must be answered from the cache.
    EXPECT_GT(cache.stats().hits, 0u);
  }
}

TEST(EvalCacheDeterminism, CacheSharedAcrossSimilarGraphs) {
  // Two graphs differing in one edge can share factoring subproblems (once
  // the recursion conditions the edge's endpoint Down, the canonical keys
  // coincide): the second evaluation must see hits even though the
  // top-level key differs. Sharing depends on pivot order, so this pins a
  // (seed, edge) pair verified to overlap on ~20 subproblems.
  std::vector<double> p;
  const Digraph g = random_dag(7, 10, p);
  Digraph g2 = g;
  g2.add_edge(0, 5);

  EvalCache cache;
  EvalContext ctx;
  ctx.cache = &cache;
  (void)failure_probability(g, {0, 1}, g.num_nodes() - 1, p, ctx);
  const auto before = cache.stats();
  const double accelerated =
      failure_probability(g2, {0, 1}, g.num_nodes() - 1, p, ctx);
  const auto after = cache.stats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(accelerated, failure_probability(g2, {0, 1}, g.num_nodes() - 1, p));
}

TEST(EvalCacheDeterminism, ParallelFactoringBitIdenticalToSerial) {
  ThreadPool pool(4);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<double> p;
    const Digraph g = random_dag(seed * 104729, 10, p);
    const std::vector<NodeId> sources{0, 1};
    const NodeId sink = g.num_nodes() - 1;

    const double serial = failure_probability(g, sources, sink, p);

    // Pool only.
    EvalContext pool_ctx;
    pool_ctx.pool = &pool;
    EXPECT_EQ(serial, failure_probability(g, sources, sink, p, pool_ctx))
        << "seed " << seed;

    // Pool + shared cache (the production configuration).
    EvalCache cache;
    EvalContext full_ctx;
    full_ctx.pool = &pool;
    full_ctx.cache = &cache;
    EXPECT_EQ(serial, failure_probability(g, sources, sink, p, full_ctx))
        << "seed " << seed;
    EXPECT_EQ(serial, failure_probability(g, sources, sink, p, full_ctx))
        << "seed " << seed;  // warm-cache parallel rerun
  }
}

TEST(EvalCacheDeterminism, WorstSinkEvaluationUsesContext) {
  std::vector<double> p;
  const Digraph g = random_dag(31337, 9, p);
  const graph::Partition part({0, 0, 1, 1, 1, 1, 1, 2, 2});
  const std::vector<NodeId> sinks{7, 8};

  const double plain = worst_failure_probability(g, part, sinks, p);
  EvalCache cache;
  ThreadPool pool(3);
  const double accelerated = worst_failure_probability(
      g, part, sinks, p, ExactMethod::kFactoring, {&cache, &pool});
  EXPECT_EQ(plain, accelerated);
  EXPECT_GT(cache.stats().misses, 0u);
}

// ---- determinism contract: sharded Monte Carlo ------------------------------

TEST(ShardedMonteCarlo, ThreadCountInvariant) {
  std::vector<double> p;
  const Digraph g = random_dag(2024, 9, p);
  MonteCarloOptions opt;
  opt.samples = 20000;
  opt.seed = 77;
  opt.num_shards = 16;

  const MonteCarloResult serial =
      monte_carlo_failure_sharded(g, {0, 1}, g.num_nodes() - 1, p, opt);
  EXPECT_GT(serial.estimate, 0.0);
  EXPECT_EQ(serial.samples, opt.samples);

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    opt.pool = &pool;
    const MonteCarloResult parallel =
        monte_carlo_failure_sharded(g, {0, 1}, g.num_nodes() - 1, p, opt);
    EXPECT_EQ(serial.estimate, parallel.estimate) << threads << " threads";
    EXPECT_EQ(serial.std_error, parallel.std_error) << threads << " threads";
  }
}

TEST(ShardedMonteCarlo, BiasedVariantThreadCountInvariant) {
  std::vector<double> p;
  const Digraph g = random_dag(99, 8, p);
  MonteCarloOptions opt;
  opt.samples = 10000;
  opt.num_shards = 8;
  opt.bias = 0.2;

  const MonteCarloResult serial =
      monte_carlo_failure_sharded(g, {0, 1}, g.num_nodes() - 1, p, opt);
  ThreadPool pool(4);
  opt.pool = &pool;
  const MonteCarloResult parallel =
      monte_carlo_failure_sharded(g, {0, 1}, g.num_nodes() - 1, p, opt);
  EXPECT_EQ(serial.estimate, parallel.estimate);
  EXPECT_EQ(serial.std_error, parallel.std_error);
}

TEST(ShardedMonteCarlo, MatchesExactWithinError) {
  std::vector<double> p;
  const Digraph g = random_dag(512, 9, p);
  const double exact = failure_probability(g, {0, 1}, g.num_nodes() - 1, p);

  MonteCarloOptions opt;
  opt.samples = 50000;
  ThreadPool pool(2);
  opt.pool = &pool;
  const MonteCarloResult mc =
      monte_carlo_failure_sharded(g, {0, 1}, g.num_nodes() - 1, p, opt);
  EXPECT_NEAR(mc.estimate, exact, 5.0 * mc.std_error + 1e-3);
}

TEST(ShardedMonteCarlo, MoreShardsThanSamples) {
  std::vector<double> p;
  const Digraph g = random_dag(7, 6, p);
  MonteCarloOptions opt;
  opt.samples = 5;
  opt.num_shards = 64;  // most shards draw nothing
  const MonteCarloResult mc =
      monte_carlo_failure_sharded(g, {0, 1}, g.num_nodes() - 1, p, opt);
  EXPECT_EQ(mc.samples, 5);
  EXPECT_GE(mc.estimate, 0.0);
  EXPECT_LE(mc.estimate, 1.0);
}

TEST(ShardedMonteCarlo, ValidatesOptions) {
  Digraph g(2);
  g.add_edge(0, 1);
  const std::vector<double> p{0.1, 0.1};
  MonteCarloOptions opt;
  opt.samples = 0;
  EXPECT_THROW((void)monte_carlo_failure_sharded(g, {0}, 1, p, opt),
               PreconditionError);
  opt.samples = 10;
  opt.num_shards = 0;
  EXPECT_THROW((void)monte_carlo_failure_sharded(g, {0}, 1, p, opt),
               PreconditionError);
  opt.num_shards = 4;
  opt.bias = 1.5;
  EXPECT_THROW((void)monte_carlo_failure_sharded(g, {0}, 1, p, opt),
               PreconditionError);
}

}  // namespace
}  // namespace archex::rel
