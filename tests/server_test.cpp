// Tests for the archex_server subsystem: SolveService request execution
// (cross-request cache and nogood reuse, deadline expiry, validation) and
// SolveServer wire behavior (loopback request/response, concurrent clients
// sharing the cache, admission rejection, graceful stop).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialize.hpp"
#include "server/solve_server.hpp"
#include "server/solve_service.hpp"
#include "support/socket.hpp"

namespace archex {
namespace {

core::SolveRequest eps_request(const std::string& id, int generators,
                               double target) {
  core::SolveRequest request;
  request.id = id;
  request.mode = core::SolveMode::kMr;
  request.eps_generators = generators;
  request.target_failure = target;
  return request;
}

/// One request/response exchange over an already-connected stream.
core::SolveResponse exchange(support::TcpStream& stream,
                             const core::SolveRequest& request) {
  stream.write_line(core::to_json(request));
  std::string line;
  EXPECT_TRUE(stream.read_line(line));
  return core::response_from_json(line);
}

// ---- SolveService (transport-free) -----------------------------------------

TEST(SolveServiceTest, MrSolveReturnsOptimalArchitecture) {
  server::SolveService service;
  const core::SolveResponse response =
      service.handle(eps_request("r-opt", 2, 1e-3));
  EXPECT_EQ(response.id, "r-opt");
  EXPECT_EQ(response.status, "optimal");
  EXPECT_GT(response.cost, 0.0);
  EXPECT_LE(response.failure, 1e-3);
  EXPECT_FALSE(response.selected_edges.empty());
  EXPECT_GT(response.solve_seconds, 0.0);
}

TEST(SolveServiceTest, CrossRequestCacheAndNogoodReuse) {
  server::SolveService service;
  const core::SolveResponse cold =
      service.handle(eps_request("r-cold", 1, 1e-4));
  EXPECT_EQ(cold.status, "unfeasible");

  const core::SolveResponse warm =
      service.handle(eps_request("r-warm", 1, 1e-4));
  EXPECT_EQ(warm.status, "unfeasible");

  // The shared EvalCache served the warm request from the cold one's
  // entries, and the per-family nogood store persisted across requests.
  EXPECT_GT(warm.cache_hits, cold.cache_hits);
  EXPECT_GT(warm.cache_hit_rate, 0.0);
  EXPECT_GT(warm.nogood_store_size, 0);
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_EQ(service.nogood_families(), 1u);
}

TEST(SolveServiceTest, DistinctTargetsAreDistinctProblemFamilies) {
  server::SolveService service;
  (void)service.handle(eps_request("r-a", 1, 1e-4));
  (void)service.handle(eps_request("r-b", 1, 1e-5));
  EXPECT_EQ(service.nogood_families(), 2u);
}

TEST(SolveServiceTest, UnknownMethodIsAnErrorResponse) {
  server::SolveService service;
  core::SolveRequest request = eps_request("r-method", 1, 1e-4);
  request.method = "quantum";
  const core::SolveResponse response = service.handle(request);
  EXPECT_EQ(response.status, "error");
  EXPECT_NE(response.error.find("$.method"), std::string::npos);
  EXPECT_NE(response.error.find("quantum"), std::string::npos);
}

TEST(SolveServiceTest, ExpiredDeadlineYieldsTimeLimit) {
  server::SolveService service;
  // An instance far too large for the budget: the solve must observe the
  // absolute deadline and report time_limit instead of running on.
  core::SolveRequest request = eps_request("r-deadline", 3, 1e-8);
  request.deadline_seconds = 0.05;
  const core::SolveResponse response = service.handle(request);
  EXPECT_EQ(response.status, "time_limit");
}

TEST(SolveServiceTest, LearningOffSolvesColdEveryTime) {
  server::SolveServiceOptions options;
  options.learning = false;
  server::SolveService service(options);
  (void)service.handle(eps_request("r-1", 1, 1e-4));
  const core::SolveResponse second =
      service.handle(eps_request("r-2", 1, 1e-4));
  EXPECT_EQ(second.status, "unfeasible");
  EXPECT_EQ(second.nogood_store_size, 0);
  EXPECT_EQ(service.nogood_families(), 0u);
}

// ---- SolveServer (wire protocol) -------------------------------------------

TEST(SolveServerTest, LoopbackRequestResponse) {
  server::SolveServer server;  // port 0: kernel-picked free port
  server.start();
  ASSERT_NE(server.port(), 0);

  support::TcpStream client =
      support::TcpStream::connect("127.0.0.1", server.port());
  const core::SolveResponse response =
      exchange(client, eps_request("r-wire", 1, 1e-4));
  EXPECT_EQ(response.id, "r-wire");
  EXPECT_EQ(response.status, "unfeasible");
  EXPECT_GE(response.queue_seconds, 0.0);

  server.stop();
  const server::SolveServer::Stats stats = server.stats();
  EXPECT_EQ(stats.connections, 1);
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.malformed, 0);
}

TEST(SolveServerTest, MalformedLineGetsErrorResponseAndConnectionSurvives) {
  server::SolveServer server;
  server.start();

  support::TcpStream client =
      support::TcpStream::connect("127.0.0.1", server.port());
  client.write_line("{this is not json");
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  const core::SolveResponse error = core::response_from_json(line);
  EXPECT_EQ(error.status, "error");
  EXPECT_NE(error.error.find("request"), std::string::npos);

  // The connection stays usable after a malformed request.
  const core::SolveResponse ok =
      exchange(client, eps_request("r-after", 1, 1e-4));
  EXPECT_EQ(ok.status, "unfeasible");

  server.stop();
  EXPECT_EQ(server.stats().malformed, 1);
}

TEST(SolveServerTest, ConcurrentClientsShareTheCache) {
  server::SolveServerOptions options;
  options.workers = 4;
  server::SolveServer server(options);
  server.start();

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 3;
  std::atomic<int> unfeasible{0};
  std::atomic<int> mismatched{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      support::TcpStream stream =
          support::TcpStream::connect("127.0.0.1", server.port());
      for (int r = 0; r < kRequestsEach; ++r) {
        const std::string id =
            "c" + std::to_string(c) + "-r" + std::to_string(r);
        const core::SolveResponse response =
            exchange(stream, eps_request(id, 1, 1e-4));
        if (response.id != id) mismatched.fetch_add(1);
        if (response.status == "unfeasible") unfeasible.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(mismatched.load(), 0);
  EXPECT_EQ(unfeasible.load(), kClients * kRequestsEach);
  // All clients hit one process-lifetime cache: after the first request the
  // template family's evaluations are warm.
  EXPECT_GT(server.service().cache().stats().hits, 0u);
  EXPECT_EQ(server.service().nogood_families(), 1u);

  server.stop();
  EXPECT_EQ(server.stats().requests, kClients * kRequestsEach);
}

TEST(SolveServerTest, MaxQueueZeroIsClampedAndStillAdmitsWhenIdle) {
  server::SolveServerOptions options;
  options.workers = 1;
  options.max_queue = 0;  // clamped to 1: an idle server must not shed
  server::SolveServer server(options);
  server.start();

  support::TcpStream client =
      support::TcpStream::connect("127.0.0.1", server.port());
  const core::SolveResponse response =
      exchange(client, eps_request("r-idle", 1, 1e-4));
  EXPECT_EQ(response.id, "r-idle");
  EXPECT_EQ(response.status, "unfeasible");

  server.stop();
  EXPECT_EQ(server.stats().shed, 0);
}

TEST(SolveServerTest, FinishedConnectionsAreReaped) {
  server::SolveServer server;
  server.start();
  {
    support::TcpStream first =
        support::TcpStream::connect("127.0.0.1", server.port());
    const core::SolveResponse response =
        exchange(first, eps_request("r-first", 1, 1e-4));
    EXPECT_EQ(response.status, "unfeasible");
  }  // closed: the serving thread sees EOF and marks itself finished

  // Each accept reaps connections already finished, so the tracked set
  // converges to the live set instead of growing per connection forever.
  bool reaped = false;
  for (int attempt = 0; attempt < 50 && !reaped; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    support::TcpStream probe =
        support::TcpStream::connect("127.0.0.1", server.port());
    const core::SolveResponse response =
        exchange(probe, eps_request("r-probe", 1, 1e-4));
    EXPECT_EQ(response.status, "unfeasible");
    reaped = server.live_connections() <= 1;  // just the open probe
  }
  EXPECT_TRUE(reaped);
  server.stop();
}

TEST(SolveServerTest, OverloadShedsButAdmittedRequestsComplete) {
  server::SolveServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  server::SolveServer server(options);
  server.start();

  // Occupy the single worker with a request whose deadline bounds it to
  // about one second of wall clock regardless of build flavor.
  core::SolveRequest slow = eps_request("r-slow", 3, 1e-8);
  slow.deadline_seconds = 1.0;
  support::TcpStream slow_client =
      support::TcpStream::connect("127.0.0.1", server.port());
  slow_client.write_line(core::to_json(slow));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Second request takes the single queue slot...
  support::TcpStream queued_client =
      support::TcpStream::connect("127.0.0.1", server.port());
  queued_client.write_line(core::to_json(eps_request("r-queued", 1, 1e-4)));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // ...so a third is shed immediately, before the others finish.
  support::TcpStream shed_client =
      support::TcpStream::connect("127.0.0.1", server.port());
  const core::SolveResponse shed =
      exchange(shed_client, eps_request("r-shed", 1, 1e-4));
  EXPECT_EQ(shed.status, "rejected");

  std::string line;
  ASSERT_TRUE(slow_client.read_line(line));
  EXPECT_EQ(core::response_from_json(line).status, "time_limit");
  ASSERT_TRUE(queued_client.read_line(line));
  const core::SolveResponse queued = core::response_from_json(line);
  EXPECT_EQ(queued.status, "unfeasible");
  EXPECT_GT(queued.queue_seconds, 0.0);

  server.stop();
  EXPECT_EQ(server.stats().shed, 1);
}

TEST(SolveServerTest, StopUnblocksIdleConnections) {
  server::SolveServer server;
  server.start();
  support::TcpStream client =
      support::TcpStream::connect("127.0.0.1", server.port());
  // Prove the connection is live before stopping.
  const core::SolveResponse response =
      exchange(client, eps_request("r-live", 1, 1e-4));
  EXPECT_EQ(response.status, "unfeasible");

  std::thread stopper([&server] { server.stop(); });
  // The server shut down its read side; the client sees EOF, not a hang.
  std::string line;
  EXPECT_FALSE(client.read_line(line));
  stopper.join();
}

TEST(SolveServerTest, StopIsIdempotentAndRestartable) {
  server::SolveServer server;
  server.start();
  const std::uint16_t first_port = server.port();
  ASSERT_NE(first_port, 0);
  server.stop();
  server.stop();  // idempotent

  server.start();  // a stopped server can be started again
  support::TcpStream client =
      support::TcpStream::connect("127.0.0.1", server.port());
  const core::SolveResponse response =
      exchange(client, eps_request("r-again", 1, 1e-4));
  EXPECT_EQ(response.status, "unfeasible");
  server.stop();
}

}  // namespace
}  // namespace archex
