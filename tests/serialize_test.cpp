// Tests for template/configuration JSON serialization (core/serialize.hpp):
// round-trips preserve all attributes and analysis results; malformed or
// mismatched documents are rejected.
#include <gtest/gtest.h>

#include "core/serialize.hpp"
#include "eps/eps_template.hpp"
#include "support/json.hpp"

namespace archex::core {
namespace {

TEST(SerializeTemplate, RoundTripPreservesEverything) {
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const Template& original = eps.tmpl;

  const std::string text = to_json(original);
  const Template restored = template_from_json(text);

  ASSERT_EQ(restored.num_components(), original.num_components());
  ASSERT_EQ(restored.num_candidate_edges(), original.num_candidate_edges());
  for (graph::NodeId v = 0; v < original.num_components(); ++v) {
    const Component& a = original.component(v);
    const Component& b = restored.component(v);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
    EXPECT_DOUBLE_EQ(a.failure_prob, b.failure_prob);
    EXPECT_DOUBLE_EQ(a.power_supply, b.power_supply);
    EXPECT_DOUBLE_EQ(a.power_demand, b.power_demand);
  }
  for (int k = 0; k < original.num_candidate_edges(); ++k) {
    const CandidateEdge& a = original.candidate_edge(k);
    const CandidateEdge& b = restored.candidate_edge(k);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_DOUBLE_EQ(a.switch_cost, b.switch_cost);
  }
}

TEST(SerializeTemplate, RejectsWrongFormatOrVersion) {
  EXPECT_THROW((void)template_from_json(R"({"format": "nope", "version": 1,
      "components": [], "candidate_edges": []})"),
               PreconditionError);
  EXPECT_THROW((void)template_from_json(R"({"format": "archex-template",
      "version": 99, "components": [], "candidate_edges": []})"),
               PreconditionError);
  EXPECT_THROW((void)template_from_json("not json"), json::JsonError);
}

TEST(SerializeTemplate, RejectsSemanticallyInvalidDocuments) {
  // Edge referencing a missing component.
  const std::string bad = R"({
    "format": "archex-template", "version": 1,
    "components": [{"name": "a", "type": 0, "cost": 1,
                    "failure_prob": 0.0}],
    "candidate_edges": [{"from": 0, "to": 7, "switch_cost": 1}]
  })";
  EXPECT_THROW((void)template_from_json(bad), PreconditionError);
}

TEST(SerializeConfiguration, RoundTripPreservesSelectionAndMetrics) {
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);

  std::vector<bool> selected(
      static_cast<std::size_t>(eps.tmpl.num_candidate_edges()), false);
  for (int k = 0; k < eps.tmpl.num_candidate_edges(); k += 2) {
    selected[static_cast<std::size_t>(k)] = true;
  }
  const Configuration original(eps.tmpl, selected);

  const std::string text = to_json(original);
  const Configuration restored = configuration_from_json(eps.tmpl, text);

  EXPECT_EQ(restored.selection(), original.selection());
  EXPECT_DOUBLE_EQ(restored.total_cost(), original.total_cost());
  EXPECT_DOUBLE_EQ(restored.worst_failure_probability(),
                   original.worst_failure_probability());
}

TEST(SerializeConfiguration, RejectsTemplateMismatch) {
  eps::EpsSpec small;
  small.num_generators = 1;
  const eps::EpsTemplate eps_small = eps::make_eps_template(small);
  eps::EpsSpec big;
  big.num_generators = 2;
  const eps::EpsTemplate eps_big = eps::make_eps_template(big);

  std::vector<bool> selected(
      static_cast<std::size_t>(eps_small.tmpl.num_candidate_edges()), true);
  const std::string text =
      to_json(Configuration(eps_small.tmpl, selected));
  EXPECT_THROW((void)configuration_from_json(eps_big.tmpl, text),
               PreconditionError);
}

TEST(SerializeConfiguration, RejectsOutOfRangeEdges) {
  eps::EpsSpec spec;
  spec.num_generators = 1;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const std::string bad = R"({
    "format": "archex-configuration", "version": 1,
    "template_components": )" +
                          std::to_string(eps.tmpl.num_components()) +
                          R"(, "template_candidate_edges": )" +
                          std::to_string(eps.tmpl.num_candidate_edges()) +
                          R"(, "selected_edges": [9999]})";
  EXPECT_THROW((void)configuration_from_json(eps.tmpl, bad),
               PreconditionError);
}

}  // namespace
}  // namespace archex::core
