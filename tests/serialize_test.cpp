// Tests for template/configuration JSON serialization (core/serialize.hpp):
// round-trips preserve all attributes and analysis results; malformed or
// mismatched documents are rejected.
#include <gtest/gtest.h>

#include "core/serialize.hpp"
#include "eps/eps_template.hpp"
#include "support/json.hpp"

namespace archex::core {
namespace {

TEST(SerializeTemplate, RoundTripPreservesEverything) {
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const Template& original = eps.tmpl;

  const std::string text = to_json(original);
  const Template restored = template_from_json(text);

  ASSERT_EQ(restored.num_components(), original.num_components());
  ASSERT_EQ(restored.num_candidate_edges(), original.num_candidate_edges());
  for (graph::NodeId v = 0; v < original.num_components(); ++v) {
    const Component& a = original.component(v);
    const Component& b = restored.component(v);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
    EXPECT_DOUBLE_EQ(a.failure_prob, b.failure_prob);
    EXPECT_DOUBLE_EQ(a.power_supply, b.power_supply);
    EXPECT_DOUBLE_EQ(a.power_demand, b.power_demand);
  }
  for (int k = 0; k < original.num_candidate_edges(); ++k) {
    const CandidateEdge& a = original.candidate_edge(k);
    const CandidateEdge& b = restored.candidate_edge(k);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_DOUBLE_EQ(a.switch_cost, b.switch_cost);
  }
}

TEST(SerializeTemplate, RejectsWrongFormatOrVersion) {
  EXPECT_THROW((void)template_from_json(R"({"format": "nope", "version": 1,
      "components": [], "candidate_edges": []})"),
               SpecError);
  EXPECT_THROW((void)template_from_json(R"({"format": "archex-template",
      "version": 99, "components": [], "candidate_edges": []})"),
               SpecError);
  EXPECT_THROW((void)template_from_json("not json"), SpecError);
}

TEST(SerializeTemplate, RejectsSemanticallyInvalidDocuments) {
  // Edge referencing a missing component.
  const std::string bad = R"({
    "format": "archex-template", "version": 1,
    "components": [{"name": "a", "type": 0, "cost": 1,
                    "failure_prob": 0.0}],
    "candidate_edges": [{"from": 0, "to": 7, "switch_cost": 1}]
  })";
  EXPECT_THROW((void)template_from_json(bad), SpecError);
}

TEST(SerializeTemplate, SpecErrorsCarrySourceAndJsonPath) {
  // A parse failure points at the document root with the parser's
  // line/column rendering embedded in the reason.
  try {
    (void)template_from_json("{ broken", "specs/eps.json");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.source(), "specs/eps.json");
    EXPECT_EQ(e.json_path(), "$");
    EXPECT_NE(e.reason().find("line 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("specs/eps.json: $: "),
              std::string::npos);
  }

  // A validation failure points at the offending member.
  const std::string bad_cost = R"({
    "format": "archex-template", "version": 1,
    "components": [{"name": "a", "type": 0, "cost": 1, "failure_prob": 0.0},
                   {"name": "b", "type": 1, "cost": "cheap",
                    "failure_prob": 0.0}],
    "candidate_edges": []
  })";
  try {
    (void)template_from_json(bad_cost, "lib.json");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.source(), "lib.json");
    EXPECT_EQ(e.json_path(), "$.components[1].cost");
    EXPECT_EQ(e.reason(), "expected a number");
  }

  // A missing member names the member and its parent path.
  const std::string missing = R"({
    "format": "archex-template", "version": 1,
    "components": [{"name": "a", "type": 0, "cost": 1}],
    "candidate_edges": []
  })";
  try {
    (void)template_from_json(missing);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.source(), "<template>");
    EXPECT_EQ(e.json_path(), "$.components[0]");
    EXPECT_NE(e.reason().find("failure_prob"), std::string::npos);
  }
}

TEST(SerializeTemplate, SignatureIsStructuralAndOrderSensitive) {
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const Template a = eps::make_eps_template(spec).tmpl;
  const Template b = eps::make_eps_template(spec).tmpl;
  // Same structure => same signature; the JSON round-trip preserves it.
  EXPECT_EQ(template_signature(a), template_signature(b));
  EXPECT_EQ(template_signature(template_from_json(to_json(a))),
            template_signature(a));

  // Any attribute perturbation changes the signature.
  spec.num_generators = 3;
  const Template bigger = eps::make_eps_template(spec).tmpl;
  EXPECT_NE(template_signature(a), template_signature(bigger));

  // Re-parse with one component cost bumped via the JSON text.
  std::string text = to_json(a);
  const auto pos = text.find("\"cost\": ");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + 8, "1");  // prepend a digit: different cost
  EXPECT_NE(template_signature(template_from_json(text)),
            template_signature(a));
}

TEST(SerializeConfiguration, RoundTripPreservesSelectionAndMetrics) {
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);

  std::vector<bool> selected(
      static_cast<std::size_t>(eps.tmpl.num_candidate_edges()), false);
  for (int k = 0; k < eps.tmpl.num_candidate_edges(); k += 2) {
    selected[static_cast<std::size_t>(k)] = true;
  }
  const Configuration original(eps.tmpl, selected);

  const std::string text = to_json(original);
  const Configuration restored = configuration_from_json(eps.tmpl, text);

  EXPECT_EQ(restored.selection(), original.selection());
  EXPECT_DOUBLE_EQ(restored.total_cost(), original.total_cost());
  EXPECT_DOUBLE_EQ(restored.worst_failure_probability(),
                   original.worst_failure_probability());
}

TEST(SerializeConfiguration, RejectsTemplateMismatch) {
  eps::EpsSpec small;
  small.num_generators = 1;
  const eps::EpsTemplate eps_small = eps::make_eps_template(small);
  eps::EpsSpec big;
  big.num_generators = 2;
  const eps::EpsTemplate eps_big = eps::make_eps_template(big);

  std::vector<bool> selected(
      static_cast<std::size_t>(eps_small.tmpl.num_candidate_edges()), true);
  const std::string text =
      to_json(Configuration(eps_small.tmpl, selected));
  EXPECT_THROW((void)configuration_from_json(eps_big.tmpl, text), SpecError);
}

TEST(SerializeConfiguration, RejectsOutOfRangeEdges) {
  eps::EpsSpec spec;
  spec.num_generators = 1;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const std::string bad = R"({
    "format": "archex-configuration", "version": 1,
    "template_components": )" +
                          std::to_string(eps.tmpl.num_components()) +
                          R"(, "template_candidate_edges": )" +
                          std::to_string(eps.tmpl.num_candidate_edges()) +
                          R"(, "selected_edges": [9999]})";
  EXPECT_THROW((void)configuration_from_json(eps.tmpl, bad), SpecError);
}

TEST(SerializeEnvelope, RequestRoundTripPreservesAllFields) {
  eps::EpsSpec spec;
  spec.num_generators = 2;

  SolveRequest request;
  request.id = "r-42";
  request.mode = SolveMode::kMr;
  request.deadline_seconds = 7.5;
  request.threads = 3;
  request.target_failure = 2e-5;
  request.lazy = true;
  request.method = "factoring";
  request.tmpl = eps::make_eps_template(spec).tmpl;

  const std::string line = to_json(request);
  // Wire protocol: one document per line, so the encoding is newline-free.
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const SolveRequest restored = request_from_json(line);
  EXPECT_EQ(restored.id, "r-42");
  EXPECT_EQ(restored.mode, SolveMode::kMr);
  EXPECT_DOUBLE_EQ(restored.deadline_seconds, 7.5);
  EXPECT_EQ(restored.threads, 3);
  EXPECT_DOUBLE_EQ(restored.target_failure, 2e-5);
  EXPECT_TRUE(restored.lazy);
  EXPECT_EQ(restored.method, "factoring");
  ASSERT_TRUE(restored.tmpl.has_value());
  EXPECT_FALSE(restored.eps_generators.has_value());
  EXPECT_EQ(template_signature(*restored.tmpl),
            template_signature(*request.tmpl));
}

TEST(SerializeEnvelope, ParetoRequestCarriesSweepKnobs) {
  SolveRequest request;
  request.id = "p-1";
  request.mode = SolveMode::kPareto;
  request.eps_generators = 2;
  request.initial_target = 5e-2;
  request.tighten_factor = 0.25;
  request.max_points = 4;

  const SolveRequest restored = request_from_json(to_json(request));
  EXPECT_EQ(restored.mode, SolveMode::kPareto);
  ASSERT_TRUE(restored.eps_generators.has_value());
  EXPECT_EQ(*restored.eps_generators, 2);
  EXPECT_DOUBLE_EQ(restored.initial_target, 5e-2);
  EXPECT_DOUBLE_EQ(restored.tighten_factor, 0.25);
  EXPECT_EQ(restored.max_points, 4);
}

TEST(SerializeEnvelope, RequestToleratesUnknownFields) {
  // Forward compatibility: newer clients may decorate requests.
  const std::string line = R"({"format": "archex-request", "version": 1,
      "id": "r-1", "mode": "mr", "eps_generators": 1,
      "x_client": "archex-py/2.0", "x_trace": {"span": 7}})";
  const SolveRequest restored = request_from_json(line);
  EXPECT_EQ(restored.id, "r-1");
  ASSERT_TRUE(restored.eps_generators.has_value());
  EXPECT_EQ(*restored.eps_generators, 1);
  // Optional knobs fall back to their defaults.
  EXPECT_DOUBLE_EQ(restored.deadline_seconds, 0.0);
  EXPECT_EQ(restored.threads, 0);
  EXPECT_FALSE(restored.lazy);
}

TEST(SerializeEnvelope, RequestValidationRejectsBadEnvelopes) {
  const auto request_line = [](const std::string& extra) {
    return R"({"format": "archex-request", "version": 1)" + extra + "}";
  };
  // Missing id / bad mode / no instance / both instances.
  EXPECT_THROW((void)request_from_json(
                   request_line(R"(, "mode": "mr", "eps_generators": 1)")),
               SpecError);
  EXPECT_THROW(
      (void)request_from_json(request_line(
          R"(, "id": "r", "mode": "warp", "eps_generators": 1)")),
      SpecError);
  EXPECT_THROW(
      (void)request_from_json(request_line(R"(, "id": "r", "mode": "mr")")),
      SpecError);
  try {
    (void)request_from_json(
        request_line(R"(, "id": "r", "mode": "mr", "eps_generators": 0)"),
        "conn-3");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.source(), "conn-3");
    EXPECT_EQ(e.json_path(), "$.eps_generators");
  }
  EXPECT_THROW((void)request_from_json(request_line(
                   R"(, "id": "r", "mode": "mr", "eps_generators": 1,
                      "target_failure": 2.0)")),
               SpecError);
  EXPECT_THROW((void)request_from_json(request_line(
                   R"(, "id": "r", "mode": "mr", "eps_generators": 1,
                      "threads": -2)")),
               SpecError);
  EXPECT_THROW((void)request_from_json("{\"format\": \"archex-response\","
                                       "\"version\": 1}"),
               SpecError);
}

TEST(SerializeEnvelope, ResponseRoundTripPreservesEverything) {
  SolveResponse response;
  response.id = "r-42";
  response.status = "optimal";
  response.cost = 123.5;
  response.failure = 3e-7;
  response.selected_edges = {0, 2, 5};
  response.iterations = 4;
  response.solver_nodes = 991;
  response.solve_seconds = 0.125;
  response.queue_seconds = 0.5;
  response.cache_hits = 10;
  response.cache_misses = 4;
  response.cache_hit_rate = 10.0 / 14.0;
  response.nogood_store_size = 6;
  response.nogood_prunings = 17;
  SolveResponse::Point point;
  point.target = 1e-2;
  point.cost = 100.0;
  point.approx_failure = 9e-3;
  point.exact_failure = 8.5e-3;
  point.selected_edges = {1, 3};
  response.points.push_back(point);

  const std::string line = to_json(response);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const SolveResponse restored = response_from_json(line);
  EXPECT_EQ(restored.id, "r-42");
  EXPECT_EQ(restored.status, "optimal");
  EXPECT_TRUE(restored.error.empty());
  EXPECT_DOUBLE_EQ(restored.cost, 123.5);
  EXPECT_DOUBLE_EQ(restored.failure, 3e-7);
  EXPECT_EQ(restored.selected_edges, (std::vector<int>{0, 2, 5}));
  EXPECT_EQ(restored.iterations, 4);
  EXPECT_EQ(restored.solver_nodes, 991);
  EXPECT_DOUBLE_EQ(restored.solve_seconds, 0.125);
  EXPECT_DOUBLE_EQ(restored.queue_seconds, 0.5);
  EXPECT_EQ(restored.cache_hits, 10u);
  EXPECT_EQ(restored.cache_misses, 4u);
  EXPECT_DOUBLE_EQ(restored.cache_hit_rate, 10.0 / 14.0);
  EXPECT_EQ(restored.nogood_store_size, 6);
  EXPECT_EQ(restored.nogood_prunings, 17);
  ASSERT_EQ(restored.points.size(), 1u);
  EXPECT_DOUBLE_EQ(restored.points[0].target, 1e-2);
  EXPECT_DOUBLE_EQ(restored.points[0].exact_failure, 8.5e-3);
  EXPECT_EQ(restored.points[0].selected_edges, (std::vector<int>{1, 3}));
}

TEST(SerializeEnvelope, ResponseCountersSurvivePast32Bits) {
  // The server serializes effort counters as long long; a long-lived server
  // can legitimately exceed 2^31 nodes, so parsing must not narrow via int.
  SolveResponse response;
  response.id = "r-big";
  response.status = "optimal";
  response.solver_nodes = 3'000'000'000L;
  response.nogood_store_size = 5'000'000'000L;
  response.nogood_prunings = 6'000'000'000L;
  const SolveResponse restored = response_from_json(to_json(response));
  EXPECT_EQ(restored.solver_nodes, 3'000'000'000L);
  EXPECT_EQ(restored.nogood_store_size, 5'000'000'000L);
  EXPECT_EQ(restored.nogood_prunings, 6'000'000'000L);
}

TEST(SerializeEnvelope, ErrorResponseCarriesDiagnostic) {
  SolveResponse response;
  response.id = "r-9";
  response.status = "rejected";
  response.error = "queue full (8 requests queued)";
  const SolveResponse restored = response_from_json(to_json(response));
  EXPECT_EQ(restored.status, "rejected");
  EXPECT_EQ(restored.error, "queue full (8 requests queued)");
}

}  // namespace
}  // namespace archex::core
