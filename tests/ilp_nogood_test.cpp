// Tests for the conflict-learning layer (DESIGN.md §4g): the nogood store's
// dedup/eviction/purge mechanics, Farkas certificates extracted from the
// simplex engine on hand-built and randomized infeasible LPs, and the
// end-to-end validity of every nogood the branch & bound learns on seeded
// random 0/1 programs (a learned assignment must really be dead: fixing its
// literals leaves no solution better than the proven optimum).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/nogood.hpp"
#include "ilp/solver.hpp"
#include "lp/engine.hpp"
#include "support/rng.hpp"

namespace archex::ilp {
namespace {

// ---- store mechanics -----------------------------------------------------------

Nogood make_nogood(std::vector<int> ones, std::vector<int> zeros,
                   NogoodSource source = NogoodSource::kInfeasible) {
  Nogood n;
  n.ones = std::move(ones);
  n.zeros = std::move(zeros);
  n.source = source;
  return n;
}

TEST(NogoodStore, SignatureIsOrderIndependentAndSideSensitive) {
  const Nogood a = make_nogood({3, 1, 7}, {2, 5});
  const Nogood b = make_nogood({7, 3, 1}, {5, 2});
  EXPECT_EQ(nogood_signature(a), nogood_signature(b));

  // Moving a literal across the ones/zeros divide is a different nogood.
  const Nogood c = make_nogood({3, 1}, {7, 2, 5});
  EXPECT_NE(nogood_signature(a), nogood_signature(c));
  // ... and so is swapping the sides wholesale.
  const Nogood d = make_nogood({2, 5}, {3, 1, 7});
  EXPECT_NE(nogood_signature(a), nogood_signature(d));
}

TEST(NogoodStore, InsertDeduplicatesByAssignment) {
  NogoodStore store;
  EXPECT_GE(store.insert(make_nogood({0, 2}, {1})), 0);
  // Same assignment, permuted literals, different source: still a duplicate.
  EXPECT_EQ(store.insert(make_nogood({2, 0}, {1}, NogoodSource::kDominance)),
            -1);
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.stats().inserted, 1);
  EXPECT_EQ(store.stats().deduped, 1);
}

TEST(NogoodStore, PurgeDropsOnlyDominanceEntries) {
  NogoodStore store;
  ASSERT_GE(store.insert(make_nogood({0}, {}, NogoodSource::kInfeasible)), 0);
  ASSERT_GE(store.insert(make_nogood({1}, {}, NogoodSource::kDominance)), 0);
  ASSERT_GE(store.insert(make_nogood({2}, {}, NogoodSource::kOracle)), 0);
  store.purge_transient();
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.stats().purged, 1);

  std::vector<std::pair<int, Nogood>> live;
  store.snapshot(live);
  ASSERT_EQ(live.size(), 2u);
  for (const auto& [index, nogood] : live) {
    EXPECT_NE(nogood.source, NogoodSource::kDominance) << "index " << index;
  }
}

TEST(NogoodStore, PurgeNonOracleKeepsOnlyOracleEntries) {
  NogoodStore store;
  ASSERT_GE(store.insert(make_nogood({0}, {}, NogoodSource::kInfeasible)), 0);
  ASSERT_GE(store.insert(make_nogood({1}, {}, NogoodSource::kDominance)), 0);
  ASSERT_GE(store.insert(make_nogood({2}, {}, NogoodSource::kOracle)), 0);
  store.purge_non_oracle();
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.stats().purged, 2);

  std::vector<std::pair<int, Nogood>> live;
  store.snapshot(live);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].second.source, NogoodSource::kOracle);

  // A purged signature may be re-learned.
  EXPECT_GE(store.insert(make_nogood({0}, {}, NogoodSource::kInfeasible)), 0);
  EXPECT_EQ(store.size(), 2);
}

TEST(NogoodStoreRegistry, AcquireSharesStoresPerKeyAndPurgesNonOracle) {
  NogoodStoreRegistry registry;
  const auto a = registry.acquire(7);
  ASSERT_GE(a->insert(make_nogood({0}, {}, NogoodSource::kOracle)), 0);
  ASSERT_GE(a->insert(make_nogood({1}, {}, NogoodSource::kInfeasible)), 0);

  // Same key: same store, but only oracle entries survive the re-acquire.
  const auto b = registry.acquire(7);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(b->size(), 1);

  // Different key: fresh store.
  const auto c = registry.acquire(8);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->size(), 0);
  EXPECT_EQ(registry.families(), 2u);
}

TEST(NogoodStore, DuplicateFromPermanentSourceUpgradesDominanceEntry) {
  // An assignment first learned against the incumbent (transient) and later
  // proven infeasible outright must survive the next purge.
  NogoodStore store;
  ASSERT_GE(store.insert(make_nogood({0, 1}, {}, NogoodSource::kDominance)),
            0);
  EXPECT_EQ(store.insert(make_nogood({0, 1}, {}, NogoodSource::kInfeasible)),
            -1);
  store.purge_transient();
  EXPECT_EQ(store.size(), 1);
}

TEST(NogoodStore, EvictionKeepsActiveEntriesAndOracles) {
  NogoodStoreOptions opt;
  opt.max_nogoods = 8;
  NogoodStore store(opt);

  const int oracle =
      store.insert(make_nogood({100}, {101}, NogoodSource::kOracle));
  ASSERT_GE(oracle, 0);
  std::vector<int> indices;
  for (int j = 0; j < 7; ++j) {
    indices.push_back(store.insert(make_nogood({j}, {})));
    ASSERT_GE(indices.back(), 0);
  }
  // Entries 0 and 1 are hot; the rest never fire.
  for (int hit = 0; hit < 5; ++hit) {
    store.bump(indices[0]);
    store.bump(indices[1]);
  }

  // Overflow the cap: the sweep must shed low-activity entries down to 3/4
  // of the cap while keeping the hot ones and the oracle entry.
  ASSERT_GE(store.insert(make_nogood({7}, {})), 0);
  EXPECT_LE(store.size(), 8);
  EXPECT_GT(store.stats().evicted, 0);

  std::vector<std::pair<int, Nogood>> live;
  store.snapshot(live);
  bool oracle_alive = false, hot0_alive = false, hot1_alive = false;
  for (const auto& [index, nogood] : live) {
    if (index == oracle) oracle_alive = true;
    if (index == indices[0]) hot0_alive = true;
    if (index == indices[1]) hot1_alive = true;
  }
  EXPECT_TRUE(oracle_alive);
  EXPECT_TRUE(hot0_alive);
  EXPECT_TRUE(hot1_alive);

  // Dead indices are recyclable: bumping one is a no-op, and the same
  // assignment may be learned again.
  std::vector<bool> alive(32, false);
  for (const auto& [index, nogood] : live) {
    alive[static_cast<std::size_t>(index)] = true;
  }
  for (int j = 0; j < 7; ++j) {
    if (!alive[static_cast<std::size_t>(indices[j])]) {
      store.bump(indices[j]);  // stale hit against an evicted entry
      EXPECT_GE(store.insert(make_nogood({j}, {})), 0) << "relearn " << j;
      break;
    }
  }
}

TEST(NogoodStore, MatchRequiresBoxImpliedLiterals) {
  const Nogood n = make_nogood({0}, {2});
  // Box fixes x0 = 1 and x2 = 0: every point in it hits the nogood.
  EXPECT_TRUE(nogood_matches(n, {1.0, 0.0, 0.0}, {1.0, 1.0, 0.0}));
  // x2 free: points with x2 = 1 escape, so the node must not be pruned.
  EXPECT_FALSE(nogood_matches(n, {1.0, 0.0, 0.0}, {1.0, 1.0, 1.0}));
  // x0 free likewise.
  EXPECT_FALSE(nogood_matches(n, {0.0, 0.0, 0.0}, {1.0, 1.0, 0.0}));
  // The empty nogood (root conflict) matches any box.
  EXPECT_TRUE(nogood_matches(Nogood{}, {0.0}, {1.0}));
}

// ---- Farkas certificates -------------------------------------------------------

/// Certificate validity: z must price every column, and leaning each weight
/// against its bound must show the box holds no row-feasible point
/// (sup { z'x : box } = -margin < 0). `box_support` is the reference
/// evaluation of that supremum. The box is the engine's *current* structural
/// bounds (col_lo/col_up track tightenings) plus the logical columns' row
/// ranges from the problem, which branching never moves.
void expect_valid_certificate(const lp::Problem& p,
                              lp::SimplexEngine& engine) {
  std::vector<double> z;
  double margin = 0.0;
  ASSERT_TRUE(engine.farkas_ray(z, margin));
  ASSERT_EQ(z.size(), static_cast<std::size_t>(engine.num_structural() +
                                               engine.num_rows()));
  EXPECT_GT(margin, 0.0);

  std::vector<double> lo, up;
  for (int j = 0; j < engine.num_structural(); ++j) {
    lo.push_back(engine.col_lo(j));
    up.push_back(engine.col_up(j));
  }
  for (int i = 0; i < engine.num_rows(); ++i) {
    lo.push_back(p.row_lo(i));
    up.push_back(p.row_up(i));
  }
  EXPECT_NEAR(lp::box_support(z, lo, up), -margin, 1e-7);
}

TEST(FarkasRay, CertifiesHandBuiltInfeasibleBoxes) {
  // x + y >= 2 with both variables boxed into [0, 0.4].
  lp::Problem p;
  const int x = p.add_variable(0.0, 0.4, 1.0);
  const int y = p.add_variable(0.0, 0.4, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, 2.0, lp::kInf);
  lp::SimplexEngine engine(p, lp::SimplexOptions{});
  ASSERT_EQ(engine.solve_from_scratch().status, lp::SolveStatus::kInfeasible);
  expect_valid_certificate(p, engine);
}

TEST(FarkasRay, CertifiesInfeasibilityAfterBoundTightening) {
  // Feasible at first; branching-style bound fixes then cut off every
  // completion, which is exactly the B&B learning scenario.
  lp::Problem p;
  const int x = p.add_variable(0.0, 1.0, 3.0);
  const int y = p.add_variable(0.0, 1.0, 2.0);
  const int w = p.add_variable(0.0, 1.0, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}, {w, 1.0}}, 2.0, lp::kInf);
  lp::SimplexEngine engine(p, lp::SimplexOptions{});
  ASSERT_EQ(engine.solve_from_scratch().status, lp::SolveStatus::kOptimal);

  engine.set_variable_bounds(x, 0.0, 0.0);
  engine.set_variable_bounds(y, 0.0, 0.0);
  ASSERT_EQ(engine.reoptimize().status, lp::SolveStatus::kInfeasible);
  expect_valid_certificate(p, engine);

  // Relaxing the bounds again discards the stale certificate.
  engine.set_variable_bounds(x, 0.0, 1.0);
  ASSERT_EQ(engine.reoptimize().status, lp::SolveStatus::kOptimal);
  std::vector<double> z;
  double margin = 0.0;
  EXPECT_FALSE(engine.farkas_ray(z, margin));
}

TEST(FarkasRay, CertifiesRandomizedInfeasibleInstances) {
  // Random inequality systems over 0/1 boxes, with variables successively
  // fixed until the LP turns infeasible; every reported certificate must
  // check out against box_support.
  Rng rng(0xfa54a5ce7ULL);
  int certified = 0;
  for (int trial = 0; trial < 60; ++trial) {
    lp::Problem p;
    const int n = 3 + static_cast<int>(rng.next_below(5));
    for (int j = 0; j < n; ++j) {
      p.add_variable(0.0, 1.0, 1.0 + rng.next_double());
    }
    const int rows = 2 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < rows; ++i) {
      std::vector<lp::Term> terms;
      double sum = 0.0;
      for (int j = 0; j < n; ++j) {
        if (!rng.next_bernoulli(0.6)) continue;
        const double c = 1.0 + static_cast<double>(rng.next_below(4));
        terms.push_back({j, c});
        sum += c;
      }
      if (terms.empty()) terms.push_back({0, 1.0});
      p.add_constraint(terms, 0.4 * sum, lp::kInf);
    }

    lp::SimplexEngine engine(p, lp::SimplexOptions{});
    lp::Solution s = engine.solve_from_scratch();
    for (int j = 0; j < n && s.status == lp::SolveStatus::kOptimal; ++j) {
      engine.set_variable_bounds(j, 0.0, 0.0);
      s = engine.reoptimize();
    }
    if (s.status != lp::SolveStatus::kInfeasible) continue;

    std::vector<double> z;
    double margin = 0.0;
    if (!engine.farkas_ray(z, margin)) continue;  // "no certificate" is legal
    expect_valid_certificate(p, engine);
    ++certified;
  }
  // The generator must actually exercise the certificate path.
  EXPECT_GE(certified, 20);
}

// ---- end-to-end: everything the solver learns is really dead --------------------

/// Compact random 0/1 programs in the synthesis shape (integer objective,
/// mixed <= / >= / == rows anchored at a reference point).
Model make_model(Rng& rng) {
  Model m;
  const int n = 7 + static_cast<int>(rng.next_below(8));
  std::vector<Var> xs;
  for (int j = 0; j < n; ++j) {
    xs.push_back(m.add_binary("x" + std::to_string(j)));
  }
  std::vector<double> z(static_cast<std::size_t>(n));
  for (auto& v : z) v = rng.next_bernoulli(0.5) ? 1.0 : 0.0;

  const int rows = 4 + static_cast<int>(rng.next_below(7));
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    double at_z = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!rng.next_bernoulli(0.5)) continue;
      double c = 1.0 + static_cast<double>(rng.next_below(5));
      if (rng.next_bernoulli(0.35)) c = -c;
      e.add_term(xs[static_cast<std::size_t>(j)], c);
      at_z += c * z[static_cast<std::size_t>(j)];
    }
    if (e.empty()) e.add_term(xs[0], 1.0);
    switch (rng.next_below(3)) {
      case 0: m.add_row(e <= at_z + static_cast<double>(rng.next_below(3)));
              break;
      case 1: m.add_row(e >= at_z - static_cast<double>(rng.next_below(3)));
              break;
      default: m.add_row(e == at_z); break;
    }
  }
  LinExpr obj;
  for (Var v : xs) {
    obj.add_term(v, static_cast<double>(1 + rng.next_below(20)));
  }
  m.set_objective(obj);
  return m;
}

TEST(NogoodLearning, EveryLearnedNogoodIsDeadAndWithinTheWidthCap) {
  Rng rng(0xdead900d5ULL);
  long validated = 0;
  for (int i = 0; i < 40; ++i) {
    const Model m = make_model(rng);

    auto store = std::make_shared<NogoodStore>();
    BranchAndBoundOptions opt;
    BranchAndBoundSolver solver(opt);
    solver.set_nogood_store(store);
    const IlpResult res = solver.solve(m);
    ASSERT_TRUE(res.status == IlpStatus::kOptimal ||
                res.status == IlpStatus::kInfeasible)
        << "instance " << i;

    std::vector<std::pair<int, Nogood>> learned;
    store->snapshot(learned);
    for (const auto& [index, nogood] : learned) {
      EXPECT_LE(nogood.num_literals(),
                static_cast<std::size_t>(opt.max_nogood_literals))
          << "instance " << i << " nogood " << index;

      // Replay the assignment: fixing the literals must leave nothing
      // better than the proven optimum (kInfeasible: nothing at all).
      Model fixed = m;
      for (const int j : nogood.ones) fixed.fix(Var{j}, 1.0);
      for (const int j : nogood.zeros) fixed.fix(Var{j}, 0.0);
      BranchAndBoundOptions plain;
      plain.learning = false;
      const IlpResult replay = BranchAndBoundSolver(plain).solve(fixed);
      if (nogood.source == NogoodSource::kInfeasible) {
        EXPECT_EQ(replay.status, IlpStatus::kInfeasible)
            << "instance " << i << " nogood " << index;
      } else {
        ASSERT_EQ(nogood.source, NogoodSource::kDominance);
        if (replay.status == IlpStatus::kOptimal) {
          EXPECT_GE(replay.objective, res.objective - 1e-6)
              << "instance " << i << " nogood " << index;
        } else {
          EXPECT_EQ(replay.status, IlpStatus::kInfeasible)
              << "instance " << i << " nogood " << index;
        }
      }
      ++validated;
    }
  }
  // The suite is vacuous unless the search actually learned something.
  EXPECT_GE(validated, 50);
}

TEST(NogoodLearning, StorePersistsAcrossSolvesAndReportsCounters) {
  // Re-solving the same model with a shared store must start from the
  // previous solve's permanent conflicts (store size carries over) and keep
  // the result identical.
  Rng rng(0x5701e5ULL);
  for (int i = 0; i < 10; ++i) {
    const Model m = make_model(rng);
    auto store = std::make_shared<NogoodStore>();
    BranchAndBoundSolver solver{BranchAndBoundOptions{}};
    solver.set_nogood_store(store);

    const IlpResult first = solver.solve(m);
    EXPECT_EQ(first.nogood_store_size, store->size());
    // Transient (incumbent-relative) entries are purged when the next solve
    // starts; only the permanent ones must survive the restart.
    std::vector<std::pair<int, Nogood>> live;
    store->snapshot(live);
    long permanent = 0;
    for (const auto& [index, nogood] : live) {
      if (nogood.source != NogoodSource::kDominance) ++permanent;
    }

    const IlpResult second = solver.solve(m);
    EXPECT_EQ(first.status, second.status) << "instance " << i;
    if (first.optimal()) {
      EXPECT_NEAR(first.objective, second.objective, 1e-9)
          << "instance " << i;
    }
    EXPECT_GE(second.nogood_store_size, permanent) << "instance " << i;
  }
}

}  // namespace
}  // namespace archex::ilp
