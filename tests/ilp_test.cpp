// Unit and property tests for the MILP layer (archex::ilp): expression DSL,
// model building, Boolean linearizations, branch & bound, and the Balas
// implicit-enumeration solver cross-checked against exhaustive enumeration.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ilp/branching.hpp"
#include "ilp/expr.hpp"
#include "ilp/model.hpp"
#include "ilp/solver.hpp"
#include "support/rng.hpp"

namespace archex::ilp {
namespace {

TEST(LinExpr, BuildsAffineExpressions) {
  const Var x{0}, y{1};
  LinExpr e = 2.0 * x + 3.0 * y - 1.0;
  EXPECT_EQ(e.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(e.constant(), -1.0);
  e *= 2.0;
  EXPECT_DOUBLE_EQ(e.constant(), -2.0);
  EXPECT_DOUBLE_EQ(e.terms()[0].coef, 4.0);
}

TEST(LinExpr, ComparisonsProduceRowSpecs) {
  const Var x{0};
  const RowSpec le = LinExpr(x) <= 3.0;
  EXPECT_DOUBLE_EQ(le.up, 3.0);
  EXPECT_EQ(le.lo, -lp::kInf);
  const RowSpec ge = LinExpr(x) >= 1.0;
  EXPECT_DOUBLE_EQ(ge.lo, 1.0);
  const RowSpec eq = LinExpr(x) == 2.0;
  EXPECT_DOUBLE_EQ(eq.lo, 2.0);
  EXPECT_DOUBLE_EQ(eq.up, 2.0);
}

TEST(Model, FoldsConstantsIntoRowBounds) {
  Model m;
  const Var x = m.add_binary("x");
  m.add_row(LinExpr(x) + 5.0 <= 6.0);  // x <= 1
  EXPECT_DOUBLE_EQ(m.row(0).up, 1.0);
}

TEST(Model, RejectsUnknownVariables) {
  Model m;
  (void)m.add_binary("x");
  LinExpr bogus;
  bogus.add_term(Var{42}, 1.0);
  EXPECT_THROW(m.add_row(std::move(bogus) <= 1.0), PreconditionError);
}

TEST(Model, FixPinsVariable) {
  Model m;
  const Var x = m.add_binary("x");
  m.fix(x, 1.0);
  EXPECT_DOUBLE_EQ(m.lower_bound(x), 1.0);
  EXPECT_DOUBLE_EQ(m.upper_bound(x), 1.0);
  EXPECT_THROW(m.fix(x, 0.5), PreconditionError);
}

TEST(Model, ActivityRange) {
  Model m;
  const Var x = m.add_continuous(-1, 2, "x");
  const Var y = m.add_continuous(0, 3, "y");
  const auto [lo, up] = m.activity_range(2.0 * x - 1.0 * y + 1.0);
  EXPECT_DOUBLE_EQ(lo, 2.0 * -1 - 3 + 1);
  EXPECT_DOUBLE_EQ(up, 2.0 * 2 - 0 + 1);
}

// ---- Boolean linearizations ------------------------------------------------

TEST(Model, OrDefinitionBehaves) {
  // For every corner of (a, b), minimizing / maximizing y under the OR rows
  // must pin y to a|b.
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (double sense : {+1.0, -1.0}) {
        Model m;
        const Var va = m.add_binary("a");
        const Var vb = m.add_binary("b");
        const Var y = m.add_or({va, vb}, "y");
        m.fix(va, a);
        m.fix(vb, b);
        m.set_objective(sense * y);
        BranchAndBoundSolver solver;
        const IlpResult r = solver.solve(m);
        ASSERT_TRUE(r.optimal());
        EXPECT_EQ(r.value_bool(y), (a | b) != 0)
            << "a=" << a << " b=" << b << " sense=" << sense;
      }
    }
  }
}

TEST(Model, AndDefinitionBehaves) {
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (double sense : {+1.0, -1.0}) {
        Model m;
        const Var va = m.add_binary("a");
        const Var vb = m.add_binary("b");
        const Var y = m.add_and({va, vb}, "y");
        m.fix(va, a);
        m.fix(vb, b);
        m.set_objective(sense * y);
        BranchAndBoundSolver solver;
        const IlpResult r = solver.solve(m);
        ASSERT_TRUE(r.optimal());
        EXPECT_EQ(r.value_bool(y), (a & b) != 0);
      }
    }
  }
}

TEST(Model, ImplicationEnforcedOnlyWhenGuardSet) {
  // x = 1 -> w >= 5; minimizing w with x fixed both ways.
  for (int guard = 0; guard <= 1; ++guard) {
    Model m;
    const Var x = m.add_binary("x");
    const Var w = m.add_continuous(0, 10, "w");
    m.add_implication(x, LinExpr(w) >= 5.0, "imp");
    m.fix(x, guard);
    m.set_objective(LinExpr(w));
    BranchAndBoundSolver solver;
    const IlpResult r = solver.solve(m);
    ASSERT_TRUE(r.optimal());
    EXPECT_NEAR(r.value(w), guard ? 5.0 : 0.0, 1e-6);
  }
}

TEST(Model, LeqChainsImplications) {
  // a <= b with cost on b: selecting a forces b.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  m.add_leq(a, b);
  m.add_row(LinExpr(a) >= 1.0);
  m.set_objective(LinExpr(b));
  BranchAndBoundSolver solver;
  const IlpResult r = solver.solve(m);
  ASSERT_TRUE(r.optimal());
  EXPECT_TRUE(r.value_bool(b));
}

// ---- Branch & bound --------------------------------------------------------

TEST(BranchAndBound, SolvesKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6 -> a + c (value 17, weight 5)
  // vs b + c (20, 6): optimum picks b + c.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_row(3.0 * a + 4.0 * b + 2.0 * c <= 6.0);
  m.set_objective(-(10.0 * a + 13.0 * b + 7.0 * c));
  BranchAndBoundSolver solver;
  const IlpResult r = solver.solve(m);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, -20.0, 1e-6);
  EXPECT_FALSE(r.value_bool(a));
  EXPECT_TRUE(r.value_bool(b));
  EXPECT_TRUE(r.value_bool(c));
}

TEST(BranchAndBound, DetectsInfeasibility) {
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  m.add_row(LinExpr(a) + LinExpr(b) >= 3.0);  // two binaries can't reach 3
  BranchAndBoundSolver solver;
  EXPECT_EQ(solver.solve(m).status, IlpStatus::kInfeasible);
}

TEST(BranchAndBound, IntegralityGapRequiresBranching) {
  // LP relaxation of: min -(x+y), x + y <= 1.5 gives 1.5; ILP optimum is 1.
  Model m;
  const Var x = m.add_binary("x");
  const Var y = m.add_binary("y");
  m.add_row(LinExpr(x) + LinExpr(y) <= 1.5);
  m.set_objective(-(LinExpr(x) + LinExpr(y)));
  BranchAndBoundSolver solver;
  const IlpResult r = solver.solve(m);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // min 3d + f subject to f >= 4 - 2d, f <= 5, d binary.
  // d=0: f=4 cost 4; d=1: f=2 cost 5. Optimum d=0.
  Model m;
  const Var d = m.add_binary("d");
  const Var f = m.add_continuous(0, 5, "f");
  m.add_row(LinExpr(f) + 2.0 * d >= 4.0);
  m.set_objective(3.0 * d + LinExpr(f));
  BranchAndBoundSolver solver;
  const IlpResult r = solver.solve(m);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, 4.0, 1e-6);
  EXPECT_FALSE(r.value_bool(d));
}

TEST(BranchAndBound, GeneralIntegerVariables) {
  // min x + y s.t. 2x + 3y >= 7, x,y integer in [0,5]: (2,1) cost 3.
  Model m;
  const Var x = m.add_integer(0, 5, "x");
  const Var y = m.add_integer(0, 5, "y");
  m.add_row(2.0 * x + 3.0 * y >= 7.0);
  m.set_objective(LinExpr(x) + LinExpr(y));
  BranchAndBoundSolver solver;
  const IlpResult r = solver.solve(m);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(BranchAndBound, ObjectiveConstantReported) {
  Model m;
  const Var x = m.add_binary("x");
  m.add_row(LinExpr(x) >= 1.0);
  m.set_objective(2.0 * x + 10.0);
  BranchAndBoundSolver solver;
  const IlpResult r = solver.solve(m);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, 12.0, 1e-6);
}

TEST(BranchAndBound, NodeLimitReported) {
  // Odd-cycle packing: the root LP optimum is the all-0.5 point, so at least
  // one branch is required; with max_nodes = 1 the limit must trip. Cuts
  // stay off — the clique cut a+b+c <= 1 would close the gap at the root.
  BranchAndBoundOptions opt;
  opt.max_nodes = 1;
  opt.root_rounding_heuristic = false;
  opt.cuts = false;
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_row(LinExpr(a) + LinExpr(b) <= 1.0);
  m.add_row(LinExpr(b) + LinExpr(c) <= 1.0);
  m.add_row(LinExpr(a) + LinExpr(c) <= 1.0);
  m.set_objective(-(LinExpr(a) + LinExpr(b) + LinExpr(c)));
  BranchAndBoundSolver solver(opt);
  const IlpResult r = solver.solve(m);
  EXPECT_EQ(r.status, IlpStatus::kNodeLimit);
}

TEST(BranchAndBound, TimeLimitAbortsPromptly) {
  // An (effectively) expired time limit must stop the search within the
  // first node — the engine-level deadline also cuts off the node's LP
  // relaxation instead of letting it run to completion.
  BranchAndBoundOptions opt;
  opt.time_limit_seconds = 1e-9;
  opt.root_rounding_heuristic = false;
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_row(LinExpr(a) + LinExpr(b) <= 1.0);
  m.add_row(LinExpr(b) + LinExpr(c) <= 1.0);
  m.add_row(LinExpr(a) + LinExpr(c) <= 1.0);
  m.set_objective(-(LinExpr(a) + LinExpr(b) + LinExpr(c)));
  BranchAndBoundSolver solver(opt);
  const IlpResult r = solver.solve(m);
  EXPECT_EQ(r.status, IlpStatus::kTimeLimit);
  EXPECT_LE(r.nodes_explored, 1);
}

// ---- Balas solver -----------------------------------------------------------

TEST(Branching, TiesResolveToLowestIndex) {
  // Three binaries, all equally fractional: the most-fractional rule must
  // break the tie at the lowest variable index. This order is part of the
  // deterministic-mode contract (bit-for-bit reproducible trees), so it is
  // pinned here rather than left to accident.
  Model m;
  m.add_binary("a");
  m.add_binary("b");
  m.add_binary("c");
  m.set_objective(LinExpr{});
  const std::vector<int> integral = {0, 1, 2};

  const std::vector<double> x = {0.5, 0.5, 0.5};
  const BranchChoice plain =
      select_branch_variable(m, integral, 1e-6, x, nullptr, 1);
  EXPECT_EQ(plain.var, 0);
  EXPECT_FALSE(plain.used_pseudocost);

  // A strictly more fractional later variable still wins over earlier ones.
  const std::vector<double> x2 = {0.3, 0.5, 0.3};
  EXPECT_EQ(select_branch_variable(m, integral, 1e-6, x2, nullptr, 1).var, 1);

  // Equal *pseudocost* scores tie-break to the lowest index as well.
  PseudocostTable table(3);
  for (const int j : {1, 2}) {
    table.observe(j, false, 2.0);
    table.observe(j, true, 2.0);
  }
  const BranchChoice pc =
      select_branch_variable(m, integral, 1e-6, x, &table, 1);
  EXPECT_TRUE(pc.used_pseudocost);
  EXPECT_EQ(pc.var, 1);  // lowest index among the (tied) reliable pair

  // Branching priority dominates both rules: the top class is selected
  // first, and ties inside it again resolve to the lowest index.
  m.set_branch_priority(Var{1}, 10);
  m.set_branch_priority(Var{2}, 10);
  const BranchChoice prio =
      select_branch_variable(m, integral, 1e-6, x, nullptr, 1);
  EXPECT_EQ(prio.var, 1);
}

TEST(Branching, IntegralPointYieldsNoCandidate) {
  Model m;
  m.add_binary("a");
  m.set_objective(LinExpr{});
  const std::vector<double> x = {1.0};
  EXPECT_EQ(select_branch_variable(m, {0}, 1e-6, x, nullptr, 1).var, -1);
}

TEST(Balas, RejectsNonBinaryModels) {
  Model m;
  (void)m.add_continuous(0, 1, "w");
  BalasSolver solver;
  EXPECT_THROW((void)solver.solve(m), PreconditionError);
}

TEST(Balas, SolvesKnapsack) {
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_row(3.0 * a + 4.0 * b + 2.0 * c <= 6.0);
  m.set_objective(-(10.0 * a + 13.0 * b + 7.0 * c));
  BalasSolver solver;
  const IlpResult r = solver.solve(m);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, -20.0, 1e-6);
}

TEST(Balas, DetectsInfeasibility) {
  Model m;
  const Var a = m.add_binary("a");
  m.add_row(LinExpr(a) >= 2.0);
  BalasSolver solver;
  EXPECT_EQ(solver.solve(m).status, IlpStatus::kInfeasible);
}

// ---- Property test: both solvers vs exhaustive enumeration -----------------

struct Brute {
  bool feasible = false;
  double best = std::numeric_limits<double>::infinity();
};

Brute brute_force(const Model& m) {
  const int n = m.num_variables();
  Brute out;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(j)] = (mask >> j) & 1u;
    }
    if (!m.is_feasible(x, 1e-9)) continue;
    out.feasible = true;
    out.best = std::min(out.best, m.eval_objective(x));
  }
  return out;
}

Model random_binary_model(std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  const int n = 4 + static_cast<int>(rng.next_below(7));  // 4..10 binaries
  std::vector<Var> xs;
  for (int j = 0; j < n; ++j) xs.push_back(m.add_binary());
  const int rows = 2 + static_cast<int>(rng.next_below(5));
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    double magnitude = 0.0;
    for (Var v : xs) {
      if (rng.next_bernoulli(0.5)) continue;
      const double c = std::floor(rng.next_double() * 7.0) - 3.0;  // -3..3
      e.add_term(v, c);
      magnitude += std::abs(c);
    }
    const double rhs = std::floor(rng.next_double() * magnitude) -
                       magnitude / 2.0;
    switch (rng.next_below(3)) {
      case 0: m.add_row(std::move(e) <= rhs); break;
      case 1: m.add_row(std::move(e) >= rhs); break;
      default: m.add_row(std::move(e) <= rhs + 2.0); break;
    }
  }
  LinExpr obj;
  for (Var v : xs) {
    obj.add_term(v, std::floor(rng.next_double() * 21.0) - 10.0);
  }
  m.set_objective(obj);
  return m;
}

class SolverAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreement, BothSolversMatchBruteForce) {
  const Model m = random_binary_model(
      static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  const Brute truth = brute_force(m);

  BranchAndBoundSolver bnb;
  const IlpResult rb = bnb.solve(m);
  BalasSolver balas;
  const IlpResult rl = balas.solve(m);

  if (!truth.feasible) {
    EXPECT_EQ(rb.status, IlpStatus::kInfeasible);
    EXPECT_EQ(rl.status, IlpStatus::kInfeasible);
    return;
  }
  ASSERT_TRUE(rb.optimal()) << to_string(rb.status);
  ASSERT_TRUE(rl.optimal()) << to_string(rl.status);
  EXPECT_NEAR(rb.objective, truth.best, 1e-6);
  EXPECT_NEAR(rl.objective, truth.best, 1e-6);
  // Returned assignments must themselves be feasible.
  EXPECT_TRUE(m.is_feasible(rb.x));
  EXPECT_TRUE(m.is_feasible(rl.x));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement, ::testing::Range(0, 40));

}  // namespace
}  // namespace archex::ilp
