// Tests for the Pareto-frontier sweep (core/pareto.hpp) and the MPS model
// export (ilp/mps.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>

#include "core/pareto.hpp"
#include "eps/eps_template.hpp"
#include "ilp/mps.hpp"
#include "ilp/solver.hpp"
#include "rel/eval_cache.hpp"

namespace archex {
namespace {

// ---- Pareto sweep -------------------------------------------------------------

/// Small 2-source / 2-middle / 1-sink template with a tie: several distinct
/// reliability levels exist, so the frontier has multiple points and the
/// sweep exhausts quickly (sub-second solves).
struct SweepFixture {
  core::Template tmpl;
  SweepFixture() {
    using graph::NodeId;
    const NodeId s1 = tmpl.add_component({"S1", 0, 10, 0.01, 0, 0});
    const NodeId s2 = tmpl.add_component({"S2", 0, 12, 0.01, 0, 0});
    const NodeId m1 = tmpl.add_component({"M1", 1, 5, 0.02, 0, 0});
    const NodeId m2 = tmpl.add_component({"M2", 1, 6, 0.02, 0, 0});
    const NodeId t = tmpl.add_component({"T", 2, 0, 0.0, 0, 0});
    for (NodeId s : {s1, s2}) {
      for (NodeId m : {m1, m2}) tmpl.add_candidate_edge(s, m, 1);
    }
    tmpl.add_candidate_edge(m1, m2, 1);
    tmpl.add_candidate_edge(m2, m1, 1);
    for (NodeId m : {m1, m2}) tmpl.add_candidate_edge(m, t, 1);
  }
  [[nodiscard]] core::ArchitectureIlp make_ilp() const {
    core::ArchitectureIlp ilp(tmpl);
    ilp.require_all_sinks_fed();
    return ilp;
  }
};

TEST(Pareto, SweepsUntilTemplateExhausted) {
  const SweepFixture fx;
  ilp::BranchAndBoundSolver solver;

  core::ParetoOptions opt;
  opt.initial_target = 5e-2;
  opt.tighten_factor = 0.5;
  opt.max_points = 8;

  const core::ParetoFrontier frontier = core::sweep_pareto_frontier(
      [&] { return fx.make_ilp(); }, solver, opt);

  ASSERT_GE(frontier.points.size(), 2u);
  for (std::size_t i = 0; i < frontier.points.size(); ++i) {
    const auto& pt = frontier.points[i];
    // Every point honors its own requirement under the algebra.
    EXPECT_LE(pt.approx_failure, pt.target * (1 + 1e-9));
    if (i > 0) {
      // Strictly more reliable, never cheaper.
      EXPECT_LT(pt.approx_failure, frontier.points[i - 1].approx_failure);
      EXPECT_GE(pt.cost, frontier.points[i - 1].cost - 1e-9);
    }
  }
  // The template tops out near r~ = 2(0.01^2) + 2(0.02^2) = 1e-3: the
  // sweep must end in UNFEASIBLE (exhaustion), not in a solver failure.
  EXPECT_EQ(frontier.terminal_status, core::SynthesisStatus::kUnfeasible);
  EXPECT_LE(frontier.points.back().approx_failure, 1.1e-3);
}

/// Solves the first model genuinely, then replays that solution for every
/// later call — so each tightened step re-achieves the same r̃ and the sweep
/// stalls deterministically.
class ReplaySolver final : public ilp::IlpSolver {
 public:
  [[nodiscard]] ilp::IlpResult solve(const ilp::Model& model) override {
    if (!cached_) cached_ = inner_.solve(model);
    return *cached_;
  }
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  ilp::BranchAndBoundSolver inner_;
  std::optional<ilp::IlpResult> cached_;
};

TEST(Pareto, StalledStepIsDroppedAndRecorded) {
  const SweepFixture fx;
  ReplaySolver solver;

  core::ParetoOptions opt;
  opt.initial_target = 5e-2;
  opt.tighten_factor = 0.5;
  opt.max_points = 8;

  const core::ParetoFrontier frontier = core::sweep_pareto_frontier(
      [&] { return fx.make_ilp(); }, solver, opt);

  // Step 2 replays step 1's architecture: its r̃ does not improve, so the
  // sweep must stop WITHOUT pushing the dominated point onto the frontier
  // (the frontier stays strictly decreasing in r̃) and record the stall.
  ASSERT_EQ(frontier.points.size(), 1u);
  EXPECT_TRUE(frontier.tightening_stalled);
  EXPECT_EQ(frontier.terminal_status, core::SynthesisStatus::kSuccess);
  EXPECT_LT(frontier.stalled_target, frontier.points[0].target);
  EXPECT_DOUBLE_EQ(frontier.stalled_approx_failure,
                   frontier.points[0].approx_failure);
}

TEST(Pareto, SharedCacheAccumulatesAcrossSweepPoints) {
  const SweepFixture fx;
  ilp::BranchAndBoundSolver solver;

  rel::EvalCache cache;
  core::ParetoOptions opt;
  opt.initial_target = 5e-2;
  opt.max_points = 8;
  opt.cache = &cache;

  const core::ParetoFrontier cached = core::sweep_pareto_frontier(
      [&] { return fx.make_ilp(); }, solver, opt);
  ASSERT_GE(cached.points.size(), 2u);
  // Every sweep point ran its exact evaluation through the shared cache.
  EXPECT_GT(cache.stats().misses, 0u);

  // And the accelerated sweep is bit-identical to the plain one.
  const core::ParetoFrontier plain = core::sweep_pareto_frontier(
      [&] { return fx.make_ilp(); }, solver,
      [] {
        core::ParetoOptions o;
        o.initial_target = 5e-2;
        o.max_points = 8;
        return o;
      }());
  ASSERT_EQ(plain.points.size(), cached.points.size());
  for (std::size_t i = 0; i < plain.points.size(); ++i) {
    EXPECT_EQ(plain.points[i].exact_failure, cached.points[i].exact_failure);
    EXPECT_EQ(plain.points[i].cost, cached.points[i].cost);
  }
}

TEST(Pareto, ValidatesOptions) {
  eps::EpsSpec spec;
  spec.num_generators = 1;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  ilp::BranchAndBoundSolver solver;
  core::ParetoOptions opt;
  opt.initial_target = 0.0;
  EXPECT_THROW((void)core::sweep_pareto_frontier(
                   [&] { return eps::make_eps_ilp(eps); }, solver, opt),
               PreconditionError);
  opt.initial_target = 1e-2;
  opt.tighten_factor = 1.5;
  EXPECT_THROW((void)core::sweep_pareto_frontier(
                   [&] { return eps::make_eps_ilp(eps); }, solver, opt),
               PreconditionError);
}

// ---- MPS export -----------------------------------------------------------------

TEST(Mps, ContainsAllSections) {
  ilp::Model m;
  const ilp::Var a = m.add_binary("pick_a");
  const ilp::Var b = m.add_binary("pick_b");
  const ilp::Var f = m.add_continuous(0, 5, "flow");
  m.add_row(ilp::LinExpr(a) + ilp::LinExpr(b) >= 1.0, "cover");
  m.add_row(2.0 * f - 3.0 * a <= 4.0, "cap");
  ilp::RowSpec range;
  range.expr = ilp::LinExpr(f);
  range.lo = 1.0;
  range.up = 3.0;
  m.add_row(std::move(range), "range");
  m.set_objective(5.0 * a + 7.0 * b + 1.0 * f);

  const std::string mps = ilp::to_mps(m, "demo");
  for (const char* needle :
       {"NAME demo", "ROWS", "COLUMNS", "RHS", "RANGES", "BOUNDS", "ENDATA",
        "'INTORG'", "'INTEND'", " BV BND ", "COST", "pick_a_0", "flow_2",
        "cover_0", " G ", " L "}) {
    EXPECT_NE(mps.find(needle), std::string::npos) << "missing " << needle;
  }
}

TEST(Mps, FixedAndUnboundedVariables) {
  ilp::Model m;
  const ilp::Var x = m.add_continuous(-lp::kInf, lp::kInf, "free");
  const ilp::Var y = m.add_continuous(2, 2, "pinned");
  m.add_row(ilp::LinExpr(x) + ilp::LinExpr(y) == 3.0);
  const std::string mps = ilp::to_mps(m);
  EXPECT_NE(mps.find(" MI BND free_0"), std::string::npos);
  EXPECT_NE(mps.find(" PL BND free_0"), std::string::npos);
  EXPECT_NE(mps.find(" FX BND pinned_1 2"), std::string::npos);
  EXPECT_NE(mps.find(" E "), std::string::npos);
}

TEST(Mps, EpsBaseModelExports) {
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
  const std::string mps = ilp::to_mps(ilp.model(), "eps_g2");
  // Every row appears exactly once in ROWS.
  std::size_t rows = 0;
  for (std::size_t pos = 0;
       (pos = mps.find("\n G ", pos)) != std::string::npos; ++pos) ++rows;
  for (std::size_t pos = 0;
       (pos = mps.find("\n L ", pos)) != std::string::npos; ++pos) ++rows;
  for (std::size_t pos = 0;
       (pos = mps.find("\n E ", pos)) != std::string::npos; ++pos) ++rows;
  EXPECT_EQ(rows, static_cast<std::size_t>(ilp.model().num_rows()));
  EXPECT_NE(mps.find("ENDATA"), std::string::npos);
}

}  // namespace
}  // namespace archex
