// Tests for the operating-mode extension: per-mode adequacy rows change
// what architectures are admissible (e.g. engine-out forces backup
// generation to be instantiated).
#include <gtest/gtest.h>

#include "core/arch_ilp.hpp"
#include "eps/eps_template.hpp"
#include "eps/operating_modes.hpp"
#include "ilp/solver.hpp"

namespace archex::eps {
namespace {

EpsTemplate small_eps() {
  EpsSpec spec;
  spec.num_generators = 2;
  return make_eps_template(spec);
}

TEST(OperatingModes, StandardSetShapes) {
  const EpsTemplate eps = small_eps();
  const auto modes = standard_flight_modes(eps);
  ASSERT_EQ(modes.size(), 3u);
  EXPECT_EQ(modes[0].name, "cruise");
  EXPECT_EQ(modes[1].name, "takeoff");
  EXPECT_EQ(modes[2].name, "engine_out");
  for (const auto& mode : modes) {
    EXPECT_EQ(mode.load_demand_kw.size(), eps.loads.size());
    EXPECT_EQ(mode.source_available.size(), eps.sources().size());
  }
  // Takeoff scales demand by 1.3.
  for (std::size_t i = 0; i < eps.loads.size(); ++i) {
    EXPECT_NEAR(modes[1].load_demand_kw[i],
                1.3 * modes[0].load_demand_kw[i], 1e-12);
  }
  // Engine-out disables exactly one main generator and keeps the APU.
  int disabled = 0;
  for (std::size_t i = 0; i < modes[2].source_available.size(); ++i) {
    if (!modes[2].source_available[i]) ++disabled;
  }
  EXPECT_EQ(disabled, 1);
  EXPECT_TRUE(modes[2].source_available.back());  // APU stays online
}

TEST(OperatingModes, EngineOutForcesBackupGeneration) {
  const EpsTemplate eps = small_eps();
  ilp::BranchAndBoundSolver solver;

  // Baseline (cruise only): one 70-kW generator covers the 40-kW demand.
  core::ArchitectureIlp base = make_eps_ilp(eps);
  const auto res_base = solver.solve(base.model());
  ASSERT_TRUE(res_base.optimal());

  // With the engine-out mode, losing the big generator must still leave
  // enough instantiated supply: the optimum needs an extra source.
  core::ArchitectureIlp hardened = make_eps_ilp(eps);
  apply_operating_modes(hardened, eps, standard_flight_modes(eps));
  const auto res_hard = solver.solve(hardened.model());
  ASSERT_TRUE(res_hard.optimal());

  EXPECT_GT(res_hard.objective, res_base.objective);

  // Verify semantically: in the hardened optimum, the instantiated sources
  // minus the largest one still cover the demand.
  const core::Configuration cfg = hardened.extract(res_hard);
  const auto used = cfg.used_nodes();
  double total = 0.0, largest = 0.0, demand = 0.0;
  for (const graph::NodeId s : eps.sources()) {
    if (!used[static_cast<std::size_t>(s)]) continue;
    const double supply = eps.tmpl.component(s).power_supply;
    // The APU is exempt from the engine-out loss; still count the worst
    // case over main generators only.
    total += supply;
  }
  for (std::size_t i = 0; i < eps.generators.size(); ++i) {
    const graph::NodeId g = eps.generators[i];
    if (used[static_cast<std::size_t>(g)]) {
      largest = std::max(largest, eps.tmpl.component(g).power_supply);
    }
  }
  for (const graph::NodeId l : eps.loads) {
    demand += eps.tmpl.component(l).power_demand;
  }
  EXPECT_GE(total - largest, demand - 1e-9);
}

TEST(OperatingModes, ValidatesProfiles) {
  const EpsTemplate eps = small_eps();
  core::ArchitectureIlp ilp = make_eps_ilp(eps);
  OperatingMode bad{"bad", {1.0}, {true}};  // wrong lengths
  EXPECT_THROW(apply_operating_modes(ilp, eps, {bad}), PreconditionError);
  OperatingMode negative{"neg",
                         std::vector<double>(eps.loads.size(), -1.0),
                         std::vector<bool>(eps.sources().size(), true)};
  EXPECT_THROW(apply_operating_modes(ilp, eps, {negative}),
               PreconditionError);
}

TEST(OperatingModes, InfeasibleWhenNoBackupExists) {
  // Without the APU and with only one generator, engine-out is impossible.
  EpsSpec spec;
  spec.num_generators = 1;
  spec.include_apu = false;
  const EpsTemplate eps = make_eps_template(spec);
  core::ArchitectureIlp ilp = make_eps_ilp(eps);
  apply_operating_modes(ilp, eps, standard_flight_modes(eps));
  ilp::BranchAndBoundSolver solver;
  EXPECT_EQ(solver.solve(ilp.model()).status, ilp::IlpStatus::kInfeasible);
}

}  // namespace
}  // namespace archex::eps
