// Tests for archex::graph: digraph, reachability, Boolean matrices and the
// walk-indicator of Lemma 1 (cross-checked against BFS), partitions, path
// enumeration, path reduction, and the same-type shorthand expansion.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/bool_matrix.hpp"
#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "graph/partition.hpp"
#include "graph/paths.hpp"
#include "support/rng.hpp"

namespace archex::graph {
namespace {

Digraph diamond() {
  // 0 -> {1, 2} -> 3
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Digraph, BasicAccessors) {
  const Digraph g = diamond();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(3).size(), 2u);
}

TEST(Digraph, RejectsSelfLoopsAndDuplicates) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), PreconditionError);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 5), PreconditionError);
}

TEST(Digraph, Reachability) {
  const Digraph g = diamond();
  const auto fwd = g.reachable_from(0);
  EXPECT_TRUE(fwd[0] && fwd[1] && fwd[2] && fwd[3]);
  const auto back = g.reaching(3);
  EXPECT_TRUE(back[0] && back[1] && back[2] && back[3]);
  const auto from1 = g.reachable_from(1);
  EXPECT_FALSE(from1[2]);
}

TEST(Digraph, Connects) {
  const Digraph g = diamond();
  EXPECT_TRUE(g.connects({0}, 3));
  EXPECT_FALSE(g.connects({3}, 0));
  EXPECT_FALSE(g.connects({}, 0));
}

TEST(BoolMatrix, AdjacencyAndProduct) {
  const Digraph g = diamond();
  const BoolMatrix e = BoolMatrix::adjacency(g);
  EXPECT_TRUE(e.get(0, 1));
  EXPECT_FALSE(e.get(0, 3));
  const BoolMatrix e2 = logical_product(e, e);
  EXPECT_TRUE(e2.get(0, 3));   // length-2 walk 0->1->3
  EXPECT_FALSE(e2.get(0, 1));  // no length-2 walk 0->..->1
}

TEST(BoolMatrix, WalkIndicatorDiamond) {
  const Digraph g = diamond();
  const BoolMatrix eta = walk_indicator(g, 2);
  EXPECT_TRUE(eta.get(0, 1));
  EXPECT_TRUE(eta.get(0, 3));
  EXPECT_FALSE(eta.get(1, 2));
  EXPECT_FALSE(eta.get(3, 0));
}

// Property: η_{n-1} (n nodes) must agree with BFS reachability, since any
// reachable node is reachable by a walk of length <= n-1.
class WalkIndicatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(WalkIndicatorProperty, MatchesBfsReachability) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const int n = 4 + static_cast<int>(rng.next_below(6));
  Digraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && rng.next_bernoulli(0.3)) g.add_edge(u, v);
    }
  }
  const BoolMatrix eta = walk_indicator(g, n - 1);
  for (int u = 0; u < n; ++u) {
    const auto reach = g.reachable_from(u);
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;  // η ignores the trivial empty walk
      EXPECT_EQ(eta.get(u, v), reach[static_cast<std::size_t>(v)])
          << "u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkIndicatorProperty, ::testing::Range(0, 20));

TEST(Partition, GroupsAndTypes) {
  const Partition p({0, 1, 1, 2});
  EXPECT_EQ(p.num_types(), 3);
  EXPECT_EQ(p.type_of(2), 1);
  EXPECT_EQ(p.members(1).size(), 2u);
  EXPECT_TRUE(p.same_type(1, 2));
  EXPECT_FALSE(p.same_type(0, 3));
}

TEST(Partition, RejectsEmptySubsets) {
  // Type 1 missing while type 2 is used -> empty subset -> invalid.
  EXPECT_THROW(Partition({0, 2}), PreconditionError);
  EXPECT_THROW(Partition({-1}), PreconditionError);
}

TEST(Paths, DiamondHasTwoPaths) {
  const Digraph g = diamond();
  const auto paths = enumerate_simple_paths(g, {0}, 3);
  ASSERT_EQ(paths.size(), 2u);
  for (const Path& p : paths) {
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
    EXPECT_EQ(p.size(), 3u);
  }
}

TEST(Paths, MultipleSources) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const auto paths = enumerate_simple_paths(g, {0, 1}, 2);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(Paths, SourceEqualsSink) {
  Digraph g(2);
  g.add_edge(0, 1);
  const auto paths = enumerate_simple_paths(g, {1}, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], Path{1});
}

TEST(Paths, CapThrows) {
  // Complete bipartite-ish graph with many paths and a tiny cap.
  Digraph g(6);
  for (int a : {1, 2}) {
    g.add_edge(0, a);
    for (int b : {3, 4}) g.add_edge(a, b);
  }
  g.add_edge(3, 5);
  g.add_edge(4, 5);
  EXPECT_THROW(enumerate_simple_paths(g, {0}, 5, 2), Error);
}

TEST(Paths, FunctionalLinkUsesSourceType) {
  const Digraph g = diamond();
  const Partition p({0, 1, 1, 2});
  const auto link = functional_link(g, p, 3);
  EXPECT_EQ(link.size(), 2u);
}

TEST(Paths, ReducePathCollapsesAdjacentSameType) {
  const Partition p({0, 1, 1, 2});
  // Path 0 -> 1 -> 2 -> 3 where 1 and 2 share a type: reduced keeps node 1.
  const Path reduced = reduce_path({0, 1, 2, 3}, p);
  EXPECT_EQ(reduced, (Path{0, 1, 3}));
}

TEST(Paths, ReducedPathsDeduplicate) {
  const Partition p({0, 1, 1, 2});
  const std::vector<Path> raw{{0, 1, 3}, {0, 1, 2, 3}, {0, 2, 3}};
  const auto reduced = reduced_paths(raw, p);
  // {0,1,3} and {0,1,2,3} reduce to the same path; {0,2,3} stays distinct.
  EXPECT_EQ(reduced.size(), 2u);
}

TEST(Expansion, SameTypeEdgeSharesNeighbors) {
  // src -> a, a -- b (same type), b -> dst. After expansion both a and b
  // must connect src to dst and the intra-type edge must be gone.
  Digraph g(4);
  const Partition p({0, 1, 1, 2});
  g.add_edge(0, 1);  // src -> a
  g.add_edge(1, 2);  // a -> b (same type: shorthand)
  g.add_edge(2, 3);  // b -> dst
  const Digraph x = expand_same_type_shorthand(g, p);
  EXPECT_TRUE(x.has_edge(0, 1));
  EXPECT_TRUE(x.has_edge(0, 2));
  EXPECT_TRUE(x.has_edge(1, 3));
  EXPECT_TRUE(x.has_edge(2, 3));
  EXPECT_FALSE(x.has_edge(1, 2));
  // Two disjoint redundant paths now exist.
  EXPECT_EQ(enumerate_simple_paths(x, {0}, 3).size(), 2u);
}

TEST(Expansion, TransitiveGroups) {
  // Three same-type nodes chained: all three become parallel.
  Digraph g(5);
  const Partition p({0, 1, 1, 1, 2});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const Digraph x = expand_same_type_shorthand(g, p);
  for (int mid : {1, 2, 3}) {
    EXPECT_TRUE(x.has_edge(0, mid)) << mid;
    EXPECT_TRUE(x.has_edge(mid, 4)) << mid;
  }
  EXPECT_EQ(enumerate_simple_paths(x, {0}, 4).size(), 3u);
}

TEST(Expansion, NoShorthandIsIdentity) {
  const Digraph g = diamond();
  const Partition p({0, 1, 1, 2});
  const Digraph x = expand_same_type_shorthand(g, p);
  EXPECT_EQ(x.num_edges(), g.num_edges());
  for (const auto& [u, v] : g.edges()) EXPECT_TRUE(x.has_edge(u, v));
}

TEST(Dot, EmitsNodesEdgesAndClusters) {
  const Digraph g = diamond();
  const Partition p({0, 1, 1, 2});
  DotStyle style;
  style.node_labels = {"G1", "B1", "B2", "L1"};
  style.type_labels = {"generators", "buses", "loads"};
  style.title = "demo";
  const std::string dot = to_dot(g, p, style);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("G1"), std::string::npos);
  EXPECT_NE(dot.find("cluster_t1"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"demo\""), std::string::npos);
}

}  // namespace
}  // namespace archex::graph
