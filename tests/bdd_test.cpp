// Tests for the ROBDD subsystem: the BddManager engine itself (hash-consing
// canonicity, ite rules, restrict, probability sweep, counters), the
// rel::ExactMethod::kBdd analyzer against closed forms and the other exact
// methods on randomized DAGs and general digraphs, the variable-ordering
// heuristics, the whole-graph EvalCache interaction (including the
// first-writer-wins contract across methods), and the EvalContext deadline.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "bdd/bdd.hpp"
#include "graph/digraph.hpp"
#include "rel/bdd_method.hpp"
#include "rel/eval_cache.hpp"
#include "rel/exact.hpp"
#include "rel/monte_carlo.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace archex::rel {
namespace {

using bdd::BddManager;
using bdd::BddStats;
using bdd::Ref;
using graph::Digraph;
using graph::NodeId;

// ---- fixtures ---------------------------------------------------------------

// Series chain G -> B -> L (closed form mirrors rel_test.cpp).
struct Series {
  Digraph g{3};
  std::vector<double> p;
  Series(double pg, double pb, double pl) : p{pg, pb, pl} {
    g.add_edge(0, 1);
    g.add_edge(1, 2);
  }
  [[nodiscard]] double closed_form() const {
    return 1.0 - (1.0 - p[0]) * (1.0 - p[1]) * (1.0 - p[2]);
  }
};

// Fig. 1b / Example 1: two disjoint chains sharing the sink L.
// Node ids: G1=0 G2=1 B1=2 B2=3 D1=4 D2=5 L=6.
struct Example1 {
  Digraph g{7};
  std::vector<double> p;
  Example1(double pg, double pb, double pd, double pl)
      : p{pg, pg, pb, pb, pd, pd, pl} {
    g.add_edge(0, 2);
    g.add_edge(2, 4);
    g.add_edge(4, 6);
    g.add_edge(1, 3);
    g.add_edge(3, 5);
    g.add_edge(5, 6);
  }
  [[nodiscard]] double closed_form() const {
    const double pg = p[0], pb = p[2], pd = p[4], pl = p[6];
    const double chain = pd + (1 - pd) * (pb + (1 - pb) * pg);
    return pl + (1 - pl) * chain * chain;
  }
};

/// side x side directed grid (edges right and down), source at the top-left
/// corner, sink at the bottom-right. Treewidth `side`: irreducible for the
/// series-parallel pass and adversarial for factoring, which makes it the
/// deadline-test workload; the BDD method handles it comfortably.
Digraph make_grid(int side) {
  Digraph g(side * side);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      const NodeId v = r * side + c;
      if (c + 1 < side) g.add_edge(v, v + 1);
      if (r + 1 < side) g.add_edge(v, v + side);
    }
  }
  return g;
}

/// source -> `layers` fully-crossed layers of `width` rails -> sink.
/// Exactly width^layers minimal paths.
Digraph make_ladder(int layers, int width) {
  const int n = layers * width + 2;
  Digraph g(n);
  for (int w = 0; w < width; ++w) g.add_edge(0, 1 + w);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        g.add_edge(1 + l * width + a, 1 + (l + 1) * width + b);
      }
    }
  }
  for (int w = 0; w < width; ++w) {
    g.add_edge(1 + (layers - 1) * width + w, n - 1);
  }
  return g;
}

// ---- BddManager engine ------------------------------------------------------

TEST(BddManager, TerminalIteRules) {
  BddManager mgr(2);
  const Ref x = mgr.var(0);
  const Ref y = mgr.var(1);
  EXPECT_EQ(mgr.ite(BddManager::kTrue, x, y), x);
  EXPECT_EQ(mgr.ite(BddManager::kFalse, x, y), y);
  EXPECT_EQ(mgr.ite(x, y, y), y);
  EXPECT_EQ(mgr.ite(x, BddManager::kTrue, BddManager::kFalse), x);
  EXPECT_EQ(mgr.bdd_and(x, BddManager::kTrue), x);
  EXPECT_EQ(mgr.bdd_or(x, BddManager::kFalse), x);
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_not(x)), x);
}

TEST(BddManager, HashConsingMakesEqualFunctionsEqualRefs) {
  BddManager mgr(2);
  const Ref f = mgr.bdd_or(mgr.var(0), mgr.var(1));
  // De Morgan: !(!x & !y) must reach the very same node.
  const Ref g = mgr.bdd_not(
      mgr.bdd_and(mgr.bdd_not(mgr.var(0)), mgr.bdd_not(mgr.var(1))));
  EXPECT_EQ(f, g);
  // Commuted operands: canonicity again forces one node.
  EXPECT_EQ(mgr.bdd_and(mgr.var(0), mgr.var(1)),
            mgr.bdd_and(mgr.var(1), mgr.var(0)));
  EXPECT_GT(mgr.stats().unique_hits, 0u);
}

TEST(BddManager, RestrictComputesCofactors) {
  BddManager mgr(3);
  // f = (x0 & x1) | x2.
  const Ref f = mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.var(1)), mgr.var(2));
  EXPECT_EQ(mgr.restrict(f, 0, true), mgr.bdd_or(mgr.var(1), mgr.var(2)));
  EXPECT_EQ(mgr.restrict(f, 0, false), mgr.var(2));
  EXPECT_EQ(mgr.restrict(f, 2, true), BddManager::kTrue);
  EXPECT_EQ(mgr.restrict(f, 2, false), mgr.bdd_and(mgr.var(0), mgr.var(1)));
  EXPECT_EQ(mgr.restrict(mgr.var(0), 0, true), BddManager::kTrue);
  EXPECT_EQ(mgr.restrict(mgr.var(0), 0, false), BddManager::kFalse);
}

TEST(BddManager, ProbTrueMatchesHandComputation) {
  BddManager mgr(3);
  const std::vector<double> p{0.3, 0.5, 0.2};
  EXPECT_DOUBLE_EQ(mgr.prob_true(BddManager::kTrue, p), 1.0);
  EXPECT_DOUBLE_EQ(mgr.prob_true(BddManager::kFalse, p), 0.0);
  const Ref a = mgr.bdd_and(mgr.var(0), mgr.var(1));
  EXPECT_NEAR(mgr.prob_true(a, p), 0.3 * 0.5, 1e-15);
  const Ref o = mgr.bdd_or(mgr.var(0), mgr.var(1));
  EXPECT_NEAR(mgr.prob_true(o, p), 1.0 - 0.7 * 0.5, 1e-15);
  // P[(x0 & x1) | x2] = p2 + (1 - p2) p0 p1 (x2 independent of the rest).
  const Ref f = mgr.bdd_or(a, mgr.var(2));
  EXPECT_NEAR(mgr.prob_true(f, p), 0.2 + 0.8 * 0.15, 1e-15);
}

TEST(BddManager, StatsCountConsingAndComputedTraffic) {
  BddManager mgr(2);
  const Ref a = mgr.bdd_and(mgr.var(0), mgr.var(1));
  const std::uint64_t lookups_before = mgr.stats().computed_lookups;
  const Ref b = mgr.bdd_and(mgr.var(0), mgr.var(1));
  EXPECT_EQ(a, b);
  const BddStats& s = mgr.stats();
  // x0, x1, and the conjunction: three decision nodes plus two terminals.
  EXPECT_EQ(s.unique_entries, static_cast<std::size_t>(3));
  EXPECT_EQ(s.nodes_allocated, static_cast<std::size_t>(5));
  EXPECT_GT(s.computed_lookups, lookups_before);
  EXPECT_GT(s.computed_hits, 0u);  // the repeated ite is a computed-table hit
  EXPECT_GT(s.unique_occupancy(), 0.0);
  EXPECT_GE(s.computed_hit_rate(), 0.0);
  EXPECT_LE(s.computed_hit_rate(), 1.0);
}

TEST(BddManager, ParityIsCanonicalAndTableLoadStaysBounded) {
  // Parity of n variables has exactly 2n - 1 decision nodes in the ROBDD; a
  // wrong reduction or consing bug inflates the count immediately.
  BddManager mgr(16);
  Ref f = BddManager::kFalse;
  for (int i = 0; i < 16; ++i) f = mgr.ite(mgr.var(i), mgr.bdd_not(f), f);
  EXPECT_EQ(mgr.num_nodes(f), static_cast<std::size_t>(31));
  const BddStats& s = mgr.stats();
  EXPECT_GE(s.unique_buckets, s.unique_entries);  // rehash keeps load <= 1
  EXPECT_NEAR(mgr.prob_true(f, std::vector<double>(16, 0.5)), 0.5, 1e-15);
}

TEST(BddManager, NumNodesCountsDecisionNodesOnly) {
  BddManager mgr(2);
  EXPECT_EQ(mgr.num_nodes(BddManager::kTrue), static_cast<std::size_t>(0));
  EXPECT_EQ(mgr.num_nodes(mgr.var(0)), static_cast<std::size_t>(1));
  EXPECT_EQ(mgr.num_nodes(mgr.bdd_and(mgr.var(0), mgr.var(1))),
            static_cast<std::size_t>(2));
}

// ---- kBdd against closed forms ----------------------------------------------

TEST(BddMethod, SeriesChainMatchesClosedForm) {
  const Series s(0.1, 0.2, 0.05);
  EXPECT_NEAR(failure_probability(s.g, {0}, 2, s.p, ExactMethod::kBdd),
              s.closed_form(), 1e-15);
}

TEST(BddMethod, Example1MatchesPaperClosedForm) {
  const Example1 small(2e-4, 2e-4, 2e-4, 0.0);
  EXPECT_NEAR(failure_probability(small.g, {0, 1}, 6, small.p,
                                  ExactMethod::kBdd),
              small.closed_form(), 1e-15);
  const Example1 large(0.3, 0.2, 0.1, 0.05);
  EXPECT_NEAR(failure_probability(large.g, {0, 1}, 6, large.p,
                                  ExactMethod::kBdd),
              large.closed_form(), 1e-12);
}

TEST(BddMethod, EdgeCasesMatchFactoringSemantics) {
  // Sink == the only source: fails exactly when it fails itself.
  Digraph chain(2);
  chain.add_edge(0, 1);
  EXPECT_NEAR(failure_probability(chain, {0}, 0, {0.25, 0.5},
                                  ExactMethod::kBdd),
              0.25, 1e-15);
  // Unreachable sink: certain failure.
  Digraph split(3);
  split.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(failure_probability(split, {0}, 2, {0.1, 0.1, 0.1},
                                       ExactMethod::kBdd),
                   1.0);
  // No sources: certain failure.
  EXPECT_DOUBLE_EQ(failure_probability(chain, {}, 1, {0.0, 0.0},
                                       ExactMethod::kBdd),
                   1.0);
  // A p = 1 node on the only path: certain failure.
  const Series cut(0.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(failure_probability(cut.g, {0}, 2, cut.p,
                                       ExactMethod::kBdd),
                   1.0);
  // All components perfect: zero failure.
  const Example1 perfect(0.0, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(failure_probability(perfect.g, {0, 1}, 6, perfect.p,
                                       ExactMethod::kBdd),
                   0.0);
}

TEST(BddMethod, ValidatesInputs) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW((void)failure_probability(g, {0}, 5, {0.1, 0.1},
                                         ExactMethod::kBdd),
               PreconditionError);
  EXPECT_THROW((void)failure_probability(g, {0}, 1, {0.1}, ExactMethod::kBdd),
               PreconditionError);
  EXPECT_THROW((void)failure_probability(g, {0}, 1, {0.1, 1.5},
                                         ExactMethod::kBdd),
               PreconditionError);
  EXPECT_THROW((void)failure_probability(g, {9}, 1, {0.1, 0.1},
                                         ExactMethod::kBdd),
               PreconditionError);
}

TEST(BddMethod, GridMatchesFactoring) {
  const Digraph g = make_grid(4);
  const std::vector<double> p(16, 0.2);
  const double rf = failure_probability(g, {0}, 15, p,
                                        ExactMethod::kFactoring);
  EXPECT_NEAR(failure_probability(g, {0}, 15, p, ExactMethod::kBdd), rf,
              1e-12);
}

TEST(BddMethod, WorstOverSinksSupportsBdd) {
  Digraph g(5);
  const graph::Partition part({0, 0, 1, 2, 2});
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  const std::vector<double> p{0.1, 0.1, 0.0, 0.0, 0.3};
  EXPECT_DOUBLE_EQ(
      worst_failure_probability(g, part, {3, 4}, p, ExactMethod::kBdd),
      worst_failure_probability(g, part, {3, 4}, p, ExactMethod::kFactoring));
}

TEST(BddMethod, StatsReportEngineCounters) {
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  BddEvalStats stats;
  const double r = bdd_failure_probability(e.g, {0, 1}, 6, e.p,
                                           BddOrdering::kAuto, &stats);
  EXPECT_NEAR(r, e.closed_form(), 1e-12);
  EXPECT_EQ(stats.num_vars, 7);  // every node fallible -> one var each
  EXPECT_GE(stats.fixpoint_rounds, 1);
  EXPECT_LE(stats.fixpoint_rounds, 8);
  EXPECT_GT(stats.final_nodes, 0u);
  EXPECT_GE(stats.peak_nodes, stats.final_nodes);
  EXPECT_GT(stats.unique_entries, 0u);
  EXPECT_GT(stats.computed_lookups, 0u);
  EXPECT_GE(stats.computed_hit_rate, 0.0);
  EXPECT_LE(stats.computed_hit_rate, 1.0);
}

TEST(BddMethod, PerfectlyReliableNodesConsumeNoVariable) {
  const Example1 e(2e-4, 2e-4, 2e-4, 0.0);  // the sink never fails
  BddEvalStats stats;
  (void)bdd_failure_probability(e.g, {0, 1}, 6, e.p, BddOrdering::kAuto,
                                &stats);
  EXPECT_EQ(stats.num_vars, 6);
}

// ---- variable orderings -----------------------------------------------------

TEST(BddOrder, TopologicalOrderRespectsEdges) {
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  const std::vector<NodeId> order =
      bdd_variable_order(e.g, {0, 1}, 6, BddOrdering::kTopological);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(7));
  std::vector<int> pos(7, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (NodeId u = 0; u < e.g.num_nodes(); ++u) {
    EXPECT_GE(pos[static_cast<std::size_t>(u)], 0);  // a permutation
    for (NodeId v : e.g.successors(u)) {
      EXPECT_LT(pos[static_cast<std::size_t>(u)],
                pos[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(BddOrder, CyclicGraphFallsBackToBfsLevels) {
  Digraph g(3);  // 0 -> 1 -> 2 -> 0: no topological order exists
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_EQ(bdd_variable_order(g, {0}, 2, BddOrdering::kTopological),
            bdd_variable_order(g, {0}, 2, BddOrdering::kBfsLevel));
}

TEST(BddOrder, DegreeOrderPutsHubsFirst) {
  Digraph g(4);  // star into node 3
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const std::vector<NodeId> order =
      bdd_variable_order(g, {0, 1, 2}, 3, BddOrdering::kDegree);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(4));
  EXPECT_EQ(order[0], 3);  // degree 3 beats the leaves
}

TEST(BddOrder, IrrelevantNodesAreExcluded) {
  // Node 7 is isolated and node 8 dead-ends away from the sink: neither can
  // influence connectivity, so neither gets a branch position.
  Example1 e(0.3, 0.2, 0.1, 0.05);
  Digraph g(9);
  for (NodeId u = 0; u < e.g.num_nodes(); ++u) {
    for (NodeId v : e.g.successors(u)) g.add_edge(u, v);
  }
  g.add_edge(0, 8);
  for (BddOrdering ord : {BddOrdering::kTopological, BddOrdering::kBfsLevel,
                          BddOrdering::kDegree}) {
    const std::vector<NodeId> order = bdd_variable_order(g, {0, 1}, 6, ord);
    EXPECT_EQ(order.size(), static_cast<std::size_t>(7));
    EXPECT_EQ(std::count(order.begin(), order.end(), 7), 0);
    EXPECT_EQ(std::count(order.begin(), order.end(), 8), 0);
  }
}

TEST(BddOrder, AllOrderingsComputeTheSameProbability) {
  const Digraph g = make_grid(4);
  const std::vector<double> p(16, 0.25);
  const double rf = failure_probability(g, {0}, 15, p,
                                        ExactMethod::kFactoring);
  for (BddOrdering ord : {BddOrdering::kAuto, BddOrdering::kTopological,
                          BddOrdering::kBfsLevel, BddOrdering::kDegree}) {
    EXPECT_NEAR(bdd_failure_probability(g, {0}, 15, p, ord), rf, 1e-12);
  }
}

// ---- randomized differential suites ----------------------------------------
//
// 120 random DAGs + 120 random general digraphs (cycles allowed): kBdd must
// agree with factoring to 1e-12 everywhere, with inclusion–exclusion where
// the path count permits it, and with Monte Carlo on a subsample of seeds.

class BddDifferentialDag : public ::testing::TestWithParam<int> {};

TEST_P(BddDifferentialDag, AgreesOnRandomDags) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 3);
  const int n = 5 + static_cast<int>(rng.next_below(5));  // 5..9 nodes
  Digraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_bernoulli(0.4)) g.add_edge(u, v);
    }
  }
  std::vector<double> p(static_cast<std::size_t>(n));
  for (auto& v : p) v = rng.next_double() * 0.5;
  const NodeId sink = n - 1;
  const std::vector<NodeId> sources{0, 1};

  const double rf =
      failure_probability(g, sources, sink, p, ExactMethod::kFactoring);
  const double rb = failure_probability(g, sources, sink, p,
                                        ExactMethod::kBdd);
  EXPECT_NEAR(rb, rf, 1e-12);
  try {
    const double ri = failure_probability(g, sources, sink, p,
                                          ExactMethod::kInclusionExclusion);
    EXPECT_NEAR(rb, ri, 1e-9);
  } catch (const PreconditionError&) {
    // too many paths for inclusion–exclusion; factoring already cross-checks
  }
  if (GetParam() % 8 == 0) {
    Rng mc_rng(static_cast<std::uint64_t>(GetParam()) + 555u);
    const MonteCarloResult mc =
        monte_carlo_failure(g, sources, sink, p, 20000, mc_rng);
    EXPECT_NEAR(mc.estimate, rb, std::max(5.0 * mc.std_error, 0.01));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddDifferentialDag, ::testing::Range(0, 120));

class BddDifferentialDigraph : public ::testing::TestWithParam<int> {};

TEST_P(BddDifferentialDigraph, AgreesOnRandomDigraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  const int n = 5 + static_cast<int>(rng.next_below(5));  // 5..9 nodes
  Digraph g(n);
  // Edges in both index directions: cycles are common at this density, so
  // the fixed point genuinely iterates (and the topological ordering falls
  // back to BFS levels).
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && rng.next_bernoulli(0.25)) g.add_edge(u, v);
    }
  }
  std::vector<double> p(static_cast<std::size_t>(n));
  for (auto& v : p) v = rng.next_double() * 0.5;
  const NodeId sink = n - 1;
  const std::vector<NodeId> sources{0};

  const double rf =
      failure_probability(g, sources, sink, p, ExactMethod::kFactoring);
  const double rb = failure_probability(g, sources, sink, p,
                                        ExactMethod::kBdd);
  EXPECT_NEAR(rb, rf, 1e-12);
  if (GetParam() % 4 == 0) {
    for (BddOrdering ord : {BddOrdering::kTopological, BddOrdering::kBfsLevel,
                            BddOrdering::kDegree}) {
      EXPECT_NEAR(bdd_failure_probability(g, sources, sink, p, ord), rf,
                  1e-12);
    }
  }
  try {
    const double ri = failure_probability(g, sources, sink, p,
                                          ExactMethod::kInclusionExclusion);
    EXPECT_NEAR(rb, ri, 1e-9);
  } catch (const PreconditionError&) {
    // too many paths (or nodes) for inclusion–exclusion on this seed
  }
  if (GetParam() % 8 == 0) {
    Rng mc_rng(static_cast<std::uint64_t>(GetParam()) + 999u);
    const MonteCarloResult mc =
        monte_carlo_failure(g, sources, sink, p, 20000, mc_rng);
    EXPECT_NEAR(mc.estimate, rb, std::max(5.0 * mc.std_error, 0.01));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddDifferentialDigraph,
                         ::testing::Range(0, 120));

// ---- EvalCache interaction --------------------------------------------------

TEST(BddCache, WholeGraphResultIsMemoized) {
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  EvalCache cache;
  EvalContext ctx;
  ctx.cache = &cache;
  const double first =
      failure_probability(e.g, {0, 1}, 6, e.p, ctx, ExactMethod::kBdd);
  const EvalCache::Stats after_first = cache.stats();
  EXPECT_EQ(after_first.size, static_cast<std::size_t>(1));
  EXPECT_EQ(after_first.hits, 0u);
  const double second =
      failure_probability(e.g, {0, 1}, 6, e.p, ctx, ExactMethod::kBdd);
  EXPECT_EQ(second, first);  // bit-identical: served from the cache
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BddCache, FirstWriterWinsAcrossMethods) {
  // The kBdd whole-graph key coincides with factoring's top-level pivot key
  // by design (DESIGN.md determinism contract): whichever method runs first
  // serves the other bit-for-bit.
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  EvalCache cache;
  EvalContext ctx;
  ctx.cache = &cache;
  const double rf =
      failure_probability(e.g, {0, 1}, 6, e.p, ctx, ExactMethod::kFactoring);
  const EvalCache::Stats before = cache.stats();
  const double rb =
      failure_probability(e.g, {0, 1}, 6, e.p, ctx, ExactMethod::kBdd);
  EXPECT_EQ(rb, rf);  // the factoring-written entry answered the BDD call
  EXPECT_EQ(cache.stats().hits, before.hits + 1);
}

TEST(BddParallel, SharedCacheMixedMethodsUnderContention) {
  // Exercised under tsan: many pool tasks hammer one EvalCache while
  // alternating between the BDD and factoring analyzers (factoring itself
  // fanning out on the same pool), with two distinct problems in flight.
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  const Digraph grid = make_grid(4);
  const std::vector<double> gp(16, 0.2);
  const double r_example =
      failure_probability(e.g, {0, 1}, 6, e.p, ExactMethod::kFactoring);
  const double r_grid =
      failure_probability(grid, {0}, 15, gp, ExactMethod::kFactoring);

  EvalCache cache;
  support::ThreadPool pool(4);
  std::vector<double> out(32, -1.0);
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    EvalContext ctx;
    ctx.cache = &cache;
    const ExactMethod method =
        (i % 2 == 0) ? ExactMethod::kBdd : ExactMethod::kFactoring;
    if (method == ExactMethod::kFactoring) ctx.pool = &pool;  // nest-safe
    if (i % 4 < 2) {
      out[i] = failure_probability(e.g, {0, 1}, 6, e.p, ctx, method);
    } else {
      out[i] = failure_probability(grid, {0}, 15, gp, ctx, method);
    }
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double expected = (i % 4 < 2) ? r_example : r_grid;
    EXPECT_NEAR(out[i], expected, 1e-12) << "task " << i;
  }
}

// ---- deadlines --------------------------------------------------------------

TEST(BddDeadline, ExpiredDeadlineReportsTimeLimit) {
  // An 8x8 grid: hard enough that every analyzer performs well over one
  // poll interval of work, so an already-passed deadline must trip.
  const int side = 8;
  const Digraph g = make_grid(side);
  const std::vector<double> p(static_cast<std::size_t>(side * side), 0.3);
  const NodeId sink = side * side - 1;
  EvalContext ctx;
  ctx.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  for (ExactMethod m : {ExactMethod::kFactoring,
                        ExactMethod::kSeriesParallelAuto, ExactMethod::kBdd}) {
    const EvalResult r = try_failure_probability(g, {0}, sink, p, ctx, m);
    EXPECT_EQ(r.status, EvalStatus::kTimeLimit) << to_string(m);
  }
}

TEST(BddDeadline, InclusionExclusionHonorsDeadline) {
  // 2^4 = 16 minimal paths stay under the method's path cap while the
  // 2^16-term subset loop spans many poll intervals.
  const Digraph g = make_ladder(4, 2);
  const std::vector<double> p(static_cast<std::size_t>(g.num_nodes()), 0.3);
  EvalContext ctx;
  ctx.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const EvalResult r = try_failure_probability(
      g, {0}, g.num_nodes() - 1, p, ctx, ExactMethod::kInclusionExclusion);
  EXPECT_EQ(r.status, EvalStatus::kTimeLimit);
}

TEST(BddDeadline, ThrowingOverloadThrowsTimeoutError) {
  const Digraph g = make_grid(8);
  const std::vector<double> p(64, 0.3);
  EvalContext ctx;
  ctx.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_THROW(
      (void)failure_probability(g, {0}, 63, p, ctx, ExactMethod::kBdd),
      TimeoutError);
}

TEST(BddDeadline, GenerousDeadlineCompletes) {
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  EvalContext ctx;
  ctx.deadline = std::chrono::steady_clock::now() + std::chrono::minutes(10);
  for (ExactMethod m :
       {ExactMethod::kFactoring, ExactMethod::kInclusionExclusion,
        ExactMethod::kSeriesParallelAuto, ExactMethod::kBdd}) {
    const EvalResult r = try_failure_probability(e.g, {0, 1}, 6, e.p, ctx, m);
    EXPECT_EQ(r.status, EvalStatus::kOk) << to_string(m);
    EXPECT_NEAR(r.failure, e.closed_form(), 1e-12) << to_string(m);
  }
}

TEST(BddDeadline, NoDeadlineNeverTimesOut) {
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  const EvalContext ctx;  // deadline defaults to nullopt
  const EvalResult r =
      try_failure_probability(e.g, {0, 1}, 6, e.p, ctx, ExactMethod::kBdd);
  EXPECT_EQ(r.status, EvalStatus::kOk);
  EXPECT_NEAR(r.failure, e.closed_form(), 1e-12);
}

// ---- method name round-trip -------------------------------------------------

TEST(BddMethod, NameRoundTrip) {
  for (ExactMethod m :
       {ExactMethod::kFactoring, ExactMethod::kInclusionExclusion,
        ExactMethod::kSeriesParallelAuto, ExactMethod::kBdd}) {
    const auto parsed = parse_exact_method(to_string(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_exact_method("robdd").has_value());
}

}  // namespace
}  // namespace archex::rel
