// Unit tests for archex::support: diagnostics, stopwatch, RNG, tables,
// string helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace archex {
namespace {

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(ARCHEX_REQUIRE(false, "boom"), PreconditionError);
  EXPECT_NO_THROW(ARCHEX_REQUIRE(true, "fine"));
}

TEST(Check, AssertThrowsInternalError) {
  EXPECT_THROW(ARCHEX_ASSERT(1 == 2, "bug"), InternalError);
  EXPECT_NO_THROW(ARCHEX_ASSERT(1 == 1, "ok"));
}

TEST(Check, MessageContainsLocationAndText) {
  try {
    ARCHEX_REQUIRE(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom detail"), std::string::npos);
    EXPECT_NE(what.find("support_test"), std::string::npos);
  }
}

TEST(Stopwatch, AccumulatesAcrossLaps) {
  Stopwatch w;
  EXPECT_EQ(w.elapsed_seconds(), 0.0);
  w.start();
  w.stop();
  const double after_one = w.elapsed_seconds();
  EXPECT_GE(after_one, 0.0);
  w.start();
  w.stop();
  EXPECT_GE(w.elapsed_seconds(), after_one);
}

TEST(Stopwatch, ScopedLapStops) {
  Stopwatch w;
  {
    ScopedLap lap(w);
    EXPECT_TRUE(w.running());
  }
  EXPECT_FALSE(w.running());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 4);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit over 1000 draws
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(Rng, BernoulliMatchesProbabilityRoughly) {
  Rng rng(3);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(TextTable, AlignsColumnsAndCounts) {
  TextTable t({"|V|", "time (s)"});
  t.add_row({"20", "4.3"});
  t.add_row({"30", "9"});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("|V|"), std::string::npos);
  EXPECT_NE(s.find("4.3"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RowWidthValidated) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Format, FixedSciCount) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_sci(2.8e-10, 1), "2.8e-10");
  EXPECT_EQ(format_count(176794), "176794");
}

TEST(Strings, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  EXPECT_EQ(split("a,b,c", ','), parts);
  EXPECT_EQ(split("", ','), std::vector<std::string>{""});
  EXPECT_EQ(split("a,,c", ',').size(), 3u);
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("generator-1", "gen"));
  EXPECT_FALSE(starts_with("gen", "generator"));
}

TEST(Strings, SanitizeIdentifier) {
  EXPECT_EQ(sanitize_identifier("L-G 1"), "L_G_1");
  EXPECT_EQ(sanitize_identifier("2nd"), "n2nd");
  EXPECT_EQ(sanitize_identifier(""), "n");
}

}  // namespace
}  // namespace archex
