// Tests for the persistent SimplexEngine: warm-started dual-simplex
// reoptimization must agree with scratch solves across arbitrary sequences
// of bound tightenings and relaxations (this property test reproduced a
// real dual-feasibility bug during development — keep it).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "lp/engine.hpp"
#include "support/rng.hpp"

namespace archex::lp {
namespace {

TEST(SimplexEngine, ScratchMatchesFreeFunction) {
  Problem p;
  const int x = p.add_variable(0, kInf, -3.0);
  const int y = p.add_variable(0, kInf, -5.0);
  p.add_constraint({{x, 1.0}}, -kInf, 4.0);
  p.add_constraint({{y, 2.0}}, -kInf, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, -kInf, 18.0);

  SimplexEngine engine(p);
  const Solution s = engine.solve_from_scratch();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, solve(p).objective, 1e-9);
}

TEST(SimplexEngine, BoundsAccessorsTrackOverrides) {
  Problem p;
  (void)p.add_variable(0, 1, 1.0);
  SimplexEngine engine(p);
  EXPECT_DOUBLE_EQ(engine.col_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(engine.col_up(0), 1.0);
  engine.set_variable_bounds(0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(engine.col_lo(0), 1.0);
  EXPECT_THROW(engine.set_variable_bounds(0, 2.0, 1.0), PreconditionError);
  EXPECT_THROW(engine.set_variable_bounds(7, 0.0, 1.0), PreconditionError);
}

TEST(SimplexEngine, ReoptimizeAfterTightening) {
  // min -x - y s.t. x + y <= 1.5, x,y in [0,1]; then fix x = 0.
  Problem p;
  const int x = p.add_variable(0, 1, -1.0);
  const int y = p.add_variable(0, 1, -1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, -kInf, 1.5);
  SimplexEngine engine(p);
  ASSERT_EQ(engine.solve_from_scratch().status, SolveStatus::kOptimal);

  engine.set_variable_bounds(0, 0.0, 0.0);
  const Solution s = engine.reoptimize();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
  EXPECT_NEAR(s.x[0], 0.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.0, 1e-9);
}

TEST(SimplexEngine, ReoptimizeDetectsInfeasibility) {
  // x + y >= 2 with both fixed to 0 becomes infeasible.
  Problem p;
  const int x = p.add_variable(0, 1, 1.0);
  const int y = p.add_variable(0, 1, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, 2.0, kInf);
  SimplexEngine engine(p);
  ASSERT_EQ(engine.solve_from_scratch().status, SolveStatus::kOptimal);

  engine.set_variable_bounds(0, 0.0, 0.0);
  engine.set_variable_bounds(1, 0.0, 0.0);
  EXPECT_EQ(engine.reoptimize().status, SolveStatus::kInfeasible);

  // Relaxing again restores feasibility.
  engine.set_variable_bounds(0, 0.0, 1.0);
  engine.set_variable_bounds(1, 0.0, 1.0);
  const Solution s = engine.reoptimize();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(SimplexEngine, ReoptimizeWithoutBasisFallsBackToScratch) {
  Problem p;
  (void)p.add_variable(0, 1, -1.0);
  p.add_constraint({{0, 1.0}}, -kInf, 1.0);
  SimplexEngine engine(p);
  const Solution s = engine.reoptimize();  // no prior solve
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(SimplexEngine, StatsTrackSolvePaths) {
  Problem p;
  const int x = p.add_variable(0, 1, -1.0);
  const int y = p.add_variable(0, 1, -1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, -kInf, 1.5);
  SimplexEngine engine(p);
  EXPECT_EQ(engine.stats().scratch_solves, 0);
  (void)engine.solve_from_scratch();
  EXPECT_EQ(engine.stats().scratch_solves, 1);
  engine.set_variable_bounds(0, 0.0, 0.0);
  (void)engine.reoptimize();
  EXPECT_EQ(engine.stats().dual_reopts + engine.stats().dual_fallbacks, 1);
  EXPECT_GE(engine.stats().total_pivots, 0);
}

TEST(SimplexEngine, BoundSlackZeroWithoutPerturbation) {
  Problem p;
  (void)p.add_variable(0, 1, 1.0);
  p.add_constraint({{0, 1.0}}, 0.5, kInf);
  SimplexEngine engine(p);
  (void)engine.solve_from_scratch();
  // Tiny well-behaved LP: the anti-degeneracy perturbation never arms.
  EXPECT_DOUBLE_EQ(engine.bound_slack(), 0.0);
}

TEST(SimplexEngine, ExpiredDeadlineAbortsScratchSolve) {
  Problem p;
  const int x = p.add_variable(0, kInf, -3.0);
  const int y = p.add_variable(0, kInf, -5.0);
  p.add_constraint({{x, 1.0}}, -kInf, 4.0);
  p.add_constraint({{y, 2.0}}, -kInf, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, -kInf, 18.0);

  SimplexEngine engine(p);
  engine.set_deadline(std::chrono::steady_clock::now() -
                      std::chrono::seconds(1));
  const Solution s = engine.solve_from_scratch();
  EXPECT_EQ(s.status, SolveStatus::kTimeLimit);
  // Dropping the deadline restores normal operation on the same engine.
  engine.clear_deadline();
  EXPECT_EQ(engine.solve_from_scratch().status, SolveStatus::kOptimal);
}

TEST(SimplexEngine, ExpiredDeadlinePropagatesThroughReoptimize) {
  Problem p;
  const int x = p.add_variable(0, 1, -1.0);
  const int y = p.add_variable(0, 1, -1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, -kInf, 1.5);
  SimplexEngine engine(p);
  ASSERT_EQ(engine.solve_from_scratch().status, SolveStatus::kOptimal);

  // reoptimize() must report the deadline, NOT fall back to a scratch solve
  // (which would keep pivoting past the limit).
  engine.set_variable_bounds(0, 0.0, 0.0);
  engine.set_deadline(std::chrono::steady_clock::now() -
                      std::chrono::seconds(1));
  const Solution s = engine.reoptimize();
  EXPECT_EQ(s.status, SolveStatus::kTimeLimit);
  EXPECT_EQ(engine.stats().dual_fallbacks, 0);
}

// The property test that matters: arbitrary interleavings of fixes and
// relaxations must keep warm results identical to cold solves.
class WarmStartAgreement : public ::testing::TestWithParam<int> {};

TEST_P(WarmStartAgreement, ReoptimizeMatchesScratch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 3);
  const int n = 3 + static_cast<int>(rng.next_below(6));
  const int m = 2 + static_cast<int>(rng.next_below(6));
  Problem p;
  for (int j = 0; j < n; ++j) {
    p.add_variable(0.0, 1.0, std::floor(rng.next_double() * 21.0) - 10.0);
  }
  for (int i = 0; i < m; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.next_bernoulli(0.5)) continue;
      terms.push_back({j, std::floor(rng.next_double() * 7.0) - 3.0});
    }
    const double rhs = std::floor(rng.next_double() * 5.0) - 1.0;
    if (rng.next_bernoulli(0.5)) p.add_constraint(terms, -kInf, rhs);
    else p.add_constraint(terms, rhs - 3.0, kInf);
  }

  SimplexEngine engine(p);
  if (engine.solve_from_scratch().status != SolveStatus::kOptimal) return;

  for (int step = 0; step < 20; ++step) {
    const int j = static_cast<int>(rng.next_below(static_cast<unsigned>(n)));
    if (rng.next_bernoulli(0.3)) {
      engine.set_variable_bounds(j, 0.0, 1.0);  // relax
    } else {
      const double v = rng.next_bernoulli(0.5) ? 1.0 : 0.0;
      engine.set_variable_bounds(j, v, v);  // fix
    }
    const Solution warm = engine.reoptimize();

    SimplexEngine fresh(p);
    for (int q = 0; q < n; ++q) {
      fresh.set_variable_bounds(q, engine.col_lo(q), engine.col_up(q));
    }
    const Solution cold = fresh.solve_from_scratch();

    ASSERT_EQ(warm.status, cold.status) << "step " << step;
    if (warm.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartAgreement, ::testing::Range(0, 40));

}  // namespace
}  // namespace archex::lp
