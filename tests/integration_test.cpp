// Integration and property tests across the whole stack: template ->
// base ILP -> synthesis -> exact reliability, on randomized layered
// templates and on a non-EPS sensor-network domain. These are the
// "does the whole pipeline keep its promises" tests:
//
//  * soundness — whatever ILP-MR/ILP-AR return satisfies the requirement
//    under the *exact* analyzer;
//  * encoder equivalence — flow vs walk-indicator ADDPATH lowerings reach
//    requirement-satisfying architectures on the same instances;
//  * UNFEASIBLE honesty — when the algorithms give up, the maximally
//    redundant configuration indeed misses the requirement.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/arch_ilp.hpp"
#include "core/flow_encoder.hpp"
#include "core/ilp_ar.hpp"
#include "core/ilp_mr.hpp"
#include "ilp/solver.hpp"
#include "support/rng.hpp"

namespace archex::core {
namespace {

using graph::NodeId;
using graph::TypeId;

/// Random layered template: `layers` types with 1..3 members each, dense
/// forward candidates, tie candidates inside middle layers, random costs.
struct RandomTemplate {
  Template tmpl;
  std::vector<std::vector<NodeId>> layer;

  explicit RandomTemplate(Rng& rng, int layers) {
    layer.resize(static_cast<std::size_t>(layers));
    for (int l = 0; l < layers; ++l) {
      const int width = 1 + static_cast<int>(rng.next_below(3));
      for (int k = 0; k < width; ++k) {
        Component c;
        c.name = "n" + std::to_string(l) + "_" + std::to_string(k);
        c.type = l;
        c.cost = 10.0 + std::floor(rng.next_double() * 90.0);
        c.failure_prob = (l == layers - 1) ? 0.0 : 0.01;
        layer[static_cast<std::size_t>(l)].push_back(
            tmpl.add_component(c));
      }
    }
    for (int l = 0; l + 1 < layers; ++l) {
      for (NodeId a : layer[static_cast<std::size_t>(l)]) {
        for (NodeId b : layer[static_cast<std::size_t>(l + 1)]) {
          tmpl.add_candidate_edge(a, b, 2.0);
        }
      }
      // Ties within middle layers (bidirectional).
      if (l > 0 && layer[static_cast<std::size_t>(l)].size() >= 2) {
        const auto& ns = layer[static_cast<std::size_t>(l)];
        for (std::size_t i = 0; i + 1 < ns.size(); ++i) {
          tmpl.add_candidate_edge(ns[i], ns[i + 1], 2.0);
          tmpl.add_candidate_edge(ns[i + 1], ns[i], 2.0);
        }
      }
    }
  }

  void base_rules(ArchitectureIlp& ilp) const {
    ilp.require_all_sinks_fed();
    // Any node that feeds forward must itself be fed by the previous layer.
    for (std::size_t l = 1; l + 1 < layer.size(); ++l) {
      for (NodeId mid : layer[l]) {
        std::vector<NodeId> targets = layer[l + 1];
        targets.insert(targets.end(), layer[l].begin(), layer[l].end());
        ilp.add_conditional_predecessor_rule(targets, mid, layer[l - 1]);
      }
    }
  }
};

class SynthesisSoundness : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisSoundness, IlpMrResultsSatisfyExactRequirement) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40961 + 7);
  const RandomTemplate rt(rng, 3 + static_cast<int>(rng.next_below(2)));
  const double target = 5e-3;

  ArchitectureIlp ilp(rt.tmpl);
  rt.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  IlpMrOptions opt;
  opt.target_failure = target;
  const IlpMrReport rep = run_ilp_mr(ilp, solver, opt);

  if (rep.status == SynthesisStatus::kSuccess) {
    ASSERT_TRUE(rep.configuration.has_value());
    // The promise: exact failure below target, on every sink.
    EXPECT_LE(rep.configuration->worst_failure_probability(), target);
    // And the report agrees with an independent recomputation.
    EXPECT_NEAR(rep.failure,
                rep.configuration->worst_failure_probability(), 1e-15);
  } else {
    EXPECT_EQ(rep.status, SynthesisStatus::kUnfeasible);
    // Honesty check: even the everything-selected configuration fails.
    std::vector<bool> all(
        static_cast<std::size_t>(rt.tmpl.num_candidate_edges()), true);
    const Configuration maxed(rt.tmpl, all);
    EXPECT_GT(maxed.worst_failure_probability(), target);
  }
}

TEST_P(SynthesisSoundness, IlpArResultsSatisfyAlgebraRequirement) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const RandomTemplate rt(rng, 3);
  const double target = 5e-3;

  ArchitectureIlp ilp(rt.tmpl);
  rt.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  IlpArOptions opt;
  opt.target_failure = target;
  const IlpArReport rep = run_ilp_ar(ilp, solver, opt);

  if (rep.status == SynthesisStatus::kSuccess) {
    ASSERT_TRUE(rep.configuration.has_value());
    EXPECT_LE(rep.approx_failure, target * (1 + 1e-9));
    // The algebra value in the report is recomputable from the config.
    EXPECT_NEAR(rep.approx_failure,
                rep.configuration->worst_approximate_failure(), 1e-15);
  } else {
    EXPECT_EQ(rep.status, SynthesisStatus::kUnfeasible);
    std::vector<bool> all(
        static_cast<std::size_t>(rt.tmpl.num_candidate_edges()), true);
    const Configuration maxed(rt.tmpl, all);
    EXPECT_GT(maxed.worst_approximate_failure(), target);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisSoundness, ::testing::Range(0, 12));

// ---- a fixed three-layer template for deterministic expectations -------------

struct Fixed {
  Template tmpl;
  NodeId s1, s2, m1, m2, t;

  Fixed() {
    s1 = tmpl.add_component({"S1", 0, 10.0, 0.01, 0.0, 0.0});
    s2 = tmpl.add_component({"S2", 0, 12.0, 0.01, 0.0, 0.0});
    m1 = tmpl.add_component({"M1", 1, 5.0, 0.02, 0.0, 0.0});
    m2 = tmpl.add_component({"M2", 1, 6.0, 0.02, 0.0, 0.0});
    t = tmpl.add_component({"T", 2, 0.0, 0.0, 0.0, 0.0});
    for (NodeId s : {s1, s2}) {
      for (NodeId m : {m1, m2}) tmpl.add_candidate_edge(s, m, 1.0);
    }
    tmpl.add_candidate_edge(m1, m2, 1.0);
    tmpl.add_candidate_edge(m2, m1, 1.0);
    for (NodeId m : {m1, m2}) tmpl.add_candidate_edge(m, t, 1.0);
  }

  void base_rules(ArchitectureIlp& ilp) const {
    ilp.require_all_sinks_fed();
    for (NodeId m : {m1, m2}) {
      ilp.add_conditional_predecessor_rule({t, m1, m2}, m, {s1, s2});
    }
  }
};

// ---- encoder equivalence -------------------------------------------------------

TEST(EncoderEquivalence, FlowAndWalkIndicatorBothMeetTarget) {
  const Fixed fx;
  const double target = 5e-3;  // needs redundancy; achievable (~8e-4 max)
  ilp::BranchAndBoundSolver solver;

  for (const auto enc :
       {PathEncoding::kFlow, PathEncoding::kWalkIndicator}) {
    ArchitectureIlp ilp(fx.tmpl);
    fx.base_rules(ilp);
    IlpMrOptions opt;
    opt.target_failure = target;
    opt.encoding = enc;
    const IlpMrReport rep = run_ilp_mr(ilp, solver, opt);
    ASSERT_EQ(rep.status, SynthesisStatus::kSuccess)
        << "encoding " << static_cast<int>(enc);
    EXPECT_LE(rep.failure, target);
    EXPECT_LE(rep.configuration->worst_failure_probability(), target);
  }
}

// ---- flow encoder unit behavior -----------------------------------------------

TEST(FlowEncoder, ForcesConnectedMembers) {
  const Fixed fx;
  ArchitectureIlp ilp(fx.tmpl);
  fx.base_rules(ilp);
  FlowEncoder enc(ilp);
  enc.require_connected_members(fx.t, 0, 2);  // both sources

  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(ilp.model());
  ASSERT_TRUE(res.optimal());
  const graph::Digraph g = ilp.extract(res).selected_graph();
  const auto up = g.reaching(fx.t);
  EXPECT_TRUE(up[static_cast<std::size_t>(fx.s1)]);
  EXPECT_TRUE(up[static_cast<std::size_t>(fx.s2)]);
}

TEST(FlowEncoder, ValidatesArguments) {
  const Fixed fx;
  ArchitectureIlp ilp(fx.tmpl);
  FlowEncoder enc(ilp);
  EXPECT_THROW(enc.require_connected_members(fx.t, 0, 0), PreconditionError);
  EXPECT_THROW(enc.require_connected_members(fx.t, 99, 1), PreconditionError);
  EXPECT_THROW(enc.require_connected_members(fx.t, 0, 100),
               PreconditionError);
}

TEST(FlowEncoder, RepeatedRequirementsReuseCommodity) {
  const Fixed fx;
  ArchitectureIlp ilp(fx.tmpl);
  FlowEncoder enc(ilp);
  enc.require_connected_members(fx.t, 0, 1);
  const int vars_after_first = ilp.model().num_variables();
  const int rows_after_first = ilp.model().num_rows();
  enc.require_connected_members(fx.t, 0, 2);  // only one new row
  EXPECT_EQ(ilp.model().num_variables(), vars_after_first);
  EXPECT_EQ(ilp.model().num_rows(), rows_after_first + 1);
}

// ---- accept_incumbent behavior --------------------------------------------------

TEST(AcceptIncumbent, StrictModeReportsSolverFailureOnTinyLimits) {
  Rng rng(11);
  const RandomTemplate rt(rng, 4);
  ArchitectureIlp ilp(rt.tmpl);
  rt.base_rules(ilp);
  ilp::BranchAndBoundOptions bopt;
  bopt.max_nodes = 1;  // guarantee the proof cannot finish
  bopt.root_rounding_heuristic = false;
  ilp::BranchAndBoundSolver solver(bopt);
  IlpMrOptions opt;
  opt.target_failure = 1e-4;
  const IlpMrReport strict = run_ilp_mr(ilp, solver, opt);
  // Either the root LP was already integral (fine) or the limit tripped.
  if (strict.status != SynthesisStatus::kSuccess &&
      strict.status != SynthesisStatus::kUnfeasible) {
    EXPECT_EQ(strict.status, SynthesisStatus::kSolverFailure);
  }
}

}  // namespace
}  // namespace archex::core
