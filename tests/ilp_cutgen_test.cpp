// Unit tests for the cutting-plane separator (ilp/cutgen) and the
// cut-and-branch layer's shared state under threads: cover cuts off
// knapsack rows, clique cuts off the literal conflict graph, Gomory
// mixed-integer cuts off the simplex tableau, signature-based dedup, and
// the deterministic-mode contract with the cut layer enabled.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/arch_ilp.hpp"
#include "eps/eps_template.hpp"
#include "ilp/cutgen.hpp"
#include "ilp/model.hpp"
#include "ilp/solver.hpp"
#include "lp/engine.hpp"
#include "lp/problem.hpp"

namespace archex::ilp {
namespace {

std::vector<bool> all_true(int n) {
  return std::vector<bool>(static_cast<std::size_t>(n), true);
}

TEST(CutGen, CoverCutSeparatesFractionalKnapsackPoint) {
  // 3x0 + 3x1 + 3x2 <= 7: all three items form a minimal cover (9 > 7), so
  // the fractional point (7/9, 7/9, 7/9) — sum 7/3 > 2 — must be cut by
  // x0 + x1 + x2 <= 2.
  lp::Problem p;
  for (int j = 0; j < 3; ++j) p.add_variable(0.0, 1.0, -1.0);
  p.add_constraint({{0, 3.0}, {1, 3.0}, {2, 3.0}}, -lp::kInf, 7.0);

  const CutGenerator gen(p, all_true(3), all_true(3));
  const std::vector<double> x(3, 7.0 / 9.0);
  const std::vector<Cut> cuts = gen.separate_rowwise(x);
  ASSERT_FALSE(cuts.empty());

  bool found_cover = false;
  for (const Cut& cut : cuts) {
    EXPECT_FALSE(cut_satisfied(cut, x, 1e-7));  // must cut the point off
    if (cut.kind == Cut::Kind::kCover) found_cover = true;
    // Validity: every integer point of the knapsack satisfies the cut.
    std::vector<double> z(3);
    for (unsigned mask = 0; mask < 8; ++mask) {
      double act = 0.0;
      for (int j = 0; j < 3; ++j) {
        z[static_cast<std::size_t>(j)] = (mask >> j) & 1u ? 1.0 : 0.0;
        act += 3.0 * z[static_cast<std::size_t>(j)];
      }
      if (act > 7.0) continue;
      EXPECT_TRUE(cut_satisfied(cut, z, 1e-9)) << "mask " << mask;
    }
  }
  EXPECT_TRUE(found_cover);
}

TEST(CutGen, CliqueCutSubsumesPairwiseConflicts) {
  // Pairwise rows x_i + x_j <= 1 over three binaries admit the fractional
  // point (1/2, 1/2, 1/2); the conflict graph is a triangle, so the clique
  // cut x0 + x1 + x2 <= 1 must appear and cut the point off.
  lp::Problem p;
  for (int j = 0; j < 3; ++j) p.add_variable(0.0, 1.0, -1.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, -lp::kInf, 1.0);
  p.add_constraint({{1, 1.0}, {2, 1.0}}, -lp::kInf, 1.0);
  p.add_constraint({{0, 1.0}, {2, 1.0}}, -lp::kInf, 1.0);

  const CutGenerator gen(p, all_true(3), all_true(3));
  const std::vector<double> x(3, 0.5);
  const std::vector<Cut> cuts = gen.separate_rowwise(x);

  bool found_triangle = false;
  for (const Cut& cut : cuts) {
    EXPECT_FALSE(cut_satisfied(cut, x, 1e-7));
    if (cut.kind == Cut::Kind::kClique && cut.terms.size() == 3) {
      found_triangle = true;
      EXPECT_NEAR(cut.up, 1.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_triangle);
}

TEST(CutGen, GomoryCutReadOffOptimalTableau) {
  // min -x0 - x1 s.t. 2x0 + 2x1 <= 3 over binaries: the LP optimum has
  // x0 + x1 = 1.5 (fractional), while every integer point has x0 + x1 <= 1.
  // A Gomory cut from the optimal tableau must separate the LP point.
  lp::Problem p;
  p.add_variable(0.0, 1.0, -1.0);
  p.add_variable(0.0, 1.0, -1.0);
  p.add_constraint({{0, 2.0}, {1, 2.0}}, -lp::kInf, 3.0);

  lp::SimplexEngine engine(p, lp::SimplexOptions{});
  const lp::Solution rel = engine.solve_from_scratch();
  ASSERT_EQ(rel.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(rel.x[0] + rel.x[1], 1.5, 1e-9);

  const CutGenerator gen(p, all_true(2), all_true(2));
  const std::vector<Cut> cuts = gen.separate_gomory(engine, 4);
  ASSERT_FALSE(cuts.empty());
  for (const Cut& cut : cuts) {
    EXPECT_EQ(cut.kind, Cut::Kind::kGomory);
    EXPECT_FALSE(cut_satisfied(cut, rel.x, 1e-7));
    // Valid at every integer-feasible point of the instance.
    for (const auto& z : {std::vector<double>{0.0, 0.0},
                          std::vector<double>{1.0, 0.0},
                          std::vector<double>{0.0, 1.0}}) {
      EXPECT_TRUE(cut_satisfied(cut, z, 1e-7));
    }
  }
}

TEST(CutGen, SignatureIsOrderIndependentAndDiscriminates) {
  Cut a;
  a.terms = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  a.up = 4.0;
  Cut b = a;
  b.terms = {{2, 3.0}, {0, 1.0}, {1, 2.0}};  // permuted
  EXPECT_EQ(cut_signature(a), cut_signature(b));

  Cut c = a;
  c.terms[1].coef = 2.5;
  EXPECT_NE(cut_signature(a), cut_signature(c));
  Cut d = a;
  d.up = 5.0;
  EXPECT_NE(cut_signature(a), cut_signature(d));
}

TEST(CutGen, CutSatisfiedHonoursTolerance) {
  Cut cut;
  cut.terms = {{0, 1.0}, {1, 1.0}};
  cut.up = 1.0;
  EXPECT_TRUE(cut_satisfied(cut, {0.5, 0.5}, 1e-9));
  EXPECT_TRUE(cut_satisfied(cut, {0.5, 0.5 + 1e-8}, 1e-6));
  EXPECT_FALSE(cut_satisfied(cut, {1.0, 0.5}, 1e-6));
}

TEST(CutBranch, DeterministicParallelReproducesSerialWithCutsOn) {
  // The bit-for-bit deterministic-mode contract must survive the cut layer:
  // root cuts are installed before workers start and tree cuts sync at dive
  // boundaries, so a 4-thread deterministic run with cuts, pseudocost and
  // rc-fixing enabled explores the exact serial preorder.
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);

  BranchAndBoundOptions serial;
  serial.cuts = true;  // pseudocost + rc-fixing are already on by default
  const IlpResult s = BranchAndBoundSolver(serial).solve(ilp.model());
  ASSERT_TRUE(s.optimal());

  BranchAndBoundOptions det;
  det.cuts = true;
  det.threads = 4;
  det.deterministic = true;
  const IlpResult d = BranchAndBoundSolver(det).solve(ilp.model());
  ASSERT_TRUE(d.optimal());
  EXPECT_EQ(s.nodes_explored, d.nodes_explored);
  EXPECT_EQ(s.nodes_pruned, d.nodes_pruned);
  EXPECT_EQ(s.objective, d.objective);
  EXPECT_EQ(s.x, d.x);
  EXPECT_EQ(s.cuts_added, d.cuts_added);
}

TEST(CutBranch, SharedPoolAndPseudocostStateUnderFreeThreads) {
  // Free-running 4-thread search with deep node cuts: workers separate into
  // and attach from the shared pool concurrently while updating pseudocost
  // and rc-fixing state. Run under TSan via the `parallel` label; here we
  // assert the result is still the serial optimum and the counters moved.
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);

  BranchAndBoundOptions plain;
  plain.cuts = false;
  plain.pseudocost = false;
  plain.rc_fixing = false;
  const IlpResult base = BranchAndBoundSolver(plain).solve(ilp.model());
  ASSERT_TRUE(base.optimal());

  BranchAndBoundOptions opt;
  opt.cuts = true;
  opt.threads = 4;
  opt.node_cut_depth = 20;  // keep separating deep in the tree
  const IlpResult r = BranchAndBoundSolver(opt).solve(ilp.model());
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(base.objective, r.objective, 1e-6);
  EXPECT_GE(r.cuts_added, 0);
  EXPECT_GE(r.rc_fixings, 0);
}

TEST(CutBranch, StatsPlumbedThroughResult) {
  // On a model with an integrality gap the root loop must record its work:
  // rounds > 0 whenever cuts were added, and disabled layers report zero.
  eps::EpsSpec spec;
  spec.num_generators = 1;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);

  BranchAndBoundOptions on;
  on.cuts = true;
  const IlpResult r = BranchAndBoundSolver(on).solve(ilp.model());
  ASSERT_TRUE(r.optimal());
  if (r.cuts_added > 0) {
    EXPECT_GT(r.cut_rounds, 0);
  }

  BranchAndBoundOptions off;
  off.cuts = false;
  off.pseudocost = false;
  off.rc_fixing = false;
  const IlpResult q = BranchAndBoundSolver(off).solve(ilp.model());
  ASSERT_TRUE(q.optimal());
  EXPECT_EQ(q.cuts_added, 0);
  EXPECT_EQ(q.cut_rounds, 0);
  EXPECT_EQ(q.rc_fixings, 0);
  EXPECT_EQ(q.pseudocost_branches, 0);
  EXPECT_NEAR(r.objective, q.objective, 1e-6);
}

}  // namespace
}  // namespace archex::ilp
