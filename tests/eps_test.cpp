// Tests for the aircraft EPS case study (Section V): template generation,
// Table-I attributes, base-ILP minimal architectures, and both synthesis
// algorithms end-to-end on the 11-node instance.
#include <gtest/gtest.h>

#include "core/ilp_ar.hpp"
#include "core/ilp_mr.hpp"
#include "eps/eps_library.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"

namespace archex::eps {
namespace {

TEST(EpsLibrary, TableOneAttributes) {
  const EpsLibrary lib;
  const core::Component lg1 = lib.generator("LG1", 70.0);
  EXPECT_DOUBLE_EQ(lg1.cost, 7000.0);  // c = g/10 with g in watts
  EXPECT_DOUBLE_EQ(lg1.power_supply, 70.0);
  EXPECT_DOUBLE_EQ(lg1.failure_prob, 2e-4);
  EXPECT_DOUBLE_EQ(lib.ac_bus("B").cost, 2000.0);
  EXPECT_DOUBLE_EQ(lib.rectifier("R").cost, 2000.0);
  EXPECT_DOUBLE_EQ(lib.load("L", 30.0).cost, 0.0);
  EXPECT_DOUBLE_EQ(lib.load("L", 30.0).failure_prob, 0.0);
  EXPECT_DOUBLE_EQ(lib.load("L", 30.0).power_demand, 30.0);
}

TEST(EpsTemplate, NodeCountsScaleWithGenerators) {
  for (int g : {2, 4, 6}) {
    EpsSpec spec;
    spec.num_generators = g;
    const EpsTemplate eps = make_eps_template(spec);
    EXPECT_EQ(eps.tmpl.num_components(), 5 * g + 1) << "g=" << g;
    EXPECT_EQ(static_cast<int>(eps.generators.size()), g);
    EXPECT_EQ(static_cast<int>(eps.loads.size()), g);
    EXPECT_EQ(eps.tmpl.num_types(), kNumEpsTypes);
    EXPECT_EQ(eps.tmpl.sources().size(), static_cast<std::size_t>(g) + 1);
    EXPECT_EQ(eps.tmpl.sinks(), eps.loads);
  }
}

TEST(EpsTemplate, NoApuVariant) {
  EpsSpec spec;
  spec.num_generators = 2;
  spec.include_apu = false;
  const EpsTemplate eps = make_eps_template(spec);
  EXPECT_EQ(eps.apu, -1);
  EXPECT_EQ(eps.tmpl.num_components(), 10);
  EXPECT_EQ(eps.sources().size(), 2u);
}

TEST(EpsTemplate, SideNamingMatchesFigure1c) {
  EpsSpec spec;
  spec.num_generators = 4;
  const EpsTemplate eps = make_eps_template(spec);
  EXPECT_EQ(eps.tmpl.component(eps.generators[0]).name, "LG1");
  EXPECT_EQ(eps.tmpl.component(eps.generators[1]).name, "LG2");
  EXPECT_EQ(eps.tmpl.component(eps.generators[2]).name, "RG1");
  EXPECT_EQ(eps.tmpl.component(eps.generators[3]).name, "RG2");
  EXPECT_EQ(eps.tmpl.component(eps.loads[0]).name, "LL1");
}

TEST(EpsTemplate, CandidateEdgesFollowCompositionRules) {
  EpsSpec spec;
  spec.num_generators = 2;
  const EpsTemplate eps = make_eps_template(spec);
  // gens+APU -> AC buses: 3*2; AC ties: 2; AC->R: 4; R->DC: 4; DC ties: 2;
  // DC->loads: 4.
  EXPECT_EQ(eps.tmpl.num_candidate_edges(), 6 + 2 + 4 + 4 + 2 + 4);
  // No illegal edge classes, e.g. generator -> rectifier.
  EXPECT_FALSE(
      eps.tmpl.edge_index(eps.generators[0], eps.rectifiers[0]).has_value());
  EXPECT_FALSE(
      eps.tmpl.edge_index(eps.ac_buses[0], eps.dc_buses[0]).has_value());
}

TEST(EpsBaseIlp, MinimalArchitectureMatchesHandComputation) {
  // g=2: cheapest source covering the 40-kW demand is RG1 (50 kW, 5000);
  // chain RG1->B->R->D->{LL1,RL1} adds bus+rectifier+DC bus (3 x 2000) and
  // five contactors (5 x 1000): total 16000.
  EpsSpec spec;
  spec.num_generators = 2;
  const EpsTemplate eps = make_eps_template(spec);
  core::ArchitectureIlp ilp = make_eps_ilp(eps);
  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(ilp.model());
  ASSERT_TRUE(res.optimal());
  EXPECT_DOUBLE_EQ(res.objective, 16000.0);
  const core::Configuration cfg = ilp.extract(res);
  EXPECT_DOUBLE_EQ(cfg.total_cost(), 16000.0);
  // Single-path architecture: failure ~= p_G + p_B + p_R + p_D = 8e-4
  // (the paper's rho).
  const double r = cfg.worst_failure_probability();
  EXPECT_GT(r, 7.9e-4);
  EXPECT_LT(r, 8.0e-4);
}

TEST(EpsBaseIlp, EveryLoadFedByExactlyOneDcBus) {
  EpsSpec spec;
  spec.num_generators = 2;
  const EpsTemplate eps = make_eps_template(spec);
  core::ArchitectureIlp ilp = make_eps_ilp(eps);
  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(ilp.model());
  ASSERT_TRUE(res.optimal());
  const auto g = ilp.extract(res).selected_graph();
  for (graph::NodeId l : eps.loads) {
    EXPECT_EQ(g.predecessors(l).size(), 1u);
  }
}

TEST(EpsIlpMr, ReachesModerateTarget) {
  EpsSpec spec;
  spec.num_generators = 2;
  const EpsTemplate eps = make_eps_template(spec);
  core::ArchitectureIlp ilp = make_eps_ilp(eps);
  ilp::BranchAndBoundSolver solver;
  core::IlpMrOptions opt;
  opt.target_failure = 1e-6;
  const core::IlpMrReport rep = core::run_ilp_mr(ilp, solver, opt);
  ASSERT_EQ(rep.status, core::SynthesisStatus::kSuccess);
  EXPECT_LE(rep.failure, 1e-6);
  EXPECT_GE(rep.num_iterations(), 2);
  // Redundancy was added relative to the minimal architecture.
  EXPECT_GT(rep.configuration->total_cost(), 16000.0);
}

TEST(EpsIlpMr, UnreachableTargetIsUnfeasible) {
  // With only two of each mid-layer type the best worst-sink failure is
  // ~2.8e-7; 1e-8 cannot be met by this template.
  EpsSpec spec;
  spec.num_generators = 2;
  const EpsTemplate eps = make_eps_template(spec);
  core::ArchitectureIlp ilp = make_eps_ilp(eps);
  ilp::BranchAndBoundSolver solver;
  core::IlpMrOptions opt;
  opt.target_failure = 1e-8;
  EXPECT_EQ(core::run_ilp_mr(ilp, solver, opt).status,
            core::SynthesisStatus::kUnfeasible);
}

TEST(EpsIlpAr, AgreesWithIlpMrOnCost) {
  EpsSpec spec;
  spec.num_generators = 2;
  const EpsTemplate eps = make_eps_template(spec);
  ilp::BranchAndBoundSolver solver;

  core::ArchitectureIlp ilp_mr = make_eps_ilp(eps);
  core::IlpMrOptions mr_opt;
  mr_opt.target_failure = 1e-6;
  const auto mr = core::run_ilp_mr(ilp_mr, solver, mr_opt);

  core::ArchitectureIlp ilp_ar = make_eps_ilp(eps);
  core::IlpArOptions ar_opt;
  ar_opt.target_failure = 1e-6;
  const auto ar = core::run_ilp_ar(ilp_ar, solver, ar_opt);

  ASSERT_EQ(mr.status, core::SynthesisStatus::kSuccess);
  ASSERT_EQ(ar.status, core::SynthesisStatus::kSuccess);
  // Both meet the requirement under their own criteria...
  EXPECT_LE(mr.failure, 1e-6);
  EXPECT_LE(ar.approx_failure, 1e-6 * (1 + 1e-9));
  // ... and on this instance both find the same optimal cost.
  EXPECT_DOUBLE_EQ(mr.configuration->total_cost(),
                   ar.configuration->total_cost());
  // The algebra is optimistic but within the same order of magnitude.
  EXPECT_LE(ar.approx_failure, ar.exact_failure * 2.0);
  EXPECT_GE(ar.approx_failure, ar.exact_failure * 0.1);
}

TEST(EpsIlpAr, TightTargetAddsRedundancyAndCost) {
  EpsSpec spec;
  spec.num_generators = 2;
  const EpsTemplate eps = make_eps_template(spec);
  ilp::BranchAndBoundSolver solver;

  double previous_cost = 0.0;
  for (const double target : {2e-3, 1e-6}) {
    core::ArchitectureIlp ilp = make_eps_ilp(eps);
    core::IlpArOptions opt;
    opt.target_failure = target;
    const auto rep = core::run_ilp_ar(ilp, solver, opt);
    ASSERT_EQ(rep.status, core::SynthesisStatus::kSuccess) << target;
    EXPECT_GE(rep.configuration->total_cost(), previous_cost);
    previous_cost = rep.configuration->total_cost();
  }
  EXPECT_GT(previous_cost, 16000.0);
}

}  // namespace
}  // namespace archex::eps
