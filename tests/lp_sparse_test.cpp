// Differential tests: the sparse LU + eta-file simplex engine against the
// dense explicit-inverse oracle (SimplexOptions::dense_basis). Same pivot
// rules, different linear algebra — statuses must match exactly and
// objectives within tolerance, on random bounded LPs, on the real
// synthesis models (EPS base ILP and ILP-AR encodings), and across
// warm-start reoptimize() sequences mimicking branch-and-bound bound flips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/arch_ilp.hpp"
#include "core/ilp_ar.hpp"
#include "eps/eps_template.hpp"
#include "lp/engine.hpp"
#include "support/rng.hpp"

namespace archex::lp {
namespace {

SimplexOptions dense_options() {
  SimplexOptions opt;
  opt.dense_basis = true;
  return opt;
}

/// Random bounded LP in the style of the engine's warm-start property test,
/// but larger and with a mix of boxed / one-sided rows.
Problem random_lp(Rng& rng) {
  const int n = 4 + static_cast<int>(rng.next_below(14));
  const int m = 3 + static_cast<int>(rng.next_below(12));
  Problem p;
  for (int j = 0; j < n; ++j) {
    p.add_variable(0.0, 1.0 + std::floor(rng.next_double() * 3.0),
                   std::floor(rng.next_double() * 21.0) - 10.0);
  }
  for (int i = 0; i < m; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.next_bernoulli(0.6)) continue;
      terms.push_back({j, std::floor(rng.next_double() * 7.0) - 3.0});
    }
    const double rhs = std::floor(rng.next_double() * 5.0) - 1.0;
    if (rng.next_bernoulli(0.4)) {
      p.add_constraint(terms, -kInf, rhs);
    } else if (rng.next_bernoulli(0.5)) {
      p.add_constraint(terms, rhs - 4.0, kInf);
    } else {
      p.add_constraint(terms, rhs - 4.0, rhs);  // boxed (range) row
    }
  }
  return p;
}

void expect_agreement(const Problem& p, const char* what) {
  const Solution sparse = solve(p, SimplexOptions{});
  const Solution dense = solve(p, dense_options());
  ASSERT_EQ(sparse.status, dense.status) << what;
  if (sparse.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(sparse.objective, dense.objective, 1e-6) << what;
    ASSERT_TRUE(p.is_feasible(sparse.x, 1e-6)) << what;
  }
}

class SparseDenseAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SparseDenseAgreement, ScratchSolvesMatch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151u + 17);
  const Problem p = random_lp(rng);
  expect_agreement(p, "random LP");
}

TEST_P(SparseDenseAgreement, WarmStartSequencesMatch) {
  // Branch-and-bound-style bound flips: fix a column to an extreme, later
  // relax it, reoptimizing after every change on both representations.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9973u + 5);
  const Problem p = random_lp(rng);
  SimplexEngine sparse(p);
  SimplexEngine dense(p, dense_options());
  if (sparse.solve_from_scratch().status != SolveStatus::kOptimal) return;
  (void)dense.solve_from_scratch();

  const int n = p.num_variables();
  for (int step = 0; step < 24; ++step) {
    const int j = static_cast<int>(rng.next_below(static_cast<unsigned>(n)));
    if (rng.next_bernoulli(0.3)) {
      sparse.set_variable_bounds(j, p.col_lo(j), p.col_up(j));  // relax
      dense.set_variable_bounds(j, p.col_lo(j), p.col_up(j));
    } else {
      const double v = rng.next_bernoulli(0.5) ? p.col_up(j) : p.col_lo(j);
      sparse.set_variable_bounds(j, v, v);  // fix (branching decision)
      dense.set_variable_bounds(j, v, v);
    }
    const Solution ws = sparse.reoptimize();
    const Solution wd = dense.reoptimize();
    ASSERT_EQ(ws.status, wd.status) << "step " << step;
    if (ws.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(ws.objective, wd.objective, 1e-6) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseDenseAgreement, ::testing::Range(0, 40));

TEST(SparseEngine, MatchesDenseOnEpsBaseModel) {
  for (const int generators : {1, 2}) {
    eps::EpsSpec spec;
    spec.num_generators = generators;
    const eps::EpsTemplate eps = eps::make_eps_template(spec);
    const core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
    expect_agreement(ilp.model().to_lp(), "EPS base relaxation");
  }
}

TEST(SparseEngine, MatchesDenseOnIlpArEncoding) {
  eps::EpsSpec spec;
  spec.num_generators = 1;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
  core::IlpArOptions options;
  options.target_failure = 2e-3;
  core::encode_ilp_ar(ilp, options);
  expect_agreement(ilp.model().to_lp(), "ILP-AR relaxation");
}

TEST(SparseEngine, FullPricingOptionAgrees) {
  // pricing_candidates <= 0 restores full Dantzig/Devex scans on the
  // sparse path; the optimum must not move.
  Rng rng(12345);
  const Problem p = random_lp(rng);
  SimplexOptions full;
  full.pricing_candidates = 0;
  const Solution a = solve(p, SimplexOptions{});
  const Solution b = solve(p, full);
  ASSERT_EQ(a.status, b.status);
  if (a.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
  }
}

TEST(SparseEngine, TightEtaBudgetForcesRefactorization) {
  // A one-eta budget must refactorize after (almost) every pivot and still
  // land on the same optimum.
  Rng rng(777);
  const Problem p = random_lp(rng);
  SimplexOptions tight;
  tight.max_eta = 1;
  SimplexEngine engine(p, tight);
  const Solution s = engine.solve_from_scratch();
  const Solution ref = solve(p, dense_options());
  ASSERT_EQ(s.status, ref.status);
  if (s.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(s.objective, ref.objective, 1e-6);
    EXPECT_GT(engine.stats().refactor_eta, 0);
  }
}

TEST(SparseEngine, StatsReportBasisMaintenance) {
  eps::EpsSpec spec;
  spec.num_generators = 1;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
  const Problem p = ilp.model().to_lp();

  SimplexEngine sparse(p);
  ASSERT_EQ(sparse.solve_from_scratch().status, SolveStatus::kOptimal);
  EXPECT_GT(sparse.stats().factorizations, 0);
  EXPECT_GT(sparse.stats().eta_updates, 0);
  // Bound-flip pivots touch no basis column, so etas never exceed pivots.
  EXPECT_LE(sparse.stats().eta_updates, sparse.stats().total_pivots);
  EXPECT_GE(sparse.stats().max_eta_len, 1);

  SimplexEngine dense(p, dense_options());
  ASSERT_EQ(dense.solve_from_scratch().status, SolveStatus::kOptimal);
  EXPECT_EQ(dense.stats().eta_updates, 0);  // the oracle keeps no eta file
}

}  // namespace
}  // namespace archex::lp
