// Tests for archex::core: template/library model, configuration semantics
// (eq. 1 cost), base-ILP constraint builders (eqs. 2-4), the decision-edge
// walk-indicator encoder, and both synthesis algorithms on a small custom
// template — including a brute-force optimality cross-check for ILP-AR.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/arch_ilp.hpp"
#include "core/arch_template.hpp"
#include "core/configuration.hpp"
#include "core/ilp_ar.hpp"
#include "core/ilp_mr.hpp"
#include "core/reach_encoder.hpp"
#include "ilp/solver.hpp"

namespace archex::core {
namespace {

using graph::NodeId;

// A tiny three-layer template: 2 sources, 2 middles (tied), 1 sink.
//   S1,S2 (type 0, p=0.01) -> M1,M2 (type 1, p=0.02) -> T (type 2, p=0)
// Candidate edges: every S->M, every M->T, and the tie M1<->M2.
struct Tiny {
  Template tmpl;
  NodeId s1, s2, m1, m2, t;

  explicit Tiny(double supply = 10.0, double demand = 5.0) {
    s1 = tmpl.add_component({"S1", 0, 10.0, 0.01, supply, 0.0});
    s2 = tmpl.add_component({"S2", 0, 12.0, 0.01, supply, 0.0});
    m1 = tmpl.add_component({"M1", 1, 5.0, 0.02, supply, demand});
    m2 = tmpl.add_component({"M2", 1, 6.0, 0.02, supply, demand});
    t = tmpl.add_component({"T", 2, 0.0, 0.0, 0.0, demand});
    for (NodeId s : {s1, s2}) {
      for (NodeId m : {m1, m2}) tmpl.add_candidate_edge(s, m, 1.0);
    }
    tmpl.add_candidate_edge(m1, m2, 1.0);
    tmpl.add_candidate_edge(m2, m1, 1.0);
    for (NodeId m : {m1, m2}) tmpl.add_candidate_edge(m, t, 1.0);
  }

  void base_rules(ArchitectureIlp& ilp) const {
    ilp.require_all_sinks_fed();
    // A middle feeding the sink (or a tied middle) must itself be fed.
    for (NodeId m : {m1, m2}) {
      ilp.add_conditional_predecessor_rule({t, m1, m2}, m, {s1, s2});
    }
  }
};

// ---- Template ----------------------------------------------------------------

TEST(Template, ValidatesComponents) {
  Template t;
  EXPECT_THROW(t.add_component({"x", -1, 1.0, 0.0, 0.0, 0.0}),
               PreconditionError);
  EXPECT_THROW(t.add_component({"x", 0, -5.0, 0.0, 0.0, 0.0}),
               PreconditionError);
  EXPECT_THROW(t.add_component({"x", 0, 1.0, 1.5, 0.0, 0.0}),
               PreconditionError);
}

TEST(Template, ValidatesCandidateEdges) {
  Tiny tiny;
  EXPECT_THROW(tiny.tmpl.add_candidate_edge(tiny.s1, tiny.s1, 1.0),
               PreconditionError);
  EXPECT_THROW(tiny.tmpl.add_candidate_edge(tiny.s1, tiny.m1, 1.0),
               PreconditionError);  // duplicate
  // Reverse of an existing pair must carry the same switch cost.
  EXPECT_THROW(tiny.tmpl.add_candidate_edge(tiny.m1, tiny.s1, 99.0),
               PreconditionError);
}

TEST(Template, PartitionAndRoles) {
  const Tiny tiny;
  EXPECT_EQ(tiny.tmpl.num_components(), 5);
  EXPECT_EQ(tiny.tmpl.num_types(), 3);
  EXPECT_EQ(tiny.tmpl.sources(), (std::vector<NodeId>{tiny.s1, tiny.s2}));
  EXPECT_EQ(tiny.tmpl.sinks(), (std::vector<NodeId>{tiny.t}));
}

TEST(Template, EdgeIndexLookup) {
  const Tiny tiny;
  EXPECT_TRUE(tiny.tmpl.edge_index(tiny.s1, tiny.m1).has_value());
  EXPECT_FALSE(tiny.tmpl.edge_index(tiny.s1, tiny.t).has_value());
}

TEST(Template, TypeFailureProbsRequireHomogeneity) {
  const Tiny tiny;
  EXPECT_EQ(tiny.tmpl.type_failure_probs(),
            (std::vector<double>{0.01, 0.02, 0.0}));
  Template bad;
  bad.add_component({"a", 0, 1.0, 0.1, 0.0, 0.0});
  bad.add_component({"b", 0, 1.0, 0.2, 0.0, 0.0});
  EXPECT_THROW((void)bad.type_failure_probs(), PreconditionError);
}

// ---- Configuration -------------------------------------------------------------

TEST(Configuration, CostFollowsEquationOne) {
  const Tiny tiny;
  // Select S1->M1, M1->T: nodes S1 (10) + M1 (5) + T (0) = 15, switches 2.
  std::vector<bool> sel(static_cast<std::size_t>(tiny.tmpl.num_candidate_edges()),
                        false);
  sel[static_cast<std::size_t>(*tiny.tmpl.edge_index(tiny.s1, tiny.m1))] = true;
  sel[static_cast<std::size_t>(*tiny.tmpl.edge_index(tiny.m1, tiny.t))] = true;
  const Configuration cfg(tiny.tmpl, sel);
  EXPECT_DOUBLE_EQ(cfg.total_cost(), 17.0);
  EXPECT_EQ(cfg.num_used_nodes(), 3);
  EXPECT_EQ(cfg.num_selected_edges(), 2);
}

TEST(Configuration, BidirectionalPairChargedOnce) {
  const Tiny tiny;
  // Both tie directions selected: one contactor charge (e_ij ∨ e_ji).
  std::vector<bool> sel(static_cast<std::size_t>(tiny.tmpl.num_candidate_edges()),
                        false);
  sel[static_cast<std::size_t>(*tiny.tmpl.edge_index(tiny.m1, tiny.m2))] = true;
  sel[static_cast<std::size_t>(*tiny.tmpl.edge_index(tiny.m2, tiny.m1))] = true;
  const Configuration cfg(tiny.tmpl, sel);
  // Nodes M1 (5) + M2 (6) + one switch (1).
  EXPECT_DOUBLE_EQ(cfg.total_cost(), 12.0);
}

TEST(Configuration, FailureProbabilityMatchesClosedForm) {
  const Tiny tiny;
  // Series S1 -> M1 -> T: failure = 1 - (1-p_S)(1-p_M)(1-p_T).
  std::vector<bool> sel(static_cast<std::size_t>(tiny.tmpl.num_candidate_edges()),
                        false);
  sel[static_cast<std::size_t>(*tiny.tmpl.edge_index(tiny.s1, tiny.m1))] = true;
  sel[static_cast<std::size_t>(*tiny.tmpl.edge_index(tiny.m1, tiny.t))] = true;
  const Configuration cfg(tiny.tmpl, sel);
  EXPECT_NEAR(cfg.failure_probability(tiny.t),
              1.0 - 0.99 * 0.98, 1e-12);
  EXPECT_NEAR(cfg.worst_failure_probability(),
              cfg.failure_probability(tiny.t), 0.0);
}

TEST(Configuration, TieExpandsToParallelPaths) {
  const Tiny tiny;
  // S1->M1, tie M1<->M2 (one direction is enough), S2->M2, M1->T, M2->T:
  // two parallel chains; approximate algebra sees h = 2 everywhere.
  std::vector<bool> sel(static_cast<std::size_t>(tiny.tmpl.num_candidate_edges()),
                        false);
  for (auto [u, v] : {std::pair{tiny.s1, tiny.m1}, {tiny.s2, tiny.m2},
                      {tiny.m1, tiny.m2}, {tiny.m1, tiny.t},
                      {tiny.m2, tiny.t}}) {
    sel[static_cast<std::size_t>(*tiny.tmpl.edge_index(u, v))] = true;
  }
  const Configuration cfg(tiny.tmpl, sel);
  const rel::ApproxResult a = cfg.approximate_failure(tiny.t);
  EXPECT_EQ(a.degree[0], 2);
  EXPECT_EQ(a.degree[1], 2);
  EXPECT_NEAR(a.r_tilde, 2 * 0.01 * 0.01 + 2 * 0.02 * 0.02 + 0.0, 1e-12);
}

TEST(Configuration, DotContainsComponentNames) {
  const Tiny tiny;
  std::vector<bool> sel(static_cast<std::size_t>(tiny.tmpl.num_candidate_edges()),
                        true);
  const std::string dot = Configuration(tiny.tmpl, sel).to_dot("tiny");
  EXPECT_NE(dot.find("S1"), std::string::npos);
  EXPECT_NE(dot.find("M2"), std::string::npos);
  EXPECT_NE(dot.find("tiny"), std::string::npos);
}

TEST(Configuration, RejectsWrongSelectionSize) {
  const Tiny tiny;
  EXPECT_THROW(Configuration(tiny.tmpl, std::vector<bool>{true}),
               PreconditionError);
}

// ---- base ILP -------------------------------------------------------------------

TEST(ArchitectureIlp, MinimalSolveUsesCheapestChain) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(ilp.model());
  ASSERT_TRUE(res.optimal());
  const Configuration cfg = ilp.extract(res);
  // Cheapest chain: S1 (10) + M1 (5) + 2 switches = 17.
  EXPECT_DOUBLE_EQ(cfg.total_cost(), 17.0);
  EXPECT_DOUBLE_EQ(res.objective, 17.0);
  EXPECT_TRUE(cfg.selected_graph().connects(tiny.tmpl.sources(), tiny.t));
}

TEST(ArchitectureIlp, OutDegreeRuleEnforced) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  // Force S1 to feed both middles.
  ilp.add_out_degree_rule(tiny.s1, {tiny.m1, tiny.m2}, 2, 2);
  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(ilp.model());
  ASSERT_TRUE(res.optimal());
  const Configuration cfg = ilp.extract(res);
  EXPECT_TRUE(cfg.edge_selected(*tiny.tmpl.edge_index(tiny.s1, tiny.m1)));
  EXPECT_TRUE(cfg.edge_selected(*tiny.tmpl.edge_index(tiny.s1, tiny.m2)));
}

TEST(ArchitectureIlp, ConditionalRuleForbidsUnfedFeeders) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(ilp.model());
  ASSERT_TRUE(res.optimal());
  const Configuration cfg = ilp.extract(res);
  const graph::Digraph g = cfg.selected_graph();
  for (NodeId m : {tiny.m1, tiny.m2}) {
    if (!g.successors(m).empty()) {
      EXPECT_FALSE(g.predecessors(m).empty())
          << "middle feeds others but is unfed";
    }
  }
}

TEST(ArchitectureIlp, BalanceRuleLimitsLoadPerSource) {
  // eq. (4) is local: a source's rating counts on every edge it powers, so
  // it must be combined with an out-degree cap (as the EPS model does) to
  // force one source per middle.
  const Tiny tiny(/*supply=*/5.0, /*demand=*/5.0);
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  for (NodeId m : {tiny.m1, tiny.m2}) ilp.add_balance_rule(m);
  for (NodeId s : {tiny.s1, tiny.s2}) {
    ilp.add_out_degree_rule(s, {tiny.m1, tiny.m2}, 0, 1);
  }
  // Force both middles into the sink path.
  ilp.add_in_degree_rule(tiny.t, {tiny.m1, tiny.m2}, 2, 2);
  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(ilp.model());
  ASSERT_TRUE(res.optimal());
  const Configuration cfg = ilp.extract(res);
  // Each middle needs a 5-kW feed; with out-degree <= 1 per source, both
  // sources must appear.
  const auto used = cfg.used_nodes();
  EXPECT_TRUE(used[static_cast<std::size_t>(tiny.s1)]);
  EXPECT_TRUE(used[static_cast<std::size_t>(tiny.s2)]);
}

TEST(ArchitectureIlp, GlobalAdequacyForcesEnoughSources) {
  // Sink demand 15 > single source supply 10: adequacy needs both sources.
  const Tiny tiny(/*supply=*/10.0, /*demand=*/15.0);
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ilp.add_global_power_adequacy();
  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(ilp.model());
  ASSERT_TRUE(res.optimal());
  const Configuration cfg = ilp.extract(res);
  const auto used = cfg.used_nodes();
  EXPECT_TRUE(used[static_cast<std::size_t>(tiny.s1)]);
  EXPECT_TRUE(used[static_cast<std::size_t>(tiny.s2)]);
}

TEST(ArchitectureIlp, ExtractRequiresOptimal) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  ilp::IlpResult bogus;
  bogus.status = ilp::IlpStatus::kInfeasible;
  EXPECT_THROW((void)ilp.extract(bogus), PreconditionError);
}

// ---- reach encoder -----------------------------------------------------------

TEST(ReachEncoder, UpperOnlyForcesRealPath) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ReachEncoder enc(ilp, ReachHonesty::kUpperOnly);
  // Require two middles reach the sink within 2 hops (tie allowed).
  ilp::LinExpr count;
  count += *enc.walk_to(tiny.t, tiny.m1, 2);
  count += *enc.walk_to(tiny.t, tiny.m2, 2);
  ilp.model().add_row(std::move(count) >= 2.0);
  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(ilp.model());
  ASSERT_TRUE(res.optimal());
  const graph::Digraph g = ilp.extract(res).selected_graph();
  // Both middles must genuinely reach the sink.
  EXPECT_TRUE(g.reaching(tiny.t)[static_cast<std::size_t>(tiny.m1)]);
  EXPECT_TRUE(g.reaching(tiny.t)[static_cast<std::size_t>(tiny.m2)]);
}

TEST(ReachEncoder, ImpossibleWalkReturnsNullopt) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  ReachEncoder enc(ilp);
  // No candidate walk from the sink back to a source.
  EXPECT_FALSE(enc.walk_to(tiny.s1, tiny.t, 4).has_value());
  // Sources are trivially connected to themselves.
  const auto v = enc.from_sources(tiny.s1, 3);
  ASSERT_TRUE(v.has_value());
}

TEST(ReachEncoder, ExactModeTracksTruth) {
  // Fix a concrete edge set; in kExact mode the indicator must equal true
  // reachability in the solved model.
  for (const bool use_tie : {false, true}) {
    const Tiny tiny;
    ArchitectureIlp ilp(tiny.tmpl);
    // Select S1->M1, M1->T, optionally tie M1->M2; everything else off.
    for (int k = 0; k < tiny.tmpl.num_candidate_edges(); ++k) {
      const auto& e = tiny.tmpl.candidate_edge(k);
      const bool on =
          (e.from == tiny.s1 && e.to == tiny.m1) ||
          (e.from == tiny.m1 && e.to == tiny.t) ||
          (use_tie && e.from == tiny.m1 && e.to == tiny.m2);
      ilp.model().fix(ilp.edge_var(k), on ? 1.0 : 0.0);
    }
    ReachEncoder enc(ilp, ReachHonesty::kExact);
    const auto m2_to_sink = enc.walk_to(tiny.t, tiny.m2, 2);
    const auto m2_from_src = enc.from_sources(tiny.m2, 2);
    ASSERT_TRUE(m2_to_sink.has_value());
    ASSERT_TRUE(m2_from_src.has_value());
    ilp::BranchAndBoundSolver solver;
    const auto res = solver.solve(ilp.model());
    ASSERT_TRUE(res.optimal());
    // With the tie M1->M2 selected, M2 is reachable from sources via
    // S1->M1->M2 but M2 has no walk to the sink (tie is one-way here).
    EXPECT_FALSE(res.value_bool(*m2_to_sink));
    EXPECT_EQ(res.value_bool(*m2_from_src), use_tie);
  }
}

// ---- ILP-MR -------------------------------------------------------------------

TEST(IlpMr, AchievableTargetSucceeds) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  IlpMrOptions opt;
  opt.target_failure = 5e-3;  // needs redundancy: single chain is ~0.03
  const IlpMrReport rep = run_ilp_mr(ilp, solver, opt);
  ASSERT_EQ(rep.status, SynthesisStatus::kSuccess);
  ASSERT_TRUE(rep.configuration.has_value());
  EXPECT_LE(rep.failure, opt.target_failure);
  EXPECT_GE(rep.num_iterations(), 2);
  // Iteration costs must be non-decreasing (constraints only accumulate).
  for (std::size_t i = 1; i < rep.iterations.size(); ++i) {
    EXPECT_GE(rep.iterations[i].cost, rep.iterations[i - 1].cost - 1e-9);
  }
}

TEST(IlpMr, TrivialTargetStopsAtFirstIteration) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  IlpMrOptions opt;
  opt.target_failure = 0.5;
  const IlpMrReport rep = run_ilp_mr(ilp, solver, opt);
  ASSERT_EQ(rep.status, SynthesisStatus::kSuccess);
  EXPECT_EQ(rep.num_iterations(), 1);
  EXPECT_DOUBLE_EQ(rep.configuration->total_cost(), 17.0);
}

TEST(IlpMr, ImpossibleTargetIsUnfeasible) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  IlpMrOptions opt;
  opt.target_failure = 1e-9;  // best possible is ~ 2*(0.02)^2 ≈ 8e-4
  const IlpMrReport rep = run_ilp_mr(ilp, solver, opt);
  EXPECT_EQ(rep.status, SynthesisStatus::kUnfeasible);
}

TEST(IlpMr, LazyStrategyNeedsAtLeastAsManyIterations) {
  ilp::BranchAndBoundSolver solver;
  IlpMrOptions fast;
  fast.target_failure = 5e-3;
  IlpMrOptions lazy = fast;
  lazy.lazy_strategy = true;

  const Tiny tiny;
  ArchitectureIlp ilp_fast(tiny.tmpl);
  tiny.base_rules(ilp_fast);
  const IlpMrReport rep_fast = run_ilp_mr(ilp_fast, solver, fast);

  ArchitectureIlp ilp_lazy(tiny.tmpl);
  tiny.base_rules(ilp_lazy);
  const IlpMrReport rep_lazy = run_ilp_mr(ilp_lazy, solver, lazy);

  ASSERT_EQ(rep_fast.status, SynthesisStatus::kSuccess);
  ASSERT_EQ(rep_lazy.status, SynthesisStatus::kSuccess);
  EXPECT_GE(rep_lazy.num_iterations(), rep_fast.num_iterations());
  EXPECT_LE(rep_lazy.failure, lazy.target_failure);
}

TEST(IlpMr, ValidatesOptions) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  ilp::BranchAndBoundSolver solver;
  IlpMrOptions opt;
  opt.target_failure = 0.0;
  EXPECT_THROW((void)run_ilp_mr(ilp, solver, opt), PreconditionError);
  opt.target_failure = 1e-3;
  opt.max_iterations = 0;
  EXPECT_THROW((void)run_ilp_mr(ilp, solver, opt), PreconditionError);
}

// ---- ILP-AR -------------------------------------------------------------------

TEST(IlpAr, AchievableTargetSucceedsAndSatisfiesAlgebra) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  IlpArOptions opt;
  opt.target_failure = 5e-3;
  const IlpArReport rep = run_ilp_ar(ilp, solver, opt);
  ASSERT_EQ(rep.status, SynthesisStatus::kSuccess);
  EXPECT_LE(rep.approx_failure, opt.target_failure * (1 + 1e-9));
  EXPECT_GT(rep.num_constraints, 0);
}

TEST(IlpAr, ImpossibleTargetIsUnfeasible) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  IlpArOptions opt;
  opt.target_failure = 1e-9;
  EXPECT_EQ(run_ilp_ar(ilp, solver, opt).status,
            SynthesisStatus::kUnfeasible);
}

TEST(IlpAr, MatchesBruteForceOptimum) {
  // Enumerate all 2^10 configurations; the ILP-AR optimum must equal the
  // cheapest configuration that (a) satisfies the base interconnection
  // rules and (b) meets the approximate-algebra requirement.
  const Tiny tiny;
  const int ne = tiny.tmpl.num_candidate_edges();
  ASSERT_LE(ne, 16);
  const double target = 5e-3;

  double best = std::numeric_limits<double>::infinity();
  for (unsigned mask = 0; mask < (1u << ne); ++mask) {
    std::vector<bool> sel(static_cast<std::size_t>(ne));
    for (int k = 0; k < ne; ++k) sel[static_cast<std::size_t>(k)] = (mask >> k) & 1u;
    const Configuration cfg(tiny.tmpl, sel);
    const graph::Digraph g = cfg.selected_graph();
    // Base rules: sink fed; any middle that feeds must be fed.
    if (g.predecessors(tiny.t).empty()) continue;
    bool legal = true;
    for (NodeId m : {tiny.m1, tiny.m2}) {
      if (!g.successors(m).empty()) {
        bool fed_by_source = false;
        for (NodeId p : g.predecessors(m)) {
          if (p == tiny.s1 || p == tiny.s2) fed_by_source = true;
        }
        if (!fed_by_source) legal = false;
      }
    }
    if (!legal) continue;
    if (cfg.worst_approximate_failure() > target) continue;
    best = std::min(best, cfg.total_cost());
  }
  ASSERT_TRUE(std::isfinite(best));

  ArchitectureIlp ilp(tiny.tmpl);
  tiny.base_rules(ilp);
  ilp::BranchAndBoundSolver solver;
  IlpArOptions opt;
  opt.target_failure = target;
  const IlpArReport rep = run_ilp_ar(ilp, solver, opt);
  ASSERT_EQ(rep.status, SynthesisStatus::kSuccess);
  EXPECT_NEAR(rep.configuration->total_cost(), best, 1e-6);
}

TEST(IlpAr, ValidatesOptions) {
  const Tiny tiny;
  ArchitectureIlp ilp(tiny.tmpl);
  IlpArOptions opt;
  opt.target_failure = 1.5;
  EXPECT_THROW((void)encode_ilp_ar(ilp, opt), PreconditionError);
}

}  // namespace
}  // namespace archex::core
