// Presolve / postsolve round-trips: every reduction must preserve the
// optimal objective (up to the recorded offset), postsolved assignments
// must be feasible for the *original* problem, and the MPS writer/reader
// pair must reproduce models faithfully enough that presolve and the full
// solver agree across a write/read cycle.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/arch_ilp.hpp"
#include "eps/eps_template.hpp"
#include "ilp/model.hpp"
#include "ilp/mps.hpp"
#include "ilp/solver.hpp"
#include "lp/engine.hpp"
#include "lp/presolve.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace archex::lp {
namespace {

TEST(Presolve, FixedVariableSubstitution) {
  Problem p;
  p.add_variable(2.0, 2.0, 5.0);  // fixed: contributes 10 to the objective
  p.add_variable(0.0, 4.0, 1.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, 3.0, kInf);  // => x1 >= 1

  const PresolveResult pre = presolve(p);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.stats.fixed_variables, 1);
  EXPECT_DOUBLE_EQ(pre.objective_offset, 10.0);
  EXPECT_EQ(pre.var_map[0], -1);
  EXPECT_DOUBLE_EQ(pre.fixed_value[0], 2.0);

  const Solution reduced = solve(pre.reduced, SimplexOptions{});
  ASSERT_EQ(reduced.status, SolveStatus::kOptimal);
  const std::vector<double> full = pre.postsolve(reduced.x);
  ASSERT_EQ(static_cast<int>(full.size()), p.num_variables());
  EXPECT_TRUE(p.is_feasible(full, 1e-6));

  const Solution direct = solve(p, SimplexOptions{});
  ASSERT_EQ(direct.status, SolveStatus::kOptimal);
  EXPECT_NEAR(reduced.objective + pre.objective_offset, direct.objective,
              1e-9);
}

TEST(Presolve, SingletonRowBecomesBound) {
  Problem p;
  p.add_variable(0.0, 10.0, 1.0);
  p.add_variable(0.0, 10.0, 1.0);
  p.add_constraint({{0, 2.0}}, 6.0, kInf);  // singleton: x0 >= 3
  p.add_constraint({{0, 1.0}, {1, 1.0}}, -kInf, 12.0);

  const PresolveResult pre = presolve(p);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.singleton_rows, 1);
  EXPECT_LT(pre.reduced.num_constraints(), p.num_constraints());

  const Solution reduced = solve(pre.reduced, SimplexOptions{});
  ASSERT_EQ(reduced.status, SolveStatus::kOptimal);
  EXPECT_TRUE(p.is_feasible(pre.postsolve(reduced.x), 1e-6));
  EXPECT_NEAR(reduced.objective + pre.objective_offset, 3.0, 1e-9);
}

TEST(Presolve, EmptyAndRedundantRowsRemoved) {
  Problem p;
  p.add_variable(0.0, 1.0, -1.0);
  p.add_constraint({}, -1.0, 1.0);            // empty, satisfiable: dropped
  p.add_constraint({{0, 1.0}}, -5.0, 5.0);    // activity range [0,1]: redundant
  const PresolveResult pre = presolve(p);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.empty_rows, 1);
  EXPECT_EQ(pre.reduced.num_constraints(), 0);
}

TEST(Presolve, DetectsEmptyRowInfeasibility) {
  Problem p;
  p.add_variable(0.0, 1.0, 1.0);
  p.add_constraint({}, 1.0, kInf);  // 0 >= 1
  EXPECT_TRUE(presolve(p).infeasible);
}

TEST(Presolve, IntegralRoundingFixesAndDetectsInfeasibility) {
  {
    // 2*x >= 1 with x integral in [0,1]: x >= 0.5 rounds inward to x >= 1,
    // which fixes the column.
    Problem p;
    p.add_variable(0.0, 1.0, 3.0);
    p.add_constraint({{0, 2.0}}, 1.0, kInf);
    const PresolveResult pre = presolve(p, {true});
    ASSERT_FALSE(pre.infeasible);
    EXPECT_EQ(pre.stats.fixed_variables, 1);
    EXPECT_DOUBLE_EQ(pre.fixed_value[0], 1.0);
    EXPECT_DOUBLE_EQ(pre.objective_offset, 3.0);
  }
  {
    // 0.3 <= x <= 0.7 admits no integer: inward rounding must prove
    // infeasibility that the LP relaxation alone cannot see.
    Problem p;
    p.add_variable(0.0, 1.0, 1.0);
    p.add_constraint({{0, 1.0}}, 0.3, 0.7);
    EXPECT_FALSE(presolve(p).infeasible);        // fine as a pure LP
    EXPECT_TRUE(presolve(p, {true}).infeasible);  // impossible for an integer
  }
}

/// Smaller cousin of the generator in lp_sparse_test: enough structure to
/// exercise every reduction (fixed columns, singletons, redundant rows).
Problem random_lp(Rng& rng) {
  const int n = 3 + static_cast<int>(rng.next_below(8));
  const int m = 2 + static_cast<int>(rng.next_below(8));
  Problem p;
  for (int j = 0; j < n; ++j) {
    const double lo = 0.0;
    double up = 1.0 + std::floor(rng.next_double() * 3.0);
    if (rng.next_bernoulli(0.15)) up = lo;  // pre-fixed column
    p.add_variable(lo, up, std::floor(rng.next_double() * 21.0) - 10.0);
  }
  for (int i = 0; i < m; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.next_bernoulli(0.65)) continue;
      terms.push_back({j, std::floor(rng.next_double() * 7.0) - 3.0});
    }
    const double rhs = std::floor(rng.next_double() * 9.0) - 2.0;
    if (rng.next_bernoulli(0.5)) {
      p.add_constraint(terms, -kInf, rhs);
    } else {
      p.add_constraint(terms, rhs - 6.0, kInf);
    }
  }
  return p;
}

class PresolveRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PresolveRoundTrip, ObjectivePreservedAndPostsolveFeasible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 101);
  const Problem p = random_lp(rng);
  const Solution direct = solve(p, SimplexOptions{});
  const PresolveResult pre = presolve(p);

  if (pre.infeasible) {
    EXPECT_EQ(direct.status, SolveStatus::kInfeasible);
    return;
  }
  const Solution reduced = solve(pre.reduced, SimplexOptions{});
  ASSERT_EQ(reduced.status, direct.status);
  if (reduced.status != SolveStatus::kOptimal) return;
  EXPECT_NEAR(reduced.objective + pre.objective_offset, direct.objective,
              1e-6);
  const std::vector<double> full = pre.postsolve(reduced.x);
  EXPECT_TRUE(p.is_feasible(full, 1e-6));
  EXPECT_NEAR(p.eval_objective(full), direct.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveRoundTrip, ::testing::Range(0, 50));

TEST(Presolve, ShrinksEpsSynthesisModel) {
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
  const ilp::Model& model = ilp.model();
  const Problem p = model.to_lp();
  std::vector<bool> integer_cols(static_cast<std::size_t>(p.num_variables()));
  for (int j = 0; j < p.num_variables(); ++j) {
    integer_cols[static_cast<std::size_t>(j)] =
        model.is_integral(ilp::Var{j});
  }
  const PresolveResult pre = presolve(p, integer_cols);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_LT(pre.reduced.num_constraints(), p.num_constraints());

  const Solution reduced = solve(pre.reduced, SimplexOptions{});
  const Solution direct = solve(p, SimplexOptions{});
  ASSERT_EQ(reduced.status, SolveStatus::kOptimal);
  ASSERT_EQ(direct.status, SolveStatus::kOptimal);
  EXPECT_NEAR(reduced.objective + pre.objective_offset, direct.objective,
              1e-6);
  EXPECT_TRUE(p.is_feasible(pre.postsolve(reduced.x), 1e-6));
}

TEST(Presolve, BranchAndBoundAgreesWithPresolveOff) {
  eps::EpsSpec spec;
  spec.num_generators = 1;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);

  ilp::BranchAndBoundOptions with, without;
  without.presolve = false;
  const ilp::IlpResult a = ilp::BranchAndBoundSolver(with).solve(ilp.model());
  const ilp::IlpResult b =
      ilp::BranchAndBoundSolver(without).solve(ilp.model());
  ASSERT_EQ(a.status, b.status);
  ASSERT_TRUE(a.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
  EXPECT_GT(a.presolve_rows_removed + a.presolve_fixed_variables +
                a.presolve_bound_tightenings,
            0);
  EXPECT_EQ(b.presolve_rows_removed, 0);
}

double solve_model(const ilp::Model& model) {
  ilp::BranchAndBoundOptions opt;
  const ilp::IlpResult res = ilp::BranchAndBoundSolver(opt).solve(model);
  EXPECT_TRUE(res.optimal());
  return res.objective;
}

TEST(MpsRoundTrip, MixedIntegerModelSurvivesWriteRead) {
  // One of everything to_mps can emit: binaries, a general integer, boxed
  // and free-ish continuous columns, <=, >=, ==, and a two-sided (RANGES)
  // row, plus an objective constant that MPS is documented to drop.
  ilp::Model m;
  const ilp::Var b0 = m.add_binary("pick0");
  const ilp::Var b1 = m.add_binary("pick1");
  const ilp::Var z = m.add_integer(0.0, 7.0, "count");
  const ilp::Var x = m.add_continuous(-2.0, 5.0, "flow");
  ilp::LinExpr obj;
  obj.add_term(b0, 4.0);
  obj.add_term(b1, 3.0);
  obj.add_term(z, 2.0);
  obj.add_term(x, 1.0);
  obj += 11.0;  // objective constant: documented casualty of the round trip
  m.set_objective(obj);
  m.add_row(ilp::LinExpr(b0) + ilp::LinExpr(b1) >= 1.0, "cover");
  m.add_row(2.0 * z + 1.0 * x <= 9.0, "cap");
  m.add_row(1.0 * x - 1.0 * z == -1.0, "link");
  {
    ilp::RowSpec range;
    range.expr = 1.0 * b0 + 1.0 * z;
    range.lo = 1.0;
    range.up = 4.0;
    m.add_row(std::move(range), "window");
  }

  const std::string text = ilp::to_mps(m, "ROUNDTRIP");
  const ilp::Model back = ilp::from_mps(text);
  ASSERT_EQ(back.num_variables(), m.num_variables());
  ASSERT_EQ(back.num_rows(), m.num_rows());

  const double original = solve_model(m);
  const double reread = solve_model(back);
  EXPECT_NEAR(original - m.objective_constant(),
              reread - back.objective_constant(), 1e-6);

  // The reread model must also present the same LP relaxation to presolve.
  const PresolveResult pre_a = presolve(m.to_lp());
  const PresolveResult pre_b = presolve(back.to_lp());
  ASSERT_FALSE(pre_a.infeasible);
  ASSERT_FALSE(pre_b.infeasible);
  EXPECT_EQ(pre_a.reduced.num_variables(), pre_b.reduced.num_variables());
  EXPECT_EQ(pre_a.reduced.num_constraints(), pre_b.reduced.num_constraints());
}

TEST(MpsRoundTrip, EpsSynthesisModelSurvivesWriteRead) {
  eps::EpsSpec spec;
  spec.num_generators = 1;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  const core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
  const ilp::Model& m = ilp.model();

  const ilp::Model back = ilp::from_mps(ilp::to_mps(m, "EPS"));
  ASSERT_EQ(back.num_variables(), m.num_variables());
  ASSERT_EQ(back.num_rows(), m.num_rows());
  const double original = solve_model(m);
  const double reread = solve_model(back);
  EXPECT_NEAR(original - m.objective_constant(),
              reread - back.objective_constant(), 1e-6);
}

const ilp::Model::StoredRow& row_named(const ilp::Model& m,
                                       const std::string& name) {
  for (int i = 0; i < m.num_rows(); ++i) {
    if (m.row(i).name == name) return m.row(i);
  }
  ARCHEX_REQUIRE(false, "no row named " + name);
}

TEST(MpsRanges, NegativeRangeWidensLAndGRowsByMagnitude) {
  // The MPS standard: a RANGES value R on an L row yields [rhs - |R|, rhs]
  // and on a G row [rhs, rhs + |R|] — the *sign* of R is irrelevant for
  // inequality rows. Pin the negative-R case, which a naive signed
  // implementation would invert.
  const std::string text =
      "NAME RNGLG\n"
      "ROWS\n"
      " N obj\n"
      " L rl\n"
      " G rg\n"
      "COLUMNS\n"
      "    x obj 1.0 rl 1.0\n"
      "    x rg 1.0\n"
      "RHS\n"
      "    RHS rl 4.0 rg 1.0\n"
      "RANGES\n"
      "    RNG rl -3.0 rg -5.0\n"
      "BOUNDS\n"
      " MI BND x\n"
      "ENDATA\n";
  const ilp::Model m = ilp::from_mps(text);
  const auto& rl = row_named(m, "rl");
  EXPECT_DOUBLE_EQ(rl.lo, 1.0);  // 4 - |-3|
  EXPECT_DOUBLE_EQ(rl.up, 4.0);
  const auto& rg = row_named(m, "rg");
  EXPECT_DOUBLE_EQ(rg.lo, 1.0);
  EXPECT_DOUBLE_EQ(rg.up, 6.0);  // 1 + |-5|
}

TEST(MpsRanges, SignedRangeSelectsSideOnERows) {
  // On an E row the sign of R picks the side the row widens to:
  // R >= 0 gives [rhs, rhs + R], R < 0 gives [rhs + R, rhs].
  const std::string text =
      "NAME RNGE\n"
      "ROWS\n"
      " N obj\n"
      " E rpos\n"
      " E rneg\n"
      "COLUMNS\n"
      "    x obj 1.0 rpos 1.0\n"
      "    x rneg 1.0\n"
      "RHS\n"
      "    RHS rpos 2.0 rneg 2.0\n"
      "RANGES\n"
      "    RNG rpos 1.5 rneg -1.5\n"
      "BOUNDS\n"
      " MI BND x\n"
      "ENDATA\n";
  const ilp::Model m = ilp::from_mps(text);
  const auto& rpos = row_named(m, "rpos");
  EXPECT_DOUBLE_EQ(rpos.lo, 2.0);
  EXPECT_DOUBLE_EQ(rpos.up, 3.5);
  const auto& rneg = row_named(m, "rneg");
  EXPECT_DOUBLE_EQ(rneg.lo, 0.5);
  EXPECT_DOUBLE_EQ(rneg.up, 2.0);
}

TEST(MpsRanges, NegativeBoundRangeRowsSurviveWriteRead) {
  // Two-sided rows whose bounds are both negative exercise the writer's
  // L + RANGES encoding with a negative RHS; the reread model must
  // reproduce the exact interval, not just an equisatisfiable one.
  ilp::Model m;
  const ilp::Var x = m.add_continuous(-10.0, 10.0, "x");
  const ilp::Var y = m.add_continuous(-10.0, 10.0, "y");
  m.set_objective(1.0 * x + 2.0 * y);
  {
    ilp::RowSpec win;
    win.expr = 1.0 * x + 1.0 * y;
    win.lo = -4.0;
    win.up = -1.0;
    m.add_row(std::move(win), "negwin");
  }
  {
    ilp::RowSpec straddle;
    straddle.expr = 1.0 * x - 1.0 * y;
    straddle.lo = -2.5;
    straddle.up = 3.5;
    m.add_row(std::move(straddle), "straddle");
  }

  // The writer suffixes row names for MPS uniqueness, but preserves order,
  // so rows are compared by index.
  const ilp::Model back = ilp::from_mps(ilp::to_mps(m, "NEGWIN"));
  ASSERT_EQ(back.num_rows(), m.num_rows());
  for (int i = 0; i < m.num_rows(); ++i) {
    EXPECT_NEAR(m.row(i).lo, back.row(i).lo, 1e-12) << m.row(i).name;
    EXPECT_NEAR(m.row(i).up, back.row(i).up, 1e-12) << m.row(i).name;
  }

  const double original = solve_model(m);
  const double reread = solve_model(back);
  EXPECT_NEAR(original, reread, 1e-9);
}

TEST(Presolve, NearIntegerBoundsSnapInsteadOfCrossing) {
  {
    // Propagated lower bound 2.9999999/3 sits within the recognition margin
    // below 1: inward rounding must snap to 1 (fixing the binary), not leave
    // a fractional bound behind.
    Problem p;
    p.add_variable(0.0, 1.0, 5.0);
    p.add_constraint({{0, 3.0}}, 2.9999999, kInf);
    const PresolveResult pre = presolve(p, {true});
    ASSERT_FALSE(pre.infeasible);
    EXPECT_EQ(pre.stats.fixed_variables, 1);
    EXPECT_DOUBLE_EQ(pre.fixed_value[0], 1.0);
  }
  {
    // A lower bound a hair *above* an integer (within the margin) must be
    // treated as numerical noise on that integer — snapping to 1, not
    // crossing to 2. The solver's own feasibility tolerance accepts x = 1
    // against this row, so presolve and search must agree.
    Problem p;
    p.add_variable(0.0, 3.0, 1.0);
    p.add_constraint({{0, 1.0}}, 1.0000004, kInf);
    const PresolveResult pre = presolve(p, {true});
    ASSERT_FALSE(pre.infeasible);
    const Solution reduced = solve(pre.reduced, SimplexOptions{});
    ASSERT_EQ(reduced.status, SolveStatus::kOptimal);
    EXPECT_NEAR(reduced.objective + pre.objective_offset, 1.0, 1e-6);
  }
  {
    // A genuinely fractional bound (outside the margin) must still cross:
    // x >= 1.01 with x integral means x >= 2.
    Problem p;
    p.add_variable(0.0, 3.0, 1.0);
    p.add_constraint({{0, 1.0}}, 1.01, kInf);
    const PresolveResult pre = presolve(p, {true});
    ASSERT_FALSE(pre.infeasible);
    const Solution reduced = solve(pre.reduced, SimplexOptions{});
    ASSERT_EQ(reduced.status, SolveStatus::kOptimal);
    EXPECT_NEAR(reduced.objective + pre.objective_offset, 2.0, 1e-6);
  }
  {
    // Upper-bound mirror: x <= 1.9999996 keeps the integer 2 inside the box.
    Problem p;
    p.add_variable(0.0, 3.0, -1.0);  // maximize x via min -x
    p.add_constraint({{0, 1.0}}, -kInf, 1.9999996);
    const PresolveResult pre = presolve(p, {true});
    ASSERT_FALSE(pre.infeasible);
    const Solution reduced = solve(pre.reduced, SimplexOptions{});
    ASSERT_EQ(reduced.status, SolveStatus::kOptimal);
    EXPECT_NEAR(reduced.objective + pre.objective_offset, -2.0, 1e-6);
  }
}

TEST(MpsRoundTrip, RejectsMalformedInput) {
  EXPECT_THROW((void)ilp::from_mps("not an mps file"),
               PreconditionError);
  EXPECT_THROW((void)ilp::from_mps("NAME X\nROWS\n L r0\nENDATA\n"),
               PreconditionError);  // no objective row
}

}  // namespace
}  // namespace archex::lp
