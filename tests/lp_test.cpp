// Unit and property tests for the bounded-variable simplex (archex::lp).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace archex::lp {
namespace {

TEST(Problem, MergesDuplicateTerms) {
  Problem p;
  const int x = p.add_variable(0, 10);
  p.add_constraint({{x, 1.0}, {x, 2.0}}, 0, 6);
  ASSERT_EQ(p.row(0).size(), 1u);
  EXPECT_DOUBLE_EQ(p.row(0)[0].coef, 3.0);
}

TEST(Problem, DropsCancelledTerms) {
  Problem p;
  const int x = p.add_variable(0, 10);
  const int y = p.add_variable(0, 10);
  p.add_constraint({{x, 1.0}, {x, -1.0}, {y, 2.0}}, 0, 6);
  ASSERT_EQ(p.row(0).size(), 1u);
  EXPECT_EQ(p.row(0)[0].var, y);
}

TEST(Problem, FeasibilityCheck) {
  Problem p;
  const int x = p.add_variable(0, 1);
  p.add_constraint({{x, 1.0}}, 0.5, 1.0);
  EXPECT_TRUE(p.is_feasible({0.7}));
  EXPECT_FALSE(p.is_feasible({0.2}));
  EXPECT_FALSE(p.is_feasible({1.4}));
  EXPECT_FALSE(p.is_feasible({}));
}

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig).
  // As minimization: min -3x - 5y. Optimum (2, 6), objective -36.
  Problem p;
  const int x = p.add_variable(0, kInf, -3.0);
  const int y = p.add_variable(0, kInf, -5.0);
  p.add_constraint({{x, 1.0}}, -kInf, 4.0);
  p.add_constraint({{y, 2.0}}, -kInf, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, -kInf, 18.0);

  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-7);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 6.0, 1e-7);
}

TEST(Simplex, EqualityRow) {
  // min x + y  s.t. x + y = 5, x <= 3, y <= 4  -> objective 5.
  Problem p;
  const int x = p.add_variable(0, 3, 1.0);
  const int y = p.add_variable(0, 4, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, 5.0, 5.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-8);
  EXPECT_NEAR(s.x[0] + s.x[1], 5.0, 1e-8);
}

TEST(Simplex, RangeRow) {
  // min x  s.t. 2 <= x + y <= 3, 0 <= x,y <= 5.  Optimum x = 0.
  Problem p;
  const int x = p.add_variable(0, 5, 1.0);
  const int y = p.add_variable(0, 5, 0.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, 2.0, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-8);
  const double act = s.x[0] + s.x[1];
  EXPECT_GE(act, 2.0 - 1e-8);
  EXPECT_LE(act, 3.0 + 1e-8);
}

TEST(Simplex, InfeasibleDetected) {
  Problem p;
  const int x = p.add_variable(0, 1, 1.0);
  p.add_constraint({{x, 1.0}}, 2.0, 3.0);  // x in [0,1] can't reach 2
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, InfeasibleConflictingRows) {
  Problem p;
  const int x = p.add_variable(-10, 10, 0.0);
  const int y = p.add_variable(-10, 10, 0.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, 5.0, kInf);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, -kInf, 3.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Problem p;
  (void)p.add_variable(0, kInf, -1.0);  // min -x, x unbounded above
  const int y = p.add_variable(0, 5, 0.0);
  p.add_constraint({{y, 1.0}}, -kInf, 4.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NoRowsBoundsOnly) {
  Problem p;
  (void)p.add_variable(-2, 7, 1.0);
  (void)p.add_variable(-4, 3, -2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, -8.0, 1e-9);
}

TEST(Simplex, NoRowsUnbounded) {
  Problem p;
  p.add_variable(0, kInf, -1.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, FreeVariable) {
  // min x subject to x >= y - 2, y = 3, x free  ->  x = 1.
  Problem p;
  const int x = p.add_variable(-kInf, kInf, 1.0);
  const int y = p.add_variable(0, 10, 0.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, -2.0, kInf);
  p.add_constraint({{y, 1.0}}, 3.0, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 1.0, 1e-7);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y  s.t. x + 2y >= -4, x,y in [-3, 3].  Optimum ties along the
  // constraint; objective value is what matters: x=-3 -> 2y >= -1, y=-0.5,
  // objective -3.5.
  Problem p;
  const int x = p.add_variable(-3, 3, 1.0);
  const int y = p.add_variable(-3, 3, 1.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, -4.0, kInf);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -3.5, 1e-7);
  EXPECT_TRUE(p.is_feasible(s.x));
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Beale's classic cycling example (with Dantzig pricing this cycles
  // without anti-cycling safeguards).
  Problem p;
  const int x1 = p.add_variable(0, kInf, -0.75);
  const int x2 = p.add_variable(0, kInf, 150.0);
  const int x3 = p.add_variable(0, kInf, -0.02);
  const int x4 = p.add_variable(0, kInf, 6.0);
  p.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}}, -kInf, 0.0);
  p.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}}, -kInf, 0.0);
  p.add_constraint({{x3, 1.0}}, -kInf, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-7);
}

TEST(Simplex, SnapsBinaryRelaxationBounds) {
  // Relaxation of a binary model should return values inside [0,1].
  Problem p;
  const int a = p.add_variable(0, 1, 1.0);
  const int b = p.add_variable(0, 1, 2.0);
  p.add_constraint({{a, 1.0}, {b, 1.0}}, 1.0, kInf);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-8);
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

// Property test: on random boxed LPs the simplex optimum must be feasible
// and must not be beaten by any sampled feasible point.
class SimplexRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomProperty, OptimumDominatesSampledFeasiblePoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = 3 + static_cast<int>(rng.next_below(5));   // 3..7 vars
  const int m = 2 + static_cast<int>(rng.next_below(5));   // 2..6 rows

  Problem p;
  for (int j = 0; j < n; ++j) {
    const double c = rng.next_double() * 4.0 - 2.0;
    p.add_variable(0.0, 1.0 + rng.next_double() * 3.0, c);
  }
  // Rows built as `a'x <= a'x0 + slack` around a random interior point x0,
  // so the problem is always feasible.
  std::vector<double> x0(static_cast<std::size_t>(n));
  for (auto& v : x0) v = rng.next_double();
  for (int i = 0; i < m; ++i) {
    std::vector<Term> terms;
    double act = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = rng.next_double() * 2.0 - 1.0;
      terms.push_back({j, a});
      act += a * x0[static_cast<std::size_t>(j)];
    }
    p.add_constraint(std::move(terms), -kInf, act + rng.next_double());
  }

  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  ASSERT_TRUE(p.is_feasible(s.x, 1e-6));

  // Sample random feasible points; none may improve on the optimum.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(j)] = rng.next_double() * p.col_up(j);
    }
    if (!p.is_feasible(x, 0.0)) continue;
    EXPECT_GE(p.eval_objective(x), s.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace archex::lp
