// Tests for the series-parallel reduction analyzer and the biased
// (importance-sampled) Monte-Carlo estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"
#include "graph/paths.hpp"
#include "rel/exact.hpp"
#include "rel/monte_carlo.hpp"
#include "rel/series_parallel.hpp"
#include "support/rng.hpp"

namespace archex::rel {
namespace {

using graph::Digraph;
using graph::NodeId;

TEST(SeriesParallel, SeriesChainMatchesFactoring) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<double> p{0.1, 0.2, 0.05};
  const auto sp = series_parallel_failure(g, {0}, 2, p);
  ASSERT_TRUE(sp.has_value());
  EXPECT_NEAR(*sp, failure_probability(g, {0}, 2, p), 1e-12);
}

TEST(SeriesParallel, ParallelChainsMatchFactoring) {
  // Example-1 topology: two disjoint G->B->D->L chains.
  Digraph g(7);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(4, 6);
  g.add_edge(1, 3);
  g.add_edge(3, 5);
  g.add_edge(5, 6);
  const std::vector<double> p{0.1, 0.1, 0.2, 0.2, 0.15, 0.15, 0.05};
  const auto sp = series_parallel_failure(g, {0, 1}, 6, p);
  ASSERT_TRUE(sp.has_value());
  EXPECT_NEAR(*sp, failure_probability(g, {0, 1}, 6, p), 1e-12);
}

TEST(SeriesParallel, DisconnectedSinkIsCertainFailure) {
  Digraph g(3);
  g.add_edge(0, 1);
  const auto sp = series_parallel_failure(g, {0}, 2, {0.1, 0.1, 0.1});
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(*sp, 1.0);
}

TEST(SeriesParallel, WheatstoneBridgeIsIrreducible) {
  // s -> a, s -> b, a -> c, b -> c (the "bridge" a -> b makes it non-SP).
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(1, 2);  // the bridge
  g.add_edge(3, 4);
  const std::vector<double> p{0.1, 0.1, 0.1, 0.1, 0.0};
  EXPECT_FALSE(series_parallel_failure(g, {0}, 4, p).has_value());
  // Factoring still handles it, of course.
  EXPECT_GT(failure_probability(g, {0}, 4, p), 0.0);
}

// Property: wherever the reduction succeeds, it must equal factoring.
class SpAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SpAgreement, MatchesFactoringWhenReducible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2063 + 29);
  const int n = 5 + static_cast<int>(rng.next_below(5));
  Digraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_bernoulli(0.35)) g.add_edge(u, v);
    }
  }
  std::vector<double> p(static_cast<std::size_t>(n));
  for (auto& q : p) q = rng.next_double() * 0.5;
  const std::vector<NodeId> sources{0, 1};
  const NodeId sink = n - 1;
  const auto sp = series_parallel_failure(g, sources, sink, p);
  if (!sp) return;  // irreducible instance: nothing to check
  EXPECT_NEAR(*sp, failure_probability(g, sources, sink, p), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpAgreement, ::testing::Range(0, 40));

// ---- biased Monte Carlo ---------------------------------------------------------

TEST(BiasedMonteCarlo, SeesRareFailuresPlainMcCannot) {
  // Two parallel chains with p = 2e-4: exact failure ~ 1.6e-7.
  Digraph g(5);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 4);
  const std::vector<double> p{2e-4, 2e-4, 2e-4, 2e-4, 0.0};
  const double exact = failure_probability(g, {0, 1}, 4, p);
  ASSERT_LT(exact, 1e-6);

  Rng plain_rng(1);
  const auto plain = monte_carlo_failure(g, {0, 1}, 4, p, 20000, plain_rng);
  EXPECT_DOUBLE_EQ(plain.estimate, 0.0);  // blind to the rare event

  Rng biased_rng(2);
  const auto biased =
      monte_carlo_failure_biased(g, {0, 1}, 4, p, 20000, biased_rng, 0.2);
  EXPECT_GT(biased.estimate, 0.0);
  EXPECT_NEAR(biased.estimate, exact, 6.0 * biased.std_error + 1e-9);
}

TEST(BiasedMonteCarlo, UnbiasedAtModerateProbabilities) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const std::vector<double> p{0.05, 0.1, 0.15, 0.02};
  const double exact = failure_probability(g, {0}, 3, p);
  Rng rng(7);
  const auto est =
      monte_carlo_failure_biased(g, {0}, 3, p, 50000, rng, 0.25);
  EXPECT_NEAR(est.estimate, exact, 6.0 * est.std_error + 1e-4);
}

TEST(BiasedMonteCarlo, ValidatesBias) {
  Digraph g(2);
  g.add_edge(0, 1);
  Rng rng(1);
  EXPECT_THROW((void)monte_carlo_failure_biased(g, {0}, 1, {0.1, 0.1}, 10,
                                                rng, 0.0),
               PreconditionError);
  EXPECT_THROW((void)monte_carlo_failure_biased(g, {0}, 1, {0.1, 0.1}, 10,
                                                rng, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace archex::rel
