// Tests for the minimal JSON substrate (archex::json): parser, writer,
// round-trips, error handling.
#include <gtest/gtest.h>

#include <cmath>

#include "support/json.hpp"
#include "support/rng.hpp"

namespace archex::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.is_object());
  const Array& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_TRUE(a[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").is_null());
}

TEST(Json, ParsesEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, WhitespaceTolerant) {
  const Value v = parse("  {\n\t\"k\" :\r [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("k").as_array().size(), 2u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)parse(""), JsonError);
  EXPECT_THROW((void)parse("{"), JsonError);
  EXPECT_THROW((void)parse("[1,]"), JsonError);
  EXPECT_THROW((void)parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW((void)parse("tru"), JsonError);
  EXPECT_THROW((void)parse("\"unterminated"), JsonError);
  EXPECT_THROW((void)parse("1 2"), JsonError);
  EXPECT_THROW((void)parse("nan"), JsonError);
}

TEST(Json, ParseErrorsCarryLineColumnAndByte) {
  // Single-line document: the missing comma is noticed one byte after the
  // separator position (the parser reports where it stopped).
  try {
    (void)parse(R"({"a": 1 "b": 2})");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.column(), 10u);
    EXPECT_EQ(e.byte(), 9u);
    EXPECT_NE(std::string(e.what()).find("line 1, column 10 (byte 9)"),
              std::string::npos);
  }

  // Multi-line document: the error position counts newlines.
  try {
    (void)parse("{\n  \"a\": 1,\n  \"b\": ?\n}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 8u);
    EXPECT_EQ(e.byte(), 19u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Json, ParseErrorAtEndOfInputPointsPastLastByte) {
  try {
    (void)parse("[1, 2");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.byte(), 5u);
  }
  // Every malformed-input error is the position-carrying subtype.
  EXPECT_THROW((void)parse("tru"), JsonParseError);
  EXPECT_THROW((void)parse(""), JsonParseError);
}

TEST(Json, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW((void)v.as_object(), JsonError);
  EXPECT_THROW((void)v.as_string(), JsonError);
  EXPECT_THROW((void)parse("1.5").as_int(), JsonError);
}

TEST(Json, ObjectAccessHelpers) {
  const Value v = parse(R"({"x": 1})");
  EXPECT_TRUE(v.contains("x"));
  EXPECT_FALSE(v.contains("y"));
  EXPECT_THROW((void)v.at("y"), JsonError);
  EXPECT_DOUBLE_EQ(v.get("y", Value(7.0)).as_number(), 7.0);
}

TEST(Json, DumpCompactAndPretty) {
  const Value v = parse(R"({"b": [1, 2], "a": "x"})");
  // std::map ordering: keys sorted.
  EXPECT_EQ(dump(v), R"({"a":"x","b":[1,2]})");
  const std::string pretty = dump(v, 2);
  EXPECT_NE(pretty.find("\n  \"a\": \"x\""), std::string::npos);
}

TEST(Json, DumpEscapesSpecials) {
  const Value v = Value(std::string("a\"b\\c\nd\x01"));
  EXPECT_EQ(dump(v), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double n : {0.0, -1.0, 3.14159265358979, 2e-10, 1e15, -7.25}) {
    const Value v = parse(dump(Value(n)));
    EXPECT_DOUBLE_EQ(v.as_number(), n);
  }
}

TEST(Json, RandomRoundTripProperty) {
  Rng rng(2718);
  // Generate random documents, dump, reparse, dump again: fixed point.
  for (int trial = 0; trial < 50; ++trial) {
    // Build a random value tree of bounded depth.
    struct Gen {
      Rng& rng;
      Value value(int depth) {
        const auto pick = rng.next_below(depth >= 3 ? 4 : 6);
        switch (pick) {
          case 0: return Value(nullptr);
          case 1: return Value(rng.next_bernoulli(0.5));
          case 2: return Value(std::floor(rng.next_double() * 1000) / 8);
          case 3: return Value("s" + std::to_string(rng.next_below(100)));
          case 4: {
            Array a;
            const auto n = rng.next_below(4);
            for (std::uint64_t i = 0; i < n; ++i) {
              a.push_back(value(depth + 1));
            }
            return Value(std::move(a));
          }
          default: {
            Object o;
            const auto n = rng.next_below(4);
            for (std::uint64_t i = 0; i < n; ++i) {
              o.emplace("k" + std::to_string(i), value(depth + 1));
            }
            return Value(std::move(o));
          }
        }
      }
    } gen{rng};
    const Value v = gen.value(0);
    const std::string once = dump(v, 2);
    const std::string twice = dump(parse(once), 2);
    EXPECT_EQ(once, twice);
    // Compact form reparses identically too.
    EXPECT_EQ(dump(parse(dump(v))), dump(v));
  }
}

}  // namespace
}  // namespace archex::json
