// Tests for archex::rel: the two exact analyzers against closed forms and
// each other, the Monte-Carlo estimator, the approximate reliability algebra
// (Example 1 of the paper), and the Theorem-2 optimism bound.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"
#include "graph/paths.hpp"
#include "rel/approx.hpp"
#include "rel/exact.hpp"
#include "rel/monte_carlo.hpp"
#include "support/rng.hpp"

namespace archex::rel {
namespace {

using graph::Digraph;
using graph::NodeId;
using graph::Partition;

// ---- closed-form fixtures ---------------------------------------------------

// Series chain G -> B -> L.
struct Series {
  Digraph g{3};
  std::vector<double> p;
  Series(double pg, double pb, double pl) : p{pg, pb, pl} {
    g.add_edge(0, 1);
    g.add_edge(1, 2);
  }
  [[nodiscard]] double closed_form() const {
    return 1.0 - (1.0 - p[0]) * (1.0 - p[1]) * (1.0 - p[2]);
  }
};

// The architecture of Fig. 1b / Example 1: two disjoint chains
// G1->B1->D1->L and G2->B2->D2->L sharing the sink L.
// Node ids: G1=0 G2=1 B1=2 B2=3 D1=4 D2=5 L=6.
struct Example1 {
  Digraph g{7};
  Partition part{{0, 0, 1, 1, 2, 2, 3}};
  std::vector<double> p;
  Example1(double pg, double pb, double pd, double pl)
      : p{pg, pg, pb, pb, pd, pd, pl} {
    g.add_edge(0, 2);
    g.add_edge(2, 4);
    g.add_edge(4, 6);
    g.add_edge(1, 3);
    g.add_edge(3, 5);
    g.add_edge(5, 6);
  }
  // r_L = p_L + (1-p_L) * {p_D + (1-p_D)[p_B + (1-p_B) p_G]}^2   (paper).
  [[nodiscard]] double closed_form() const {
    const double pg = p[0], pb = p[2], pd = p[4], pl = p[6];
    const double chain = pd + (1 - pd) * (pb + (1 - pb) * pg);
    return pl + (1 - pl) * chain * chain;
  }
};

// ---- exact methods -----------------------------------------------------------

TEST(Exact, SeriesChainMatchesClosedForm) {
  const Series s(0.1, 0.2, 0.05);
  for (ExactMethod m :
       {ExactMethod::kFactoring, ExactMethod::kInclusionExclusion,
        ExactMethod::kSeriesParallelAuto}) {
    EXPECT_NEAR(failure_probability(s.g, {0}, 2, s.p, m), s.closed_form(),
                1e-12);
  }
}

TEST(Exact, Example1MatchesPaperClosedForm) {
  const Example1 e(2e-4, 2e-4, 2e-4, 0.0);
  for (ExactMethod m :
       {ExactMethod::kFactoring, ExactMethod::kInclusionExclusion,
        ExactMethod::kSeriesParallelAuto}) {
    EXPECT_NEAR(failure_probability(e.g, {0, 1}, 6, e.p, m), e.closed_form(),
                1e-15);
  }
}

TEST(Exact, Example1LargeProbabilities) {
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  const double truth = e.closed_form();
  EXPECT_NEAR(
      failure_probability(e.g, {0, 1}, 6, e.p, ExactMethod::kFactoring),
      truth, 1e-12);
  EXPECT_NEAR(failure_probability(e.g, {0, 1}, 6, e.p,
                                  ExactMethod::kInclusionExclusion),
              truth, 1e-12);
}

TEST(Exact, SinkIsSource) {
  Digraph g(2);
  g.add_edge(0, 1);
  // Sink == the only source: fails exactly when it fails itself.
  EXPECT_NEAR(failure_probability(g, {0}, 0, {0.25, 0.5}), 0.25, 1e-15);
}

TEST(Exact, DisconnectedSinkFailsCertainly) {
  Digraph g(3);
  g.add_edge(0, 1);  // node 2 isolated
  EXPECT_DOUBLE_EQ(failure_probability(g, {0}, 2, {0.1, 0.1, 0.1}), 1.0);
}

TEST(Exact, NoSourcesFailsCertainly) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(failure_probability(g, {}, 1, {0.0, 0.0}), 1.0);
}

TEST(Exact, CertainNodeFailureBreaksOnlyPath) {
  Series s(0.0, 1.0, 0.0);  // the middle node always fails
  EXPECT_DOUBLE_EQ(failure_probability(s.g, {0}, 2, s.p), 1.0);
}

TEST(Exact, PerfectComponentsNeverFail) {
  const Example1 e(0.0, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(failure_probability(e.g, {0, 1}, 6, e.p), 0.0);
}

TEST(Exact, SharedMiddleNodeDominates) {
  // Two sources funnel through one bus: r = p_bus (+ terms) for p_sink = 0.
  Digraph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const std::vector<double> p{0.1, 0.1, 0.2, 0.0};
  // Fails iff bus fails or both sources fail.
  const double truth = 0.2 + 0.8 * (0.1 * 0.1);
  for (ExactMethod m :
       {ExactMethod::kFactoring, ExactMethod::kInclusionExclusion}) {
    EXPECT_NEAR(failure_probability(g, {0, 1}, 3, p, m), truth, 1e-12);
  }
}

TEST(Exact, ValidatesInputs) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW((void)failure_probability(g, {0}, 5, {0.1, 0.1}),
               PreconditionError);
  EXPECT_THROW((void)failure_probability(g, {0}, 1, {0.1}),
               PreconditionError);
  EXPECT_THROW((void)failure_probability(g, {0}, 1, {0.1, 1.5}),
               PreconditionError);
  EXPECT_THROW((void)failure_probability(g, {9}, 1, {0.1, 0.1}),
               PreconditionError);
}

TEST(Exact, WorstOverSinks) {
  // Sink 3 has a redundant feed, sink 4 a single chain: worst is sink 4.
  Digraph g(5);
  const Partition part({0, 0, 1, 2, 2});
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  std::vector<double> p{0.1, 0.1, 0.0, 0.0, 0.3};
  const double worst = worst_failure_probability(g, part, {3, 4}, p);
  const double r3 = failure_probability(g, {0, 1}, 3, p);
  const double r4 = failure_probability(g, {0, 1}, 4, p);
  EXPECT_DOUBLE_EQ(worst, std::max(r3, r4));
  EXPECT_GT(r4, r3);
}

// Property: the two exact methods agree on random DAGs, and Monte Carlo
// confirms within sampling error.
class ExactAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ExactAgreement, MethodsAgreeOnRandomDags) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 3);
  const int n = 5 + static_cast<int>(rng.next_below(5));  // 5..9 nodes
  Digraph g(n);
  // Random DAG: edges only forward in index order; ensure sink reachable.
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_bernoulli(0.4)) g.add_edge(u, v);
    }
  }
  std::vector<double> p(static_cast<std::size_t>(n));
  for (auto& v : p) v = rng.next_double() * 0.5;
  const NodeId sink = n - 1;
  const std::vector<NodeId> sources{0, 1};

  const double rf =
      failure_probability(g, sources, sink, p, ExactMethod::kFactoring);
  // The auto method (series-parallel with factoring fallback) must always
  // agree with plain factoring.
  EXPECT_NEAR(failure_probability(g, sources, sink, p,
                                  ExactMethod::kSeriesParallelAuto),
              rf, 1e-9);
  double ri = rf;
  try {
    ri = failure_probability(g, sources, sink, p,
                             ExactMethod::kInclusionExclusion);
  } catch (const PreconditionError&) {
    return;  // too many paths for inclusion–exclusion; skip the cross-check
  }
  EXPECT_NEAR(rf, ri, 1e-9);

  Rng mc_rng(static_cast<std::uint64_t>(GetParam()) + 555u);
  const MonteCarloResult mc =
      monte_carlo_failure(g, sources, sink, p, 20000, mc_rng);
  EXPECT_NEAR(mc.estimate, rf, std::max(5.0 * mc.std_error, 0.01));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactAgreement, ::testing::Range(0, 30));

// ---- Monte Carlo -------------------------------------------------------------

TEST(MonteCarlo, DeterministicGivenSeed) {
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  Rng a(9), b(9);
  const auto ra = monte_carlo_failure(e.g, {0, 1}, 6, e.p, 5000, a);
  const auto rb = monte_carlo_failure(e.g, {0, 1}, 6, e.p, 5000, b);
  EXPECT_DOUBLE_EQ(ra.estimate, rb.estimate);
}

TEST(MonteCarlo, MatchesExactWithinError) {
  const Example1 e(0.3, 0.2, 0.1, 0.05);
  Rng rng(123);
  const auto mc = monte_carlo_failure(e.g, {0, 1}, 6, e.p, 50000, rng);
  EXPECT_NEAR(mc.estimate, e.closed_form(), 5.0 * mc.std_error + 1e-3);
}

TEST(MonteCarlo, RejectsBadSampleCount) {
  Digraph g(1);
  Rng rng(1);
  EXPECT_THROW((void)monte_carlo_failure(g, {0}, 0, {0.1}, 0, rng),
               PreconditionError);
}

// ---- approximate algebra ------------------------------------------------------

TEST(Approx, Example1FormulaFromPaper) {
  // r̃_L = p_L + 2 p_D^2 + 2 p_B^2 + 2 p_G^2 (paper, Example 1).
  const Example1 e(2e-4, 2e-4, 2e-4, 0.0);
  const std::vector<double> p_type{2e-4, 2e-4, 2e-4, 0.0};
  const ApproxResult a = approximate_failure(e.g, e.part, 6, p_type);
  const double expected = 0.0 + 2 * std::pow(2e-4, 2) * 3;
  EXPECT_NEAR(a.r_tilde, expected, 1e-18);
  EXPECT_EQ(a.num_paths, 2);
  EXPECT_EQ(a.degree, (std::vector<int>{2, 2, 2, 1}));
  EXPECT_EQ(a.num_joint_types(), 4);
}

TEST(Approx, Example1UniformSmallP) {
  // With all components failing at probability p (including the sink):
  // r̃ = p + 6p^2 while exact r = p + 9p^2 + O(p^3) (paper).
  const double p = 1e-3;
  const Example1 e(p, p, p, p);
  const std::vector<double> p_type{p, p, p, p};
  const ApproxResult a = approximate_failure(e.g, e.part, 6, p_type);
  EXPECT_NEAR(a.r_tilde, p + 6 * p * p, 1e-12);
  // r = p + 9p^2 - 27p^3 + O(p^4): allow the cubic term.
  const double exact = failure_probability(e.g, {0, 1}, 6, e.p);
  EXPECT_NEAR(exact, p + 9 * p * p, 30 * p * p * p);
  // Same order of magnitude; optimistic within the Theorem-2 bound.
  EXPECT_GE(a.r_tilde / exact, a.optimism_bound - 1e-12);
}

TEST(Approx, NonJointTypeExcluded) {
  // Two parallel paths through different middle types: neither middle type
  // jointly implements the link, so only source and sink types contribute.
  Digraph g(4);
  const Partition part({0, 1, 2, 3});  // S, X, Y, T
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const std::vector<double> p_type{0.1, 0.2, 0.3, 0.05};
  const ApproxResult a = approximate_failure(g, part, 3, p_type);
  EXPECT_TRUE(a.jointly_implements[0]);
  EXPECT_FALSE(a.jointly_implements[1]);
  EXPECT_FALSE(a.jointly_implements[2]);
  EXPECT_TRUE(a.jointly_implements[3]);
  // h_S = 1, h_T = 1: r̃ = 0.1 + 0.05.
  EXPECT_NEAR(a.r_tilde, 0.15, 1e-12);
}

TEST(Approx, AdjacentSameTypeCollapsesInReducedPath) {
  // S -> B1 -> B2 -> T with B1,B2 the same type and consecutive: the
  // reduced path keeps one B, so h_B = 1 (series doubling adds nothing).
  Digraph g(4);
  const Partition part({0, 1, 1, 2});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  // NOTE: edge 1->2 is same-type; algebra on the raw graph treats it as a
  // serial chain. (Shorthand expansion is the caller's responsibility.)
  const std::vector<double> p_type{0.1, 0.2, 0.0};
  const ApproxResult a = approximate_failure(g, part, 3, p_type);
  EXPECT_EQ(a.degree[1], 1);
  EXPECT_NEAR(a.r_tilde, 0.1 + 0.2, 1e-12);
}

TEST(Approx, ShorthandExpansionGivesRedundancyTwo) {
  // Same graph, but after expand_same_type_shorthand the two buses become
  // parallel: h_B = 2 and the contribution drops to 2 p^2.
  Digraph g(4);
  const Partition part({0, 1, 1, 2});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const Digraph x = graph::expand_same_type_shorthand(g, part);
  const std::vector<double> p_type{0.1, 0.2, 0.0};
  const ApproxResult a = approximate_failure(x, part, 3, p_type);
  EXPECT_EQ(a.degree[1], 2);
  EXPECT_NEAR(a.r_tilde, 0.1 + 2 * 0.2 * 0.2, 1e-12);
}

TEST(Approx, BrokenLinkReportsCertainFailure) {
  Digraph g(3);
  g.add_edge(0, 1);  // sink 2 unreachable
  const Partition part({0, 1, 2});
  const ApproxResult a = approximate_failure(g, part, 2, {0.1, 0.1, 0.1});
  EXPECT_DOUBLE_EQ(a.r_tilde, 1.0);
  EXPECT_EQ(a.num_paths, 0);
}

TEST(Approx, Theorem2BoundValue) {
  // Two paths of (reduced) length 4 each, four joint types:
  // bound = m*f/M_f = 4*2/(4*4) = 0.5.
  const Example1 e(2e-4, 2e-4, 2e-4, 2e-4);
  const auto link = graph::functional_link(e.g, e.part, 6);
  const auto reduced = graph::reduced_paths(link, e.part);
  EXPECT_NEAR(theorem2_bound(reduced, e.part), 0.5, 1e-12);
}

// Property: on random layered architectures the approximation satisfies the
// Theorem-2 bound r̃/r >= m·f/M_f and stays optimistic-but-ordered.
class ApproxBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(ApproxBoundProperty, RespectsTheorem2Bound) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 11);
  // Layered template: sources / middle / sinks with 1-3 nodes per layer.
  const int layers = 3 + static_cast<int>(rng.next_below(2));
  std::vector<int> width(static_cast<std::size_t>(layers));
  std::vector<graph::TypeId> types;
  for (int l = 0; l < layers; ++l) {
    width[static_cast<std::size_t>(l)] = 1 + static_cast<int>(rng.next_below(3));
    for (int k = 0; k < width[static_cast<std::size_t>(l)]; ++k) {
      types.push_back(l);
    }
  }
  const int n = static_cast<int>(types.size());
  const Partition part(types);
  Digraph g(n);
  // Connect consecutive layers densely enough to guarantee connectivity.
  int offset = 0;
  for (int l = 0; l + 1 < layers; ++l) {
    const int wl = width[static_cast<std::size_t>(l)];
    const int wn = width[static_cast<std::size_t>(l + 1)];
    for (int a = 0; a < wl; ++a) {
      for (int b = 0; b < wn; ++b) {
        if (b == a % wn || rng.next_bernoulli(0.5)) {
          g.add_edge(offset + a, offset + wl + b);
        }
      }
    }
    offset += wl;
  }
  std::vector<double> p_type(static_cast<std::size_t>(layers));
  for (auto& v : p_type) v = rng.next_double() * 0.05;
  std::vector<double> p_node(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    p_node[static_cast<std::size_t>(v)] =
        p_type[static_cast<std::size_t>(part.type_of(v))];
  }

  const NodeId sink = n - 1;
  const ApproxResult a = approximate_failure(g, part, sink, p_type);
  const double r = failure_probability(g, part.members(0), sink, p_node);
  ASSERT_GT(r, 0.0);
  EXPECT_GE(a.r_tilde / r, a.optimism_bound * (1.0 - 1e-9))
      << "r_tilde=" << a.r_tilde << " r=" << r;
  // Same order of magnitude (within two decades) for these small p.
  EXPECT_LT(a.r_tilde / r, 100.0);
  EXPECT_GT(a.r_tilde / r, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxBoundProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace archex::rel
