// Randomized differential tests for the parallel branch & bound
// (src/ilp/branch_and_bound.cpp). Three independent implementations are
// cross-checked on seeded random 0/1 programs shaped like the rows
// ilp::Model emits for the synthesis algorithms (dense/sparse linear rows,
// Boolean OR/AND/implication linearizations, fixed variables, degenerate
// and infeasible cases):
//
//   * serial LP-based branch & bound (threads = 0, the historical path);
//   * parallel work-stealing branch & bound (1/2/4/8 threads);
//   * Balas implicit enumeration (LP-free — a genuinely different pruning
//     argument, so a shared LP bug cannot mask itself).
//
// The deterministic parallel mode is additionally required to reproduce the
// serial search bit-for-bit: same node/prune counts, same objective, same
// assignment. Golden end-to-end differentials (ILP-MR on the EPS example,
// the Pareto sweep) pin parallel synthesis results to the serial ones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/ilp_mr.hpp"
#include "core/pareto.hpp"
#include "eps/eps_template.hpp"
#include "ilp/cutgen.hpp"
#include "ilp/model.hpp"
#include "ilp/mps.hpp"
#include "ilp/solver.hpp"
#include "support/rng.hpp"

namespace archex::ilp {
namespace {

// ---- random instance generator ------------------------------------------------

/// Pick 2..max_len distinct variables out of `xs`.
std::vector<Var> pick_subset(Rng& rng, const std::vector<Var>& xs,
                             std::size_t max_len) {
  std::vector<Var> out;
  const std::size_t len =
      2 + rng.next_below(std::min(max_len, xs.size()) - 1);
  std::vector<bool> taken(xs.size(), false);
  while (out.size() < len) {
    const std::size_t j = rng.next_below(xs.size());
    if (taken[j]) continue;
    taken[j] = true;
    out.push_back(xs[j]);
  }
  return out;
}

/// A random pure-binary model: 3..12 structural variables, random linear
/// rows with right-hand sides drawn from a slightly *widened* activity range
/// (fractions in [-0.1, 1.1], so a share of instances is infeasible or
/// tightly degenerate), plus the Boolean linearization rows the synthesis
/// encoders emit. Objectives rotate through zero / integer / fractional
/// cost vectors to exercise both prune-threshold branches.
Model make_random_model(Rng& rng) {
  Model m;
  const int n = 3 + static_cast<int>(rng.next_below(10));
  std::vector<Var> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    xs.push_back(m.add_binary("x" + std::to_string(j)));
  }

  // Reference assignment z: anchors equality right-hand sides at an
  // achievable activity, so equality rows don't make nearly every instance
  // infeasible (fixed variables keep their pinned value in z).
  std::vector<double> z(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    z[static_cast<std::size_t>(j)] = rng.next_bernoulli(0.5) ? 1.0 : 0.0;
    if (rng.next_bernoulli(0.08)) m.fix(xs[static_cast<std::size_t>(j)],
                                        z[static_cast<std::size_t>(j)]);
    if (rng.next_bernoulli(0.2)) {
      m.set_branch_priority(xs[static_cast<std::size_t>(j)],
                            1 + static_cast<int>(rng.next_below(3)));
    }
  }
  const auto eval_at_z = [&](const LinExpr& e) {
    double v = e.constant();
    for (const lp::Term& t : e.terms()) {
      v += t.coef * z[static_cast<std::size_t>(t.var)];
    }
    return v;
  };

  const int rows =
      1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n + 2)));
  const bool fractional_rows = rng.next_bernoulli(0.3);
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    const double density = 0.3 + 0.6 * rng.next_double();
    for (Var v : xs) {
      if (!rng.next_bernoulli(density)) continue;
      double c = 1.0 + static_cast<double>(rng.next_below(5));
      if (fractional_rows) c += rng.next_double();
      if (rng.next_bernoulli(0.4)) c = -c;
      e.add_term(v, c);
    }
    if (e.empty()) e.add_term(xs[rng.next_below(xs.size())], 1.0);
    const auto [lo, up] = m.activity_range(e);
    const double rhs = lo + (-0.1 + 1.2 * rng.next_double()) * (up - lo);
    switch (rng.next_below(4)) {
      case 0: m.add_row(e <= rhs); break;
      case 1: m.add_row(e >= rhs); break;
      case 2:
        // Mostly satisfiable (anchored at z), sometimes a knife-edge
        // rounded value that is usually unreachable.
        m.add_row(e == (rng.next_bernoulli(0.7) ? eval_at_z(e)
                                                : std::round(rhs)));
        break;
      default: {
        const double rhs2 = lo + (-0.1 + 1.2 * rng.next_double()) * (up - lo);
        m.add_row({e, std::min(rhs, rhs2), std::max(rhs, rhs2)});
        break;
      }
    }
  }

  // Boolean linearizations, as emitted for eq. (2)/(3) and the walk
  // indicators; occasionally assert the derived variable to chain the rows
  // into the feasibility question.
  if (rng.next_bernoulli(0.5)) {
    const Var y = m.add_or(pick_subset(rng, xs, 4), "or");
    if (rng.next_bernoulli(0.5)) m.add_row(LinExpr(y) == 1.0);
  }
  if (rng.next_bernoulli(0.5)) {
    const Var y = m.add_and(pick_subset(rng, xs, 4), "and");
    if (rng.next_bernoulli(0.3)) m.add_row(LinExpr(y) == 1.0);
  }
  if (rng.next_bernoulli(0.5)) {
    const std::vector<Var> ab = pick_subset(rng, xs, 2);
    m.add_leq(ab[0], ab[1]);
  }
  if (rng.next_bernoulli(0.4)) {
    LinExpr guarded;
    for (Var v : pick_subset(rng, xs, 4)) guarded.add_term(v, 1.0);
    m.add_implication(xs[rng.next_below(xs.size())],
                      guarded >= 1.0, "imp");
  }

  LinExpr obj;
  const std::uint64_t obj_kind = rng.next_below(3);  // zero / integer / frac
  if (obj_kind != 0) {
    for (int j = 0; j < m.num_variables(); ++j) {
      double c = static_cast<double>(rng.next_below(21));
      if (obj_kind == 2) c += rng.next_double();
      if (rng.next_bernoulli(0.15)) c = -c;
      obj.add_term(Var{j}, c);
    }
    if (rng.next_bernoulli(0.3)) obj += LinExpr(7.5);
  }
  m.set_objective(obj);
  return m;
}

// ---- the differential ----------------------------------------------------------

TEST(IlpDifferential, ParallelMatchesSerialAndBalasOn240Instances) {
  Rng rng(0xd1ffe7e5717e57ULL);
  constexpr int kInstances = 240;
  constexpr int kThreadCounts[] = {1, 2, 4, 8};
  int optimal = 0;
  int infeasible = 0;

  for (int i = 0; i < kInstances; ++i) {
    const Model m = make_random_model(rng);
    ASSERT_TRUE(m.pure_binary());

    // The serial reference runs the full cut-and-branch layer (cuts are
    // opt-in; the differential is the layer's correctness harness).
    BranchAndBoundOptions sopt;
    sopt.cuts = true;
    BranchAndBoundSolver serial(sopt);
    const IlpResult s = serial.solve(m);
    ASSERT_TRUE(s.status == IlpStatus::kOptimal ||
                s.status == IlpStatus::kInfeasible)
        << "instance " << i << ": " << to_string(s.status);

    // Balas implicit enumeration: an LP-free oracle.
    BalasSolver balas;
    const IlpResult b = balas.solve(m);
    if (s.status != b.status) {
      // Dump the disagreement for offline minimization (this caught the
      // Balas fixed-variable bug: enumeration ignored Model::fix domains).
      std::cerr << "instance " << i << " serial=" << to_string(s.status)
                << " balas=" << to_string(b.status) << "\n";
      if (b.optimal()) {
        std::cerr << "balas obj=" << b.objective
                  << " feasible=" << m.is_feasible(b.x, 1e-6) << "\n";
      }
      std::cerr << to_mps(m, "differential_" + std::to_string(i)) << "\n";
    }
    ASSERT_EQ(s.status, b.status) << "instance " << i;
    if (s.optimal()) {
      ++optimal;
      ASSERT_NEAR(s.objective, b.objective, 1e-6) << "instance " << i;
      ASSERT_TRUE(m.is_feasible(s.x, 1e-5)) << "instance " << i;
      ASSERT_TRUE(m.is_feasible(b.x, 1e-5)) << "instance " << i;
    } else {
      ++infeasible;
    }

    // Free-running parallel search, rotating through the thread counts:
    // same status and objective, feasible assignment (the assignment itself
    // may be a different equal-cost optimum).
    const int threads = kThreadCounts[i % 4];
    BranchAndBoundOptions popt;
    popt.cuts = true;
    popt.threads = threads;
    const IlpResult p = BranchAndBoundSolver(popt).solve(m);
    ASSERT_EQ(s.status, p.status)
        << "instance " << i << " threads=" << threads;
    EXPECT_EQ(p.threads_used, threads >= 2 ? threads : 1);
    if (s.optimal()) {
      ASSERT_NEAR(s.objective, p.objective, 1e-6)
          << "instance " << i << " threads=" << threads;
      ASSERT_TRUE(m.is_feasible(p.x, 1e-5))
          << "instance " << i << " threads=" << threads;
    }

    // Deterministic 4-thread mode must reproduce the serial search
    // bit-for-bit: node ordering (hence node/prune counts), objective and
    // assignment.
    BranchAndBoundOptions dopt;
    dopt.cuts = true;
    dopt.threads = 4;
    dopt.deterministic = true;
    const IlpResult d = BranchAndBoundSolver(dopt).solve(m);
    ASSERT_EQ(s.status, d.status) << "instance " << i;
    EXPECT_EQ(s.nodes_explored, d.nodes_explored) << "instance " << i;
    EXPECT_EQ(s.nodes_pruned, d.nodes_pruned) << "instance " << i;
    if (s.optimal()) {
      EXPECT_EQ(s.objective, d.objective) << "instance " << i;
      EXPECT_EQ(s.x, d.x) << "instance " << i;
    }
  }

  // The generator must actually exercise both terminal states.
  EXPECT_GE(optimal, 50);
  EXPECT_GE(infeasible, 20);
}

TEST(IlpDifferential, SerialStatsAreUnchangedByThreadsOne) {
  // threads = 1 must take the exact serial path (no pool, no donation).
  Rng rng(0x0123456789abcdefULL);
  for (int i = 0; i < 20; ++i) {
    const Model m = make_random_model(rng);
    BranchAndBoundOptions one;
    one.threads = 1;
    const IlpResult s = BranchAndBoundSolver().solve(m);
    const IlpResult p = BranchAndBoundSolver(one).solve(m);
    EXPECT_EQ(s.status, p.status) << "instance " << i;
    EXPECT_EQ(s.nodes_explored, p.nodes_explored) << "instance " << i;
    EXPECT_EQ(p.steal_count, 0) << "instance " << i;
    EXPECT_EQ(p.threads_used, 1) << "instance " << i;
    if (s.optimal()) EXPECT_EQ(s.x, p.x) << "instance " << i;
  }
}

// ---- cut-and-branch differentials ----------------------------------------------

/// The cut layer, pseudocost branching and reduced-cost fixing must never
/// change *what* is found, only how fast: every configuration agrees with
/// the plain B&B on status and objective, serially and at 4 threads.
TEST(IlpDifferential, CutAndBranchConfigsAgreeWithPlainSearch) {
  Rng rng(0xc075a9e5eedULL);
  for (int i = 0; i < 60; ++i) {
    const Model m = make_random_model(rng);

    BranchAndBoundOptions plain;
    plain.cuts = false;
    plain.pseudocost = false;
    plain.rc_fixing = false;
    const IlpResult base = BranchAndBoundSolver(plain).solve(m);
    ASSERT_TRUE(base.status == IlpStatus::kOptimal ||
                base.status == IlpStatus::kInfeasible)
        << "instance " << i;

    struct Config {
      const char* name;
      bool cuts;
      bool pseudocost;
      bool rc_fixing;
    };
    constexpr Config kConfigs[] = {
        {"cuts", true, false, false},
        {"pseudocost", false, true, false},
        {"full", true, true, true},
    };
    for (const Config& cfg : kConfigs) {
      for (const int threads : {0, 4}) {
        BranchAndBoundOptions opt;
        opt.cuts = cfg.cuts;
        opt.pseudocost = cfg.pseudocost;
        opt.rc_fixing = cfg.rc_fixing;
        opt.threads = threads;
        const IlpResult r = BranchAndBoundSolver(opt).solve(m);
        ASSERT_EQ(base.status, r.status)
            << "instance " << i << " config=" << cfg.name
            << " threads=" << threads;
        if (base.optimal()) {
          ASSERT_NEAR(base.objective, r.objective, 1e-6)
              << "instance " << i << " config=" << cfg.name
              << " threads=" << threads;
          ASSERT_TRUE(m.is_feasible(r.x, 1e-5))
              << "instance " << i << " config=" << cfg.name
              << " threads=" << threads;
        }
      }
    }
  }
}

// ---- conflict-learning differentials -------------------------------------------

/// Nogood learning (DESIGN.md §4g) must never change *what* is found:
/// learning-on agrees with learning-off on status and objective serially
/// and under the work-stealing search, and the deterministic 4-thread mode
/// stays bit-for-bit identical to the serial search with learning active
/// (the shared store is synced at dive boundaries, never mid-dive).
TEST(IlpDifferential, LearningAgreesWithLearningOffOn240Instances) {
  Rng rng(0x1ea5e900d5ULL);
  constexpr int kInstances = 240;
  long learned_total = 0;
  for (int i = 0; i < kInstances; ++i) {
    const Model m = make_random_model(rng);

    BranchAndBoundOptions off;
    off.learning = false;
    const IlpResult base = BranchAndBoundSolver(off).solve(m);
    ASSERT_TRUE(base.status == IlpStatus::kOptimal ||
                base.status == IlpStatus::kInfeasible)
        << "instance " << i;

    for (const int threads : {1, 4}) {
      BranchAndBoundOptions on;
      on.learning = true;
      on.threads = threads;
      const IlpResult r = BranchAndBoundSolver(on).solve(m);
      learned_total += r.nogoods_learned;
      ASSERT_EQ(base.status, r.status)
          << "instance " << i << " threads=" << threads;
      if (base.optimal()) {
        ASSERT_NEAR(base.objective, r.objective, 1e-6)
            << "instance " << i << " threads=" << threads;
        ASSERT_TRUE(m.is_feasible(r.x, 1e-5))
            << "instance " << i << " threads=" << threads;
      }
    }

    // Deterministic 4-thread with learning == serial with learning,
    // bit-for-bit (counts, objective, assignment — and the learning
    // counters themselves, since the store evolves identically).
    BranchAndBoundOptions sopt;
    sopt.learning = true;
    const IlpResult s = BranchAndBoundSolver(sopt).solve(m);
    BranchAndBoundOptions dopt = sopt;
    dopt.threads = 4;
    dopt.deterministic = true;
    const IlpResult d = BranchAndBoundSolver(dopt).solve(m);
    ASSERT_EQ(s.status, d.status) << "instance " << i;
    EXPECT_EQ(s.nodes_explored, d.nodes_explored) << "instance " << i;
    EXPECT_EQ(s.nodes_pruned, d.nodes_pruned) << "instance " << i;
    EXPECT_EQ(s.nogoods_learned, d.nogoods_learned) << "instance " << i;
    EXPECT_EQ(s.nogood_prunings, d.nogood_prunings) << "instance " << i;
    if (s.optimal()) {
      EXPECT_EQ(s.objective, d.objective) << "instance " << i;
      EXPECT_EQ(s.x, d.x) << "instance " << i;
    }
  }
  // The differential is vacuous unless conflicts were actually learned.
  EXPECT_GE(learned_total, 100);
}

// ---- reduced-cost fixing regression --------------------------------------------

/// Reduced-cost fixing is derived outside the incumbent lock from the
/// atomic bound (see try_accept_incumbent): a fixing computed against a
/// stale — higher — cutoff satisfies a harder condition, so it can never
/// cut off the optimum. Pin that on an instance where the fixing provably
/// fires: an expensive variable the root LP prices far above the gap.
TEST(IlpDifferential, RcFixingFromStaleIncumbentKeepsTheOptimum) {
  Model m;
  std::vector<Var> xs;
  for (int j = 0; j < 6; ++j) {
    xs.push_back(m.add_binary("x" + std::to_string(j)));
  }
  // 2·Σx >= 3 forces a fractional root (x = 1/2 vertex) and an integral
  // optimum of two variables; the last variable is priced so far above the
  // others that root_bound + |d| clears any reachable cutoff.
  LinExpr row;
  for (Var v : xs) row.add_term(v, 2.0);
  m.add_row(row >= 3.0);
  LinExpr obj;
  const double costs[] = {1.1, 1.2, 1.3, 1.4, 1.5, 10.0};
  for (std::size_t j = 0; j < xs.size(); ++j) obj.add_term(xs[j], costs[j]);
  m.set_objective(obj);

  BranchAndBoundOptions serial;  // rc_fixing defaults on
  const IlpResult s = BranchAndBoundSolver(serial).solve(m);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.3, 1e-9);
  EXPECT_GT(s.rc_fixings, 0);

  // The fixing must be outcome-neutral in every execution mode, including
  // the racy free-running pool where incumbents republish concurrently.
  for (const bool deterministic : {true, false}) {
    BranchAndBoundOptions popt;
    popt.threads = 4;
    popt.deterministic = deterministic;
    const IlpResult p = BranchAndBoundSolver(popt).solve(m);
    ASSERT_EQ(p.status, IlpStatus::kOptimal)
        << "deterministic=" << deterministic;
    EXPECT_NEAR(p.objective, 2.3, 1e-9)
        << "deterministic=" << deterministic;
    if (deterministic) {
      EXPECT_EQ(s.nodes_explored, p.nodes_explored);
      EXPECT_EQ(s.x, p.x);
    }
  }
}

/// Every separated cut must be valid: satisfied by *every* integer-feasible
/// point of the instance (brute-forced over the full 0/1 hypercube), while
/// genuinely cutting off the fractional LP optimum it was separated at.
TEST(IlpDifferential, SeparatedCutsValidOnEveryFeasiblePoint) {
  Rng rng(0x5eedc10c5ULL);
  int cuts_checked = 0;
  for (int i = 0; i < 80; ++i) {
    const Model m = make_random_model(rng);
    const int n = m.num_variables();
    if (n > 16) continue;
    const lp::Problem p = m.to_lp();

    std::vector<bool> is_binary(static_cast<std::size_t>(n));
    std::vector<bool> is_integer(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const bool box01 = p.col_lo(j) == 0.0 && p.col_up(j) == 1.0;
      is_binary[static_cast<std::size_t>(j)] = box01;
      is_integer[static_cast<std::size_t>(j)] = true;
    }

    const lp::Solution rel = lp::solve(p, lp::SimplexOptions{});
    if (rel.status != lp::SolveStatus::kOptimal) continue;

    CutGenerator gen(p, is_binary, is_integer);
    std::vector<Cut> cuts = gen.separate_rowwise(rel.x);
    {
      lp::SimplexEngine engine(p, lp::SimplexOptions{});
      const lp::Solution es = engine.solve_from_scratch();
      if (es.status == lp::SolveStatus::kOptimal) {
        const std::vector<Cut> gomory = gen.separate_gomory(engine, 8);
        cuts.insert(cuts.end(), gomory.begin(), gomory.end());
      }
    }
    if (cuts.empty()) continue;

    // Each cut must be violated at the LP point it was separated from.
    for (const Cut& cut : cuts) {
      EXPECT_FALSE(cut_satisfied(cut, rel.x, 1e-7))
          << "instance " << i << ": cut does not cut off the LP optimum";
    }

    // ... and satisfied at every integer-feasible point.
    std::vector<double> z(static_cast<std::size_t>(n));
    for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
      bool in_box = true;
      for (int j = 0; j < n; ++j) {
        z[static_cast<std::size_t>(j)] =
            (mask >> j) & 1u ? 1.0 : 0.0;
        if (z[static_cast<std::size_t>(j)] < p.col_lo(j) - 0.5 ||
            z[static_cast<std::size_t>(j)] > p.col_up(j) + 0.5) {
          in_box = false;
          break;
        }
      }
      if (!in_box || !m.is_feasible(z, 1e-6)) continue;
      for (std::size_t c = 0; c < cuts.size(); ++c) {
        ASSERT_TRUE(cut_satisfied(cuts[c], z, 1e-6))
            << "instance " << i << " cut " << c << " mask " << mask;
      }
    }
    cuts_checked += static_cast<int>(cuts.size());
  }
  // The generator must have actually exercised the validity check.
  EXPECT_GE(cuts_checked, 20);
}

// ---- kTimeLimit regression -----------------------------------------------------

/// A worker tripping the wall-clock limit mid-dive must surface kTimeLimit
/// as the whole solve's status even when other workers drain their subtrees
/// cleanly afterwards (the abort status is first-writer-wins). Market-split
/// instances make the tree astronomically larger than any 20 ms budget, so
/// the limit reliably fires while several workers are active.
TEST(IlpDifferential, TimeLimitFromOneWorkerIsNeverMasked) {
  Rng rng(0x7157deadbeef01ULL);
  Model m;
  constexpr int kVars = 34;
  std::vector<Var> xs;
  for (int j = 0; j < kVars; ++j) {
    xs.push_back(m.add_binary("x" + std::to_string(j)));
  }
  LinExpr obj;
  for (Var v : xs) obj.add_term(v, 1.0);
  m.set_objective(obj);
  for (int i = 0; i < 6; ++i) {
    LinExpr e;
    double sum = 0.0;
    for (Var v : xs) {
      const double c = static_cast<double>(rng.next_below(100));
      e.add_term(v, c);
      sum += c;
    }
    m.add_row(e == std::floor(sum / 2.0));
  }

  BranchAndBoundOptions opt;
  opt.threads = 4;
  opt.time_limit_seconds = 0.02;
  const IlpResult res = BranchAndBoundSolver(opt).solve(m);
  EXPECT_EQ(res.status, IlpStatus::kTimeLimit)
      << "got " << to_string(res.status);
  // The abort must also propagate promptly — workers poll the shared status
  // and the LP engines carry the same deadline.
  EXPECT_LT(res.solve_seconds, 5.0);
}

// ---- golden end-to-end differentials -------------------------------------------

TEST(GoldenParallel, EpsIlpMrMatchesSerial) {
  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps_tmpl = eps::make_eps_template(spec);

  const auto run = [&](int threads, bool deterministic) {
    core::ArchitectureIlp ilp = eps::make_eps_ilp(eps_tmpl);
    BranchAndBoundOptions bopt;
    bopt.threads = threads;
    bopt.deterministic = deterministic;
    BranchAndBoundSolver solver(bopt);
    core::IlpMrOptions opt;
    opt.target_failure = 1e-6;
    return core::run_ilp_mr(ilp, solver, opt);
  };

  const core::IlpMrReport serial = run(0, false);
  ASSERT_EQ(serial.status, core::SynthesisStatus::kSuccess);

  // Deterministic 4-thread runs are bit-identical end to end: the same
  // iterates, the same learned constraints, the same final architecture.
  const core::IlpMrReport det4 = run(4, true);
  ASSERT_EQ(det4.status, core::SynthesisStatus::kSuccess);
  EXPECT_EQ(serial.num_iterations(), det4.num_iterations());
  for (int i = 0; i < std::min(serial.num_iterations(), det4.num_iterations());
       ++i) {
    const auto& a = serial.iterations[static_cast<std::size_t>(i)];
    const auto& b = det4.iterations[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.cost, b.cost) << "iteration " << i;
    EXPECT_EQ(a.failure, b.failure) << "iteration " << i;
  }
  EXPECT_EQ(serial.failure, det4.failure);
  ASSERT_TRUE(serial.configuration && det4.configuration);
  EXPECT_EQ(serial.configuration->selection(), det4.configuration->selection());

  // Free-running 4-thread search may surface a different equal-cost optimum
  // per iterate, but the synthesized result must agree on cost and meet the
  // requirement.
  const core::IlpMrReport free4 = run(4, false);
  ASSERT_EQ(free4.status, core::SynthesisStatus::kSuccess);
  ASSERT_TRUE(free4.configuration);
  EXPECT_DOUBLE_EQ(serial.configuration->total_cost(),
                   free4.configuration->total_cost());
  EXPECT_LE(free4.failure, 1e-6);
}

TEST(GoldenParallel, ParetoSweepMatchesSerial) {
  // Small 2-source / 2-middle / 1-sink template (sub-second sweeps with
  // several frontier points), as in pareto_mps_test.cpp.
  core::Template tmpl;
  const graph::NodeId s1 = tmpl.add_component({"S1", 0, 10, 0.01, 0, 0});
  const graph::NodeId s2 = tmpl.add_component({"S2", 0, 12, 0.01, 0, 0});
  const graph::NodeId m1 = tmpl.add_component({"M1", 1, 5, 0.02, 0, 0});
  const graph::NodeId m2 = tmpl.add_component({"M2", 1, 6, 0.02, 0, 0});
  const graph::NodeId t = tmpl.add_component({"T", 2, 0, 0.0, 0, 0});
  for (graph::NodeId s : {s1, s2}) {
    for (graph::NodeId m : {m1, m2}) tmpl.add_candidate_edge(s, m, 1);
  }
  tmpl.add_candidate_edge(m1, m2, 1);
  tmpl.add_candidate_edge(m2, m1, 1);
  for (graph::NodeId m : {m1, m2}) tmpl.add_candidate_edge(m, t, 1);

  const auto make_ilp = [&] {
    core::ArchitectureIlp ilp(tmpl);
    ilp.require_all_sinks_fed();
    return ilp;
  };
  const auto sweep = [&](int threads, bool deterministic) {
    BranchAndBoundOptions bopt;
    bopt.threads = threads;
    bopt.deterministic = deterministic;
    BranchAndBoundSolver solver(bopt);
    core::ParetoOptions opt;
    opt.initial_target = 5e-2;
    opt.tighten_factor = 0.5;
    opt.max_points = 8;
    return core::sweep_pareto_frontier(make_ilp, solver, opt);
  };

  const core::ParetoFrontier serial = sweep(0, false);
  ASSERT_GE(serial.points.size(), 2u);

  const core::ParetoFrontier det4 = sweep(4, true);
  ASSERT_EQ(serial.points.size(), det4.points.size());
  EXPECT_EQ(serial.terminal_status, det4.terminal_status);
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const core::ParetoPoint& a = serial.points[i];
    const core::ParetoPoint& b = det4.points[i];
    EXPECT_EQ(a.target, b.target) << "point " << i;
    EXPECT_EQ(a.cost, b.cost) << "point " << i;
    EXPECT_EQ(a.approx_failure, b.approx_failure) << "point " << i;
    EXPECT_EQ(a.exact_failure, b.exact_failure) << "point " << i;
    EXPECT_EQ(a.configuration.selection(), b.configuration.selection())
        << "point " << i;
  }

  // Free-running: the frontier's (cost, reliability) profile must match
  // even when tie-broken architectures differ structurally.
  const core::ParetoFrontier free4 = sweep(4, false);
  ASSERT_EQ(serial.points.size(), free4.points.size());
  EXPECT_EQ(serial.terminal_status, free4.terminal_status);
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.points[i].cost, free4.points[i].cost)
        << "point " << i;
    EXPECT_NEAR(serial.points[i].approx_failure,
                free4.points[i].approx_failure, 1e-9)
        << "point " << i;
  }
}

}  // namespace
}  // namespace archex::ilp
