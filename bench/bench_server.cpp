// bench_server — load-test of the archex_server front end over loopback.
//
// Two experiments, written to BENCH_server.json:
//
//  * "throughput": several client threads pipeline solve requests over two
//    repeated template families through a shared server. Reports requests/s,
//    client-observed p50/p99 latency, and the process-lifetime cache hit
//    rate — a rate > 0 on families the clients did not warm themselves is
//    the cross-request-reuse claim of DESIGN.md §5.
//
//  * "overload": a one-worker, one-slot-queue server under a burst of
//    simultaneous clients while a deadline-bounded slow request occupies
//    the worker. Reports how many requests admission control shed versus
//    queued-and-completed.
//
// Usage: bench_server [--out BENCH_server.json] [--clients N] [--requests N]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/serialize.hpp"
#include "server/solve_server.hpp"
#include "support/socket.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace archex;

core::SolveRequest eps_request(const std::string& id, int generators,
                               double target) {
  core::SolveRequest request;
  request.id = id;
  request.mode = core::SolveMode::kMr;
  request.eps_generators = generators;
  request.target_failure = target;
  return request;
}

core::SolveResponse exchange(support::TcpStream& stream,
                             const core::SolveRequest& request) {
  stream.write_line(core::to_json(request));
  std::string line;
  if (!stream.read_line(line)) {
    throw support::SocketError("server closed the connection mid-exchange");
  }
  return core::response_from_json(line);
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

json::Value throughput_experiment(int num_clients, int requests_each) {
  server::SolveServerOptions options;
  options.workers = num_clients;
  server::SolveServer server(options);
  server.start();

  // Two problem families, alternated per request: every client after the
  // first request benefits from evaluations (and learned nogoods) the other
  // clients produced.
  const std::vector<double> targets = {1e-4, 1e-5};

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(num_clients));
  std::atomic<int> failures{0};
  Stopwatch wall;
  wall.start();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      support::TcpStream stream =
          support::TcpStream::connect("127.0.0.1", server.port());
      auto& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(requests_each));
      for (int r = 0; r < requests_each; ++r) {
        const std::string id =
            "c" + std::to_string(c) + "-r" + std::to_string(r);
        const double target =
            targets[static_cast<std::size_t>(r) % targets.size()];
        Stopwatch watch;
        watch.start();
        const core::SolveResponse response =
            exchange(stream, eps_request(id, 1, target));
        watch.stop();
        mine.push_back(watch.elapsed_seconds());
        if (response.status != "unfeasible") failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  wall.stop();

  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());

  const rel::EvalCache::Stats cache = server.service().cache().stats();
  const std::size_t families = server.service().nogood_families();
  server.stop();

  const double total = static_cast<double>(all.size());
  const double throughput =
      wall.elapsed_seconds() > 0.0 ? total / wall.elapsed_seconds() : 0.0;
  std::printf("throughput: %d clients x %d requests, %.0f req/s, "
              "p50 %.2f ms, p99 %.2f ms, cache %.1f%% hits, %zu families\n",
              num_clients, requests_each, throughput,
              1e3 * percentile(all, 50.0), 1e3 * percentile(all, 99.0),
              100.0 * cache.hit_rate(), families);

  json::Object o;
  o["clients"] = static_cast<long long>(num_clients);
  o["requests_per_client"] = static_cast<long long>(requests_each);
  o["unexpected_statuses"] = static_cast<long long>(failures.load());
  o["wall_seconds"] = wall.elapsed_seconds();
  o["requests_per_second"] = throughput;
  o["latency_p50_ms"] = 1e3 * percentile(all, 50.0);
  o["latency_p99_ms"] = 1e3 * percentile(all, 99.0);
  o["cache_hits"] = static_cast<long long>(cache.hits);
  o["cache_misses"] = static_cast<long long>(cache.misses);
  o["cache_hit_rate"] = cache.hit_rate();
  o["nogood_families"] = static_cast<long long>(families);
  return json::Value(std::move(o));
}

json::Value overload_experiment(int burst) {
  server::SolveServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  server::SolveServer server(options);
  server.start();

  // Pin the single worker down for about a second (the deadline bounds the
  // solve, so the experiment's duration is independent of build flavor).
  core::SolveRequest slow = eps_request("slow", 3, 1e-8);
  slow.deadline_seconds = 1.0;
  support::TcpStream slow_client =
      support::TcpStream::connect("127.0.0.1", server.port());
  slow_client.write_line(core::to_json(slow));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  std::atomic<int> rejected{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(burst));
  for (int c = 0; c < burst; ++c) {
    clients.emplace_back([&, c] {
      support::TcpStream stream =
          support::TcpStream::connect("127.0.0.1", server.port());
      const core::SolveResponse response =
          exchange(stream, eps_request("burst-" + std::to_string(c), 1, 1e-4));
      if (response.status == "rejected") {
        rejected.fetch_add(1);
      } else {
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::string line;
  (void)slow_client.read_line(line);  // drain the slow request's response

  const server::SolveServer::Stats stats = server.stats();
  server.stop();

  std::printf("overload: burst of %d against 1 worker / queue 1: "
              "%d shed, %d completed\n",
              burst, rejected.load(), completed.load());

  json::Object o;
  o["burst"] = static_cast<long long>(burst);
  o["workers"] = 1LL;
  o["max_queue"] = 1LL;
  o["shed"] = static_cast<long long>(rejected.load());
  o["completed"] = static_cast<long long>(completed.load());
  o["server_shed_counter"] = static_cast<long long>(stats.shed);
  return json::Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_server.json";
  int num_clients = 4;
  int requests_each = 25;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (flag == "--clients" && i + 1 < argc) {
      num_clients = std::stoi(argv[++i]);
    } else if (flag == "--requests" && i + 1 < argc) {
      requests_each = std::stoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_server [--out FILE] [--clients N] "
                   "[--requests N]\n");
      return 2;
    }
  }

  json::Object section;
  section["throughput"] = throughput_experiment(num_clients, requests_each);
  section["overload"] = overload_experiment(8);
  if (!archex::bench::write_bench_section(out, "server",
                                          json::Value(std::move(section)))) {
    std::fprintf(stderr, "warning: could not write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (section \"server\")\n", out.c_str());
  return 0;
}
