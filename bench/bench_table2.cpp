// Table II reproduction: ILP-MR scalability — LEARNCONS (Algorithm 2) vs
// the lazier strategy that adds only one path per iteration.
//
// Paper (r* = 1e-11, n = 5 types, CPLEX):
//   |V| (gens)   LEARNCONS: iters / analysis / solver    LAZY: iters / analysis / solver
//   20 (4)            3 /    34 s /  4.3 s                  4 /     72 s /  13 s
//   30 (6)            3 /    78 s /    9 s                  7 /    852 s /  28 s
//   40 (8)            3 /   106 s /   14 s                 10 /   9118 s /  58 s
//   50 (10)           3 /   181 s /   18 s                 14 /  39563 s / 114 s
//
// The headline: LEARNCONS converges in ~3 iterations regardless of size,
// while the lazy strategy's iteration count — and hence its total exact-
// reliability-analysis time — explodes. We reproduce that shape on scaled
// instances (g = 2..4; the bundled B&B replaces CPLEX, see EXPERIMENTS.md);
// r* is set per size to the tightest value the template can meet.
// `--threads N` (default 1) sizes the worker pool handed to ILP-MR's exact
// reliability analysis AND the branch & bound's work-stealing tree search
// (threads >= 2); one EvalCache is shared across every row and
// strategy, so repeated subproblems (the same architecture iterates recur
// across LEARNCONS/lazy and across sweep targets) are answered from memory.
// The cache hit rate is reported after the table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_json.hpp"
#include "core/ilp_mr.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"
#include "rel/eval_cache.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace archex;

// NOTE: the template is passed in (not created here) because the returned
// report's Configuration references it — templates must outlive results.
core::IlpMrReport run(const eps::EpsTemplate& eps, double target, bool lazy,
                      rel::EvalCache* cache, support::ThreadPool* pool,
                      int threads) {
  core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
  ilp::BranchAndBoundOptions bopt;
  bopt.time_limit_seconds = 60.0;
  bopt.threads = threads;  // >= 2: parallel work-stealing tree search
  ilp::BranchAndBoundSolver solver(bopt);
  core::IlpMrOptions options;
  options.target_failure = target;
  options.lazy_strategy = lazy;
  options.accept_incumbent = true;
  options.max_iterations = 30;
  options.cache = cache;
  options.pool = pool;
  return core::run_ilp_mr(ilp, solver, options);
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 1;
  std::string json_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (threads < 1) threads = 1;

  support::ThreadPool pool(threads);
  rel::EvalCache cache;  // shared across all rows and both strategies

  std::puts("=== Table II: ILP-MR scalability, LEARNCONS vs lazy ===");
  std::printf("(reliability analysis on %d thread%s, shared eval cache)\n\n",
              threads, threads == 1 ? "" : "s");

  struct Row {
    int generators;
    double target;  // tightest requirement the template can achieve
    bool run_lazy;  // the lazy strategy explodes with size (that is the
                    // paper's point); bounded here to keep the harness
                    // runnable — larger-size lazy rows are extrapolated in
                    // EXPERIMENTS.md
  };
  // h_max per mid-layer type ~= g, so min r ~ 3 * g * p^g with p = 2e-4.
  // g = 4 ILP-MR iterations exceed the bundled solver's per-solve budget
  // (the k = 2 jump model finds no incumbent within it); the g = 2/3 pair
  // already exhibits the paper's contrast. See EXPERIMENTS.md.
  const Row rows[] = {{2, 1e-6, true}, {3, 2e-10, true}};

  TextTable table({"|V| (gens)", "strategy", "status", "#iterations",
                   "analysis (s)", "solver (s)", "cost", "failure r"});
  json::Array runs_json;
  for (const Row& row : rows) {
    eps::EpsSpec spec;
    spec.num_generators = row.generators;
    const eps::EpsTemplate eps = eps::make_eps_template(spec);
    for (const bool lazy : {false, true}) {
      if (lazy && !row.run_lazy) continue;
      const core::IlpMrReport rep =
          run(eps, row.target, lazy, &cache, &pool, threads);
      {
        json::Object o;
        o["generators"] = row.generators;
        o["target_failure"] = row.target;
        o["strategy"] = lazy ? "lazy" : "learncons";
        o["status"] = to_string(rep.status);
        o["iterations"] = rep.num_iterations();
        o["analysis_seconds"] = rep.analysis_seconds;
        o["solver_seconds"] = rep.solver_seconds;
        o["budget_capped"] = rep.solver_limit_hits > 0;
        o["solver_limit_hits"] =
            static_cast<long long>(rep.solver_limit_hits);
        o["solver_nodes"] = static_cast<long long>(rep.solver_nodes);
        o["solver_nodes_pruned"] =
            static_cast<long long>(rep.solver_nodes_pruned);
        o["solver_steals"] = static_cast<long long>(rep.solver_steals);
        if (rep.configuration) {
          o["cost"] = rep.configuration->total_cost();
          o["failure"] = rep.failure;
        }
        runs_json.push_back(std::move(o));
      }
      const int v = 5 * row.generators + 1;
      table.add_row(
          {std::to_string(v) + " (" + std::to_string(row.generators) + ")",
           lazy ? "lazy" : "LEARNCONS", to_string(rep.status),
           format_count(rep.num_iterations()),
           format_fixed(rep.analysis_seconds, 2),
           format_fixed(rep.solver_seconds, 1),
           rep.configuration
               ? format_fixed(rep.configuration->total_cost(), 0)
               : "-",
           rep.configuration ? format_sci(rep.failure, 2) : "-"});
      std::fputs(table.to_string().c_str(), stdout);  // progress as we go
      std::fflush(stdout);
      std::puts("");
    }
  }

  const auto stats = cache.stats();
  std::printf("eval cache: %llu hits / %llu misses (hit rate %.1f%%), "
              "%zu entries resident\n\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              100.0 * stats.hit_rate(), stats.size);

  std::puts("expected shape (paper): LEARNCONS needs a near-constant ~3 "
            "iterations; the lazy strategy's iteration count and analysis "
            "time grow steeply with |V|.");

  json::Object section;
  section["threads"] = threads;
  section["runs"] = std::move(runs_json);
  {
    json::Object cache_json;
    cache_json["hits"] = static_cast<long long>(stats.hits);
    cache_json["misses"] = static_cast<long long>(stats.misses);
    cache_json["entries"] = static_cast<long long>(stats.size);
    section["eval_cache"] = std::move(cache_json);
  }
  if (!bench::write_bench_section(json_path, "table2",
                                  json::Value(std::move(section)))) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s (section \"table2\")\n", json_path.c_str());
  return 0;
}
