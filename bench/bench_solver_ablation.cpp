// Ablation: the two bundled ILP engines on the architecture-selection
// models. LP-based branch & bound vs Balas implicit enumeration (no LP).
// The base EPS ILP's LP relaxation is informative, so B&B explores few
// nodes; Balas relies on per-row interval pruning only and degrades fast
// with variable count — quantifying why the LP machinery is worth its
// complexity.
#include <benchmark/benchmark.h>

#include "core/arch_ilp.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"

namespace {

using namespace archex;

/// Base EPS ILP (interconnection + power rules, no reliability) for g gens.
/// NOTE: rebuilt per iteration; both solvers share identical models.
core::ArchitectureIlp make_model(int generators) {
  eps::EpsSpec spec;
  spec.num_generators = generators;
  static std::vector<std::unique_ptr<eps::EpsTemplate>> keep_alive;
  keep_alive.push_back(
      std::make_unique<eps::EpsTemplate>(eps::make_eps_template(spec)));
  return eps::make_eps_ilp(*keep_alive.back());
}

void BM_BranchAndBound(benchmark::State& state) {
  core::ArchitectureIlp ilp = make_model(static_cast<int>(state.range(0)));
  ilp::BranchAndBoundSolver solver;
  double obj = 0.0;
  long nodes = 0;
  for (auto _ : state) {
    const ilp::IlpResult res = solver.solve(ilp.model());
    if (!res.optimal()) state.SkipWithError("B&B failed");
    obj = res.objective;
    nodes = res.nodes_explored;
  }
  state.counters["objective"] = obj;
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_BalasEnumeration(benchmark::State& state) {
  core::ArchitectureIlp ilp = make_model(static_cast<int>(state.range(0)));
  ilp::BalasOptions opt;
  opt.max_nodes = 200'000'000;
  opt.time_limit_seconds = 30.0;  // g=2 exceeds any reasonable budget; the
                                  // point is made by the skip itself
  ilp::BalasSolver solver(opt);
  double obj = 0.0;
  long nodes = 0;
  for (auto _ : state) {
    const ilp::IlpResult res = solver.solve(ilp.model());
    if (!res.optimal()) {
      state.SkipWithError("Balas hit its node/time limit");
      return;
    }
    obj = res.objective;
    nodes = res.nodes_explored;
  }
  state.counters["objective"] = obj;
  state.counters["nodes"] = static_cast<double>(nodes);
}

BENCHMARK(BM_BranchAndBound)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_BalasEnumeration)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
