// Ablation: ILP engines on the architecture-selection models.
//
// Two axes on one instance ladder:
//  * LP-based branch & bound vs Balas implicit enumeration (no LP) — the
//    base EPS ILP's relaxation is informative, so B&B explores few nodes,
//    while Balas' per-row interval pruning degrades fast with size;
//  * sparse LU + eta-file basis vs the dense explicit-inverse oracle inside
//    the simplex engine — same pivot rules, different linear algebra; the
//    ILP-AR encodings are the large instances where per-pivot cost matters.
//
// Besides the human-readable table, every run is appended to a JSON report
// (default BENCH_solver.json, --json=PATH to override) under the
// "solver_ablation" key: per-instance solve time, objective, nodes, pivots
// and the eta/refactorization/presolve counters, plus the sparse-vs-dense
// speedup on the largest ILP-AR instance.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/arch_ilp.hpp"
#include "core/ilp_ar.hpp"
#include "core/ilp_mr.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"
#include "rel/eval_cache.hpp"
#include "support/table.hpp"

namespace {

using namespace archex;

struct Instance {
  std::string name;
  int generators = 0;
  bool reliability = false;   // append the ILP-AR encoding
  double target = 0.0;        // r* for the encoding
  bool run_balas = false;     // Balas explodes beyond the small sizes
};

struct RunRecord {
  std::string engine;
  ilp::IlpResult result;
  /// Time budget the run was given; lets the JSON flag budget-capped runs
  /// whose node/time numbers measure throughput, not proven-tree size.
  double budget_seconds = 0.0;
};

bool budget_capped(const ilp::IlpResult& result, double budget_seconds) {
  return result.status == ilp::IlpStatus::kTimeLimit ||
         (budget_seconds > 0.0 && result.solve_seconds >= budget_seconds);
}

json::Value run_to_json(const RunRecord& run) {
  const auto count = [](long v) {
    return json::Value(static_cast<long long>(v));
  };
  json::Object o;
  o["engine"] = run.engine;
  o["status"] = to_string(run.result.status);
  o["seconds"] = run.result.solve_seconds;
  o["budget_seconds"] = run.budget_seconds;
  o["budget_capped"] = budget_capped(run.result, run.budget_seconds);
  o["objective"] = run.result.objective;
  o["nodes"] = count(run.result.nodes_explored);
  o["nodes_pruned"] = count(run.result.nodes_pruned);
  o["steals"] = count(run.result.steal_count);
  o["threads"] = json::Value(static_cast<long long>(run.result.threads_used));
  o["lp_pivots"] = count(run.result.lp_pivots);
  o["lp_scratch_solves"] = count(run.result.lp_scratch_solves);
  o["lp_dual_reopts"] = count(run.result.lp_dual_reopts);
  o["lp_dual_fallbacks"] = count(run.result.lp_dual_fallbacks);
  o["lp_factorizations"] = count(run.result.lp_factorizations);
  o["lp_eta_updates"] = count(run.result.lp_eta_updates);
  o["lp_refactor_eta"] = count(run.result.lp_refactor_eta);
  o["lp_refactor_drift"] = count(run.result.lp_refactor_drift);
  o["lp_max_eta_len"] = count(run.result.lp_max_eta_len);
  o["presolve_fixed_variables"] = count(run.result.presolve_fixed_variables);
  o["presolve_rows_removed"] = count(run.result.presolve_rows_removed);
  o["presolve_bound_tightenings"] =
      count(run.result.presolve_bound_tightenings);
  o["cuts_added"] = count(run.result.cuts_added);
  o["cut_rounds"] = count(run.result.cut_rounds);
  o["rc_fixings"] = count(run.result.rc_fixings);
  o["pseudocost_branches"] = count(run.result.pseudocost_branches);
  o["nogoods_learned"] = count(run.result.nogoods_learned);
  o["nogood_prunings"] = count(run.result.nogood_prunings);
  o["nogood_store_size"] = count(run.result.nogood_store_size);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  // The largest ILP-AR instance comes last; its sparse/dense pair feeds the
  // headline speedup number.
  const std::vector<Instance> instances = {
      {"eps-base-g1", 1, false, 0.0, true},
      {"eps-base-g2", 2, false, 0.0, true},
      {"eps-base-g3", 3, false, 0.0, false},
      {"ilp-ar-g1", 1, true, 2e-3, false},
      {"ilp-ar-g2", 2, true, 2e-6, false},
  };

  std::puts("=== Solver ablation: B&B (sparse/dense basis) vs Balas ===\n");
  TextTable table({"instance", "vars", "rows", "engine", "status", "time (s)",
                   "cost", "nodes", "pivots", "etas", "refactors"});

  json::Array instances_json;
  double largest_sparse_s = 0.0, largest_dense_s = 0.0;
  std::string largest_name;

  for (const Instance& inst : instances) {
    eps::EpsSpec spec;
    spec.num_generators = inst.generators;
    const eps::EpsTemplate eps = eps::make_eps_template(spec);
    core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
    if (inst.reliability) {
      core::IlpArOptions options;
      options.target_failure = inst.target;
      core::encode_ilp_ar(ilp, options);
    }
    const ilp::Model& model = ilp.model();

    std::vector<RunRecord> runs;
    for (const bool dense : {false, true}) {
      ilp::BranchAndBoundOptions bopt;
      bopt.time_limit_seconds = 120.0;
      bopt.lp.dense_basis = dense;
      ilp::BranchAndBoundSolver solver(bopt);
      runs.push_back({dense ? "bnb-dense" : "bnb-sparse", solver.solve(model),
                      bopt.time_limit_seconds});
    }
    if (inst.run_balas && model.pure_binary()) {
      ilp::BalasOptions bopt;
      bopt.max_nodes = 200'000'000;
      bopt.time_limit_seconds = 10.0;  // the limit status IS the data point
      ilp::BalasSolver solver(bopt);
      runs.push_back({"balas", solver.solve(model), bopt.time_limit_seconds});
    }

    for (const RunRecord& run : runs) {
      table.add_row(
          {inst.name, format_count(model.num_variables()),
           format_count(model.num_rows()), run.engine,
           to_string(run.result.status),
           format_fixed(run.result.solve_seconds, 3),
           run.result.optimal() ? format_fixed(run.result.objective, 0) : "-",
           format_count(run.result.nodes_explored),
           format_count(run.result.lp_pivots),
           format_count(run.result.lp_eta_updates),
           format_count(run.result.lp_factorizations)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::fflush(stdout);
    std::puts("");

    json::Object record;
    record["instance"] = inst.name;
    record["generators"] = inst.generators;
    record["variables"] = model.num_variables();
    record["rows"] = model.num_rows();
    json::Array runs_json;
    for (const RunRecord& run : runs) runs_json.push_back(run_to_json(run));
    record["runs"] = std::move(runs_json);
    instances_json.push_back(std::move(record));

    if (inst.reliability) {
      largest_name = inst.name;
      largest_sparse_s = runs[0].result.solve_seconds;
      largest_dense_s = runs[1].result.solve_seconds;
    }
  }

  const double speedup =
      largest_sparse_s > 0.0 ? largest_dense_s / largest_sparse_s : 0.0;
  std::printf("sparse-basis speedup on %s: %.2fx (dense %.3fs / sparse %.3fs)\n",
              largest_name.c_str(), speedup, largest_dense_s,
              largest_sparse_s);

  // Speedup vs threads on the largest ILP-AR instance: the parallel
  // work-stealing tree search against the serial baseline (threads = 0).
  // Efficiency is bounded by the host's cores — the per-worker node counts
  // in the JSON show whether the pool kept every worker fed.
  std::puts("\n=== Parallel branch & bound: speedup vs threads (ilp-ar-g2) ===\n");
  json::Array scaling_json;
  {
    eps::EpsSpec spec;
    spec.num_generators = 2;
    const eps::EpsTemplate eps = eps::make_eps_template(spec);
    core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
    core::IlpArOptions options;
    options.target_failure = 2e-6;
    core::encode_ilp_ar(ilp, options);
    const ilp::Model& model = ilp.model();

    TextTable scaling({"threads", "status", "time (s)", "speedup", "nodes",
                       "pruned", "steals"});
    double serial_s = 0.0;
    for (const int threads : {0, 2, 4, 8}) {
      ilp::BranchAndBoundOptions bopt;
      bopt.time_limit_seconds = 120.0;
      bopt.threads = threads;
      ilp::BranchAndBoundSolver solver(bopt);
      const ilp::IlpResult res = solver.solve(model);
      if (threads == 0) serial_s = res.solve_seconds;
      const double thread_speedup =
          res.solve_seconds > 0.0 ? serial_s / res.solve_seconds : 0.0;
      scaling.add_row({std::to_string(threads == 0 ? 1 : threads),
                       to_string(res.status),
                       format_fixed(res.solve_seconds, 3),
                       format_fixed(thread_speedup, 2),
                       format_count(res.nodes_explored),
                       format_count(res.nodes_pruned),
                       format_count(res.steal_count)});
      std::fputs(scaling.to_string().c_str(), stdout);
      std::fflush(stdout);
      std::puts("");

      json::Object o;
      o["threads"] = threads;
      o["status"] = to_string(res.status);
      o["seconds"] = res.solve_seconds;
      o["budget_capped"] = budget_capped(res, bopt.time_limit_seconds);
      o["objective"] = res.objective;
      o["speedup_vs_serial"] = thread_speedup;
      o["nodes"] = static_cast<long long>(res.nodes_explored);
      o["nodes_pruned"] = static_cast<long long>(res.nodes_pruned);
      o["steals"] = static_cast<long long>(res.steal_count);
      json::Array worker_nodes;
      for (long nodes : res.worker_nodes) {
        worker_nodes.push_back(static_cast<long long>(nodes));
      }
      o["worker_nodes"] = std::move(worker_nodes);
      json::Array worker_pivots;
      for (long pivots : res.worker_lp_iterations) {
        worker_pivots.push_back(static_cast<long long>(pivots));
      }
      o["worker_lp_iterations"] = std::move(worker_pivots);
      scaling_json.push_back(std::move(o));
    }
  }

  // Cut-and-branch ablation on the hardest ILP-MR workload in the suite:
  // eps-base-g3 driven through the full LEARNCONS loop (the per-iteration
  // models grow learned reliability rows, which is where cutting planes and
  // pseudocost history earn their keep). All four configs run single-core so
  // the node counts are comparable (see EXPERIMENTS.md: node counts, not
  // wall clock, are the honest cross-config metric — wall clock also moves
  // with the LP cost per node).
  std::puts("\n=== Cut-and-branch ablation: ILP-MR LEARNCONS on eps-base-g3 ===\n");
  json::Array cuts_json;
  {
    struct Config {
      std::string name;
      bool cuts = false;
      bool pseudocost = false;
      bool rc_fixing = false;
    };
    const std::vector<Config> configs = {
        {"baseline", false, false, false},
        {"cuts", true, false, false},
        {"pseudocost", false, true, false},
        {"full", true, true, true},
    };

    eps::EpsSpec spec;
    spec.num_generators = 3;
    const eps::EpsTemplate eps = eps::make_eps_template(spec);
    rel::EvalCache cache;  // reliability analysis is identical across configs

    TextTable cuts_table({"config", "status", "iters", "solver (s)", "nodes",
                          "cuts", "rc-fix", "pc-branch", "cost"});
    long baseline_nodes = 0, full_nodes = 0;
    for (const Config& cfg : configs) {
      core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
      ilp::BranchAndBoundOptions bopt;
      bopt.time_limit_seconds = 120.0;
      bopt.cuts = cfg.cuts;
      bopt.pseudocost = cfg.pseudocost;
      bopt.rc_fixing = cfg.rc_fixing;
      ilp::BranchAndBoundSolver solver(bopt);
      core::IlpMrOptions options;
      options.target_failure = 2e-10;
      options.accept_incumbent = true;
      options.max_iterations = 30;
      options.cache = &cache;
      const core::IlpMrReport rep = core::run_ilp_mr(ilp, solver, options);

      if (cfg.name == "baseline") baseline_nodes = rep.solver_nodes;
      if (cfg.name == "full") full_nodes = rep.solver_nodes;
      cuts_table.add_row(
          {cfg.name, to_string(rep.status),
           std::to_string(rep.num_iterations()),
           format_fixed(rep.solver_seconds, 3),
           format_count(rep.solver_nodes),
           format_count(rep.solver_cuts_added),
           format_count(rep.solver_rc_fixings),
           format_count(rep.solver_pseudocost_branches),
           rep.configuration
               ? format_fixed(rep.configuration->total_cost(), 0)
               : "-"});
      std::fputs(cuts_table.to_string().c_str(), stdout);
      std::fflush(stdout);
      std::puts("");

      json::Object o;
      o["config"] = cfg.name;
      o["cuts"] = cfg.cuts;
      o["pseudocost"] = cfg.pseudocost;
      o["rc_fixing"] = cfg.rc_fixing;
      o["status"] = to_string(rep.status);
      o["iterations"] = rep.num_iterations();
      o["solver_seconds"] = rep.solver_seconds;
      o["budget_capped"] = rep.solver_limit_hits > 0;
      o["solver_limit_hits"] = static_cast<long long>(rep.solver_limit_hits);
      o["analysis_seconds"] = rep.analysis_seconds;
      o["nodes"] = static_cast<long long>(rep.solver_nodes);
      o["nodes_pruned"] = static_cast<long long>(rep.solver_nodes_pruned);
      o["cuts_added"] = static_cast<long long>(rep.solver_cuts_added);
      o["cut_rounds"] = static_cast<long long>(rep.solver_cut_rounds);
      o["rc_fixings"] = static_cast<long long>(rep.solver_rc_fixings);
      o["pseudocost_branches"] =
          static_cast<long long>(rep.solver_pseudocost_branches);
      if (rep.configuration) o["cost"] = rep.configuration->total_cost();
      cuts_json.push_back(std::move(o));
    }

    const double node_reduction =
        full_nodes > 0 ? static_cast<double>(baseline_nodes) /
                             static_cast<double>(full_nodes)
                       : 0.0;
    std::printf("node reduction, full vs baseline: %.2fx (%ld -> %ld)\n",
                node_reduction, baseline_nodes, full_nodes);

    json::Object cuts_section;
    cuts_section["instance"] = std::string("eps-base-g3");
    cuts_section["workload"] = std::string("ilp-mr-learncons");
    cuts_section["target_failure"] = 2e-10;
    cuts_section["configs"] = std::move(cuts_json);
    cuts_section["baseline_nodes"] = static_cast<long long>(baseline_nodes);
    cuts_section["full_nodes"] = static_cast<long long>(full_nodes);
    cuts_section["node_reduction_full_vs_baseline"] = node_reduction;
    if (!bench::write_bench_section(json_path, "cuts",
                                    json::Value(std::move(cuts_section)))) {
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s (section \"cuts\")\n", json_path.c_str());
  }

  // Conflict-learning ablation (DESIGN.md §4g). Two workloads, same honest
  // convention as the cuts section: eps-base-g3 ILP-MR runs into the
  // per-call budget, so its node counts measure throughput within an equal
  // budget (budget_capped=true in the JSON); eps-base-g2 ILP-MR runs to
  // proven optimality, so its node counts are real tree sizes and the
  // node-reduction number there is the one to quote.
  std::puts("\n=== Conflict-learning ablation: ILP-MR on eps-base-g3/g2 ===\n");
  json::Object learning_section;
  {
    TextTable learn_table({"workload", "learning", "status", "capped",
                           "iters", "solver (s)", "nodes", "learned",
                           "prunings", "store", "oracle", "cost"});
    const struct Workload {
      std::string name;
      int generators = 0;
      double target = 0.0;
      const char* json_key = nullptr;
    } workloads[] = {
        {"eps-base-g3", 3, 2e-10, "budgeted_g3"},
        {"eps-base-g2", 2, 4e-7, "to_optimality_g2"},
    };
    for (const Workload& wl : workloads) {
      eps::EpsSpec spec;
      spec.num_generators = wl.generators;
      const eps::EpsTemplate eps = eps::make_eps_template(spec);
      rel::EvalCache cache;  // identical analysis work across both configs

      json::Array runs_json;
      long nodes_off = 0, nodes_on = 0;
      for (const bool learning : {false, true}) {
        core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
        ilp::BranchAndBoundOptions bopt;
        bopt.time_limit_seconds = 120.0;
        bopt.learning = learning;
        ilp::BranchAndBoundSolver solver(bopt);
        core::IlpMrOptions options;
        options.target_failure = wl.target;
        options.accept_incumbent = true;
        options.max_iterations = 30;
        options.cache = &cache;
        const core::IlpMrReport rep = core::run_ilp_mr(ilp, solver, options);
        (learning ? nodes_on : nodes_off) = rep.solver_nodes;

        learn_table.add_row(
            {wl.name, learning ? "on" : "off", to_string(rep.status),
             rep.solver_limit_hits > 0 ? "yes" : "no",
             std::to_string(rep.num_iterations()),
             format_fixed(rep.solver_seconds, 3),
             format_count(rep.solver_nodes),
             format_count(rep.solver_nogoods_learned),
             format_count(rep.solver_nogood_prunings),
             format_count(rep.solver_nogood_store_size),
             format_count(rep.oracle_nogoods),
             rep.configuration
                 ? format_fixed(rep.configuration->total_cost(), 0)
                 : "-"});
        std::fputs(learn_table.to_string().c_str(), stdout);
        std::fflush(stdout);
        std::puts("");

        json::Object o;
        o["learning"] = learning;
        o["status"] = to_string(rep.status);
        o["iterations"] = rep.num_iterations();
        o["solver_seconds"] = rep.solver_seconds;
        o["budget_capped"] = rep.solver_limit_hits > 0;
        o["solver_limit_hits"] =
            static_cast<long long>(rep.solver_limit_hits);
        o["nodes"] = static_cast<long long>(rep.solver_nodes);
        o["nodes_pruned"] = static_cast<long long>(rep.solver_nodes_pruned);
        o["nogoods_learned"] =
            static_cast<long long>(rep.solver_nogoods_learned);
        o["nogood_prunings"] =
            static_cast<long long>(rep.solver_nogood_prunings);
        o["nogood_store_size"] =
            static_cast<long long>(rep.solver_nogood_store_size);
        o["oracle_nogoods"] = static_cast<long long>(rep.oracle_nogoods);
        if (rep.configuration) o["cost"] = rep.configuration->total_cost();
        runs_json.push_back(std::move(o));
      }

      const double node_reduction =
          nodes_on > 0 ? static_cast<double>(nodes_off) /
                             static_cast<double>(nodes_on)
                       : 0.0;
      std::printf("%s node reduction, learning on vs off: %.2fx "
                  "(%ld -> %ld)\n\n",
                  wl.name.c_str(), node_reduction, nodes_off, nodes_on);

      json::Object wl_json;
      wl_json["instance"] = wl.name;
      wl_json["workload"] = std::string("ilp-mr-learncons");
      wl_json["target_failure"] = wl.target;
      wl_json["runs"] = std::move(runs_json);
      wl_json["nodes_learning_off"] = static_cast<long long>(nodes_off);
      wl_json["nodes_learning_on"] = static_cast<long long>(nodes_on);
      wl_json["node_reduction_on_vs_off"] = node_reduction;
      learning_section[wl.json_key] = std::move(wl_json);
    }
    if (!bench::write_bench_section(
            json_path, "learning", json::Value(std::move(learning_section)))) {
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s (section \"learning\")\n", json_path.c_str());
  }

  json::Object section;
  section["instances"] = std::move(instances_json);
  section["threads_scaling_instance"] = std::string("ilp-ar-g2");
  section["threads_scaling"] = std::move(scaling_json);
  section["largest_instance"] = largest_name;
  section["largest_dense_seconds"] = largest_dense_s;
  section["largest_sparse_seconds"] = largest_sparse_s;
  section["sparse_speedup_largest"] = speedup;
  if (!bench::write_bench_section(json_path, "solver_ablation",
                                  json::Value(std::move(section)))) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s (section \"solver_ablation\")\n", json_path.c_str());
  return 0;
}
