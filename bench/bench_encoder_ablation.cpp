// Ablation: the two lowerings of ILP-MR's ADDPATH (eq. 6) requirement.
//
//  * kWalkIndicator — the paper-literal Lemma-1 unrolling: auxiliary
//    binaries for every walk prefix, one-sided AND/OR rows. Weak LP
//    relaxation: the solver must branch to push fractional reach chains to
//    integrality.
//  * kFlow — continuous single-commodity flows per (sink, type): no new
//    binaries, flow conservation gives a near-integral relaxation.
//
// Same template, same requirement, identical final reliability; what
// changes is model size, B&B nodes and wall time.
#include <cstdio>

#include "core/ilp_mr.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"
#include "support/table.hpp"

int main() {
  using namespace archex;
  std::puts("=== Encoder ablation: ADDPATH via flows vs walk indicators ===\n");

  TextTable table({"template", "encoding", "status", "iters", "rows",
                   "vars", "B&B nodes", "solver (s)", "cost", "failure r"});

  // g = 2 keeps the harness fast; a g = 3 run (flow 451 s vs walk 600 s,
  // identical costs) is recorded in EXPERIMENTS.md.
  for (const int g : {2}) {
    eps::EpsSpec spec;
    spec.num_generators = g;
    const eps::EpsTemplate eps = eps::make_eps_template(spec);
    const double target = g == 2 ? 1e-6 : 1e-9;

    for (const auto encoding :
         {core::PathEncoding::kFlow, core::PathEncoding::kWalkIndicator}) {
      core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
      ilp::BranchAndBoundOptions bopt;
      bopt.time_limit_seconds = 120.0;
      ilp::BranchAndBoundSolver solver(bopt);
      core::IlpMrOptions options;
      options.target_failure = target;
      options.encoding = encoding;
      options.accept_incumbent = true;
      const core::IlpMrReport rep = core::run_ilp_mr(ilp, solver, options);

      table.add_row(
          {"g=" + std::to_string(g),
           encoding == core::PathEncoding::kFlow ? "flow" : "walk-indicator",
           to_string(rep.status), format_count(rep.num_iterations()),
           format_count(rep.num_rows), format_count(rep.num_variables),
           format_count(rep.solver_nodes),
           format_fixed(rep.solver_seconds, 1),
           rep.configuration
               ? format_fixed(rep.configuration->total_cost(), 0)
               : "-",
           rep.configuration ? format_sci(rep.failure, 2) : "-"});
      std::fputs(table.to_string().c_str(), stdout);
      std::puts("");
    }
  }
  std::puts("expected: both encodings reach requirement-satisfying "
            "architectures of the same cost. Their relative solver effort "
            "is instance-dependent: flows add no binaries but more rows per "
            "commodity; walk indicators add binaries with fewer rows per "
            "requirement. (With Dantzig pricing the walk encoding was "
            "catastrophically slower; Devex pricing and dual warm starts "
            "level the field — see EXPERIMENTS.md.)");
  return 0;
}
