// Theorem 2 ablation: how tight is the bound  r~ / r >= m*f / M_f  in
// practice? Sweeps random layered architectures (the algebra's intended
// domain) and reports, per size class, the worst and median observed
// optimism ratio next to the worst theoretical bound.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"
#include "rel/approx.hpp"
#include "rel/exact.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace archex;

struct Sample {
  double ratio;  // r~ / r
  double bound;  // m*f / M_f
};

Sample run_one(Rng& rng, int layers, int max_width, double max_p) {
  std::vector<int> width(static_cast<std::size_t>(layers));
  std::vector<graph::TypeId> types;
  for (int l = 0; l < layers; ++l) {
    width[static_cast<std::size_t>(l)] =
        1 + static_cast<int>(rng.next_below(static_cast<unsigned>(max_width)));
    for (int k = 0; k < width[static_cast<std::size_t>(l)]; ++k) {
      types.push_back(l);
    }
  }
  const int n = static_cast<int>(types.size());
  const graph::Partition part(types);
  graph::Digraph g(n);
  int offset = 0;
  for (int l = 0; l + 1 < layers; ++l) {
    const int wl = width[static_cast<std::size_t>(l)];
    const int wn = width[static_cast<std::size_t>(l + 1)];
    for (int a = 0; a < wl; ++a) {
      for (int b = 0; b < wn; ++b) {
        if (b == a % wn || rng.next_bernoulli(0.5)) {
          g.add_edge(offset + a, offset + wl + b);
        }
      }
    }
    offset += wl;
  }
  std::vector<double> p_type(static_cast<std::size_t>(layers));
  for (auto& v : p_type) v = rng.next_double() * max_p;
  std::vector<double> p_node(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    p_node[static_cast<std::size_t>(v)] =
        p_type[static_cast<std::size_t>(part.type_of(v))];
  }
  const graph::NodeId sink = n - 1;
  const rel::ApproxResult a =
      rel::approximate_failure(g, part, sink, p_type);
  const double r = rel::failure_probability(g, part.members(0), sink, p_node);
  if (r <= 0.0) return {1.0, 0.0};
  return {a.r_tilde / r, a.optimism_bound};
}

}  // namespace

int main() {
  std::puts("=== Theorem 2: optimism bound r~/r >= m*f/M_f (ablation) ===\n");
  TextTable table({"layers", "max width", "max p", "samples", "min r~/r",
                   "median r~/r", "max r~/r", "worst bound", "violations"});

  Rng rng(20150422);  // DATE'15 publication date as seed
  for (const int layers : {3, 4, 5}) {
    for (const double max_p : {0.05, 0.2}) {
      std::vector<Sample> samples;
      int violations = 0;
      for (int trial = 0; trial < 60; ++trial) {
        const Sample s = run_one(rng, layers, 3, max_p);
        samples.push_back(s);
        if (s.ratio < s.bound * (1 - 1e-9)) ++violations;
      }
      std::vector<double> ratios;
      double worst_bound = 1.0;
      for (const Sample& s : samples) {
        ratios.push_back(s.ratio);
        worst_bound = std::min(worst_bound, s.bound);
      }
      std::sort(ratios.begin(), ratios.end());
      table.add_row(
          {format_count(layers), "3", format_fixed(max_p, 2),
           format_count(static_cast<long long>(samples.size())),
           format_fixed(ratios.front(), 4),
           format_fixed(ratios[ratios.size() / 2], 4),
           format_fixed(ratios.back(), 4), format_fixed(worst_bound, 4),
           format_count(violations)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nviolations must be 0: every observed ratio respects the "
            "Theorem-2 lower bound.");
  return 0;
}
