// Fig. 2 reproduction: EPS architectures and reliability at each iteration
// of an ILP-MR run with a tight requirement (r* = 2e-10).
//
// Paper (21-node template, CPLEX): iter 1 r = 6e-4 -> ESTPATH k = 2
// (rho = 8e-4) -> iter 2 r = 2.8e-10 -> one fine-tuning path ->
// iter 3 r = 0.79e-10 <= r*. Total ~38 s.
//
// Here (16-node template, g = 3, bundled B&B solver — see EXPERIMENTS.md on
// scaling): the same shape must appear — a single-path architecture around
// rho, a large k >= 2 jump from ESTPATH, then at most a couple of
// fine-tuning iterations to land under r*.
// `--method=<factoring|inclusion-exclusion|series-parallel|bdd>` selects the
// exact analyzer RELANALYSIS runs with (default factoring); every method is
// exact, so the iteration trace must be method-independent up to the last
// few ulps of r.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/ilp_mr.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace archex;
  rel::ExactMethod method = rel::ExactMethod::kFactoring;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--method=", 9) == 0) {
      const auto parsed = rel::parse_exact_method(argv[i] + 9);
      if (!parsed) {
        std::fprintf(stderr, "unknown --method '%s' (want factoring, "
                     "inclusion-exclusion, series-parallel, or bdd)\n",
                     argv[i] + 9);
        return 1;
      }
      method = *parsed;
    }
  }
  std::printf("=== Fig. 2: ILP-MR iterations, r* = 2e-10 (RELANALYSIS: %s) "
              "===\n\n",
              rel::to_string(method).c_str());

  eps::EpsSpec spec;
  spec.num_generators = 3;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  std::printf("EPS template: |V| = %d (%d generators + APU), %d candidate "
              "interconnections\n\n",
              eps.tmpl.num_components(), spec.num_generators,
              eps.tmpl.num_candidate_edges());

  core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
  ilp::BranchAndBoundOptions bopt;
  bopt.time_limit_seconds = 180.0;
  ilp::BranchAndBoundSolver solver(bopt);

  core::IlpMrOptions options;
  options.target_failure = 2e-10;
  options.method = method;
  options.accept_incumbent = true;  // bounded bench runtime; see header

  const core::IlpMrReport rep = core::run_ilp_mr(ilp, solver, options);

  TextTable table({"iteration", "cost", "components", "interconnections",
                   "failure r", "ESTPATH k", "new constraints"});
  for (std::size_t i = 0; i < rep.iterations.size(); ++i) {
    const auto& it = rep.iterations[i];
    table.add_row({format_count(static_cast<long long>(i + 1)),
                   format_fixed(it.cost, 0), format_count(it.num_components),
                   format_count(it.num_edges), format_sci(it.failure, 2),
                   format_count(it.estimated_k),
                   format_count(it.new_constraints)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nresult: %s\n", to_string(rep.status).c_str());
  if (rep.configuration) {
    std::printf("final: %s, exact failure %.3e (target 2e-10)\n",
                rep.configuration->summary().c_str(), rep.failure);
  }
  std::printf("timings: reliability analysis %.2fs, solver %.2fs "
              "(%ld B&B nodes)\n",
              rep.analysis_seconds, rep.solver_seconds, rep.solver_nodes);
  std::puts("\npaper reference (21 nodes, CPLEX): r = 6e-4 -> k=2 -> "
            "2.8e-10 -> 0.79e-10 in 3 iterations, ~38 s total.");
  return 0;
}
